// Package core implements the paper's contribution: hardware-aware, runtime
// selection of the OpenCL local_work_size (lws) for Vortex-style GPGPUs.
//
// The Vortex runtime turns an NDRange of gws work items into gws/lws
// workgroup tasks and distributes them over hp = cores x warps x threads
// hardware thread slots. Eq. 1 of the paper picks the lws that fills every
// slot exactly once:
//
//	lws = gws / hp,   hp = cores x warps x threads
//
// evaluated at runtime from the device's micro-architecture parameters, so
// the programmer never specifies it. The package also provides the baseline
// mappers the paper compares against (naive lws=1 and fixed lws=32), the
// three-regime taxonomy of Section 2, and a boundedness classifier over
// simulator counters used to group kernels like Figure 2.
package core

import "fmt"

// HWInfo is the runtime-visible micro-architecture of a device.
type HWInfo struct {
	Cores   int
	Warps   int // per core
	Threads int // per warp
}

// HP is the hardware parallelism: total thread slots (Eq. 1 denominator).
func (h HWInfo) HP() int { return h.Cores * h.Warps * h.Threads }

// Name renders the paper's compact notation, e.g. "4c8w16t".
func (h HWInfo) Name() string { return fmt.Sprintf("%dc%dw%dt", h.Cores, h.Warps, h.Threads) }

// Valid reports whether the geometry is positive.
func (h HWInfo) Valid() bool { return h.Cores > 0 && h.Warps > 0 && h.Threads > 0 }

// OptimalLWS evaluates Eq. 1 with the paper's clamping: when hp exceeds gws
// the division resolves to lws=1 (every work item gets its own slot), and a
// non-dividing gws/hp rounds up so a single batch still covers all work.
func OptimalLWS(gws int, hw HWInfo) int {
	if gws <= 0 || !hw.Valid() {
		return 1
	}
	hp := hw.HP()
	if hp >= gws {
		return 1
	}
	return ceilDiv(gws, hp)
}

// Tasks returns the number of workgroup tasks an NDRange produces.
func Tasks(gws, lws int) int {
	if lws < 1 {
		lws = 1
	}
	return ceilDiv(gws, lws)
}

// Batches returns how many sequential rounds of hp tasks the launch needs
// (the "multiple kernel calls" of the paper's lws=1 scenario).
func Batches(gws, lws int, hw HWInfo) int {
	if !hw.Valid() {
		return 0
	}
	return ceilDiv(Tasks(gws, lws), hw.HP())
}

// Regime classifies an (lws, gws, hw) combination per Section 2.
type Regime uint8

const (
	// RegimeUnder: lws < gws/hp — more tasks than slots; sequential
	// batches with per-batch software overhead.
	RegimeUnder Regime = iota
	// RegimeExact: lws = gws/hp — one task per slot, single batch.
	RegimeExact
	// RegimeOver: lws > gws/hp — fewer tasks than slots; idle hardware.
	RegimeOver
)

func (r Regime) String() string {
	switch r {
	case RegimeUnder:
		return "under (multiple batches)"
	case RegimeExact:
		return "exact (single full batch)"
	case RegimeOver:
		return "over (under-utilized)"
	}
	return fmt.Sprintf("regime(%d)", uint8(r))
}

// RegimeOf returns the regime of a concrete launch.
func RegimeOf(gws, lws int, hw HWInfo) Regime {
	tasks := Tasks(gws, lws)
	hp := hw.HP()
	switch {
	case tasks > hp:
		return RegimeUnder
	case tasks == hp || lws == OptimalLWS(gws, hw):
		return RegimeExact
	default:
		return RegimeOver
	}
}

// Mapper chooses an lws for a launch. The simulated runtime consults it
// whenever the host passes lws=0 (auto).
type Mapper interface {
	Name() string
	LWS(gws int, hw HWInfo) int
}

// Naive is the paper's lws=1 baseline: never unroll the kernel temporally
// over one thread.
type Naive struct{}

func (Naive) Name() string        { return "lws=1" }
func (Naive) LWS(int, HWInfo) int { return 1 }

// Fixed is the paper's hardware-agnostic fixed baseline (lws=32 in Fig. 2).
type Fixed struct{ N int }

func (f Fixed) Name() string { return fmt.Sprintf("lws=%d", f.N) }
func (f Fixed) LWS(gws int, _ HWInfo) int {
	if f.N < 1 {
		return 1
	}
	return f.N
}

// Auto is the paper's mapper: Eq. 1 evaluated at runtime.
type Auto struct{}

func (Auto) Name() string               { return "ours" }
func (Auto) LWS(gws int, hw HWInfo) int { return OptimalLWS(gws, hw) }

// Advice is a tuning report for one prospective launch.
type Advice struct {
	LWS         int
	Tasks       int
	Batches     int
	Regime      Regime
	SlotsFilled int // hardware slots that receive at least one task
	Explanation string
}

// Advise explains the Eq. 1 decision for a launch, including the expected
// occupancy, for tooling and the autotune example.
func Advise(gws int, hw HWInfo) Advice {
	lws := OptimalLWS(gws, hw)
	tasks := Tasks(gws, lws)
	hp := hw.HP()
	filled := tasks
	if filled > hp {
		filled = hp
	}
	a := Advice{
		LWS:         lws,
		Tasks:       tasks,
		Batches:     Batches(gws, lws, hw),
		Regime:      RegimeOf(gws, lws, hw),
		SlotsFilled: filled,
	}
	switch {
	case hp >= gws:
		a.Explanation = fmt.Sprintf(
			"hardware parallelism hp=%d >= gws=%d: Eq. 1 resolves to lws=1; each work item gets its own thread slot (%d of %d slots used)",
			hp, gws, filled, hp)
	case gws%hp == 0:
		a.Explanation = fmt.Sprintf(
			"lws = gws/hp = %d/%d = %d: all %d slots receive exactly one workgroup in a single batch",
			gws, hp, lws, hp)
	default:
		a.Explanation = fmt.Sprintf(
			"gws=%d does not divide by hp=%d: lws = ceil(gws/hp) = %d keeps a single batch with %d of %d slots filled",
			gws, hp, lws, filled, hp)
	}
	return a
}

// Boundedness labels a kernel execution as in Figure 2's grouping.
type Boundedness uint8

const (
	ComputeBound Boundedness = iota
	MemoryBound
)

func (b Boundedness) String() string {
	if b == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Classify labels an execution from simulator stall counters: it is
// memory-bound when memory stalls dominate lost issue slots and exceed a
// third of total cycles.
func Classify(memStall, execStall, cycles uint64) Boundedness {
	if cycles == 0 {
		return ComputeBound
	}
	if memStall > execStall && memStall*3 > cycles {
		return MemoryBound
	}
	return ComputeBound
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ParseName parses the compact configuration notation ("4c8w16t") back
// into an HWInfo.
func ParseName(s string) (HWInfo, error) {
	var h HWInfo
	if _, err := fmt.Sscanf(s, "%dc%dw%dt", &h.Cores, &h.Warps, &h.Threads); err != nil {
		return HWInfo{}, fmt.Errorf("core: bad config %q (want e.g. 4c8w16t): %v", s, err)
	}
	if !h.Valid() {
		return HWInfo{}, fmt.Errorf("core: non-positive geometry %q", s)
	}
	return h, nil
}
