package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOptimalLWSPaperExamples(t *testing.T) {
	// Figure 1: gws=128 on 1c2w4t (hp=8) -> lws=16 is the exact mapping.
	hw := HWInfo{Cores: 1, Warps: 2, Threads: 4}
	if got := OptimalLWS(128, hw); got != 16 {
		t.Errorf("OptimalLWS(128, 1c2w4t) = %d, want 16", got)
	}
	// hp > gws resolves to 1 (Section 3: "Eq. 1 resolves to lws=1").
	big := HWInfo{Cores: 64, Warps: 32, Threads: 32}
	if got := OptimalLWS(4096, big); got != 1 {
		t.Errorf("OptimalLWS(4096, 64c32w32t) = %d, want 1", got)
	}
	// Exact division.
	if got := OptimalLWS(4096, HWInfo{Cores: 4, Warps: 4, Threads: 4}); got != 64 {
		t.Errorf("OptimalLWS(4096, 4c4w4t) = %d, want 64", got)
	}
	// Non-dividing rounds up: 100 work items over hp=8 -> ceil(12.5)=13.
	if got := OptimalLWS(100, hw); got != 13 {
		t.Errorf("OptimalLWS(100, hp=8) = %d, want 13", got)
	}
}

func TestOptimalLWSDegenerateInputs(t *testing.T) {
	if got := OptimalLWS(0, HWInfo{1, 1, 1}); got != 1 {
		t.Errorf("gws=0 -> %d", got)
	}
	if got := OptimalLWS(-5, HWInfo{1, 1, 1}); got != 1 {
		t.Errorf("gws<0 -> %d", got)
	}
	if got := OptimalLWS(64, HWInfo{}); got != 1 {
		t.Errorf("invalid hw -> %d", got)
	}
}

func TestOptimalLWSSingleBatchProperty(t *testing.T) {
	// Property: for valid inputs the chosen lws always yields exactly one
	// batch (tasks <= hp) and never an empty slot count.
	f := func(gwsRaw uint16, c, w, th uint8) bool {
		gws := int(gwsRaw)%100000 + 1
		hw := HWInfo{int(c)%64 + 1, int(w)%32 + 1, int(th)%32 + 1}
		lws := OptimalLWS(gws, hw)
		if lws < 1 {
			return false
		}
		return Tasks(gws, lws) <= hw.HP() && Batches(gws, lws, hw) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestOptimalLWSMinimality(t *testing.T) {
	// Property: among single-batch choices, Eq. 1 (with ceil) picks the
	// smallest lws, i.e. lws-1 would need more than one batch or be 0 --
	// except in the hp>=gws clamp where lws=1 is forced.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		gws := r.Intn(50000) + 1
		hw := HWInfo{r.Intn(64) + 1, r.Intn(32) + 1, r.Intn(32) + 1}
		lws := OptimalLWS(gws, hw)
		if hw.HP() >= gws {
			if lws != 1 {
				t.Fatalf("clamp violated: gws=%d %s lws=%d", gws, hw.Name(), lws)
			}
			continue
		}
		if lws > 1 && Tasks(gws, lws-1) <= hw.HP() {
			t.Fatalf("not minimal: gws=%d %s lws=%d but lws-1 also single-batch", gws, hw.Name(), lws)
		}
	}
}

func TestRegimeTaxonomy(t *testing.T) {
	hw := HWInfo{Cores: 1, Warps: 2, Threads: 4} // hp = 8, the Fig. 1 setup
	cases := []struct {
		gws, lws int
		want     Regime
	}{
		{128, 1, RegimeUnder},  // Fig. 1 top: 128 tasks > 8 slots
		{128, 16, RegimeExact}, // Fig. 1 second: 8 tasks = 8 slots
		{128, 32, RegimeOver},  // Fig. 1 third: 4 tasks < 8 slots
		{128, 64, RegimeOver},  // Fig. 1 bottom: 2 tasks
		{4, 1, RegimeExact},    // hp>gws: naive == ours
	}
	for _, c := range cases {
		if got := RegimeOf(c.gws, c.lws, hw); got != c.want {
			t.Errorf("RegimeOf(%d, %d) = %v, want %v", c.gws, c.lws, got, c.want)
		}
	}
}

func TestBatches(t *testing.T) {
	hw := HWInfo{1, 2, 4}
	if got := Batches(128, 1, hw); got != 16 {
		t.Errorf("Batches(128,1) = %d, want 16", got)
	}
	if got := Batches(128, 16, hw); got != 1 {
		t.Errorf("Batches(128,16) = %d, want 1", got)
	}
	if got := Batches(130, 16, hw); got != 2 {
		t.Errorf("Batches(130,16) = %d, want 2 (9 tasks over 8 slots)", got)
	}
}

func TestMappers(t *testing.T) {
	hw := HWInfo{2, 2, 2}
	if got := (Naive{}).LWS(1000, hw); got != 1 {
		t.Errorf("naive = %d", got)
	}
	if got := (Fixed{N: 32}).LWS(1000, hw); got != 32 {
		t.Errorf("fixed = %d", got)
	}
	if got := (Fixed{N: 0}).LWS(1000, hw); got != 1 {
		t.Errorf("fixed(0) = %d, want clamp to 1", got)
	}
	if got := (Auto{}).LWS(1000, hw); got != OptimalLWS(1000, hw) {
		t.Errorf("auto = %d", got)
	}
	names := []string{Naive{}.Name(), Fixed{N: 32}.Name(), Auto{}.Name()}
	want := []string{"lws=1", "lws=32", "ours"}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("name %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestHWInfo(t *testing.T) {
	h := HWInfo{4, 8, 16}
	if h.HP() != 512 {
		t.Errorf("HP = %d", h.HP())
	}
	if h.Name() != "4c8w16t" {
		t.Errorf("Name = %q", h.Name())
	}
	if !h.Valid() {
		t.Error("valid geometry rejected")
	}
	if (HWInfo{0, 1, 1}).Valid() {
		t.Error("invalid geometry accepted")
	}
}

func TestAdvise(t *testing.T) {
	// Exact-fit case.
	a := Advise(128, HWInfo{1, 2, 4})
	if a.LWS != 16 || a.Regime != RegimeExact || a.Batches != 1 || a.SlotsFilled != 8 {
		t.Errorf("advise exact = %+v", a)
	}
	if !strings.Contains(a.Explanation, "128/8") {
		t.Errorf("explanation = %q", a.Explanation)
	}
	// Clamp case.
	a = Advise(4, HWInfo{1, 2, 4})
	if a.LWS != 1 || a.SlotsFilled != 4 {
		t.Errorf("advise clamp = %+v", a)
	}
	if !strings.Contains(a.Explanation, "lws=1") {
		t.Errorf("explanation = %q", a.Explanation)
	}
	// Non-dividing case.
	a = Advise(100, HWInfo{1, 2, 4})
	if a.LWS != 13 || a.Batches != 1 {
		t.Errorf("advise ceil = %+v", a)
	}
	if !strings.Contains(a.Explanation, "ceil") {
		t.Errorf("explanation = %q", a.Explanation)
	}
}

func TestClassify(t *testing.T) {
	if got := Classify(800, 100, 1000); got != MemoryBound {
		t.Errorf("heavy mem stalls = %v", got)
	}
	if got := Classify(100, 800, 1000); got != ComputeBound {
		t.Errorf("heavy exec stalls = %v", got)
	}
	if got := Classify(200, 100, 1000); got != ComputeBound {
		t.Errorf("light mem stalls = %v (below 1/3 threshold)", got)
	}
	if got := Classify(0, 0, 0); got != ComputeBound {
		t.Errorf("zero cycles = %v", got)
	}
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("bad boundedness strings")
	}
}

func TestTasksClampsLWS(t *testing.T) {
	if got := Tasks(100, 0); got != 100 {
		t.Errorf("Tasks with lws=0 = %d", got)
	}
	if got := Tasks(100, 1000); got != 1 {
		t.Errorf("Tasks with lws>gws = %d", got)
	}
}

func TestParseName(t *testing.T) {
	h, err := ParseName("4c8w16t")
	if err != nil || h != (HWInfo{4, 8, 16}) {
		t.Errorf("ParseName = %+v, %v", h, err)
	}
	if h2, err := ParseName(h.Name()); err != nil || h2 != h {
		t.Error("round trip failed")
	}
	for _, bad := range []string{"", "4c8w", "0c1w1t", "x", "4c-8w16t"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
}
