package asm

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// SourceKey returns a stable content key for an Assemble invocation: a hash
// of the source text, link base and define set. Two invocations with equal
// keys produce structurally identical Programs, so the key is safe to use
// for content-addressed program caching (Programs are immutable after
// Assemble; see the ocl program cache). Defines are folded in sorted order
// so map iteration order cannot perturb the key.
func SourceKey(src string, base uint32, defs map[string]int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "base=%d\x00", base)
	h.Write([]byte(src))
	h.Write([]byte{0})
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s=%d\x00", name, defs[name])
	}
	return h.Sum64()
}
