package asm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0x1000, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicArithmetic(t *testing.T) {
	p := assemble(t, `
		addi a0, zero, 5
		add  a1, a0, a0
		mul  a2, a1, a0
		sub  a3, a2, a1
	`)
	if len(p.Words) != 4 {
		t.Fatalf("got %d words, want 4", len(p.Words))
	}
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 10, Rs1: 0, Imm: 5},
		{Op: isa.ADD, Rd: 11, Rs1: 10, Rs2: 10},
		{Op: isa.MUL, Rd: 12, Rs1: 11, Rs2: 10},
		{Op: isa.SUB, Rd: 13, Rs1: 12, Rs2: 11},
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
	start:
		addi t0, zero, 10
	loop:
		addi t0, t0, -1
		bnez t0, loop
		beq  zero, zero, done
		nop
	done:
		ecall
	`)
	if got := p.Symbols["start"]; got != 0x1000 {
		t.Errorf("start = %#x", got)
	}
	if got := p.Symbols["loop"]; got != 0x1004 {
		t.Errorf("loop = %#x", got)
	}
	// bnez at 0x1008 targets 0x1004: offset -4.
	in := p.Insts[2]
	if in.Op != isa.BNE || in.Imm != -4 {
		t.Errorf("bnez = %+v", in)
	}
	// beq at 0x100c targets done at 0x1014: offset +8.
	in = p.Insts[3]
	if in.Op != isa.BEQ || in.Imm != 8 {
		t.Errorf("beq = %+v", in)
	}
}

func TestLiExpansion(t *testing.T) {
	p := assemble(t, `
		li a0, 42
		li a1, 0x12345678
		li a2, -1
		li a3, 0xFFFFF800
	`)
	// 42 and -1 fit 12 bits: 1 word each. 0x12345678 needs 2.
	// 0xFFFFF800 == -2048 as int32: 1 word.
	if len(p.Words) != 1+2+1+1 {
		t.Fatalf("got %d words, want 5: %s", len(p.Words), Disassemble(p))
	}
	if p.Insts[0].Op != isa.ADDI || p.Insts[0].Imm != 42 {
		t.Errorf("li 42 = %+v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.LUI {
		t.Errorf("li big word 1 = %+v", p.Insts[1])
	}
	if p.Insts[2].Op != isa.ADDI {
		t.Errorf("li big word 2 = %+v", p.Insts[2])
	}
	// Check the lui+addi pair reconstructs the value.
	hi := uint32(p.Insts[1].Imm)
	lo := p.Insts[2].Imm
	if hi+uint32(lo) != 0x12345678 {
		t.Errorf("li reconstruction = %#x", hi+uint32(lo))
	}
	if p.Insts[4].Op != isa.ADDI || p.Insts[4].Imm != -2048 {
		t.Errorf("li 0xFFFFF800 = %+v", p.Insts[4])
	}
}

func TestLiWithLabelTakesTwoWords(t *testing.T) {
	p := assemble(t, `
		la a0, data
		ecall
	data:
		.word 7
	`)
	if len(p.Words) != 4 {
		t.Fatalf("got %d words, want 4", len(p.Words))
	}
	// data is at 0x100c; lui+addi must produce it.
	hi := uint32(p.Insts[0].Imm)
	lo := p.Insts[1].Imm
	if hi+uint32(lo) != p.Symbols["data"] {
		t.Errorf("la = %#x, want %#x", hi+uint32(lo), p.Symbols["data"])
	}
	if p.Words[3] != 7 {
		t.Errorf("data word = %d", p.Words[3])
	}
}

func TestDefinesAndExpressions(t *testing.T) {
	p, err := Assemble(`
		.equ STRIDE, NBUF*4
		li a0, BASE + STRIDE
		li a1, (1 << 4) | 3
		li a2, ~0 & 0xFF
		li a3, 100 / 3 % 7
	`, 0x1000, map[string]int64{"BASE": 0x2000, "NBUF": 8})
	if err != nil {
		t.Fatal(err)
	}
	insts := onlyInsts(p)
	// BASE+STRIDE = 0x2020 — needs lui+addi.
	if got := uint32(insts[0].Imm) + uint32(insts[1].Imm); got != 0x2020 {
		t.Errorf("a0 = %#x, want 0x2020", got)
	}
	if insts[2].Imm != 19 {
		t.Errorf("a1 = %d, want 19", insts[2].Imm)
	}
	if insts[3].Imm != 0xFF {
		t.Errorf("a2 = %d, want 255", insts[3].Imm)
	}
	if insts[4].Imm != 33%7 {
		t.Errorf("a3 = %d, want %d", insts[4].Imm, 33%7)
	}
}

func onlyInsts(p *Program) []isa.Inst { return p.Insts }

func TestMemoryOperands(t *testing.T) {
	p := assemble(t, `
		lw  a0, 8(sp)
		sw  a0, -4(s0)
		flw f1, 0(a0)
		fsw f1, 12(a1)
		lw  a2, (a3)
	`)
	want := []isa.Inst{
		{Op: isa.LW, Rd: 10, Rs1: 2, Imm: 8},
		{Op: isa.SW, Rs1: 8, Rs2: 10, Imm: -4},
		{Op: isa.FLW, Rd: 1, Rs1: 10, Imm: 0},
		{Op: isa.FSW, Rs1: 11, Rs2: 1, Imm: 12},
		{Op: isa.LW, Rd: 12, Rs1: 13, Imm: 0},
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
}

func TestFloatOps(t *testing.T) {
	p := assemble(t, `
		fadd.s  f0, f1, f2
		fmadd.s f3, f4, f5, f6
		fmv.s   f7, f8
		fneg.s  f9, f10
		flt.s   a0, f1, f2
		fcvt.s.w f1, a0
		fcvt.w.s a1, f1
		fsqrt.s f2, f3
	`)
	checks := []isa.Inst{
		{Op: isa.FADDS, Rd: 0, Rs1: 1, Rs2: 2},
		{Op: isa.FMADDS, Rd: 3, Rs1: 4, Rs2: 5, Rs3: 6},
		{Op: isa.FSGNJS, Rd: 7, Rs1: 8, Rs2: 8},
		{Op: isa.FSGNJNS, Rd: 9, Rs1: 10, Rs2: 10},
		{Op: isa.FLTS, Rd: 10, Rs1: 1, Rs2: 2},
		{Op: isa.FCVTSW, Rd: 1, Rs1: 10},
		{Op: isa.FCVTWS, Rd: 11, Rs1: 1},
		{Op: isa.FSQRTS, Rd: 2, Rs1: 3},
	}
	for i, w := range checks {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
}

func TestCSRAndVortexOps(t *testing.T) {
	p := assemble(t, `
		csrr a0, tid
		csrr a1, wid
		csrr a2, cid
		csrr a3, nt
		csrw 0x800, a0
		vx_tmc t0
		vx_wspawn t1, t2
		vx_split t3
		vx_join
		vx_bar t4, t5
		vx_pred t6
		vx_ballot a4, a5
	`)
	if p.Insts[0].Op != isa.CSRRS || p.Insts[0].CSR != isa.CSRThreadID {
		t.Errorf("csrr tid = %+v", p.Insts[0])
	}
	if p.Insts[4].Op != isa.CSRRW || p.Insts[4].CSR != 0x800 {
		t.Errorf("csrw = %+v", p.Insts[4])
	}
	wantOps := []isa.Op{
		isa.CSRRS, isa.CSRRS, isa.CSRRS, isa.CSRRS, isa.CSRRW,
		isa.VXTMC, isa.VXWSPAWN, isa.VXSPLIT, isa.VXJOIN, isa.VXBAR, isa.VXPRED, isa.VXBALLOT,
	}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d op = %s, want %s", i, p.Insts[i].Op, op)
		}
	}
}

func TestTags(t *testing.T) {
	p := assemble(t, `
	.tag init
		addi a0, zero, 1
		addi a1, zero, 2
	.tag body
		add a2, a0, a1
	.tag exit
		ecall
	`)
	cases := []struct {
		pc   uint32
		want string
	}{
		{0x1000, "init"},
		{0x1004, "init"},
		{0x1008, "body"},
		{0x100C, "exit"},
	}
	for _, c := range cases {
		if got := p.TagAt(c.pc); got != c.want {
			t.Errorf("TagAt(%#x) = %q, want %q", c.pc, got, c.want)
		}
	}
	if got := p.TagAt(0x2000); got != "" {
		t.Errorf("TagAt(out of range) = %q", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := assemble(t, `
		mv   a0, a1
		nop
		not  a2, a3
		neg  a4, a5
		seqz a6, a7
		snez s2, s3
		j    end
		jal  end
		jr   ra
		ret
	end:
		ecall
	`)
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 10, Rs1: 11},
		{Op: isa.ADDI},
		{Op: isa.XORI, Rd: 12, Rs1: 13, Imm: -1},
		{Op: isa.SUB, Rd: 14, Rs1: 0, Rs2: 15},
		{Op: isa.SLTIU, Rd: 16, Rs1: 17, Imm: 1},
		{Op: isa.SLTU, Rd: 18, Rs1: 0, Rs2: 19},
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
	if p.Insts[6].Op != isa.JAL || p.Insts[6].Rd != 0 {
		t.Errorf("j = %+v", p.Insts[6])
	}
	if p.Insts[7].Op != isa.JAL || p.Insts[7].Rd != 1 {
		t.Errorf("jal = %+v", p.Insts[7])
	}
	if p.Insts[8].Op != isa.JALR || p.Insts[8].Rd != 0 || p.Insts[8].Rs1 != 1 {
		t.Errorf("jr = %+v", p.Insts[8])
	}
	if p.Insts[9].Op != isa.JALR || p.Insts[9].Rd != 0 || p.Insts[9].Rs1 != 1 {
		t.Errorf("ret = %+v", p.Insts[9])
	}
}

func TestBranchSwapsAndZeroForms(t *testing.T) {
	p := assemble(t, `
	top:
		bgt  a0, a1, top
		ble  a0, a1, top
		bgtu a0, a1, top
		bleu a0, a1, top
		blez a0, top
		bgtz a0, top
	`)
	// bgt a0,a1 == blt a1,a0
	if p.Insts[0].Op != isa.BLT || p.Insts[0].Rs1 != 11 || p.Insts[0].Rs2 != 10 {
		t.Errorf("bgt = %+v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.BGE || p.Insts[1].Rs1 != 11 {
		t.Errorf("ble = %+v", p.Insts[1])
	}
	if p.Insts[4].Op != isa.BGE || p.Insts[4].Rs1 != 0 || p.Insts[4].Rs2 != 10 {
		t.Errorf("blez = %+v", p.Insts[4])
	}
	if p.Insts[5].Op != isa.BLT || p.Insts[5].Rs1 != 0 || p.Insts[5].Rs2 != 10 {
		t.Errorf("bgtz = %+v", p.Insts[5])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus a0, a1", "unknown mnemonic"},
		{"addi a0, a1", "needs 3 operands"},
		{"addi a0, a1, 99999", "immediate"},
		{"lw a0, 4000(a1)", "offset"},
		{"lw a0, a1", "memory operand"},
		{"add a0, a1, qq", "bad integer register"},
		{"fadd.s f0, f1, a0", "bad float register"},
		{"beq a0, a1, nowhere", "undefined symbol"},
		{"x: addi a0, zero, 1\nx: nop", "duplicate label"},
		{".equ q, 1/0", "division"},
		{".space 3", "multiple of 4"},
		{"li a0, 1 +", "expression"},
		{"csrr a0, 0x2000", "out of range"},
		{"lui a0, 0x200000", "20-bit"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, 0x1000, nil)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error = %q, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	var b strings.Builder
	b.WriteString("top:\n")
	for i := 0; i < 1200; i++ {
		b.WriteString("nop\n")
	}
	b.WriteString("beq zero, zero, top\n")
	if _, err := Assemble(b.String(), 0x1000, nil); err == nil {
		t.Error("expected out-of-range branch error")
	}
}

func TestRoundTripThroughDecoder(t *testing.T) {
	// Every emitted instruction word must decode back to the same Inst the
	// assembler produced.
	p := assemble(t, `
	.equ N, 64
	entry:
		csrr a0, tid
		li   t0, N*4
		la   t1, table
	loop:
		lw   t2, 0(t1)
		addi t1, t1, 4
		addi t0, t0, -4
		bnez t0, loop
		fcvt.s.w f0, t2
		fmadd.s f1, f0, f0, f0
		ecall
	table:
		.word 1, 2, 3, 4
	`)
	for i, w := range p.Words {
		if p.Insts[i].Op == isa.OpInvalid {
			continue
		}
		got, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
		if got != p.Insts[i] {
			t.Errorf("word %d: decode = %+v, stored %+v", i, got, p.Insts[i])
		}
	}
	if p.SourceAt(p.Base) == "" {
		t.Error("SourceAt(base) empty")
	}
	if _, ok := p.InstAt(p.Base + 4); !ok {
		t.Error("InstAt(base+4) failed")
	}
	if _, ok := p.InstAt(p.Base + 2); ok {
		t.Error("InstAt(misaligned) succeeded")
	}
}

func TestWordDataAndSpace(t *testing.T) {
	p := assemble(t, `
		.word 0xDEADBEEF, 42
		.space 8
		.word end
	end:
	`)
	if p.Words[0] != 0xDEADBEEF || p.Words[1] != 42 {
		t.Errorf("words = %#x %#x", p.Words[0], p.Words[1])
	}
	if p.Words[2] != 0 || p.Words[3] != 0 {
		t.Errorf("space not zeroed")
	}
	if p.Words[4] != p.Symbols["end"] {
		t.Errorf("label word = %#x, want %#x", p.Words[4], p.Symbols["end"])
	}
	if p.Symbols["end"] != p.End() {
		t.Errorf("end symbol %#x != End() %#x", p.Symbols["end"], p.End())
	}
}

func TestDisassembleListing(t *testing.T) {
	p := assemble(t, `
	.tag body
		addi a0, zero, 1
		ecall
	`)
	out := Disassemble(p)
	if !strings.Contains(out, "section: body") {
		t.Errorf("listing missing section header:\n%s", out)
	}
	if !strings.Contains(out, "addi a0, zero, 1") {
		t.Errorf("listing missing instruction:\n%s", out)
	}
}

func TestDefineCollisionWithLabel(t *testing.T) {
	_, err := Assemble("BASE: nop", 0x1000, map[string]int64{"BASE": 1})
	if err == nil {
		t.Error("expected collision error")
	}
}

func TestMisalignedBase(t *testing.T) {
	if _, err := Assemble("nop", 0x1002, nil); err == nil {
		t.Error("expected alignment error")
	}
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
		.byte 1, 2, 3, 4, 5
		.half 0x1234, 0x5678
		.ascii "Hi!"
		.asciz "ok"
	`)
	// .byte: 5 bytes -> 2 words: 0x04030201, 0x00000005
	if p.Words[0] != 0x04030201 || p.Words[1] != 0x05 {
		t.Errorf(".byte words = %#x %#x", p.Words[0], p.Words[1])
	}
	// .half little-endian pairs.
	if p.Words[2] != 0x56781234 {
		t.Errorf(".half word = %#x", p.Words[2])
	}
	// "Hi!" = 48 69 21
	if p.Words[3] != 0x00216948 {
		t.Errorf(".ascii word = %#x", p.Words[3])
	}
	// "ok\0" = 6f 6b 00
	if p.Words[4] != 0x00006b6f {
		t.Errorf(".asciz word = %#x", p.Words[4])
	}
}

func TestAlignDirective(t *testing.T) {
	p := assemble(t, `
		nop
		.align 16
	target:
		nop
	`)
	if got := p.Symbols["target"]; got != 0x1010 {
		t.Errorf("aligned label = %#x, want 0x1010", got)
	}
	// Already aligned: no padding.
	p = assemble(t, `
		.align 8
	t2:
		nop
	`)
	if got := p.Symbols["t2"]; got != 0x1000 {
		t.Errorf("t2 = %#x", got)
	}
}

func TestDataDirectiveErrors(t *testing.T) {
	cases := []string{
		".byte 300",
		".byte -200",
		".half 70000",
		".ascii nope",
		`.ascii "bad \q"`,
		".align 3",
		".align 6",
		".byte",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0x1000, nil); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	p := assemble(t, `.asciz "a\nb\t\"\\\0c"`)
	want := []byte{'a', '\n', 'b', '\t', '"', '\\', 0, 'c', 0}
	for i, wb := range want {
		got := byte(p.Words[i/4] >> uint(8*(i%4)))
		if got != wb {
			t.Errorf("byte %d = %#x, want %#x", i, got, wb)
		}
	}
}

func TestDisasmReassembleRoundTrip(t *testing.T) {
	// Property: disassembling an assembled program and re-assembling the
	// listing's instruction text reproduces the same machine words.
	// (Branch/jump targets are rendered as absolute addresses, which the
	// assembler accepts as expressions.)
	src := `
	.equ N, 12
	entry:
		csrr a0, tid
		li   t0, N
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		slli t2, t1, 1
		fcvt.s.w f0, t2
		fmadd.s f1, f0, f0, f0
		fsqrt.s f2, f1
		vx_split t0
		vx_join
		ecall
	`
	p1 := assemble(t, src)
	var relisted strings.Builder
	for i, w := range p1.Words {
		if p1.Insts[i].Op == isa.OpInvalid {
			fmt.Fprintf(&relisted, ".word %#x\n", w)
			continue
		}
		pc := p1.Base + uint32(i)*4
		fmt.Fprintf(&relisted, "%s\n", isa.Disasm(p1.Insts[i], pc))
	}
	p2, err := Assemble(relisted.String(), p1.Base, nil)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, relisted.String())
	}
	if len(p2.Words) != len(p1.Words) {
		t.Fatalf("word count changed: %d -> %d", len(p1.Words), len(p2.Words))
	}
	for i := range p1.Words {
		if p1.Words[i] != p2.Words[i] {
			t.Errorf("word %d: %#08x -> %#08x (%s)", i, p1.Words[i], p2.Words[i],
				isa.Disasm(p1.Insts[i], p1.Base+uint32(i)*4))
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := assemble(t, `
		# leading comment
		nop          # trailing comment
		// C++-style comment line
		nop          // another

	`)
	if len(p.Words) != 2 {
		t.Fatalf("words = %d, want 2", len(p.Words))
	}
}

func TestMultipleLabelsPerLine(t *testing.T) {
	p := assemble(t, `
	a: b: c: nop
	`)
	for _, l := range []string{"a", "b", "c"} {
		if p.Symbols[l] != 0x1000 {
			t.Errorf("label %s = %#x", l, p.Symbols[l])
		}
	}
}
