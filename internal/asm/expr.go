package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// evalExpr evaluates an integer expression with symbols. Supported syntax:
// decimal/hex/binary/char literals, symbol names, unary - and ~, binary
// + - * / % << >> & | ^, and parentheses. Symbols resolve through syms; a
// reference to an unknown symbol returns errUndefined wrapping the name.
func evalExpr(src string, syms func(string) (int64, bool)) (int64, error) {
	p := &exprParser{src: src, syms: syms}
	v, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("unexpected %q in expression %q", p.src[p.pos:], src)
	}
	return v, nil
}

// errUndefined reports an expression referencing a symbol that is not (yet)
// defined. Pass 1 treats it as "size conservatively"; pass 2 as an error.
type errUndefined struct{ name string }

func (e errUndefined) Error() string { return "undefined symbol " + e.name }

type exprParser struct {
	src  string
	pos  int
	syms func(string) (int64, bool)
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *exprParser) eat(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *exprParser) parseOr() (int64, error) {
	v, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		if p.peek("||") { // not supported; avoid eating single |
			return 0, fmt.Errorf("unsupported operator || in %q", p.src)
		}
		if !p.eat("|") {
			return v, nil
		}
		r, err := p.parseXor()
		if err != nil {
			return 0, err
		}
		v |= r
	}
}

func (p *exprParser) parseXor() (int64, error) {
	v, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for p.eat("^") {
		r, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		v ^= r
	}
	return v, nil
}

func (p *exprParser) parseAnd() (int64, error) {
	v, err := p.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		if p.peek("&&") {
			return 0, fmt.Errorf("unsupported operator && in %q", p.src)
		}
		if !p.eat("&") {
			return v, nil
		}
		r, err := p.parseShift()
		if err != nil {
			return 0, err
		}
		v &= r
	}
}

func (p *exprParser) parseShift() (int64, error) {
	v, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.eat("<<"):
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", r)
			}
			v <<= uint(r)
		case p.eat(">>"):
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", r)
			}
			v >>= uint(r)
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseAdd() (int64, error) {
	v, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.eat("+"):
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v += r
		case p.peek(">>") || p.peek("<<"):
			return v, nil
		case p.eat("-"):
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseMul() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.eat("*"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case p.eat("/"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in %q", p.src)
			}
			v /= r
		case p.eat("%"):
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in %q", p.src)
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	switch {
	case p.eat("-"):
		v, err := p.parseUnary()
		return -v, err
	case p.eat("~"):
		v, err := p.parseUnary()
		return ^v, err
	case p.eat("("):
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		if !p.eat(")") {
			return 0, fmt.Errorf("missing ) in %q", p.src)
		}
		return v, nil
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '\'': // character literal
		rest := p.src[p.pos:]
		if len(rest) >= 3 && rest[2] == '\'' {
			p.pos += 3
			return int64(rest[1]), nil
		}
		return 0, fmt.Errorf("bad character literal in %q", p.src)
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && isSymChar(p.src[p.pos]) {
			p.pos++
		}
		lit := p.src[start:p.pos]
		v, err := strconv.ParseInt(lit, 0, 64)
		if err != nil {
			// Allow unsigned hex that overflows int64 range.
			u, uerr := strconv.ParseUint(lit, 0, 64)
			if uerr != nil {
				return 0, fmt.Errorf("bad number %q", lit)
			}
			return int64(u), nil
		}
		return v, nil
	case isSymStart(c):
		start := p.pos
		for p.pos < len(p.src) && isSymChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.syms(name)
		if !ok {
			return 0, errUndefined{name}
		}
		return v, nil
	}
	return 0, fmt.Errorf("unexpected character %q in %q", c, p.src)
}

func isSymStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSymChar(c byte) bool {
	return isSymStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}
