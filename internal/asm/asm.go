// Package asm implements a two-pass assembler for the project's
// RV32IMF + Vortex instruction set (see internal/isa). It supports labels,
// constant definitions, integer expressions, the usual RISC-V
// pseudo-instructions, and `.tag` directives that attach semantic section
// names to address ranges (used by the trace subsystem to reproduce the
// tagged wavefronts of the paper's Figure 1).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Program is the output of Assemble: a contiguous block of instruction
// words starting at Base, with pre-decoded instructions, a symbol table and
// semantic tag ranges.
type Program struct {
	Base    uint32
	Words   []uint32
	Insts   []isa.Inst // Insts[i] decodes Words[i]; data words hold Op = OpInvalid
	Symbols map[string]uint32
	Tags    []TagRange
	Lines   []LineInfo
}

// TagRange names the half-open address interval [Start, End).
type TagRange struct {
	Start, End uint32
	Name       string
}

// LineInfo maps one emitted word back to its source line.
type LineInfo struct {
	PC   uint32
	Line int
	Src  string
}

// Size returns the program size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Words)) * 4 }

// End returns the first address past the program.
func (p *Program) End() uint32 { return p.Base + p.Size() }

// TagAt returns the semantic tag covering pc, or "".
func (p *Program) TagAt(pc uint32) string {
	i := sort.Search(len(p.Tags), func(i int) bool { return p.Tags[i].End > pc })
	if i < len(p.Tags) && pc >= p.Tags[i].Start {
		return p.Tags[i].Name
	}
	return ""
}

// InstAt returns the decoded instruction at pc.
func (p *Program) InstAt(pc uint32) (isa.Inst, bool) {
	if pc < p.Base || pc >= p.End() || pc%4 != 0 {
		return isa.Inst{}, false
	}
	return p.Insts[(pc-p.Base)/4], true
}

// SourceAt returns the source line that emitted the word at pc, or "".
func (p *Program) SourceAt(pc uint32) string {
	i := sort.Search(len(p.Lines), func(i int) bool { return p.Lines[i].PC >= pc })
	if i < len(p.Lines) && p.Lines[i].PC == pc {
		return p.Lines[i].Src
	}
	return ""
}

// Error is an assembly error annotated with its 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// item is one parsed source statement scheduled for emission.
type item struct {
	line   int
	src    string
	op     string   // lower-case mnemonic or directive (".word" etc.)
	args   []string // raw operand strings
	pc     uint32
	nwords int
}

// Assemble translates source into a Program based at base. defs provides
// pre-defined symbols (in addition to labels and .equ definitions).
func Assemble(src string, base uint32, defs map[string]int64) (*Program, error) {
	if base%4 != 0 {
		return nil, fmt.Errorf("asm: base address %#x not word aligned", base)
	}
	a := &assembler{
		prog: &Program{Base: base, Symbols: map[string]uint32{}},
		syms: map[string]int64{},
	}
	for k, v := range defs {
		a.syms[k] = v
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(src string, base uint32, defs map[string]int64) *Program {
	p, err := Assemble(src, base, defs)
	if err != nil {
		panic(err)
	}
	return p
}

type tagMark struct {
	index int // item index the tag starts at
	name  string
}

type assembler struct {
	prog   *Program
	items  []item
	tags   []tagMark
	syms   map[string]int64 // defines, .equ values and (after layout) labels
	labels map[string]int   // label name -> item index, resolved to pc in layout
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// parse splits the source into labeled items and directives.
func (a *assembler) parse(src string) error {
	a.labels = map[string]int{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: one or more "name:" prefixes.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				break
			}
			if _, dup := a.labels[name]; dup {
				return a.errf(lineNo+1, "duplicate label %q", name)
			}
			if _, dup := a.syms[name]; dup {
				return a.errf(lineNo+1, "label %q collides with a defined symbol", name)
			}
			a.labels[name] = len(a.items)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		op, rest, _ := strings.Cut(line, " ")
		op = strings.ToLower(strings.TrimSpace(op))
		var args []string
		rest = strings.TrimSpace(rest)
		if op == ".ascii" || op == ".asciz" {
			args = []string{rest} // keep quoted strings intact
		} else if rest != "" {
			for _, f := range splitArgs(rest) {
				args = append(args, strings.TrimSpace(f))
			}
		}
		switch op {
		case ".equ":
			if len(args) != 2 {
				return a.errf(lineNo+1, ".equ needs name, value")
			}
			if !isIdent(args[0]) {
				return a.errf(lineNo+1, ".equ: bad name %q", args[0])
			}
			v, err := evalExpr(args[1], a.lookupNoLabels)
			if err != nil {
				return a.errf(lineNo+1, ".equ %s: %v", args[0], err)
			}
			a.syms[args[0]] = v
			continue
		case ".tag":
			if len(args) != 1 {
				return a.errf(lineNo+1, ".tag needs one name")
			}
			a.tags = append(a.tags, tagMark{index: len(a.items), name: args[0]})
			continue
		}
		a.items = append(a.items, item{line: lineNo + 1, src: line, op: op, args: args})
	}
	return nil
}

// splitArgs splits on commas that are not inside parentheses.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func isIdent(s string) bool {
	if s == "" || !isSymStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isSymChar(s[i]) {
			return false
		}
	}
	return true
}

func (a *assembler) lookupNoLabels(name string) (int64, bool) {
	v, ok := a.syms[name]
	return v, ok
}

// lookup resolves symbols including labels (valid after layout).
func (a *assembler) lookup(name string) (int64, bool) {
	if v, ok := a.syms[name]; ok {
		return v, true
	}
	return 0, false
}

// layout (pass 1) assigns a pc to every item, sizing multi-word
// pseudo-instructions, then resolves labels into the symbol table.
func (a *assembler) layout() error {
	pc := a.prog.Base
	for i := range a.items {
		it := &a.items[i]
		it.pc = pc // sizeOf needs the pc for .align
		n, err := a.sizeOf(it)
		if err != nil {
			return err
		}
		it.nwords = n
		pc += uint32(n) * 4
	}
	for name, idx := range a.labels {
		addr := pc // labels at end of program
		if idx < len(a.items) {
			addr = a.items[idx].pc
		}
		a.syms[name] = int64(addr)
		a.prog.Symbols[name] = addr
	}
	// Materialize tag ranges.
	end := func(idx int) uint32 {
		if idx < len(a.items) {
			return a.items[idx].pc
		}
		return pc
	}
	for i, tm := range a.tags {
		stop := pc
		if i+1 < len(a.tags) {
			stop = end(a.tags[i+1].index)
		}
		start := end(tm.index)
		if start == stop {
			continue
		}
		a.prog.Tags = append(a.prog.Tags, TagRange{Start: start, End: stop, Name: tm.name})
	}
	return nil
}

// sizeOf returns the number of words an item expands to.
func (a *assembler) sizeOf(it *item) (int, error) {
	switch it.op {
	case ".word":
		if len(it.args) == 0 {
			return 0, a.errf(it.line, ".word needs at least one value")
		}
		return len(it.args), nil
	case ".byte":
		if len(it.args) == 0 {
			return 0, a.errf(it.line, ".byte needs at least one value")
		}
		return (len(it.args) + 3) / 4, nil
	case ".half":
		if len(it.args) == 0 {
			return 0, a.errf(it.line, ".half needs at least one value")
		}
		return (len(it.args) + 1) / 2, nil
	case ".ascii", ".asciz":
		str, err := parseStringLit(it.args[0])
		if err != nil {
			return 0, a.errf(it.line, "%s: %v", it.op, err)
		}
		n := len(str)
		if it.op == ".asciz" {
			n++
		}
		return (n + 3) / 4, nil
	case ".align":
		if len(it.args) != 1 {
			return 0, a.errf(it.line, ".align needs a byte alignment")
		}
		n, err := evalExpr(it.args[0], a.lookupNoLabels)
		if err != nil {
			return 0, a.errf(it.line, ".align: %v", err)
		}
		if n < 4 || n%4 != 0 || n&(n-1) != 0 {
			return 0, a.errf(it.line, ".align %d must be a power-of-two multiple of 4", n)
		}
		pad := (uint32(n) - it.pc%uint32(n)) % uint32(n)
		return int(pad / 4), nil
	case ".space":
		if len(it.args) != 1 {
			return 0, a.errf(it.line, ".space needs a byte count")
		}
		n, err := evalExpr(it.args[0], a.lookupNoLabels)
		if err != nil {
			return 0, a.errf(it.line, ".space: %v", err)
		}
		if n < 0 || n%4 != 0 {
			return 0, a.errf(it.line, ".space size %d must be a non-negative multiple of 4", n)
		}
		return int(n / 4), nil
	case "li", "la":
		if len(it.args) != 2 {
			return 0, a.errf(it.line, "%s needs rd, value", it.op)
		}
		// If the value is fully resolvable now and fits 12 bits (after
		// truncation to 32 bits), one word.
		if v, err := evalExpr(it.args[1], a.lookupNoLabels); err == nil {
			if v >= -(1<<31) && v <= (1<<32)-1 {
				if v32 := int64(int32(uint32(v))); v32 >= -2048 && v32 <= 2047 {
					return 1, nil
				}
			}
		}
		return 2, nil
	}
	return 1, nil
}

// emit (pass 2) encodes every item.
func (a *assembler) emit() error {
	for i := range a.items {
		it := &a.items[i]
		words, err := a.encodeItem(it)
		if err != nil {
			return err
		}
		if len(words) != it.nwords {
			return a.errf(it.line, "internal: size mismatch for %q (%d != %d)", it.src, len(words), it.nwords)
		}
		for _, w := range words {
			in, derr := isa.Decode(w)
			if derr != nil {
				in = isa.Inst{} // data word
			}
			a.prog.Lines = append(a.prog.Lines, LineInfo{PC: a.prog.Base + uint32(len(a.prog.Words))*4, Line: it.line, Src: it.src})
			a.prog.Words = append(a.prog.Words, w)
			a.prog.Insts = append(a.prog.Insts, in)
		}
	}
	return nil
}

// evalImm evaluates an operand expression with all symbols visible.
func (a *assembler) evalImm(it *item, s string) (int64, error) {
	v, err := evalExpr(s, a.lookup)
	if err != nil {
		return 0, a.errf(it.line, "%v", err)
	}
	return v, nil
}

func (a *assembler) intReg(it *item, s string) (uint8, error) {
	r, ok := isa.IntRegByName(strings.TrimSpace(s))
	if !ok {
		return 0, a.errf(it.line, "bad integer register %q", s)
	}
	return r, nil
}

func (a *assembler) floatReg(it *item, s string) (uint8, error) {
	r, ok := isa.FloatRegByName(strings.TrimSpace(s))
	if !ok {
		return 0, a.errf(it.line, "bad float register %q", s)
	}
	return r, nil
}

// parseMem parses "imm(rs1)" or "(rs1)" into offset and base register.
func (a *assembler) parseMem(it *item, s string) (int32, uint8, error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(it.line, "bad memory operand %q (want imm(reg))", s)
	}
	base, err := a.intReg(it, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	var off int64
	if offStr != "" {
		off, err = a.evalImm(it, offStr)
		if err != nil {
			return 0, 0, err
		}
	}
	if off < -2048 || off > 2047 {
		return 0, 0, a.errf(it.line, "memory offset %d out of range", off)
	}
	return int32(off), base, nil
}

func (a *assembler) enc(it *item, in isa.Inst) ([]uint32, error) {
	w, err := isa.Encode(in)
	if err != nil {
		return nil, a.errf(it.line, "%v", err)
	}
	return []uint32{w}, nil
}
