package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// mnemonic tables for the regular (non-pseudo) instruction classes.
var (
	r3IntOps = map[string]isa.Op{
		"add": isa.ADD, "sub": isa.SUB, "sll": isa.SLL, "slt": isa.SLT,
		"sltu": isa.SLTU, "xor": isa.XOR, "srl": isa.SRL, "sra": isa.SRA,
		"or": isa.OR, "and": isa.AND,
		"mul": isa.MUL, "mulh": isa.MULH, "mulhsu": isa.MULHSU, "mulhu": isa.MULHU,
		"div": isa.DIV, "divu": isa.DIVU, "rem": isa.REM, "remu": isa.REMU,
	}
	iOps = map[string]isa.Op{
		"addi": isa.ADDI, "slti": isa.SLTI, "sltiu": isa.SLTIU,
		"xori": isa.XORI, "ori": isa.ORI, "andi": isa.ANDI,
		"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI,
	}
	loadOps = map[string]isa.Op{
		"lb": isa.LB, "lh": isa.LH, "lw": isa.LW, "lbu": isa.LBU, "lhu": isa.LHU,
	}
	storeOps = map[string]isa.Op{
		"sb": isa.SB, "sh": isa.SH, "sw": isa.SW,
	}
	branchOps = map[string]isa.Op{
		"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
		"bltu": isa.BLTU, "bgeu": isa.BGEU,
	}
	// Branch pseudo-ops that swap operands.
	branchSwapOps = map[string]isa.Op{
		"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU,
	}
	fr3Ops = map[string]isa.Op{
		"fadd.s": isa.FADDS, "fsub.s": isa.FSUBS, "fmul.s": isa.FMULS,
		"fdiv.s": isa.FDIVS, "fsgnj.s": isa.FSGNJS, "fsgnjn.s": isa.FSGNJNS,
		"fsgnjx.s": isa.FSGNJXS, "fmin.s": isa.FMINS, "fmax.s": isa.FMAXS,
	}
	fr4Ops = map[string]isa.Op{
		"fmadd.s": isa.FMADDS, "fmsub.s": isa.FMSUBS,
		"fnmsub.s": isa.FNMSUBS, "fnmadd.s": isa.FNMADDS,
	}
	fcmpOps = map[string]isa.Op{
		"feq.s": isa.FEQS, "flt.s": isa.FLTS, "fle.s": isa.FLES,
	}
	csrOps = map[string]isa.Op{
		"csrrw": isa.CSRRW, "csrrs": isa.CSRRS, "csrrc": isa.CSRRC,
	}
	csrImmOps = map[string]isa.Op{
		"csrrwi": isa.CSRRWI, "csrrsi": isa.CSRRSI, "csrrci": isa.CSRRCI,
	}
)

// encodeItem translates one parsed statement into machine words.
func (a *assembler) encodeItem(it *item) ([]uint32, error) {
	need := func(n int) error {
		if len(it.args) != n {
			return a.errf(it.line, "%s needs %d operands, got %d", it.op, n, len(it.args))
		}
		return nil
	}

	switch {
	case it.op == ".word":
		var words []uint32
		for _, arg := range it.args {
			v, err := a.evalImm(it, arg)
			if err != nil {
				return nil, err
			}
			words = append(words, uint32(v))
		}
		return words, nil

	case it.op == ".space", it.op == ".align":
		return make([]uint32, it.nwords), nil

	case it.op == ".byte":
		var bytes []byte
		for _, arg := range it.args {
			v, err := a.evalImm(it, arg)
			if err != nil {
				return nil, err
			}
			if v < -128 || v > 255 {
				return nil, a.errf(it.line, ".byte value %d out of range", v)
			}
			bytes = append(bytes, byte(v))
		}
		return packBytes(bytes), nil

	case it.op == ".half":
		var bytes []byte
		for _, arg := range it.args {
			v, err := a.evalImm(it, arg)
			if err != nil {
				return nil, err
			}
			if v < -32768 || v > 65535 {
				return nil, a.errf(it.line, ".half value %d out of range", v)
			}
			bytes = append(bytes, byte(v), byte(v>>8))
		}
		return packBytes(bytes), nil

	case it.op == ".ascii", it.op == ".asciz":
		str, err := parseStringLit(it.args[0])
		if err != nil {
			return nil, a.errf(it.line, "%s: %v", it.op, err)
		}
		bytes := []byte(str)
		if it.op == ".asciz" {
			bytes = append(bytes, 0)
		}
		return packBytes(bytes), nil

	case r3IntOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.intReg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: r3IntOps[it.op], Rd: rd, Rs1: rs1, Rs2: rs2})

	case iOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.evalImm(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: iOps[it.op], Rd: rd, Rs1: rs1, Imm: int32(imm)})

	case loadOps[it.op] != isa.OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: loadOps[it.op], Rd: rd, Rs1: base, Imm: off})

	case storeOps[it.op] != isa.OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: storeOps[it.op], Rs1: base, Rs2: rs2, Imm: off})

	case it.op == "flw":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.FLW, Rd: rd, Rs1: base, Imm: off})

	case it.op == "fsw":
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.FSW, Rs1: base, Rs2: rs2, Imm: off})

	case branchOps[it.op] != isa.OpInvalid, branchSwapOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		op, swapped := branchOps[it.op], false
		if op == isa.OpInvalid {
			op, swapped = branchSwapOps[it.op], true
		}
		if swapped {
			rs1, rs2 = rs2, rs1
		}
		off, err := a.branchOffset(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})

	case it.op == "beqz" || it.op == "bnez" || it.op == "bltz" || it.op == "bgez" || it.op == "blez" || it.op == "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(it, it.args[1])
		if err != nil {
			return nil, err
		}
		var in isa.Inst
		switch it.op {
		case "beqz":
			in = isa.Inst{Op: isa.BEQ, Rs1: rs, Rs2: 0, Imm: off}
		case "bnez":
			in = isa.Inst{Op: isa.BNE, Rs1: rs, Rs2: 0, Imm: off}
		case "bltz":
			in = isa.Inst{Op: isa.BLT, Rs1: rs, Rs2: 0, Imm: off}
		case "bgez":
			in = isa.Inst{Op: isa.BGE, Rs1: rs, Rs2: 0, Imm: off}
		case "blez": // rs <= 0  <=>  0 >= rs  <=> bge zero, rs
			in = isa.Inst{Op: isa.BGE, Rs1: 0, Rs2: rs, Imm: off}
		case "bgtz": // rs > 0   <=>  0 < rs   <=> blt zero, rs
			in = isa.Inst{Op: isa.BLT, Rs1: 0, Rs2: rs, Imm: off}
		}
		return a.enc(it, in)

	case it.op == "jal":
		// jal label | jal rd, label
		switch len(it.args) {
		case 1:
			off, err := a.jumpOffset(it, it.args[0])
			if err != nil {
				return nil, err
			}
			return a.enc(it, isa.Inst{Op: isa.JAL, Rd: 1, Imm: off})
		case 2:
			rd, err := a.intReg(it, it.args[0])
			if err != nil {
				return nil, err
			}
			off, err := a.jumpOffset(it, it.args[1])
			if err != nil {
				return nil, err
			}
			return a.enc(it, isa.Inst{Op: isa.JAL, Rd: rd, Imm: off})
		}
		return nil, a.errf(it.line, "jal needs 1 or 2 operands")

	case it.op == "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.jumpOffset(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.JAL, Rd: 0, Imm: off})

	case it.op == "call":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.jumpOffset(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.JAL, Rd: 1, Imm: off})

	case it.op == "jalr":
		// jalr rs | jalr rd, imm(rs1)
		if len(it.args) == 1 {
			rs, err := a.intReg(it, it.args[0])
			if err != nil {
				return nil, err
			}
			return a.enc(it, isa.Inst{Op: isa.JALR, Rd: 1, Rs1: rs})
		}
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.JALR, Rd: rd, Rs1: base, Imm: off})

	case it.op == "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.JALR, Rd: 0, Rs1: rs})

	case it.op == "ret":
		return a.enc(it, isa.Inst{Op: isa.JALR, Rd: 0, Rs1: 1})

	case it.op == "lui" || it.op == "auipc":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.evalImm(it, it.args[1])
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFFF {
			return nil, a.errf(it.line, "%s immediate %d out of 20-bit range", it.op, v)
		}
		op := isa.LUI
		if it.op == "auipc" {
			op = isa.AUIPC
		}
		return a.enc(it, isa.Inst{Op: op, Rd: rd, Imm: int32(v) << 12})

	case it.op == "li" || it.op == "la":
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.evalImm(it, it.args[1])
		if err != nil {
			return nil, err
		}
		if v < -(1<<31) || v > (1<<32)-1 {
			return nil, a.errf(it.line, "%s value %d out of 32-bit range", it.op, v)
		}
		v32 := int64(int32(uint32(v)))
		if it.nwords == 1 {
			if v32 < -2048 || v32 > 2047 {
				return nil, a.errf(it.line, "internal: li value %d changed between passes", v32)
			}
			return a.enc(it, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: int32(v32)})
		}
		// lui+addi: hi compensates for the sign extension of the 12-bit lo.
		u := uint32(v32)
		hi := (u + 0x800) & 0xFFFFF000
		lo := int32(u - hi)
		w1, err := isa.Encode(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(hi)})
		if err != nil {
			return nil, a.errf(it.line, "%v", err)
		}
		w2, err := isa.Encode(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo})
		if err != nil {
			return nil, a.errf(it.line, "%v", err)
		}
		return []uint32{w1, w2}, nil

	case it.op == "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs})

	case it.op == "nop":
		return a.enc(it, isa.Inst{Op: isa.ADDI})

	case it.op == "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1})

	case it.op == "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.SUB, Rd: rd, Rs1: 0, Rs2: rs})

	case it.op == "seqz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1})

	case it.op == "snez":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.SLTU, Rd: rd, Rs1: 0, Rs2: rs})

	case fr3Ops[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.floatReg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: fr3Ops[it.op], Rd: rd, Rs1: rs1, Rs2: rs2})

	case fr4Ops[it.op] != isa.OpInvalid:
		if err := need(4); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.floatReg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		rs3, err := a.floatReg(it, it.args[3])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: fr4Ops[it.op], Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: rs3})

	case fcmpOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.floatReg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: fcmpOps[it.op], Rd: rd, Rs1: rs1, Rs2: rs2})

	case it.op == "fsqrt.s":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.FSQRTS, Rd: rd, Rs1: rs1})

	case it.op == "fmv.s" || it.op == "fneg.s" || it.op == "fabs.s":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		op := map[string]isa.Op{"fmv.s": isa.FSGNJS, "fneg.s": isa.FSGNJNS, "fabs.s": isa.FSGNJXS}[it.op]
		return a.enc(it, isa.Inst{Op: op, Rd: rd, Rs1: rs, Rs2: rs})

	case it.op == "fcvt.w.s" || it.op == "fcvt.wu.s" || it.op == "fmv.x.w" || it.op == "fclass.s":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.floatReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		op := map[string]isa.Op{
			"fcvt.w.s": isa.FCVTWS, "fcvt.wu.s": isa.FCVTWUS,
			"fmv.x.w": isa.FMVXW, "fclass.s": isa.FCLASSS,
		}[it.op]
		return a.enc(it, isa.Inst{Op: op, Rd: rd, Rs1: rs})

	case it.op == "fcvt.s.w" || it.op == "fcvt.s.wu" || it.op == "fmv.w.x":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.floatReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		op := map[string]isa.Op{
			"fcvt.s.w": isa.FCVTSW, "fcvt.s.wu": isa.FCVTSWU, "fmv.w.x": isa.FMVWX,
		}[it.op]
		return a.enc(it, isa.Inst{Op: op, Rd: rd, Rs1: rs})

	case csrOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		csr, err := a.csrNum(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: csrOps[it.op], Rd: rd, Rs1: rs1, CSR: csr})

	case csrImmOps[it.op] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		csr, err := a.csrNum(it, it.args[1])
		if err != nil {
			return nil, err
		}
		z, err := a.evalImm(it, it.args[2])
		if err != nil {
			return nil, err
		}
		if z < 0 || z > 31 {
			return nil, a.errf(it.line, "csr immediate %d out of range", z)
		}
		return a.enc(it, isa.Inst{Op: csrImmOps[it.op], Rd: rd, Rs1: uint8(z), CSR: csr})

	case it.op == "csrr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		csr, err := a.csrNum(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.CSRRS, Rd: rd, Rs1: 0, CSR: csr})

	case it.op == "csrw":
		if err := need(2); err != nil {
			return nil, err
		}
		csr, err := a.csrNum(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.CSRRW, Rd: 0, Rs1: rs, CSR: csr})

	case it.op == "ecall":
		return a.enc(it, isa.Inst{Op: isa.ECALL})
	case it.op == "ebreak":
		return a.enc(it, isa.Inst{Op: isa.EBREAK})
	case it.op == "fence":
		return a.enc(it, isa.Inst{Op: isa.FENCE})

	case it.op == "vx_tmc" || it.op == "vx_split" || it.op == "vx_pred":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		op := map[string]isa.Op{"vx_tmc": isa.VXTMC, "vx_split": isa.VXSPLIT, "vx_pred": isa.VXPRED}[it.op]
		return a.enc(it, isa.Inst{Op: op, Rs1: rs})

	case it.op == "vx_join":
		return a.enc(it, isa.Inst{Op: isa.VXJOIN})

	case it.op == "vx_wspawn" || it.op == "vx_bar":
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		op := isa.VXWSPAWN
		if it.op == "vx_bar" {
			op = isa.VXBAR
		}
		return a.enc(it, isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})

	case it.op == "vx_ballot":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.intReg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return a.enc(it, isa.Inst{Op: isa.VXBALLOT, Rd: rd, Rs1: rs1})
	}

	return nil, a.errf(it.line, "unknown mnemonic %q", it.op)
}

// packBytes packs little-endian bytes into words, zero-padding the tail.
func packBytes(b []byte) []uint32 {
	out := make([]uint32, (len(b)+3)/4)
	for i, v := range b {
		out[i/4] |= uint32(v) << uint(8*(i%4))
	}
	return out
}

// parseStringLit parses a double-quoted string with \n, \t, \0, \\ and
// \" escapes.
func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("want a double-quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// csrNum resolves a CSR operand: a known name or a numeric expression.
func (a *assembler) csrNum(it *item, s string) (uint16, error) {
	s = strings.TrimSpace(s)
	if csr, ok := isa.CSRByName(s); ok {
		return csr, nil
	}
	v, err := a.evalImm(it, s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 0xFFF {
		return 0, a.errf(it.line, "csr number %d out of range", v)
	}
	return uint16(v), nil
}

// branchOffset resolves a branch target (label or expression) into a
// pc-relative offset and checks the B-format range.
func (a *assembler) branchOffset(it *item, s string) (int32, error) {
	target, err := a.evalImm(it, s)
	if err != nil {
		return 0, err
	}
	off := target - int64(it.pc)
	if off < -4096 || off > 4095 || off%2 != 0 {
		return 0, a.errf(it.line, "branch target out of range (offset %d)", off)
	}
	return int32(off), nil
}

// jumpOffset resolves a jump target into a pc-relative J-format offset.
func (a *assembler) jumpOffset(it *item, s string) (int32, error) {
	target, err := a.evalImm(it, s)
	if err != nil {
		return 0, err
	}
	off := target - int64(it.pc)
	if off < -(1<<20) || off >= 1<<20 || off%2 != 0 {
		return 0, a.errf(it.line, "jump target out of range (offset %d)", off)
	}
	return int32(off), nil
}

// Disassemble renders a program listing with addresses and tags, mainly for
// debugging and the vortex-asm tool.
func Disassemble(p *Program) string {
	var b strings.Builder
	lastTag := ""
	for i, w := range p.Words {
		pc := p.Base + uint32(i)*4
		if tag := p.TagAt(pc); tag != lastTag && tag != "" {
			fmt.Fprintf(&b, "# section: %s\n", tag)
			lastTag = tag
		}
		in := p.Insts[i]
		if in.Op == isa.OpInvalid {
			fmt.Fprintf(&b, "%08x: %08x  .word %#x\n", pc, w, w)
			continue
		}
		fmt.Fprintf(&b, "%08x: %08x  %s\n", pc, w, isa.Disasm(in, pc))
	}
	return b.String()
}
