// Package workload generates deterministic synthetic inputs for the
// benchmark kernels: dense tensors, point clouds for nearest-neighbor
// search, padded images, and a Cora-shaped sparse graph in CSR form. The
// paper's datasets (Cora, CIFAR-10, the 42764-point cloud from the Rodinia
// nn benchmark) are replaced by generators that match their sizes and
// sparsity, which is what determines execution behaviour on the simulator;
// DESIGN.md at the repository root records the substitution table.
package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Floats returns n pseudo-random float32 values in [-1, 1), deterministic
// in seed.
func Floats(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(r.Float64()*2 - 1)
	}
	return out
}

// PaddedImage is a 2-D float32 image stored with a constant-width zero
// border, as consumed by the stencil kernels.
type PaddedImage struct {
	W, H int // interior size
	Pad  int
	Data []float32 // (W+2Pad) x (H+2Pad), row-major
}

// Stride returns the padded row length.
func (im *PaddedImage) Stride() int { return im.W + 2*im.Pad }

// At returns the interior pixel (x, y).
func (im *PaddedImage) At(x, y int) float32 {
	return im.Data[(y+im.Pad)*im.Stride()+(x+im.Pad)]
}

// NewPaddedImage builds a random interior with a zero border.
func NewPaddedImage(w, h, pad int, seed int64) *PaddedImage {
	r := rand.New(rand.NewSource(seed))
	im := &PaddedImage{W: w, H: h, Pad: pad}
	im.Data = make([]float32, (w+2*pad)*(h+2*pad))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Data[(y+pad)*im.Stride()+(x+pad)] = float32(r.Float64()*2 - 1)
		}
	}
	return im
}

// PaddedTensor is a CHW float32 tensor where each channel plane carries a
// zero border of width Pad (for convolutions).
type PaddedTensor struct {
	C, W, H int
	Pad     int
	Data    []float32 // C x (H+2Pad) x (W+2Pad)
}

// PlaneStride returns the padded row length.
func (t *PaddedTensor) PlaneStride() int { return t.W + 2*t.Pad }

// PlaneSize returns the padded plane element count.
func (t *PaddedTensor) PlaneSize() int {
	return (t.W + 2*t.Pad) * (t.H + 2*t.Pad)
}

// At returns interior element (c, x, y).
func (t *PaddedTensor) At(c, x, y int) float32 {
	return t.Data[c*t.PlaneSize()+(y+t.Pad)*t.PlaneStride()+(x+t.Pad)]
}

// NewPaddedTensor builds a random CHW tensor with zero borders.
func NewPaddedTensor(c, w, h, pad int, seed int64) *PaddedTensor {
	r := rand.New(rand.NewSource(seed))
	t := &PaddedTensor{C: c, W: w, H: h, Pad: pad}
	t.Data = make([]float32, c*t.PlaneSize())
	for ch := 0; ch < c; ch++ {
		base := ch * t.PlaneSize()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				t.Data[base+(y+pad)*t.PlaneStride()+(x+pad)] = float32(r.Float64()*2 - 1)
			}
		}
	}
	return t
}

// Points is a structure-of-arrays 2-D point cloud (the Rodinia nn layout:
// latitude/longitude records).
type Points struct {
	Lat []float32
	Lng []float32
}

// NewPoints generates n points, deterministic in seed.
func NewPoints(n int, seed int64) *Points {
	r := rand.New(rand.NewSource(seed))
	p := &Points{Lat: make([]float32, n), Lng: make([]float32, n)}
	for i := 0; i < n; i++ {
		p.Lat[i] = float32(r.Float64()*180 - 90)
		p.Lng[i] = float32(r.Float64()*360 - 180)
	}
	return p
}

// Graph is a directed graph in CSR form.
type Graph struct {
	N      int
	RowPtr []uint32 // length N+1
	Col    []uint32 // length E
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Col) }

// Degree returns the out-degree of node n.
func (g *Graph) Degree(n int) int { return int(g.RowPtr[n+1] - g.RowPtr[n]) }

// Validate checks CSR invariants.
func (g *Graph) Validate() error {
	if len(g.RowPtr) != g.N+1 {
		return fmt.Errorf("workload: rowptr length %d != N+1 (%d)", len(g.RowPtr), g.N+1)
	}
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.N]) != len(g.Col) {
		return fmt.Errorf("workload: rowptr endpoints invalid")
	}
	for i := 0; i < g.N; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return fmt.Errorf("workload: rowptr not monotone at %d", i)
		}
	}
	for _, c := range g.Col {
		if int(c) >= g.N {
			return fmt.Errorf("workload: column %d out of range", c)
		}
	}
	return nil
}

// Fingerprint returns a content hash of the graph structure, usable as a
// cache key for values derived from it (e.g. the kernels input memo):
// graphs with equal fingerprints have identical CSR arrays with
// overwhelming probability.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(g.N))
	h.Write(buf[:])
	for _, v := range g.RowPtr {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	for _, v := range g.Col {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// NewGraph generates a graph with n nodes and approximately avgDeg
// out-edges per node, with a heavy-tailed degree distribution similar to
// citation networks: node i's degree is drawn around avgDeg but a small
// fraction of hub nodes get several times more. Self-loops are included
// (as in GCN aggregation with renormalization). Deterministic in seed.
func NewGraph(n int, avgDeg float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, RowPtr: make([]uint32, n+1)}
	var col []uint32
	for i := 0; i < n; i++ {
		deg := 1 + r.Intn(int(2*avgDeg)) // mean ~ avgDeg + 0.5
		if r.Float64() < 0.02 {          // hubs
			deg *= 4 + r.Intn(5)
		}
		col = append(col, uint32(i)) // self-loop
		for k := 0; k < deg; k++ {
			col = append(col, uint32(r.Intn(n)))
		}
		g.RowPtr[i+1] = uint32(len(col))
	}
	g.Col = col
	return g
}

// Cora dataset shape: 2708 nodes, ~10556 directed edges (5429 undirected).
const (
	CoraNodes  = 2708
	CoraAvgDeg = 3.9
	CoraHidden = 16
)

// NewCora returns a Cora-shaped synthetic graph.
func NewCora(seed int64) *Graph { return NewGraph(CoraNodes, CoraAvgDeg, seed) }

// KNNPoints is the point count of the Rodinia nn input the paper uses.
const KNNPoints = 42764

// Gaussian5x5 returns the normalized 5x5 Gaussian filter taps
// (sigma ~= 1, the classic 1-4-6-4-1 binomial kernel).
func Gaussian5x5() []float32 {
	row := [5]float32{1, 4, 6, 4, 1}
	out := make([]float32, 25)
	var sum float32
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			v := row[y] * row[x]
			out[y*5+x] = v
			sum += v
		}
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
