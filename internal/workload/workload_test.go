package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloatsDeterministicAndBounded(t *testing.T) {
	a := Floats(1000, 7)
	b := Floats(1000, 7)
	c := Floats(1000, 8)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("value %v out of [-1,1)", a[i])
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestPaddedImageLayout(t *testing.T) {
	im := NewPaddedImage(8, 6, 2, 3)
	if im.Stride() != 12 {
		t.Errorf("stride = %d", im.Stride())
	}
	if len(im.Data) != 12*10 {
		t.Errorf("data len = %d", len(im.Data))
	}
	// Border must be zero.
	for x := 0; x < im.Stride(); x++ {
		if im.Data[x] != 0 || im.Data[len(im.Data)-1-x] != 0 {
			t.Fatal("border not zero")
		}
	}
	// Interior accessor indexes the padded array correctly.
	if im.At(0, 0) != im.Data[2*12+2] {
		t.Error("At(0,0) mismatch")
	}
	if im.At(7, 5) != im.Data[7*12+9] {
		t.Error("At(7,5) mismatch")
	}
}

func TestPaddedTensorLayout(t *testing.T) {
	tn := NewPaddedTensor(3, 4, 4, 1, 5)
	if tn.PlaneStride() != 6 || tn.PlaneSize() != 36 {
		t.Errorf("stride %d size %d", tn.PlaneStride(), tn.PlaneSize())
	}
	if len(tn.Data) != 3*36 {
		t.Errorf("data len = %d", len(tn.Data))
	}
	if tn.At(1, 0, 0) != tn.Data[36+6+1] {
		t.Error("At(1,0,0) mismatch")
	}
	// Channel planes have zero borders.
	for c := 0; c < 3; c++ {
		base := c * 36
		for x := 0; x < 6; x++ {
			if tn.Data[base+x] != 0 {
				t.Fatalf("channel %d border not zero", c)
			}
		}
	}
}

func TestPointsRanges(t *testing.T) {
	p := NewPoints(500, 9)
	for i := range p.Lat {
		if p.Lat[i] < -90 || p.Lat[i] >= 90 {
			t.Fatalf("lat %v out of range", p.Lat[i])
		}
		if p.Lng[i] < -180 || p.Lng[i] >= 180 {
			t.Fatalf("lng %v out of range", p.Lng[i])
		}
	}
}

func TestGraphGeneratorInvariants(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 2
		g := NewGraph(n, 3.5, seed)
		if g.Validate() != nil {
			return false
		}
		// Every node has its self-loop.
		for i := 0; i < n; i++ {
			found := false
			for e := g.RowPtr[i]; e < g.RowPtr[i+1]; e++ {
				if int(g.Col[e]) == i {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoraShape(t *testing.T) {
	g := NewCora(3)
	if g.N != 2708 {
		t.Errorf("nodes = %d", g.N)
	}
	avg := float64(g.Edges()) / float64(g.N)
	if avg < 3 || avg > 8 {
		t.Errorf("average degree %.1f implausible for a Cora-shaped graph", avg)
	}
}

func TestGaussian5x5Normalized(t *testing.T) {
	w := Gaussian5x5()
	if len(w) != 25 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for _, v := range w {
		if v <= 0 {
			t.Fatalf("non-positive tap %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("taps sum to %v", sum)
	}
	// Symmetry.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if w[y*5+x] != w[x*5+y] || w[y*5+x] != w[(4-y)*5+(4-x)] {
				t.Fatal("kernel not symmetric")
			}
		}
	}
	// Center is the max.
	for _, v := range w {
		if v > w[12] {
			t.Fatal("center tap not maximal")
		}
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := NewGraph(10, 3, 1)
	bad := *g
	bad.RowPtr = g.RowPtr[:5]
	if bad.Validate() == nil {
		t.Error("short rowptr accepted")
	}
	g2 := NewGraph(10, 3, 1)
	g2.Col[0] = 99
	if g2.Validate() == nil {
		t.Error("out-of-range column accepted")
	}
	g3 := NewGraph(10, 3, 1)
	g3.RowPtr[3], g3.RowPtr[4] = g3.RowPtr[4], g3.RowPtr[3]
	if g3.Validate() == nil {
		t.Error("non-monotone rowptr accepted")
	}
}
