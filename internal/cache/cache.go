// Package cache provides the bounded, concurrency-safe LRU that backs the
// campaign engine's cross-run caches (the ocl program cache and the
// kernels input memo): keyed entries built at most once, LRU eviction
// beyond a capacity, and hit/miss counters.
package cache

import (
	"container/list"
	"sync"
)

type entry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	err  error
}

// LRU is a bounded memoizing cache. The entry slot is claimed under the
// lock but built outside it via sync.Once, so concurrent callers of one
// key build it once without serializing distinct builds. Values are shared
// across callers and must be treated as read-only.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*list.Element
	lru     list.List // of *entry; front = most recently used
	hits    uint64
	misses  uint64
}

// NewLRU builds a cache bounded to cap entries (cap <= 0 panics: an
// unbounded memo is a leak).
func NewLRU[K comparable, V any](cap int) *LRU[K, V] {
	if cap <= 0 {
		panic("cache: non-positive capacity")
	}
	return &LRU[K, V]{cap: cap, entries: map[K]*list.Element{}}
}

// GetOrBuild returns the cached value for key, building (and caching) it
// on first use. A failed build is not cached: every waiter observes the
// error and the next GetOrBuild retries.
func (c *LRU[K, V]) GetOrBuild(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(el)
	} else {
		c.misses++
		el = c.lru.PushFront(&entry[K, V]{key: key})
		c.entries[key] = el
		for len(c.entries) > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry[K, V]).key)
		}
	}
	e := el.Value.(*entry[K, V])
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		var zero V
		return zero, e.err
	}
	return e.val, nil
}

// Stats returns the hit/miss counters.
func (c *LRU[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the resident entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry and zeroes the counters.
func (c *LRU[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[K]*list.Element{}
	c.lru.Init()
	c.hits, c.misses = 0, 0
}
