package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestLRUBoundAndEviction pins the capacity bound and that evicted entries
// rebuild while resident ones do not.
func TestLRUBoundAndEviction(t *testing.T) {
	c := NewLRU[string, int](4)
	builds := 0
	get := func(i int) int {
		v, err := c.GetOrBuild(fmt.Sprintf("k%d", i), func() (int, error) {
			builds++
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for i := 0; i < 10; i++ {
		if got := get(i); got != i {
			t.Fatalf("key %d returned %d", i, got)
		}
	}
	if c.Len() > 4 {
		t.Errorf("cache grew to %d entries, cap 4", c.Len())
	}
	if builds != 10 {
		t.Errorf("builds = %d, want 10", builds)
	}
	if get(9); builds != 10 {
		t.Error("resident key rebuilt")
	}
	if get(0); builds != 11 {
		t.Error("evicted key not rebuilt")
	}
	h, m := c.Stats()
	if h != 1 || m != 11 {
		t.Errorf("stats = %d hits / %d misses, want 1/11", h, m)
	}
	c.Reset()
	if h, m = c.Stats(); h != 0 || m != 0 || c.Len() != 0 {
		t.Error("reset did not clear the cache")
	}
}

// TestLRUConcurrentSingleBuild pins the build-once contract under racing
// callers of one key.
func TestLRUConcurrentSingleBuild(t *testing.T) {
	c := NewLRU[string, string](8)
	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrBuild("shared", func() (string, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
}

// TestLRUFailedBuildNotCached pins that errors propagate and the next call
// retries instead of serving a poisoned entry.
func TestLRUFailedBuildNotCached(t *testing.T) {
	c := NewLRU[string, int](4)
	boom := errors.New("boom")
	if _, err := c.GetOrBuild("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed build left a resident entry")
	}
	v, err := c.GetOrBuild("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("retry got %d, %v", v, err)
	}
}
