package trace

import (
	"fmt"
	"io"
	"strings"
)

// RenderOptions controls the ASCII waveform rendering.
type RenderOptions struct {
	// Width is the number of time bins (columns); 0 means 100.
	Width int
	// ShowMask appends a per-warp average active-lane column.
	ShowMask bool
}

// RenderWaveform draws a Figure-1-style plot: one row per (core, warp),
// time on the x axis, one glyph per bin showing the dominant semantic
// section issued in that bin ('.' = no issue). A legend maps glyphs to
// section names.
func (c *Collector) RenderWaveform(w io.Writer, opts RenderOptions) error {
	width := opts.Width
	if width <= 0 {
		width = 100
	}
	if len(c.Records) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	first, last := c.Span()
	span := last - first + 1
	binOf := func(cycle uint64) int {
		b := int((cycle - first) * uint64(width) / span)
		if b >= width {
			b = width - 1
		}
		return b
	}

	// Assign one glyph per tag, in tag-table order.
	glyphs := "BWSLbwsligxyz*+=~^"
	tagGlyph := map[uint8]byte{}
	next := 0
	for i := range c.tags {
		if i == 0 {
			continue // untagged renders as '#'
		}
		if next < len(glyphs) {
			tagGlyph[uint8(i)] = glyphs[next]
			next++
		} else {
			tagGlyph[uint8(i)] = '?'
		}
	}

	warps := c.sortedWarps()
	// counts[warpIdx][bin][tag] -> issues
	rows := make([]map[int]map[uint8]int, len(warps))
	lanes := make([]uint64, len(warps))
	issues := make([]uint64, len(warps))
	warpIdx := map[[2]int]int{}
	for i, cw := range warps {
		warpIdx[cw] = i
		rows[i] = map[int]map[uint8]int{}
	}
	for _, r := range c.Records {
		i := warpIdx[[2]int{r.Core, r.Warp}]
		b := binOf(r.Cycle)
		if rows[i][b] == nil {
			rows[i][b] = map[uint8]int{}
		}
		rows[i][b][r.Tag]++
		lanes[i] += uint64(popcount(r.Mask))
		issues[i]++
	}

	fmt.Fprintf(w, "cycles %d..%d (%d cycles, %d issues)\n", first, last, span, len(c.Records))
	for i, cw := range warps {
		var b strings.Builder
		for bin := 0; bin < width; bin++ {
			tags := rows[i][bin]
			if len(tags) == 0 {
				b.WriteByte('.')
				continue
			}
			// Dominant tag in the bin.
			bestTag, bestN := uint8(0), -1
			for tag, n := range tags {
				if n > bestN || (n == bestN && tag < bestTag) {
					bestTag, bestN = tag, n
				}
			}
			g, ok := tagGlyph[bestTag]
			if !ok {
				g = '#'
			}
			b.WriteByte(g)
		}
		line := fmt.Sprintf("c%02dw%02d |%s|", cw[0], cw[1], b.String())
		if opts.ShowMask && issues[i] > 0 {
			line += fmt.Sprintf("  avg lanes %.1f", float64(lanes[i])/float64(issues[i]))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	// Legend.
	var legend []string
	for i, name := range c.tags {
		if i == 0 || name == "" {
			continue
		}
		legend = append(legend, fmt.Sprintf("%c=%s", tagGlyph[uint8(i)], name))
	}
	if len(legend) > 0 {
		if _, err := fmt.Fprintf(w, "legend: %s  .=idle\n", strings.Join(legend, " ")); err != nil {
			return err
		}
	}
	return nil
}

// RenderIssueTable writes a human-readable listing of every record,
// matching the per-issue detail of the paper's Figure 1 plots (timestamp,
// warp, PC, thread mask, section). limit <= 0 prints everything.
func (c *Collector) RenderIssueTable(w io.Writer, limit int) error {
	if _, err := fmt.Fprintf(w, "%-10s %-5s %-5s %-10s %-10s %-10s %s\n",
		"cycle", "core", "warp", "pc", "mask", "op", "section"); err != nil {
		return err
	}
	n := len(c.Records)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, r := range c.Records[:n] {
		_, err := fmt.Fprintf(w, "%-10d %-5d %-5d %-10s %-10s %-10s %s\n",
			r.Cycle, r.Core, r.Warp,
			fmt.Sprintf("%#x", r.PC), fmt.Sprintf("%#x", r.Mask),
			r.Op.String(), c.TagName(r.Tag))
		if err != nil {
			return err
		}
	}
	if n < len(c.Records) {
		_, err := fmt.Fprintf(w, "... %d more records\n", len(c.Records)-n)
		return err
	}
	return nil
}
