package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

func event(cycle uint64, cw [2]int, pc uint32, mask uint64) sim.IssueEvent {
	return sim.IssueEvent{Cycle: cycle, Core: cw[0], Warp: cw[1], PC: pc, Mask: mask, Inst: isa.Inst{Op: isa.ADDI}}
}

func tagger(pc uint32) string {
	switch {
	case pc < 0x100:
		return "spawn"
	case pc < 0x200:
		return "body"
	}
	return ""
}

func collect() *Collector {
	c := NewCollector(tagger)
	c.Observe(event(10, [2]int{0, 0}, 0x10, 0b11))
	c.Observe(event(11, [2]int{0, 0}, 0x110, 0b11))
	c.Observe(event(12, [2]int{0, 1}, 0x114, 0b01))
	c.Observe(event(20, [2]int{1, 0}, 0x300, 0b1111))
	return c
}

func TestCollectorRecordsAndTags(t *testing.T) {
	c := collect()
	if len(c.Records) != 4 {
		t.Fatalf("records = %d", len(c.Records))
	}
	if c.TagName(c.Records[0].Tag) != "spawn" {
		t.Errorf("record 0 tag = %q", c.TagName(c.Records[0].Tag))
	}
	if c.TagName(c.Records[1].Tag) != "body" {
		t.Errorf("record 1 tag = %q", c.TagName(c.Records[1].Tag))
	}
	if c.TagName(c.Records[3].Tag) != "" {
		t.Errorf("record 3 tag = %q", c.TagName(c.Records[3].Tag))
	}
	first, last := c.Span()
	if first != 10 || last != 20 {
		t.Errorf("span = %d..%d", first, last)
	}
}

func TestSummarize(t *testing.T) {
	c := collect()
	s := c.Summarize()
	if s.Issues != 4 {
		t.Errorf("issues = %d", s.Issues)
	}
	if s.PerTag["spawn"] != 1 || s.PerTag["body"] != 2 {
		t.Errorf("per tag = %v", s.PerTag)
	}
	if s.WarpsUsed != 3 || s.CoresUsed != 2 {
		t.Errorf("warps %d cores %d", s.WarpsUsed, s.CoresUsed)
	}
	// lanes: 2+2+1+4 = 9 over 4 issues.
	if s.MeanLanes != 9.0/4 {
		t.Errorf("mean lanes = %v", s.MeanLanes)
	}
	// Empty collector.
	e := NewCollector(nil).Summarize()
	if e.Issues != 0 {
		t.Error("empty summary nonzero")
	}
}

func TestCSVOutput(t *testing.T) {
	c := collect()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "cycle,core,warp,pc,mask,op,tag" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "10,0,0,0x10,0x3,addi,spawn") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestJSONLOutput(t *testing.T) {
	c := collect()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row["tag"] != "spawn" || row["op"] != "addi" {
		t.Errorf("row = %v", row)
	}
}

func TestWaveformRendering(t *testing.T) {
	c := collect()
	var buf bytes.Buffer
	if err := c.RenderWaveform(&buf, RenderOptions{Width: 20, ShowMask: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"c00w00", "c00w01", "c01w00", "legend:", "avg lanes"} {
		if !strings.Contains(out, frag) {
			t.Errorf("waveform missing %q:\n%s", frag, out)
		}
	}
	// Empty trace renders gracefully.
	buf.Reset()
	if err := NewCollector(nil).RenderWaveform(&buf, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not labeled")
	}
}

func TestIssueTable(t *testing.T) {
	c := collect()
	var buf bytes.Buffer
	if err := c.RenderIssueTable(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 more records") {
		t.Errorf("truncation note missing:\n%s", out)
	}
	buf.Reset()
	if err := c.RenderIssueTable(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 5 {
		t.Errorf("full table lines = %d", strings.Count(buf.String(), "\n"))
	}
}

func TestReset(t *testing.T) {
	c := collect()
	c.Reset()
	if len(c.Records) != 0 {
		t.Error("reset kept records")
	}
	if len(c.Tags()) < 3 {
		t.Error("reset dropped tag table")
	}
}
