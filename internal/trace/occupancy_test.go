package trace

import (
	"bytes"
	"strings"
	"testing"
)

func occCollector() *Collector {
	c := NewCollector(nil)
	// Two warps active in the first half, one in the second.
	for cyc := uint64(0); cyc < 50; cyc += 2 {
		c.Observe(event(cyc, [2]int{0, 0}, 0x10, 0b1111))
		c.Observe(event(cyc+1, [2]int{0, 1}, 0x10, 0b0011))
	}
	for cyc := uint64(50); cyc < 100; cyc += 2 {
		c.Observe(event(cyc, [2]int{0, 0}, 0x10, 0b1111))
	}
	return c
}

func TestOccupancyTimeline(t *testing.T) {
	c := occCollector()
	pts := c.Occupancy(4)
	if len(pts) != 4 {
		t.Fatalf("bins = %d", len(pts))
	}
	// First two bins: 2 warps each; last two: 1 warp.
	if pts[0].Warps != 2 || pts[1].Warps != 2 {
		t.Errorf("early bins warps = %d, %d, want 2", pts[0].Warps, pts[1].Warps)
	}
	if pts[2].Warps != 1 || pts[3].Warps != 1 {
		t.Errorf("late bins warps = %d, %d, want 1", pts[2].Warps, pts[3].Warps)
	}
	// First half mixes 4-lane and 2-lane issues: mean ~3 (bin boundaries
	// shift the mix slightly).
	if pts[0].MeanLanes < 2.8 || pts[0].MeanLanes > 3.2 {
		t.Errorf("bin 0 mean lanes = %v, want ~3", pts[0].MeanLanes)
	}
	if pts[3].MeanLanes != 4 {
		t.Errorf("bin 3 mean lanes = %v", pts[3].MeanLanes)
	}
	if got := c.Occupancy(0); got != nil {
		t.Error("bins=0 should return nil")
	}
	if got := NewCollector(nil).Occupancy(4); got != nil {
		t.Error("empty trace should return nil")
	}
}

func TestSIMDEfficiency(t *testing.T) {
	c := NewCollector(nil)
	c.Observe(event(0, [2]int{0, 0}, 0, 0b1111)) // 4 lanes
	c.Observe(event(1, [2]int{0, 0}, 0, 0b0001)) // 1 lane
	// (4+1)/2 issues / 4 threads = 0.625
	if got := c.SIMDEfficiency(4); got != 0.625 {
		t.Errorf("efficiency = %v", got)
	}
	if NewCollector(nil).SIMDEfficiency(4) != 0 {
		t.Error("empty trace efficiency != 0")
	}
	if c.SIMDEfficiency(0) != 0 {
		t.Error("threads=0 efficiency != 0")
	}
}

func TestIssueUtilization(t *testing.T) {
	c := NewCollector(nil)
	// 5 issues spanning cycles 0..8 on one core: 5/9.
	for cyc := uint64(0); cyc < 10; cyc += 2 {
		c.Observe(event(cyc, [2]int{0, 0}, 0, 1))
	}
	if got := c.IssueUtilization(); got < 5.0/9-1e-9 || got > 5.0/9+1e-9 {
		t.Errorf("utilization = %v, want %v", got, 5.0/9)
	}
}

func TestRenderOccupancy(t *testing.T) {
	c := occCollector()
	var buf bytes.Buffer
	if err := c.RenderOccupancy(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "warps in flight |") {
		t.Errorf("missing timeline:\n%s", out)
	}
	if !strings.Contains(out, "issue util") {
		t.Errorf("missing summary:\n%s", out)
	}
	// The first half should show '2', the second '1'.
	bar := out[strings.Index(out, "|")+1:]
	if !strings.Contains(bar[:5], "2") || !strings.Contains(bar[5:10], "1") {
		t.Errorf("unexpected bar %q", bar[:10])
	}
	buf.Reset()
	if err := NewCollector(nil).RenderOccupancy(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not labeled")
	}
}
