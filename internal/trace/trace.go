// Package trace records per-issue execution traces from the simulator and
// renders them in the style of the paper's Figure 1: per-warp instruction
// wavefronts over time, tagged with semantic code sections (spawn loop,
// workgroup loop, kernel body, ...), plus the PC and active thread mask of
// every issue.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Record is one instruction issue.
type Record struct {
	Cycle uint64
	Core  int
	Warp  int
	PC    uint32
	Mask  uint64
	Op    isa.Op
	Tag   uint8 // index into the collector's tag table
}

// Collector accumulates issue records. Install Observe as the simulator's
// observer. The zero Collector is not usable; call NewCollector.
type Collector struct {
	tagger  func(uint32) string
	tags    []string
	tagIdx  map[string]uint8
	Records []Record
}

// NewCollector builds a collector; tagger maps a pc to its semantic section
// name (typically asm.Program.TagAt) and may be nil.
func NewCollector(tagger func(uint32) string) *Collector {
	c := &Collector{tagger: tagger, tagIdx: map[string]uint8{}}
	c.internTag("") // index 0: untagged
	return c
}

func (c *Collector) internTag(name string) uint8 {
	if i, ok := c.tagIdx[name]; ok {
		return i
	}
	if len(c.tags) >= 255 {
		return 0
	}
	i := uint8(len(c.tags))
	c.tags = append(c.tags, name)
	c.tagIdx[name] = i
	return i
}

// Observe is the sim.Sim observer callback.
func (c *Collector) Observe(e sim.IssueEvent) {
	var tag uint8
	if c.tagger != nil {
		tag = c.internTag(c.tagger(e.PC))
	}
	c.Records = append(c.Records, Record{
		Cycle: e.Cycle, Core: e.Core, Warp: e.Warp,
		PC: e.PC, Mask: e.Mask, Op: e.Inst.Op, Tag: tag,
	})
}

// Reset drops accumulated records but keeps the tag table.
func (c *Collector) Reset() { c.Records = c.Records[:0] }

// TagName resolves a record's tag index.
func (c *Collector) TagName(i uint8) string {
	if int(i) < len(c.tags) {
		return c.tags[i]
	}
	return ""
}

// Tags returns the interned tag names (index 0 is the empty tag).
func (c *Collector) Tags() []string { return append([]string(nil), c.tags...) }

// Span returns the first and last issue cycles (0,0 for an empty trace).
func (c *Collector) Span() (first, last uint64) {
	if len(c.Records) == 0 {
		return 0, 0
	}
	first = c.Records[0].Cycle
	last = c.Records[0].Cycle
	for _, r := range c.Records {
		if r.Cycle < first {
			first = r.Cycle
		}
		if r.Cycle > last {
			last = r.Cycle
		}
	}
	return first, last
}

// WriteCSV emits "cycle,core,warp,pc,mask,op,tag" rows.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,core,warp,pc,mask,op,tag"); err != nil {
		return err
	}
	for _, r := range c.Records {
		_, err := fmt.Fprintf(w, "%d,%d,%d,0x%x,0x%x,%s,%s\n",
			r.Cycle, r.Core, r.Warp, r.PC, r.Mask, r.Op, c.TagName(r.Tag))
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonRecord is the JSONL wire format.
type jsonRecord struct {
	Cycle uint64 `json:"cycle"`
	Core  int    `json:"core"`
	Warp  int    `json:"warp"`
	PC    string `json:"pc"`
	Mask  string `json:"mask"`
	Op    string `json:"op"`
	Tag   string `json:"tag,omitempty"`
}

// WriteJSONL emits one JSON object per record.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range c.Records {
		jr := jsonRecord{
			Cycle: r.Cycle, Core: r.Core, Warp: r.Warp,
			PC:   fmt.Sprintf("%#x", r.PC),
			Mask: fmt.Sprintf("%#x", r.Mask),
			Op:   r.Op.String(),
			Tag:  c.TagName(r.Tag),
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a trace.
type Summary struct {
	Issues     uint64
	FirstCycle uint64
	LastCycle  uint64
	PerTag     map[string]uint64 // issues per semantic section
	PerWarp    map[[2]int]uint64 // issues per (core, warp)
	MeanLanes  float64           // average active lanes per issue (SIMD efficiency)
	WarpsUsed  int
	CoresUsed  int
}

// Summarize computes aggregate statistics over the records.
func (c *Collector) Summarize() Summary {
	s := Summary{PerTag: map[string]uint64{}, PerWarp: map[[2]int]uint64{}}
	if len(c.Records) == 0 {
		return s
	}
	first, last := c.Span()
	s.FirstCycle, s.LastCycle = first, last
	var lanes uint64
	cores := map[int]bool{}
	for _, r := range c.Records {
		s.Issues++
		s.PerTag[c.TagName(r.Tag)]++
		s.PerWarp[[2]int{r.Core, r.Warp}]++
		lanes += uint64(popcount(r.Mask))
		cores[r.Core] = true
	}
	s.MeanLanes = float64(lanes) / float64(s.Issues)
	s.WarpsUsed = len(s.PerWarp)
	s.CoresUsed = len(cores)
	return s
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// sortedWarps returns the (core, warp) pairs present, ordered.
func (c *Collector) sortedWarps() [][2]int {
	set := map[[2]int]bool{}
	for _, r := range c.Records {
		set[[2]int{r.Core, r.Warp}] = true
	}
	out := make([][2]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
