package trace

import (
	"fmt"
	"io"
	"strings"
)

// OccupancyPoint is one time bin of an occupancy timeline.
type OccupancyPoint struct {
	StartCycle uint64
	Issues     uint64  // instruction issues in the bin
	Warps      int     // distinct (core, warp) pairs that issued
	MeanLanes  float64 // mean active lanes per issue in the bin
}

// Occupancy computes a timeline of warp- and lane-level occupancy over
// bins time bins. It quantifies what the Figure 1 plots show visually:
// how many warps are in flight and how full their thread masks are as the
// execution progresses through its batches.
func (c *Collector) Occupancy(bins int) []OccupancyPoint {
	if bins <= 0 || len(c.Records) == 0 {
		return nil
	}
	first, last := c.Span()
	span := last - first + 1
	out := make([]OccupancyPoint, bins)
	warpSets := make([]map[[2]int]bool, bins)
	var lanes = make([]uint64, bins)
	for i := range out {
		out[i].StartCycle = first + span*uint64(i)/uint64(bins)
		warpSets[i] = map[[2]int]bool{}
	}
	for _, r := range c.Records {
		b := int((r.Cycle - first) * uint64(bins) / span)
		if b >= bins {
			b = bins - 1
		}
		out[b].Issues++
		warpSets[b][[2]int{r.Core, r.Warp}] = true
		lanes[b] += uint64(popcount(r.Mask))
	}
	for i := range out {
		out[i].Warps = len(warpSets[i])
		if out[i].Issues > 0 {
			out[i].MeanLanes = float64(lanes[i]) / float64(out[i].Issues)
		}
	}
	return out
}

// SIMDEfficiency returns the fraction of lane slots used across all
// issues, given the warp width (threads per warp): mean active lanes
// divided by the warp width.
func (c *Collector) SIMDEfficiency(threads int) float64 {
	if threads <= 0 || len(c.Records) == 0 {
		return 0
	}
	var lanes, issues uint64
	for _, r := range c.Records {
		lanes += uint64(popcount(r.Mask))
		issues++
	}
	return float64(lanes) / float64(issues) / float64(threads)
}

// IssueUtilization returns issues / (span x cores): the fraction of issue
// slots used over the traced interval on the cores that appear in the
// trace.
func (c *Collector) IssueUtilization() float64 {
	if len(c.Records) == 0 {
		return 0
	}
	first, last := c.Span()
	cores := map[int]bool{}
	for _, r := range c.Records {
		cores[r.Core] = true
	}
	return float64(len(c.Records)) / float64(last-first+1) / float64(len(cores))
}

// RenderOccupancy draws the warp-occupancy timeline as a compact bar
// sparkline, one character per bin (space = idle bin, '9'/'+' = 9 or more
// warps in flight).
func (c *Collector) RenderOccupancy(w io.Writer, bins int) error {
	points := c.Occupancy(bins)
	if points == nil {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	var b strings.Builder
	for _, p := range points {
		switch {
		case p.Issues == 0:
			b.WriteByte(' ')
		case p.Warps > 9:
			b.WriteByte('+')
		default:
			b.WriteByte(byte('0' + p.Warps))
		}
	}
	if _, err := fmt.Fprintf(w, "warps in flight |%s|\n", b.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "issue util %.1f%%, SIMD lanes/issue %.2f\n",
		c.IssueUtilization()*100, c.Summarize().MeanLanes)
	return err
}
