package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample stddev != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeRatios(t *testing.T) {
	rs := []float64{2, 0.5, 1.5, 1, 3}
	s := SummarizeRatios(rs)
	if s.N != 5 {
		t.Errorf("n = %d", s.N)
	}
	if s.Avg != 1.6 {
		t.Errorf("avg = %v", s.Avg)
	}
	if s.Worst != 0.5 || s.Best != 3 {
		t.Errorf("worst/best = %v/%v", s.Worst, s.Best)
	}
	if s.WorseFrac != 0.2 {
		t.Errorf("worse frac = %v", s.WorseFrac)
	}
	if s.Median != 1.5 {
		t.Errorf("median = %v", s.Median)
	}
	str := s.String()
	if !strings.Contains(str, "avg: 1.60") || !strings.Contains(str, "worse: 20.0%") || !strings.Contains(str, "worst: 0.50") {
		t.Errorf("String() = %q", str)
	}
	if SummarizeRatios(nil).N != 0 {
		t.Error("empty summary wrong")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.NormFloat64()
	}
	xs, ys := KDE(samples, 400, -6, 6, 0)
	if len(xs) != 400 || len(ys) != 400 {
		t.Fatalf("grid size %d/%d", len(xs), len(ys))
	}
	var integral float64
	for i := 1; i < len(xs); i++ {
		integral += (ys[i] + ys[i-1]) / 2 * (xs[i] - xs[i-1])
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
	// Peak near 0 for a standard normal.
	peakX := xs[0]
	peakY := ys[0]
	for i := range xs {
		if ys[i] > peakY {
			peakX, peakY = xs[i], ys[i]
		}
	}
	if math.Abs(peakX) > 0.5 {
		t.Errorf("KDE peak at %v, want ~0", peakX)
	}
}

func TestKDEDegenerateInputs(t *testing.T) {
	if xs, ys := KDE(nil, 10, 0, 1, 0); xs != nil || ys != nil {
		t.Error("empty samples should give nil")
	}
	if xs, _ := KDE([]float64{1}, 0, 0, 1, 0); xs != nil {
		t.Error("zero points should give nil")
	}
	if xs, _ := KDE([]float64{1}, 10, 5, 2, 0); xs != nil {
		t.Error("hi<=lo should give nil")
	}
	// Identical samples must not divide by zero.
	xs, ys := KDE([]float64{2, 2, 2}, 11, 1, 3, 0)
	if len(xs) != 11 {
		t.Fatal("constant samples failed")
	}
	if Max(ys) <= 0 {
		t.Error("constant-sample KDE has no mass")
	}
}

func TestRenderViolin(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = 1.4 + 0.3*r.NormFloat64()
	}
	var buf bytes.Buffer
	if err := RenderViolin(&buf, "test", samples, ViolinOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test  (n=300") {
		t.Errorf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no density bars rendered")
	}
	if !strings.Contains(out, "<") {
		t.Error("ratio-1 baseline marker missing")
	}
}

func TestRenderViolinClipsLikePaper(t *testing.T) {
	// Figure 2 omits results > 4; huge outliers must be counted, not drawn.
	samples := []float64{1, 1.2, 0.9, 25, 30}
	var buf bytes.Buffer
	if err := RenderViolin(&buf, "clip", samples, ViolinOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 results > 4.0 omitted") {
		t.Errorf("clip note missing:\n%s", buf.String())
	}
}

func TestRenderViolinEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderViolin(&buf, "none", nil, ViolinOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Error("empty violin not labeled")
	}
}

func TestRenderViolinPair(t *testing.T) {
	var buf bytes.Buffer
	err := RenderViolinPair(&buf, "vecadd", []float64{1.3, 1.5}, []float64{3, 4}, ViolinOptions{Rows: 9, HalfWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== vecadd ===") ||
		!strings.Contains(out, "lws=1 / ours") ||
		!strings.Contains(out, "lws=32 / ours") {
		t.Errorf("pair render incomplete:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Errorf("GeoMean(1,4) = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 || GeoMean([]float64{0}) != 0 {
		t.Error("degenerate GeoMean inputs should give 0")
	}
	// GeoMean <= Mean (AM-GM).
	xs := []float64{0.5, 1.5, 3, 9}
	if GeoMean(xs) > Mean(xs) {
		t.Error("AM-GM violated")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.9, 1.1, 1.9, 5, -3}
	h := Histogram(xs, 2, 0, 2)
	// Bin 0: 0.1, 0.9, -3 (clamped); bin 1: 1.1, 1.9, 5 (clamped).
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("histogram = %v", h)
	}
	if Histogram(xs, 0, 0, 1) != nil || Histogram(xs, 4, 2, 1) != nil {
		t.Error("degenerate histograms should be nil")
	}
	total := 0
	for _, n := range Histogram(xs, 7, -5, 6) {
		total += n
	}
	if total != len(xs) {
		t.Errorf("histogram loses samples: %d", total)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("CI [%v, %v] does not contain the mean %v", lo, hi, m)
	}
	if hi-lo > 1 {
		t.Errorf("CI too wide for n=200: [%v, %v]", lo, hi)
	}
	// Deterministic.
	lo2, hi2 := BootstrapMeanCI(xs, 0.95, 500)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic")
	}
	if l, h := BootstrapMeanCI(nil, 0.95, 100); l != 0 || h != 0 {
		t.Error("empty input CI should be zero")
	}
}
