// Package stats provides the statistics behind the paper's Figure 2:
// ratio-distribution summaries (average, worst case, fraction of results
// below 1), quantiles, Gaussian kernel density estimation, and ASCII violin
// plots of latency-ratio distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) with linear
// interpolation. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RatioSummary matches the data tables under each violin in Figure 2:
// the average ratio, the worst (minimum) ratio, and the percentage of
// configurations where the baseline beat "ours" (ratio < 1).
type RatioSummary struct {
	N         int
	Avg       float64
	Worst     float64 // minimum ratio
	Best      float64 // maximum ratio
	Median    float64
	WorseFrac float64 // fraction of ratios < 1
}

// SummarizeRatios computes the Figure 2 table entries for one violin.
func SummarizeRatios(rs []float64) RatioSummary {
	s := RatioSummary{N: len(rs)}
	if len(rs) == 0 {
		return s
	}
	s.Avg = Mean(rs)
	s.Worst = Min(rs)
	s.Best = Max(rs)
	s.Median = Quantile(rs, 0.5)
	worse := 0
	for _, r := range rs {
		if r < 1 {
			worse++
		}
	}
	s.WorseFrac = float64(worse) / float64(len(rs))
	return s
}

// String renders the summary like the paper's data tables.
func (s RatioSummary) String() string {
	return fmt.Sprintf("avg: %.2f  worse: %.1f%%  worst: %.2f", s.Avg, s.WorseFrac*100, s.Worst)
}

// KDE evaluates a Gaussian kernel density estimate of samples at points
// evenly spaced over [lo, hi]. bandwidth <= 0 selects Silverman's
// rule-of-thumb. It returns the evaluation grid and densities.
func KDE(samples []float64, points int, lo, hi, bandwidth float64) (xs, ys []float64) {
	if points <= 0 || len(samples) == 0 || hi <= lo {
		return nil, nil
	}
	if bandwidth <= 0 {
		sd := StdDev(samples)
		if sd == 0 {
			sd = 0.01
		}
		bandwidth = 1.06 * sd * math.Pow(float64(len(samples)), -0.2)
		if bandwidth <= 0 {
			bandwidth = 0.01
		}
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	norm := 1 / (bandwidth * math.Sqrt(2*math.Pi) * float64(len(samples)))
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		xs[i] = x
		var d float64
		for _, s := range samples {
			u := (x - s) / bandwidth
			d += math.Exp(-0.5 * u * u)
		}
		ys[i] = d * norm
	}
	return xs, ys
}

// GeoMean returns the geometric mean of positive samples (0 if any sample
// is non-positive or the input is empty). Ratio distributions like Figure
// 2's are multiplicative, so the geometric mean is the right aggregate to
// complement the paper's arithmetic averages.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Histogram counts samples into bins equal-width bins over [lo, hi];
// samples outside the range are clamped into the edge bins.
func Histogram(xs []float64, bins int, lo, hi float64) []int {
	if bins <= 0 || hi <= lo {
		return nil
	}
	out := make([]int, bins)
	for _, x := range xs {
		i := int((x - lo) / (hi - lo) * float64(bins))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs at the given level (e.g. 0.95), using a deterministic
// resampling sequence so results are reproducible.
func BootstrapMeanCI(xs []float64, level float64, resamples int) (lo, hi float64) {
	if len(xs) == 0 || resamples <= 0 || level <= 0 || level >= 1 {
		return 0, 0
	}
	// xorshift64 PRNG: deterministic, no global state.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[int(next()%uint64(len(xs)))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
