package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ViolinOptions controls ASCII violin rendering.
type ViolinOptions struct {
	// Rows is the number of value bins on the vertical axis (default 17).
	Rows int
	// HalfWidth is the maximum bar half-width in characters (default 20).
	HalfWidth int
	// Lo, Hi clip the value axis; Hi <= Lo auto-ranges to the data capped
	// at Cap (Figure 2 omits results > 4 "for better visual
	// representation").
	Lo, Hi float64
	// Cap bounds auto-ranging (default 4, like the paper).
	Cap float64
}

// RenderViolin draws one vertical-axis violin of samples: each row is a
// value bin, with a centered bar whose width is proportional to the
// estimated density. A marker row at value 1.0 mirrors the bold red
// baseline of Figure 2.
func RenderViolin(w io.Writer, title string, samples []float64, opts ViolinOptions) error {
	rows := opts.Rows
	if rows <= 0 {
		rows = 17
	}
	half := opts.HalfWidth
	if half <= 0 {
		half = 20
	}
	capv := opts.Cap
	if capv <= 0 {
		capv = 4
	}
	if len(samples) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no samples)\n", title)
		return err
	}
	lo, hi := opts.Lo, opts.Hi
	if hi <= lo {
		lo, hi = Min(samples), Max(samples)
		if hi > capv {
			hi = capv
		}
		if lo > 1 {
			lo = math.Max(0, lo-0.1)
		}
		if lo >= hi {
			lo, hi = lo-0.5, hi+0.5
		}
		// Always include the ratio-1 baseline in view.
		if lo > 0.9 {
			lo = 0.9
		}
		if hi < 1.1 {
			hi = 1.1
		}
	}
	clipped := 0
	var inRange []float64
	for _, s := range samples {
		if s > hi {
			clipped++
			continue
		}
		inRange = append(inRange, s)
	}
	if len(inRange) == 0 {
		inRange = samples[:1]
	}
	_, ys := KDE(inRange, rows, lo, hi, 0)
	peak := Max(ys)
	if peak == 0 {
		peak = 1
	}
	sum := SummarizeRatios(samples)
	if _, err := fmt.Fprintf(w, "%s  (n=%d, %s)\n", title, sum.N, sum); err != nil {
		return err
	}
	// Render top (hi) to bottom (lo).
	oneRow := int(math.Round((1.0 - lo) / (hi - lo) * float64(rows-1)))
	for i := rows - 1; i >= 0; i-- {
		v := lo + (hi-lo)*float64(i)/float64(rows-1)
		width := int(math.Round(ys[i] / peak * float64(half)))
		bar := strings.Repeat(" ", half-width) + strings.Repeat("#", 2*width)
		pad := strings.Repeat(" ", 2*half-len(bar))
		marker := " "
		if i == oneRow {
			marker = "<" // the ratio-1 baseline
		}
		if _, err := fmt.Fprintf(w, "%6.2f |%s%s| %s\n", v, bar, pad, marker); err != nil {
			return err
		}
	}
	if clipped > 0 {
		if _, err := fmt.Fprintf(w, "        (%d results > %.1f omitted)\n", clipped, hi); err != nil {
			return err
		}
	}
	return nil
}

// RenderViolinPair draws the two Figure 2 distributions of one kernel side
// by side textually: baseline-vs-ours ratios for lws=1 and lws=32.
func RenderViolinPair(w io.Writer, kernel string, naive, fixed []float64, opts ViolinOptions) error {
	if _, err := fmt.Fprintf(w, "=== %s ===\n", kernel); err != nil {
		return err
	}
	if err := RenderViolin(w, "lws=1 / ours", naive, opts); err != nil {
		return err
	}
	return RenderViolin(w, "lws=32 / ours", fixed, opts)
}
