package mem

import "testing"

// TestMemoryReset pins the pooled-device contract at the memory level: a
// Reset memory is indistinguishable from a freshly constructed one (size
// and contents), while keeping the grown backing array.
func TestMemoryReset(t *testing.T) {
	m := NewMemory(128)
	m.Grow(4096)
	for a := uint32(0); a < 4096; a += 4 {
		m.Write32(a, 0xdeadbeef)
	}
	m.Reset()
	if m.Size() != 128 {
		t.Errorf("size after reset = %d, want 128", m.Size())
	}
	if v, ok := m.Read32(0); !ok || v != 0 {
		t.Errorf("contents survived reset: %#x", v)
	}
	// Growing back must expose zeroed memory, like a fresh Memory would.
	m.Grow(4096)
	for a := uint32(0); a < 4096; a += 4 {
		if v, _ := m.Read32(a); v != 0 {
			t.Fatalf("stale byte at %#x after reset+grow: %#x", a, v)
		}
	}
}

// TestHierarchyReset pins that Reset rewinds caches (contents, LRU stamps,
// statistics) and DRAM channels (bandwidth clock, counters) to the
// constructed state, so replayed accesses time identically.
func TestHierarchyReset(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.DRAM.Channels = 2
	h, err := NewHierarchy(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewHierarchy(2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	trace := func(h *Hierarchy) []AccessResult {
		var out []AccessResult
		for i := uint32(0); i < 64; i++ {
			out = append(out, h.Access(int(i%2), 0x1000+i*64, i%3 == 0, uint64(i)))
		}
		return out
	}

	// Dirty the hierarchy with a different access pattern, then reset.
	for i := uint32(0); i < 200; i++ {
		h.Access(0, 0x9000+i*128, true, uint64(i))
	}
	h.Reset()

	if h.TotalL1Stats() != (CacheStats{}) || h.L2Stats() != (CacheStats{}) {
		t.Errorf("stats survived reset: L1 %+v L2 %+v", h.TotalL1Stats(), h.L2Stats())
	}
	if h.DRAM() != (DRAMStats{}) {
		t.Errorf("DRAM stats survived reset: %+v", h.DRAM())
	}

	got, want := trace(h), trace(fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d differs after reset: %+v vs fresh %+v", i, got[i], want[i])
		}
	}
	if h.DRAM() != fresh.DRAM() {
		t.Errorf("DRAM stats diverge after identical traces: %+v vs %+v", h.DRAM(), fresh.DRAM())
	}
}
