package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(1024)
	if !m.Write32(0, 0xDEADBEEF) {
		t.Fatal("write32 failed")
	}
	v, ok := m.Read32(0)
	if !ok || v != 0xDEADBEEF {
		t.Fatalf("read32 = %#x, %v", v, ok)
	}
	// Little-endian layout.
	b, _ := m.Read8(0)
	if b != 0xEF {
		t.Errorf("byte 0 = %#x, want 0xEF", b)
	}
	h, _ := m.Read16(2)
	if h != 0xDEAD {
		t.Errorf("half 2 = %#x, want 0xDEAD", h)
	}
	if !m.Write16(10, 0x1234) {
		t.Fatal("write16 failed")
	}
	if h, _ := m.Read16(10); h != 0x1234 {
		t.Errorf("half 10 = %#x", h)
	}
	if !m.Write8(20, 0xAB) {
		t.Fatal("write8 failed")
	}
	if b, _ := m.Read8(20); b != 0xAB {
		t.Errorf("byte 20 = %#x", b)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(16)
	if _, ok := m.Read32(13); ok {
		t.Error("read32 past end succeeded")
	}
	if _, ok := m.Read32(16); ok {
		t.Error("read32 at end succeeded")
	}
	if m.Write32(0xFFFFFFFF, 1) {
		t.Error("write32 at 2^32-1 succeeded")
	}
	if _, ok := m.Read32(12); !ok {
		t.Error("read32 of last word failed")
	}
	if err := m.WriteBytes(8, make([]byte, 9)); err == nil {
		t.Error("WriteBytes overflow succeeded")
	}
	if _, err := m.ReadBytes(0, 17); err == nil {
		t.Error("ReadBytes overflow succeeded")
	}
}

func TestMemoryGrow(t *testing.T) {
	m := NewMemory(8)
	m.Write32(4, 99)
	m.Grow(64)
	if m.Size() != 64 {
		t.Fatalf("size = %d", m.Size())
	}
	if v, _ := m.Read32(4); v != 99 {
		t.Errorf("contents lost on grow: %d", v)
	}
	m.Grow(32) // no-op shrink attempt
	if m.Size() != 64 {
		t.Errorf("grow shrank memory to %d", m.Size())
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []CacheConfig{
		{SizeBytes: 16 << 10, LineBytes: 48, Ways: 4},   // non-pow2 line
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 0},   // no ways
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},       // not divisible
		{SizeBytes: 3 * 64 * 4, LineBytes: 64, Ways: 4}, // sets not pow2
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	// Direct-capacity test: 2 sets x 2 ways x 64B lines = 256B.
	c, err := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2, HitLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct lines mapping to set 0: addresses 0, 128, 256.
	if c.lookup(0, false) {
		t.Error("cold lookup hit")
	}
	c.fill(0, false)
	if !c.lookup(0, false) {
		t.Error("filled line missed")
	}
	c.fill(128, false)
	if !c.lookup(128, false) || !c.lookup(0, false) {
		t.Error("two-way set lost a line")
	}
	// Touch 128 less recently than 0, then fill 256: victim must be 128.
	c.lookup(0, false)
	c.fill(256, false)
	if c.Contains(128) {
		t.Error("LRU evicted wrong line (128 should be gone)")
	}
	if !c.Contains(0) || !c.Contains(256) {
		t.Error("expected lines 0 and 256 resident")
	}
	if c.Stats.Hits == 0 || c.Stats.Misses == 0 {
		t.Errorf("stats not counted: %+v", c.Stats)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c, _ := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 1, HitLatency: 1})
	c.fill(0, true) // dirty
	wb, victim := c.fill(128, false)
	if !wb || victim != 0 {
		t.Errorf("writeback = %v, victim %#x; want true, 0", wb, victim)
	}
	wb, _ = c.fill(256, false) // 128 was clean
	if wb {
		t.Error("clean eviction reported writeback")
	}
	// A write hit must dirty the line.
	c.fill(0, false)
	c.lookup(0, true)
	wb, victim = c.fill(128, false)
	if !wb || victim != 0 {
		t.Error("write-hit did not dirty the line")
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2, HitLatency: 1})
	c.fill(0, false)
	c.Flush()
	if c.Contains(0) {
		t.Error("flush left line resident")
	}
}

func newTestHierarchy(t *testing.T, cores int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cores, HierarchyConfig{
		L1:   CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		L2:   CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 10},
		DRAM: DRAMConfig{Latency: 100, BytesPerCycle: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := newTestHierarchy(t, 2)
	transfer := uint64(64 / 16)

	// Cold access: L1 miss + L2 miss -> DRAM.
	r := h.Access(0, 0x1000, false, 0)
	if r.L1Hit || r.L2Hit {
		t.Errorf("cold access hit: %+v", r)
	}
	wantCold := uint64(1) + 10 + 100 + transfer
	if r.Done != wantCold {
		t.Errorf("cold done = %d, want %d", r.Done, wantCold)
	}

	// Re-access on the same core: L1 hit.
	r = h.Access(0, 0x1000, false, 200)
	if !r.L1Hit || r.Done != 201 {
		t.Errorf("L1 hit = %+v, want done 201", r)
	}

	// Same line from the other core: L1 miss, L2 hit.
	r = h.Access(1, 0x1000, false, 300)
	if r.L1Hit || !r.L2Hit {
		t.Errorf("cross-core access = %+v, want L2 hit", r)
	}
	if r.Done != 300+1+10 {
		t.Errorf("L2 hit done = %d, want %d", r.Done, 300+1+10)
	}
}

func TestHierarchyDRAMBandwidthSerializes(t *testing.T) {
	h := newTestHierarchy(t, 1)
	transfer := uint64(64 / 16)
	// Two cold misses to distinct lines issued at the same cycle: the second
	// must wait for the first transfer to release the bus.
	r1 := h.Access(0, 0x10000, false, 0)
	r2 := h.Access(0, 0x20000, false, 0)
	if r2.Done != r1.Done+transfer {
		t.Errorf("second miss done = %d, want %d (serialized by bandwidth)", r2.Done, r1.Done+transfer)
	}
	if h.DRAM().LineReads != 2 {
		t.Errorf("line reads = %d", h.DRAM().LineReads)
	}
}

func TestHierarchyL2Disabled(t *testing.T) {
	h, err := NewHierarchy(1, HierarchyConfig{
		L1:         CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		L2:         CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 10},
		DRAM:       DRAMConfig{Latency: 50, BytesPerCycle: 64},
		L2Disabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Access(0, 0, false, 0)
	if r.Done != 1+50+1 {
		t.Errorf("bypass done = %d, want 52", r.Done)
	}
	if h.L2Stats().Accesses != 0 {
		t.Error("L2 accessed while disabled")
	}
}

func TestHierarchyWritebackPath(t *testing.T) {
	// 1-way 128B L1: two lines. Write line 0, then evict it twice over.
	h, err := NewHierarchy(1, HierarchyConfig{
		L1:   CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 1, HitLatency: 1},
		L2:   CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 1, HitLatency: 5},
		DRAM: DRAMConfig{Latency: 10, BytesPerCycle: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0, true, 0)     // allocate line 0 dirty in L1
	h.Access(0, 128, false, 50) // same set -> evicts dirty 0 into L2
	if h.L1Stats(0).Writebacks != 1 {
		t.Errorf("L1 writebacks = %d, want 1", h.L1Stats(0).Writebacks)
	}
	// L2 holds line 0 now (allocated by the writeback).
	r := h.Access(0, 0, false, 100)
	if !r.L2Hit {
		t.Errorf("writeback victim not found in L2: %+v", r)
	}
}

func TestHierarchyRejectsBadConfigs(t *testing.T) {
	_, err := NewHierarchy(0, DefaultHierarchyConfig())
	if err == nil {
		t.Error("cores=0 accepted")
	}
	cfg := DefaultHierarchyConfig()
	cfg.L2.LineBytes = 32
	if _, err := NewHierarchy(1, cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.DRAM.BytesPerCycle = 0
	if _, err := NewHierarchy(1, cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestCoalesceMergesWithinLine(t *testing.T) {
	// 4 threads reading consecutive words in one 64B line -> 1 request.
	addrs := []uint32{0x100, 0x104, 0x108, 0x10C}
	got := Coalesce(addrs, 0xF, 6, nil)
	if len(got) != 1 || got[0] != 0x100 {
		t.Errorf("coalesced = %#v", got)
	}
	// Strided by 64B -> one request per lane.
	addrs = []uint32{0x0, 0x40, 0x80, 0xC0}
	got = Coalesce(addrs, 0xF, 6, got)
	if len(got) != 4 {
		t.Errorf("strided coalesce = %#v", got)
	}
	// Mask disables lanes.
	got = Coalesce(addrs, 0x5, 6, got)
	if len(got) != 2 || got[0] != 0x0 || got[1] != 0x80 {
		t.Errorf("masked coalesce = %#v", got)
	}
	// Empty mask -> no requests.
	if got = Coalesce(addrs, 0, 6, got); len(got) != 0 {
		t.Errorf("empty mask produced %#v", got)
	}
}

func TestCoalesceProperty(t *testing.T) {
	// Property: every active address's line appears exactly once, in
	// first-touch order.
	f := func(raw []uint32, mask uint64) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		got := Coalesce(raw, mask, 6, nil)
		seen := map[uint32]bool{}
		for _, l := range got {
			if l&63 != 0 || seen[l] {
				return false
			}
			seen[l] = true
		}
		for i, a := range raw {
			if mask&(1<<uint(i)) != 0 && !seen[a>>6<<6] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyStatsAggregation(t *testing.T) {
	h := newTestHierarchy(t, 4)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Access(r.Intn(4), uint32(r.Intn(1<<14))&^3, r.Intn(4) == 0, uint64(i))
	}
	total := h.TotalL1Stats()
	if total.Accesses != 1000 {
		t.Errorf("total L1 accesses = %d, want 1000", total.Accesses)
	}
	if total.Hits+total.Misses != total.Accesses {
		t.Errorf("hits+misses != accesses: %+v", total)
	}
	if total.HitRate() <= 0 || total.HitRate() >= 1 {
		t.Errorf("suspicious hit rate %v", total.HitRate())
	}
	if h.L2Stats().Accesses != total.Misses {
		// Writebacks also access L2, so L2 accesses >= L1 misses.
		if h.L2Stats().Accesses < total.Misses {
			t.Errorf("L2 accesses %d < L1 misses %d", h.L2Stats().Accesses, total.Misses)
		}
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.Access(0, 0, false, 0)
	h.Flush()
	r := h.Access(0, 0, false, 1000)
	if r.L1Hit || r.L2Hit {
		t.Errorf("access after flush hit: %+v", r)
	}
}
