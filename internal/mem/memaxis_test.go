package mem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseL1Geometry(t *testing.T) {
	good := []struct {
		spec string
		size int
		ways int
	}{
		{"16k4w", 16 << 10, 4},
		{"32k8w", 32 << 10, 8},
		{"8k2w", 8 << 10, 2},
		{"1k1w", 1 << 10, 1},
	}
	for _, g := range good {
		size, ways, err := ParseL1Geometry(g.spec)
		if err != nil {
			t.Errorf("ParseL1Geometry(%q) = %v", g.spec, err)
			continue
		}
		if size != g.size || ways != g.ways {
			t.Errorf("ParseL1Geometry(%q) = (%d, %d), want (%d, %d)", g.spec, size, ways, g.size, g.ways)
		}
	}
	// The grammar is rigid: two spellings of one geometry would alias grid
	// points, so anything but <n>k<n>w is refused.
	bad := []string{"", "16k", "4w", "k4w", "16K4W", "16k4", "16 k 4 w", "-16k4w", "16k-4w", "0k4w", "16k0w", "16kb4w", "16k4w ", "x16k4w"}
	for _, spec := range bad {
		if _, _, err := ParseL1Geometry(spec); err == nil {
			t.Errorf("ParseL1Geometry(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), spec) {
			t.Errorf("ParseL1Geometry(%q) error does not name the spec: %v", spec, err)
		}
	}
	// Grammatically valid but unrealizable geometry (sets not a power of
	// two) is refused here, at the spec boundary, not in device build.
	if _, _, err := ParseL1Geometry("3k4w"); err == nil {
		t.Error("ParseL1Geometry(3k4w) accepted (12 sets is not a power of two)")
	}
}

func TestL1GeometryFormatRoundTrip(t *testing.T) {
	for _, spec := range []string{"16k4w", "32k8w", "8k2w"} {
		size, ways, err := ParseL1Geometry(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatL1Geometry(size, ways); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
	// Non-KiB sizes cannot come from a spec; they render with a byte marker
	// for diagnostics and must not re-parse.
	odd := FormatL1Geometry(1000, 2)
	if _, _, err := ParseL1Geometry(odd); err == nil {
		t.Errorf("diagnostic form %q re-parsed", odd)
	}
	// The default geometry is canonical: it parses back to the default L1.
	def := DefaultHierarchyConfig().L1
	size, ways, err := ParseL1Geometry(DefaultL1Geometry())
	if err != nil {
		t.Fatal(err)
	}
	if size != def.SizeBytes || ways != def.Ways {
		t.Errorf("DefaultL1Geometry() = %s -> (%d, %d), want (%d, %d)",
			DefaultL1Geometry(), size, ways, def.SizeBytes, def.Ways)
	}
}

func TestParsePrefetchPolicy(t *testing.T) {
	for _, p := range PrefetchPolicies() {
		got, err := ParsePrefetchPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrefetchPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, name := range []string{"", "on", "next-line", "OFF", "stride"} {
		if _, err := ParsePrefetchPolicy(name); err == nil {
			t.Errorf("ParsePrefetchPolicy(%q) accepted", name)
		}
	}
	// Out-of-range enum values print a diagnostic form that round-trip
	// validation (HierarchyConfig via ParsePrefetchPolicy) refuses.
	if _, err := ParsePrefetchPolicy(PrefetchPolicy(99).String()); err == nil {
		t.Error("out-of-range policy accepted")
	}
}

func TestCacheConfigRejectsNegativeMSHRs(t *testing.T) {
	cfg := DefaultHierarchyConfig().L1
	cfg.MSHRs = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative MSHR count accepted")
	}
	cfg.MSHRs = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("MSHRs=0 (unbounded) refused: %v", err)
	}
}

// TestHierarchyRejectsNegativeGridKnobs pins the two distinct refusals on
// the hierarchy config path: a negative L2 bank count and a negative DRAM
// channel count each fail NewHierarchy with an error naming that knob, not
// a generic config error — grid axes surface these values from CLI flags,
// so the diagnostic must say which flag is wrong.
func TestHierarchyRejectsNegativeGridKnobs(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L2Banks = -1
	_, err := NewHierarchy(1, cfg)
	if err == nil {
		t.Fatal("negative L2Banks accepted")
	}
	if !strings.Contains(err.Error(), "bank") {
		t.Errorf("L2Banks refusal does not name the knob: %v", err)
	}

	cfg = DefaultHierarchyConfig()
	cfg.DRAM.Channels = -1
	_, err = NewHierarchy(1, cfg)
	if err == nil {
		t.Fatal("negative DRAM.Channels accepted")
	}
	if !strings.Contains(err.Error(), "channel") {
		t.Errorf("Channels refusal does not name the knob: %v", err)
	}
	// The two refusals are distinct diagnostics, not one shared message.
	cfgB := DefaultHierarchyConfig()
	cfgB.L2Banks = -1
	_, errB := NewHierarchy(1, cfgB)
	if errB.Error() == err.Error() {
		t.Errorf("bank and channel refusals share a message: %v", err)
	}

	cfg = DefaultHierarchyConfig()
	cfg.Prefetch = PrefetchPolicy(99)
	if _, err := NewHierarchy(1, cfg); err == nil {
		t.Error("unknown prefetch policy accepted")
	}
}

func TestPrefetchFill(t *testing.T) {
	newCache := func() *Cache {
		c, err := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2, HitLatency: 1})
		if err != nil {
			t.Fatal(err)
		}
		return c // 2 sets x 2 ways
	}

	t.Run("present line untouched", func(t *testing.T) {
		c := newCache()
		c.lookup(0x100, false)
		c.fill(0x100, false)
		if c.prefetchFill(0x100) {
			t.Error("prefetchFill re-filled a present line")
		}
		if c.Stats.PrefetchIssued != 0 {
			t.Errorf("PrefetchIssued = %d, want 0", c.Stats.PrefetchIssued)
		}
		// The demand line kept its state: touching it is a plain hit, not a
		// prefetch hit.
		if !c.lookup(0x100, false) || c.Stats.PrefetchHits != 0 {
			t.Errorf("demand line perturbed: hits=%d pfhits=%d", c.Stats.Hits, c.Stats.PrefetchHits)
		}
	})

	t.Run("dirty victim drops the prefetch", func(t *testing.T) {
		c := newCache()
		// Fill both ways of set 0 with dirty lines (set index = line&1 with
		// 2 sets: lines 0x000 and 0x100 are set 0; 0x200 set 0 too).
		c.lookup(0x000, true)
		c.fill(0x000, true)
		c.lookup(0x200, true)
		c.fill(0x200, true)
		if c.prefetchFill(0x400) {
			t.Error("prefetchFill evicted a dirty victim")
		}
		if c.Stats.PrefetchIssued != 0 || c.Stats.Writebacks != 0 {
			t.Errorf("tag-only prefetch generated traffic: issued=%d wb=%d",
				c.Stats.PrefetchIssued, c.Stats.Writebacks)
		}
		if !c.Contains(0x000) || !c.Contains(0x200) {
			t.Error("dropped prefetch still displaced a line")
		}
	})

	t.Run("demand touch counts one prefetch hit", func(t *testing.T) {
		c := newCache()
		if !c.prefetchFill(0x300) {
			t.Fatal("prefetchFill into an empty set failed")
		}
		if c.Stats.PrefetchIssued != 1 {
			t.Errorf("PrefetchIssued = %d, want 1", c.Stats.PrefetchIssued)
		}
		// Prefetch fills are invisible to the demand counters until touched.
		if c.Stats.Accesses != 0 || c.Stats.Hits != 0 {
			t.Errorf("prefetch perturbed demand stats: %+v", c.Stats)
		}
		if !c.lookup(0x304, false) {
			t.Fatal("demand access missed the prefetched line")
		}
		if c.Stats.PrefetchHits != 1 || c.Stats.Hits != 1 {
			t.Errorf("first touch: pfhits=%d hits=%d, want 1/1", c.Stats.PrefetchHits, c.Stats.Hits)
		}
		// The bit clears on first touch: a second demand hit is ordinary.
		c.lookup(0x300, false)
		if c.Stats.PrefetchHits != 1 || c.Stats.Hits != 2 {
			t.Errorf("second touch: pfhits=%d hits=%d, want 1/2", c.Stats.PrefetchHits, c.Stats.Hits)
		}
	})

	t.Run("clean victim is displaced", func(t *testing.T) {
		c := newCache()
		c.lookup(0x000, false)
		c.fill(0x000, false)
		c.lookup(0x200, false)
		c.fill(0x200, false)
		if !c.prefetchFill(0x400) {
			t.Fatal("prefetchFill refused a clean-victim set")
		}
		if !c.Contains(0x400) {
			t.Error("prefetched line absent")
		}
	})
}

// TestHierarchyNextLinePrefetch drives the prefetcher through the public
// hierarchy API: a streaming read of consecutive lines turns every second
// demand access into a prefetch hit, while the unbounded-address edge
// (line+1 wrapping to 0) issues nothing.
func TestHierarchyNextLinePrefetch(t *testing.T) {
	cfg := HierarchyConfig{
		L1:       CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		L2:       CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 10},
		DRAM:     DRAMConfig{Latency: 100, BytesPerCycle: 16},
		Prefetch: PrefetchNextLine,
	}
	h, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		h.Access(0, i*64, false, uint64(i))
	}
	s := h.TotalL1Stats()
	if s.PrefetchIssued == 0 {
		t.Error("streaming read issued no prefetches")
	}
	// The prefetcher fires on demand misses only: line 0 misses and
	// prefetches line 1, line 1 is a prefetch hit (no new prefetch), line 2
	// misses again — the stream alternates miss / prefetch hit.
	if s.PrefetchHits != 4 || s.Hits != 4 || s.Misses != 4 || s.PrefetchIssued != 4 {
		t.Errorf("streaming stats = %+v, want 4 prefetch hits / 4 hits / 4 misses / 4 issued", s)
	}

	// Wrap guard: the last line of the address space has no next line.
	h2, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2.Access(0, 0xFFFFFFC0, false, 0)
	if s := h2.TotalL1Stats(); s.PrefetchIssued != 0 {
		t.Errorf("prefetch past the end of the address space: %+v", s)
	}
}

// TestBankFetchSlot pins the L2 MSHR bound: with n MSHRs per bank, the
// (n+1)-th concurrent fetch from one bank is pushed to the first
// retirement, and a fetch after the lifetimes lapse is not delayed.
func TestBankFetchSlot(t *testing.T) {
	cfg := HierarchyConfig{
		L1:   CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, HitLatency: 1},
		L2:   CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 10, MSHRs: 2},
		DRAM: DRAMConfig{Latency: 100, BytesPerCycle: 16},
	}
	h, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.bankMSHR == nil {
		t.Fatal("bankMSHR not allocated with L2.MSHRs > 0")
	}
	life := uint64(cfg.DRAM.Latency) + h.transferCycles()
	// Two fetches occupy both MSHRs of bank 0.
	if at := h.bankFetchSlot(0, 10); at != 10 {
		t.Errorf("first fetch delayed to %d", at)
	}
	if at := h.bankFetchSlot(0, 11); at != 11 {
		t.Errorf("second fetch delayed to %d", at)
	}
	// The third stalls until the earliest entry retires at 10+life.
	if at := h.bankFetchSlot(0, 12); at != 10+life {
		t.Errorf("third fetch leaves at %d, want %d", at, 10+life)
	}
	// Other banks are independent.
	if len(h.bankMSHR) > 1 {
		if at := h.bankFetchSlot(1, 12); at != 12 {
			t.Errorf("bank 1 fetch delayed to %d by bank 0 occupancy", at)
		}
	}
	// Far in the future every entry has retired: no delay, and the retired
	// entries are purged.
	far := 10 + 10*life
	if at := h.bankFetchSlot(0, far); at != far {
		t.Errorf("post-retirement fetch delayed to %d", at)
	}
	if n := len(h.bankMSHR[0]); n != 1 {
		t.Errorf("stale MSHR entries not purged: %d live", n)
	}
	// Reset rewinds occupancy.
	h.Reset()
	if n := len(h.bankMSHR[0]); n != 0 {
		t.Errorf("Reset left %d MSHR entries", n)
	}
}

// coalesceNaive is the O(n^2) reference: every active lane's line address,
// first-touch order, duplicates dropped by linear scan. Coalesce's windowed
// fast path must be observationally identical to it.
func coalesceNaive(addrs []uint32, mask uint64, lineShift uint) []uint32 {
	var out []uint32
	for i, a := range addrs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		line := a >> lineShift << lineShift
		dup := false
		for _, o := range out {
			if o == line {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, line)
		}
	}
	return out
}

// TestCoalesceMatchesNaiveOracle compares the windowed coalescer against
// the O(n^2) oracle, both on directed adversarial shapes (window
// straddling, the wrapping first-lane window anchor, scattered far
// addresses) and under quick.Check.
func TestCoalesceMatchesNaiveOracle(t *testing.T) {
	check := func(name string, addrs []uint32, mask uint64) {
		t.Helper()
		got := Coalesce(addrs, mask, 6, nil)
		want := coalesceNaive(addrs, mask, 6)
		if len(got) != len(want) {
			t.Errorf("%s: got %#v, want %#v", name, got, want)
			return
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: got %#v, want %#v", name, got, want)
				return
			}
		}
	}

	// The fast path anchors a 64-line window at first-line-32; these shapes
	// force traffic on both sides of and beyond that window.
	check("straddle below window", []uint32{64 * 100, 64 * 40, 64 * 100, 64 * 40}, 0xF)
	check("straddle above window", []uint32{64 * 100, 64 * 200, 64 * 100, 64 * 200}, 0xF)
	// First active lane's line index < 32: the window anchor idx-32 wraps
	// uint32 and lines numerically below it must still dedup correctly.
	check("wrapping anchor", []uint32{64 * 5, 64 * 5, 0, 64 * 5, 64 * 6, 0}, 0x3F)
	check("wrapping anchor line 0", []uint32{0, 0, 64, 0}, 0xF)
	// Scattered addresses land outside the window and exercise the slow
	// linear-dedup path against itself.
	check("scattered", []uint32{0, 1 << 20, 2 << 20, 1 << 20, 64, 3 << 30, 0}, 0x7F)
	// Masked lanes never contribute a line.
	check("masked scatter", []uint32{0, 1 << 20, 2 << 20, 1 << 20}, 0xA)

	r := rand.New(rand.NewSource(11))
	f := func(raw []uint32, mask uint64, mode uint8) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		// Mode biases the shapes: raw uniform addresses almost never
		// collide, so fold some into a small line range to exercise the
		// window dedup.
		if mode%2 == 0 {
			for i := range raw {
				raw[i] %= 64 * 96 // ~1.5 windows of lines
			}
		}
		got := Coalesce(raw, mask, 6, nil)
		want := coalesceNaive(raw, mask, 6)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 4000, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
