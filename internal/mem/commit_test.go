package mem

// Property and fuzz tests for the commit decomposition this package
// exports to the bank-sharded parallel engine:
//
//   - SharedAccess (the single-threaded global order) must be equivalent
//     to applying the bank-local halves per bank and the channel-local
//     halves per channel in the global order *restricted* to each shard —
//     the exact replay discipline internal/sim's commit workers use.
//   - A banked L2 must behave identically to a monolithic L2 of the same
//     total geometry: hit/miss/writeback/LRU decisions and statistics all
//     survive the striping.
//
// The fuzz corpus is seeded with access streams shaped like the registry
// kernels' traffic (gid-strided vecadd/saxpy streams, sgemm row tiles,
// knn-style gathers), so regressions in exactly the patterns the Figure 2
// sweeps produce are caught without running the full runtime.

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// commitTestConfig is small enough that random streams thrash every level:
// 512B 2-way L1s, an 8KiB 4-way L2 over nb banks, 3 DRAM channels (a
// non-power-of-two, so channels do not align with banks).
func commitTestConfig(nb int) HierarchyConfig {
	return HierarchyConfig{
		L1:      CacheConfig{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1},
		L2:      CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 10},
		DRAM:    DRAMConfig{Latency: 100, BytesPerCycle: 16, Channels: 3},
		L2Banks: nb,
	}
}

// applyDecomposed replays one cycle's batch of misses the way the sharded
// commit engine does: bank halves applied per bank in batch order, DRAM
// ops deferred with their global-order key, then channel halves applied
// per channel in key order. Returns each miss's completion cycle.
func applyDecomposed(h *Hierarchy, batch []MissInfo) []uint64 {
	type op struct {
		addr uint32
		at   uint64
		read bool
		seq  int
		idx  int
	}
	dones := make([]uint64, len(batch))
	chOps := make([][]op, h.DRAMChannels())
	for b := 0; b < h.L2Banks(); b++ {
		for i, m := range batch {
			if m.WB && h.BankOf(m.WBAddr) == b {
				if v, wb := h.BankAbsorbWriteback(m.WBAddr, m.At); wb {
					ch := h.ChannelOf(v)
					chOps[ch] = append(chOps[ch], op{v, m.At, false, i * 4, i})
				}
			}
			if h.BankOf(m.Addr) != b {
				continue
			}
			res, fetchAt, needDRAM, victim, hasVictim := h.BankFill(m)
			if hasVictim {
				ch := h.ChannelOf(victim)
				chOps[ch] = append(chOps[ch], op{victim, fetchAt, false, i*4 + 1, i})
			}
			if needDRAM {
				ch := h.ChannelOf(m.Addr)
				chOps[ch] = append(chOps[ch], op{m.Addr, fetchAt, true, i*4 + 2, i})
			} else {
				dones[i] = res.Done
			}
		}
	}
	for ch := range chOps {
		ops := chOps[ch]
		sort.Slice(ops, func(a, b int) bool { return ops[a].seq < ops[b].seq })
		for _, o := range ops {
			if o.read {
				dones[o.idx] = h.ChannelRead(o.addr, o.at)
			} else {
				h.ChannelWriteback(o.addr, o.at)
			}
		}
	}
	return dones
}

func compareHierarchyState(t *testing.T, label string, a, b *Hierarchy) {
	t.Helper()
	if a.L2Stats() != b.L2Stats() {
		t.Errorf("%s: L2 stats differ: %+v vs %+v", label, a.L2Stats(), b.L2Stats())
	}
	if a.DRAM() != b.DRAM() {
		t.Errorf("%s: DRAM stats differ: %+v vs %+v", label, a.DRAM(), b.DRAM())
	}
	if a.DRAMChannels() == b.DRAMChannels() {
		for ch := 0; ch < a.DRAMChannels(); ch++ {
			if a.DRAMChannelStats(ch) != b.DRAMChannelStats(ch) {
				t.Errorf("%s: channel %d stats differ: %+v vs %+v",
					label, ch, a.DRAMChannelStats(ch), b.DRAMChannelStats(ch))
			}
		}
	}
	if a.L2Banks() == b.L2Banks() {
		for bk := 0; bk < a.L2Banks(); bk++ {
			if a.L2BankStats(bk) != b.L2BankStats(bk) {
				t.Errorf("%s: bank %d stats differ: %+v vs %+v",
					label, bk, a.L2BankStats(bk), b.L2BankStats(bk))
			}
		}
	}
}

// randomMissBatches builds race-free miss streams grouped into cycles, the
// shape the parallel engine's commit phase sees: within a batch the At
// stamps share one device cycle's neighborhood, and addresses spread over
// enough lines to force L2 evictions and dirty writebacks.
func randomMissBatches(r *rand.Rand, batches, maxPerBatch int) [][]MissInfo {
	out := make([][]MissInfo, 0, batches)
	now := uint64(1)
	for c := 0; c < batches; c++ {
		n := 1 + r.Intn(maxPerBatch)
		batch := make([]MissInfo, 0, n)
		for i := 0; i < n; i++ {
			m := MissInfo{
				Addr:  uint32(r.Intn(1<<16)) &^ 63,
				Write: r.Intn(3) == 0,
				At:    now + uint64(r.Intn(4)),
			}
			if r.Intn(2) == 0 {
				m.WB = true
				m.WBAddr = uint32(r.Intn(1<<16)) &^ 63
			}
			batch = append(batch, m)
		}
		out = append(out, batch)
		now += uint64(1 + r.Intn(50))
	}
	return out
}

// TestDecomposedCommitMatchesSharedAccess is the mem-level half of the
// sharded-commit determinism contract: for randomized race-free miss
// streams, replaying each cycle through the bank/channel primitives in
// shard-restricted order must be byte-identical — completion cycles,
// per-bank L2 stats, per-channel DRAM stats — to the single-threaded
// global SharedAccess order.
func TestDecomposedCommitMatchesSharedAccess(t *testing.T) {
	for _, nb := range []int{1, 2, 8} {
		r := rand.New(rand.NewSource(int64(7 + nb)))
		hSeq, err := NewHierarchy(1, commitTestConfig(nb))
		if err != nil {
			t.Fatal(err)
		}
		hShard, err := NewHierarchy(1, commitTestConfig(nb))
		if err != nil {
			t.Fatal(err)
		}
		for ci, batch := range randomMissBatches(r, 400, 6) {
			var want []uint64
			for _, m := range batch {
				want = append(want, hSeq.SharedAccess(m).Done)
			}
			got := applyDecomposed(hShard, batch)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("banks=%d batch %d miss %d: done %d (sharded) vs %d (global)",
						nb, ci, i, got[i], want[i])
				}
			}
		}
		compareHierarchyState(t, "decomposed", hSeq, hShard)
	}
}

// access is one decoded step of a fuzzed L1-level stream.
type access struct {
	core  int
	addr  uint32
	write bool
}

// decodeStream turns fuzz bytes into a bounded access stream: 5 bytes per
// access — core, flags, 3 address bytes (clamped to a 1MiB space).
func decodeStream(data []byte, cores int) []access {
	const maxAccesses = 4096
	var out []access
	for len(data) >= 5 && len(out) < maxAccesses {
		a := access{
			core:  int(data[0]) % cores,
			write: data[1]&1 != 0,
			addr:  binary.LittleEndian.Uint32([]byte{data[2], data[3], data[4], 0}) % (1 << 20),
		}
		out = append(out, a)
		data = data[5:]
	}
	return out
}

// runStream drives a stream through the full Access path, one access per
// simulated cycle, and returns the completion cycles.
func runStream(h *Hierarchy, stream []access) []uint64 {
	dones := make([]uint64, len(stream))
	for i, a := range stream {
		dones[i] = h.Access(a.core, a.addr, a.write, uint64(i)).Done
	}
	return dones
}

// checkBankingEquivalence asserts that a banked L2 is observationally
// identical to the monolithic L2 of the same total geometry on the given
// stream: per-access completion cycles, summed L2 hit/miss/writeback
// counts (which pin LRU decisions: a divergent eviction changes later
// hits) and DRAM statistics all match.
func checkBankingEquivalence(t *testing.T, stream []access) {
	t.Helper()
	if len(stream) == 0 {
		return
	}
	const cores = 4
	mono, err := NewHierarchy(cores, commitTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	banked, err := NewHierarchy(cores, commitTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if mono.L2Banks() != 1 || banked.L2Banks() != 8 {
		t.Fatalf("bank counts = %d, %d; want 1, 8", mono.L2Banks(), banked.L2Banks())
	}
	dMono := runStream(mono, stream)
	dBanked := runStream(banked, stream)
	for i := range dMono {
		if dMono[i] != dBanked[i] {
			t.Fatalf("access %d (%+v): done %d (monolithic) vs %d (banked)",
				i, stream[i], dMono[i], dBanked[i])
		}
	}
	compareHierarchyState(t, "banked-vs-monolithic", mono, banked)
	for c := 0; c < cores; c++ {
		if mono.L1Stats(c) != banked.L1Stats(c) {
			t.Errorf("core %d L1 stats differ: %+v vs %+v", c, mono.L1Stats(c), banked.L1Stats(c))
		}
	}
}

// kernelShapedSeeds builds the fuzz corpus from the registry kernels'
// characteristic access shapes: gid-strided element streams (vecadd, relu,
// saxpy), row-tiled matrix walks (sgemm, gauss) and irregular gathers
// (knn, gcn_aggr). Encoded with the same 5-byte schema decodeStream reads.
func kernelShapedSeeds() [][]byte {
	enc := func(as []access) []byte {
		var b []byte
		for _, a := range as {
			flags := byte(0)
			if a.write {
				flags = 1
			}
			b = append(b, byte(a.core), flags, byte(a.addr), byte(a.addr>>8), byte(a.addr>>16))
		}
		return b
	}
	var vecadd []access // a[i] + b[i] -> c[i], four cores strided by gid
	for i := 0; i < 256; i++ {
		core := i % 4
		gid := uint32(i)
		vecadd = append(vecadd,
			access{core, 0x10000 + gid*4, false},
			access{core, 0x20000 + gid*4, false},
			access{core, 0x30000 + gid*4, true})
	}
	var sgemm []access // row tile of A reused against a column walk of B
	for i := 0; i < 128; i++ {
		core := (i / 32) % 4
		sgemm = append(sgemm,
			access{core, 0x40000 + uint32(i%16)*4, false},
			access{core, 0x50000 + uint32(i)*256, false},
			access{core, 0x60000 + uint32(i/16)*4, true})
	}
	var knn []access // pseudo-random gather with a small hot region
	state := uint32(12345)
	for i := 0; i < 256; i++ {
		state = state*1664525 + 1013904223
		knn = append(knn,
			access{i % 4, 0x70000 + state%(1<<15), false},
			access{i % 4, 0x80000 + uint32(i%8)*64, true})
	}
	return [][]byte{enc(vecadd), enc(sgemm), enc(knn)}
}

// FuzzL2BankingEquivalence fuzzes arbitrary race-free access streams
// against the banked-vs-monolithic equivalence, seeded with the
// kernel-shaped corpus. `go test` runs the seeds as regular unit tests;
// `go test -fuzz=FuzzL2BankingEquivalence ./internal/mem` explores beyond
// them.
func FuzzL2BankingEquivalence(f *testing.F) {
	for _, seed := range kernelShapedSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkBankingEquivalence(t, decodeStream(data, 4))
	})
}

// TestBankedL2StatsRandomStreams is the always-on property check behind
// the fuzz target: randomized streams, heavier than the fuzz seeds, across
// several write mixes.
func TestBankedL2StatsRandomStreams(t *testing.T) {
	for _, writeDenom := range []int{2, 4, 8} {
		r := rand.New(rand.NewSource(int64(writeDenom)))
		stream := make([]access, 3000)
		for i := range stream {
			stream[i] = access{
				core:  r.Intn(4),
				addr:  uint32(r.Intn(1 << 18)),
				write: r.Intn(writeDenom) == 0,
			}
		}
		checkBankingEquivalence(t, stream)
	}
}
