package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes  int // total capacity
	LineBytes  int // line size (power of two)
	Ways       int // associativity
	HitLatency int // cycles from access to data for a hit

	// MSHRs bounds the outstanding misses this level tolerates (miss-status
	// holding registers). 0 means unbounded — the pre-MSHR model and the
	// differential oracle. The cache itself only carries the knob: occupancy
	// lives with the timing engine that owns the level (the simulator's
	// per-core LSU for L1s, the hierarchy's per-bank fetch path for L2).
	MSHRs int
}

// Validate checks the geometry is realizable.
func (c CacheConfig) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: ways %d invalid", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem: size %d not divisible by line*ways", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d not a power of two", sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("mem: negative hit latency")
	}
	if c.MSHRs < 0 {
		return fmt.Errorf("mem: negative MSHR count %d", c.MSHRs)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	// PrefetchIssued counts tag-only prefetch fills performed; PrefetchHits
	// counts demand accesses whose first touch landed on a still-unused
	// prefetched line (the bit clears on that touch, so a line counts once).
	// Neither perturbs Accesses/Hits/Misses: a prefetch hit is still a
	// demand hit.
	PrefetchIssued uint64
	PrefetchHits   uint64
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type cacheLine struct {
	tag    uint32
	valid  bool
	dirty  bool
	pfetch bool   // filled by a prefetch and not yet touched by demand
	lru    uint64 // last-touched stamp; larger is more recent
}

// Cache is one set-associative, write-back, write-allocate cache level.
// It tracks tags only; data lives in the flat Memory.
type Cache struct {
	cfg       CacheConfig
	lines     []cacheLine // sets*ways, set-major
	sets      int
	lineShift uint
	setMask   uint32
	stamp     uint64
	Stats     CacheStats
}

// NewCache builds a cache; the config must validate.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]cacheLine, sets*cfg.Ways),
		sets:      sets,
		lineShift: shift,
		setMask:   uint32(sets - 1),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

// lookup probes for the line containing addr, updating LRU on hit.
func (c *Cache) lookup(addr uint32, write bool) bool {
	c.Stats.Accesses++
	c.stamp++
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	base := int(set) * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			c.lines[i].lru = c.stamp
			if write {
				c.lines[i].dirty = true
			}
			if c.lines[i].pfetch {
				c.lines[i].pfetch = false
				c.Stats.PrefetchHits++
			}
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// fill inserts the line containing addr, evicting LRU. It reports whether a
// dirty line was written back.
func (c *Cache) fill(addr uint32, write bool) (writeback bool, victimAddr uint32) {
	c.stamp++
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	base := int(set) * c.cfg.Ways
	victim := base
	for i := base; i < base+c.cfg.Ways; i++ {
		if !c.lines[i].valid {
			victim = i
			break
		}
		if c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	line := &c.lines[victim]
	if line.valid && line.dirty {
		writeback = true
		victimAddr = (line.tag << c.lineShift)
		c.Stats.Writebacks++
	}
	*line = cacheLine{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return writeback, victimAddr
}

// prefetchFill inserts addr's line as a clean, prefetched-but-unused line
// and reports whether it did. It is deliberately weaker than a demand fill:
// an already-present line is left untouched, and a set whose LRU victim is
// dirty drops the prefetch instead of evicting — a tag-only speculative
// fill never generates writeback traffic (the modeling choice DESIGN.md's
// "Memory axes" section records). Counted in Stats.PrefetchIssued, not in
// Accesses/Hits/Misses.
func (c *Cache) prefetchFill(addr uint32) bool {
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	base := int(set) * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			return false
		}
	}
	victim := base
	for i := base; i < base+c.cfg.Ways; i++ {
		if !c.lines[i].valid {
			victim = i
			break
		}
		if c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	if c.lines[victim].valid && c.lines[victim].dirty {
		return false
	}
	c.stamp++
	c.lines[victim] = cacheLine{tag: tag, valid: true, pfetch: true, lru: c.stamp}
	c.Stats.PrefetchIssued++
	return true
}

// Contains reports (without LRU side effects) whether addr's line is cached.
func (c *Cache) Contains(addr uint32) bool {
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	base := int(set) * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line (statistics are preserved).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}

// Reset restores the cache to its freshly constructed state: lines
// invalidated, the LRU stamp rewound and statistics zeroed, so a pooled
// device replays LRU decisions byte-identically to a new one.
func (c *Cache) Reset() {
	c.Flush()
	c.stamp = 0
	c.Stats = CacheStats{}
}
