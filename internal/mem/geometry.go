package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseL1Geometry resolves a compact L1 geometry spec of the form
// "<size>k<ways>w" — KiB of capacity and associativity, e.g. "16k4w" or
// "32k8w" — into (SizeBytes, Ways). The grammar is deliberately rigid
// (lowercase markers, both fields required, nothing else) because specs are
// grid-axis values: they round-trip through checkpoint metas, CSV columns
// and CLI flags, and two spellings of one geometry would alias grid points.
// The resulting geometry must validate against the default line size, so a
// bad spec is refused here at the Options/CLI boundary rather than deep in
// device construction.
func ParseL1Geometry(spec string) (sizeBytes, ways int, err error) {
	fail := func() (int, int, error) {
		return 0, 0, fmt.Errorf("mem: bad L1 geometry %q (want <size-KiB>k<ways>w, e.g. 16k4w)", spec)
	}
	k := strings.IndexByte(spec, 'k')
	if k <= 0 || !strings.HasSuffix(spec, "w") || len(spec) < k+3 {
		return fail()
	}
	kb, err := strconv.Atoi(spec[:k])
	if err != nil || kb <= 0 {
		return fail()
	}
	ways, err = strconv.Atoi(spec[k+1 : len(spec)-1])
	if err != nil || ways <= 0 {
		return fail()
	}
	cfg := DefaultHierarchyConfig().L1
	cfg.SizeBytes, cfg.Ways = kb<<10, ways
	if err := cfg.Validate(); err != nil {
		return 0, 0, fmt.Errorf("mem: L1 geometry %q: %w", spec, err)
	}
	return kb << 10, ways, nil
}

// FormatL1Geometry renders (SizeBytes, Ways) in the canonical spec form
// ParseL1Geometry accepts; sizes not a whole number of KiB cannot come from
// a spec and render with a byte suffix for diagnostics only.
func FormatL1Geometry(sizeBytes, ways int) string {
	if sizeBytes%1024 == 0 {
		return fmt.Sprintf("%dk%dw", sizeBytes>>10, ways)
	}
	return fmt.Sprintf("%db%dw", sizeBytes, ways)
}

// DefaultL1Geometry returns the canonical spec of the default L1.
func DefaultL1Geometry() string {
	l1 := DefaultHierarchyConfig().L1
	return FormatL1Geometry(l1.SizeBytes, l1.Ways)
}
