// Package mem models the GPGPU memory system: a flat little-endian device
// memory, set-associative write-back caches (a private L1 per core and a
// shared L2), a DRAM model with fixed latency and finite bandwidth, and the
// per-warp access coalescer.
//
// The caches are functional-timing only: data always lives in the flat
// memory (the simulator is sequentially consistent at instruction issue) and
// the hierarchy computes completion cycles and hit/miss statistics.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Memory is the flat device memory. Addresses are byte addresses from 0 to
// Size()-1; all accesses are bounds-checked.
type Memory struct {
	data []byte
	init uint32 // size at construction, restored by Reset
}

// NewMemory allocates a device memory of size bytes.
func NewMemory(size uint32) *Memory { return &Memory{data: make([]byte, size), init: size} }

// Reset zeroes the memory and restores its construction-time size, keeping
// the grown backing array so a pooled device reuses the allocation. After
// Reset the memory is indistinguishable from a freshly constructed one.
func (m *Memory) Reset() {
	clear(m.data)
	m.data = m.data[:m.init]
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Grow extends the memory to at least size bytes, preserving contents.
// Capacity grows geometrically so that a sequence of allocations (the
// buffer allocator calls Grow per Alloc) copies the existing contents
// O(log n) times instead of once per call.
func (m *Memory) Grow(size uint32) {
	if size <= m.Size() {
		return
	}
	if uint32(cap(m.data)) >= size {
		// The backing array beyond len was zeroed at allocation and never
		// exposed, so reslicing is equivalent to growing into fresh memory.
		m.data = m.data[:size]
		return
	}
	newCap := uint64(cap(m.data)) * 2
	if newCap > 1<<32-1 {
		newCap = 1<<32 - 1
	}
	if newCap < uint64(size) {
		newCap = uint64(size)
	}
	bigger := make([]byte, size, newCap)
	copy(bigger, m.data)
	m.data = bigger
}

// InBounds reports whether [addr, addr+n) lies inside the memory.
func (m *Memory) InBounds(addr, n uint32) bool {
	return n <= uint32(len(m.data)) && addr <= uint32(len(m.data))-n
}

// Read32 loads a little-endian 32-bit word.
func (m *Memory) Read32(addr uint32) (uint32, bool) {
	if !m.InBounds(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), true
}

// Write32 stores a little-endian 32-bit word.
func (m *Memory) Write32(addr, v uint32) bool {
	if !m.InBounds(addr, 4) {
		return false
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return true
}

// Read16 loads a little-endian 16-bit halfword.
func (m *Memory) Read16(addr uint32) (uint16, bool) {
	if !m.InBounds(addr, 2) {
		return 0, false
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), true
}

// Write16 stores a little-endian 16-bit halfword.
func (m *Memory) Write16(addr uint32, v uint16) bool {
	if !m.InBounds(addr, 2) {
		return false
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	return true
}

// Read8 loads a byte.
func (m *Memory) Read8(addr uint32) (uint8, bool) {
	if !m.InBounds(addr, 1) {
		return 0, false
	}
	return m.data[addr], true
}

// Write8 stores a byte.
func (m *Memory) Write8(addr uint32, v uint8) bool {
	if !m.InBounds(addr, 1) {
		return false
	}
	m.data[addr] = v
	return true
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	if !m.InBounds(addr, uint32(len(b))) {
		return fmt.Errorf("mem: write of %d bytes at %#x out of bounds (size %#x)", len(b), addr, m.Size())
	}
	copy(m.data[addr:], b)
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice. Hot
// callers that read repeatedly should use ReadBytesInto with a reused
// buffer instead.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, error) {
	if !m.InBounds(addr, n) {
		return nil, fmt.Errorf("mem: read of %d bytes at %#x out of bounds (size %#x)", n, addr, m.Size())
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// ReadBytesInto copies len(dst) bytes starting at addr into dst, the
// allocation-free variant of ReadBytes for caller-pooled buffers.
func (m *Memory) ReadBytesInto(dst []byte, addr uint32) error {
	if !m.InBounds(addr, uint32(len(dst))) {
		return fmt.Errorf("mem: read of %d bytes at %#x out of bounds (size %#x)", len(dst), addr, m.Size())
	}
	copy(dst, m.data[addr:])
	return nil
}

// ReadWordsStrided loads n consecutive little-endian 32-bit words starting
// at addr into dst[start], dst[start+stride], ... — the bulk fast path for
// a unit-stride warp load landing in a lane-major register file (one bounds
// check for the whole span instead of one per lane; a flat copy is
// impossible because the destination words are strided). n must be small
// enough that n*4 does not overflow uint32 (callers pass lane counts).
func (m *Memory) ReadWordsStrided(addr uint32, n int, dst []uint32, start, stride int) bool {
	if n <= 0 || !m.InBounds(addr, uint32(n)*4) {
		return false
	}
	src := m.data[addr : addr+uint32(n)*4]
	for i := 0; i < n; i++ {
		dst[start+i*stride] = binary.LittleEndian.Uint32(src[i*4:])
	}
	return true
}

// WriteWordsStrided stores n little-endian 32-bit words gathered from
// src[start], src[start+stride], ... to consecutive addresses starting at
// addr — the store half of the bulk fast path.
func (m *Memory) WriteWordsStrided(addr uint32, n int, src []uint32, start, stride int) bool {
	if n <= 0 || !m.InBounds(addr, uint32(n)*4) {
		return false
	}
	dst := m.data[addr : addr+uint32(n)*4]
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(dst[i*4:], src[start+i*stride])
	}
	return true
}
