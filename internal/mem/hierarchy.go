package mem

import "fmt"

// DRAMConfig models main memory timing.
type DRAMConfig struct {
	Latency       int // cycles from request to first data
	BytesPerCycle int // sustained transfer bandwidth per channel
	// Channels is the number of independent memory channels; lines are
	// interleaved across channels by address. 0 means 1. Device builders
	// scale this with core count, mirroring how Vortex widens its memory
	// interface with the number of clusters.
	Channels int
}

// PrefetchPolicy selects the L1 prefetcher.
type PrefetchPolicy uint8

const (
	// PrefetchOff disables prefetching — the pre-prefetch model and the
	// differential oracle.
	PrefetchOff PrefetchPolicy = iota
	// PrefetchNextLine issues a tag-only fill of line X+1 into the
	// requesting core's L1 on every demand miss of line X (skipped when
	// the line is already present, when the set's LRU victim is dirty, or
	// when the next line would wrap the address space; see
	// Cache.prefetchFill).
	PrefetchNextLine
)

func (p PrefetchPolicy) String() string {
	switch p {
	case PrefetchOff:
		return "off"
	case PrefetchNextLine:
		return "nextline"
	}
	return fmt.Sprintf("prefetch(%d)", uint8(p))
}

// PrefetchPolicies lists every prefetch policy, in enum order.
func PrefetchPolicies() []PrefetchPolicy {
	return []PrefetchPolicy{PrefetchOff, PrefetchNextLine}
}

// ParsePrefetchPolicy resolves a policy name as printed by
// PrefetchPolicy.String ("off", "nextline").
func ParsePrefetchPolicy(name string) (PrefetchPolicy, error) {
	for _, p := range PrefetchPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("mem: unknown prefetch policy %q (want off or nextline)", name)
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1   CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
	// L2Disabled bypasses the shared L2 (misses go straight to DRAM).
	L2Disabled bool
	// L2Banks is the number of independent L2 banks; consecutive cache
	// lines are striped across banks. 0 picks the default (8). The count
	// is rounded down to a power of two and clamped to the set count, and
	// the set-to-bank striping is arranged so hit/miss behaviour, LRU
	// decisions and aggregate statistics are identical to a monolithic L2
	// of the same total geometry.
	L2Banks int
	// Prefetch selects the L1 prefetcher (default PrefetchOff).
	Prefetch PrefetchPolicy
}

// DefaultHierarchyConfig returns the Vortex-like defaults documented in
// DESIGN.md: 16 KiB 4-way L1 (64 B lines, 2-cycle hits), 128 KiB 8-way
// shared L2 (24-cycle hits), 180-cycle DRAM at 16 B/cycle.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:      CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 2},
		L2:      CacheConfig{SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, HitLatency: 24},
		DRAM:    DRAMConfig{Latency: 180, BytesPerCycle: 16},
		L2Banks: 8,
	}
}

// DRAMStats counts main-memory traffic.
type DRAMStats struct {
	LineReads  uint64
	Writebacks uint64
	BusyCycles uint64
}

// dramChannel is the timing and statistics state of one memory channel.
// Channels are fully independent — the bank-sharded commit engine drives
// distinct channels from concurrent workers — so each channel's state is
// padded onto its own cache line.
type dramChannel struct {
	free  uint64 // next cycle the channel can start a transfer
	stats DRAMStats
	_     [32]byte
}

// Hierarchy is the assembled memory system for one device: per-core private
// L1 front-ends over a banked shared L2 over per-channel DRAM.
//
// The access path is decomposed so a parallel simulation engine can run
// core pipelines concurrently while keeping the shared state deterministic:
//
//   - L1Access touches only the requesting core's private L1 and is safe to
//     call concurrently for distinct cores.
//   - BankAbsorbWriteback/BankFill touch only one L2 bank (BankOf) and are
//     safe to call concurrently for distinct banks, as long as each bank
//     sees its requests in the global (cycle, core) order restricted to
//     that bank.
//   - ChannelRead/ChannelWriteback touch only one DRAM channel (ChannelOf)
//     and are safe to call concurrently for distinct channels under the
//     same restricted-order rule.
//   - SharedAccess composes the bank and channel halves in the global
//     order for single-threaded callers; Access composes everything for
//     fully sequential callers.
type Hierarchy struct {
	cfg       HierarchyConfig
	l1        []*Cache
	banks     []*Cache // L2 banks; lines striped by low line-index bits
	bankBits  uint
	bankMask  uint32
	lineShift uint
	dram      []dramChannel
	// bankMSHR tracks, per L2 bank, the completion cycles of the bank's
	// outstanding DRAM fetches when L2.MSHRs > 0 (nil when unbounded).
	// Bank-owned like the bank caches, so the sharded commit engine keeps
	// its per-bank safety.
	bankMSHR [][]uint64
}

// NewHierarchy builds the hierarchy for cores L1 instances.
func NewHierarchy(cores int, cfg HierarchyConfig) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("mem: cores %d invalid", cores)
	}
	if cfg.L1.LineBytes != cfg.L2.LineBytes {
		return nil, fmt.Errorf("mem: L1/L2 line sizes differ (%d vs %d)", cfg.L1.LineBytes, cfg.L2.LineBytes)
	}
	if cfg.DRAM.Latency < 0 || cfg.DRAM.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("mem: bad DRAM config %+v", cfg.DRAM)
	}
	if cfg.L2Banks < 0 {
		return nil, fmt.Errorf("mem: negative L2 bank count %d", cfg.L2Banks)
	}
	if cfg.DRAM.Channels < 0 {
		return nil, fmt.Errorf("mem: negative DRAM channel count %d", cfg.DRAM.Channels)
	}
	if _, err := ParsePrefetchPolicy(cfg.Prefetch.String()); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cores; i++ {
		c, err := NewCache(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("mem: L1: %w", err)
		}
		h.l1 = append(h.l1, c)
	}
	h.lineShift = h.l1[0].lineShift
	if err := cfg.L2.Validate(); err != nil {
		return nil, fmt.Errorf("mem: L2: %w", err)
	}
	nb := bankCount(cfg)
	bankCfg := cfg.L2
	bankCfg.SizeBytes = cfg.L2.SizeBytes / nb
	for i := 0; i < nb; i++ {
		b, err := NewCache(bankCfg)
		if err != nil {
			return nil, fmt.Errorf("mem: L2 bank: %w", err)
		}
		h.banks = append(h.banks, b)
	}
	for 1<<h.bankBits != nb {
		h.bankBits++
	}
	h.bankMask = uint32(nb - 1)
	if cfg.L2.MSHRs > 0 && !cfg.L2Disabled {
		h.bankMSHR = make([][]uint64, nb)
		for i := range h.bankMSHR {
			h.bankMSHR[i] = make([]uint64, 0, cfg.L2.MSHRs)
		}
	}
	ch := cfg.DRAM.Channels
	if ch < 1 {
		ch = 1
	}
	h.dram = make([]dramChannel, ch)
	return h, nil
}

// bankCount resolves the effective L2 bank count: the configured value (or
// the default 8), rounded down to a power of two and clamped to the set
// count so every bank keeps at least one set.
func bankCount(cfg HierarchyConfig) int {
	nb := cfg.L2Banks
	if nb == 0 {
		nb = 8
	}
	sets := cfg.L2.SizeBytes / (cfg.L2.LineBytes * cfg.L2.Ways)
	if nb > sets {
		nb = sets
	}
	p := 1
	for p*2 <= nb {
		p *= 2
	}
	return p
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineShift returns log2 of the cache line size.
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// L1Stats returns the statistics of core's private L1.
func (h *Hierarchy) L1Stats(core int) CacheStats { return h.l1[core].Stats }

// L2Banks returns the number of independent L2 banks.
func (h *Hierarchy) L2Banks() int { return len(h.banks) }

// L2BankStats returns the statistics of one L2 bank.
func (h *Hierarchy) L2BankStats(bank int) CacheStats { return h.banks[bank].Stats }

// DRAMChannels returns the number of independent memory channels.
func (h *Hierarchy) DRAMChannels() int { return len(h.dram) }

// DRAMChannelStats returns the statistics of one memory channel.
func (h *Hierarchy) DRAMChannelStats(ch int) DRAMStats { return h.dram[ch].stats }

// DRAM returns the main-memory statistics, summed over channels.
func (h *Hierarchy) DRAM() DRAMStats {
	var s DRAMStats
	for i := range h.dram {
		s.LineReads += h.dram[i].stats.LineReads
		s.Writebacks += h.dram[i].stats.Writebacks
		s.BusyCycles += h.dram[i].stats.BusyCycles
	}
	return s
}

// L2Stats returns the shared L2 statistics, summed over banks.
func (h *Hierarchy) L2Stats() CacheStats {
	var s CacheStats
	for _, b := range h.banks {
		s.Accesses += b.Stats.Accesses
		s.Hits += b.Stats.Hits
		s.Misses += b.Stats.Misses
		s.Writebacks += b.Stats.Writebacks
	}
	return s
}

// TotalL1Stats sums L1 statistics over all cores.
func (h *Hierarchy) TotalL1Stats() CacheStats {
	var s CacheStats
	for _, c := range h.l1 {
		s.Accesses += c.Stats.Accesses
		s.Hits += c.Stats.Hits
		s.Misses += c.Stats.Misses
		s.Writebacks += c.Stats.Writebacks
		s.PrefetchIssued += c.Stats.PrefetchIssued
		s.PrefetchHits += c.Stats.PrefetchHits
	}
	return s
}

// AccessResult describes where a line request was satisfied.
type AccessResult struct {
	Done  uint64 // cycle the data is available (or the store retires)
	L1Hit bool
	L2Hit bool
}

// MissInfo carries an L1 miss from a core's private front end to the shared
// levels: the missing line, the cycle the request leaves the L1 (the L1
// latency is already paid), and the dirty victim the fill displaced, if any.
type MissInfo struct {
	Addr   uint32
	Write  bool
	At     uint64
	WB     bool
	WBAddr uint32
}

// L1Access performs the private-L1 part of a line request issued by core at
// cycle now. On a hit the result is final and miss is false. On a miss the
// line is filled into the L1 immediately (tags only; the simulator is
// functional at issue) and the caller must complete the request timing with
// SharedAccess. Distinct cores may call L1Access concurrently.
func (h *Hierarchy) L1Access(core int, addr uint32, write bool, now uint64) (AccessResult, bool, MissInfo) {
	l1 := h.l1[core]
	t := now + uint64(h.cfg.L1.HitLatency)
	if l1.lookup(addr, write) {
		return AccessResult{Done: t, L1Hit: true}, false, MissInfo{}
	}
	wb, victim := l1.fill(addr, write)
	if h.cfg.Prefetch == PrefetchNextLine {
		// Tag-only next-line prefetch: free of timing (the fill models a
		// fetch riding along with the demand line) and core-local, so the
		// parallel engine's concurrent-L1 safety is untouched. Skipped
		// when line+1 would wrap the 32-bit address space.
		if next := (addr &^ uint32(h.cfg.L1.LineBytes-1)) + uint32(h.cfg.L1.LineBytes); next != 0 {
			l1.prefetchFill(next)
		}
	}
	return AccessResult{}, true, MissInfo{Addr: addr, Write: write, At: t, WB: wb, WBAddr: victim}
}

// SharedAccess walks an L1 miss through the banked L2 and per-channel DRAM
// and returns its completion. Calls must be single-threaded and globally
// ordered by (cycle, core) for deterministic LRU, bandwidth and statistics
// state. It is the sequential composition of the bank-local and
// channel-local commit primitives below — a sharded commit engine that
// applies the same primitives in the same order restricted to each
// bank/channel produces byte-identical state.
func (h *Hierarchy) SharedAccess(m MissInfo) AccessResult {
	if m.WB {
		// Dirty L1 victims are absorbed by the L2 (or DRAM if disabled).
		if v, wb := h.BankAbsorbWriteback(m.WBAddr, m.At); wb {
			h.ChannelWriteback(v, m.At)
		}
	}
	res, fetchAt, needDRAM, victim, hasVictim := h.BankFill(m)
	if hasVictim {
		h.ChannelWriteback(victim, fetchAt)
	}
	if needDRAM {
		res.Done = h.ChannelRead(m.Addr, fetchAt)
	}
	return res
}

// BankAbsorbWriteback performs the bank-local half of retiring a dirty L1
// victim: the line is looked up in (or allocated dirty into) its L2 bank
// without stalling the requester. It returns the device address of a dirty
// L2 line the allocation displaced, which the caller must pass to
// ChannelWriteback at the same cycle. With L2Disabled the L1 victim itself
// goes straight to DRAM and no bank state is touched. Calls touch only
// bank BankOf(addr).
func (h *Hierarchy) BankAbsorbWriteback(addr uint32, now uint64) (uint32, bool) {
	if h.cfg.L2Disabled {
		return addr, true
	}
	bank, baddr := h.bankOf(addr)
	b := h.banks[bank]
	if b.lookup(baddr, true) {
		return 0, false
	}
	if wb, victim := b.fill(baddr, true); wb {
		return h.bankVictim(bank, victim), true
	}
	return 0, false
}

// BankFill performs the bank-local half of completing an L1 miss: the L2
// lookup and, on an L2 miss, the tag fill. On an L2 hit res is final. On a
// miss the caller must fetch the line from DRAM at cycle fetchAt
// (ChannelRead gives the completion) after writing back the displaced
// dirty victim, if any (ChannelWriteback at fetchAt). Calls touch only
// bank BankOf(m.Addr); with L2Disabled no bank state is touched and the
// fetch leaves at m.At.
func (h *Hierarchy) BankFill(m MissInfo) (res AccessResult, fetchAt uint64, needDRAM bool, victim uint32, hasVictim bool) {
	if h.cfg.L2Disabled {
		return AccessResult{}, m.At, true, 0, false
	}
	t := m.At + uint64(h.cfg.L2.HitLatency)
	bank, baddr := h.bankOf(m.Addr)
	b := h.banks[bank]
	if b.lookup(baddr, m.Write) {
		return AccessResult{Done: t, L2Hit: true}, 0, false, 0, false
	}
	if wb, v := b.fill(baddr, m.Write); wb {
		victim, hasVictim = h.bankVictim(bank, v), true
	}
	if h.bankMSHR != nil {
		t = h.bankFetchSlot(bank, t)
	}
	return AccessResult{}, t, true, victim, hasVictim
}

// bankFetchSlot applies the bank's MSHR bound to a DRAM fetch that wants to
// leave at cycle at: entries whose lifetime has ended are retired, and while
// every MSHR is busy the fetch (and the victim writeback travelling with it)
// is pushed to the earliest retirement. An entry's lifetime is the bank-local
// unloaded round trip [fetchAt, fetchAt + DRAM latency + transfer) — the
// bank cannot observe real channel contention without breaking the sharded
// commit's bank-ownership invariant, so the bound is deterministic by
// construction (DESIGN.md, "Memory axes"). Touches only bank state.
func (h *Hierarchy) bankFetchSlot(bank int, at uint64) uint64 {
	q := h.bankMSHR[bank][:0]
	for _, d := range h.bankMSHR[bank] {
		if d > at {
			q = append(q, d)
		}
	}
	for len(q) >= h.cfg.L2.MSHRs {
		min := q[0]
		for _, d := range q[1:] {
			if d < min {
				min = d
			}
		}
		at = min
		live := q[:0]
		for _, d := range q {
			if d > at {
				live = append(live, d)
			}
		}
		q = live
	}
	q = append(q, at+uint64(h.cfg.DRAM.Latency)+h.transferCycles())
	h.bankMSHR[bank] = q
	return at
}

// Access performs the full timing walk for one cache-line request issued by
// core at cycle now. addr may be any byte address within the line. Write
// requests allocate like reads (write-allocate) and mark lines dirty.
func (h *Hierarchy) Access(core int, addr uint32, write bool, now uint64) AccessResult {
	res, miss, mi := h.L1Access(core, addr, write, now)
	if !miss {
		return res
	}
	return h.SharedAccess(mi)
}

// bankOf maps an address to its L2 bank and the bank-local address.
// Consecutive lines stripe across banks (the low line-index bits select the
// bank); the remaining line bits index within the bank, so the (bank, set)
// pair partitions lines exactly like the set index of a monolithic L2.
func (h *Hierarchy) bankOf(addr uint32) (int, uint32) {
	line := addr >> h.lineShift
	return int(line & h.bankMask), (line >> h.bankBits) << h.lineShift
}

// bankVictim reconstructs the device address of a bank-local victim line.
func (h *Hierarchy) bankVictim(bank int, baddr uint32) uint32 {
	return ((baddr>>h.lineShift)<<h.bankBits | uint32(bank)) << h.lineShift
}

// BankOf returns the index of the L2 bank that services addr.
func (h *Hierarchy) BankOf(addr uint32) int {
	return int((addr >> h.lineShift) & h.bankMask)
}

// ChannelOf returns the index of the DRAM channel that services addr;
// cache lines are interleaved across channels.
func (h *Hierarchy) ChannelOf(addr uint32) int {
	return int((addr >> h.lineShift) % uint32(len(h.dram)))
}

// ChannelRead models a line fetch on addr's channel: the request waits for
// the channel, occupies it for the transfer, and completes after
// latency + transfer. Calls touch only channel ChannelOf(addr).
func (h *Hierarchy) ChannelRead(addr uint32, now uint64) uint64 {
	c := &h.dram[h.ChannelOf(addr)]
	transfer := h.transferCycles()
	start := now
	if c.free > start {
		start = c.free
	}
	c.free = start + transfer
	c.stats.LineReads++
	c.stats.BusyCycles += transfer
	return start + uint64(h.cfg.DRAM.Latency) + transfer
}

// ChannelWriteback occupies channel bandwidth for an evicted dirty line
// without delaying the requester. Calls touch only channel ChannelOf(addr).
func (h *Hierarchy) ChannelWriteback(addr uint32, now uint64) {
	c := &h.dram[h.ChannelOf(addr)]
	transfer := h.transferCycles()
	start := now
	if c.free > start {
		start = c.free
	}
	c.free = start + transfer
	c.stats.Writebacks++
	c.stats.BusyCycles += transfer
}

func (h *Hierarchy) transferCycles() uint64 {
	n := uint64(h.cfg.L1.LineBytes) / uint64(h.cfg.DRAM.BytesPerCycle)
	if n == 0 {
		n = 1
	}
	return n
}

// Flush invalidates all cache levels (used between independent launches in
// cold-cache experiments; statistics are preserved).
func (h *Hierarchy) Flush() {
	for _, c := range h.l1 {
		c.Flush()
	}
	for _, b := range h.banks {
		b.Flush()
	}
}

// Reset restores the whole memory system to its freshly constructed state:
// every cache level is invalidated with statistics and LRU stamps zeroed,
// and every DRAM channel's bandwidth clock and counters rewound. A pooled
// device that is Reset between runs produces timing byte-identical to a
// newly built hierarchy.
func (h *Hierarchy) Reset() {
	for _, c := range h.l1 {
		c.Reset()
	}
	for _, b := range h.banks {
		b.Reset()
	}
	for i := range h.dram {
		h.dram[i].free = 0
		h.dram[i].stats = DRAMStats{}
	}
	for i := range h.bankMSHR {
		h.bankMSHR[i] = h.bankMSHR[i][:0]
	}
}

// Coalesce merges the active lanes' byte addresses into unique line
// requests, preserving first-touch order. mask selects active lanes; out is
// an optional reusable buffer (no allocation when its capacity suffices).
//
// Dedup runs in O(lanes) for the shapes kernels actually produce: a 64-line
// window anchored near the first active lane's line is tracked in a bitmap,
// which covers any unit-stride or moderately strided warp access (<=64
// lanes touching lines within +/-32 of the anchor). Lines falling outside
// the window — pathologically scattered warps — fall back to a linear scan
// of the emitted lines, which is the old O(n^2) behaviour at worst. A line
// is in or out of the window independently of visit order, so the emitted
// sequence is identical to the naive scan's.
// CoalesceTemplate derives the line list of an address vector that equals a
// previously coalesced vector shifted by one constant delta, without
// re-running Coalesce: leader is the leader's line list (Coalesce output)
// and the result is each entry plus delta, in order, written into out.
//
// The derive-or-fallback contract: ok is true iff delta is line-aligned
// (delta % lineSize == 0). Then addr -> addr+delta maps every address of a
// line to the same shifted line — line(a+d) = line(a)+d mod 2^32, because
// both line(a) and d are multiples of the line size and the sub-line offset
// cannot carry — and the mapping is a bijection on line indices, so the
// shifted list preserves the leader's dedup and first-touch order exactly.
// With a non-aligned delta two leader addresses of one line can straddle a
// mate line boundary; ok is false, out is untouched, and the caller must
// fall back to a direct Coalesce of the mate's addresses. Verified against
// Coalesce by the property/fuzz harness in coalesce_template_test.go.
func CoalesceTemplate(leader []uint32, delta uint32, lineShift uint, out []uint32) ([]uint32, bool) {
	if delta&(1<<lineShift-1) != 0 {
		return out, false
	}
	out = out[:0]
	for _, line := range leader {
		out = append(out, line+delta)
	}
	return out, true
}

func Coalesce(addrs []uint32, mask uint64, lineShift uint, out []uint32) []uint32 {
	out = out[:0]
	var base uint32 // window anchor (line index); valid once haveBase
	var seenWin uint64
	haveBase := false
	for i, a := range addrs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		idx := a >> lineShift
		if !haveBase {
			base, haveBase = idx-32, true
		}
		if d := idx - base; d < 64 { // unsigned: lines below the window wrap past 64
			bit := uint64(1) << d
			if seenWin&bit != 0 {
				continue
			}
			seenWin |= bit
		} else {
			line := idx << lineShift
			seen := false
			for _, o := range out {
				if o == line {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
		}
		out = append(out, idx<<lineShift)
	}
	return out
}
