package mem

import "fmt"

// DRAMConfig models main memory timing.
type DRAMConfig struct {
	Latency       int // cycles from request to first data
	BytesPerCycle int // sustained transfer bandwidth per channel
	// Channels is the number of independent memory channels; lines are
	// interleaved across channels by address. 0 means 1. Device builders
	// scale this with core count, mirroring how Vortex widens its memory
	// interface with the number of clusters.
	Channels int
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1   CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
	// L2Disabled bypasses the shared L2 (misses go straight to DRAM).
	L2Disabled bool
}

// DefaultHierarchyConfig returns the Vortex-like defaults documented in
// DESIGN.md: 16 KiB 4-way L1 (64 B lines, 1-cycle hits), 128 KiB 8-way
// shared L2 (12-cycle hits), 100-cycle DRAM at 16 B/cycle.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:   CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 2},
		L2:   CacheConfig{SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, HitLatency: 24},
		DRAM: DRAMConfig{Latency: 180, BytesPerCycle: 16},
	}
}

// DRAMStats counts main-memory traffic.
type DRAMStats struct {
	LineReads  uint64
	Writebacks uint64
	BusyCycles uint64
}

// Hierarchy is the assembled memory system for one device: per-core private
// L1 caches over a shared L2 over DRAM.
type Hierarchy struct {
	cfg      HierarchyConfig
	l1       []*Cache
	l2       *Cache
	dramFree []uint64 // next free cycle per memory channel
	DRAM     DRAMStats
}

// NewHierarchy builds the hierarchy for cores L1 instances.
func NewHierarchy(cores int, cfg HierarchyConfig) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("mem: cores %d invalid", cores)
	}
	if cfg.L1.LineBytes != cfg.L2.LineBytes {
		return nil, fmt.Errorf("mem: L1/L2 line sizes differ (%d vs %d)", cfg.L1.LineBytes, cfg.L2.LineBytes)
	}
	if cfg.DRAM.Latency < 0 || cfg.DRAM.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("mem: bad DRAM config %+v", cfg.DRAM)
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cores; i++ {
		c, err := NewCache(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("mem: L1: %w", err)
		}
		h.l1 = append(h.l1, c)
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("mem: L2: %w", err)
	}
	h.l2 = l2
	ch := cfg.DRAM.Channels
	if ch < 1 {
		ch = 1
	}
	h.dramFree = make([]uint64, ch)
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineShift returns log2 of the cache line size.
func (h *Hierarchy) LineShift() uint { return h.l1[0].lineShift }

// L1Stats returns the statistics of core's private L1.
func (h *Hierarchy) L1Stats(core int) CacheStats { return h.l1[core].Stats }

// L2Stats returns the shared L2 statistics.
func (h *Hierarchy) L2Stats() CacheStats { return h.l2.Stats }

// TotalL1Stats sums L1 statistics over all cores.
func (h *Hierarchy) TotalL1Stats() CacheStats {
	var s CacheStats
	for _, c := range h.l1 {
		s.Accesses += c.Stats.Accesses
		s.Hits += c.Stats.Hits
		s.Misses += c.Stats.Misses
		s.Writebacks += c.Stats.Writebacks
	}
	return s
}

// AccessResult describes where a line request was satisfied.
type AccessResult struct {
	Done  uint64 // cycle the data is available (or the store retires)
	L1Hit bool
	L2Hit bool
}

// Access performs the timing walk for one cache-line request issued by core
// at cycle now. addr may be any byte address within the line. Write requests
// allocate like reads (write-allocate) and mark lines dirty.
func (h *Hierarchy) Access(core int, addr uint32, write bool, now uint64) AccessResult {
	l1 := h.l1[core]
	t := now + uint64(h.cfg.L1.HitLatency)
	if l1.lookup(addr, write) {
		return AccessResult{Done: t, L1Hit: true}
	}
	// L1 miss: walk down, then fill on the way back.
	if wb, victim := l1.fill(addr, write); wb {
		// Dirty L1 victims are absorbed by the L2 (or DRAM if disabled).
		h.writebackToL2(victim, t)
	}
	if h.cfg.L2Disabled {
		done := h.dramAccess(addr, t)
		return AccessResult{Done: done}
	}
	t += uint64(h.cfg.L2.HitLatency)
	if h.l2.lookup(addr, write) {
		return AccessResult{Done: t, L2Hit: true}
	}
	if wb, victim := h.l2.fill(addr, write); wb {
		h.dramWriteback(victim, t)
	}
	done := h.dramAccess(addr, t)
	return AccessResult{Done: done}
}

// writebackToL2 retires a dirty L1 victim into the L2 without stalling the
// requester; if it misses in L2, the line is allocated there (dirty) and may
// in turn evict to DRAM.
func (h *Hierarchy) writebackToL2(addr uint32, now uint64) {
	if h.cfg.L2Disabled {
		h.dramWriteback(addr, now)
		return
	}
	if h.l2.lookup(addr, true) {
		return
	}
	if wb, victim := h.l2.fill(addr, true); wb {
		h.dramWriteback(victim, now)
	}
}

// channelOf interleaves cache lines across memory channels.
func (h *Hierarchy) channelOf(addr uint32) int {
	return int((addr >> h.LineShift()) % uint32(len(h.dramFree)))
}

// dramAccess models a line fetch: it waits for its channel, occupies it
// for the transfer, and completes after latency + transfer.
func (h *Hierarchy) dramAccess(addr uint32, now uint64) uint64 {
	ch := h.channelOf(addr)
	transfer := h.transferCycles()
	start := now
	if h.dramFree[ch] > start {
		start = h.dramFree[ch]
	}
	h.dramFree[ch] = start + transfer
	h.DRAM.LineReads++
	h.DRAM.BusyCycles += transfer
	return start + uint64(h.cfg.DRAM.Latency) + transfer
}

// dramWriteback occupies channel bandwidth for an evicted dirty line
// without delaying the requester.
func (h *Hierarchy) dramWriteback(addr uint32, now uint64) {
	ch := h.channelOf(addr)
	transfer := h.transferCycles()
	start := now
	if h.dramFree[ch] > start {
		start = h.dramFree[ch]
	}
	h.dramFree[ch] = start + transfer
	h.DRAM.Writebacks++
	h.DRAM.BusyCycles += transfer
}

func (h *Hierarchy) transferCycles() uint64 {
	n := uint64(h.cfg.L1.LineBytes) / uint64(h.cfg.DRAM.BytesPerCycle)
	if n == 0 {
		n = 1
	}
	return n
}

// Flush invalidates all cache levels (used between independent launches in
// cold-cache experiments; statistics are preserved).
func (h *Hierarchy) Flush() {
	for _, c := range h.l1 {
		c.Flush()
	}
	h.l2.Flush()
}

// Coalesce merges the active lanes' byte addresses into unique line
// requests, preserving first-touch order. mask selects active lanes; out is
// an optional reusable buffer.
func Coalesce(addrs []uint32, mask uint64, lineShift uint, out []uint32) []uint32 {
	out = out[:0]
	for i, a := range addrs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		line := a >> lineShift << lineShift
		seen := false
		for _, o := range out {
			if o == line {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, line)
		}
	}
	return out
}
