package mem

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// templateMatchesCoalesce is the CoalesceTemplate correctness property: for
// any leader address vector, active-lane mask, line shift and per-warp
// delta, the template-derived line list of the shifted (mate) vector must
// equal what a direct Coalesce of the mate's addresses produces — or the
// derivation must refuse (ok=false), which it may do only for a
// non-line-aligned delta. Returns a diagnostic string ("" = holds).
func templateMatchesCoalesce(addrs []uint32, mask uint64, lineShift uint, delta uint32) string {
	leader := Coalesce(addrs, mask, lineShift, nil)
	mate := make([]uint32, len(addrs))
	for i, a := range addrs {
		mate[i] = a + delta
	}
	want := Coalesce(mate, mask, lineShift, nil)
	got, ok := CoalesceTemplate(leader, delta, lineShift, nil)
	if !ok {
		if delta&(1<<lineShift-1) == 0 {
			return "refused a line-aligned delta"
		}
		return "" // fallback contract: caller re-coalesces directly
	}
	if delta&(1<<lineShift-1) != 0 {
		return "accepted a non-line-aligned delta"
	}
	if !slices.Equal(got, want) {
		return "derived line list differs from direct Coalesce"
	}
	return ""
}

// TestCoalesceTemplateDirected pins the shapes the simulator actually
// produces plus the adversarial ones: unit stride, constant stride,
// scattered vectors outside the coalescer's 64-line dedup window, lines
// straddling the window anchor, partial masks, duplicate addresses, and
// the non-aligned-delta fallback.
func TestCoalesceTemplateDirected(t *testing.T) {
	const shift = 6 // 64B lines
	unit := make([]uint32, 32)
	strided := make([]uint32, 32)
	scattered := make([]uint32, 32)
	straddle := make([]uint32, 32)
	same := make([]uint32, 32)
	for i := range unit {
		unit[i] = 0x8000 + uint32(i)*4
		strided[i] = 0x8000 + uint32(i)*128
		scattered[i] = uint32(i*i)*0x5137 + 64 // far outside any 64-line window
		straddle[i] = 0x8000 + uint32(i)*64*33 // 33-line stride: straddles the window edge
		same[i] = 0x8000
	}
	cases := []struct {
		name  string
		addrs []uint32
		mask  uint64
		delta uint32
	}{
		{"unit/aligned", unit, ^uint64(0) >> 32, 1 << shift},
		{"unit/large-delta", unit, ^uint64(0) >> 32, 1 << 20},
		{"unit/partial-mask", unit, 0x0f0f0f0f, 4 << shift},
		{"strided/aligned", strided, ^uint64(0) >> 32, 2 << shift},
		{"scattered/aligned", scattered, ^uint64(0) >> 32, 1 << shift},
		{"straddle/aligned", straddle, ^uint64(0) >> 32, 1 << shift},
		{"same-line/aligned", same, ^uint64(0) >> 32, 1 << shift},
		{"unit/zero-delta", unit, ^uint64(0) >> 32, 0},
		{"unit/wrap", unit, ^uint64(0) >> 32, 0xFFFFFFC0}, // mod-2^32 wrap, line-aligned
		{"unit/unaligned-delta", unit, ^uint64(0) >> 32, 4},
		{"scattered/unaligned-delta", scattered, ^uint64(0) >> 32, 7},
	}
	for _, tc := range cases {
		if diag := templateMatchesCoalesce(tc.addrs, tc.mask, shift, tc.delta); diag != "" {
			t.Errorf("%s: %s", tc.name, diag)
		}
	}
}

// TestCoalesceTemplateProperty drives the property through testing/quick
// over randomized vectors: a mix of affine (base+lane*stride), duplicated
// and fully scattered addresses, random masks, line sizes from 4B to 4KiB,
// and deltas drawn both line-aligned and arbitrary.
func TestCoalesceTemplateProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lineShift := uint(2 + rng.Intn(11)) // 4B .. 4KiB lines
		n := 1 + rng.Intn(64)
		addrs := make([]uint32, n)
		switch rng.Intn(3) {
		case 0: // affine
			base, stride := rng.Uint32(), rng.Uint32()%512
			for i := range addrs {
				addrs[i] = base + uint32(i)*stride
			}
		case 1: // scattered
			for i := range addrs {
				addrs[i] = rng.Uint32()
			}
		default: // heavy duplication
			for i := range addrs {
				addrs[i] = uint32(rng.Intn(4)) * 64
			}
		}
		mask := rng.Uint64() & (1<<uint(n) - 1)
		delta := rng.Uint32()
		if rng.Intn(2) == 0 {
			delta = delta >> lineShift << lineShift // force line-aligned half the time
		}
		return templateMatchesCoalesce(addrs, mask, lineShift, delta) == ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCoalesceTemplate feeds arbitrary bytes as an address vector, mask,
// shift and delta: CoalesceTemplate must never panic, must refuse exactly
// the non-line-aligned deltas, and when it derives, the result must match
// a direct Coalesce of the shifted vector.
func FuzzCoalesceTemplate(f *testing.F) {
	f.Add(uint32(0x8000), uint32(4), uint64(0xffffffff), uint8(6), uint32(64), uint8(16))
	f.Add(uint32(0), uint32(0), uint64(1), uint8(2), uint32(7), uint8(1))
	f.Add(uint32(0xFFFFFF00), uint32(64), ^uint64(0), uint8(12), uint32(0xFFFFF000), uint8(64))
	f.Fuzz(func(t *testing.T, base, stride uint32, mask uint64, shiftRaw uint8, delta uint32, nRaw uint8) {
		lineShift := uint(2 + shiftRaw%11)
		n := 1 + int(nRaw%64)
		addrs := make([]uint32, n)
		for i := range addrs {
			addrs[i] = base + uint32(i)*stride
		}
		if diag := templateMatchesCoalesce(addrs, mask, lineShift, delta); diag != "" {
			t.Fatalf("shift=%d n=%d delta=%#x: %s", lineShift, n, delta, diag)
		}
	})
}
