package isa

import "fmt"

// Encode packs a decoded instruction into its 32-bit machine word.
// It validates register indices and immediate ranges, returning an error for
// values that do not fit the op's format.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpInvalid || in.Op >= opCount {
		return 0, fmt.Errorf("isa: encode: invalid op %d", in.Op)
	}
	if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 || in.Rs3 > 31 {
		return 0, fmt.Errorf("isa: encode %s: register index out of range", in.Op)
	}
	s := specs[in.Op]
	w := s.opcode
	switch s.fmt {
	case FmtR:
		rs2 := uint32(in.Rs2)
		switch in.Op {
		case FCVTWUS, FCVTSWU:
			rs2 = 1 // unsigned-conversion selector lives in the rs2 field
		case FCVTWS, FCVTSW, FSQRTS, FMVXW, FMVWX, FCLASSS:
			rs2 = 0
		}
		w |= uint32(in.Rd) << 7
		w |= s.funct3 << 12
		w |= uint32(in.Rs1) << 15
		w |= rs2 << 20
		w |= s.funct7 << 25
	case FmtR4:
		w |= uint32(in.Rd) << 7
		w |= s.funct3 << 12
		w |= uint32(in.Rs1) << 15
		w |= uint32(in.Rs2) << 20
		w |= uint32(in.Rs3) << 27
	case FmtI:
		imm := in.Imm
		switch in.Op {
		case SLLI, SRLI, SRAI:
			if imm < 0 || imm > 31 {
				return 0, fmt.Errorf("isa: encode %s: shift amount %d out of range", in.Op, imm)
			}
			imm |= int32(s.funct7) << 5
		case ECALL, EBREAK:
			imm = int32(s.funct7)
		case CSRRW, CSRRS, CSRRC, CSRRWI, CSRRSI, CSRRCI:
			if in.CSR > 0xFFF {
				return 0, fmt.Errorf("isa: encode %s: csr %#x out of range", in.Op, in.CSR)
			}
			// For immediate CSR forms rs1 carries the 5-bit zimm.
			imm = int32(in.CSR)
		default:
			if imm < -2048 || imm > 2047 {
				return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", in.Op, imm)
			}
		}
		w |= uint32(in.Rd) << 7
		w |= s.funct3 << 12
		w |= uint32(in.Rs1) << 15
		w |= uint32(imm&0xFFF) << 20
	case FmtS:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		w |= (imm & 0x1F) << 7
		w |= s.funct3 << 12
		w |= uint32(in.Rs1) << 15
		w |= uint32(in.Rs2) << 20
		w |= (imm >> 5 & 0x7F) << 25
	case FmtB:
		if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d invalid", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		w |= (imm >> 11 & 1) << 7
		w |= (imm >> 1 & 0xF) << 8
		w |= s.funct3 << 12
		w |= uint32(in.Rs1) << 15
		w |= uint32(in.Rs2) << 20
		w |= (imm >> 5 & 0x3F) << 25
		w |= (imm >> 12 & 1) << 31
	case FmtU:
		if in.Imm&0xFFF != 0 {
			return 0, fmt.Errorf("isa: encode %s: immediate %#x has low bits set", in.Op, in.Imm)
		}
		w |= uint32(in.Rd) << 7
		w |= uint32(in.Imm) & 0xFFFFF000
	case FmtJ:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d invalid", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		w |= uint32(in.Rd) << 7
		w |= (imm >> 12 & 0xFF) << 12
		w |= (imm >> 11 & 1) << 20
		w |= (imm >> 1 & 0x3FF) << 21
		w |= (imm >> 20 & 1) << 31
	}
	return w, nil
}

// Decode unpacks a 32-bit machine word into a decoded instruction.
func Decode(w uint32) (Inst, error) {
	opcode := w & 0x7F
	rd := uint8(w >> 7 & 0x1F)
	funct3 := w >> 12 & 0x7
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	funct7 := w >> 25 & 0x7F

	immI := int32(w) >> 20
	immS := int32(w)>>25<<5 | int32(rd)
	// Sign-extended branch immediate: imm[12|10:5|4:1|11].
	immB := int32(w)>>31<<12 |
		int32(w>>7&1)<<11 |
		int32(w>>25&0x3F)<<5 |
		int32(w>>8&0xF)<<1
	immU := int32(w & 0xFFFFF000)
	immJ := int32(w)>>31<<20 |
		int32(w>>12&0xFF)<<12 |
		int32(w>>20&1)<<11 |
		int32(w>>21&0x3FF)<<1

	bad := func() (Inst, error) {
		return Inst{}, fmt.Errorf("isa: decode: unsupported instruction %#08x", w)
	}
	r := func(op Op) (Inst, error) {
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	}
	i := func(op Op) (Inst, error) {
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
	}

	switch opcode {
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: immU}, nil
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: immU}, nil
	case opcJAL:
		return Inst{Op: JAL, Rd: rd, Imm: immJ}, nil
	case opcJALR:
		if funct3 != 0 {
			return bad()
		}
		return i(JALR)
	case opcBRANCH:
		var op Op
		switch funct3 {
		case 0:
			op = BEQ
		case 1:
			op = BNE
		case 4:
			op = BLT
		case 5:
			op = BGE
		case 6:
			op = BLTU
		case 7:
			op = BGEU
		default:
			return bad()
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB}, nil
	case opcLOAD:
		var op Op
		switch funct3 {
		case 0:
			op = LB
		case 1:
			op = LH
		case 2:
			op = LW
		case 4:
			op = LBU
		case 5:
			op = LHU
		default:
			return bad()
		}
		return i(op)
	case opcLOADFP:
		if funct3 != 2 {
			return bad()
		}
		return i(FLW)
	case opcSTORE:
		var op Op
		switch funct3 {
		case 0:
			op = SB
		case 1:
			op = SH
		case 2:
			op = SW
		default:
			return bad()
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
	case opcSTOREFP:
		if funct3 != 2 {
			return bad()
		}
		return Inst{Op: FSW, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
	case opcOPIMM:
		switch funct3 {
		case 0:
			return i(ADDI)
		case 2:
			return i(SLTI)
		case 3:
			return i(SLTIU)
		case 4:
			return i(XORI)
		case 6:
			return i(ORI)
		case 7:
			return i(ANDI)
		case 1:
			if funct7 != 0 {
				return bad()
			}
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			switch funct7 {
			case 0x00:
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return bad()
		}
		return bad()
	case opcOP:
		type key struct{ f3, f7 uint32 }
		m := map[key]Op{
			{0, 0x00}: ADD, {0, 0x20}: SUB, {1, 0x00}: SLL, {2, 0x00}: SLT,
			{3, 0x00}: SLTU, {4, 0x00}: XOR, {5, 0x00}: SRL, {5, 0x20}: SRA,
			{6, 0x00}: OR, {7, 0x00}: AND,
			{0, 0x01}: MUL, {1, 0x01}: MULH, {2, 0x01}: MULHSU, {3, 0x01}: MULHU,
			{4, 0x01}: DIV, {5, 0x01}: DIVU, {6, 0x01}: REM, {7, 0x01}: REMU,
		}
		op, ok := m[key{funct3, funct7}]
		if !ok {
			return bad()
		}
		return r(op)
	case opcMISCMEM:
		if funct3 != 0 {
			return bad()
		}
		return Inst{Op: FENCE}, nil
	case opcSYSTEM:
		switch funct3 {
		case 0:
			switch w >> 20 {
			case 0:
				return Inst{Op: ECALL}, nil
			case 1:
				return Inst{Op: EBREAK}, nil
			}
			return bad()
		case 1, 2, 3, 5, 6, 7:
			ops := map[uint32]Op{1: CSRRW, 2: CSRRS, 3: CSRRC, 5: CSRRWI, 6: CSRRSI, 7: CSRRCI}
			return Inst{Op: ops[funct3], Rd: rd, Rs1: rs1, CSR: uint16(w >> 20), Imm: int32(w >> 20)}, nil
		}
		return bad()
	case opcOPFP:
		type key struct{ f3, f7 uint32 }
		// fsqrt/fcvt/fmv/fclass use rs2 as a sub-opcode selector; funct3 is
		// the rounding mode for arithmetic ops (we model RNE only, f3=0).
		switch funct7 {
		case 0x00, 0x04, 0x08, 0x0C:
			op := map[uint32]Op{0x00: FADDS, 0x04: FSUBS, 0x08: FMULS, 0x0C: FDIVS}[funct7]
			return r(op)
		case 0x2C:
			return Inst{Op: FSQRTS, Rd: rd, Rs1: rs1}, nil
		case 0x10:
			m := map[uint32]Op{0: FSGNJS, 1: FSGNJNS, 2: FSGNJXS}
			op, ok := m[funct3]
			if !ok {
				return bad()
			}
			return r(op)
		case 0x14:
			m := map[uint32]Op{0: FMINS, 1: FMAXS}
			op, ok := m[funct3]
			if !ok {
				return bad()
			}
			return r(op)
		case 0x60:
			switch rs2 {
			case 0:
				return Inst{Op: FCVTWS, Rd: rd, Rs1: rs1}, nil
			case 1:
				return Inst{Op: FCVTWUS, Rd: rd, Rs1: rs1}, nil
			}
			return bad()
		case 0x68:
			switch rs2 {
			case 0:
				return Inst{Op: FCVTSW, Rd: rd, Rs1: rs1}, nil
			case 1:
				return Inst{Op: FCVTSWU, Rd: rd, Rs1: rs1}, nil
			}
			return bad()
		case 0x70:
			switch funct3 {
			case 0:
				return Inst{Op: FMVXW, Rd: rd, Rs1: rs1}, nil
			case 1:
				return Inst{Op: FCLASSS, Rd: rd, Rs1: rs1}, nil
			}
			return bad()
		case 0x78:
			return Inst{Op: FMVWX, Rd: rd, Rs1: rs1}, nil
		case 0x50:
			m := map[uint32]Op{2: FEQS, 1: FLTS, 0: FLES}
			op, ok := m[funct3]
			if !ok {
				return bad()
			}
			return r(op)
		}
		_ = key{}
		return bad()
	case opcFMADD, opcFMSUB, opcFNMSUB, opcFNMADD:
		op := map[uint32]Op{opcFMADD: FMADDS, opcFMSUB: FMSUBS, opcFNMSUB: FNMSUBS, opcFNMADD: FNMADDS}[opcode]
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: uint8(w >> 27 & 0x1F)}, nil
	case opcCUSTOM0:
		if funct3 != 0 {
			return bad()
		}
		m := map[uint32]Op{
			0x00: VXTMC, 0x01: VXWSPAWN, 0x02: VXSPLIT, 0x03: VXJOIN,
			0x04: VXBAR, 0x05: VXPRED, 0x06: VXBALLOT,
		}
		op, ok := m[funct7]
		if !ok {
			return bad()
		}
		return r(op)
	}
	return bad()
}

// MustEncode is Encode for known-good instructions; it panics on error and
// is intended for code generators and tests.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
