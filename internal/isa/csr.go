package isa

// Vortex-style control and status registers. The thread/warp/core identity
// CSRs follow the Vortex machine-mode layout; TMASK and the machine counters
// are read-only views the simulator maintains.
const (
	// CSRThreadID is the lane index of the reading thread within its warp.
	CSRThreadID uint16 = 0xCC0
	// CSRWarpID is the warp index of the reading thread within its core.
	CSRWarpID uint16 = 0xCC1
	// CSRCoreID is the core index of the reading thread.
	CSRCoreID uint16 = 0xCC2
	// CSRTMask is the current thread mask of the reading warp.
	CSRTMask uint16 = 0xCC3
	// CSRNumThreads is the number of hardware threads per warp.
	CSRNumThreads uint16 = 0xFC0
	// CSRNumWarps is the number of hardware warps per core.
	CSRNumWarps uint16 = 0xFC1
	// CSRNumCores is the number of cores in the device.
	CSRNumCores uint16 = 0xFC2
	// CSRCycle is the low word of the core cycle counter.
	CSRCycle uint16 = 0xC00
	// CSRCycleH is the high word of the core cycle counter.
	CSRCycleH uint16 = 0xC80
	// CSRInstRet is the low word of the retired-instruction counter.
	CSRInstRet uint16 = 0xC02
	// CSRInstRetH is the high word of the retired-instruction counter.
	CSRInstRetH uint16 = 0xC82
)

// CSRName returns a human-readable name for known CSRs, or "" if unknown.
func CSRName(csr uint16) string {
	switch csr {
	case CSRThreadID:
		return "tid"
	case CSRWarpID:
		return "wid"
	case CSRCoreID:
		return "cid"
	case CSRTMask:
		return "tmask"
	case CSRNumThreads:
		return "nt"
	case CSRNumWarps:
		return "nw"
	case CSRNumCores:
		return "nc"
	case CSRCycle:
		return "cycle"
	case CSRCycleH:
		return "cycleh"
	case CSRInstRet:
		return "instret"
	case CSRInstRetH:
		return "instreth"
	}
	return ""
}

// CSRByName resolves an assembler CSR name to its address.
func CSRByName(name string) (uint16, bool) {
	switch name {
	case "tid":
		return CSRThreadID, true
	case "wid":
		return CSRWarpID, true
	case "cid":
		return CSRCoreID, true
	case "tmask":
		return CSRTMask, true
	case "nt":
		return CSRNumThreads, true
	case "nw":
		return CSRNumWarps, true
	case "nc":
		return CSRNumCores, true
	case "cycle":
		return CSRCycle, true
	case "cycleh":
		return CSRCycleH, true
	case "instret":
		return CSRInstRet, true
	case "instreth":
		return CSRInstRetH, true
	}
	return 0, false
}
