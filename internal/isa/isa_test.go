package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randInst builds a random but encodable instruction for op.
func randInst(r *rand.Rand, op Op) Inst {
	in := Inst{Op: op}
	in.Rd = uint8(r.Intn(32))
	in.Rs1 = uint8(r.Intn(32))
	in.Rs2 = uint8(r.Intn(32))
	switch specs[op].fmt {
	case FmtR4:
		in.Rs3 = uint8(r.Intn(32))
	case FmtI:
		switch op {
		case SLLI, SRLI, SRAI:
			in.Imm = int32(r.Intn(32))
		case ECALL, EBREAK, FENCE:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		case CSRRW, CSRRS, CSRRC, CSRRWI, CSRRSI, CSRRCI:
			in.CSR = uint16(r.Intn(0x1000))
			in.Imm = int32(in.CSR)
		default:
			in.Imm = int32(r.Intn(4096)) - 2048
		}
	case FmtS:
		in.Imm = int32(r.Intn(4096)) - 2048
	case FmtB:
		in.Imm = (int32(r.Intn(4096)) - 2048) * 2
	case FmtU:
		in.Imm = int32(r.Intn(1<<20)) << 12
	case FmtJ:
		in.Imm = (int32(r.Intn(1<<19)) - 1<<18) * 2
	}
	// Normalize fields the encoding does not carry.
	normalize(&in)
	return in
}

// normalize zeroes fields that a given format does not encode, so that
// encode/decode round-trips compare equal.
func normalize(in *Inst) {
	switch specs[in.Op].fmt {
	case FmtU, FmtJ:
		in.Rs1, in.Rs2, in.Rs3 = 0, 0, 0
	case FmtI:
		in.Rs2, in.Rs3 = 0, 0
		if in.Op == ECALL || in.Op == EBREAK || in.Op == FENCE {
			in.Rd, in.Rs1, in.Imm = 0, 0, 0
		}
	case FmtS, FmtB:
		in.Rd, in.Rs3 = 0, 0
	case FmtR:
		in.Rs3 = 0
		switch in.Op {
		case FSQRTS, FCVTWS, FCVTWUS, FCVTSW, FCVTSWU, FMVXW, FMVWX, FCLASSS:
			in.Rs2 = 0
		case VXTMC, VXSPLIT, VXPRED:
			in.Rd, in.Rs2 = 0, 0
		case VXJOIN:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		case VXWSPAWN, VXBAR:
			in.Rd = 0
		case VXBALLOT:
			in.Rs2 = 0
		}
	}
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, op := range Ops() {
		for trial := 0; trial < 64; trial++ {
			in := randInst(r, op)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("%s: encode %+v: %v", op, in, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("%s: decode %#08x: %v", op, w, err)
			}
			normalize(&got)
			if got != in {
				t.Fatalf("%s: round trip mismatch:\n in=%+v\nout=%+v (word %#08x)", op, in, got, w)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0x00000000,       // all zeros: opcode 0 is not defined
		0xFFFFFFFF,       // all ones
		0x0000705B,       // custom-0 with funct3 != 0
		0x0000203B,       // RV64 OP-32 opcode
		0x38000053,       // OP-FP with unknown funct7
		0x00002073 ^ 0x0, // valid csrrs; sanity-check below uses it
	}
	for _, w := range bad[:5] {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded, want error", w)
		}
	}
	if _, err := Decode(bad[5]); err != nil {
		t.Errorf("Decode(valid csrrs) failed: %v", err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: 5000},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: -3000},
		{Op: SW, Rs1: 1, Rs2: 2, Imm: 2048},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 3},    // odd branch offset
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 8192}, // out of range
		{Op: JAL, Rd: 1, Imm: 1 << 21},       // out of range
		{Op: LUI, Rd: 1, Imm: 0x123},         // low bits set
		{Op: SLLI, Rd: 1, Rs1: 1, Imm: 32},   // shift too large
		{Op: SLLI, Rd: 1, Rs1: 1, Imm: -1},   // negative shift
		{Op: OpInvalid},                      // invalid op
		{Op: ADD, Rd: 32, Rs1: 1, Rs2: 2},    // bad register
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestBranchImmediateSignExtension(t *testing.T) {
	in := Inst{Op: BNE, Rs1: 5, Rs2: 6, Imm: -4}
	w := MustEncode(in)
	got, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != -4 {
		t.Fatalf("branch imm = %d, want -4", got.Imm)
	}
	in = Inst{Op: JAL, Rd: 0, Imm: -1024}
	got, err = Decode(MustEncode(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != -1024 {
		t.Fatalf("jal imm = %d, want -1024", got.Imm)
	}
}

func TestQuickEncodeNeverPanicsOnDecodeOutput(t *testing.T) {
	// Property: any word that decodes successfully must re-encode to the
	// same word (decode is a right inverse of encode).
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		// funct3 rounding-mode bits of FP arithmetic and unused bits of
		// fence/ecall may differ; compare by re-decoding.
		in2, err := Decode(w2)
		if err != nil {
			return false
		}
		normalize(&in)
		normalize(&in2)
		return in == in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestOpClassPredicates(t *testing.T) {
	checks := []struct {
		in                                Inst
		load, store, branch, wInt, wFloat bool
	}{
		{Inst{Op: LW}, true, false, false, true, false},
		{Inst{Op: FLW}, true, false, false, false, true},
		{Inst{Op: SW}, false, true, false, false, false},
		{Inst{Op: FSW}, false, true, false, false, false},
		{Inst{Op: BEQ}, false, false, true, false, false},
		{Inst{Op: ADD}, false, false, false, true, false},
		{Inst{Op: FMADDS}, false, false, false, false, true},
		{Inst{Op: FEQS}, false, false, false, true, false},
		{Inst{Op: VXBALLOT}, false, false, false, true, false},
		{Inst{Op: VXTMC}, false, false, false, false, false},
		{Inst{Op: JAL}, false, false, false, true, false},
	}
	for _, c := range checks {
		if c.in.IsLoad() != c.load {
			t.Errorf("%s IsLoad = %v", c.in.Op, c.in.IsLoad())
		}
		if c.in.IsStore() != c.store {
			t.Errorf("%s IsStore = %v", c.in.Op, c.in.IsStore())
		}
		if c.in.IsBranch() != c.branch {
			t.Errorf("%s IsBranch = %v", c.in.Op, c.in.IsBranch())
		}
		if c.in.WritesInt() != c.wInt {
			t.Errorf("%s WritesInt = %v", c.in.Op, c.in.WritesInt())
		}
		if c.in.WritesFloat() != c.wFloat {
			t.Errorf("%s WritesFloat = %v", c.in.Op, c.in.WritesFloat())
		}
	}
}

func TestRegisterSourcePredicates(t *testing.T) {
	if !(Inst{Op: FSW}).ReadsIntRs1() {
		t.Error("fsw must read rs1 from the integer file (address base)")
	}
	if !(Inst{Op: FSW}).ReadsFloatRs2() {
		t.Error("fsw must read rs2 from the float file (store data)")
	}
	if (Inst{Op: FADDS}).ReadsIntRs1() {
		t.Error("fadd.s must not read integer rs1")
	}
	if !(Inst{Op: FCVTSW}).ReadsIntRs1() {
		t.Error("fcvt.s.w reads integer rs1")
	}
	if (Inst{Op: FCVTSW}).ReadsFloatRs1() {
		t.Error("fcvt.s.w does not read float rs1")
	}
	if !(Inst{Op: FMADDS}).ReadsFloatRs3() {
		t.Error("fmadd.s reads rs3")
	}
	if (Inst{Op: ADD}).ReadsFloatRs3() {
		t.Error("add does not read rs3")
	}
	if !(Inst{Op: VXWSPAWN}).ReadsIntRs2() {
		t.Error("vx_wspawn reads rs2 (entry pc)")
	}
}

func TestDisasmStableStrings(t *testing.T) {
	cases := []struct {
		in   Inst
		pc   uint32
		want string
	}{
		{Inst{Op: ADDI, Rd: 10, Rs1: 0, Imm: 42}, 0, "addi a0, zero, 42"},
		{Inst{Op: LW, Rd: 5, Rs1: 10, Imm: -8}, 0, "lw t0, -8(a0)"},
		{Inst{Op: SW, Rs1: 2, Rs2: 8, Imm: 16}, 0, "sw s0, 16(sp)"},
		{Inst{Op: BNE, Rs1: 5, Rs2: 0, Imm: -8}, 0x100, "bne t0, zero, 0xf8"},
		{Inst{Op: JAL, Rd: 1, Imm: 0x20}, 0x1000, "jal ra, 0x1020"},
		{Inst{Op: FMADDS, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4}, 0, "fmadd.s f1, f2, f3, f4"},
		{Inst{Op: CSRRS, Rd: 10, Rs1: 0, CSR: CSRThreadID}, 0, "csrrs a0, tid, zero"},
		{Inst{Op: VXTMC, Rs1: 5}, 0, "vx_tmc t0"},
		{Inst{Op: VXBAR, Rs1: 5, Rs2: 6}, 0, "vx_bar t0, t1"},
		{Inst{Op: VXJOIN}, 0, "vx_join"},
		{Inst{Op: VXBALLOT, Rd: 6, Rs1: 7}, 0, "vx_ballot t1, t2"},
	}
	for _, c := range cases {
		if got := Disasm(c.in, c.pc); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisasmCoversAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, op := range Ops() {
		in := randInst(r, op)
		s := Disasm(in, 0x1000)
		if s == "" || strings.HasPrefix(s, "unknown") {
			t.Errorf("Disasm has no rendering for %s", op)
		}
	}
}

func TestRegisterNameRoundTrip(t *testing.T) {
	for r := uint8(0); r < 32; r++ {
		got, ok := IntRegByName(IntRegName(r))
		if !ok || got != r {
			t.Errorf("IntRegByName(IntRegName(%d)) = %d, %v", r, got, ok)
		}
	}
	for r := uint8(0); r < 32; r++ {
		got, ok := FloatRegByName(FloatRegName(r))
		if !ok || got != r {
			t.Errorf("FloatRegByName(FloatRegName(%d)) = %d, %v", r, got, ok)
		}
	}
	for name, want := range floatABINames {
		got, ok := FloatRegByName(name)
		if !ok || got != want {
			t.Errorf("FloatRegByName(%q) = %d, %v; want %d", name, got, ok, want)
		}
	}
	if _, ok := IntRegByName("x99"); ok {
		t.Error("IntRegByName(x99) should fail")
	}
	if _, ok := FloatRegByName("f42"); ok {
		t.Error("FloatRegByName(f42) should fail")
	}
}

func TestCSRNameRoundTrip(t *testing.T) {
	for _, csr := range []uint16{
		CSRThreadID, CSRWarpID, CSRCoreID, CSRTMask,
		CSRNumThreads, CSRNumWarps, CSRNumCores,
		CSRCycle, CSRCycleH, CSRInstRet, CSRInstRetH,
	} {
		name := CSRName(csr)
		if name == "" {
			t.Errorf("CSRName(%#x) empty", csr)
			continue
		}
		got, ok := CSRByName(name)
		if !ok || got != csr {
			t.Errorf("CSRByName(%q) = %#x, %v; want %#x", name, got, ok, csr)
		}
	}
	if CSRName(0x123) != "" {
		t.Error("unknown CSR should have empty name")
	}
	if _, ok := CSRByName("nope"); ok {
		t.Error("CSRByName(nope) should fail")
	}
}
