// Package isa defines the instruction set simulated by this project: the
// RV32I base integer ISA, the M (integer multiply/divide) and F
// (single-precision floating point) extensions, and the Vortex SIMT
// extension occupying the custom-0 opcode space (thread-mask control, warp
// spawn, divergence split/join, barriers, and a ballot/vote reduction).
//
// Instructions are represented two ways: as a 32-bit machine word using the
// standard RISC-V R/I/S/B/U/J/R4 formats, and as a decoded Inst value that
// the simulator executes directly. Encode and Decode round-trip exactly for
// every instruction the package defines.
package isa

import "fmt"

// Op identifies an instruction mnemonic.
type Op uint8

// Base RV32I, M, F and Vortex custom operations.
const (
	// OpInvalid is the zero Op; decoding a malformed word yields it.
	OpInvalid Op = iota

	// RV32I
	LUI
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	FENCE
	ECALL
	EBREAK
	CSRRW
	CSRRS
	CSRRC
	CSRRWI
	CSRRSI
	CSRRCI

	// RV32M
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	// RV32F
	FLW
	FSW
	FADDS
	FSUBS
	FMULS
	FDIVS
	FSQRTS
	FSGNJS
	FSGNJNS
	FSGNJXS
	FMINS
	FMAXS
	FCVTWS
	FCVTWUS
	FCVTSW
	FCVTSWU
	FMVXW
	FMVWX
	FEQS
	FLTS
	FLES
	FCLASSS
	FMADDS
	FMSUBS
	FNMSUBS
	FNMADDS

	// Vortex SIMT extension (custom-0 opcode space).

	// VXTMC sets the warp's thread mask to the low Threads bits of rs1
	// (read from lane 0). A zero mask halts the warp.
	VXTMC
	// VXWSPAWN activates rs1 (lane 0) warps on the current core, each
	// starting at the address in rs2 with only thread 0 enabled.
	VXWSPAWN
	// VXSPLIT pushes IPDOM state for per-thread predicate rs1: the warp
	// continues with the rs1!=0 lanes; the complementary lanes are
	// re-activated at the next VXJOIN.
	VXSPLIT
	// VXJOIN pops one IPDOM entry (switching to the else-path lanes or
	// restoring the pre-split mask).
	VXJOIN
	// VXBAR blocks the warp on barrier id rs1 (lane 0) until rs2 (lane 0)
	// warps of the core have arrived.
	VXBAR
	// VXPRED ands the thread mask with the per-thread predicate rs1; if
	// the result would be zero the mask is left unchanged.
	VXPRED
	// VXBALLOT writes, to every active lane's rd, the number of active
	// lanes whose rs1 is non-zero. It is the uniform reduction used to
	// exit divergent loops (a vote.any/popcount in Vortex 2.x terms).
	VXBALLOT

	opCount
)

// Format enumerates RISC-V instruction encodings.
type Format uint8

const (
	FmtR Format = iota
	FmtR4
	FmtI
	FmtS
	FmtB
	FmtU
	FmtJ
)

// Major opcode values (bits [6:0] of the instruction word).
const (
	opcLOAD    = 0x03
	opcLOADFP  = 0x07
	opcCUSTOM0 = 0x0B
	opcMISCMEM = 0x0F
	opcOPIMM   = 0x13
	opcAUIPC   = 0x17
	opcSTORE   = 0x23
	opcSTOREFP = 0x27
	opcOP      = 0x33
	opcLUI     = 0x37
	opcFMADD   = 0x43
	opcFMSUB   = 0x47
	opcFNMSUB  = 0x4B
	opcFNMADD  = 0x4F
	opcOPFP    = 0x53
	opcBRANCH  = 0x63
	opcJALR    = 0x67
	opcJAL     = 0x6F
	opcSYSTEM  = 0x73
)

// spec describes how one Op maps onto instruction-word fields.
type spec struct {
	fmt    Format
	opcode uint32 // 7-bit major opcode
	funct3 uint32
	funct7 uint32 // also used for funct2 in R4 (low 2 bits) and imm[11:0] in system ops
	name   string
}

var specs = [opCount]spec{
	LUI:    {FmtU, opcLUI, 0, 0, "lui"},
	AUIPC:  {FmtU, opcAUIPC, 0, 0, "auipc"},
	JAL:    {FmtJ, opcJAL, 0, 0, "jal"},
	JALR:   {FmtI, opcJALR, 0, 0, "jalr"},
	BEQ:    {FmtB, opcBRANCH, 0, 0, "beq"},
	BNE:    {FmtB, opcBRANCH, 1, 0, "bne"},
	BLT:    {FmtB, opcBRANCH, 4, 0, "blt"},
	BGE:    {FmtB, opcBRANCH, 5, 0, "bge"},
	BLTU:   {FmtB, opcBRANCH, 6, 0, "bltu"},
	BGEU:   {FmtB, opcBRANCH, 7, 0, "bgeu"},
	LB:     {FmtI, opcLOAD, 0, 0, "lb"},
	LH:     {FmtI, opcLOAD, 1, 0, "lh"},
	LW:     {FmtI, opcLOAD, 2, 0, "lw"},
	LBU:    {FmtI, opcLOAD, 4, 0, "lbu"},
	LHU:    {FmtI, opcLOAD, 5, 0, "lhu"},
	SB:     {FmtS, opcSTORE, 0, 0, "sb"},
	SH:     {FmtS, opcSTORE, 1, 0, "sh"},
	SW:     {FmtS, opcSTORE, 2, 0, "sw"},
	ADDI:   {FmtI, opcOPIMM, 0, 0, "addi"},
	SLTI:   {FmtI, opcOPIMM, 2, 0, "slti"},
	SLTIU:  {FmtI, opcOPIMM, 3, 0, "sltiu"},
	XORI:   {FmtI, opcOPIMM, 4, 0, "xori"},
	ORI:    {FmtI, opcOPIMM, 6, 0, "ori"},
	ANDI:   {FmtI, opcOPIMM, 7, 0, "andi"},
	SLLI:   {FmtI, opcOPIMM, 1, 0x00, "slli"},
	SRLI:   {FmtI, opcOPIMM, 5, 0x00, "srli"},
	SRAI:   {FmtI, opcOPIMM, 5, 0x20, "srai"},
	ADD:    {FmtR, opcOP, 0, 0x00, "add"},
	SUB:    {FmtR, opcOP, 0, 0x20, "sub"},
	SLL:    {FmtR, opcOP, 1, 0x00, "sll"},
	SLT:    {FmtR, opcOP, 2, 0x00, "slt"},
	SLTU:   {FmtR, opcOP, 3, 0x00, "sltu"},
	XOR:    {FmtR, opcOP, 4, 0x00, "xor"},
	SRL:    {FmtR, opcOP, 5, 0x00, "srl"},
	SRA:    {FmtR, opcOP, 5, 0x20, "sra"},
	OR:     {FmtR, opcOP, 6, 0x00, "or"},
	AND:    {FmtR, opcOP, 7, 0x00, "and"},
	FENCE:  {FmtI, opcMISCMEM, 0, 0, "fence"},
	ECALL:  {FmtI, opcSYSTEM, 0, 0x000, "ecall"},
	EBREAK: {FmtI, opcSYSTEM, 0, 0x001, "ebreak"},
	CSRRW:  {FmtI, opcSYSTEM, 1, 0, "csrrw"},
	CSRRS:  {FmtI, opcSYSTEM, 2, 0, "csrrs"},
	CSRRC:  {FmtI, opcSYSTEM, 3, 0, "csrrc"},
	CSRRWI: {FmtI, opcSYSTEM, 5, 0, "csrrwi"},
	CSRRSI: {FmtI, opcSYSTEM, 6, 0, "csrrsi"},
	CSRRCI: {FmtI, opcSYSTEM, 7, 0, "csrrci"},

	MUL:    {FmtR, opcOP, 0, 0x01, "mul"},
	MULH:   {FmtR, opcOP, 1, 0x01, "mulh"},
	MULHSU: {FmtR, opcOP, 2, 0x01, "mulhsu"},
	MULHU:  {FmtR, opcOP, 3, 0x01, "mulhu"},
	DIV:    {FmtR, opcOP, 4, 0x01, "div"},
	DIVU:   {FmtR, opcOP, 5, 0x01, "divu"},
	REM:    {FmtR, opcOP, 6, 0x01, "rem"},
	REMU:   {FmtR, opcOP, 7, 0x01, "remu"},

	FLW:     {FmtI, opcLOADFP, 2, 0, "flw"},
	FSW:     {FmtS, opcSTOREFP, 2, 0, "fsw"},
	FADDS:   {FmtR, opcOPFP, 0, 0x00, "fadd.s"},
	FSUBS:   {FmtR, opcOPFP, 0, 0x04, "fsub.s"},
	FMULS:   {FmtR, opcOPFP, 0, 0x08, "fmul.s"},
	FDIVS:   {FmtR, opcOPFP, 0, 0x0C, "fdiv.s"},
	FSQRTS:  {FmtR, opcOPFP, 0, 0x2C, "fsqrt.s"},
	FSGNJS:  {FmtR, opcOPFP, 0, 0x10, "fsgnj.s"},
	FSGNJNS: {FmtR, opcOPFP, 1, 0x10, "fsgnjn.s"},
	FSGNJXS: {FmtR, opcOPFP, 2, 0x10, "fsgnjx.s"},
	FMINS:   {FmtR, opcOPFP, 0, 0x14, "fmin.s"},
	FMAXS:   {FmtR, opcOPFP, 1, 0x14, "fmax.s"},
	FCVTWS:  {FmtR, opcOPFP, 0, 0x60, "fcvt.w.s"},
	FCVTWUS: {FmtR, opcOPFP, 0, 0x60, "fcvt.wu.s"},
	FCVTSW:  {FmtR, opcOPFP, 0, 0x68, "fcvt.s.w"},
	FCVTSWU: {FmtR, opcOPFP, 0, 0x68, "fcvt.s.wu"},
	FMVXW:   {FmtR, opcOPFP, 0, 0x70, "fmv.x.w"},
	FMVWX:   {FmtR, opcOPFP, 0, 0x78, "fmv.w.x"},
	FEQS:    {FmtR, opcOPFP, 2, 0x50, "feq.s"},
	FLTS:    {FmtR, opcOPFP, 1, 0x50, "flt.s"},
	FLES:    {FmtR, opcOPFP, 0, 0x50, "fle.s"},
	FCLASSS: {FmtR, opcOPFP, 1, 0x70, "fclass.s"},
	FMADDS:  {FmtR4, opcFMADD, 0, 0, "fmadd.s"},
	FMSUBS:  {FmtR4, opcFMSUB, 0, 0, "fmsub.s"},
	FNMSUBS: {FmtR4, opcFNMSUB, 0, 0, "fnmsub.s"},
	FNMADDS: {FmtR4, opcFNMADD, 0, 0, "fnmadd.s"},

	VXTMC:    {FmtR, opcCUSTOM0, 0, 0x00, "vx_tmc"},
	VXWSPAWN: {FmtR, opcCUSTOM0, 0, 0x01, "vx_wspawn"},
	VXSPLIT:  {FmtR, opcCUSTOM0, 0, 0x02, "vx_split"},
	VXJOIN:   {FmtR, opcCUSTOM0, 0, 0x03, "vx_join"},
	VXBAR:    {FmtR, opcCUSTOM0, 0, 0x04, "vx_bar"},
	VXPRED:   {FmtR, opcCUSTOM0, 0, 0x05, "vx_pred"},
	VXBALLOT: {FmtR, opcCUSTOM0, 0, 0x06, "vx_ballot"},
}

// String returns the assembler mnemonic for the op.
func (o Op) String() string {
	if o < opCount && specs[o].name != "" {
		return specs[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Fmt reports the encoding format used by the op.
func (o Op) Fmt() Format { return specs[o].fmt }

// Ops returns every defined operation, in declaration order.
func Ops() []Op {
	out := make([]Op, 0, int(opCount)-1)
	for o := Op(1); o < opCount; o++ {
		out = append(out, o)
	}
	return out
}

// Inst is a decoded instruction. Rd/Rs1/Rs2/Rs3 index the integer register
// file for integer ops and the float register file for float ops (the Op
// determines which); Imm holds the sign-extended immediate, and CSR the
// 12-bit CSR address for system ops.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Rs3 uint8
	Imm int32
	CSR uint16
}

// IsBranch reports whether the op is a conditional branch.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// IsLoad reports whether the op reads data memory.
func (i Inst) IsLoad() bool {
	switch i.Op {
	case LB, LH, LW, LBU, LHU, FLW:
		return true
	}
	return false
}

// IsStore reports whether the op writes data memory.
func (i Inst) IsStore() bool {
	switch i.Op {
	case SB, SH, SW, FSW:
		return true
	}
	return false
}

// IsMem reports whether the op accesses data memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsFloat reports whether the op belongs to the F extension.
func (i Inst) IsFloat() bool { return i.Op >= FLW && i.Op <= FNMADDS }

// WritesInt reports whether the op writes an integer destination register.
func (i Inst) WritesInt() bool {
	switch i.Op {
	case LUI, AUIPC, JAL, JALR,
		LB, LH, LW, LBU, LHU,
		ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
		ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		CSRRW, CSRRS, CSRRC, CSRRWI, CSRRSI, CSRRCI,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
		FCVTWS, FCVTWUS, FMVXW, FEQS, FLTS, FLES, FCLASSS,
		VXBALLOT:
		return true
	}
	return false
}

// WritesFloat reports whether the op writes a float destination register.
func (i Inst) WritesFloat() bool {
	switch i.Op {
	case FLW, FADDS, FSUBS, FMULS, FDIVS, FSQRTS,
		FSGNJS, FSGNJNS, FSGNJXS, FMINS, FMAXS,
		FCVTSW, FCVTSWU, FMVWX,
		FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return true
	}
	return false
}

// ReadsIntRs1 reports whether rs1 is read from the integer register file.
func (i Inst) ReadsIntRs1() bool {
	switch i.Op {
	case LUI, AUIPC, JAL, FENCE, ECALL, EBREAK, CSRRWI, CSRRSI, CSRRCI, VXJOIN:
		return false
	case FADDS, FSUBS, FMULS, FDIVS, FSQRTS, FSGNJS, FSGNJNS, FSGNJXS,
		FMINS, FMAXS, FCVTWS, FCVTWUS, FMVXW, FEQS, FLTS, FLES, FCLASSS,
		FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return false // rs1 is a float register
	}
	return true
}

// ReadsIntRs2 reports whether rs2 is read from the integer register file.
func (i Inst) ReadsIntRs2() bool {
	switch i.Op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU,
		SB, SH, SW,
		ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
		VXWSPAWN, VXBAR:
		return true
	}
	return false
}

// ReadsFloatRs1 reports whether rs1 is read from the float register file.
func (i Inst) ReadsFloatRs1() bool {
	switch i.Op {
	case FADDS, FSUBS, FMULS, FDIVS, FSQRTS, FSGNJS, FSGNJNS, FSGNJXS,
		FMINS, FMAXS, FCVTWS, FCVTWUS, FMVXW, FEQS, FLTS, FLES, FCLASSS,
		FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return true
	}
	return false
}

// ReadsFloatRs2 reports whether rs2 is read from the float register file.
func (i Inst) ReadsFloatRs2() bool {
	switch i.Op {
	case FADDS, FSUBS, FMULS, FDIVS, FSGNJS, FSGNJNS, FSGNJXS,
		FMINS, FMAXS, FEQS, FLTS, FLES, FSW,
		FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return true
	}
	return false
}

// ReadsFloatRs3 reports whether rs3 is read (fused multiply-add family).
func (i Inst) ReadsFloatRs3() bool {
	switch i.Op {
	case FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return true
	}
	return false
}
