package isa

import "fmt"

// Integer register ABI names, x0..x31.
var intRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// IntRegName returns the ABI name of integer register r.
func IntRegName(r uint8) string {
	if r < 32 {
		return intRegNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// FloatRegName returns the name of float register r.
func FloatRegName(r uint8) string { return fmt.Sprintf("f%d", r) }

// IntRegByName resolves an integer register name (ABI or xN) to its index.
func IntRegByName(name string) (uint8, bool) {
	for i, n := range intRegNames {
		if n == name {
			return uint8(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		var n int
		if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < 32 {
			return uint8(n), true
		}
	}
	// Common aliases.
	if name == "fp" {
		return 8, true
	}
	return 0, false
}

// floatABINames maps the standard F-extension ABI names to register indices.
var floatABINames = map[string]uint8{
	"ft0": 0, "ft1": 1, "ft2": 2, "ft3": 3, "ft4": 4, "ft5": 5, "ft6": 6, "ft7": 7,
	"fs0": 8, "fs1": 9,
	"fa0": 10, "fa1": 11, "fa2": 12, "fa3": 13, "fa4": 14, "fa5": 15, "fa6": 16, "fa7": 17,
	"fs2": 18, "fs3": 19, "fs4": 20, "fs5": 21, "fs6": 22, "fs7": 23,
	"fs8": 24, "fs9": 25, "fs10": 26, "fs11": 27,
	"ft8": 28, "ft9": 29, "ft10": 30, "ft11": 31,
}

// FloatRegByName resolves a float register name (fN or ABI ft/fs/fa names).
func FloatRegByName(name string) (uint8, bool) {
	if r, ok := floatABINames[name]; ok {
		return r, true
	}
	if len(name) >= 2 && name[0] == 'f' && name[1] >= '0' && name[1] <= '9' {
		var n int
		if _, err := fmt.Sscanf(name, "f%d", &n); err == nil && n >= 0 && n < 32 {
			return uint8(n), true
		}
	}
	return 0, false
}

// Disasm renders a decoded instruction as assembler text. pc is used to
// resolve branch and jump targets into absolute addresses.
func Disasm(in Inst, pc uint32) string {
	ir := IntRegName
	fr := FloatRegName
	switch in.Op {
	case LUI, AUIPC:
		return fmt.Sprintf("%s %s, %#x", in.Op, ir(in.Rd), uint32(in.Imm)>>12)
	case JAL:
		return fmt.Sprintf("%s %s, %#x", in.Op, ir(in.Rd), pc+uint32(in.Imm))
	case JALR:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, ir(in.Rd), in.Imm, ir(in.Rs1))
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s %s, %s, %#x", in.Op, ir(in.Rs1), ir(in.Rs2), pc+uint32(in.Imm))
	case LB, LH, LW, LBU, LHU:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, ir(in.Rd), in.Imm, ir(in.Rs1))
	case FLW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, fr(in.Rd), in.Imm, ir(in.Rs1))
	case SB, SH, SW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, ir(in.Rs2), in.Imm, ir(in.Rs1))
	case FSW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, fr(in.Rs2), in.Imm, ir(in.Rs1))
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, ir(in.Rd), ir(in.Rs1), in.Imm)
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, ir(in.Rd), ir(in.Rs1), ir(in.Rs2))
	case FENCE:
		return "fence"
	case ECALL:
		return "ecall"
	case EBREAK:
		return "ebreak"
	case CSRRW, CSRRS, CSRRC:
		name := CSRName(in.CSR)
		if name == "" {
			name = fmt.Sprintf("%#x", in.CSR)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, ir(in.Rd), name, ir(in.Rs1))
	case CSRRWI, CSRRSI, CSRRCI:
		name := CSRName(in.CSR)
		if name == "" {
			name = fmt.Sprintf("%#x", in.CSR)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, ir(in.Rd), name, in.Rs1)
	case FADDS, FSUBS, FMULS, FDIVS, FSGNJS, FSGNJNS, FSGNJXS, FMINS, FMAXS:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, fr(in.Rd), fr(in.Rs1), fr(in.Rs2))
	case FSQRTS:
		return fmt.Sprintf("%s %s, %s", in.Op, fr(in.Rd), fr(in.Rs1))
	case FCVTWS, FCVTWUS, FMVXW, FCLASSS:
		return fmt.Sprintf("%s %s, %s", in.Op, ir(in.Rd), fr(in.Rs1))
	case FCVTSW, FCVTSWU, FMVWX:
		return fmt.Sprintf("%s %s, %s", in.Op, fr(in.Rd), ir(in.Rs1))
	case FEQS, FLTS, FLES:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, ir(in.Rd), fr(in.Rs1), fr(in.Rs2))
	case FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		return fmt.Sprintf("%s %s, %s, %s, %s", in.Op, fr(in.Rd), fr(in.Rs1), fr(in.Rs2), fr(in.Rs3))
	case VXTMC, VXSPLIT, VXPRED:
		return fmt.Sprintf("%s %s", in.Op, ir(in.Rs1))
	case VXWSPAWN, VXBAR:
		return fmt.Sprintf("%s %s, %s", in.Op, ir(in.Rs1), ir(in.Rs2))
	case VXJOIN:
		return "vx_join"
	case VXBALLOT:
		return fmt.Sprintf("%s %s, %s", in.Op, ir(in.Rd), ir(in.Rs1))
	}
	return fmt.Sprintf("unknown(%d)", in.Op)
}
