package ocl

import (
	"container/list"
	"sync"

	"repro/internal/sim"
)

// DevicePool reuses devices across runs of a campaign. Building a device
// allocates the full memory image, cache arrays and per-warp register
// files; a sweep that revisits each configuration once per (kernel, mapper)
// pays that cost on every task. The pool keeps idle devices keyed by their
// exact sim.Config and hands them back after a Reset, which is
// byte-identical in behaviour to a fresh NewDevice (see Device.Reset).
//
// The idle set is bounded globally, not per configuration: a sweep walks
// its grid configuration-major, so devices of configurations the task
// order has moved past are evicted (oldest idle first) instead of
// accumulating one pool per grid point for the whole campaign.
//
// Get/Put are safe for concurrent use by sweep workers.
type DevicePool struct {
	mu      sync.Mutex
	byCfg   map[sim.Config][]*list.Element
	lru     list.List // of *Device; front = most recently Put
	maxIdle int       // total idle devices; <= 0 means unbounded
	hits    uint64
	misses  uint64
}

// NewDevicePool builds a pool keeping at most maxIdle idle devices in
// total (a sweep needs at most its worker count; <= 0 removes the bound).
func NewDevicePool(maxIdle int) *DevicePool {
	return &DevicePool{byCfg: map[sim.Config][]*list.Element{}, maxIdle: maxIdle}
}

// Get returns a reset pooled device for cfg, or builds one.
func (p *DevicePool) Get(cfg sim.Config) (*Device, error) {
	p.mu.Lock()
	if els := p.byCfg[cfg]; len(els) > 0 {
		el := els[len(els)-1]
		p.byCfg[cfg] = els[:len(els)-1]
		p.lru.Remove(el)
		p.hits++
		p.mu.Unlock()
		d := el.Value.(*Device)
		d.Reset()
		return d, nil
	}
	p.misses++
	p.mu.Unlock()
	return NewDevice(cfg)
}

// Put returns a device to the pool, evicting the oldest idle device when
// the global bound is exceeded. The device may be in any state (a trapped
// simulation included): it is reset on its next Get.
func (p *DevicePool) Put(d *Device) {
	if d == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.byCfg[d.cfg] = append(p.byCfg[d.cfg], p.lru.PushFront(d))
	for p.maxIdle > 0 && p.lru.Len() > p.maxIdle {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		victim := oldest.Value.(*Device)
		els := p.byCfg[victim.cfg]
		for i, el := range els {
			if el == oldest {
				p.byCfg[victim.cfg] = append(els[:i], els[i+1:]...)
				break
			}
		}
		if len(p.byCfg[victim.cfg]) == 0 {
			delete(p.byCfg, victim.cfg)
		}
	}
}

// Stats returns the pool's reuse counters: Hits counts runs served by a
// recycled device, Misses counts fresh constructions.
func (p *DevicePool) Stats() CacheCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheCounters{Hits: p.hits, Misses: p.misses}
}

// IdleLen returns the number of idle devices currently retained.
func (p *DevicePool) IdleLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
