package ocl

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LaunchResult reports one completed NDRange execution.
type LaunchResult struct {
	Kernel  string
	GWS     int
	LWS     int
	Tasks   int // workgroups = ceil(gws/lws)
	Batches int // sequential rounds of tasks over hp slots
	Regime  core.Regime

	Cycles         uint64 // SimCycles + dispatch overhead
	SimCycles      uint64
	WarpsActivated int

	Stats       sim.CoreStats  // launch-delta pipeline counters
	L1          mem.CacheStats // launch-delta, summed over cores
	L2          mem.CacheStats
	DRAM        mem.DRAMStats
	Boundedness core.Boundedness
	// Energy is the launch's estimated consumption under the default
	// sim.EnergyModel (picojoules; relative comparisons only).
	Energy sim.EnergyBreakdown
}

// wrapperTemplate is the Vortex-style spawn wrapper generated around every
// kernel body. Constants are provided as assembler defines:
//
//	NTASKS   workgroups in the NDRange
//	TPC      tasks per core (contiguous chunk, ceil(NTASKS/cores))
//	TPW      threads per warp
//	WT       warps x threads (per-core slot count = grid stride)
//	GWS, LWS NDRange geometry
//	ARGBASE  argument block address
//
// Each hardware thread slot computes its first workgroup id, then loops:
// for each owned workgroup, iterate the lws work items, calling the body
// with a0=gid, a1=ARGBASE. Per-thread bounds are handled with the
// ballot/split/join idiom so divergent tails reconverge.
const wrapperHead = `
.tag spawn
__entry:
	csrr s0, cid
	csrr s1, wid
	csrr s2, tid
	li   t0, TPC
	mul  s3, s0, t0      # start = cid*TPC
	li   t1, TPW
	mul  s4, s1, t1      # wid*threads
	add  s4, s4, s2      # + tid = local slot
	add  s4, s4, s3      # wg = start + local slot
	add  s3, s3, t0      # end = start + TPC ...
	li   t2, NTASKS
	ble  s3, t2, __endok # ... clamped to NTASKS
	mv   s3, t2
__endok:
	li   s5, WT
	li   s7, GWS
	li   s9, LWS
	li   s11, ARGBASE
.tag wgloop
__wgloop:
	slt  t0, s4, s3      # this lane still owns a workgroup?
	vx_ballot t1, t0
	beqz t1, __wexit
	vx_split t0
	beqz t0, __wskip
	# POCL-style workgroup launcher prologue: reload the kernel context
	# and derive the group's grid coordinates (integer divisions, as the
	# pocl workgroup function does). This is the per-workgroup software
	# cost that makes very small lws expensive (Fig. 1, lws=1).
	lw   t3, 0(s11)      # touch the kernel context
	li   t5, 16
	divu t6, s4, t5      # group row (fake 2-D decomposition)
	remu t5, s4, t5      # group col
	li   t2, 16
	mul  t6, t6, t2
	add  t6, t6, t5      # == wg
	mul  s10, t6, s9     # first gid of the workgroup
	li   s8, 0           # l = 0
.tag localloop
__lloop:
	slt  t0, s8, s9      # l < lws
	add  a0, s10, s8     # gid = wg*lws + l
	slt  t2, a0, s7      # gid < gws
	and  t0, t0, t2
	vx_ballot t1, t0
	beqz t1, __lexit
	vx_split t0
	beqz t0, __lskip
	mv   a1, s11
.tag body
`

const wrapperTail = `
.tag localloop
__lskip:
	vx_join
	addi s8, s8, 1
	j __lloop
__lexit:
.tag wgloop
__wskip:
	vx_join
	add  s4, s4, s5      # wg += warps*threads (grid stride within core)
	j __wgloop
__wexit:
.tag exit
	ecall
`

// buildProgram returns the assembled wrapper+body for one launch shape,
// consulting the process-wide content-keyed program cache: the assembler
// runs once per distinct (kernel, geometry) shape instead of once per
// launch. Cached Programs are immutable and shared across devices.
func buildProgram(k *Kernel, gws, lws, ntasks, tpc int, cfg sim.Config) (*asm.Program, error) {
	defs := map[string]int64{
		"NTASKS":  int64(ntasks),
		"TPC":     int64(tpc),
		"TPW":     int64(cfg.Threads),
		"WT":      int64(cfg.Warps * cfg.Threads),
		"GWS":     int64(gws),
		"LWS":     int64(lws),
		"ARGBASE": int64(ArgBase),
	}
	for name, v := range k.src.Defs {
		if _, dup := defs[name]; dup {
			return nil, fmt.Errorf("ocl: kernel %q redefines reserved symbol %q", k.src.Name, name)
		}
		defs[name] = v
	}
	key := progKey{name: k.src.Name, body: asm.SourceKey(k.src.Body, CodeBase, nil), defs: defsKey(defs)}
	return programCache.GetOrBuild(key, func() (*asm.Program, error) {
		src := wrapperHead + k.src.Body + wrapperTail
		prog, err := asm.Assemble(src, CodeBase, defs)
		if err != nil {
			return nil, fmt.Errorf("ocl: kernel %q: %w", k.src.Name, err)
		}
		return prog, nil
	})
}

// currentProgram is set during a launch so trace collectors can tag PCs.
func (d *Device) currentTagAt(pc uint32) string {
	if d.currentProg == nil {
		return ""
	}
	return d.currentProg.TagAt(pc)
}

// EnableTracing installs a trace collector whose records are tagged with
// the generated program's semantic sections. Tracing slows simulation and
// should be enabled only for trace experiments (Figure 1).
func (d *Device) EnableTracing() *trace.Collector {
	col := trace.NewCollector(d.currentTagAt)
	d.SetObserver(col.Observe)
	return col
}

// DisableTracing removes any installed observer.
func (d *Device) DisableTracing() { d.SetObserver(nil) }

// EnqueueNDRange runs kernel k over gws work items. lws=0 delegates the
// choice to the device's mapper (core.Auto by default — the paper's
// technique); any positive lws is honored as-is, like the OpenCL host API.
// The call is synchronous: it returns when every warp has retired.
func (d *Device) EnqueueNDRange(k *Kernel, gws, lws int) (*LaunchResult, error) {
	if gws <= 0 {
		return nil, fmt.Errorf("ocl: gws %d must be positive", gws)
	}
	info := d.Info()
	if lws == 0 {
		lws = d.mapper.LWS(gws, info)
	}
	if lws < 1 {
		return nil, fmt.Errorf("ocl: lws %d must be positive (or 0 for auto)", lws)
	}

	ntasks := core.Tasks(gws, lws)
	tpc := (ntasks + d.cfg.Cores - 1) / d.cfg.Cores

	prog, err := buildProgram(k, gws, lws, ntasks, tpc, d.cfg)
	if err != nil {
		return nil, err
	}
	if prog.End() > ArgBase {
		return nil, fmt.Errorf("ocl: kernel %q program too large (%d bytes)", k.src.Name, prog.Size())
	}
	d.currentProg = prog
	if err := d.sim.LoadProgram(prog.Base, prog.Insts); err != nil {
		return nil, err
	}

	// Write the argument block.
	for i, a := range k.args {
		if !d.memory.Write32(ArgBase+uint32(i)*4, a.word) {
			return nil, fmt.Errorf("ocl: argument block write failed")
		}
	}

	// Activate warps: contiguous task chunks per core, threads first.
	entry, ok := prog.Symbols["__entry"]
	if !ok {
		return nil, fmt.Errorf("ocl: wrapper entry symbol missing")
	}
	warpsActivated := 0
	wt := d.cfg.Warps * d.cfg.Threads
	for c := 0; c < d.cfg.Cores; c++ {
		tasksHere := ntasks - c*tpc
		if tasksHere <= 0 {
			break
		}
		if tasksHere > tpc {
			tasksHere = tpc
		}
		slots := tasksHere
		if slots > wt {
			slots = wt
		}
		for w := 0; w*d.cfg.Threads < slots; w++ {
			lanes := slots - w*d.cfg.Threads
			if lanes > d.cfg.Threads {
				lanes = d.cfg.Threads
			}
			mask := (uint64(1) << uint(lanes)) - 1
			if err := d.sim.ActivateWarp(c, w, entry, mask); err != nil {
				return nil, err
			}
			warpsActivated++
		}
	}

	// Snapshot counters, run, and diff.
	startCycle := d.sim.Cycle()
	startStats := d.sim.TotalStats()
	startL1 := d.hier.TotalL1Stats()
	startL2 := d.hier.L2Stats()
	startDRAM := d.hier.DRAM()

	if err := d.sim.Run(); err != nil {
		return nil, d.annotateTrap(err, prog)
	}

	res := &LaunchResult{
		Kernel:         k.src.Name,
		GWS:            gws,
		LWS:            lws,
		Tasks:          ntasks,
		Batches:        core.Batches(gws, lws, info),
		Regime:         core.RegimeOf(gws, lws, info),
		SimCycles:      d.sim.Cycle() - startCycle,
		WarpsActivated: warpsActivated,
		Stats:          diffCoreStats(d.sim.TotalStats(), startStats),
		L1:             diffCacheStats(d.hier.TotalL1Stats(), startL1),
		L2:             diffCacheStats(d.hier.L2Stats(), startL2),
	}
	res.Cycles = res.SimCycles + d.DispatchOverhead
	dram := d.hier.DRAM()
	res.DRAM = mem.DRAMStats{
		LineReads:  dram.LineReads - startDRAM.LineReads,
		Writebacks: dram.Writebacks - startDRAM.Writebacks,
		BusyCycles: dram.BusyCycles - startDRAM.BusyCycles,
	}
	res.Boundedness = core.Classify(res.Stats.MemStall, res.Stats.ExecStall, res.SimCycles*uint64(d.cfg.Cores))
	res.Energy = sim.DefaultEnergyModel().EstimateEnergy(
		res.Stats, res.L1.Accesses, res.L2.Accesses,
		res.DRAM.LineReads+res.DRAM.Writebacks,
		res.SimCycles*uint64(d.cfg.Cores), nil)
	return res, nil
}

// annotateTrap attaches source context to simulator traps.
func (d *Device) annotateTrap(err error, prog *asm.Program) error {
	if t, ok := err.(*sim.Trap); ok {
		if src := prog.SourceAt(t.PC); src != "" {
			return fmt.Errorf("%w\n  at: %s", err, strings.TrimSpace(src))
		}
	}
	return err
}

func diffCoreStats(a, b sim.CoreStats) sim.CoreStats {
	return sim.CoreStats{
		Issued:       a.Issued - b.Issued,
		LaneOps:      a.LaneOps - b.LaneOps,
		Loads:        a.Loads - b.Loads,
		Stores:       a.Stores - b.Stores,
		LineRequests: a.LineRequests - b.LineRequests,
		MemStall:     a.MemStall - b.MemStall,
		ExecStall:    a.ExecStall - b.ExecStall,
		IdleAfterEnd: a.IdleAfterEnd - b.IdleAfterEnd,
	}
}

func diffCacheStats(a, b mem.CacheStats) mem.CacheStats {
	return mem.CacheStats{
		Accesses:   a.Accesses - b.Accesses,
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}
