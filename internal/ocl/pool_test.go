package ocl

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// launchOnce runs vecadd(gws) with lws on an existing device and returns
// the launch report plus the output vector.
func launchOnce(t *testing.T, d *Device, gws, lws int) (*LaunchResult, []float32) {
	t.Helper()
	a := make([]float32, gws)
	b := make([]float32, gws)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(3 * i)
	}
	bufA, err := d.AllocFloat32(gws)
	if err != nil {
		t.Fatal(err)
	}
	bufB, _ := d.AllocFloat32(gws)
	bufC, _ := d.AllocFloat32(gws)
	if err := d.WriteFloat32(bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFloat32(bufB, b); err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(vecaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgs(bufA, bufB, bufC); err != nil {
		t.Fatal(err)
	}
	res, err := d.EnqueueNDRange(k, gws, lws)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadFloat32(bufC, gws)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// TestDeviceResetByteIdentical is the device-pool identity contract: after
// any prior workload, Reset must make the next run indistinguishable —
// launch report, cycle counts, cache statistics and output included — from
// the same run on a freshly constructed device.
func TestDeviceResetByteIdentical(t *testing.T) {
	cfg := sim.DefaultConfig(2, 4, 4)

	fresh, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantOut := launchOnce(t, fresh, 512, 0)

	reused, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the device thoroughly: different geometry, different mapper,
	// custom dispatch overhead, and an observer.
	reused.SetMapper(core.Fixed{N: 32})
	reused.DispatchOverhead = 9999
	reused.SetObserver(func(sim.IssueEvent) {})
	launchOnce(t, reused, 300, 7)

	reused.Reset()
	gotRes, gotOut := launchOnce(t, reused, 512, 0)

	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("launch reports differ:\nfresh  %+v\npooled %+v", wantRes, gotRes)
	}
	if !reflect.DeepEqual(wantOut, gotOut) {
		t.Error("device outputs differ after Reset")
	}
	if c := reused.Sim().Cycle(); c == 0 {
		t.Error("sanity: cycle counter did not advance")
	}
	if got, want := reused.Sim().Hierarchy().DRAM(), fresh.Sim().Hierarchy().DRAM(); got != want {
		t.Errorf("DRAM stats differ: %+v vs %+v", got, want)
	}
	if got, want := reused.Sim().Hierarchy().L2Stats(), fresh.Sim().Hierarchy().L2Stats(); got != want {
		t.Errorf("L2 stats differ: %+v vs %+v", got, want)
	}
}

// TestDevicePoolReuse pins the pool mechanics: a Put device with a matching
// config is handed back reset, configs are not mixed, and the counters
// track reuse.
func TestDevicePoolReuse(t *testing.T) {
	pool := NewDevicePool(2)
	cfgA := sim.DefaultConfig(1, 2, 2)
	cfgB := sim.DefaultConfig(2, 2, 2)

	d1, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	launchOnce(t, d1, 64, 0)
	pool.Put(d1)

	d2, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("pool did not reuse the idle device")
	}
	if d2.Sim().Cycle() != 0 {
		t.Error("pooled device not reset on Get")
	}

	d3, err := pool.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d2 {
		t.Error("pool mixed configurations")
	}
	if d3.Config() != cfgB {
		t.Errorf("wrong config: %s", d3.Config().Name())
	}

	st := pool.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("pool stats = %+v, want 1 hit / 2 misses", st)
	}

	// The global idle bound drops surplus devices instead of growing
	// forever — including devices of configurations the caller has moved
	// past (a sweep walks its grid configuration-major).
	var held []*Device
	for i := 0; i < 5; i++ {
		d, err := pool.Get(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, d)
	}
	for _, d := range held {
		pool.Put(d)
	}
	pool.Put(d3) // a second config competes for the same global bound
	if n := pool.IdleLen(); n > 2 {
		t.Errorf("global idle bound not enforced: %d devices retained", n)
	}
	// Most-recently-Put wins: the cfgB device is resident, older cfgA
	// surplus was evicted.
	d4, err := pool.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if d4 != d3 {
		t.Error("most recently Put device was not retained")
	}
}
