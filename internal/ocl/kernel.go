package ocl

import (
	"fmt"
	"math"
)

// KernelSource is the device code of one kernel: an assembly body executed
// once per work item.
//
// Body ABI (enforced by the generated wrapper, see dispatch.go):
//   - a0 holds the global work-item id (gid); a1 holds the argument block
//     base address. Argument i lives at offset 4*i from a1.
//   - The body may freely use a0-a7, t0-t6 and every float register.
//   - The body must not write s0-s11, sp, ra, gp or tp (wrapper state).
//   - Control flow inside the body must reconverge (vx_split/vx_join for
//     divergent conditions); the body falls through its end.
//
// Defs are extra assembler symbols (compile-time constants such as matrix
// dimensions), available in Body expressions.
type KernelSource struct {
	Name string
	Body string
	Defs map[string]int64
}

// Validate performs basic checks.
func (k KernelSource) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("ocl: kernel without a name")
	}
	if k.Body == "" {
		return fmt.Errorf("ocl: kernel %q has an empty body", k.Name)
	}
	return nil
}

// argKind discriminates kernel argument slots.
type argKind uint8

const (
	argBuffer argKind = iota
	argWord
)

type argVal struct {
	kind argKind
	word uint32
}

// Kernel is a kernel with bound arguments, ready to enqueue.
type Kernel struct {
	src  KernelSource
	args []argVal
}

// NewKernel wraps a source for argument binding.
func NewKernel(src KernelSource) (*Kernel, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	return &Kernel{src: src}, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.src.Name }

// SetArgs binds the argument list in order. Accepted types: Buffer (device
// address), int, uint32, int32 and float32 (by value).
func (k *Kernel) SetArgs(args ...any) error {
	k.args = k.args[:0]
	for i, a := range args {
		switch v := a.(type) {
		case Buffer:
			k.args = append(k.args, argVal{kind: argBuffer, word: v.addr})
		case int:
			if int64(v) > math.MaxInt32 || int64(v) < math.MinInt32 {
				return fmt.Errorf("ocl: arg %d: int %d exceeds 32 bits", i, v)
			}
			k.args = append(k.args, argVal{kind: argWord, word: uint32(int32(v))})
		case int32:
			k.args = append(k.args, argVal{kind: argWord, word: uint32(v)})
		case uint32:
			k.args = append(k.args, argVal{kind: argWord, word: v})
		case float32:
			k.args = append(k.args, argVal{kind: argWord, word: math.Float32bits(v)})
		default:
			return fmt.Errorf("ocl: arg %d: unsupported type %T", i, a)
		}
	}
	return nil
}

// NumArgs returns the number of bound arguments.
func (k *Kernel) NumArgs() int { return len(k.args) }
