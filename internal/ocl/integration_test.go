package ocl

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestLaunchPropertyRandomGeometries fuzzes (config, gws, lws) and checks
// launch invariants: correct results, consistent regime/batches metadata,
// and a plausible cycle count.
func TestLaunchPropertyRandomGeometries(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		cores := 1 << r.Intn(3)
		warps := 1 << (1 + r.Intn(3))
		threads := 1 << (1 + r.Intn(3))
		gws := 1 + r.Intn(600)
		lws := 0
		if r.Intn(2) == 0 {
			lws = 1 + r.Intn(70)
		}
		cfg := sim.DefaultConfig(cores, warps, threads)
		res := runVecadd(t, cfg, gws, lws)

		hw := core.HWInfo{Cores: cores, Warps: warps, Threads: threads}
		if res.Tasks != core.Tasks(gws, res.LWS) {
			t.Errorf("trial %d: tasks = %d, want %d", trial, res.Tasks, core.Tasks(gws, res.LWS))
		}
		if res.Batches != core.Batches(gws, res.LWS, hw) {
			t.Errorf("trial %d: batches = %d", trial, res.Batches)
		}
		if res.Regime != core.RegimeOf(gws, res.LWS, hw) {
			t.Errorf("trial %d: regime = %v", trial, res.Regime)
		}
		// Every work item executes at least its body (11 instructions) on
		// its lane, and a core cannot retire more than one instruction per
		// cycle (an issue covers up to `threads` lanes).
		minLaneOps := uint64(gws) * 11
		if res.Stats.LaneOps < minLaneOps {
			t.Errorf("trial %d: only %d lane-ops for %d items", trial, res.Stats.LaneOps, gws)
		}
		if res.SimCycles*uint64(cores) < res.Stats.Issued {
			t.Errorf("trial %d: %d issues exceed %d core-cycles", trial, res.Stats.Issued, res.SimCycles*uint64(cores))
		}
		if res.Energy.Total() <= 0 {
			t.Errorf("trial %d: no energy accounted", trial)
		}
		if res.WarpsActivated < 1 || res.WarpsActivated > cores*warps {
			t.Errorf("trial %d: %d warps activated", trial, res.WarpsActivated)
		}
	}
}

// TestCyclesMonotoneInWork checks that, at a fixed configuration and
// mapping policy, more work never takes fewer cycles.
func TestCyclesMonotoneInWork(t *testing.T) {
	cfg := sim.DefaultConfig(2, 4, 4)
	var prev uint64
	for _, gws := range []int{64, 256, 1024, 4096} {
		res := runVecadd(t, cfg, gws, 0)
		if res.Cycles < prev {
			t.Errorf("gws=%d took %d cycles, less than smaller workload's %d", gws, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestRepeatedLaunchesWarmCaches verifies the device keeps cache state
// across launches: a second identical launch must not be slower.
func TestRepeatedLaunchesWarmCaches(t *testing.T) {
	cfg := sim.DefaultConfig(1, 4, 4)
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	a, _ := d.AllocFloat32(n)
	b, _ := d.AllocFloat32(n)
	c, _ := d.AllocFloat32(n)
	d.WriteFloat32(a, make([]float32, n))
	d.WriteFloat32(b, make([]float32, n))
	k, _ := NewKernel(vecaddSrc)
	k.SetArgs(a, b, c)
	first, err := d.EnqueueNDRange(k, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.EnqueueNDRange(k, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.SimCycles > first.SimCycles {
		t.Errorf("warm launch slower: %d vs %d", second.SimCycles, first.SimCycles)
	}
	// And flushing restores the cold time (approximately).
	d.FlushCaches()
	third, err := d.EnqueueNDRange(k, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if third.SimCycles <= second.SimCycles {
		t.Errorf("flushed launch not slower than warm: %d vs %d", third.SimCycles, second.SimCycles)
	}
}

// TestEnergyTracksLWSChoice checks the energy model distinguishes
// mappings: the lws=1 mapping issues more instructions (per-workgroup
// overhead per item) and must cost more energy.
func TestEnergyTracksLWSChoice(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	naive := runVecadd(t, cfg, 512, 1)
	ours := runVecadd(t, cfg, 512, 0)
	if naive.Energy.Total() <= ours.Energy.Total() {
		t.Errorf("lws=1 energy %.0f <= ours %.0f despite extra instructions",
			naive.Energy.Total(), ours.Energy.Total())
	}
	if naive.Energy.Issue <= ours.Energy.Issue {
		t.Errorf("issue energy should dominate the difference")
	}
}

// TestAllRegimesReachable sweeps lws on one config and confirms all three
// regimes of Section 2 appear.
func TestAllRegimesReachable(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	seen := map[core.Regime]bool{}
	for _, lws := range []int{1, 4, 16, 32, 128} {
		res := runVecadd(t, cfg, 128, lws)
		seen[res.Regime] = true
	}
	for _, reg := range []core.Regime{core.RegimeUnder, core.RegimeExact, core.RegimeOver} {
		if !seen[reg] {
			t.Errorf("regime %v never reached", reg)
		}
	}
}
