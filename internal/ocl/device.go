// Package ocl is the OpenCL-style host runtime for the simulated Vortex
// GPGPU: device and buffer management, kernel argument binding, and NDRange
// dispatch. Dispatch reproduces the Vortex runtime's mapping: the gws work
// items become gws/lws workgroup tasks, split into contiguous chunks across
// cores, assigned threads-first-then-warps within each core, with each
// hardware thread looping over the lws work items of its workgroup — the
// mechanism whose lws sensitivity the paper exploits.
package ocl

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Device memory layout.
const (
	// CodeBase is where kernel programs are linked.
	CodeBase uint32 = 0x1000
	// ArgBase is the kernel argument block (one 4-byte slot per argument).
	ArgBase uint32 = 0x10000
	// HeapBase is the start of the buffer allocator.
	HeapBase uint32 = 0x100000
	// DefaultDispatchOverhead is the fixed driver cost per launch, in
	// cycles (host-device handshake, program upload, warp setup).
	DefaultDispatchOverhead uint64 = 500
)

// Device owns a simulated GPGPU: its memory, cache hierarchy and simulator
// instance. Buffer contents and cache state persist across launches.
type Device struct {
	cfg    sim.Config
	memory *mem.Memory
	hier   *mem.Hierarchy
	sim    *sim.Sim

	mapper core.Mapper
	// DispatchOverhead is charged once per EnqueueNDRange (cycles).
	DispatchOverhead uint64

	allocTop    uint32
	currentProg *asm.Program // program of the launch in flight (for tagging)
	observer    func(sim.IssueEvent)

	// scratch is the pooled byte staging buffer for buffer uploads and
	// readbacks (Write*/Read*). Verify-heavy campaigns read every output
	// buffer back per run; pooling the staging bytes keeps that traffic off
	// the allocator (held by the B_per_op bench gate). A Device serves one
	// host caller at a time (the device pool hands it out exclusively), so
	// a single buffer is safe.
	scratch []byte
}

// scratchBytes returns the pooled staging buffer grown to n bytes. The
// contents are unspecified; every caller fully overwrites them.
func (d *Device) scratchBytes(n int) []byte {
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n)
	}
	return d.scratch[:n]
}

// NewDevice builds a device for the given configuration.
func NewDevice(cfg sim.Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memory := mem.NewMemory(HeapBase)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		return nil, err
	}
	return &Device{
		cfg:              cfg,
		memory:           memory,
		hier:             hier,
		sim:              s,
		mapper:           core.Auto{},
		DispatchOverhead: DefaultDispatchOverhead,
		allocTop:         HeapBase,
	}, nil
}

// Info returns the runtime-visible micro-architecture parameters — the
// inputs to Eq. 1.
func (d *Device) Info() core.HWInfo {
	return core.HWInfo{Cores: d.cfg.Cores, Warps: d.cfg.Warps, Threads: d.cfg.Threads}
}

// Config returns the full simulator configuration.
func (d *Device) Config() sim.Config { return d.cfg }

// Sim exposes the underlying simulator (for ablations and tests).
func (d *Device) Sim() *sim.Sim { return d.sim }

// SetMapper replaces the automatic lws policy used when EnqueueNDRange is
// called with lws=0.
func (d *Device) SetMapper(m core.Mapper) { d.mapper = m }

// Mapper returns the current automatic lws policy.
func (d *Device) Mapper() core.Mapper { return d.mapper }

// SetObserver installs a raw per-issue observer for the next launches
// (e.g. a trace.Collector's Observe method).
func (d *Device) SetObserver(fn func(sim.IssueEvent)) {
	d.observer = fn
	d.sim.SetObserver(fn)
}

// Buffer is a device memory allocation.
type Buffer struct {
	addr uint32
	size uint32
	dev  *Device
}

// Addr returns the device address of the buffer.
func (b Buffer) Addr() uint32 { return b.addr }

// Size returns the buffer size in bytes.
func (b Buffer) Size() uint32 { return b.size }

// Alloc reserves size bytes of device memory (64-byte aligned).
func (d *Device) Alloc(size uint32) (Buffer, error) {
	if size == 0 {
		return Buffer{}, fmt.Errorf("ocl: zero-size allocation")
	}
	const align = 64
	addr := (d.allocTop + align - 1) &^ (align - 1)
	end := addr + size
	if end < addr {
		return Buffer{}, fmt.Errorf("ocl: allocation of %d bytes overflows address space", size)
	}
	d.allocTop = end
	d.memory.Grow(end)
	return Buffer{addr: addr, size: size, dev: d}, nil
}

// AllocFloat32 reserves a buffer for n float32 values.
func (d *Device) AllocFloat32(n int) (Buffer, error) { return d.Alloc(uint32(n) * 4) }

// AllocUint32 reserves a buffer for n uint32 values.
func (d *Device) AllocUint32(n int) (Buffer, error) { return d.Alloc(uint32(n) * 4) }

// WriteFloat32 copies host data into the buffer.
func (d *Device) WriteFloat32(b Buffer, data []float32) error {
	if uint32(len(data))*4 > b.size {
		return fmt.Errorf("ocl: write of %d floats exceeds buffer size %d", len(data), b.size)
	}
	raw := d.scratchBytes(len(data) * 4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return d.memory.WriteBytes(b.addr, raw)
}

// ReadFloat32 copies n float32 values out of the buffer.
func (d *Device) ReadFloat32(b Buffer, n int) ([]float32, error) {
	if uint32(n)*4 > b.size {
		return nil, fmt.Errorf("ocl: read of %d floats exceeds buffer size %d", n, b.size)
	}
	raw := d.scratchBytes(n * 4)
	if err := d.memory.ReadBytesInto(raw, b.addr); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

// WriteUint32 copies host data into the buffer.
func (d *Device) WriteUint32(b Buffer, data []uint32) error {
	if uint32(len(data))*4 > b.size {
		return fmt.Errorf("ocl: write of %d words exceeds buffer size %d", len(data), b.size)
	}
	raw := d.scratchBytes(len(data) * 4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], v)
	}
	return d.memory.WriteBytes(b.addr, raw)
}

// ReadUint32 copies n uint32 values out of the buffer.
func (d *Device) ReadUint32(b Buffer, n int) ([]uint32, error) {
	if uint32(n)*4 > b.size {
		return nil, fmt.Errorf("ocl: read of %d words exceeds buffer size %d", n, b.size)
	}
	raw := d.scratchBytes(n * 4)
	if err := d.memory.ReadBytesInto(raw, b.addr); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return out, nil
}

// FlushCaches invalidates the cache hierarchy (cold-cache experiments).
func (d *Device) FlushCaches() { d.hier.Flush() }

// Reset restores the device to its NewDevice state while keeping the large
// allocations (memory image, cache arrays, register files), so a pooled
// device can be reused across runs instead of rebuilding the full memory
// image per run. After Reset the device is byte-identical in behaviour to a
// freshly constructed one: memory zeroed and shrunk to the heap base, cache
// and DRAM state rewound, simulator cycle/statistics/scheduler state
// cleared, the mapper back to core.Auto, the dispatch overhead back to the
// default, and any observer removed.
func (d *Device) Reset() {
	d.memory.Reset()
	d.hier.Reset()
	d.sim.Reset()
	d.sim.SetObserver(nil)
	d.mapper = core.Auto{}
	d.DispatchOverhead = DefaultDispatchOverhead
	d.allocTop = HeapBase
	d.currentProg = nil
	d.observer = nil
}
