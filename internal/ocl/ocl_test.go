package ocl

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// vecaddSrc is the float vector-add kernel used throughout these tests.
// Args: 0=A, 1=B, 2=C (device addresses).
var vecaddSrc = KernelSource{
	Name: "vecadd",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	slli t6, a0, 2
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fadd.s f2, f0, f1
	fsw  f2, 0(t5)
`,
}

// runVecadd executes vecadd(gws) with the given lws on cfg and verifies the
// result, returning the launch report.
func runVecadd(t *testing.T, cfg sim.Config, gws, lws int) *LaunchResult {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, gws)
	b := make([]float32, gws)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}
	bufA, err := d.AllocFloat32(gws)
	if err != nil {
		t.Fatal(err)
	}
	bufB, _ := d.AllocFloat32(gws)
	bufC, _ := d.AllocFloat32(gws)
	if err := d.WriteFloat32(bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFloat32(bufB, b); err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(vecaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgs(bufA, bufB, bufC); err != nil {
		t.Fatal(err)
	}
	res, err := d.EnqueueNDRange(k, gws, lws)
	if err != nil {
		t.Fatalf("launch gws=%d lws=%d on %s: %v", gws, lws, cfg.Name(), err)
	}
	got, err := d.ReadFloat32(bufC, gws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != a[i]+b[i] {
			t.Fatalf("gws=%d lws=%d %s: c[%d] = %v, want %v", gws, lws, cfg.Name(), i, got[i], a[i]+b[i])
		}
	}
	return res
}

func TestVecaddAcrossLWSAndConfigs(t *testing.T) {
	cfgs := []sim.Config{
		sim.DefaultConfig(1, 1, 1),
		sim.DefaultConfig(1, 2, 4),
		sim.DefaultConfig(2, 2, 2),
		sim.DefaultConfig(4, 4, 8),
	}
	for _, cfg := range cfgs {
		for _, lws := range []int{1, 3, 16, 32, 64, 200} {
			runVecadd(t, cfg, 128, lws)
		}
		// Auto.
		runVecadd(t, cfg, 128, 0)
		// Non-dividing gws.
		runVecadd(t, cfg, 100, 0)
		runVecadd(t, cfg, 7, 3)
		runVecadd(t, cfg, 1, 1)
	}
}

func TestPaperFigure1Ordering(t *testing.T) {
	// gws=128 on 1c2w4t: the paper's Figure 1 setup. lws=16 (ours) must
	// beat the naive lws=1 and the over-sized lws=32 and lws=64.
	cfg := sim.DefaultConfig(1, 2, 4)
	cycles := map[int]uint64{}
	for _, lws := range []int{1, 16, 32, 64} {
		res := runVecadd(t, cfg, 128, lws)
		cycles[lws] = res.Cycles
	}
	if cycles[16] >= cycles[1] {
		t.Errorf("lws=16 (%d cycles) not faster than lws=1 (%d)", cycles[16], cycles[1])
	}
	if cycles[16] >= cycles[32] {
		t.Errorf("lws=16 (%d cycles) not faster than lws=32 (%d)", cycles[16], cycles[32])
	}
	if cycles[16] >= cycles[64] {
		t.Errorf("lws=16 (%d cycles) not faster than lws=64 (%d)", cycles[16], cycles[64])
	}
	// And the over regime degrades monotonically as slots empty.
	if cycles[64] <= cycles[32] {
		t.Errorf("lws=64 (%d) should be slower than lws=32 (%d)", cycles[64], cycles[32])
	}
}

func TestAutoMatchesExplicitOptimal(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	auto := runVecadd(t, cfg, 128, 0)
	explicit := runVecadd(t, cfg, 128, 16)
	if auto.LWS != 16 {
		t.Errorf("auto picked lws=%d, want 16", auto.LWS)
	}
	if auto.Cycles != explicit.Cycles {
		t.Errorf("auto %d cycles != explicit optimal %d", auto.Cycles, explicit.Cycles)
	}
}

func TestLaunchReportFields(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	res := runVecadd(t, cfg, 128, 1)
	if res.Regime != core.RegimeUnder || res.Batches != 16 || res.Tasks != 128 {
		t.Errorf("lws=1 report = %+v", res)
	}
	if res.WarpsActivated != 2 {
		t.Errorf("warps activated = %d, want 2", res.WarpsActivated)
	}
	if res.Stats.Issued == 0 || res.Stats.Loads == 0 || res.Stats.Stores == 0 {
		t.Errorf("stats not collected: %+v", res.Stats)
	}
	if res.Cycles != res.SimCycles+DefaultDispatchOverhead {
		t.Errorf("dispatch overhead not applied")
	}
	if res.L1.Accesses == 0 {
		t.Errorf("L1 stats not collected")
	}

	res = runVecadd(t, cfg, 128, 16)
	if res.Regime != core.RegimeExact || res.Batches != 1 {
		t.Errorf("lws=16 report = %+v", res)
	}
	res = runVecadd(t, cfg, 128, 64)
	if res.Regime != core.RegimeOver || res.WarpsActivated != 1 {
		t.Errorf("lws=64 report: regime=%v warps=%d", res.Regime, res.WarpsActivated)
	}
}

func TestPartialWarpMasks(t *testing.T) {
	// gws=5 on 1c2w4t with lws=1: 5 tasks -> warp 0 full (4 lanes), warp 1
	// one lane.
	cfg := sim.DefaultConfig(1, 2, 4)
	res := runVecadd(t, cfg, 5, 1)
	if res.WarpsActivated != 2 {
		t.Errorf("warps activated = %d, want 2", res.WarpsActivated)
	}
}

func TestMulticoreDistribution(t *testing.T) {
	// 2 cores, 8 tasks, 4 slots per core: both cores get 4 tasks.
	cfg := sim.DefaultConfig(2, 1, 4)
	res := runVecadd(t, cfg, 8, 1)
	if res.WarpsActivated != 2 {
		t.Errorf("warps = %d, want 1 per core", res.WarpsActivated)
	}
	// 5 tasks: core 0 gets ceil(5/2)=3, core 1 gets 2.
	res = runVecadd(t, cfg, 5, 1)
	if res.WarpsActivated != 2 {
		t.Errorf("warps = %d, want 2", res.WarpsActivated)
	}
}

func TestTracingTagsSections(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := d.EnableTracing()
	defer d.DisableTracing()

	gws := 16
	bufA, _ := d.AllocFloat32(gws)
	bufB, _ := d.AllocFloat32(gws)
	bufC, _ := d.AllocFloat32(gws)
	d.WriteFloat32(bufA, make([]float32, gws))
	d.WriteFloat32(bufB, make([]float32, gws))
	k, _ := NewKernel(vecaddSrc)
	k.SetArgs(bufA, bufB, bufC)
	if _, err := d.EnqueueNDRange(k, gws, 0); err != nil {
		t.Fatal(err)
	}

	sum := col.Summarize()
	for _, section := range []string{"spawn", "wgloop", "localloop", "body", "exit"} {
		if sum.PerTag[section] == 0 {
			t.Errorf("no issues tagged %q: %v", section, sum.PerTag)
		}
	}
	if sum.WarpsUsed != 2 {
		t.Errorf("trace saw %d warps, want 2", sum.WarpsUsed)
	}
	var buf bytes.Buffer
	if err := col.RenderWaveform(&buf, trace.RenderOptions{Width: 60, ShowMask: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "c00w00") || !strings.Contains(out, "legend:") {
		t.Errorf("waveform missing rows/legend:\n%s", out)
	}
}

func TestArgumentTypes(t *testing.T) {
	d, err := NewDevice(sim.DefaultConfig(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := d.Alloc(64)
	k, _ := NewKernel(KernelSource{Name: "args", Body: "nop"})
	if err := k.SetArgs(buf, 42, int32(-1), uint32(7), float32(1.5)); err != nil {
		t.Fatal(err)
	}
	if k.NumArgs() != 5 {
		t.Errorf("NumArgs = %d", k.NumArgs())
	}
	if err := k.SetArgs("nope"); err == nil {
		t.Error("string arg accepted")
	}
	if err := k.SetArgs(int(1) << 40); err == nil {
		t.Error("oversized int accepted")
	}
}

func TestLaunchValidation(t *testing.T) {
	d, err := NewDevice(sim.DefaultConfig(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	k, _ := NewKernel(KernelSource{Name: "nopk", Body: "nop"})
	if _, err := d.EnqueueNDRange(k, 0, 1); err == nil {
		t.Error("gws=0 accepted")
	}
	if _, err := d.EnqueueNDRange(k, 4, -1); err == nil {
		t.Error("negative lws accepted")
	}
	if _, err := NewKernel(KernelSource{Name: "", Body: "nop"}); err == nil {
		t.Error("unnamed kernel accepted")
	}
	if _, err := NewKernel(KernelSource{Name: "x", Body: ""}); err == nil {
		t.Error("empty body accepted")
	}
	// Reserved define collision.
	bad, _ := NewKernel(KernelSource{Name: "bad", Body: "nop", Defs: map[string]int64{"GWS": 1}})
	if _, err := d.EnqueueNDRange(bad, 4, 1); err == nil {
		t.Error("reserved define collision accepted")
	}
}

func TestBufferAPI(t *testing.T) {
	d, err := NewDevice(sim.DefaultConfig(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	b1, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := d.Alloc(100)
	if b2.Addr() < b1.Addr()+100 {
		t.Error("allocations overlap")
	}
	if b1.Addr()%64 != 0 || b2.Addr()%64 != 0 {
		t.Error("allocations not 64B aligned")
	}
	// Round trips.
	u := []uint32{1, 2, 3}
	if err := d.WriteUint32(b1, u); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadUint32(b1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if got[i] != u[i] {
			t.Errorf("u32[%d] = %d", i, got[i])
		}
	}
	f := []float32{1.5, -2.25}
	if err := d.WriteFloat32(b2, f); err != nil {
		t.Fatal(err)
	}
	gf, _ := d.ReadFloat32(b2, 2)
	for i := range f {
		if gf[i] != f[i] {
			t.Errorf("f32[%d] = %v", i, gf[i])
		}
	}
	// Overflow checks.
	if err := d.WriteUint32(b1, make([]uint32, 26)); err == nil {
		t.Error("oversized write accepted")
	}
	if _, err := d.ReadFloat32(b1, 26); err == nil {
		t.Error("oversized read accepted")
	}
}

func TestMapperPluggability(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SetMapper(core.Fixed{N: 32})
	if d.Mapper().Name() != "lws=32" {
		t.Errorf("mapper = %s", d.Mapper().Name())
	}
	buf, _ := d.AllocFloat32(128)
	k, _ := NewKernel(vecaddSrc)
	k.SetArgs(buf, buf, buf)
	res, err := d.EnqueueNDRange(k, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LWS != 32 {
		t.Errorf("fixed mapper chose lws=%d", res.LWS)
	}
}

func TestTrapAnnotatedWithSource(t *testing.T) {
	d, err := NewDevice(sim.DefaultConfig(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Kernel that loads from an invalid address.
	k, _ := NewKernel(KernelSource{Name: "crash", Body: `
	li t0, 0x7F000000
	lw t1, 0(t0)
`})
	_, err = d.EnqueueNDRange(k, 2, 1)
	if err == nil {
		t.Fatal("crash kernel succeeded")
	}
	if !strings.Contains(err.Error(), "at: lw") {
		t.Errorf("trap not annotated with source: %v", err)
	}
}

func TestDispatchOverheadKnob(t *testing.T) {
	cfg := sim.DefaultConfig(1, 1, 2)
	d, _ := NewDevice(cfg)
	d.DispatchOverhead = 0
	buf, _ := d.AllocFloat32(8)
	k, _ := NewKernel(vecaddSrc)
	k.SetArgs(buf, buf, buf)
	res, err := d.EnqueueNDRange(k, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res.SimCycles {
		t.Errorf("overhead 0: Cycles %d != SimCycles %d", res.Cycles, res.SimCycles)
	}
}

func TestBoundednessReported(t *testing.T) {
	// On a wide, bandwidth-starved device vecadd must classify as
	// memory-bound: many slots, almost no compute per byte, 2 B/cycle DRAM.
	cfg := sim.DefaultConfig(2, 8, 8)
	cfg.Mem.DRAM.BytesPerCycle = 2
	res := runVecadd(t, cfg, 8192, 0)
	if res.Boundedness != core.MemoryBound {
		t.Errorf("vecadd classified %v (memStall=%d execStall=%d cycles=%d)",
			res.Boundedness, res.Stats.MemStall, res.Stats.ExecStall, res.SimCycles)
	}
}
