package ocl

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestProgramCacheHitsAndIdentity pins the content-keyed program cache:
// repeated launches of the same shape hit the cache and produce results
// identical to the uncached path, while different shapes miss.
func TestProgramCacheHitsAndIdentity(t *testing.T) {
	cfg := sim.DefaultConfig(1, 2, 4)

	ResetProgramCache()
	d1, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, coldOut := launchOnce(t, d1, 256, 0)
	afterCold := ProgramCacheStats()
	if afterCold.Misses == 0 {
		t.Fatal("first launch did not populate the program cache")
	}

	// Same shape on a different device: must hit and match exactly.
	d2, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, warmOut := launchOnce(t, d2, 256, 0)
	afterWarm := ProgramCacheStats()
	if afterWarm.Hits != afterCold.Hits+1 {
		t.Errorf("expected one cache hit, counters %+v -> %+v", afterCold, afterWarm)
	}
	if afterWarm.Misses != afterCold.Misses {
		t.Errorf("warm launch rebuilt the program: %+v -> %+v", afterCold, afterWarm)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Errorf("cached program changed the launch report:\ncold %+v\nwarm %+v", coldRes, warmRes)
	}
	if !reflect.DeepEqual(coldOut, warmOut) {
		t.Error("cached program changed the device output")
	}

	// A different geometry is a different shape: must miss.
	d3, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	launchOnce(t, d3, 256, 8)
	afterOther := ProgramCacheStats()
	if afterOther.Misses != afterWarm.Misses+1 {
		t.Errorf("distinct lws shape did not miss: %+v -> %+v", afterWarm, afterOther)
	}
}

// TestProgramCacheKeyedByBodyAndDefs pins that kernels sharing a name but
// differing in body or defines cannot alias.
func TestProgramCacheKeyedByBodyAndDefs(t *testing.T) {
	ResetProgramCache()
	cfg := sim.DefaultConfig(1, 2, 2)
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := d.AllocFloat32(64)
	if err != nil {
		t.Fatal(err)
	}

	store := func(name, body string, defs map[string]int64) []float32 {
		k, err := NewKernel(KernelSource{Name: name, Body: body, Defs: defs})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgs(buf); err != nil {
			t.Fatal(err)
		}
		if _, err := d.EnqueueNDRange(k, 64, 0); err != nil {
			t.Fatal(err)
		}
		out, err := d.ReadFloat32(buf, 64)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	body := `
	lw   t3, 0(a1)
	slli t4, a0, 2
	add  t3, t3, t4
	li   t5, KVAL
	fcvt.s.w f0, t5
	fsw  f0, 0(t3)
`
	one := store("kv", body, map[string]int64{"KVAL": 1})
	two := store("kv", body, map[string]int64{"KVAL": 2})
	if one[0] != 1 || two[0] != 2 {
		t.Fatalf("defs aliased in the cache: got %v then %v", one[0], two[0])
	}
}
