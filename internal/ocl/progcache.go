package ocl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/cache"
)

// CacheCounters reports hit/miss totals of one runtime cache.
type CacheCounters struct {
	Hits   uint64
	Misses uint64
}

// progKey identifies one distinct launch shape: the kernel's identity (name
// plus a content hash of its body) and the full define set, which carries
// both the kernel's compile-time constants and the wrapper geometry
// (NTASKS, TPC, TPW, WT, GWS, LWS, ARGBASE). Everything else that feeds
// Assemble — the wrapper text and the link base — is compile-time constant.
type progKey struct {
	name string
	body uint64
	defs string
}

func defsKey(defs map[string]int64) string {
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d;", name, defs[name])
	}
	return b.String()
}

// defaultProgramCacheCap holds the full Figure-2 campaign comfortably: the
// distinct (kernel, geometry) launch shapes of 450 configs x 9 kernels x 3
// mappers dedupe far below this, and one cached program is a few KiB.
const defaultProgramCacheCap = 4096

// programCache shares assembled programs across every device in the
// process: the assembled Program is immutable, so distinct devices (and
// concurrent sweep workers) can load the same instance.
var programCache = cache.NewLRU[progKey, *asm.Program](defaultProgramCacheCap)

// ProgramCacheStats returns process-wide program-cache hit/miss counters.
func ProgramCacheStats() CacheCounters {
	h, m := programCache.Stats()
	return CacheCounters{Hits: h, Misses: m}
}

// ResetProgramCache drops every cached program and zeroes the counters
// (cold-path benchmarks and tests).
func ResetProgramCache() { programCache.Reset() }
