// Package tuner implements an empirical lws autotuner — the
// hardware-agnostic alternative the paper's runtime technique replaces.
// It searches candidate local work sizes by timing probe launches on the
// device, which costs one full (or scaled-down) execution per candidate;
// Eq. 1 gets the same answer from two integers. The package exists to
// quantify that trade-off (see the autotune example and the
// TestTunerAgreesWithEq1 tests).
package tuner

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Runner executes one probe launch at a given lws and reports its cycles.
// It abstracts the kernel-under-tuning so the tuner is reusable across
// workloads (kernels.Case.Run composes directly).
type Runner func(lws int) (cycles uint64, err error)

// Result is the outcome of a search.
type Result struct {
	BestLWS    int
	BestCycles uint64
	// Probes lists every candidate tried, in evaluation order.
	Probes []Probe
	// Eq1LWS is the closed-form recommendation for the same launch, and
	// Eq1Cycles its measured cost (present when the candidate set
	// contained it).
	Eq1LWS    int
	Eq1Cycles uint64
}

// Probe is one timed candidate.
type Probe struct {
	LWS    int
	Cycles uint64
}

// Candidates returns the default search space for a launch: powers of two
// from 1 up to gws (capped at 4096 candidates implicitly by the doubling),
// plus the Eq. 1 value so the comparison is always available.
func Candidates(gws int, hw core.HWInfo) []int {
	set := map[int]bool{}
	var out []int
	add := func(v int) {
		if v >= 1 && v <= gws && !set[v] {
			set[v] = true
			out = append(out, v)
		}
	}
	for v := 1; v <= gws; v *= 2 {
		add(v)
		if v > 1<<30 {
			break
		}
	}
	add(gws)
	add(core.OptimalLWS(gws, hw))
	sort.Ints(out)
	return out
}

// Exhaustive times every candidate and returns the empirical best.
func Exhaustive(run Runner, gws int, hw core.HWInfo) (*Result, error) {
	cands := Candidates(gws, hw)
	res := &Result{Eq1LWS: core.OptimalLWS(gws, hw)}
	for _, lws := range cands {
		cycles, err := run(lws)
		if err != nil {
			return nil, fmt.Errorf("tuner: probe lws=%d: %w", lws, err)
		}
		res.Probes = append(res.Probes, Probe{LWS: lws, Cycles: cycles})
		if res.BestCycles == 0 || cycles < res.BestCycles {
			res.BestLWS, res.BestCycles = lws, cycles
		}
		if lws == res.Eq1LWS {
			res.Eq1Cycles = cycles
		}
	}
	return res, nil
}

// HillClimb starts from the Eq. 1 value and walks to a local minimum by
// doubling/halving, probing far fewer points than Exhaustive. It exploits
// the empirically unimodal lws-latency curve (see the autotune example).
func HillClimb(run Runner, gws int, hw core.HWInfo) (*Result, error) {
	res := &Result{Eq1LWS: core.OptimalLWS(gws, hw)}
	seen := map[int]uint64{}
	probe := func(lws int) (uint64, error) {
		if c, ok := seen[lws]; ok {
			return c, nil
		}
		c, err := run(lws)
		if err != nil {
			return 0, fmt.Errorf("tuner: probe lws=%d: %w", lws, err)
		}
		seen[lws] = c
		res.Probes = append(res.Probes, Probe{LWS: lws, Cycles: c})
		return c, nil
	}

	cur := res.Eq1LWS
	curCycles, err := probe(cur)
	if err != nil {
		return nil, err
	}
	res.Eq1Cycles = curCycles
	for {
		bestNext, bestCycles := 0, curCycles
		for _, cand := range []int{cur * 2, cur / 2} {
			if cand < 1 || cand > gws {
				continue
			}
			c, err := probe(cand)
			if err != nil {
				return nil, err
			}
			if c < bestCycles {
				bestNext, bestCycles = cand, c
			}
		}
		if bestNext == 0 {
			break
		}
		cur, curCycles = bestNext, bestCycles
	}
	res.BestLWS, res.BestCycles = cur, curCycles
	return res, nil
}

// Strategy is one lws search procedure over a Runner (Exhaustive and
// HillClimb curry their gws/hw arguments into this shape).
type Strategy func(Runner) (*Result, error)

// SchedProbe is one scheduler policy's tuned outcome.
type SchedProbe struct {
	Sched string
	Res   *Result
}

// AcrossScheds widens the empirical search space to the warp-scheduler
// axis: it runs the given lws search once per scheduler policy (mk builds
// the policy's Runner) and returns the per-policy results plus the index
// of the best (policy, lws) point. The policy names are opaque to the
// tuner — callers pass sim scheduler names and a Runner factory that
// configures the device accordingly — so the package keeps depending only
// on core.
func AcrossScheds(scheds []string, mk func(sched string) Runner, search Strategy) ([]SchedProbe, int, error) {
	if len(scheds) == 0 {
		return nil, -1, fmt.Errorf("tuner: no scheduler policies to search")
	}
	probes := make([]SchedProbe, 0, len(scheds))
	best := -1
	for _, sched := range scheds {
		res, err := search(mk(sched))
		if err != nil {
			return nil, -1, fmt.Errorf("tuner: sched %s: %w", sched, err)
		}
		probes = append(probes, SchedProbe{Sched: sched, Res: res})
		if best < 0 || res.BestCycles < probes[best].Res.BestCycles {
			best = len(probes) - 1
		}
	}
	return probes, best, nil
}

// Overhead reports how much simulated work the search spent relative to a
// single launch at the best point — the cost a runtime-analytic mapper
// avoids entirely.
func (r *Result) Overhead() float64 {
	if r.BestCycles == 0 {
		return 0
	}
	var total uint64
	for _, p := range r.Probes {
		total += p.Cycles
	}
	return float64(total) / float64(r.BestCycles)
}

// Eq1Gap returns measured(eq1)/measured(best) - how close the closed form
// got to the searched optimum (1.0 = identical).
func (r *Result) Eq1Gap() float64 {
	if r.Eq1Cycles == 0 || r.BestCycles == 0 {
		return 0
	}
	return float64(r.Eq1Cycles) / float64(r.BestCycles)
}
