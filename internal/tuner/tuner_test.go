package tuner

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
)

// deviceRunner builds a fresh device + saxpy case per probe so probes are
// independent (cold caches, same data).
func deviceRunner(t *testing.T, hw core.HWInfo, gws int) Runner {
	t.Helper()
	return func(lws int) (uint64, error) {
		d, err := ocl.NewDevice(sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
		if err != nil {
			return 0, err
		}
		c, err := kernels.BuildSaxpy(d, gws, 3)
		if err != nil {
			return 0, err
		}
		res, err := c.Run(d, lws)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
}

func TestCandidatesContainEq1AndEdges(t *testing.T) {
	hw := core.HWInfo{Cores: 1, Warps: 2, Threads: 4}
	cands := Candidates(100, hw)
	want := map[int]bool{1: true, 100: true, core.OptimalLWS(100, hw): true}
	got := map[int]bool{}
	for _, c := range cands {
		got[c] = true
		if c < 1 || c > 100 {
			t.Errorf("candidate %d out of range", c)
		}
	}
	for v := range want {
		if !got[v] {
			t.Errorf("candidates missing %d: %v", v, cands)
		}
	}
	// Sorted and unique.
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Errorf("candidates not sorted/unique: %v", cands)
		}
	}
}

func TestExhaustiveFindsUnimodalMinimum(t *testing.T) {
	// Synthetic cost: V-shaped around lws=32.
	cost := func(lws int) (uint64, error) {
		d := lws - 32
		if d < 0 {
			d = -d
		}
		return uint64(100 + d), nil
	}
	res, err := Exhaustive(cost, 1024, core.HWInfo{Cores: 1, Warps: 4, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLWS != 32 {
		t.Errorf("best = %d, want 32", res.BestLWS)
	}
	if res.Eq1LWS != 32 || res.Eq1Cycles != 100 {
		t.Errorf("eq1 = %d / %d", res.Eq1LWS, res.Eq1Cycles)
	}
	if res.Eq1Gap() != 1 {
		t.Errorf("gap = %v", res.Eq1Gap())
	}
	if res.Overhead() <= 1 {
		t.Errorf("overhead = %v, must exceed one launch", res.Overhead())
	}
}

func TestHillClimbConvergesAndProbesFewer(t *testing.T) {
	cost := func(lws int) (uint64, error) {
		d := lws - 64
		if d < 0 {
			d = -d
		}
		return uint64(1000 + 10*d), nil
	}
	hw := core.HWInfo{Cores: 2, Warps: 4, Threads: 8} // hp=64 -> eq1 = 64 for gws=4096
	hc, err := HillClimb(cost, 4096, hw)
	if err != nil {
		t.Fatal(err)
	}
	if hc.BestLWS != 64 {
		t.Errorf("hill climb best = %d", hc.BestLWS)
	}
	ex, err := Exhaustive(cost, 4096, hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(hc.Probes) >= len(ex.Probes) {
		t.Errorf("hill climb probed %d >= exhaustive %d", len(hc.Probes), len(ex.Probes))
	}
}

func TestHillClimbWalksDownhill(t *testing.T) {
	// Minimum at 8, start (eq1) at 128: must walk down by halving.
	cost := func(lws int) (uint64, error) {
		d := lws - 8
		if d < 0 {
			d = -d
		}
		return uint64(50 + d), nil
	}
	hw := core.HWInfo{Cores: 1, Warps: 2, Threads: 4} // hp=8, gws 1024 -> eq1=128
	res, err := HillClimb(cost, 1024, hw)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLWS != 8 {
		t.Errorf("best = %d, want 8", res.BestLWS)
	}
}

func TestTunerOnRealDevice(t *testing.T) {
	hw := core.HWInfo{Cores: 1, Warps: 2, Threads: 4}
	const gws = 512
	run := deviceRunner(t, hw, gws)
	res, err := Exhaustive(run, gws, hw)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCycles == 0 || len(res.Probes) < 8 {
		t.Fatalf("implausible search: %+v", res)
	}
	// The closed form must land within 15% of the searched optimum — the
	// paper's central claim restated as a tolerance.
	if gap := res.Eq1Gap(); gap > 1.15 {
		t.Errorf("Eq.1 gap = %.3f, want <= 1.15 (best lws=%d vs eq1 lws=%d)",
			gap, res.BestLWS, res.Eq1LWS)
	}
	// And searching must cost much more than the launch it optimizes.
	if res.Overhead() < 3 {
		t.Errorf("search overhead = %.1fx, expected substantial", res.Overhead())
	}
}

func TestRunnerErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	bad := func(int) (uint64, error) { return 0, boom }
	if _, err := Exhaustive(bad, 64, core.HWInfo{Cores: 1, Warps: 1, Threads: 1}); !errors.Is(err, boom) {
		t.Errorf("exhaustive error = %v", err)
	}
	if _, err := HillClimb(bad, 64, core.HWInfo{Cores: 1, Warps: 1, Threads: 1}); !errors.Is(err, boom) {
		t.Errorf("hill climb error = %v", err)
	}
}

// TestAcrossScheds pins the scheduler-axis search: the per-policy searches
// run independently, the best (policy, lws) point is identified across
// them, and errors and empty policy sets are refused.
func TestAcrossScheds(t *testing.T) {
	hw := core.HWInfo{Cores: 1, Warps: 2, Threads: 4}
	const gws = 64
	// Synthetic cost model: "fast" bottoms out lower than "slow", both
	// unimodal in lws around 8.
	mk := func(sched string) Runner {
		bias := uint64(0)
		if sched == "slow" {
			bias = 500
		}
		return func(lws int) (uint64, error) {
			d := lws - 8
			if d < 0 {
				d = -d
			}
			return 1000 + bias + uint64(d*100), nil
		}
	}
	search := func(run Runner) (*Result, error) { return Exhaustive(run, gws, hw) }
	probes, best, err := AcrossScheds([]string{"slow", "fast"}, mk, search)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 2 || probes[0].Sched != "slow" || probes[1].Sched != "fast" {
		t.Fatalf("probes = %+v", probes)
	}
	if best != 1 || probes[best].Res.BestLWS != 8 || probes[best].Res.BestCycles != 1000 {
		t.Errorf("best = %d (%+v), want the fast policy at lws=8", best, probes[best].Res)
	}

	if _, _, err := AcrossScheds(nil, mk, search); err == nil {
		t.Error("empty policy set accepted")
	}
	boom := errors.New("boom")
	bad := func(string) Runner { return func(int) (uint64, error) { return 0, boom } }
	if _, _, err := AcrossScheds([]string{"x"}, bad, search); !errors.Is(err, boom) {
		t.Errorf("runner error = %v, want propagation", err)
	}
}
