// Package kernels provides the paper's nine benchmark workloads as
// device-assembly kernels with host-side builders and CPU reference
// implementations: the standalone math kernels (vecadd, relu, saxpy, sgemm,
// nearest-neighbor distance, 5x5 Gaussian filter) and the combined ML
// layers (GCN aggregation, full GCN layer, and a ResNet20 conv3x3+ReLU
// layer on CIFAR-10-shaped tensors).
//
// Every builder allocates and initializes device buffers, binds kernel
// arguments and returns a Case whose Verify method checks device results
// against the CPU reference bit-for-bit (the simulator and the references
// evaluate the same float32 operations in the same order).
package kernels

import (
	"fmt"
	"math"

	"repro/internal/ocl"
)

// LaunchSpec is one NDRange enqueue of a case.
type LaunchSpec struct {
	Kernel *ocl.Kernel
	GWS    int
}

// Case is a runnable, verifiable workload instance bound to one device.
type Case struct {
	Name      string
	Launches  []LaunchSpec
	Verify    func(d *ocl.Device) error
	WorkItems int // total work items across launches
}

// Result aggregates the launches of one Case execution.
type Result struct {
	Case     string
	Cycles   uint64 // total, including per-launch dispatch overhead
	Launches []*ocl.LaunchResult
}

// Run enqueues every launch of the case in order. lws > 0 forces that
// local work size on each launch; lws = 0 delegates to the device's mapper
// per launch (each launch gets its own Eq. 1 decision, as in the paper's
// combined-layer experiments).
func (c *Case) Run(d *ocl.Device, lws int) (*Result, error) {
	res := &Result{Case: c.Name}
	for i, l := range c.Launches {
		lr, err := d.EnqueueNDRange(l.Kernel, l.GWS, lws)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s launch %d: %w", c.Name, i, err)
		}
		res.Cycles += lr.Cycles
		res.Launches = append(res.Launches, lr)
	}
	return res, nil
}

// RunVerified runs the case and checks the device output.
func (c *Case) RunVerified(d *ocl.Device, lws int) (*Result, error) {
	res, err := c.Run(d, lws)
	if err != nil {
		return nil, err
	}
	if err := c.Verify(d); err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", c.Name, err)
	}
	return res, nil
}

// fma32 matches the simulator's fused multiply-add (single rounding).
func fma32(a, b, c float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(c)))
}

// compareFloats checks device output against the reference exactly.
func compareFloats(name string, got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g != w && !(g != g && w != w) { // NaN == NaN for this purpose
			return fmt.Errorf("%s: element %d = %v, want %v", name, i, g, w)
		}
	}
	return nil
}

func mustKernel(src ocl.KernelSource) *ocl.Kernel {
	k, err := ocl.NewKernel(src)
	if err != nil {
		panic(err)
	}
	return k
}
