package kernels

import (
	"sync"
	"testing"

	"repro/internal/ocl"
	"repro/internal/sim"
)

// TestInputMemoSharesBuilds pins that repeated builds of the same (kernel,
// size, seed) share one generated input set, and that cached and uncached
// builds verify identically on the device.
func TestInputMemoSharesBuilds(t *testing.T) {
	ResetInputCache()

	run := func() {
		d, err := ocl.NewDevice(sim.DefaultConfig(1, 2, 4))
		if err != nil {
			t.Fatal(err)
		}
		c, err := BuildVecadd(d, 256, 42)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunVerified(d, 0); err != nil {
			t.Fatal(err)
		}
	}
	run()
	cold := InputCacheStats()
	if cold.Misses == 0 {
		t.Fatal("first build did not populate the input memo")
	}
	run()
	warm := InputCacheStats()
	if warm.Misses != cold.Misses {
		t.Errorf("second build regenerated inputs: %+v -> %+v", cold, warm)
	}
	if warm.Hits <= cold.Hits {
		t.Errorf("second build did not hit the memo: %+v -> %+v", cold, warm)
	}

	// Shared data, not equal copies: the two builds see the same backing
	// arrays.
	a := vecaddInputsFor(256, 42)
	b := vecaddInputsFor(256, 42)
	if &a.a[0] != &b.a[0] {
		t.Error("memo returned distinct input copies")
	}
	// Different seed or size is a different key.
	if c := vecaddInputsFor(256, 43); &c.a[0] == &a.a[0] {
		t.Error("seed not part of the memo key")
	}
	if c := vecaddInputsFor(128, 42); &c.a[0] == &a.a[0] {
		t.Error("size not part of the memo key")
	}
}

// TestInputMemoConcurrentSingleBuild pins the build-once behaviour at the
// kernels layer: many goroutines racing on one input key produce exactly
// one build. (The LRU bound and eviction mechanics are pinned in
// internal/cache.)
func TestInputMemoConcurrentSingleBuild(t *testing.T) {
	ResetInputCache()
	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := memoize("shared", func() any {
				mu.Lock()
				builds++
				mu.Unlock()
				return "value"
			})
			if v.(string) != "value" {
				t.Error("wrong value")
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
}

// TestGraphMemoSharedAcrossGCNKernels pins that both GCN registry builds
// share one generated graph per (scale, seed).
func TestGraphMemoSharedAcrossGCNKernels(t *testing.T) {
	g1 := graphFor(512, 3.9, 7)
	g2 := graphFor(512, 3.9, 7)
	if g1 != g2 {
		t.Error("graph memo returned distinct graphs for one key")
	}
	if g3 := graphFor(512, 3.9, 8); g3 == g1 {
		t.Error("seed not part of the graph key")
	}
}
