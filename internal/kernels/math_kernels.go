package kernels

import (
	"repro/internal/ocl"
	"repro/internal/workload"
)

// --- vecadd -----------------------------------------------------------

// VecaddSource computes C[i] = A[i] + B[i]. Args: A, B, C.
var VecaddSource = ocl.KernelSource{
	Name: "vecadd",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	slli t6, a0, 2
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fadd.s f2, f0, f1
	fsw  f2, 0(t5)
`,
}

// BuildVecadd prepares an n-element vector addition.
func BuildVecadd(d *ocl.Device, n int, seed int64) (*Case, error) {
	in := vecaddInputsFor(n, seed)
	a, b, want := in.a, in.b, in.want
	bufA, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufB, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufC, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufA, a); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufB, b); err != nil {
		return nil, err
	}
	k := mustKernel(VecaddSource)
	if err := k.SetArgs(bufA, bufB, bufC); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "vecadd",
		Launches:  []LaunchSpec{{Kernel: k, GWS: n}},
		WorkItems: n,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufC, n)
			if err != nil {
				return err
			}
			return compareFloats("vecadd", got, want)
		},
	}, nil
}

// RefVecadd is the CPU reference.
func RefVecadd(a, b []float32) []float32 {
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// --- relu -------------------------------------------------------------

// ReluSource computes OUT[i] = max(IN[i], 0). Args: IN, OUT.
var ReluSource = ocl.KernelSource{
	Name: "relu",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	slli t5, a0, 2
	add  t3, t3, t5
	add  t4, t4, t5
	flw  f0, 0(t3)
	fmv.w.x f1, zero
	fmax.s f2, f0, f1
	fsw  f2, 0(t4)
`,
}

// BuildRelu prepares an n-element ReLU.
func BuildRelu(d *ocl.Device, n int, seed int64) (*Case, error) {
	mi := reluInputsFor(n, seed)
	in, want := mi.in, mi.want
	bufI, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufO, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufI, in); err != nil {
		return nil, err
	}
	k := mustKernel(ReluSource)
	if err := k.SetArgs(bufI, bufO); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "relu",
		Launches:  []LaunchSpec{{Kernel: k, GWS: n}},
		WorkItems: n,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufO, n)
			if err != nil {
				return err
			}
			return compareFloats("relu", got, want)
		},
	}, nil
}

// RefRelu is the CPU reference.
func RefRelu(in []float32) []float32 {
	out := make([]float32, len(in))
	for i, v := range in {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// --- saxpy ------------------------------------------------------------

// SaxpySource computes Y[i] = a*X[i] + Y[i]. Args: X, Y, a.
var SaxpySource = ocl.KernelSource{
	Name: "saxpy",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	flw  f3, 8(a1)
	slli t5, a0, 2
	add  t3, t3, t5
	add  t4, t4, t5
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fmadd.s f2, f3, f0, f1
	fsw  f2, 0(t4)
`,
}

// BuildSaxpy prepares an n-element saxpy with a = 2.5.
func BuildSaxpy(d *ocl.Device, n int, seed int64) (*Case, error) {
	const alpha = float32(2.5)
	in := saxpyInputsFor(alpha, n, seed)
	x, y, want := in.x, in.y, in.want
	bufX, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufY, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufX, x); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufY, y); err != nil {
		return nil, err
	}
	k := mustKernel(SaxpySource)
	if err := k.SetArgs(bufX, bufY, alpha); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "saxpy",
		Launches:  []LaunchSpec{{Kernel: k, GWS: n}},
		WorkItems: n,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufY, n)
			if err != nil {
				return err
			}
			return compareFloats("saxpy", got, want)
		},
	}, nil
}

// RefSaxpy is the CPU reference (fused multiply-add, like the device).
func RefSaxpy(alpha float32, x, y []float32) []float32 {
	out := make([]float32, len(x))
	for i := range x {
		out[i] = fma32(alpha, x[i], y[i])
	}
	return out
}

// --- sgemm ------------------------------------------------------------

// SgemmSource computes C[MxN] = A[MxK] x B[KxN], one work item per output
// element (gid = row*N + col). Args: A, B, C. Defines: SG_N, SG_K.
var SgemmSource = ocl.KernelSource{
	Name: "sgemm",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	li   t6, SG_N
	divu a2, a0, t6      # row
	remu a3, a0, t6      # col
	li   a4, SG_K
	li   t0, SG_K*4
	mul  t1, a2, t0
	add  t3, t3, t1      # &A[row][0]
	slli t1, a3, 2
	add  t4, t4, t1      # &B[0][col]
	li   t2, SG_N*4      # B row stride
	fmv.w.x f0, zero
	li   a5, 0
__sg_loop:
	flw  f1, 0(t3)
	flw  f2, 0(t4)
	fmadd.s f0, f1, f2, f0
	addi t3, t3, 4
	add  t4, t4, t2
	addi a5, a5, 1
	blt  a5, a4, __sg_loop
	slli t1, a0, 2
	add  t5, t5, t1
	fsw  f0, 0(t5)
`,
}

// BuildSgemm prepares C[m x n] = A[m x k] x B[k x n] (the paper's
// x:256 y:16 z:144 corresponds to m=256, n=16, k=144).
func BuildSgemm(d *ocl.Device, m, n, k int, seed int64) (*Case, error) {
	in := sgemmInputsFor(m, n, k, seed)
	a, b, want := in.a, in.b, in.want
	bufA, err := d.AllocFloat32(m * k)
	if err != nil {
		return nil, err
	}
	bufB, err := d.AllocFloat32(k * n)
	if err != nil {
		return nil, err
	}
	bufC, err := d.AllocFloat32(m * n)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufA, a); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufB, b); err != nil {
		return nil, err
	}
	src := SgemmSource
	src.Defs = map[string]int64{"SG_N": int64(n), "SG_K": int64(k)}
	kn := mustKernel(src)
	if err := kn.SetArgs(bufA, bufB, bufC); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "sgemm",
		Launches:  []LaunchSpec{{Kernel: kn, GWS: m * n}},
		WorkItems: m * n,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufC, m*n)
			if err != nil {
				return err
			}
			return compareFloats("sgemm", got, want)
		},
	}, nil
}

// RefSgemm is the CPU reference (fused multiply-adds in k order).
func RefSgemm(a, b []float32, m, n, k int) []float32 {
	out := make([]float32, m*n)
	for r := 0; r < m; r++ {
		for c := 0; c < n; c++ {
			var acc float32
			for i := 0; i < k; i++ {
				acc = fma32(a[r*k+i], b[i*n+c], acc)
			}
			out[r*n+c] = acc
		}
	}
	return out
}

// --- knn --------------------------------------------------------------

// KNNSource computes the Euclidean distance of every point to a query
// (the Rodinia nn kernel). Args: LAT, LNG, DIST, qlat, qlng.
var KNNSource = ocl.KernelSource{
	Name: "knn",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	flw  f3, 12(a1)
	flw  f4, 16(a1)
	slli t6, a0, 2
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fsub.s f0, f0, f3
	fsub.s f1, f1, f4
	fmul.s f0, f0, f0
	fmadd.s f0, f1, f1, f0
	fsqrt.s f0, f0
	fsw  f0, 0(t5)
`,
}

// BuildKNN prepares an n-point nearest-neighbor distance computation.
func BuildKNN(d *ocl.Device, n int, seed int64) (*Case, error) {
	const qlat, qlng = float32(30.5), float32(-120.25)
	in := knnInputsFor(n, qlat, qlng, seed)
	pts, want := in.pts, in.want
	bufLat, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufLng, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufDist, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufLat, pts.Lat); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufLng, pts.Lng); err != nil {
		return nil, err
	}
	k := mustKernel(KNNSource)
	if err := k.SetArgs(bufLat, bufLng, bufDist, qlat, qlng); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "knn",
		Launches:  []LaunchSpec{{Kernel: k, GWS: n}},
		WorkItems: n,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufDist, n)
			if err != nil {
				return err
			}
			return compareFloats("knn", got, want)
		},
	}, nil
}

// RefKNN is the CPU reference.
func RefKNN(p *workload.Points, qlat, qlng float32) []float32 {
	out := make([]float32, len(p.Lat))
	for i := range out {
		dlat := p.Lat[i] - qlat
		dlng := p.Lng[i] - qlng
		s := fma32(dlng, dlng, dlat*dlat)
		out[i] = sqrt32(s)
	}
	return out
}

// --- gaussian filter ----------------------------------------------------

// GaussSource applies a 5x5 convolution over a zero-padded image (pad=2).
// One work item per interior pixel (gid = y*W + x). Args: IN (padded),
// OUT, WEIGHTS (25 floats). Defines: GF_W (interior width).
var GaussSource = ocl.KernelSource{
	Name: "gauss",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	li   t6, GF_W
	divu a2, a0, t6      # y
	remu a3, a0, t6      # x
	li   t0, (GF_W+4)*4  # padded row stride in bytes
	mul  t1, a2, t0
	slli t2, a3, 2
	add  t1, t1, t2
	add  t3, t3, t1      # window top-left in padded image
	fmv.w.x f0, zero
	li   a4, 0
__gf_row:
	flw  f1, 0(t3)
	flw  f2, 0(t5)
	fmadd.s f0, f1, f2, f0
	flw  f1, 4(t3)
	flw  f2, 4(t5)
	fmadd.s f0, f1, f2, f0
	flw  f1, 8(t3)
	flw  f2, 8(t5)
	fmadd.s f0, f1, f2, f0
	flw  f1, 12(t3)
	flw  f2, 12(t5)
	fmadd.s f0, f1, f2, f0
	flw  f1, 16(t3)
	flw  f2, 16(t5)
	fmadd.s f0, f1, f2, f0
	add  t3, t3, t0
	addi t5, t5, 20
	addi a4, a4, 1
	li   t1, 5
	blt  a4, t1, __gf_row
	slli t1, a0, 2
	add  t4, t4, t1
	fsw  f0, 0(t4)
`,
}

// BuildGauss prepares a w x h Gaussian blur.
func BuildGauss(d *ocl.Device, w, h int, seed int64) (*Case, error) {
	in := gaussInputsFor(w, h, seed)
	im, weights, want := in.im, in.weights, in.want
	bufIn, err := d.AllocFloat32(len(im.Data))
	if err != nil {
		return nil, err
	}
	bufOut, err := d.AllocFloat32(w * h)
	if err != nil {
		return nil, err
	}
	bufW, err := d.AllocFloat32(25)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufIn, im.Data); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufW, weights); err != nil {
		return nil, err
	}
	src := GaussSource
	src.Defs = map[string]int64{"GF_W": int64(w)}
	k := mustKernel(src)
	if err := k.SetArgs(bufIn, bufOut, bufW); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "gauss",
		Launches:  []LaunchSpec{{Kernel: k, GWS: w * h}},
		WorkItems: w * h,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufOut, w*h)
			if err != nil {
				return err
			}
			return compareFloats("gauss", got, want)
		},
	}, nil
}

// RefGauss is the CPU reference, accumulating in the device's order
// (window rows top to bottom, left to right).
func RefGauss(im *workload.PaddedImage, weights []float32) []float32 {
	out := make([]float32, im.W*im.H)
	stride := im.Stride()
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var acc float32
			for r := 0; r < 5; r++ {
				base := (y+r)*stride + x
				for c := 0; c < 5; c++ {
					acc = fma32(im.Data[base+c], weights[r*5+c], acc)
				}
			}
			out[y*im.W+x] = acc
		}
	}
	return out
}
