package kernels

import (
	"testing"

	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/workload"
)

func dev(t *testing.T, c, w, th int) *ocl.Device {
	t.Helper()
	d, err := ocl.NewDevice(sim.DefaultConfig(c, w, th))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// verifyOn builds the case via build and runs it verified at several lws
// values on several configs — the core functional matrix of the suite.
func verifyOn(t *testing.T, name string, build func(d *ocl.Device) (*Case, error)) {
	t.Helper()
	configs := [][3]int{{1, 1, 1}, {1, 2, 4}, {2, 2, 2}, {2, 4, 8}}
	for _, cfg := range configs {
		for _, lws := range []int{0, 1, 7, 32} {
			d := dev(t, cfg[0], cfg[1], cfg[2])
			c, err := build(d)
			if err != nil {
				t.Fatalf("%s build on %dc%dw%dt: %v", name, cfg[0], cfg[1], cfg[2], err)
			}
			if _, err := c.RunVerified(d, lws); err != nil {
				t.Fatalf("%s on %dc%dw%dt lws=%d: %v", name, cfg[0], cfg[1], cfg[2], lws, err)
			}
		}
	}
}

func TestVecaddVerifies(t *testing.T) {
	verifyOn(t, "vecadd", func(d *ocl.Device) (*Case, error) { return BuildVecadd(d, 130, 1) })
}

func TestReluVerifies(t *testing.T) {
	verifyOn(t, "relu", func(d *ocl.Device) (*Case, error) { return BuildRelu(d, 123, 2) })
}

func TestSaxpyVerifies(t *testing.T) {
	verifyOn(t, "saxpy", func(d *ocl.Device) (*Case, error) { return BuildSaxpy(d, 100, 3) })
}

func TestSgemmVerifies(t *testing.T) {
	verifyOn(t, "sgemm", func(d *ocl.Device) (*Case, error) { return BuildSgemm(d, 12, 8, 10, 4) })
}

func TestKNNVerifies(t *testing.T) {
	verifyOn(t, "knn", func(d *ocl.Device) (*Case, error) { return BuildKNN(d, 150, 5) })
}

func TestGaussVerifies(t *testing.T) {
	verifyOn(t, "gauss", func(d *ocl.Device) (*Case, error) { return BuildGauss(d, 12, 9, 6) })
}

func TestGCNAggrVerifies(t *testing.T) {
	verifyOn(t, "gcn_aggr", func(d *ocl.Device) (*Case, error) {
		g := workload.NewGraph(40, 3.5, 7)
		return BuildGCNAggr(d, g, 8, 8)
	})
}

func TestGCNLayerVerifies(t *testing.T) {
	verifyOn(t, "gcn_layer", func(d *ocl.Device) (*Case, error) {
		g := workload.NewGraph(30, 3.5, 9)
		return BuildGCNLayer(d, g, 8, 10)
	})
}

func TestConv3x3Verifies(t *testing.T) {
	verifyOn(t, "conv3x3", func(d *ocl.Device) (*Case, error) { return BuildConv3x3(d, 4, 10, 11) })
}

func TestPaperSizesVerifyOnOneConfig(t *testing.T) {
	// Full paper-size inputs are heavy; verify each once on a mid config.
	if testing.Short() {
		t.Skip("paper-size verification skipped in -short mode")
	}
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d := dev(t, 2, 4, 8)
			c, err := spec.Build(d, Params{Scale: 0.25, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunVerified(d, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRegistryShape(t *testing.T) {
	specs := Registry()
	if len(specs) != 9 {
		t.Fatalf("registry has %d kernels, want 9", len(specs))
	}
	names := map[string]bool{}
	math, ml := 0, 0
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate kernel %q", s.Name)
		}
		names[s.Name] = true
		switch s.Group {
		case GroupMath:
			math++
		case GroupML:
			ml++
		default:
			t.Errorf("kernel %q has no group", s.Name)
		}
		if s.PaperSize == "" {
			t.Errorf("kernel %q missing paper size", s.Name)
		}
	}
	if math != 6 || ml != 3 {
		t.Errorf("groups: %d math + %d ml, want 6+3", math, ml)
	}
	if _, err := ByName("vecadd"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if len(Names()) != 9 {
		t.Error("Names() wrong length")
	}
}

func TestScaleControlsWorkload(t *testing.T) {
	d1 := dev(t, 1, 2, 4)
	spec, _ := ByName("vecadd")
	small, err := spec.Build(d1, Params{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2 := dev(t, 1, 2, 4)
	big, err := spec.Build(d2, Params{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.WorkItems*5 > big.WorkItems {
		t.Errorf("scale had no effect: %d vs %d", small.WorkItems, big.WorkItems)
	}
}

func TestMultiLaunchCaseAccumulatesCycles(t *testing.T) {
	d := dev(t, 1, 2, 4)
	g := workload.NewGraph(24, 3, 3)
	c, err := BuildGCNLayer(d, g, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunVerified(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Launches) != 2 {
		t.Fatalf("launches = %d, want 2", len(res.Launches))
	}
	if res.Cycles != res.Launches[0].Cycles+res.Launches[1].Cycles {
		t.Error("cycles not accumulated over launches")
	}
}

func TestReferencesAgainstNaiveFormulas(t *testing.T) {
	// Spot-check the CPU references against simple formulas on tiny inputs.
	a := []float32{1, 2, 3}
	b := []float32{10, 20, 30}
	v := RefVecadd(a, b)
	if v[0] != 11 || v[2] != 33 {
		t.Errorf("RefVecadd = %v", v)
	}
	r := RefRelu([]float32{-1, 0, 2})
	if r[0] != 0 || r[1] != 0 || r[2] != 2 {
		t.Errorf("RefRelu = %v", r)
	}
	s := RefSaxpy(2, []float32{1, 2}, []float32{3, 4})
	if s[0] != 5 || s[1] != 8 {
		t.Errorf("RefSaxpy = %v", s)
	}
	// 2x2 identity-ish gemm.
	g := RefSgemm([]float32{1, 0, 0, 1}, []float32{5, 6, 7, 8}, 2, 2, 2)
	want := []float32{5, 6, 7, 8}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("RefSgemm[%d] = %v", i, g[i])
		}
	}
}

func TestGraphValidateOnGenerated(t *testing.T) {
	g := workload.NewCora(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != workload.CoraNodes {
		t.Errorf("nodes = %d", g.N)
	}
	// Self-loops guarantee degree >= 1.
	for n := 0; n < g.N; n++ {
		if g.Degree(n) < 1 {
			t.Fatalf("node %d has degree 0", n)
		}
	}
}
