package kernels

import (
	"fmt"
	"math"

	"repro/internal/ocl"
	"repro/internal/workload"
)

// Params configures a registry build.
type Params struct {
	// Scale multiplies each workload's paper size (1.0 = paper scale).
	// Work scales roughly linearly in Scale for every kernel.
	Scale float64
	// Seed drives all input generation.
	Seed int64
}

// Group labels the kernel families of Figure 2.
type Group string

const (
	GroupMath Group = "math" // standalone math kernels
	GroupML   Group = "ml"   // DNN / GCN layer workloads
)

// Spec is one registered benchmark kernel.
type Spec struct {
	Name  string
	Group Group
	// PaperSize describes the workload dimensions the paper reports.
	PaperSize string
	Build     func(d *ocl.Device, p Params) (*Case, error)
}

func scaled(base int, s float64, min int) int {
	if s <= 0 {
		s = 1
	}
	n := int(math.Round(float64(base) * s))
	if n < min {
		n = min
	}
	return n
}

func scaledSqrt(base int, s float64, min int) int {
	if s <= 0 {
		s = 1
	}
	n := int(math.Round(float64(base) * math.Sqrt(s)))
	if n < min {
		n = min
	}
	return n
}

// Registry returns the paper's nine benchmark kernels. Build functions
// honor Params.Scale so sweeps can trade fidelity for wall-clock time;
// Scale=1 reproduces the sizes of Figure 2.
func Registry() []Spec {
	return []Spec{
		{
			Name: "vecadd", Group: GroupMath, PaperSize: "len 4096",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildVecadd(d, scaled(4096, p.Scale, 16), p.Seed)
			},
		},
		{
			Name: "relu", Group: GroupMath, PaperSize: "len 4096",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildRelu(d, scaled(4096, p.Scale, 16), p.Seed)
			},
		},
		{
			Name: "saxpy", Group: GroupMath, PaperSize: "len 4096",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildSaxpy(d, scaled(4096, p.Scale, 16), p.Seed)
			},
		},
		{
			Name: "sgemm", Group: GroupMath, PaperSize: "x:256 y:16 z:144",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildSgemm(d, scaled(256, p.Scale, 8), 16, 144, p.Seed)
			},
		},
		{
			Name: "knn", Group: GroupMath, PaperSize: "42764 pts",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildKNN(d, scaled(workload.KNNPoints, p.Scale, 64), p.Seed)
			},
		},
		{
			Name: "gauss", Group: GroupMath, PaperSize: "x:360 y:360",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				side := scaledSqrt(360, p.Scale, 16)
				return BuildGauss(d, side, side, p.Seed)
			},
		},
		{
			Name: "gcn_aggr", Group: GroupML, PaperSize: "cora hs:16",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				g := graphFor(scaled(workload.CoraNodes, p.Scale, 32), workload.CoraAvgDeg, p.Seed)
				return BuildGCNAggr(d, g, workload.CoraHidden, p.Seed+100)
			},
		},
		{
			Name: "gcn_layer", Group: GroupML, PaperSize: "cora hs:16",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				g := graphFor(scaled(workload.CoraNodes, p.Scale, 32), workload.CoraAvgDeg, p.Seed)
				return BuildGCNLayer(d, g, workload.CoraHidden, p.Seed+100)
			},
		},
		{
			Name: "resnet20_layer", Group: GroupML, PaperSize: "CIFAR-10, 1 layer, ch 16",
			Build: func(d *ocl.Device, p Params) (*Case, error) {
				return BuildConv3x3(d, 16, scaledSqrt(32, p.Scale, 8), p.Seed)
			},
		},
	}
}

// ByName looks a spec up in the registry.
func ByName(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Names lists the registry in order.
func Names() []string {
	specs := Registry()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
