package kernels

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ocl"
	"repro/internal/workload"
)

// Input memoization: a campaign runs the same kernel at the same (Scale,
// Seed) once per (configuration, mapper) — 450 x 3 times for the Figure 2
// grid — and every one of those runs used to regenerate identical host
// inputs and CPU reference outputs. The builders below memoize the pure
// host-side part of each build (generated inputs + reference results)
// behind a bounded LRU keyed by the generation parameters, so one input
// build is shared by every run of that kernel. Cached values are shared
// across goroutines and must be treated as read-only; device uploads copy
// them into device memory, and references are only compared against.

// inputMemo bounds resident workload builds. One campaign touches ~a dozen
// keys (one per kernel plus the shared graph); 64 leaves room for several
// concurrent scales/seeds before eviction.
var inputMemo = cache.NewLRU[string, any](64)

// memoize shares one build per key across the process; input builds cannot
// fail (generators are total), so the error channel is unused.
func memoize(key string, build func() any) any {
	v, _ := inputMemo.GetOrBuild(key, func() (any, error) { return build(), nil })
	return v
}

// InputCacheStats returns process-wide input-memo hit/miss counters.
func InputCacheStats() ocl.CacheCounters {
	h, m := inputMemo.Stats()
	return ocl.CacheCounters{Hits: h, Misses: m}
}

// ResetInputCache drops every memoized input build and zeroes the counters
// (cold-path benchmarks and tests).
func ResetInputCache() { inputMemo.Reset() }

// --- memoized per-kernel input builds ---------------------------------

type vecaddInputs struct{ a, b, want []float32 }

func vecaddInputsFor(n int, seed int64) *vecaddInputs {
	return memoize(fmt.Sprintf("vecadd/%d/%d", n, seed), func() any {
		a := workload.Floats(n, seed)
		b := workload.Floats(n, seed+1)
		return &vecaddInputs{a: a, b: b, want: RefVecadd(a, b)}
	}).(*vecaddInputs)
}

type reluInputs struct{ in, want []float32 }

func reluInputsFor(n int, seed int64) *reluInputs {
	return memoize(fmt.Sprintf("relu/%d/%d", n, seed), func() any {
		in := workload.Floats(n, seed)
		return &reluInputs{in: in, want: RefRelu(in)}
	}).(*reluInputs)
}

type saxpyInputs struct{ x, y, want []float32 }

func saxpyInputsFor(alpha float32, n int, seed int64) *saxpyInputs {
	return memoize(fmt.Sprintf("saxpy/%v/%d/%d", alpha, n, seed), func() any {
		x := workload.Floats(n, seed)
		y := workload.Floats(n, seed+1)
		return &saxpyInputs{x: x, y: y, want: RefSaxpy(alpha, x, y)}
	}).(*saxpyInputs)
}

type sgemmInputs struct{ a, b, want []float32 }

func sgemmInputsFor(m, n, k int, seed int64) *sgemmInputs {
	return memoize(fmt.Sprintf("sgemm/%d/%d/%d/%d", m, n, k, seed), func() any {
		a := workload.Floats(m*k, seed)
		b := workload.Floats(k*n, seed+1)
		return &sgemmInputs{a: a, b: b, want: RefSgemm(a, b, m, n, k)}
	}).(*sgemmInputs)
}

type knnInputs struct {
	pts  *workload.Points
	want []float32
}

func knnInputsFor(n int, qlat, qlng float32, seed int64) *knnInputs {
	return memoize(fmt.Sprintf("knn/%d/%v/%v/%d", n, qlat, qlng, seed), func() any {
		pts := workload.NewPoints(n, seed)
		return &knnInputs{pts: pts, want: RefKNN(pts, qlat, qlng)}
	}).(*knnInputs)
}

type gaussInputs struct {
	im      *workload.PaddedImage
	weights []float32
	want    []float32
}

func gaussInputsFor(w, h int, seed int64) *gaussInputs {
	return memoize(fmt.Sprintf("gauss/%d/%d/%d", w, h, seed), func() any {
		im := workload.NewPaddedImage(w, h, 2, seed)
		weights := workload.Gaussian5x5()
		return &gaussInputs{im: im, weights: weights, want: RefGauss(im, weights)}
	}).(*gaussInputs)
}

// graphFor memoizes synthetic graph generation (shared by both GCN kernels
// of a campaign, whose registry builds use the same (n, avgDeg, seed)).
func graphFor(n int, avgDeg float64, seed int64) *workload.Graph {
	return memoize(fmt.Sprintf("graph/%d/%v/%d", n, avgDeg, seed), func() any {
		return workload.NewGraph(n, avgDeg, seed)
	}).(*workload.Graph)
}

type gcnAggrInputs struct{ x, want []float32 }

func gcnAggrInputsFor(g *workload.Graph, hs int, seed int64) *gcnAggrInputs {
	return memoize(fmt.Sprintf("gcn_aggr/%x/%d/%d", g.Fingerprint(), hs, seed), func() any {
		x := workload.Floats(g.N*hs, seed)
		return &gcnAggrInputs{x: x, want: RefGCNAggr(g, x, hs)}
	}).(*gcnAggrInputs)
}

type gcnLayerInputs struct{ x, w, want []float32 }

func gcnLayerInputsFor(g *workload.Graph, hs int, seed int64) *gcnLayerInputs {
	return memoize(fmt.Sprintf("gcn_layer/%x/%d/%d", g.Fingerprint(), hs, seed), func() any {
		x := workload.Floats(g.N*hs, seed)
		w := workload.Floats(hs*hs, seed+1)
		tRef := RefSgemm(x, w, g.N, hs, hs)
		return &gcnLayerInputs{x: x, w: w, want: RefGCNAggr(g, tRef, hs)}
	}).(*gcnLayerInputs)
}

type convInputs struct {
	in            *workload.PaddedTensor
	weights, bias []float32
	want          []float32
}

func convInputsFor(ch, w int, seed int64) *convInputs {
	return memoize(fmt.Sprintf("conv3x3/%d/%d/%d", ch, w, seed), func() any {
		in := workload.NewPaddedTensor(ch, w, w, 1, seed)
		weights := workload.Floats(ch*ch*9, seed+1)
		bias := workload.Floats(ch, seed+2)
		return &convInputs{in: in, weights: weights, bias: bias, want: RefConv3x3(in, weights, bias, ch)}
	}).(*convInputs)
}

type reduceInputs struct {
	in   []float32
	want float32
}

func reduceInputsFor(n, parts int, seed int64) *reduceInputs {
	return memoize(fmt.Sprintf("reduce/%d/%d/%d", n, parts, seed), func() any {
		in := workload.Floats(n, seed)
		return &reduceInputs{in: in, want: RefReduceSum(in, parts)}
	}).(*reduceInputs)
}

type transposeInputs struct{ in, want []float32 }

func transposeInputsFor(r, c int, seed int64) *transposeInputs {
	return memoize(fmt.Sprintf("transpose/%d/%d/%d", r, c, seed), func() any {
		in := workload.Floats(r*c, seed)
		return &transposeInputs{in: in, want: RefTranspose(in, r, c)}
	}).(*transposeInputs)
}
