package kernels

import (
	"fmt"

	"repro/internal/ocl"
)

// Extension workloads beyond the paper's nine benchmarks. They exercise
// runtime behaviours the paper defers to future work: multi-launch
// dependency chains whose stages have very different gws (reduction), and
// transposed access patterns that stress the coalescer (transpose).

// ReducePartialSource computes one partial sum per work item over a
// strided segment: PART[i] = sum_{k} IN[i + k*NPART] for i + k*NPART < N.
// Args: IN, PART. Defines: RD_N (input length), RD_PART (partial count).
// The per-lane loop bound varies only in the tail, handled with the
// ballot/split idiom.
var ReducePartialSource = ocl.KernelSource{
	Name: "reduce_partial",
	Body: `
	lw   t3, 0(a1)       # in
	lw   t4, 4(a1)       # partials
	li   t5, RD_N
	li   t6, RD_PART
	fmv.w.x f0, zero
	mv   a2, a0          # k-th element index = gid + k*NPART
__rd_loop:
	slt  t0, a2, t5
	vx_ballot t1, t0
	beqz t1, __rd_done
	vx_split t0
	beqz t0, __rd_skip
	slli t1, a2, 2
	add  t1, t1, t3
	flw  f1, 0(t1)
	fadd.s f0, f0, f1
	add  a2, a2, t6
__rd_skip:
	vx_join
	j __rd_loop
__rd_done:
	slli t1, a0, 2
	add  t4, t4, t1
	fsw  f0, 0(t4)
`,
}

// BuildReduceSum prepares a two-launch sum reduction of n floats: launch 1
// computes `parts` strided partial sums; launch 2 reduces the partials
// with a single work item. Each launch gets its own Eq. 1 decision — the
// second launch always lands in the hp>gws clamp, exercising the paper's
// lws=1 edge case.
func BuildReduceSum(d *ocl.Device, n, parts int, seed int64) (*Case, error) {
	if parts < 1 || parts > n {
		return nil, fmt.Errorf("kernels: reduce: parts %d out of range for n=%d", parts, n)
	}
	mi := reduceInputsFor(n, parts, seed)
	in, want := mi.in, mi.want
	bufIn, err := d.AllocFloat32(n)
	if err != nil {
		return nil, err
	}
	bufPart, err := d.AllocFloat32(parts)
	if err != nil {
		return nil, err
	}
	bufOut, err := d.AllocFloat32(1)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufIn, in); err != nil {
		return nil, err
	}

	src1 := ReducePartialSource
	src1.Defs = map[string]int64{"RD_N": int64(n), "RD_PART": int64(parts)}
	k1 := mustKernel(src1)
	if err := k1.SetArgs(bufIn, bufPart); err != nil {
		return nil, err
	}

	src2 := ReducePartialSource
	src2.Name = "reduce_final"
	src2.Defs = map[string]int64{"RD_N": int64(parts), "RD_PART": 1}
	k2 := mustKernel(src2)
	if err := k2.SetArgs(bufPart, bufOut); err != nil {
		return nil, err
	}

	return &Case{
		Name: "reduce_sum",
		Launches: []LaunchSpec{
			{Kernel: k1, GWS: parts},
			{Kernel: k2, GWS: 1},
		},
		WorkItems: parts + 1,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufOut, 1)
			if err != nil {
				return err
			}
			return compareFloats("reduce_sum", got, []float32{want})
		},
	}, nil
}

// RefReduceSum mirrors the device's two-phase summation order exactly.
func RefReduceSum(in []float32, parts int) float32 {
	partials := make([]float32, parts)
	for i := 0; i < parts; i++ {
		var acc float32
		for k := i; k < len(in); k += parts {
			acc += in[k]
		}
		partials[i] = acc
	}
	var total float32
	for _, p := range partials {
		total += p
	}
	return total
}

// TransposeSource computes OUT[x][y] = IN[y][x] for an R x C matrix, one
// work item per element (gid = y*C + x). Reads are row-contiguous
// (coalesced); writes are column-strided (uncoalesced) — the classic
// memory-system stress. Args: IN, OUT. Defines: TR_R, TR_C.
var TransposeSource = ocl.KernelSource{
	Name: "transpose",
	Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	li   t5, TR_C
	divu a2, a0, t5      # y
	remu a3, a0, t5      # x
	slli t1, a0, 2
	add  t3, t3, t1      # &in[y][x]
	flw  f0, 0(t3)
	li   t5, TR_R
	mul  t1, a3, t5      # x*R
	add  t1, t1, a2      # + y
	slli t1, t1, 2
	add  t4, t4, t1      # &out[x][y]
	fsw  f0, 0(t4)
`,
}

// BuildTranspose prepares an r x c float matrix transpose.
func BuildTranspose(d *ocl.Device, r, c int, seed int64) (*Case, error) {
	mi := transposeInputsFor(r, c, seed)
	in, want := mi.in, mi.want
	bufIn, err := d.AllocFloat32(r * c)
	if err != nil {
		return nil, err
	}
	bufOut, err := d.AllocFloat32(r * c)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufIn, in); err != nil {
		return nil, err
	}
	src := TransposeSource
	src.Defs = map[string]int64{"TR_R": int64(r), "TR_C": int64(c)}
	k := mustKernel(src)
	if err := k.SetArgs(bufIn, bufOut); err != nil {
		return nil, err
	}
	return &Case{
		Name:      "transpose",
		Launches:  []LaunchSpec{{Kernel: k, GWS: r * c}},
		WorkItems: r * c,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufOut, r*c)
			if err != nil {
				return err
			}
			return compareFloats("transpose", got, want)
		},
	}, nil
}

// RefTranspose is the CPU reference.
func RefTranspose(in []float32, r, c int) []float32 {
	out := make([]float32, r*c)
	for y := 0; y < r; y++ {
		for x := 0; x < c; x++ {
			out[x*r+y] = in[y*c+x]
		}
	}
	return out
}
