package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ocl"
)

func TestReduceSumVerifies(t *testing.T) {
	verifyOn(t, "reduce_sum", func(d *ocl.Device) (*Case, error) {
		return BuildReduceSum(d, 300, 16, 5)
	})
}

func TestReduceSumEdgeShapes(t *testing.T) {
	cases := []struct{ n, parts int }{
		{1, 1},    // single element
		{7, 7},    // one element per partial
		{100, 1},  // fully sequential
		{64, 13},  // non-dividing stride
		{129, 32}, // tail divergence in the strided loop
	}
	for _, c := range cases {
		d := dev(t, 1, 2, 4)
		cs, err := BuildReduceSum(d, c.n, c.parts, 9)
		if err != nil {
			t.Fatalf("n=%d parts=%d: %v", c.n, c.parts, err)
		}
		if _, err := cs.RunVerified(d, 0); err != nil {
			t.Fatalf("n=%d parts=%d: %v", c.n, c.parts, err)
		}
	}
	d := dev(t, 1, 1, 1)
	if _, err := BuildReduceSum(d, 10, 0, 1); err == nil {
		t.Error("parts=0 accepted")
	}
	if _, err := BuildReduceSum(d, 10, 11, 1); err == nil {
		t.Error("parts>n accepted")
	}
}

func TestReduceSumSecondLaunchHitsClampRegime(t *testing.T) {
	// The final reduction has gws=1: Eq. 1 must clamp to lws=1 and the
	// launch lands in the exact regime with a single slot.
	d := dev(t, 2, 4, 8)
	c, err := BuildReduceSum(d, 512, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunVerified(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Launches[1]
	if final.LWS != 1 || final.Regime != core.RegimeExact || final.WarpsActivated != 1 {
		t.Errorf("final launch = lws=%d %v warps=%d", final.LWS, final.Regime, final.WarpsActivated)
	}
}

func TestTransposeVerifies(t *testing.T) {
	verifyOn(t, "transpose", func(d *ocl.Device) (*Case, error) {
		return BuildTranspose(d, 24, 17, 6)
	})
}

func TestTransposeInvolution(t *testing.T) {
	// Transposing twice must restore the input.
	const r, c = 12, 20
	in := RefTranspose(RefTranspose(workloadFloats(r*c), r, c), c, r)
	for i, v := range workloadFloats(r * c) {
		if in[i] != v {
			t.Fatalf("reference involution broken at %d", i)
		}
	}
}

func workloadFloats(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i%97) - 48
	}
	return out
}

func TestTransposeCoalescingAsymmetry(t *testing.T) {
	// Reads are contiguous, writes strided: uncoalesced line requests must
	// exceed the minimum (one per warp access) substantially on a wide
	// warp, and NoCoalesce must not change correctness.
	d := dev(t, 1, 2, 8)
	c, err := BuildTranspose(d, 64, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunVerified(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Launches[0]
	// 4096 items over 8-lane warps: 512 read accesses + 512 writes. Reads
	// coalesce (~2 lines each at lws=256... conservatively < writes).
	if l.Stats.LineRequests <= l.Stats.Loads {
		t.Errorf("transpose produced %d line requests for %d loads+%d stores — no stride visible",
			l.Stats.LineRequests, l.Stats.Loads, l.Stats.Stores)
	}
}
