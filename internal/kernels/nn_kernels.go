package kernels

import (
	"math"

	"repro/internal/ocl"
	"repro/internal/workload"
)

func sqrt32(f float32) float32 { return float32(math.Sqrt(float64(f))) }

// --- GCN aggregation -----------------------------------------------------

// GCNAggrSource computes mean-neighbor aggregation over a CSR graph:
// OUT[n][f] = (1/deg(n)) * sum_{m in N(n)} IN[m][f], one work item per
// (node, feature) pair (gid = node*HS + f). The per-node edge loop is
// divergent across lanes and uses the ballot/split/join idiom.
// Args: ROWPTR, COL, XIN, XOUT. Defines: GA_HS.
var GCNAggrSource = ocl.KernelSource{
	Name: "gcn_aggr",
	Body: `
	lw   t3, 0(a1)       # rowptr
	lw   t4, 4(a1)       # col
	lw   t5, 8(a1)       # xin
	lw   t6, 12(a1)      # xout
	li   t0, GA_HS
	divu a2, a0, t0      # node
	remu a3, a0, t0      # feature
	slli t1, a2, 2
	add  t1, t1, t3
	lw   a4, 0(t1)       # start
	lw   a5, 4(t1)       # end
	sub  a6, a5, a4      # degree
	fmv.w.x f0, zero
__ga_loop:
	slt  t0, a4, a5
	vx_ballot t1, t0
	beqz t1, __ga_done
	vx_split t0
	beqz t0, __ga_skip
	slli t1, a4, 2
	add  t1, t1, t4
	lw   t2, 0(t1)       # neighbor id
	li   t1, GA_HS
	mul  t2, t2, t1
	add  t2, t2, a3
	slli t2, t2, 2
	add  t2, t2, t5
	flw  f1, 0(t2)
	fadd.s f0, f0, f1
	addi a4, a4, 1
__ga_skip:
	vx_join
	j __ga_loop
__ga_done:
	seqz t1, a6          # avoid /0 for isolated nodes
	add  a6, a6, t1
	fcvt.s.wu f1, a6
	fdiv.s f0, f0, f1
	slli t1, a0, 2
	add  t6, t6, t1
	fsw  f0, 0(t6)
`,
}

// gcnBuffers uploads a graph and feature matrix, returning device buffers.
func gcnBuffers(d *ocl.Device, g *workload.Graph, x []float32, hs int) (rowptr, col, xin, xout ocl.Buffer, err error) {
	if rowptr, err = d.AllocUint32(len(g.RowPtr)); err != nil {
		return
	}
	if col, err = d.AllocUint32(maxInt(len(g.Col), 1)); err != nil {
		return
	}
	if xin, err = d.AllocFloat32(g.N * hs); err != nil {
		return
	}
	if xout, err = d.AllocFloat32(g.N * hs); err != nil {
		return
	}
	if err = d.WriteUint32(rowptr, g.RowPtr); err != nil {
		return
	}
	if len(g.Col) > 0 {
		if err = d.WriteUint32(col, g.Col); err != nil {
			return
		}
	}
	err = d.WriteFloat32(xin, x)
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BuildGCNAggr prepares mean aggregation over graph g with hs features.
func BuildGCNAggr(d *ocl.Device, g *workload.Graph, hs int, seed int64) (*Case, error) {
	in := gcnAggrInputsFor(g, hs, seed)
	x, want := in.x, in.want
	rowptr, col, xin, xout, err := gcnBuffers(d, g, x, hs)
	if err != nil {
		return nil, err
	}
	src := GCNAggrSource
	src.Defs = map[string]int64{"GA_HS": int64(hs)}
	k := mustKernel(src)
	if err := k.SetArgs(rowptr, col, xin, xout); err != nil {
		return nil, err
	}
	gws := g.N * hs
	return &Case{
		Name:      "gcn_aggr",
		Launches:  []LaunchSpec{{Kernel: k, GWS: gws}},
		WorkItems: gws,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(xout, gws)
			if err != nil {
				return err
			}
			return compareFloats("gcn_aggr", got, want)
		},
	}, nil
}

// RefGCNAggr is the CPU reference (sum in CSR order, then mean).
func RefGCNAggr(g *workload.Graph, x []float32, hs int) []float32 {
	out := make([]float32, g.N*hs)
	for n := 0; n < g.N; n++ {
		start, end := g.RowPtr[n], g.RowPtr[n+1]
		deg := end - start
		if deg == 0 {
			deg = 1
		}
		inv := float32(deg)
		for f := 0; f < hs; f++ {
			var acc float32
			for e := start; e < end; e++ {
				acc += x[int(g.Col[e])*hs+f]
			}
			out[n*hs+f] = acc / inv
		}
	}
	return out
}

// --- GCN layer -----------------------------------------------------------

// BuildGCNLayer prepares the combined GCN layer: a dense transform
// T = X x W (hs x hs weights) followed by neighbor aggregation of T —
// two launches whose lws are tuned independently, like the paper's
// combined-kernel experiments.
func BuildGCNLayer(d *ocl.Device, g *workload.Graph, hs int, seed int64) (*Case, error) {
	in := gcnLayerInputsFor(g, hs, seed)
	x, w, want := in.x, in.w, in.want

	rowptr, col, xin, xout, err := gcnBuffers(d, g, x, hs)
	if err != nil {
		return nil, err
	}
	bufW, err := d.AllocFloat32(hs * hs)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufW, w); err != nil {
		return nil, err
	}
	tmp, err := d.AllocFloat32(g.N * hs)
	if err != nil {
		return nil, err
	}

	// Launch 1: T = X x W via the sgemm kernel (M=N nodes, N=K=hs).
	tsrc := SgemmSource
	tsrc.Name = "gcn_transform"
	tsrc.Defs = map[string]int64{"SG_N": int64(hs), "SG_K": int64(hs)}
	kt := mustKernel(tsrc)
	if err := kt.SetArgs(xin, bufW, tmp); err != nil {
		return nil, err
	}

	// Launch 2: aggregate T over the graph.
	asrc := GCNAggrSource
	asrc.Defs = map[string]int64{"GA_HS": int64(hs)}
	ka := mustKernel(asrc)
	if err := ka.SetArgs(rowptr, col, tmp, xout); err != nil {
		return nil, err
	}

	gws := g.N * hs
	return &Case{
		Name: "gcn_layer",
		Launches: []LaunchSpec{
			{Kernel: kt, GWS: gws},
			{Kernel: ka, GWS: gws},
		},
		WorkItems: 2 * gws,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(xout, gws)
			if err != nil {
				return err
			}
			return compareFloats("gcn_layer", got, want)
		},
	}, nil
}

// --- ResNet20 conv layer ---------------------------------------------------

// Conv3x3Source computes a same-padding 3x3 convolution with bias and
// fused ReLU over a zero-padded CHW tensor (pad=1): one work item per
// output element, gid = ((oc*H)+y)*W + x. Args: IN (padded), WEIGHTS
// (oc x ic x 3 x 3), BIAS, OUT. Defines: CV_C (input channels), CV_W
// (interior width, image assumed square), CV_PW (= CV_W+2).
var Conv3x3Source = ocl.KernelSource{
	Name: "conv3x3",
	Body: `
	lw   t3, 0(a1)       # in (padded)
	lw   t4, 4(a1)       # weights
	lw   t5, 8(a1)       # bias
	lw   t6, 12(a1)      # out
	li   t0, CV_W*CV_W
	divu a2, a0, t0      # oc
	remu a3, a0, t0
	li   t0, CV_W
	divu a4, a3, t0      # y
	remu a5, a3, t0      # x
	li   t0, CV_PW
	mul  t1, a4, t0
	add  t1, t1, a5
	slli t1, t1, 2
	add  t3, t3, t1      # &in[0][y][x] (window top-left, pad=1)
	li   t0, CV_C*36
	mul  t1, a2, t0
	add  t4, t4, t1      # &w[oc][0][0][0]
	slli t1, a2, 2
	add  t1, t1, t5
	flw  f0, 0(t1)       # acc = bias[oc]
	li   a6, 0
	li   a7, CV_C
__cv_ic:
	flw  f1, 0(t3)
	flw  f2, 0(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, 4(t3)
	flw  f2, 4(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, 8(t3)
	flw  f2, 8(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*4+0(t3)
	flw  f2, 12(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*4+4(t3)
	flw  f2, 16(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*4+8(t3)
	flw  f2, 20(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*8+0(t3)
	flw  f2, 24(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*8+4(t3)
	flw  f2, 28(t4)
	fmadd.s f0, f1, f2, f0
	flw  f1, CV_PW*8+8(t3)
	flw  f2, 32(t4)
	fmadd.s f0, f1, f2, f0
	li   t0, CV_PW*CV_PW*4
	add  t3, t3, t0      # next input channel plane
	addi t4, t4, 36      # next 3x3 weight block
	addi a6, a6, 1
	blt  a6, a7, __cv_ic
	fmv.w.x f1, zero
	fmax.s f0, f0, f1    # fused ReLU
	slli t1, a0, 2
	add  t6, t6, t1
	fsw  f0, 0(t6)
`,
}

// BuildConv3x3 prepares one ResNet20-style conv3x3(ch->ch)+bias+ReLU layer
// over a w x w image (CIFAR-10 layer: ch=16, w=32).
func BuildConv3x3(d *ocl.Device, ch, w int, seed int64) (*Case, error) {
	mi := convInputsFor(ch, w, seed)
	in, weights, bias, want := mi.in, mi.weights, mi.bias, mi.want

	bufIn, err := d.AllocFloat32(len(in.Data))
	if err != nil {
		return nil, err
	}
	bufW, err := d.AllocFloat32(len(weights))
	if err != nil {
		return nil, err
	}
	bufB, err := d.AllocFloat32(ch)
	if err != nil {
		return nil, err
	}
	bufOut, err := d.AllocFloat32(ch * w * w)
	if err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufIn, in.Data); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufW, weights); err != nil {
		return nil, err
	}
	if err := d.WriteFloat32(bufB, bias); err != nil {
		return nil, err
	}
	src := Conv3x3Source
	src.Defs = map[string]int64{
		"CV_C":  int64(ch),
		"CV_W":  int64(w),
		"CV_PW": int64(w + 2),
	}
	k := mustKernel(src)
	if err := k.SetArgs(bufIn, bufW, bufB, bufOut); err != nil {
		return nil, err
	}
	gws := ch * w * w
	return &Case{
		Name:      "resnet20_layer",
		Launches:  []LaunchSpec{{Kernel: k, GWS: gws}},
		WorkItems: gws,
		Verify: func(d *ocl.Device) error {
			got, err := d.ReadFloat32(bufOut, gws)
			if err != nil {
				return err
			}
			return compareFloats("resnet20_layer", got, want)
		},
	}, nil
}

// RefConv3x3 is the CPU reference, accumulating in the device's order
// (per input channel: window rows top to bottom, left to right).
func RefConv3x3(in *workload.PaddedTensor, weights, bias []float32, outCh int) []float32 {
	w, h := in.W, in.H
	stride := in.PlaneStride()
	plane := in.PlaneSize()
	out := make([]float32, outCh*w*h)
	for oc := 0; oc < outCh; oc++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				acc := bias[oc]
				for ic := 0; ic < in.C; ic++ {
					base := ic*plane + y*stride + x
					wbase := (oc*in.C + ic) * 9
					for r := 0; r < 3; r++ {
						for c := 0; c < 3; c++ {
							acc = fma32(in.Data[base+r*stride+c], weights[wbase+r*3+c], acc)
						}
					}
				}
				if acc < 0 {
					acc = 0
				}
				out[(oc*h+y)*w+x] = acc
			}
		}
	}
	return out
}
