package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CrossoverPoint summarizes one kernel's baseline-vs-ours ratio as a
// function of hardware parallelism: the mean ratio in each hp band and the
// hp value where the baseline stops winning (the crossover the paper's
// violins fold into a single distribution).
type CrossoverPoint struct {
	HP        int
	MeanRatio float64
	N         int
}

// CrossoverCurve buckets the ratios of (kernel, baseline) by the
// configuration's hp and returns per-hp mean ratios in increasing hp
// order.
func (r *Results) CrossoverCurve(kernel, baseline string) []CrossoverPoint {
	base := map[int][]float64{} // hp -> ratios
	ours := map[string]uint64{} // sample key (config/sched) -> cycles
	for _, rec := range r.Records {
		if rec.Kernel == kernel && rec.Mapper == "ours" && rec.Err == "" {
			ours[sampleKey(rec)] = rec.Cycles
		}
	}
	for _, rec := range r.Records {
		if rec.Kernel != kernel || rec.Mapper != baseline || rec.Err != "" {
			continue
		}
		o := ours[sampleKey(rec)]
		if o == 0 {
			continue
		}
		hp := rec.Config.HP()
		base[hp] = append(base[hp], float64(rec.Cycles)/float64(o))
	}
	hps := make([]int, 0, len(base))
	for hp := range base {
		hps = append(hps, hp)
	}
	sort.Ints(hps)
	out := make([]CrossoverPoint, 0, len(hps))
	for _, hp := range hps {
		rs := base[hp]
		var sum float64
		for _, v := range rs {
			sum += v
		}
		out = append(out, CrossoverPoint{HP: hp, MeanRatio: sum / float64(len(rs)), N: len(rs)})
	}
	return out
}

// CrossoverHP returns the smallest hp from which the baseline's mean ratio
// stays >= 1 (i.e. "ours" wins from there on), or -1 if it never does.
func (r *Results) CrossoverHP(kernel, baseline string) int {
	curve := r.CrossoverCurve(kernel, baseline)
	for i := len(curve) - 1; i >= 0; i-- {
		if curve[i].MeanRatio < 1 {
			if i == len(curve)-1 {
				return -1
			}
			return curve[i+1].HP
		}
	}
	if len(curve) == 0 {
		return -1
	}
	return curve[0].HP
}

// RenderCrossover prints the per-hp ratio curve of each kernel against a
// baseline — the "where does the fixed mapping start losing" analysis.
func (r *Results) RenderCrossover(w io.Writer, baseline string) error {
	for _, k := range r.Kernels() {
		curve := r.CrossoverCurve(k, baseline)
		if len(curve) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s vs %s:\n", k, baseline); err != nil {
			return err
		}
		for _, p := range curve {
			n := int(p.MeanRatio * 10)
			if n > 60 {
				n = 60
			}
			if n < 0 {
				n = 0
			}
			if _, err := fmt.Fprintf(w, "  hp=%-6d %6.2fx |%s\n", p.HP, p.MeanRatio, strings.Repeat("#", n)); err != nil {
				return err
			}
		}
		if hp := r.CrossoverHP(k, baseline); hp >= 0 {
			if _, err := fmt.Fprintf(w, "  ours wins on average from hp >= %d\n", hp); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "  no stable crossover in this grid\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
