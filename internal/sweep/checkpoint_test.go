package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func campaignOpts() Options {
	return Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},
			{Cores: 2, Warps: 2, Threads: 4},
			{Cores: 4, Warps: 4, Threads: 4},
		},
		Kernels: []string{"vecadd", "saxpy"},
		Scale:   0.05,
		Seed:    7,
		Workers: 2,
	}
}

// mustJSON renders records for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// truncateCheckpoint rewrites path keeping the meta header and the first n
// record lines — the state a killed campaign leaves behind.
func truncateCheckpoint(t *testing.T, path string, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < n+1 {
		t.Fatalf("checkpoint has %d lines, need meta + %d", len(lines), n)
	}
	keep := strings.Join(lines[:n+1], "\n") + "\n"
	if err := os.WriteFile(path, []byte(keep), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSweepResumeByteIdentical is the campaign engine's core contract: a
// sweep killed after N records and restarted with Resume produces Records
// byte-identical to an uninterrupted run.
func TestSweepResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")

	cold, err := Run(campaignOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Full checkpointed run, then simulate the crash by truncating.
	full := campaignOpts()
	full.Checkpoint = ckpt
	if _, err := Run(full); err != nil {
		t.Fatal(err)
	}
	const kept = 7
	truncateCheckpoint(t, ckpt, kept)

	res := campaignOpts()
	res.Checkpoint = ckpt
	res.Resume = true
	executed := 0
	res.OnRecord = func(Record) { executed++ }
	resumed, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}

	if resumed.Cache.Resumed != kept {
		t.Errorf("resumed %d records, want %d", resumed.Cache.Resumed, kept)
	}
	if want := len(cold.Records) - kept; executed != want {
		t.Errorf("re-executed %d records, want %d", executed, want)
	}
	if !bytes.Equal(mustJSON(t, cold.Records), mustJSON(t, resumed.Records)) {
		for i := range cold.Records {
			if !bytes.Equal(mustJSON(t, cold.Records[i]), mustJSON(t, resumed.Records[i])) {
				t.Errorf("record %d differs:\ncold    %+v\nresumed %+v", i, cold.Records[i], resumed.Records[i])
			}
		}
		t.Fatal("resumed records not byte-identical to cold run")
	}

	// After the resume, the checkpoint holds the full campaign: a second
	// resume re-simulates nothing.
	res2 := campaignOpts()
	res2.Checkpoint = ckpt
	res2.Resume = true
	executed = 0
	res2.OnRecord = func(Record) { executed++ }
	again, err := Run(res2)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || again.Cache.Resumed != len(cold.Records) {
		t.Errorf("second resume ran %d tasks (resumed %d), want a full splice", executed, again.Cache.Resumed)
	}
	if !bytes.Equal(mustJSON(t, cold.Records), mustJSON(t, again.Records)) {
		t.Error("fully resumed records not byte-identical")
	}
}

// TestSweepResumeRejectsForeignCheckpoint pins the meta guard: a checkpoint
// from different sweep parameters must not be spliced in.
func TestSweepResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	first := campaignOpts()
	first.Checkpoint = ckpt
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	other := campaignOpts()
	other.Checkpoint = ckpt
	other.Resume = true
	other.Seed = 8 // different inputs -> different records
	if _, err := Run(other); err == nil {
		t.Fatal("resume accepted a checkpoint written with a different seed")
	}
}

// TestSweepCheckpointRequiresConfigTag pins that an unnamed ConfigTemplate
// cannot be checkpointed (a function can't be fingerprinted, so a resume
// could not detect a changed simulator configuration), while a tagged one
// can — and the tag must match on resume.
func TestSweepCheckpointRequiresConfigTag(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	tmpl := func(hw core.HWInfo) sim.Config {
		cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
		cfg.Mem.DRAM.Latency *= 2
		return cfg
	}

	opts := campaignOpts()
	opts.Checkpoint = ckpt
	opts.ConfigTemplate = tmpl
	if _, err := Run(opts); err == nil {
		t.Fatal("checkpointing an unnamed ConfigTemplate was accepted")
	}

	opts.ConfigTag = "slow-dram"
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}

	// Resuming under a different tag must be refused.
	other := opts
	other.Resume = true
	other.ConfigTag = "default"
	if _, err := Run(other); err == nil {
		t.Fatal("resume accepted a checkpoint from a different config tag")
	}

	// Same tag resumes cleanly with nothing left to simulate.
	same := opts
	same.Resume = true
	executed := 0
	same.OnRecord = func(Record) { executed++ }
	res, err := Run(same)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || res.Cache.Resumed != len(res.Records) {
		t.Errorf("tagged resume re-ran %d tasks (resumed %d)", executed, res.Cache.Resumed)
	}
}

// TestSweepResumeRejectsV2Checkpoint pins the version guard on the resume
// path: a v2 checkpoint (pre-sched-axis) is refused with the version
// diagnostic instead of being spliced into a grid its records cannot name
// a scheduler for.
func TestSweepResumeRejectsV2Checkpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "old.jsonl")
	opts := campaignOpts()
	opts.fill()
	meta := MetaFor(opts)
	meta.Version = 2
	meta.Scheds = ""
	var buf bytes.Buffer
	buf.Write(append(mustJSON(t, meta), '\n'))
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	res := campaignOpts()
	res.Checkpoint = ckpt
	res.Resume = true
	_, err := Run(res)
	if err == nil || !strings.Contains(err.Error(), "version 2 not supported") {
		t.Errorf("resume of a v2 checkpoint: err = %v, want the version diagnostic", err)
	}
}

// TestSweepResumeRejectsHeaderlessCheckpoint pins that records without a
// meta header (edited or concatenated files) cannot be spliced in.
func TestSweepResumeRejectsHeaderlessCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	first := campaignOpts()
	first.Checkpoint = ckpt
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	// Strip the meta header, keeping the records.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	if err := os.WriteFile(ckpt, []byte(lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	res := campaignOpts()
	res.Checkpoint = ckpt
	res.Resume = true
	if _, err := Run(res); err == nil {
		t.Fatal("resume accepted a headerless checkpoint with records")
	}
}

// TestSweepCheckpointSkipsFailures pins that failed records are not
// checkpointed, so a resume retries them.
func TestSweepCheckpointSkipsFailures(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	opts := Options{
		Configs:    []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}},
		Kernels:    []string{"vecadd", "nope"},
		Scale:      0.05,
		Seed:       7,
		Workers:    1,
		Checkpoint: ckpt,
	}
	if _, err := Run(opts); err == nil {
		t.Fatal("sweep with unknown kernel did not fail")
	}
	_, seen, err := ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 { // vecadd x 3 mappers; the "nope" tasks must be absent
		t.Fatalf("checkpointed %d records, want 3 successful ones", len(seen))
	}
	retry := opts
	retry.Resume = true
	executed := 0
	retry.OnRecord = func(Record) { executed++ }
	if _, err := Run(retry); err == nil {
		t.Fatal("resume did not retry (and re-fail) the failed tasks")
	}
	if executed != 3 {
		t.Errorf("resume re-executed %d tasks, want the 3 failed ones", executed)
	}
}

// TestSweepResumeRepairsTornTail pins the kill-9 append path: a SIGKILL
// mid-write leaves an unterminated partial line, and the resumed run must
// cut it before appending — otherwise the retried record concatenates onto
// the torn bytes and the checkpoint is permanently corrupt. After the
// resume, the file must parse cleanly and splice fully.
func TestSweepResumeRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	full := campaignOpts()
	full.Checkpoint = ckpt
	cold, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record: keep meta + 2 records + half of the next.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	res := campaignOpts()
	res.Checkpoint = ckpt
	res.Resume = true
	resumed, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cache.Resumed != 2 {
		t.Errorf("resumed %d records, want the 2 before the torn line", resumed.Cache.Resumed)
	}
	if !bytes.Equal(mustJSON(t, cold.Records), mustJSON(t, resumed.Records)) {
		t.Error("records resumed over a torn tail not byte-identical")
	}
	// The repaired checkpoint is fully parseable and complete.
	meta, seen, err := ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint corrupt after torn-tail resume: %v", err)
	}
	if meta == nil || len(seen) != len(cold.Records) {
		t.Errorf("repaired checkpoint holds %d records, want %d", len(seen), len(cold.Records))
	}

	// A torn META header (no newline anywhere) is discarded and rewritten.
	if err := os.WriteFile(ckpt, []byte(lines[0][:len(lines[0])/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res); err != nil {
		t.Fatal(err)
	}
	if meta, seen, err := ReadCheckpointFile(ckpt); err != nil || meta == nil || len(seen) != len(cold.Records) {
		t.Errorf("torn-meta resume left meta=%v records=%d err=%v", meta, len(seen), err)
	}

	// A kill between a record's bytes and its newline leaves a COMPLETE
	// unterminated line, which the reader keeps and splices — the repair
	// must finish that line, not cut it, or the spliced record silently
	// vanishes from the repaired checkpoint.
	fullFile := strings.Join(lines, "")
	if err := os.WriteFile(ckpt, []byte(strings.TrimSuffix(fullFile, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	executed := 0
	res.OnRecord = func(Record) { executed++ }
	kept, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || kept.Cache.Resumed != len(cold.Records) {
		t.Errorf("flush-edge resume re-ran %d tasks (resumed %d), want a full splice", executed, kept.Cache.Resumed)
	}
	if meta, seen, err := ReadCheckpointFile(ckpt); err != nil || meta == nil || len(seen) != len(cold.Records) {
		t.Errorf("flush-edge repair lost records: meta=%v records=%d want=%d err=%v", meta, len(seen), len(cold.Records), err)
	}
}

// TestReadCheckpointCorruptLine pins the error path.
func TestReadCheckpointCorruptLine(t *testing.T) {
	if _, _, err := ReadCheckpoint(strings.NewReader("{\"checkpoint_version\":3}\nnot json\n")); err == nil {
		t.Error("corrupt line accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader("{\"checkpoint_version\":1}\n")); err == nil {
		t.Error("pre-shard version-1 checkpoint accepted")
	}
	// v2 files predate the warp-scheduler grid axis; their records carry no
	// policy identity, so they are refused with a version diagnostic.
	if _, _, err := ReadCheckpoint(strings.NewReader("{\"checkpoint_version\":2}\n")); err == nil ||
		!strings.Contains(err.Error(), "version 2 not supported") {
		t.Errorf("pre-sched-axis version-2 checkpoint: err = %v, want the version diagnostic", err)
	}
	if _, _, err := ReadCheckpoint(strings.NewReader("{\"Cycles\":12}\n")); err == nil {
		t.Error("record without task identity accepted")
	}
	meta, recs, err := ReadCheckpoint(strings.NewReader(""))
	if err != nil || meta != nil || len(recs) != 0 {
		t.Errorf("empty checkpoint: meta=%v recs=%v err=%v", meta, recs, err)
	}
	// A grotesquely long line (with or without newline) is corruption, not
	// a torn tail: refuse it instead of buffering the whole stream.
	long := strings.Repeat("x", maxCheckpointLine+1)
	if _, _, err := ReadCheckpoint(strings.NewReader(long)); err == nil {
		t.Error("over-long unterminated line accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader("{\"checkpoint_version\":2}\n" + long + "\n")); err == nil {
		t.Error("over-long terminated line accepted")
	}
}

// TestFillRecordEmptyLaunches pins the satellite guard: a case result with
// no launches becomes a Record.Err, not an index panic in a sweep worker.
func TestFillRecordEmptyLaunches(t *testing.T) {
	rec := Record{Kernel: "k", Mapper: "m"}
	fillRecord(&rec, &kernels.Result{Case: "k"}, core.HWInfo{Cores: 1, Warps: 2, Threads: 2})
	if rec.Err == "" {
		t.Fatal("empty-launch result not recorded as an error")
	}
	if rec.Cycles != 0 || rec.LWS != 0 {
		t.Errorf("empty-launch result filled counters: %+v", rec)
	}
}

// TestOptionsFillWorkerDivision pins the SimWorkers division edge cases,
// notably Workers exceeding GOMAXPROCS (the division truncates to zero and
// must clamp to one goroutine per simulation).
func TestOptionsFillWorkerDivision(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)

	over := Options{Workers: procs * 4}
	over.fill()
	if over.SimWorkers != 1 {
		t.Errorf("Workers=%d: SimWorkers = %d, want 1", procs*4, over.SimWorkers)
	}

	one := Options{Workers: 1}
	one.fill()
	if one.SimWorkers != procs {
		t.Errorf("Workers=1: SimWorkers = %d, want GOMAXPROCS (%d)", one.SimWorkers, procs)
	}

	// Negative (force-sequential) clamps to 1 — a single-worker simulation
	// IS the sequential engine, and sim.Config rejects negative workers.
	neg := Options{Workers: 1, SimWorkers: -1}
	neg.fill()
	if neg.SimWorkers != 1 {
		t.Errorf("negative SimWorkers = %d after fill, want 1 (sequential)", neg.SimWorkers)
	}
}
