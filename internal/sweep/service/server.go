package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Config tunes the coordinator. The zero value is usable.
type Config struct {
	// LeaseTTL is how long a worker owns a handed-out batch before the
	// coordinator re-issues its unfinished tasks to someone else. It should
	// comfortably exceed the cost of the most expensive task times the
	// batch size: an expired-but-alive worker is not a correctness hazard
	// (its late submission deduplicates), just wasted work. Default 60s.
	LeaseTTL time.Duration
	// BatchSize is the default number of tasks per lease when the worker
	// does not ask for a specific amount. Default 4.
	BatchSize int
	// RetryDelay is the poll interval suggested to workers when everything
	// pending is leased elsewhere. Default 200ms.
	RetryDelay time.Duration
	// Progress, if non-nil, is called after every newly completed task.
	Progress func(done, total int)
	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 60 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 200 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

type taskState int8

const (
	statePending taskState = iota // not yet handed out (or returned by an expiry)
	stateLeased                   // owned by a live lease
	stateDone                     // a successful record is held (and checkpointed)
	stateFailed                   // latest submission for the task carried Record.Err
)

// lease is one outstanding batch handed to a worker.
type lease struct {
	id       string
	worker   string
	tasks    map[int]bool // grid indices still unfinished under this lease
	deadline time.Time
}

// Server coordinates one campaign: it owns the canonical task grid, the
// lease state machine and the streamed checkpoint. It implements
// http.Handler (POST /lease, POST /submit, GET /status).
type Server struct {
	opts  sweep.Options
	meta  sweep.Meta
	tasks []sweep.Task
	byKey map[string]int
	cfg   Config

	mu        sync.Mutex
	state     []taskState
	recs      []sweep.Record
	taskLease []string // lease id currently owning each task, "" if none
	leases    map[string]*lease
	workers   map[string]bool // enrolled (meta-validated) worker ids
	ckpt      *sweep.CheckpointWriter
	completed int // done + failed
	failed    int
	reissued  int // leases whose unfinished tasks were returned to pending
	dupes     int // duplicate successful submissions (later wins)
	nextLease int
	sinkErr   error
	done      chan struct{}
	closed    bool
}

// New builds a coordinator for the campaign described by opts. The grid is
// always keyed (tasks cross the wire by index), so duplicated grid axes are
// refused exactly as Run refuses them when checkpointing; sharding is
// meaningless under dynamic work distribution and refused outright. With
// opts.Checkpoint set, every accepted record is appended and flushed before
// its submission is acknowledged; with opts.Resume too, tasks already in
// the checkpoint are marked done up front and never handed out.
func New(opts sweep.Options, cfg Config) (*Server, error) {
	if opts.ShardCount > 1 {
		return nil, fmt.Errorf("service: a served campaign cannot be sharded (leases replace -shard %d/%d)", opts.ShardIndex, opts.ShardCount)
	}
	if opts.ConfigTemplate != nil && opts.ConfigTag == "" {
		return nil, fmt.Errorf("service: serving with a ConfigTemplate requires Options.ConfigTag")
	}
	tasks, err := sweep.TaskGrid(opts)
	if err != nil {
		return nil, err
	}
	opts = opts.Normalized()
	cfg.fill()
	s := &Server{
		opts:      opts,
		meta:      sweep.MetaFor(opts),
		tasks:     tasks,
		byKey:     make(map[string]int, len(tasks)),
		cfg:       cfg,
		state:     make([]taskState, len(tasks)),
		recs:      make([]sweep.Record, len(tasks)),
		taskLease: make([]string, len(tasks)),
		leases:    map[string]*lease{},
		workers:   map[string]bool{},
		done:      make(chan struct{}),
	}
	for _, t := range tasks {
		s.byKey[t.Key()] = t.Index
	}
	if opts.Resume && opts.Checkpoint != "" {
		seen, err := sweep.ResumeRecords(opts)
		if err != nil {
			return nil, fmt.Errorf("service: resume: %w", err)
		}
		for key, rec := range seen {
			if idx, ok := s.byKey[key]; ok {
				s.recs[idx] = rec
				s.state[idx] = stateDone
				s.completed++
			}
		}
	}
	if opts.Checkpoint != "" {
		s.ckpt, err = sweep.OpenCheckpoint(opts.Checkpoint, opts.Resume, opts)
		if err != nil {
			return nil, fmt.Errorf("service: checkpoint: %w", err)
		}
	}
	if s.completed == len(s.tasks) {
		s.closeDoneLocked()
	}
	return s, nil
}

// Done is closed once every task is done or failed.
func (s *Server) Done() <-chan struct{} { return s.done }

func (s *Server) closeDoneLocked() {
	if !s.closed {
		s.closed = true
		close(s.done)
	}
}

// Results assembles the completed campaign in canonical grid order — the
// Records (and their rendering) are byte-identical to a single-process
// sweep.Run of the same options. It errors if the campaign is still in
// flight or any task failed.
func (s *Server) Results() (*sweep.Results, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.completed != len(s.tasks) {
		return nil, fmt.Errorf("service: campaign in flight: %d of %d tasks outstanding", len(s.tasks)-s.completed, len(s.tasks))
	}
	if err := s.errLocked(); err != nil {
		return nil, err
	}
	return &sweep.Results{Options: s.opts, Records: append([]sweep.Record(nil), s.recs...)}, nil
}

// WriteFinal writes the completed campaign as a single canonical-order
// checkpoint at path — byte-identical to the file a Workers=1 checkpointed
// sweep.Run of the same options produces (the streamed opts.Checkpoint is
// in submission order and may hold superseded duplicates; this is the
// deliverable artifact).
func (s *Server) WriteFinal(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.completed != len(s.tasks) {
		return fmt.Errorf("service: campaign in flight")
	}
	if err := s.errLocked(); err != nil {
		return err
	}
	return sweep.WriteCheckpoint(path, s.meta, s.recs)
}

// Err reports the first task failure (like Run's end-of-campaign error) or
// a checkpoint write fault; nil while records are clean.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errLocked()
}

func (s *Server) errLocked() error {
	if s.sinkErr != nil {
		return fmt.Errorf("service: checkpoint write: %w", s.sinkErr)
	}
	for i, st := range s.state {
		if st == stateFailed {
			r := s.recs[i]
			return fmt.Errorf("service: %s/%s on %s: %s", r.Kernel, r.Mapper, r.Config.Name(), r.Err)
		}
	}
	return nil
}

// Close releases the streamed checkpoint writer (the http.Server shutdown
// is the caller's).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckpt == nil {
		return nil
	}
	err := s.ckpt.Close()
	s.ckpt = nil
	return err
}

// Status snapshots campaign progress (expiring dead leases first, so a
// stalled fleet becomes visible as pending work, not phantom leases).
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Clock())
	leased := 0
	for _, st := range s.state {
		if st == stateLeased {
			leased++
		}
	}
	return Status{
		Total:     len(s.tasks),
		Completed: s.completed - s.failed,
		Failed:    s.failed,
		Leased:    leased,
		Pending:   len(s.tasks) - s.completed - leased,
		Workers:   len(s.workers),
		Reissued:  s.reissued,
		Dupes:     s.dupes,
		Done:      s.completed == len(s.tasks),
	}
}

// expireLocked returns every task of every overdue lease to the pending
// pool. Purely lazy: it runs at the head of each request, so re-issue needs
// no background reaper — any surviving worker's next poll frees and then
// claims the dead worker's tasks.
func (s *Server) expireLocked(now time.Time) {
	for id, l := range s.leases {
		if !l.deadline.Before(now) {
			continue
		}
		returned := 0
		for idx := range l.tasks {
			if s.state[idx] == stateLeased && s.taskLease[idx] == id {
				s.state[idx] = statePending
				s.taskLease[idx] = ""
				returned++
			}
		}
		if returned > 0 {
			s.reissued++
		}
		delete(s.leases, id)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/lease" && r.Method == http.MethodPost:
		s.handleLease(w, r)
	case r.URL.Path == "/submit" && r.Method == http.MethodPost:
		s.handleSubmit(w, r)
	case r.URL.Path == "/status" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.Status())
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("service: no %s %s endpoint", r.Method, r.URL.Path))
	}
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("service: bad lease request: %v", err))
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "service: lease request carries no worker id")
		return
	}
	if req.Proto != ProtocolVersion {
		writeError(w, http.StatusConflict, fmt.Sprintf("service: worker %s speaks protocol v%d, coordinator v%d", req.Worker, req.Proto, ProtocolVersion))
		return
	}
	if req.Meta != s.meta {
		// A worker running different options would return records for the
		// wrong experiment under the right task keys — refuse enrollment
		// with the first differing meta field named.
		writeError(w, http.StatusConflict, fmt.Sprintf("service: worker %s campaign meta mismatch: %s", req.Worker, metaDiff(req.Meta, s.meta)))
		return
	}
	max := req.Max
	if max <= 0 {
		max = s.cfg.BatchSize
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers[req.Worker] = true
	s.expireLocked(s.cfg.Clock())
	if s.completed == len(s.tasks) {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	var batch []int
	for idx, st := range s.state {
		if st == statePending {
			batch = append(batch, idx)
			if len(batch) == max {
				break
			}
		}
	}
	if len(batch) == 0 {
		// Everything unfinished is leased elsewhere; the worker polls
		// again (a lease expiry or failure may free work).
		writeJSON(w, http.StatusOK, LeaseResponse{RetryMillis: s.cfg.RetryDelay.Milliseconds()})
		return
	}
	s.nextLease++
	l := &lease{
		id:       fmt.Sprintf("L%d", s.nextLease),
		worker:   req.Worker,
		tasks:    make(map[int]bool, len(batch)),
		deadline: s.cfg.Clock().Add(s.cfg.LeaseTTL),
	}
	for _, idx := range batch {
		l.tasks[idx] = true
		s.state[idx] = stateLeased
		s.taskLease[idx] = l.id
	}
	s.leases[l.id] = l
	writeJSON(w, http.StatusOK, LeaseResponse{LeaseID: l.id, Tasks: batch, TTLMillis: s.cfg.LeaseTTL.Milliseconds()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("service: bad submit request: %v", err))
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.workers[req.Worker] {
		// Submissions are only taken from workers whose meta passed the
		// lease gate; anything else could write foreign records under valid
		// keys.
		writeError(w, http.StatusForbidden, fmt.Sprintf("service: worker %q never enrolled via /lease", req.Worker))
		return
	}
	s.expireLocked(s.cfg.Clock())
	var resp SubmitResponse
	for _, rec := range req.Records {
		idx, ok := s.byKey[rec.Key()]
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("service: record %s is not in the campaign grid", rec.Key()))
			return
		}
		if rec.Err != "" {
			// Failures are recorded (for the end-of-campaign error and the
			// status counters) but never checkpointed: a resume retries
			// them, exactly like Run. A success already held wins over a
			// late failure.
			resp.Failed++
			if s.state[idx] != stateDone {
				if s.state[idx] != stateFailed {
					s.completed++
					s.failed++
				}
				s.recs[idx] = rec
				s.state[idx] = stateFailed
				s.finishTaskLocked(idx)
			}
			continue
		}
		// Durable before acknowledged: the record lands in the streamed
		// checkpoint (flushed) before the worker hears "accepted", so a
		// coordinator crash can never lose acknowledged work. Duplicates
		// (an expired lease's late submission racing its re-issue) are
		// appended too — the checkpoint reader keeps the later line, which
		// is exactly the in-memory rule.
		if s.ckpt != nil {
			if err := s.ckpt.Append(rec); err != nil {
				if s.sinkErr == nil {
					s.sinkErr = err
				}
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("service: checkpoint write: %v", err))
				return
			}
		}
		switch s.state[idx] {
		case stateDone:
			resp.Duplicates++
			s.dupes++
			s.recs[idx] = rec // later duplicates win
		case stateFailed:
			s.failed--
			s.recs[idx] = rec
			s.state[idx] = stateDone
			resp.Accepted++
		default:
			s.recs[idx] = rec
			s.state[idx] = stateDone
			s.completed++
			resp.Accepted++
			if s.cfg.Progress != nil {
				s.cfg.Progress(s.completed, len(s.tasks))
			}
		}
		s.finishTaskLocked(idx)
	}
	if s.completed == len(s.tasks) {
		s.closeDoneLocked()
		resp.Done = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// finishTaskLocked removes a finished task from the lease owning it (if
// any), dropping the lease once its last task is in.
func (s *Server) finishTaskLocked(idx int) {
	id := s.taskLease[idx]
	if id == "" {
		return
	}
	s.taskLease[idx] = ""
	if l, ok := s.leases[id]; ok {
		delete(l.tasks, idx)
		if len(l.tasks) == 0 {
			delete(s.leases, id)
		}
	}
}

// metaDiff names the first field on which two campaign metas differ.
func metaDiff(got, want sweep.Meta) string {
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		if gv.Field(i).Interface() != wv.Field(i).Interface() {
			return fmt.Sprintf("%s = %v, campaign has %v", gv.Type().Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	return "metas identical"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
