package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/ocl"
	"repro/internal/sweep"
)

// WorkerConfig tunes a fleet worker. The zero value is usable.
type WorkerConfig struct {
	// ID is the worker's stable identity; defaults to host-pid.
	ID string
	// BatchSize is the number of tasks requested per lease; 0 accepts the
	// coordinator's default.
	BatchSize int
	// HTTP overrides the transport (tests inject httptest clients).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, transient faults only
	// (network errors, 5xx): attempt n sleeps Backoff*2^(n-1) first.
	// Permanent refusals (4xx: meta mismatch, bad records) never retry.
	// Default 6 attempts, 100ms base — ~3s of cumulative patience.
	MaxAttempts int
	Backoff     time.Duration
	// OnRecord, if non-nil, observes each record after its task runs
	// (before submission).
	OnRecord func(sweep.Record)
}

func (c *WorkerConfig) fill() {
	if c.ID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{Timeout: 60 * time.Second}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
}

// Work runs the worker loop against a coordinator until the campaign is
// done (nil), the context is canceled, or a permanent refusal / exhausted
// retry budget stops it (error). opts must describe the same campaign the
// coordinator serves — same grid axes, scale, seed — which the coordinator
// enforces by meta comparison at enrollment; opts.Workers/SimWorkers stay
// worker-local (they shape how this host runs its batches, not what the
// records hold). Tasks run through the same runOne/device-pool/cache
// substrate as sweep.Run, so every record is byte-identical to the one a
// single-process run produces.
func Work(ctx context.Context, coordinator string, opts sweep.Options, cfg WorkerConfig) error {
	if opts.ShardCount > 1 {
		return fmt.Errorf("service: a fleet worker cannot also be sharded (the lease loop replaces -shard)")
	}
	grid, err := sweep.TaskGrid(opts)
	if err != nil {
		return err
	}
	opts = opts.Normalized()
	cfg.fill()
	base, err := normalizeCoordinator(coordinator)
	if err != nil {
		return err
	}
	pool := ocl.NewDevicePool(opts.Workers)
	meta := sweep.MetaFor(opts)
	for {
		var lr LeaseResponse
		if err := postJSON(ctx, cfg, base+"/lease", LeaseRequest{
			Worker: cfg.ID, Proto: ProtocolVersion, Meta: meta, Max: cfg.BatchSize,
		}, &lr); err != nil {
			return err
		}
		if lr.Done {
			return nil
		}
		if len(lr.Tasks) == 0 {
			delay := time.Duration(lr.RetryMillis) * time.Millisecond
			if delay <= 0 {
				delay = 200 * time.Millisecond
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
			continue
		}
		recs := make([]sweep.Record, 0, len(lr.Tasks))
		for _, idx := range lr.Tasks {
			if idx < 0 || idx >= len(grid) {
				// Meta equality makes this unreachable against an honest
				// coordinator; refuse rather than run arbitrary cells.
				return fmt.Errorf("service: leased task %d outside the %d-task grid", idx, len(grid))
			}
			rec := sweep.RunTask(opts, pool, grid[idx])
			if cfg.OnRecord != nil {
				cfg.OnRecord(rec)
			}
			recs = append(recs, rec)
		}
		var sr SubmitResponse
		if err := postJSON(ctx, cfg, base+"/submit", SubmitRequest{
			Worker: cfg.ID, LeaseID: lr.LeaseID, Records: recs,
		}, &sr); err != nil {
			return err
		}
		if sr.Done {
			return nil
		}
	}
}

// normalizeCoordinator accepts "host:port" or a full http(s) URL.
func normalizeCoordinator(addr string) (string, error) {
	if addr == "" {
		return "", fmt.Errorf("service: no coordinator address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return "", fmt.Errorf("service: coordinator address %q is not http(s)", addr)
	}
	return strings.TrimSuffix(addr, "/"), nil
}

// postJSON posts req and decodes the 200 response into out, retrying
// transient faults (network errors and 5xx) with exponential backoff and
// failing fast on 4xx — those are the coordinator saying "you, not the
// weather" (meta mismatch, unenrolled worker, alien record).
func postJSON(ctx context.Context, cfg WorkerConfig, url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, cfg.Backoff<<(attempt-1)); err != nil {
				return err
			}
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := cfg.HTTP.Do(hr)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if rerr != nil {
			last = rerr
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return json.Unmarshal(payload, out)
		case resp.StatusCode >= 500:
			last = fmt.Errorf("%s: %s", resp.Status, errorBody(payload))
			continue
		default:
			return fmt.Errorf("service: %s refused: %s", url, errorBody(payload))
		}
	}
	return fmt.Errorf("service: %s unreachable after %d attempts: %w", url, cfg.MaxAttempts, last)
}

func errorBody(payload []byte) string {
	var er errorResponse
	if json.Unmarshal(payload, &er) == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(payload))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
