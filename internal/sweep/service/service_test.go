package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
)

// protoOpts is a tiny campaign for protocol-level tests: 2 configs x 1
// kernel x 3 default mappers x rr = 6 tasks. No simulation ever runs —
// records are fabricated against the task grid.
func protoOpts() sweep.Options {
	return sweep.Options{
		Configs: []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}, {Cores: 2, Warps: 2, Threads: 4}},
		Kernels: []string{"vecadd"},
		Scale:   0.05,
		Seed:    7,
	}
}

// simOpts is the campaign the end-to-end tests actually simulate (same
// shape as the sweep package's campaignOpts).
func simOpts() sweep.Options {
	return sweep.Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},
			{Cores: 2, Warps: 2, Threads: 4},
			{Cores: 4, Warps: 4, Threads: 4},
		},
		Kernels: []string{"vecadd", "saxpy"},
		Scale:   0.05,
		Seed:    7,
		Workers: 2,
	}
}

// fakeClock is a manually advanced Config.Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// doJSON drives one request through the handler, returning the status code
// and decoding a 200 body into out (when non-nil).
func doJSON(t *testing.T, s *Server, method, path string, body, out any) (int, string) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code == http.StatusOK && out != nil {
		if err := json.NewDecoder(w.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
		return w.Code, ""
	}
	var er struct {
		Error string `json:"error"`
	}
	json.NewDecoder(w.Body).Decode(&er)
	return w.Code, er.Error
}

func leaseTasks(t *testing.T, s *Server, worker string, max int, meta sweep.Meta) LeaseResponse {
	t.Helper()
	var lr LeaseResponse
	code, msg := doJSON(t, s, http.MethodPost, "/lease", LeaseRequest{Worker: worker, Proto: ProtocolVersion, Meta: meta, Max: max}, &lr)
	if code != http.StatusOK {
		t.Fatalf("lease for %s: HTTP %d: %s", worker, code, msg)
	}
	return lr
}

// fabricate builds a plausible successful record for one grid task.
func fabricate(task sweep.Task, cycles uint64) sweep.Record {
	return sweep.Record{
		Config: task.Config, Kernel: task.Kernel, Mapper: task.Mapper.Name(), Sched: task.Sched.String(),
		MSHRs: task.MSHRs, L1: task.L1, Prefetch: task.Prefetch.String(),
		LWS: 1, Cycles: cycles, Instrs: 10,
	}
}

// TestLeaseExpiryReissue pins the recovery path: a worker that leases
// tasks and dies never submits; once its lease TTL passes, the next
// worker's poll frees the tasks and claims them.
func TestLeaseExpiryReissue(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s, err := New(protoOpts(), Config{LeaseTTL: 10 * time.Second, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	meta := sweep.MetaFor(protoOpts())
	grid, err := sweep.TaskGrid(protoOpts())
	if err != nil {
		t.Fatal(err)
	}

	dead := leaseTasks(t, s, "doomed", len(grid), meta)
	if len(dead.Tasks) != len(grid) {
		t.Fatalf("leased %d tasks, want the whole grid (%d)", len(dead.Tasks), len(grid))
	}
	// Everything is leased: a second worker is told to poll, not given work.
	idle := leaseTasks(t, s, "patient", 1, meta)
	if len(idle.Tasks) != 0 || idle.Done || idle.RetryMillis <= 0 {
		t.Fatalf("second worker got %+v, want a retry hint", idle)
	}
	if st := s.Status(); st.Leased != len(grid) || st.Pending != 0 || st.Reissued != 0 {
		t.Fatalf("pre-expiry status %+v", st)
	}

	// The doomed worker dies (never submits). TTL passes; the patient
	// worker's next poll gets the re-issued tasks.
	clk.Advance(11 * time.Second)
	again := leaseTasks(t, s, "patient", len(grid), meta)
	if len(again.Tasks) != len(grid) {
		t.Fatalf("post-expiry lease got %d tasks, want %d", len(again.Tasks), len(grid))
	}
	st := s.Status()
	if st.Reissued != 1 {
		t.Errorf("reissued = %d, want 1", st.Reissued)
	}

	// The patient worker completes the campaign.
	var sr SubmitResponse
	recs := make([]sweep.Record, len(grid))
	for i, task := range grid {
		recs[i] = fabricate(task, uint64(100+i))
	}
	if code, msg := doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "patient", LeaseID: again.LeaseID, Records: recs}, &sr); code != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", code, msg)
	}
	if sr.Accepted != len(grid) || !sr.Done {
		t.Fatalf("submit response %+v", sr)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("campaign not done after full submission")
	}
	if next := leaseTasks(t, s, "patient", 1, meta); !next.Done {
		t.Fatalf("post-completion lease %+v, want Done", next)
	}
}

// TestDuplicateSubmissionLaterWins pins idempotent submission: the same
// task submitted twice (an expired lease racing its re-issue) is counted
// as a duplicate and the later record wins, matching the checkpoint
// reader's rule.
func TestDuplicateSubmissionLaterWins(t *testing.T) {
	dir := t.TempDir()
	opts := protoOpts()
	opts.Checkpoint = filepath.Join(dir, "served.jsonl")
	s, err := New(opts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	meta := sweep.MetaFor(opts)
	grid, err := sweep.TaskGrid(opts)
	if err != nil {
		t.Fatal(err)
	}

	lr := leaseTasks(t, s, "w1", len(grid), meta)
	var sr SubmitResponse
	recs := make([]sweep.Record, len(grid))
	for i, task := range grid {
		recs[i] = fabricate(task, uint64(100+i))
	}
	doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "w1", LeaseID: lr.LeaseID, Records: recs}, &sr)
	if sr.Accepted != len(grid) || sr.Duplicates != 0 {
		t.Fatalf("first submit %+v", sr)
	}
	// Re-submit task 0 with different bytes: duplicate, later wins.
	doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "w1", LeaseID: lr.LeaseID, Records: []sweep.Record{fabricate(grid[0], 999)}}, &sr)
	if sr.Accepted != 0 || sr.Duplicates != 1 || !sr.Done {
		t.Fatalf("duplicate submit %+v", sr)
	}
	res, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Cycles != 999 {
		t.Errorf("later duplicate did not win: cycles = %d", res.Records[0].Cycles)
	}
	if st := s.Status(); st.Dupes != 1 {
		t.Errorf("status dupes = %d, want 1", st.Dupes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The streamed checkpoint holds both lines; the reader keeps the later
	// one — byte-level agreement between wire dedup and file dedup.
	_, seen, err := sweep.ReadCheckpointFile(opts.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if got := seen[grid[0].Key()].Cycles; got != 999 {
		t.Errorf("checkpoint replay kept cycles %d, want 999", got)
	}
}

// TestFailureRecordedNotCheckpointed pins failure semantics: a failed
// record completes its task (campaign can finish, Err surfaces it) but is
// never checkpointed, and a later success supersedes it.
func TestFailureRecordedNotCheckpointed(t *testing.T) {
	dir := t.TempDir()
	opts := protoOpts()
	opts.Checkpoint = filepath.Join(dir, "served.jsonl")
	s, err := New(opts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	meta := sweep.MetaFor(opts)
	grid, err := sweep.TaskGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	lr := leaseTasks(t, s, "w1", len(grid), meta)
	bad := fabricate(grid[0], 0)
	bad.Err = "synthetic fault"
	recs := []sweep.Record{bad}
	for i, task := range grid[1:] {
		recs = append(recs, fabricate(task, uint64(200+i)))
	}
	var sr SubmitResponse
	doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "w1", LeaseID: lr.LeaseID, Records: recs}, &sr)
	if sr.Failed != 1 || sr.Accepted != len(grid)-1 || !sr.Done {
		t.Fatalf("submit with failure %+v", sr)
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "synthetic fault") {
		t.Fatalf("Err() = %v, want the task failure", err)
	}
	if _, err := s.Results(); err == nil {
		t.Fatal("Results succeeded with a failed task")
	}
	if st := s.Status(); st.Failed != 1 || !st.Done {
		t.Fatalf("status %+v", st)
	}
	// The failure is not in the checkpoint: a resumed serve retries it.
	_, seen, err := sweep.ReadCheckpointFile(opts.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seen[grid[0].Key()]; ok {
		t.Error("failed record was checkpointed")
	}
	// A later success (re-run after lease expiry, say) supersedes it.
	doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "w1", Records: []sweep.Record{fabricate(grid[0], 321)}}, &sr)
	if sr.Accepted != 1 {
		t.Fatalf("superseding submit %+v", sr)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() after supersede = %v", err)
	}
	if st := s.Status(); st.Failed != 0 || st.Completed != len(grid) {
		t.Fatalf("status after supersede %+v", st)
	}
}

// TestEnrollmentRefusals pins the permanent 4xx refusals: campaign-meta
// mismatch (with the differing field named), protocol-version skew, and
// submissions from workers that never enrolled.
func TestEnrollmentRefusals(t *testing.T) {
	s, err := New(protoOpts(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sweep.TaskGrid(protoOpts())
	if err != nil {
		t.Fatal(err)
	}

	foreign := protoOpts()
	foreign.Seed = 99
	code, msg := doJSON(t, s, http.MethodPost, "/lease",
		LeaseRequest{Worker: "alien", Proto: ProtocolVersion, Meta: sweep.MetaFor(foreign), Max: 1}, nil)
	if code != http.StatusConflict {
		t.Fatalf("foreign meta: HTTP %d (%s), want 409", code, msg)
	}
	if !strings.Contains(msg, "meta mismatch") || !strings.Contains(msg, "Seed") {
		t.Errorf("foreign-meta diagnostic does not name the differing field: %q", msg)
	}

	code, msg = doJSON(t, s, http.MethodPost, "/lease",
		LeaseRequest{Worker: "old", Proto: ProtocolVersion + 1, Meta: sweep.MetaFor(protoOpts()), Max: 1}, nil)
	if code != http.StatusConflict || !strings.Contains(msg, "protocol") {
		t.Fatalf("protocol skew: HTTP %d (%s), want 409 naming the protocol", code, msg)
	}

	// A worker that never passed the meta gate cannot submit.
	code, msg = doJSON(t, s, http.MethodPost, "/submit",
		SubmitRequest{Worker: "alien", Records: []sweep.Record{fabricate(grid[0], 1)}}, nil)
	if code != http.StatusForbidden || !strings.Contains(msg, "never enrolled") {
		t.Fatalf("unenrolled submit: HTTP %d (%s), want 403", code, msg)
	}

	// An enrolled worker submitting a record outside the grid is refused.
	leaseTasks(t, s, "w1", 1, sweep.MetaFor(protoOpts()))
	aliens := []sweep.Record{{Config: core.HWInfo{Cores: 64, Warps: 32, Threads: 32}, Kernel: "vecadd", Mapper: "ours", Sched: "rr"}}
	code, msg = doJSON(t, s, http.MethodPost, "/submit", SubmitRequest{Worker: "w1", Records: aliens}, nil)
	if code != http.StatusBadRequest || !strings.Contains(msg, "not in the campaign grid") {
		t.Fatalf("alien record: HTTP %d (%s), want 400", code, msg)
	}
}

// TestNewRefusals pins the option sets a coordinator cannot serve.
func TestNewRefusals(t *testing.T) {
	sharded := protoOpts()
	sharded.ShardCount = 2
	if _, err := New(sharded, Config{}); err == nil || !strings.Contains(err.Error(), "cannot be sharded") {
		t.Errorf("sharded serve: err = %v", err)
	}
	dup := protoOpts()
	dup.Configs = append(dup.Configs, dup.Configs[0])
	if _, err := New(dup, Config{}); err == nil || !strings.Contains(err.Error(), "duplicate grid entry") {
		t.Errorf("duplicate grid serve: err = %v", err)
	}
}

// TestServedCampaignByteIdentical is the tentpole contract end to end,
// in-process: a coordinator and two concurrent Work clients produce
// Records and a final canonical checkpoint byte-identical to a
// single-process sweep.Run of the same options.
func TestServedCampaignByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ref, err := sweep.Run(simOpts())
	if err != nil {
		t.Fatal(err)
	}
	refCkpt := filepath.Join(dir, "ref.jsonl")
	refOpts := simOpts()
	refOpts.Workers = 1
	refOpts.Checkpoint = refCkpt
	if _, err := sweep.Run(refOpts); err != nil {
		t.Fatal(err)
	}

	opts := simOpts()
	opts.Checkpoint = filepath.Join(dir, "served.jsonl")
	srv, err := New(opts, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(context.Background(), hs.URL, simOpts(),
				WorkerConfig{ID: fmt.Sprintf("w%d", i), BatchSize: i + 1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("workers returned but campaign not done")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ref.Records)
	got, _ := json.Marshal(res.Records)
	if !bytes.Equal(want, got) {
		t.Fatal("served records not byte-identical to single-process run")
	}
	final := filepath.Join(dir, "final.jsonl")
	if err := srv.WriteFinal(final); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}
	finalBytes, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, finalBytes) {
		t.Error("final checkpoint not byte-identical to a Workers=1 single-process checkpoint")
	}
}

// TestServeResumeSkipsRecorded pins coordinator resume: tasks already in
// the checkpoint are marked done up front and never handed out, and the
// completed campaign still reproduces the single-process records.
func TestServeResumeSkipsRecorded(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	refOpts := simOpts()
	refOpts.Workers = 1
	refOpts.Checkpoint = ckpt
	ref, err := sweep.Run(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the meta header and the first 4 records: the state a killed
	// coordinator leaves behind.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if err := os.WriteFile(ckpt, bytes.Join(lines[:5], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := simOpts()
	opts.Checkpoint = ckpt
	opts.Resume = true
	srv, err := New(opts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Status(); st.Completed != 4 {
		t.Fatalf("resumed %d tasks, want 4", st.Completed)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	executed := 0
	werr := Work(context.Background(), hs.URL, simOpts(), WorkerConfig{ID: "w1", OnRecord: func(sweep.Record) { executed++ }})
	if werr != nil {
		t.Fatal(werr)
	}
	if executed != len(ref.Records)-4 {
		t.Errorf("worker executed %d tasks, want %d", executed, len(ref.Records)-4)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ref.Records)
	got, _ := json.Marshal(res.Records)
	if !bytes.Equal(want, got) {
		t.Error("resumed served campaign not byte-identical")
	}
}

// TestWorkerMetaRefusalPermanent pins the worker side of enrollment: a
// meta mismatch is a permanent refusal (no retry loop) with the
// coordinator's diagnostic in the error.
func TestWorkerMetaRefusalPermanent(t *testing.T) {
	srv, err := New(protoOpts(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	foreign := protoOpts()
	foreign.Seed = 99
	start := time.Now()
	werr := Work(context.Background(), hs.URL, foreign, WorkerConfig{ID: "w1", Backoff: time.Second})
	if werr == nil || !strings.Contains(werr.Error(), "meta mismatch") {
		t.Fatalf("mismatched worker: err = %v", werr)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("permanent refusal went through the retry/backoff loop")
	}
}
