// Package service turns a sweep campaign into a work-stealing
// coordinator/worker fleet over HTTP. A long-lived coordinator
// (vortex-sweep serve) enumerates the canonical task grid once and hands
// out leased batches of task indices; workers (vortex-sweep work) run the
// tasks through the shared device-pool substrate and stream records back.
// The coordinator appends every accepted record to its JSONL checkpoint
// immediately (crash-safe, resumable with the existing -resume machinery),
// re-issues leases whose worker died mid-batch, and deduplicates double
// submissions by task key — later duplicates win, exactly the checkpoint
// reader's semantics — so a lease raced by its own expiry is benign, not a
// correctness hazard. Static sharding (-shard i/N) balances only
// statistically; the lease loop is dynamic, so one 64-core Sgemm point
// cannot make its worker the straggler for the whole merge.
//
// Protocol: three JSON-over-HTTP endpoints on the coordinator.
//
//	POST /lease  LeaseRequest  -> LeaseResponse  (enroll + draw a batch)
//	POST /submit SubmitRequest -> SubmitResponse (return finished records)
//	GET  /status               -> Status         (progress snapshot)
//
// Mapper objects do not serialize, so tasks cross the wire as canonical
// grid indices; both sides enumerate the same grid from their own options,
// and enrollment is gated on sweep.Meta equality so an index can never
// name different work on the two sides. Errors come back as
// {"error": "..."} with a 4xx status for permanent refusals (meta
// mismatch, unknown worker, malformed request) and 5xx for transient
// faults; the worker client retries only the latter.
package service

import "repro/internal/sweep"

// ProtocolVersion guards the wire format. A coordinator refuses workers
// speaking a different version (the task-index contract is meaningless
// across versions).
const ProtocolVersion = 1

// LeaseRequest enrolls a worker and asks for a batch of tasks.
type LeaseRequest struct {
	// Worker is the worker's self-chosen stable identity (host+pid by
	// default). It names leases for expiry accounting and must accompany
	// submissions.
	Worker string `json:"worker"`
	// Proto is the worker's ProtocolVersion.
	Proto int `json:"protocol_version"`
	// Meta is the campaign identity the worker computed from its own
	// options. It must equal the coordinator's exactly: scale, seed, grid
	// axes, checkpoint version — anything that changes a record's bytes.
	Meta sweep.Meta `json:"meta"`
	// Max bounds the batch size; the coordinator may return fewer.
	Max int `json:"max_tasks"`
}

// LeaseResponse carries a leased batch (or the instruction to wait/stop).
type LeaseResponse struct {
	// LeaseID names the lease for submission; empty when no tasks were
	// granted.
	LeaseID string `json:"lease_id,omitempty"`
	// Tasks are canonical grid indices (sweep.Task.Index) now owned by
	// this lease until it expires.
	Tasks []int `json:"tasks,omitempty"`
	// TTLMillis is how long the coordinator holds the lease open before
	// re-issuing its tasks to another worker.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// Done reports that every task is accounted for: the worker should
	// exit. Never set together with Tasks.
	Done bool `json:"done,omitempty"`
	// RetryMillis, when Tasks is empty and Done is false, asks the worker
	// to poll again after this delay (everything pending is currently
	// leased elsewhere; an expiry may free work).
	RetryMillis int64 `json:"retry_ms,omitempty"`
}

// SubmitRequest returns finished records to the coordinator.
type SubmitRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Records are completed simulation outcomes, failures included
	// (Record.Err non-empty). Records are matched to grid cells by task
	// key, not by lease, so a submission that outlived its lease still
	// lands (deduplicated, later wins).
	Records []sweep.Record `json:"records"`
}

// SubmitResponse acknowledges a submission. Records are durable in the
// coordinator's checkpoint before the acknowledgement is sent.
type SubmitResponse struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Failed     int  `json:"failed"`
	Done       bool `json:"done,omitempty"`
}

// Status is the coordinator's progress snapshot.
type Status struct {
	Total     int  `json:"total"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Leased    int  `json:"leased"`
	Pending   int  `json:"pending"`
	Workers   int  `json:"workers"`
	Reissued  int  `json:"leases_reissued"`
	Dupes     int  `json:"duplicate_submissions"`
	Done      bool `json:"done"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
