package sweep

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Merge recombines the checkpoints of a sharded campaign into the Results
// an uninterrupted single-process Run would have produced. Every path must
// be a completed shard checkpoint of the same campaign: the metas must
// agree pairwise on everything but the shard index, the shard indexes must
// cover 0..ShardCount-1 exactly once, every record must belong to the
// shard whose file holds it, and together the shards must cover the whole
// task grid. The merged Records come back in canonical grid order, so
// report, CSV and crossover rendering from merged results are
// byte-identical to the single-process run.
//
// When out is non-empty, the merged campaign is also written there as a
// single unsharded checkpoint (shard 0/1, records in canonical order),
// which a later Run with the same options can -resume from directly.
func Merge(out string, paths []string) (*Results, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sweep: merge: no shard checkpoints given")
	}
	metas := make([]Meta, len(paths))
	shards := make([]map[string]Record, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("sweep: merge: %w", err)
		}
		meta, recs, err := ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("sweep: merge: %s: %w", path, err)
		}
		if meta == nil {
			return nil, fmt.Errorf("sweep: merge: %s has no meta header", path)
		}
		metas[i] = *meta
		shards[i] = recs
	}

	// Pairwise meta agreement, modulo the shard index. A scheduler-axis
	// disagreement gets its own diagnostic: mixing shards of campaigns
	// that swept different policy sets is the likeliest way to end up
	// here since the sched axis became part of the grid.
	base := metas[0]
	base.ShardIndex = 0
	for i := 1; i < len(metas); i++ {
		m := metas[i]
		m.ShardIndex = 0
		if m.Scheds != base.Scheds {
			return nil, fmt.Errorf("sweep: merge: mixed-sched shard set: %s sweeps schedulers %q but %s sweeps %q",
				paths[0], base.Scheds, paths[i], m.Scheds)
		}
		if m.MSHRs != base.MSHRs || m.L1Geoms != base.L1Geoms || m.Prefetch != base.Prefetch {
			// Like the scheduler, the memory axes get a named diagnostic:
			// mixing shards that swept different memory grids is the likely
			// mistake now that they are part of the task identity.
			return nil, fmt.Errorf("sweep: merge: mixed memory-axis shard set: %s sweeps mshrs=%q l1=%q prefetch=%q but %s sweeps mshrs=%q l1=%q prefetch=%q",
				paths[0], base.MSHRs, base.L1Geoms, base.Prefetch, paths[i], m.MSHRs, m.L1Geoms, m.Prefetch)
		}
		if m != base {
			return nil, fmt.Errorf("sweep: merge: meta mismatch: %s and %s were written with different sweep options",
				paths[0], paths[i])
		}
	}

	// Shard indexes must be 0..ShardCount-1, each exactly once.
	count := base.ShardCount
	byIndex := make(map[int]string, len(paths))
	for i, m := range metas {
		if m.ShardIndex < 0 || m.ShardIndex >= count {
			return nil, fmt.Errorf("sweep: merge: %s: shard index %d out of range for %d shards",
				paths[i], m.ShardIndex, count)
		}
		if prev, dup := byIndex[m.ShardIndex]; dup {
			return nil, fmt.Errorf("sweep: merge: overlapping shards: %s and %s both cover shard %d/%d",
				prev, paths[i], m.ShardIndex, count)
		}
		byIndex[m.ShardIndex] = paths[i]
	}
	for s := 0; s < count; s++ {
		if _, ok := byIndex[s]; !ok {
			return nil, fmt.Errorf("sweep: merge: missing shard %d/%d: grid not covered", s, count)
		}
	}

	// Reconstruct the canonical task grid from the meta and place every
	// shard record at its grid index, verifying shard membership.
	configs := splitAxis(base.Configs)
	kernels := splitAxis(base.Kernels)
	mappers := splitAxis(base.Mappers)
	scheds := splitAxis(base.Scheds)
	mshrs := splitAxis(base.MSHRs)
	l1s := splitAxis(base.L1Geoms)
	prefetch := splitAxis(base.Prefetch)
	if len(configs) == 0 || len(kernels) == 0 || len(mappers) == 0 || len(scheds) == 0 ||
		len(mshrs) == 0 || len(l1s) == 0 || len(prefetch) == 0 {
		return nil, fmt.Errorf("sweep: merge: %s: meta does not describe a task grid", paths[0])
	}
	// A repeated scheduler gets its own diagnostic (mirroring Options
	// validation, which refuses it before any run): the generic
	// duplicate-task check below would fire too, but naming the policy makes
	// a hand-edited meta diagnosable.
	if dup := firstDuplicate(scheds); dup != "" {
		return nil, fmt.Errorf("sweep: merge: %s: duplicate scheduler %s on the campaign sched axis", paths[0], dup)
	}
	size := len(configs) * len(kernels) * len(mappers) * len(scheds) * len(mshrs) * len(l1s) * len(prefetch)
	keyIdx := make(map[string]int, size)
	keys := make([]string, 0, size)
	for _, c := range configs {
		for _, k := range kernels {
			for _, m := range mappers {
				for _, s := range scheds {
					for _, ms := range mshrs {
						for _, l1 := range l1s {
							for _, pf := range prefetch {
								key := taskKey(c, k, m, s, ms, l1, pf)
								if _, dup := keyIdx[key]; dup {
									// Run refuses to checkpoint such a grid; a meta claiming
									// one is hand-edited, and shard membership would be
									// ambiguous.
									return nil, fmt.Errorf("sweep: merge: %s: duplicate task %s in the campaign grid", paths[0], key)
								}
								keyIdx[key] = len(keys)
								keys = append(keys, key)
							}
						}
					}
				}
			}
		}
	}
	merged := make([]*Record, len(keys))
	for i, recs := range shards {
		shard := metas[i].ShardIndex
		for key := range recs {
			rec := recs[key]
			gi, ok := keyIdx[key]
			if !ok {
				return nil, fmt.Errorf("sweep: merge: %s: record %s is not in the campaign grid", paths[i], key)
			}
			if gi%count != shard {
				return nil, fmt.Errorf("sweep: merge: record %s belongs to shard %d/%d but appears in %s (shard %d)",
					key, gi%count, count, paths[i], shard)
			}
			merged[gi] = &rec
		}
	}
	missing := 0
	firstMissing := ""
	for gi, rec := range merged {
		if rec == nil {
			if missing == 0 {
				firstMissing = keys[gi]
			}
			missing++
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("sweep: merge: grid not covered: %d of %d tasks missing (first: %s)",
			missing, len(keys), firstMissing)
	}

	res := &Results{Records: make([]Record, len(merged))}
	for gi, rec := range merged {
		res.Records[gi] = *rec
	}
	res.Options = optionsFromMeta(base, configs, kernels, scheds, mshrs, l1s, prefetch)
	if out != "" {
		if err := WriteCheckpoint(out, base, res.Records); err != nil {
			return nil, fmt.Errorf("sweep: merge: %w", err)
		}
	}
	return res, nil
}

// firstDuplicate returns the first repeated entry of axis, or "".
func firstDuplicate(axis []string) string {
	seen := make(map[string]bool, len(axis))
	for _, name := range axis {
		if seen[name] {
			return name
		}
		seen[name] = true
	}
	return ""
}

// splitAxis splits one comma-joined grid axis from the meta; an empty
// string is an empty axis, not [""].
func splitAxis(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// optionsFromMeta reconstructs the sweep parameters recorded in a merged
// checkpoint meta, for reporting. Mappers are left nil: mapper objects
// cannot be rebuilt from their names, and the render paths only read
// Records. Unparseable config, scheduler, MSHR or prefetch names are
// skipped (they cannot occur in a meta Run wrote).
func optionsFromMeta(m Meta, configs, kernels, scheds, mshrs, l1s, prefetch []string) Options {
	opts := Options{
		Kernels:          kernels,
		L1Geoms:          l1s,
		Scale:            m.Scale,
		Seed:             m.Seed,
		Verify:           m.Verify,
		DispatchOverhead: m.DispatchOverhead,
		NoCoalesce:       m.NoCoalesce,
		ConfigTag:        m.ConfigTag,
	}
	for _, name := range configs {
		if hw, err := core.ParseName(name); err == nil {
			opts.Configs = append(opts.Configs, hw)
		}
	}
	for _, name := range scheds {
		if p, err := sim.ParseSchedPolicy(name); err == nil {
			opts.Scheds = append(opts.Scheds, p)
		}
	}
	for _, name := range mshrs {
		if n, err := strconv.Atoi(name); err == nil {
			opts.MSHRs = append(opts.MSHRs, n)
		}
	}
	for _, name := range prefetch {
		if p, err := mem.ParsePrefetchPolicy(name); err == nil {
			opts.Prefetch = append(opts.Prefetch, p)
		}
	}
	return opts
}

// WriteCheckpoint writes records as a single unsharded checkpoint file:
// the given meta with shard 0/1, then every record in the order given
// (canonical grid order for Merge and the campaign service) — exactly the
// file a single-process Workers=1 checkpointed Run would have produced.
func WriteCheckpoint(path string, meta Meta, records []Record) error {
	meta.ShardIndex = 0
	meta.ShardCount = 1
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	werr := func() error {
		if err := writeJSONLine(w, meta); err != nil {
			return err
		}
		for _, rec := range records {
			if err := writeJSONLine(w, rec); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}
