package sweep

import (
	"bytes"
	"testing"
)

// Sweep-level half of the batched-execution differential harness: a
// campaign whose devices run the per-warp oracle path
// (Options.NoBatchExec -> sim.Config.BatchExec=false) must produce records
// byte-identical to the default batched campaign, across the geometry,
// kernel, mapper and scheduler axes. internal/sim pins the same property
// at the bare-simulator and kernel-registry levels.
func TestSweepBatchExecRecordIdentity(t *testing.T) {
	batched, err := Run(schedCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := schedCampaignOpts()
	opts.NoBatchExec = true
	oracle, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, batched.Records), mustJSON(t, oracle.Records)) {
		for i := range batched.Records {
			if !bytes.Equal(mustJSON(t, batched.Records[i]), mustJSON(t, oracle.Records[i])) {
				t.Errorf("record %d differs:\nbatched   %+v\nunbatched %+v", i, batched.Records[i], oracle.Records[i])
			}
		}
		t.Fatal("batched sweep records not byte-identical to the per-warp oracle")
	}
}

// TestSweepBatchMemRecordIdentity is the batched-memory half: a campaign
// whose devices run every load and store on the per-warp path
// (Options.NoBatchMem -> sim.Config.BatchMem=false) must produce records
// byte-identical to the default campaign, which batches memory cohorts
// through affine address templates. internal/sim pins the same property at
// the bare-simulator level (batch_mem_test.go).
func TestSweepBatchMemRecordIdentity(t *testing.T) {
	batched, err := Run(schedCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := schedCampaignOpts()
	opts.NoBatchMem = true
	oracle, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, batched.Records), mustJSON(t, oracle.Records)) {
		for i := range batched.Records {
			if !bytes.Equal(mustJSON(t, batched.Records[i]), mustJSON(t, oracle.Records[i])) {
				t.Errorf("record %d differs:\nbatched   %+v\nunbatched %+v", i, batched.Records[i], oracle.Records[i])
			}
		}
		t.Fatal("batched-memory sweep records not byte-identical to the per-warp oracle")
	}
}
