package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestGridIs450AndSpansCorners(t *testing.T) {
	g := Grid()
	if len(g) != 450 {
		t.Fatalf("grid size = %d, want 450", len(g))
	}
	seen := map[string]bool{}
	for _, hw := range g {
		if seen[hw.Name()] {
			t.Fatalf("duplicate config %s", hw.Name())
		}
		seen[hw.Name()] = true
	}
	if !seen["1c2w2t"] {
		t.Error("grid missing 1c2w2t (paper's lower corner)")
	}
	if !seen["64c32w32t"] {
		t.Error("grid missing 64c32w32t (paper's upper corner)")
	}
}

func TestSubsample(t *testing.T) {
	g := Grid()
	s := Subsample(g, 45)
	if len(s) != 45 {
		t.Fatalf("subsample size = %d", len(s))
	}
	// Deterministic.
	s2 := Subsample(g, 45)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("subsample not deterministic")
		}
	}
	// Keeps spread: small and large cores, and every axis must vary (a
	// strided pick would alias the threads axis to a single value).
	minCores, maxCores := s[0].Cores, s[0].Cores
	for _, hw := range s {
		if hw.Cores < minCores {
			minCores = hw.Cores
		}
		if hw.Cores > maxCores {
			maxCores = hw.Cores
		}
	}
	if minCores > 4 {
		t.Errorf("subsample lost the small end (min cores %d)", minCores)
	}
	if maxCores < 40 {
		t.Errorf("subsample lost the large end (max cores %d)", maxCores)
	}
	threads := map[int]bool{}
	warps := map[int]bool{}
	for _, hw := range s {
		threads[hw.Threads] = true
		warps[hw.Warps] = true
	}
	if len(threads) < 4 || len(warps) < 4 {
		t.Errorf("subsample aliased an axis: threads %v warps %v", threads, warps)
	}
	if got := Subsample(g, 0); len(got) != len(g) {
		t.Error("n=0 should return full grid")
	}
	if got := Subsample(g, 10000); len(got) != len(g) {
		t.Error("n>len should return full grid")
	}
}

// TestSubsampleGridOrderPreserved pins that the subset comes back in grid
// order (a subsequence of Grid()) — checkpoint resume and CSV diffs rely on
// task order being deterministic — and that the same n always yields the
// same subset while different n yield nested-from-the-same-shuffle picks.
func TestSubsampleGridOrderPreserved(t *testing.T) {
	g := Grid()
	for _, n := range []int{1, 10, 45, 120, 449} {
		s := Subsample(g, n)
		if len(s) != n {
			t.Fatalf("n=%d: got %d configs", n, len(s))
		}
		pos := -1
		for i, hw := range s {
			found := -1
			for j := pos + 1; j < len(g); j++ {
				if g[j] == hw {
					found = j
					break
				}
			}
			if found < 0 {
				t.Fatalf("n=%d: element %d (%s) out of grid order", n, i, hw.Name())
			}
			pos = found
		}
		s2 := Subsample(g, n)
		for i := range s {
			if s[i] != s2[i] {
				t.Fatalf("n=%d: subsample not deterministic at %d", n, i)
			}
		}
	}
}

// smallSweep runs a fast verified sweep used by several tests.
func smallSweep(t *testing.T, names []string) *Results {
	t.Helper()
	res, err := Run(Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},
			{Cores: 2, Warps: 2, Threads: 4},
			{Cores: 4, Warps: 4, Threads: 4},
		},
		Kernels: names,
		Scale:   0.05,
		Seed:    7,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSweepShardedCommitDeterminism pins that the CommitWorkers plumbing
// reaches the simulator and cannot change sweep results: a sweep whose
// devices run the parallel engine with a forced bank/channel-sharded
// commit must reproduce the sequential sweep record for record.
func TestSweepShardedCommitDeterminism(t *testing.T) {
	run := func(simWorkers, commitWorkers int) *Results {
		res, err := Run(Options{
			Configs: []core.HWInfo{
				{Cores: 2, Warps: 2, Threads: 4},
				{Cores: 4, Warps: 4, Threads: 4},
			},
			Kernels:       []string{"vecadd", "saxpy"},
			Scale:         0.05,
			Seed:          7,
			Workers:       1,
			SimWorkers:    simWorkers,
			CommitWorkers: commitWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(-1, 0) // sequential engine
	par := run(4, 4)  // parallel engine, forced sharded commit
	for i := range seq.Records {
		a, b := seq.Records[i], par.Records[i]
		if a.Cycles != b.Cycles || a.Instrs != b.Instrs ||
			a.MemStall != b.MemStall || a.ExecStall != b.ExecStall ||
			a.EnergyPJ != b.EnergyPJ {
			t.Errorf("record %d differs:\nseq %+v\npar %+v", i, a, b)
		}
	}
}

func TestSweepRunsAndVerifies(t *testing.T) {
	res := smallSweep(t, []string{"vecadd", "saxpy"})
	// 3 configs x 2 kernels x 3 mappers.
	if len(res.Records) != 18 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for _, r := range res.Records {
		if r.Err != "" {
			t.Fatalf("run failed: %+v", r)
		}
		if r.Cycles == 0 || r.Instrs == 0 {
			t.Fatalf("empty record: %+v", r)
		}
	}
	if got := res.Mappers(); len(got) != 3 {
		t.Errorf("mappers = %v", got)
	}
	if got := res.Kernels(); len(got) != 2 {
		t.Errorf("kernels = %v", got)
	}
}

func TestRatiosAndSummaries(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	naive := res.Ratios("vecadd", "lws=1", "ours")
	fixed := res.Ratios("vecadd", "lws=32", "ours")
	if len(naive) != 3 || len(fixed) != 3 {
		t.Fatalf("ratio counts: %d, %d", len(naive), len(fixed))
	}
	// Ours must never be dramatically slower than either baseline, and on
	// average at least as good.
	sums := res.Summaries()
	if len(sums) != 1 || sums[0].Kernel != "vecadd" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].VsNaive.Avg < 0.95 {
		t.Errorf("ours slower than naive on average: %+v", sums[0].VsNaive)
	}
	if sums[0].VsFixed.Avg < 0.95 {
		t.Errorf("ours slower than fixed on average: %+v", sums[0].VsFixed)
	}
}

func TestAggregates(t *testing.T) {
	res := smallSweep(t, []string{"vecadd", "relu"})
	aggs := res.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %+v", aggs)
	}
	if aggs[0].Group != "math" || aggs[0].Kernels != 2 {
		t.Errorf("aggregate = %+v", aggs[0])
	}
	if aggs[0].VsNaive <= 0 || aggs[0].VsFixed <= 0 {
		t.Errorf("aggregate ratios = %+v", aggs[0])
	}
}

func TestCSVAndTableRendering(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+9 {
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "config,cores") {
		t.Errorf("csv header = %q", lines[0])
	}

	buf.Reset()
	if err := res.RenderTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vecadd") || !strings.Contains(out, "aggregate math") {
		t.Errorf("table missing rows:\n%s", out)
	}
}

func TestRenderFigure2(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	var buf bytes.Buffer
	if err := res.RenderFigure2(&buf, stats.ViolinOptions{Rows: 9, HalfWidth: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== vecadd ===") || !strings.Contains(out, "lws=32 / ours") {
		t.Errorf("figure missing sections:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if len(o.Configs) != 450 {
		t.Errorf("default configs = %d", len(o.Configs))
	}
	if len(o.Kernels) != 9 {
		t.Errorf("default kernels = %d", len(o.Kernels))
	}
	if len(o.Mappers) != 3 {
		t.Errorf("default mappers = %d", len(o.Mappers))
	}
	if o.Scale != 1 || o.Workers < 1 {
		t.Errorf("defaults: %+v", o)
	}
}

func TestUnknownKernelFails(t *testing.T) {
	_, err := Run(Options{
		Configs: []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}},
		Kernels: []string{"nope"},
		Scale:   0.05,
	})
	if err == nil {
		t.Fatal("unknown kernel did not fail")
	}
}

func TestOptimalWinsOnAverage(t *testing.T) {
	// The key qualitative reproduction at sweep level: across a spread of
	// configurations (tiny hp where lws=32 over-batches, the Fig. 1 setup,
	// and a huge hp where lws=32 under-fills), "ours" is the fastest
	// mapping on average. Individual configs may favor a baseline by a few
	// percent — the paper reports the same cut-offs slightly below 1.
	res, err := Run(Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},   // hp=4: lws=32 -> deep batching for ours? no: 8 batches for... tasks=32
			{Cores: 1, Warps: 2, Threads: 4},   // Fig. 1 setup
			{Cores: 2, Warps: 4, Threads: 8},   // mid
			{Cores: 16, Warps: 8, Threads: 16}, // hp=2048 > gws: lws=32 under-fills badly
		},
		Kernels: []string{"vecadd"},
		Scale:   0.25, // 1024 elements
		Seed:    3,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Summaries() {
		if s.VsNaive.Avg <= 1 {
			t.Errorf("%s: ours not faster than lws=1 on average (%.3f)", s.Kernel, s.VsNaive.Avg)
		}
		if s.VsFixed.Avg <= 1 {
			t.Errorf("%s: ours not faster than lws=32 on average (%.3f)", s.Kernel, s.VsFixed.Avg)
		}
		// Ours must never be catastrophically slower anywhere (the violins'
		// worst entries hover near 1 for vecadd in the paper).
		if s.VsNaive.Worst < 0.7 || s.VsFixed.Worst < 0.7 {
			t.Errorf("%s: catastrophic worst case: naive %.2f fixed %.2f",
				s.Kernel, s.VsNaive.Worst, s.VsFixed.Worst)
		}
	}
}

func TestCrossoverCurve(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	curve := res.CrossoverCurve("vecadd", "lws=32")
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].HP <= curve[i-1].HP {
			t.Error("curve not sorted by hp")
		}
	}
	for _, p := range curve {
		if p.MeanRatio <= 0 || p.N == 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	var buf bytes.Buffer
	if err := res.RenderCrossover(&buf, "lws=32"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vecadd vs lws=32") {
		t.Errorf("render missing header:\n%s", buf.String())
	}
}

func TestCrossoverHP(t *testing.T) {
	// Synthetic results: baseline loses only above hp=16.
	res := &Results{}
	add := func(c, w, th int, mapper string, cycles uint64) {
		res.Records = append(res.Records, Record{
			Config: core.HWInfo{Cores: c, Warps: w, Threads: th},
			Kernel: "k", Mapper: mapper, Cycles: cycles,
		})
	}
	add(1, 2, 2, "ours", 100)
	add(1, 2, 2, "lws=32", 90) // hp=4: baseline wins
	add(2, 2, 4, "ours", 100)
	add(2, 2, 4, "lws=32", 150) // hp=16: ours wins
	add(4, 4, 4, "ours", 100)
	add(4, 4, 4, "lws=32", 300) // hp=64: ours wins
	if hp := res.CrossoverHP("k", "lws=32"); hp != 16 {
		t.Errorf("crossover = %d, want 16", hp)
	}
	// Baseline never loses -> -1.
	res2 := &Results{}
	res2.Records = append(res2.Records,
		Record{Config: core.HWInfo{Cores: 1, Warps: 2, Threads: 2}, Kernel: "k", Mapper: "ours", Cycles: 100},
		Record{Config: core.HWInfo{Cores: 1, Warps: 2, Threads: 2}, Kernel: "k", Mapper: "lws=32", Cycles: 50},
	)
	if hp := res2.CrossoverHP("k", "lws=32"); hp != -1 {
		t.Errorf("no-crossover = %d, want -1", hp)
	}
}

// TestCrossoverHPEdgeCases pins the boundary behavior of the crossover
// scan: an empty curve, a curve where the baseline loses everywhere, a
// curve that ends with the baseline winning (no stable crossover even
// though it lost earlier), and a single-band curve on each side.
func TestCrossoverHPEdgeCases(t *testing.T) {
	add := func(res *Results, c, w, th int, mapper string, cycles uint64) {
		res.Records = append(res.Records, Record{
			Config: core.HWInfo{Cores: c, Warps: w, Threads: th},
			Kernel: "k", Mapper: mapper, Cycles: cycles,
		})
	}

	// Empty curve: unknown kernel/baseline, or no matching "ours" sample.
	empty := &Results{}
	if hp := empty.CrossoverHP("k", "lws=32"); hp != -1 {
		t.Errorf("empty results: crossover = %d, want -1", hp)
	}
	noOurs := &Results{}
	add(noOurs, 1, 2, 2, "lws=32", 90)
	if hp := noOurs.CrossoverHP("k", "lws=32"); hp != -1 {
		t.Errorf("baseline without ours samples: crossover = %d, want -1", hp)
	}

	// Every band >= 1: ours wins from the very first hp.
	allWin := &Results{}
	add(allWin, 1, 2, 2, "ours", 100)
	add(allWin, 1, 2, 2, "lws=32", 100) // ratio exactly 1 counts as won
	add(allWin, 2, 2, 4, "ours", 100)
	add(allWin, 2, 2, 4, "lws=32", 250)
	if hp := allWin.CrossoverHP("k", "lws=32"); hp != 4 {
		t.Errorf("all-bands-won: crossover = %d, want 4 (the smallest hp)", hp)
	}

	// Last band < 1: the baseline wins again at the top of the grid, so
	// there is no hp from which ours stays ahead — even though ours won a
	// middle band.
	regress := &Results{}
	add(regress, 1, 2, 2, "ours", 100)
	add(regress, 1, 2, 2, "lws=32", 90)
	add(regress, 2, 2, 4, "ours", 100)
	add(regress, 2, 2, 4, "lws=32", 150)
	add(regress, 4, 4, 4, "ours", 100)
	add(regress, 4, 4, 4, "lws=32", 80)
	if hp := regress.CrossoverHP("k", "lws=32"); hp != -1 {
		t.Errorf("regressing top band: crossover = %d, want -1", hp)
	}

	// Single band: whichever side of 1 it lands on decides alone.
	oneWin := &Results{}
	add(oneWin, 1, 2, 2, "ours", 100)
	add(oneWin, 1, 2, 2, "lws=32", 110)
	if hp := oneWin.CrossoverHP("k", "lws=32"); hp != 4 {
		t.Errorf("single winning band: crossover = %d, want 4", hp)
	}
}

func TestEnergyRatiosAndTable(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	for _, rec := range res.Records {
		if rec.EnergyPJ <= 0 {
			t.Fatalf("record without energy: %+v", rec)
		}
	}
	er := res.EnergyRatios("vecadd", "lws=1", "ours")
	if len(er) != 3 {
		t.Fatalf("energy ratios = %v", er)
	}
	// lws=1 executes more instructions; its energy ratio must exceed 1.
	for _, v := range er {
		if v <= 1 {
			t.Errorf("lws=1 energy ratio %v <= 1", v)
		}
	}
	var buf bytes.Buffer
	if err := res.RenderEnergyTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "energy lws=1/ours") {
		t.Errorf("energy table header missing:\n%s", buf.String())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res := smallSweep(t, []string{"vecadd"})
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(res.Records) {
		t.Fatalf("records %d != %d", len(back.Records), len(res.Records))
	}
	for i := range res.Records {
		a, b := res.Records[i], back.Records[i]
		if a.Config != b.Config || a.Kernel != b.Kernel || a.Mapper != b.Mapper ||
			a.LWS != b.LWS || a.Cycles != b.Cycles || a.Instrs != b.Instrs {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	// Derived analyses agree.
	r1 := res.Ratios("vecadd", "lws=1", "ours")
	r2 := back.Ratios("vecadd", "lws=1", "ours")
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ratio %d: %v != %v", i, r1[i], r2[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2\n",
		"config,kernel,mapper,lws,cycles\nnotaconfig,k,m,1,10\n",
		"config,kernel,mapper,lws,cycles\n1c2w2t,k,m,x,10\n",
		"config,kernel,mapper,lws,cycles\n1c2w2t,k\n",
		"config,kernel,mapper,lws,cycles,boundedness\n1c2w2t,k,m,1,10,Memory-Bound\n",
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestWriteCSVSanitizesErr pins that free-form error strings cannot break
// the CSV row structure: commas survive the round trip (err is the last
// column and is rejoined on read), newlines are flattened on write.
func TestWriteCSVSanitizesErr(t *testing.T) {
	res := &Results{Records: []Record{{
		Config: core.HWInfo{Cores: 1, Warps: 2, Threads: 2},
		Kernel: "k", Mapper: "m",
		Err: "bad dims, want 2,\ngot 3\r\nsomehow",
	}}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("CSV written by WriteCSV unreadable: %v", err)
	}
	if len(back.Records) != 1 {
		t.Fatalf("round trip produced %d records", len(back.Records))
	}
	if got, want := back.Records[0].Err, "bad dims, want 2, got 3  somehow"; got != want {
		t.Errorf("err round trip = %q, want %q", got, want)
	}
}
