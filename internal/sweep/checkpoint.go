package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Checkpoint format: a JSONL file. The first line is a meta header binding
// the checkpoint to the sweep options that produced it; every following
// line is one JSON-encoded Record, appended (and flushed) as its simulation
// completes, in completion order. encoding/json round-trips every Record
// field exactly (shortest-round-trip floats, full-precision integers), so a
// resumed campaign that splices checkpointed records into the task grid is
// byte-identical to an uninterrupted run. Failed records (Record.Err != "")
// are never checkpointed: a resume retries them.

// checkpointVersion guards the line format. Version 2 added the shard
// identity and the canonical task grid to the meta header; version 3 added
// the warp-scheduler grid axis (meta `scheds`, per-record `Sched`);
// version 4 added the memory-side grid axes (meta `mshrs`, `l1_geoms`,
// `prefetch`, per-record `MSHRs`/`L1`/`Prefetch`). Older files are refused
// rather than guessed at: a v3 record carries no memory-axis identity, so
// splicing it into a v4 grid would silently assign it to an arbitrary
// grid cell.
const checkpointVersion = 4

// Meta pins the sweep parameters that determine per-record simulation
// results, the canonical task grid, and which shard of it this checkpoint
// covers. A resume against a checkpoint whose meta differs would silently
// splice records from a different experiment (or from the wrong shard), so
// Run refuses it; Merge requires all shard metas to agree on everything but
// ShardIndex; the campaign service refuses workers whose meta differs from
// the served campaign's. Meta is a comparable value: two campaigns are the
// same experiment exactly when their metas are ==.
type Meta struct {
	Version          int     `json:"checkpoint_version"`
	Scale            float64 `json:"scale"`
	Seed             int64   `json:"seed"`
	Verify           bool    `json:"verify"`
	DispatchOverhead int64   `json:"dispatch_overhead"`
	NoCoalesce       bool    `json:"no_coalesce"`
	ConfigTag        string  `json:"config_tag,omitempty"`
	ShardIndex       int     `json:"shard_index"`
	ShardCount       int     `json:"shard_count"`
	// Configs, Kernels, Mappers, Scheds, MSHRs, L1Geoms and Prefetch are
	// the comma-joined axes of the canonical task grid, in grid order. They
	// let Merge reconstruct the full task list (and verify shard coverage)
	// from shard files alone.
	Configs  string `json:"configs"`
	Kernels  string `json:"kernels"`
	Mappers  string `json:"mappers"`
	Scheds   string `json:"scheds"`
	MSHRs    string `json:"mshrs"`
	L1Geoms  string `json:"l1_geoms"`
	Prefetch string `json:"prefetch"`
}

// MetaFor computes the campaign identity of opts (after defaulting). It is
// the value the checkpoint header carries and the campaign service
// validates worker enrollment against.
func MetaFor(opts Options) Meta {
	opts.fill()
	configs := make([]string, len(opts.Configs))
	for i, hw := range opts.Configs {
		configs[i] = hw.Name()
	}
	mappers := make([]string, len(opts.Mappers))
	for i, m := range opts.Mappers {
		mappers[i] = m.Name()
	}
	scheds := make([]string, len(opts.Scheds))
	for i, p := range opts.Scheds {
		scheds[i] = p.String()
	}
	mshrs := make([]string, len(opts.MSHRs))
	for i, n := range opts.MSHRs {
		mshrs[i] = strconv.Itoa(n)
	}
	prefetch := make([]string, len(opts.Prefetch))
	for i, p := range opts.Prefetch {
		prefetch[i] = p.String()
	}
	count := opts.ShardCount
	if count < 1 {
		count = 1
	}
	return Meta{
		Version:          checkpointVersion,
		Scale:            opts.Scale,
		Seed:             opts.Seed,
		Verify:           opts.Verify,
		DispatchOverhead: opts.DispatchOverhead,
		NoCoalesce:       opts.NoCoalesce,
		ConfigTag:        opts.ConfigTag,
		ShardIndex:       opts.ShardIndex,
		ShardCount:       count,
		Configs:          strings.Join(configs, ","),
		Kernels:          strings.Join(opts.Kernels, ","),
		Mappers:          strings.Join(mappers, ","),
		Scheds:           strings.Join(scheds, ","),
		MSHRs:            strings.Join(mshrs, ","),
		L1Geoms:          strings.Join(opts.L1Geoms, ","),
		Prefetch:         strings.Join(prefetch, ","),
	}
}

// taskKey is the single definition of a task's identity string; the resume
// splice, Record.Key and Merge's grid reconstruction must all agree on it.
func taskKey(config, kernel, mapper, sched, mshrs, l1, prefetch string) string {
	return config + "/" + kernel + "/" + mapper + "/" + sched + "/" + mshrs + "/" + l1 + "/" + prefetch
}

// Key identifies the record's task: one (config, kernel, mapper, sched,
// mshrs, l1, prefetch) cell of the campaign grid. Resume skips tasks whose
// key is already checkpointed.
func (r Record) Key() string {
	return taskKey(r.Config.Name(), r.Kernel, r.Mapper, r.Sched, strconv.Itoa(r.MSHRs), r.L1, r.Prefetch)
}

// ReadCheckpoint parses a JSONL checkpoint stream into its meta header (nil
// if the stream is empty or headerless) and the recorded tasks by Key.
// Later duplicates of a key win, so a checkpoint appended to by several
// partial runs stays usable. A final line that is not newline-terminated
// and does not parse is dropped rather than refused: it is the torn write
// of a campaign killed mid-record (a strict prefix of a JSON object is
// never itself valid JSON, so a torn line cannot be mistaken for a
// complete one), and the resumed campaign simply retries that task.
// Corrupt lines anywhere else in the stream are an error.
func ReadCheckpoint(rd io.Reader) (*Meta, map[string]Record, error) {
	out := map[string]Record{}
	var meta *Meta
	br := bufio.NewReaderSize(rd, 1<<16)
	first := true
	for {
		line, terminated, rerr := readCheckpointLine(br)
		if rerr != nil && rerr != io.EOF {
			return nil, nil, rerr
		}
		if len(line) > 0 {
			isMetaCandidate := first
			first = false
			parsed := false
			if isMetaCandidate {
				var m Meta
				if err := json.Unmarshal(line, &m); err == nil && m.Version > 0 {
					if m.Version != checkpointVersion {
						return nil, nil, fmt.Errorf("sweep: checkpoint version %d not supported (this build reads v%d; v3 files predate the memory-side grid axes — MSHRs, L1 geometry, prefetch — and carry no per-record values for them, so they cannot be spliced — re-run the campaign)",
							m.Version, checkpointVersion)
					}
					meta = &m
					parsed = true
				}
			}
			if !parsed {
				var rec Record
				if err := json.Unmarshal(line, &rec); err != nil {
					if !terminated {
						return meta, out, nil // torn tail of a killed writer
					}
					return nil, nil, fmt.Errorf("sweep: corrupt checkpoint line: %w", err)
				}
				if rec.Kernel == "" || rec.Mapper == "" {
					return nil, nil, fmt.Errorf("sweep: checkpoint line missing task identity: %q", line)
				}
				out[rec.Key()] = rec
			}
		}
		if rerr == io.EOF {
			return meta, out, nil
		}
	}
}

// maxCheckpointLine bounds one checkpoint line: real meta headers are a few
// KiB (450 config names) and records a few hundred bytes, so anything past
// this is a corrupt file, refused instead of read wholesale into memory
// (or mistaken for a benign torn tail).
const maxCheckpointLine = 1 << 20

// readCheckpointLine reads the next line of at most maxCheckpointLine
// bytes, reporting whether its newline terminator was present. The final
// line of a stream comes back with io.EOF (and terminated=false when the
// stream ends mid-line).
func readCheckpointLine(br *bufio.Reader) (line []byte, terminated bool, err error) {
	for {
		frag, ferr := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > maxCheckpointLine {
			return nil, false, fmt.Errorf("sweep: checkpoint line exceeds %d bytes", maxCheckpointLine)
		}
		switch ferr {
		case nil:
			return bytes.TrimSuffix(line, []byte("\n")), true, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return line, false, io.EOF
		default:
			return nil, false, ferr
		}
	}
}

// ReadCheckpointFile loads a checkpoint from disk; a missing file is an
// empty checkpoint, not an error (first run of a resumable campaign).
func ReadCheckpointFile(path string) (*Meta, map[string]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, map[string]Record{}, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ResumeRecords loads opts.Checkpoint and validates it against opts,
// returning the recorded tasks by Key. It is the single resume gate Run and
// the campaign service share: a checkpoint written by a different
// experiment (or carrying records it cannot bind to options) is refused
// rather than spliced.
func ResumeRecords(opts Options) (map[string]Record, error) {
	opts.fill()
	meta, seen, err := ReadCheckpointFile(opts.Checkpoint)
	if err != nil {
		return nil, err
	}
	if meta == nil && len(seen) > 0 {
		// Records without the meta header cannot be validated against
		// this sweep's options; splicing them in could silently break
		// the byte-identity contract.
		return nil, fmt.Errorf("checkpoint %s has records but no meta header", opts.Checkpoint)
	}
	if meta != nil && *meta != MetaFor(opts) {
		return nil, fmt.Errorf("checkpoint %s was written with different sweep options (%+v)", opts.Checkpoint, *meta)
	}
	return seen, nil
}

// CheckpointWriter appends records to the JSONL checkpoint as they
// complete, flushing per record so a killed campaign loses at most the
// records in flight. It is safe for concurrent use.
type CheckpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenCheckpoint opens path for streaming. resume appends to an existing
// file; otherwise the file is truncated. A fresh (or empty) file gets the
// meta header for opts first. On resume, an unterminated final line — the
// torn write of a killed campaign, which ReadCheckpoint ignores — is cut
// off first, so the retried record starts on a fresh line instead of
// concatenating onto the torn bytes and corrupting the file.
func OpenCheckpoint(path string, resume bool, opts Options) (*CheckpointWriter, error) {
	opts.fill()
	flags := os.O_RDWR | os.O_CREATE
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if resume {
		if size, err = repairTornTail(f, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	c := &CheckpointWriter{f: f, w: bufio.NewWriter(f)}
	if size == 0 {
		if err := c.appendJSON(MetaFor(opts)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// repairTornTail fixes an unterminated final line of f (size bytes long,
// opened with O_APPEND) and returns the new size; a file ending in a
// newline is left untouched. It must agree with ReadCheckpoint's accept
// decision: a kill between a line's bytes and its newline leaves a line
// the reader KEEPS, so its missing newline is appended (truncating it
// would silently drop a spliced record from the repaired file); a kill
// mid-line leaves unparseable torn bytes the reader drops, so they are
// cut and the retried record starts on a fresh line.
func repairTornTail(f *os.File, size int64) (int64, error) {
	if size == 0 {
		return 0, nil
	}
	// Collect the unterminated tail, scanning backward for the last newline
	// (lastNL stays -1 when the whole file is one line — a torn or
	// newline-less meta header).
	const chunk = 64 << 10
	var tail []byte
	lastNL := int64(-1)
	for end := size; end > 0 && lastNL < 0; {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		buf := make([]byte, end-start)
		if _, err := f.ReadAt(buf, start); err != nil {
			return size, err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			lastNL = start + int64(i)
			buf = buf[i+1:]
		}
		tail = append(append([]byte{}, buf...), tail...)
		if int64(len(tail)) > maxCheckpointLine {
			return size, fmt.Errorf("sweep: checkpoint tail exceeds %d bytes", maxCheckpointLine)
		}
		end = start
	}
	if len(tail) == 0 {
		return size, nil
	}
	if tornLineComplete(tail, lastNL < 0) {
		_, err := f.Write([]byte{'\n'}) // O_APPEND: finish the line in place
		return size + 1, err
	}
	keep := lastNL + 1
	return keep, f.Truncate(keep)
}

// tornLineComplete mirrors ReadCheckpoint's accept decision for a final
// unterminated line: a record carrying its task identity, or — when it is
// the file's only line — a current-version meta header.
func tornLineComplete(line []byte, isFirstLine bool) bool {
	if isFirstLine {
		var m Meta
		if err := json.Unmarshal(line, &m); err == nil && m.Version == checkpointVersion {
			return true
		}
	}
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return false
	}
	return rec.Kernel != "" && rec.Mapper != ""
}

// writeJSONLine renders v exactly as the checkpoint stream does — one
// compact JSON document per line. Both the streaming writer and the merge
// writer go through it, so merged checkpoints stay byte-identical to the
// files Run writes, and neither can emit a line the reader would refuse.
func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(b) > maxCheckpointLine {
		return fmt.Errorf("sweep: checkpoint line would exceed %d bytes", maxCheckpointLine)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func (c *CheckpointWriter) appendJSON(v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSONLine(c.w, v); err != nil {
		return err
	}
	return c.w.Flush()
}

// Append streams one completed record: one compact JSON line, flushed
// before Append returns so a crash never loses an acknowledged record.
func (c *CheckpointWriter) Append(rec Record) error { return c.appendJSON(rec) }

// Close flushes and closes the underlying file.
func (c *CheckpointWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
