package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpoint format: a JSONL file. The first line is a meta header binding
// the checkpoint to the sweep options that produced it; every following
// line is one JSON-encoded Record, appended (and flushed) as its simulation
// completes, in completion order. encoding/json round-trips every Record
// field exactly (shortest-round-trip floats, full-precision integers), so a
// resumed campaign that splices checkpointed records into the task grid is
// byte-identical to an uninterrupted run. Failed records (Record.Err != "")
// are never checkpointed: a resume retries them.

// checkpointVersion guards the line format.
const checkpointVersion = 1

// checkpointMeta pins the sweep parameters that determine per-record
// simulation results. A resume against a checkpoint whose meta differs
// would silently splice records from a different experiment, so Run
// refuses it.
type checkpointMeta struct {
	Version          int     `json:"checkpoint_version"`
	Scale            float64 `json:"scale"`
	Seed             int64   `json:"seed"`
	Verify           bool    `json:"verify"`
	DispatchOverhead int64   `json:"dispatch_overhead"`
	NoCoalesce       bool    `json:"no_coalesce"`
	ConfigTag        string  `json:"config_tag,omitempty"`
}

func metaFor(opts Options) checkpointMeta {
	return checkpointMeta{
		Version:          checkpointVersion,
		Scale:            opts.Scale,
		Seed:             opts.Seed,
		Verify:           opts.Verify,
		DispatchOverhead: opts.DispatchOverhead,
		NoCoalesce:       opts.NoCoalesce,
		ConfigTag:        opts.ConfigTag,
	}
}

// Key identifies the record's task: one (config, kernel, mapper) cell of
// the campaign grid. Resume skips tasks whose key is already checkpointed.
func (r Record) Key() string {
	return r.Config.Name() + "/" + r.Kernel + "/" + r.Mapper
}

// ReadCheckpoint parses a JSONL checkpoint stream into its meta header (nil
// if the stream is empty or headerless) and the recorded tasks by Key.
// Later duplicates of a key win, so a checkpoint appended to by several
// partial runs stays usable.
func ReadCheckpoint(rd io.Reader) (*checkpointMeta, map[string]Record, error) {
	out := map[string]Record{}
	var meta *checkpointMeta
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var m checkpointMeta
			if err := json.Unmarshal(line, &m); err == nil && m.Version > 0 {
				if m.Version != checkpointVersion {
					return nil, nil, fmt.Errorf("sweep: checkpoint version %d not supported", m.Version)
				}
				meta = &m
				continue
			}
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("sweep: corrupt checkpoint line: %w", err)
		}
		if rec.Kernel == "" || rec.Mapper == "" {
			return nil, nil, fmt.Errorf("sweep: checkpoint line missing task identity: %q", line)
		}
		out[rec.Key()] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return meta, out, nil
}

// readCheckpointFile loads a checkpoint from disk; a missing file is an
// empty checkpoint, not an error (first run of a resumable campaign).
func readCheckpointFile(path string) (*checkpointMeta, map[string]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, map[string]Record{}, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// checkpointWriter appends records to the JSONL checkpoint as they
// complete, flushing per record so a killed campaign loses at most the
// records in flight.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openCheckpoint opens path for streaming. resume appends to an existing
// file; otherwise the file is truncated. A fresh (or empty) file gets the
// meta header for opts first.
func openCheckpoint(path string, resume bool, opts Options) (*checkpointWriter, error) {
	flags := os.O_WRONLY | os.O_CREATE
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		if err := c.appendJSON(metaFor(opts)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *checkpointWriter) appendJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

// append streams one completed record.
func (c *checkpointWriter) append(rec Record) error { return c.appendJSON(rec) }

func (c *checkpointWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
