package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// renderAll captures every render path fed by merged results: the Figure 2
// table, the energy table, the crossover curves and the raw CSV.
func renderAll(t *testing.T, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.RenderTable(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderEnergyTable(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderCrossover(&buf, "lws=32"); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardMergeByteIdentical is the tentpole contract: a campaign split
// into N independent shard processes (one of them killed and resumed from a
// truncated checkpoint) and merged back together produces Records, report,
// CSV and checkpoint file byte-identical to an uninterrupted single-process
// Run, for several shard counts.
func TestShardMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()

	ref, err := Run(campaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	refRender := renderAll(t, ref)

	// A Workers=1 checkpointed run writes records in canonical task order —
	// the exact file Merge must reproduce.
	refCkpt := filepath.Join(dir, "ref.jsonl")
	refOpts := campaignOpts()
	refOpts.Workers = 1
	refOpts.Checkpoint = refCkpt
	if _, err := Run(refOpts); err != nil {
		t.Fatal(err)
	}
	refFile, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			paths := make([]string, n)
			for i := 0; i < n; i++ {
				paths[i] = filepath.Join(dir, fmt.Sprintf("n%d_shard%d.jsonl", n, i))
				opts := campaignOpts()
				opts.ShardIndex = i
				opts.ShardCount = n
				opts.Checkpoint = paths[i]
				shardRes, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				if i != 1%n {
					continue
				}
				// Simulate a killed shard: truncate its checkpoint to one
				// record and resume it mid-way. The resumed shard must end up
				// indistinguishable from an uninterrupted one.
				if len(shardRes.Records) < 2 {
					t.Fatalf("shard %d/%d has %d records, need >= 2 to truncate", i, n, len(shardRes.Records))
				}
				truncateCheckpoint(t, paths[i], 1)
				opts.Resume = true
				executed := 0
				opts.OnRecord = func(Record) { executed++ }
				resumed, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Cache.Resumed != 1 || executed != len(shardRes.Records)-1 {
					t.Fatalf("shard resume spliced %d and re-ran %d of %d records",
						resumed.Cache.Resumed, executed, len(shardRes.Records))
				}
			}

			mergedPath := filepath.Join(dir, fmt.Sprintf("n%d_merged.jsonl", n))
			merged, err := Merge(mergedPath, paths)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mustJSON(t, ref.Records), mustJSON(t, merged.Records)) {
				for i := range ref.Records {
					if !bytes.Equal(mustJSON(t, ref.Records[i]), mustJSON(t, merged.Records[i])) {
						t.Errorf("record %d differs:\nref    %+v\nmerged %+v", i, ref.Records[i], merged.Records[i])
					}
				}
				t.Fatal("merged records not byte-identical to single-process run")
			}
			if got := renderAll(t, merged); !bytes.Equal(refRender, got) {
				t.Errorf("merged report/CSV differs from single-process run:\n--- ref ---\n%s\n--- merged ---\n%s", refRender, got)
			}
			mergedFile, err := os.ReadFile(mergedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refFile, mergedFile) {
				t.Error("merged checkpoint file not byte-identical to a Workers=1 single-process checkpoint")
			}

			// The merged checkpoint is a complete unsharded campaign: a Run
			// resuming from it re-simulates nothing and reproduces ref.
			resOpts := campaignOpts()
			resOpts.Checkpoint = mergedPath
			resOpts.Resume = true
			executed := 0
			resOpts.OnRecord = func(Record) { executed++ }
			fromMerged, err := Run(resOpts)
			if err != nil {
				t.Fatal(err)
			}
			if executed != 0 || fromMerged.Cache.Resumed != len(ref.Records) {
				t.Errorf("resume from merged checkpoint ran %d tasks (resumed %d), want a full splice",
					executed, fromMerged.Cache.Resumed)
			}
			if !bytes.Equal(mustJSON(t, ref.Records), mustJSON(t, fromMerged.Records)) {
				t.Error("records resumed from merged checkpoint not byte-identical")
			}
		})
	}
}

// TestShardPartition pins the stride partition: for several shard counts,
// the shards of a grid are pairwise disjoint, cover every task exactly
// once, and are balanced to within one task.
func TestShardPartition(t *testing.T) {
	base := campaignOpts()
	total := len(base.Configs) * len(base.Kernels) * 3 // default 3 mappers
	for _, n := range []int{1, 2, 3, 4, 7} {
		seen := map[string]int{}
		for i := 0; i < n; i++ {
			opts := campaignOpts()
			opts.ShardIndex = i
			opts.ShardCount = n
			var keys []string
			opts.OnRecord = func(r Record) { keys = append(keys, r.Key()) }
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Records) != len(keys) {
				t.Fatalf("n=%d shard %d: %d records, %d callbacks", n, i, len(res.Records), len(keys))
			}
			lo, hi := total/n, (total+n-1)/n
			if len(keys) < lo || len(keys) > hi {
				t.Errorf("n=%d shard %d: %d tasks, want %d..%d (unbalanced)", n, i, len(keys), lo, hi)
			}
			for _, k := range keys {
				seen[k]++
			}
		}
		if len(seen) != total {
			t.Errorf("n=%d: shards cover %d distinct tasks, want %d", n, len(seen), total)
		}
		for k, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: task %s ran %d times", n, k, c)
			}
		}
	}
}

// TestRunRejectsDuplicateGridWhenKeyed pins that a grid with a repeated
// axis entry cannot be sharded or checkpointed (task keys would alias and
// mis-splice on resume/merge), while a plain in-memory run still accepts it.
func TestRunRejectsDuplicateGridWhenKeyed(t *testing.T) {
	dup := campaignOpts()
	dup.Configs = append(dup.Configs, dup.Configs[0])

	sharded := dup
	sharded.ShardCount = 2
	if _, err := Run(sharded); err == nil || !strings.Contains(err.Error(), "duplicate grid entry") {
		t.Errorf("sharded duplicate grid: err = %v", err)
	}

	ckpt := dup
	ckpt.Checkpoint = filepath.Join(t.TempDir(), "dup.jsonl")
	if _, err := Run(ckpt); err == nil || !strings.Contains(err.Error(), "duplicate grid entry") {
		t.Errorf("checkpointed duplicate grid: err = %v", err)
	}

	plain := dup
	if res, err := Run(plain); err != nil {
		t.Errorf("plain duplicate grid refused: %v", err)
	} else if want := (len(campaignOpts().Configs) + 1) * 2 * 3; len(res.Records) != want {
		t.Errorf("plain duplicate grid ran %d records, want %d", len(res.Records), want)
	}
}

// TestRunRejectsBadShard pins the shard-range validation.
func TestRunRejectsBadShard(t *testing.T) {
	for _, tc := range []struct{ idx, count int }{{3, 3}, {-1, 3}, {1, 0}} {
		opts := campaignOpts()
		opts.ShardIndex = tc.idx
		opts.ShardCount = tc.count
		if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("shard %d/%d: err = %v, want out-of-range", tc.idx, tc.count, err)
		}
	}
}

// TestShardResumeValidatesShardIdentity pins that a shard checkpoint can
// only be resumed by the same shard: the shard fields ride the meta header.
func TestShardResumeValidatesShardIdentity(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "shard.jsonl")
	opts := campaignOpts()
	opts.ShardIndex = 0
	opts.ShardCount = 2
	opts.Checkpoint = ckpt
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	wrong := opts
	wrong.ShardIndex = 1
	wrong.Resume = true
	if _, err := Run(wrong); err == nil {
		t.Error("shard 1/2 resumed shard 0/2's checkpoint")
	}
	unsharded := campaignOpts()
	unsharded.Checkpoint = ckpt
	unsharded.Resume = true
	if _, err := Run(unsharded); err == nil {
		t.Error("unsharded run resumed a shard checkpoint")
	}
}

// shardFixture writes hand-built shard checkpoints for a tiny synthetic
// campaign (2 configs x 1 kernel x default 3 mappers = 6 tasks, 2 shards)
// and returns the two paths plus the options that describe the grid.
func shardFixture(t *testing.T, dir string) (Options, []string) {
	t.Helper()
	opts := Options{
		Configs: []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}, {Cores: 2, Warps: 2, Threads: 4}},
		Kernels: []string{"vecadd"},
		Scale:   0.05,
		Seed:    7,
	}
	opts.fill()
	paths := make([]string, 2)
	for s := 0; s < 2; s++ {
		opts.ShardIndex = s
		opts.ShardCount = 2
		paths[s] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", s))
		writeShardFile(t, paths[s], MetaFor(opts), shardRecords(opts, s))
	}
	return opts, paths
}

// shardRecords synthesizes the records of one shard of the fixture grid.
func shardRecords(opts Options, shard int) []Record {
	var recs []Record
	idx := 0
	for _, hw := range opts.Configs {
		for _, k := range opts.Kernels {
			for _, m := range opts.Mappers {
				for _, p := range opts.Scheds {
					if idx%2 == shard {
						recs = append(recs, Record{
							Config: hw, Kernel: k, Mapper: m.Name(), Sched: p.String(),
							MSHRs: opts.MSHRs[0], L1: opts.L1Geoms[0], Prefetch: opts.Prefetch[0].String(),
							LWS: 1, Cycles: uint64(1000 + idx), Instrs: uint64(100 + idx),
						})
					}
					idx++
				}
			}
		}
	}
	return recs
}

func writeShardFile(t *testing.T, path string, meta Meta, recs []Record) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(append(mustJSON(t, meta), '\n'))
	for _, r := range recs {
		buf.Write(append(mustJSON(t, r), '\n'))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMergeErrorPaths pins a distinct, diagnosable error for every way a
// merge can be handed an inconsistent shard set.
func TestMergeErrorPaths(t *testing.T) {
	dir := t.TempDir()
	opts, paths := shardFixture(t, dir)

	// The fixture itself merges cleanly.
	res, err := Merge("", paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("merged %d records, want 6", len(res.Records))
	}

	check := func(name, wantSub string, paths ...string) {
		t.Helper()
		_, err := Merge("", paths)
		if err == nil {
			t.Errorf("%s: merge accepted", name)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: err = %q, want substring %q", name, err, wantSub)
		}
	}

	check("no shards", "no shard checkpoints")
	check("missing shard", "missing shard 1/2", paths[0])
	check("overlapping shards", "overlapping shards", paths[0], paths[0])
	check("overlap with trailing full set", "overlapping shards", paths[0], paths[1], paths[1])

	// Mismatched meta: shard 1 written with a different seed.
	foreign := opts
	foreign.Seed = 99
	foreign.ShardIndex = 1
	foreign.ShardCount = 2
	foreignPath := filepath.Join(dir, "foreign.jsonl")
	writeShardFile(t, foreignPath, MetaFor(foreign), shardRecords(foreign, 1))
	check("mismatched meta", "meta mismatch", paths[0], foreignPath)

	// Mixed-sched shard set: shard 1 swept a different scheduler axis. This
	// is a meta mismatch too, but gets its own diagnostic naming the two
	// policy sets.
	mixed := opts
	mixed.Scheds = []sim.SchedPolicy{sim.SchedGTO}
	mixed.ShardIndex = 1
	mixed.ShardCount = 2
	mixedPath := filepath.Join(dir, "mixedsched.jsonl")
	writeShardFile(t, mixedPath, MetaFor(mixed), shardRecords(mixed, 1))
	check("mixed-sched shard set", "mixed-sched shard set", paths[0], mixedPath)

	// A v2 shard file (pre-sched-axis): refused by the checkpoint reader
	// with the version diagnostic, before any merge validation runs.
	v2Meta := MetaFor(opts)
	v2Meta.Version = 2
	v2Meta.Scheds = ""
	v2Path := filepath.Join(dir, "v2.jsonl")
	writeShardFile(t, v2Path, v2Meta, nil)
	check("v2 shard file", "version 2 not supported", v2Path)

	// Headerless shard: records with no meta line.
	headerless := filepath.Join(dir, "headerless.jsonl")
	var buf bytes.Buffer
	for _, r := range shardRecords(opts, 1) {
		buf.Write(append(mustJSON(t, r), '\n'))
	}
	if err := os.WriteFile(headerless, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	check("headerless shard", "no meta header", paths[0], headerless)

	// A record placed in the wrong shard's file.
	misplaced := opts
	misplaced.ShardIndex = 1
	misplaced.ShardCount = 2
	misplacedPath := filepath.Join(dir, "misplaced.jsonl")
	writeShardFile(t, misplacedPath, MetaFor(misplaced), shardRecords(opts, 0))
	check("misplaced record", "belongs to shard", paths[0], misplacedPath)

	// A record outside the campaign grid.
	alien := opts
	alien.ShardIndex = 1
	alien.ShardCount = 2
	alienRecs := append(shardRecords(opts, 1), Record{
		Config: core.HWInfo{Cores: 64, Warps: 32, Threads: 32},
		Kernel: "vecadd", Mapper: "ours", Sched: "rr", Cycles: 1,
	})
	alienPath := filepath.Join(dir, "alien.jsonl")
	writeShardFile(t, alienPath, MetaFor(alien), alienRecs)
	check("record outside grid", "not in the campaign grid", paths[0], alienPath)

	// An incomplete shard: all shard files present but one task missing.
	partial := opts
	partial.ShardIndex = 1
	partial.ShardCount = 2
	partialPath := filepath.Join(dir, "partial.jsonl")
	writeShardFile(t, partialPath, MetaFor(partial), shardRecords(opts, 1)[:2])
	check("incomplete shard", "grid not covered", paths[0], partialPath)

	// A missing file is a plain I/O error, not a panic.
	check("missing file", "no such file", paths[0], filepath.Join(dir, "nope.jsonl"))

	// A meta whose grid aliases two tasks onto one key (only possible in a
	// hand-edited file; Run refuses to write one).
	dupMeta := MetaFor(opts)
	dupMeta.ShardIndex = 0
	dupMeta.ShardCount = 1
	dupMeta.Configs = "1c2w2t,1c2w2t"
	dupPath := filepath.Join(dir, "dupgrid.jsonl")
	writeShardFile(t, dupPath, dupMeta, nil)
	check("duplicate grid in meta", "duplicate task", dupPath)
}
