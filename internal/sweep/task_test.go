package sweep

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ocl"
	"repro/internal/sim"
)

// TestRunRejectsDuplicateScheds pins the sched-axis uniqueness rule:
// unlike a duplicated config (legal on a plain in-memory run, see
// TestRunRejectsDuplicateGridWhenKeyed), a duplicated scheduler is refused
// unconditionally — it can only be a typo, and it would silently double
// every per-sched aggregate.
func TestRunRejectsDuplicateScheds(t *testing.T) {
	dup := campaignOpts()
	dup.Scheds = []sim.SchedPolicy{sim.SchedRoundRobin, sim.SchedGTO, sim.SchedRoundRobin}
	if _, err := Run(dup); err == nil || !strings.Contains(err.Error(), "duplicate scheduler") {
		t.Errorf("plain duplicate-sched run: err = %v", err)
	}
	if _, err := TaskGrid(dup); err == nil || !strings.Contains(err.Error(), "duplicate scheduler") {
		t.Errorf("duplicate-sched task grid: err = %v", err)
	}
}

// TestMergeRejectsDuplicateScheds pins the merge-side mirror of the rule:
// a checkpoint whose meta carries a repeated sched axis entry (only
// possible hand-edited; Run refuses to write one) is refused with a
// sched-specific diagnostic.
func TestMergeRejectsDuplicateScheds(t *testing.T) {
	opts := campaignOpts()
	meta := MetaFor(opts)
	meta.Scheds = "rr,rr"
	path := filepath.Join(t.TempDir(), "dupsched.jsonl")
	writeShardFile(t, path, meta, nil)
	if _, err := Merge("", []string{path}); err == nil || !strings.Contains(err.Error(), "duplicate scheduler") {
		t.Errorf("merge with duplicate sched axis: err = %v", err)
	}
}

// TestRunRejectsNegativeScale pins scale validation: zero still means
// "default to full scale" (the long-standing fill rule), negative is a
// refused request.
func TestRunRejectsNegativeScale(t *testing.T) {
	bad := campaignOpts()
	bad.Scale = -0.5
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "scale must be positive") {
		t.Errorf("negative scale: err = %v", err)
	}
	if got := (Options{}).Normalized().Scale; got != 1 {
		t.Errorf("zero scale normalized to %v, want 1", got)
	}
}

// TestTaskGridMatchesRunOrder pins the contract the campaign service
// depends on: TaskGrid enumerates exactly the records Run produces, in
// the same canonical order, with Index as the position — so tasks can
// cross the wire as bare grid indices.
func TestTaskGridMatchesRunOrder(t *testing.T) {
	opts := campaignOpts()
	grid, err := TaskGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(res.Records) {
		t.Fatalf("grid has %d tasks, run produced %d records", len(grid), len(res.Records))
	}
	for i, task := range grid {
		if task.Index != i {
			t.Fatalf("grid[%d].Index = %d", i, task.Index)
		}
		if task.Key() != res.Records[i].Key() {
			t.Fatalf("grid[%d] = %s, record %d = %s", i, task.Key(), i, res.Records[i].Key())
		}
	}

	// And a single task replayed through RunTask reproduces the record Run
	// made for that cell, byte for byte.
	pool := ocl.NewDevicePool(1)
	rec := RunTask(opts, pool, grid[1])
	want, _ := json.Marshal(res.Records[1])
	got, _ := json.Marshal(rec)
	if string(want) != string(got) {
		t.Errorf("RunTask record = %s, want %s", got, want)
	}
}
