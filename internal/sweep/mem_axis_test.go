package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Sweep-level half of the memory-axis harness: MSHR bound, L1 geometry and
// prefetch policy as grid axes (canonical order, per-point record
// identity, checkpoint/shard/merge round trips, template refusals, and the
// v3 checkpoint version guard). The bare-sim and kernel-level halves live
// in internal/sim/memaxis_test.go and memaxis_matrix_test.go.

func memCampaignOpts() Options {
	return Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},
			{Cores: 2, Warps: 4, Threads: 4},
		},
		Kernels:  []string{"vecadd"},
		MSHRs:    []int{0, 4},
		L1Geoms:  []string{mem.DefaultL1Geometry(), "8k2w"},
		Prefetch: []mem.PrefetchPolicy{mem.PrefetchOff, mem.PrefetchNextLine},
		Scale:    0.05,
		Seed:     7,
		Workers:  2,
	}
}

// TestSweepMemAxes pins the memory-axis semantics: the grid nests mshrs,
// then l1, then prefetch innermost after the scheduler; every record names
// its memory point; and the per-value record slices are byte-identical to
// a campaign that swept only that value (each axis composes, it does not
// perturb).
func TestSweepMemAxes(t *testing.T) {
	res, err := Run(memCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := memCampaignOpts()
	nm, nl, np := len(opts.MSHRs), len(opts.L1Geoms), len(opts.Prefetch)
	want := len(opts.Configs) * len(opts.Kernels) * 3 * nm * nl * np
	if len(res.Records) != want {
		t.Fatalf("swept %d records, want %d", len(res.Records), want)
	}
	for i, rec := range res.Records {
		wantPf := opts.Prefetch[i%np]
		wantL1 := opts.L1Geoms[(i/np)%nl]
		wantMS := opts.MSHRs[(i/(np*nl))%nm]
		if rec.Prefetch != wantPf.String() || rec.L1 != wantL1 || rec.MSHRs != wantMS {
			t.Fatalf("record %d: memory point (%d, %s, %s), want (%d, %s, %s) (mshrs>l1>prefetch must nest innermost)",
				i, rec.MSHRs, rec.L1, rec.Prefetch, wantMS, wantL1, wantPf)
		}
	}
	for _, ms := range opts.MSHRs {
		single := memCampaignOpts()
		single.MSHRs = []int{ms}
		sres, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		var subset []Record
		for _, rec := range res.Records {
			if rec.MSHRs == ms {
				subset = append(subset, rec)
			}
		}
		if !bytes.Equal(mustJSON(t, subset), mustJSON(t, sres.Records)) {
			t.Errorf("mshrs=%d: records from the full sweep differ from a single-value sweep", ms)
		}
	}
	for _, l1 := range opts.L1Geoms {
		single := memCampaignOpts()
		single.L1Geoms = []string{l1}
		sres, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		var subset []Record
		for _, rec := range res.Records {
			if rec.L1 == l1 {
				subset = append(subset, rec)
			}
		}
		if !bytes.Equal(mustJSON(t, subset), mustJSON(t, sres.Records)) {
			t.Errorf("l1=%s: records from the full sweep differ from a single-value sweep", l1)
		}
	}
	for _, pf := range opts.Prefetch {
		single := memCampaignOpts()
		single.Prefetch = []mem.PrefetchPolicy{pf}
		sres, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		var subset []Record
		for _, rec := range res.Records {
			if rec.Prefetch == pf.String() {
				subset = append(subset, rec)
			}
		}
		if !bytes.Equal(mustJSON(t, subset), mustJSON(t, sres.Records)) {
			t.Errorf("prefetch=%s: records from the full sweep differ from a single-value sweep", pf)
		}
	}
}

// TestSweepMemDefaultPointIdentity is the sweep-record half of the
// differential oracle: the all-defaults memory point of a three-axis sweep
// is byte-identical to a campaign that never mentions the memory axes (the
// pre-axis grid shape).
func TestSweepMemDefaultPointIdentity(t *testing.T) {
	full, err := Run(memCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain := memCampaignOpts()
	plain.MSHRs = nil
	plain.L1Geoms = nil
	plain.Prefetch = nil
	oracle, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	var defaults []Record
	for _, rec := range full.Records {
		if rec.MSHRs == 0 && rec.L1 == mem.DefaultL1Geometry() && rec.Prefetch == mem.PrefetchOff.String() {
			defaults = append(defaults, rec)
		}
	}
	if !bytes.Equal(mustJSON(t, defaults), mustJSON(t, oracle.Records)) {
		t.Fatal("all-defaults memory point not byte-identical to the axis-free campaign")
	}
}

// TestShardMergeMemAxes runs the shard x merge contract over the 7-axis
// grid: shards striding the memory grid merge back byte-identically to the
// single-process run, a checkpointed resume splices every task, and a
// duplicated entry on any memory axis is refused when checkpointing.
func TestShardMergeMemAxes(t *testing.T) {
	dir := t.TempDir()
	ref, err := Run(memCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		opts := memCampaignOpts()
		opts.ShardIndex = i
		opts.ShardCount = shards
		opts.Checkpoint = paths[i]
		if _, err := Run(opts); err != nil {
			t.Fatal(err)
		}
	}
	mergedPath := filepath.Join(dir, "merged.jsonl")
	merged, err := Merge(mergedPath, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, ref.Records), mustJSON(t, merged.Records)) {
		t.Fatal("memory-axis shard merge not byte-identical to the single-process run")
	}

	// Resume from the merged checkpoint: a full splice, nothing re-run.
	res := memCampaignOpts()
	res.Checkpoint = mergedPath
	res.Resume = true
	executed := 0
	res.OnRecord = func(Record) { executed++ }
	fromMerged, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || fromMerged.Cache.Resumed != len(ref.Records) {
		t.Errorf("memory-axis resume ran %d tasks (resumed %d), want a full splice", executed, fromMerged.Cache.Resumed)
	}

	// A duplicated entry on any of the three axes aliases task keys and
	// must be refused when checkpointing.
	for name, mutate := range map[string]func(*Options){
		"mshrs":    func(o *Options) { o.MSHRs = []int{4, 4} },
		"l1":       func(o *Options) { o.L1Geoms = []string{"8k2w", "8k2w"} },
		"prefetch": func(o *Options) { o.Prefetch = []mem.PrefetchPolicy{mem.PrefetchOff, mem.PrefetchOff} },
	} {
		dup := memCampaignOpts()
		mutate(&dup)
		dup.Checkpoint = filepath.Join(dir, "dup-"+name+".jsonl")
		if _, err := Run(dup); err == nil {
			t.Errorf("checkpointed sweep accepted a duplicated %s-axis entry", name)
		}
	}
}

// TestSweepRejectsTemplateMemKnobs pins that a ConfigTemplate setting any
// memory-side knob the grid owns — MSHR capacity, L1 geometry, prefetch
// policy — is refused loudly, naming the Options field to use, instead of
// being silently overridden by the axis.
func TestSweepRejectsTemplateMemKnobs(t *testing.T) {
	cases := []struct {
		name  string
		set   func(*sim.Config)
		wants string
	}{
		{"mshrs", func(c *sim.Config) { c.Mem.L1.MSHRs = 4; c.Mem.L2.MSHRs = 4 }, "Options.MSHRs"},
		{"l1-geometry", func(c *sim.Config) { c.Mem.L1.SizeBytes = 8 << 10; c.Mem.L1.Ways = 2 }, "Options.L1Geoms"},
		{"prefetch", func(c *sim.Config) { c.Mem.Prefetch = mem.PrefetchNextLine }, "Options.Prefetch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := memCampaignOpts()
			opts.MSHRs, opts.L1Geoms, opts.Prefetch = nil, nil, nil
			opts.ConfigTemplate = func(hw core.HWInfo) sim.Config {
				cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
				tc.set(&cfg)
				return cfg
			}
			_, err := Run(opts)
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Errorf("template-set %s: err = %v, want the %s refusal", tc.name, err, tc.wants)
			}
		})
	}
}

// TestSweepRejectsBadMemAxisValues pins the Options-boundary validation of
// the three axes: negative or duplicated MSHR bounds, malformed or
// duplicated geometry specs, and duplicated prefetch policies are refused
// before any task runs.
func TestSweepRejectsBadMemAxisValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		wants  string
	}{
		{"negative mshrs", func(o *Options) { o.MSHRs = []int{-1} }, "negative MSHR"},
		{"dup mshrs", func(o *Options) { o.MSHRs = []int{4, 4} }, "duplicate MSHR"},
		{"bad l1 spec", func(o *Options) { o.L1Geoms = []string{"16kb4"} }, "l1 axis"},
		{"unrealizable l1", func(o *Options) { o.L1Geoms = []string{"3k4w"} }, "l1 axis"},
		{"dup l1", func(o *Options) { o.L1Geoms = []string{"8k2w", "8k2w"} }, "duplicate L1 geometry"},
		{"dup prefetch", func(o *Options) { o.Prefetch = []mem.PrefetchPolicy{mem.PrefetchOff, mem.PrefetchOff} }, "duplicate prefetch"},
		{"unknown prefetch", func(o *Options) { o.Prefetch = []mem.PrefetchPolicy{mem.PrefetchPolicy(9)} }, "prefetch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := memCampaignOpts()
			tc.mutate(&opts)
			_, err := Run(opts)
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Errorf("%s: err = %v, want a refusal mentioning %q", tc.name, err, tc.wants)
			}
		})
	}
}

// TestSweepResumeRejectsV3Checkpoint pins the version guard: a v3
// checkpoint (pre-memory-axes) carries no per-record MSHR/L1/prefetch
// identity and is refused with the version diagnostic instead of being
// spliced into a grid it cannot address.
func TestSweepResumeRejectsV3Checkpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "old.jsonl")
	opts := memCampaignOpts()
	opts.fill()
	meta := MetaFor(opts)
	meta.Version = 3
	meta.MSHRs, meta.L1Geoms, meta.Prefetch = "", "", ""
	var buf bytes.Buffer
	buf.Write(append(mustJSON(t, meta), '\n'))
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	res := memCampaignOpts()
	res.Checkpoint = ckpt
	res.Resume = true
	_, err := Run(res)
	if err == nil || !strings.Contains(err.Error(), "version 3 not supported") {
		t.Errorf("resume of a v3 checkpoint: err = %v, want the version diagnostic", err)
	}
}

// TestMemAxisMetaAndKeys pins the checkpoint identity plumbing: MetaFor
// carries the joined memory axes, and Record.Key addresses all seven grid
// axes so distinct memory points never alias.
func TestMemAxisMetaAndKeys(t *testing.T) {
	meta := MetaFor(memCampaignOpts())
	if meta.Version != checkpointVersion {
		t.Errorf("meta version = %d, want %d", meta.Version, checkpointVersion)
	}
	if meta.MSHRs != "0,4" {
		t.Errorf("meta mshrs = %q, want \"0,4\"", meta.MSHRs)
	}
	if meta.L1Geoms != mem.DefaultL1Geometry()+",8k2w" {
		t.Errorf("meta l1_geoms = %q", meta.L1Geoms)
	}
	if meta.Prefetch != "off,nextline" {
		t.Errorf("meta prefetch = %q", meta.Prefetch)
	}
	a := Record{Config: core.HWInfo{Cores: 1, Warps: 2, Threads: 2}, Kernel: "vecadd",
		Mapper: "ours", Sched: "rr", MSHRs: 0, L1: "16k4w", Prefetch: "off"}
	b := a
	b.MSHRs = 4
	c := a
	c.L1 = "8k2w"
	d := a
	d.Prefetch = "nextline"
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, d.Key(): true}
	if len(keys) != 4 {
		t.Errorf("memory points alias task keys: %v", keys)
	}
	if got := strings.Count(a.Key(), "/"); got != 6 {
		t.Errorf("task key %q has %d separators, want 6 (seven axes)", a.Key(), got)
	}
}
