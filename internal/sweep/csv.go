package sweep

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ReadCSV parses records previously written by WriteCSV, so committed
// sweep results can be re-analyzed and re-plotted without re-simulating.
// It accepts both current files and older ones without the energy column.
func ReadCSV(r io.Reader) (*Results, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sweep: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, required := range []string{"config", "kernel", "mapper", "lws", "cycles"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("sweep: CSV missing column %q", required)
		}
	}
	res := &Results{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < len(header) {
			return nil, fmt.Errorf("sweep: line %d has %d fields, want %d", lineNo, len(f), len(header))
		}
		get := func(name string) string {
			if i, ok := col[name]; ok {
				return f[i]
			}
			return ""
		}
		hw, err := core.ParseName(get("config"))
		if err != nil {
			return nil, fmt.Errorf("sweep: line %d: %w", lineNo, err)
		}
		rec := Record{
			Config: hw,
			Kernel: get("kernel"),
			Mapper: get("mapper"),
			Err:    get("err"),
		}
		if rec.LWS, err = strconv.Atoi(get("lws")); err != nil {
			return nil, fmt.Errorf("sweep: line %d: lws: %w", lineNo, err)
		}
		if rec.Cycles, err = strconv.ParseUint(get("cycles"), 10, 64); err != nil {
			return nil, fmt.Errorf("sweep: line %d: cycles: %w", lineNo, err)
		}
		if v := get("instrs"); v != "" {
			rec.Instrs, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("mem_stall"); v != "" {
			rec.MemStall, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("exec_stall"); v != "" {
			rec.ExecStall, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("energy_pj"); v != "" {
			rec.EnergyPJ, _ = strconv.ParseFloat(v, 64)
		}
		res.Records = append(res.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
