package sweep

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteCSV dumps every record.
func (r *Results) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "config,cores,warps,threads,kernel,mapper,sched,mshrs,l1,prefetch,lws,cycles,instrs,mem_stall,exec_stall,energy_pj,boundedness,err"); err != nil {
		return err
	}
	for _, rec := range r.Records {
		// Err is free-form (error strings): commas are tolerated because it
		// is the last column (ReadCSV rejoins it), but a newline would split
		// the row, so flatten it.
		errStr := strings.ReplaceAll(strings.ReplaceAll(rec.Err, "\r", " "), "\n", " ")
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%s,%s,%s,%d,%s,%s,%d,%d,%d,%d,%d,%.0f,%s,%s\n",
			rec.Config.Name(), rec.Config.Cores, rec.Config.Warps, rec.Config.Threads,
			rec.Kernel, rec.Mapper, rec.Sched, rec.MSHRs, rec.L1, rec.Prefetch, rec.LWS, rec.Cycles, rec.Instrs,
			rec.MemStall, rec.ExecStall, rec.EnergyPJ, rec.Boundedness, errStr)
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses records previously written by WriteCSV, so committed
// sweep results can be re-analyzed and re-plotted without re-simulating.
// It accepts both current files and older ones without the energy, sched
// or memory-axis columns (records from the latter come back with an empty
// Sched/L1/Prefetch and MSHRs zero).
func ReadCSV(r io.Reader) (*Results, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sweep: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, required := range []string{"config", "kernel", "mapper", "lws", "cycles"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("sweep: CSV missing column %q", required)
		}
	}
	res := &Results{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < len(header) {
			return nil, fmt.Errorf("sweep: line %d has %d fields, want %d", lineNo, len(f), len(header))
		}
		get := func(name string) string {
			i, ok := col[name]
			if !ok {
				return ""
			}
			// The last column (err in files WriteCSV produces) is written
			// unescaped and may itself contain commas — error strings
			// often do — so it spans every remaining field.
			if i == len(header)-1 {
				return strings.Join(f[i:], ",")
			}
			return f[i]
		}
		hw, err := core.ParseName(get("config"))
		if err != nil {
			return nil, fmt.Errorf("sweep: line %d: %w", lineNo, err)
		}
		rec := Record{
			Config:   hw,
			Kernel:   get("kernel"),
			Mapper:   get("mapper"),
			Sched:    get("sched"),
			L1:       get("l1"),
			Prefetch: get("prefetch"),
			Err:      get("err"),
		}
		if v := get("mshrs"); v != "" {
			if rec.MSHRs, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("sweep: line %d: mshrs: %w", lineNo, err)
			}
		}
		if rec.LWS, err = strconv.Atoi(get("lws")); err != nil {
			return nil, fmt.Errorf("sweep: line %d: lws: %w", lineNo, err)
		}
		if rec.Cycles, err = strconv.ParseUint(get("cycles"), 10, 64); err != nil {
			return nil, fmt.Errorf("sweep: line %d: cycles: %w", lineNo, err)
		}
		if v := get("instrs"); v != "" {
			rec.Instrs, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("mem_stall"); v != "" {
			rec.MemStall, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("exec_stall"); v != "" {
			rec.ExecStall, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := get("energy_pj"); v != "" {
			rec.EnergyPJ, _ = strconv.ParseFloat(v, 64)
		}
		// WriteCSV renders Boundedness as its String form; restore it so
		// the classification survives the round trip. Anything else in the
		// column is corruption — refuse it rather than silently regrouping
		// the record as compute-bound. Empty is allowed: older files lack
		// the column, and failed records never got classified.
		switch v := get("boundedness"); v {
		case core.MemoryBound.String():
			rec.Boundedness = core.MemoryBound
		case core.ComputeBound.String(), "":
		default:
			return nil, fmt.Errorf("sweep: line %d: unknown boundedness %q", lineNo, v)
		}
		res.Records = append(res.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
