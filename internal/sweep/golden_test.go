package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenResults builds a fixed synthetic campaign over a small grid —
// 3 configs x 2 kernels (one math, one ml) x 3 mappers, cycle counts chosen
// by formula so every render path (ratios, aggregates, energy, crossover,
// CSV) has non-trivial structure. Synthetic records pin the FORMATTING of
// the render paths without also pinning simulator output (the differential
// tests own that).
func goldenResults() *Results {
	configs := []core.HWInfo{
		{Cores: 1, Warps: 2, Threads: 2},
		{Cores: 4, Warps: 4, Threads: 4},
		{Cores: 16, Warps: 8, Threads: 16},
	}
	kernels := []string{"vecadd", "gcn_aggr"}
	mappers := []string{"lws=1", "lws=32", "ours"}
	res := &Results{}
	for ci, hw := range configs {
		for ki, k := range kernels {
			for mi, m := range mappers {
				// "ours" fastest, lws=1 slowest at high parallelism, lws=32
				// slowest at hp=4 — gives the crossover curve a sign change.
				base := uint64(10000 * (ki + 1))
				var cycles uint64
				switch mi {
				case 0:
					cycles = base + uint64(ci)*3000
				case 1:
					cycles = base + 4000 - uint64(ci)*1500
				default:
					cycles = base - 1000
				}
				rec := Record{
					Config:   hw,
					Kernel:   k,
					Mapper:   m,
					Sched:    "rr",
					MSHRs:    4,
					L1:       "16k4w",
					Prefetch: "off",
					LWS:      1 + mi*31,
					Cycles:   cycles,
					Instrs:   base / 10,
					MemStall: cycles / 4,
					EnergyPJ: float64(cycles) * 1.25,
				}
				rec.ExecStall = cycles / 8
				rec.Boundedness = core.Classify(rec.MemStall, rec.ExecStall, cycles*uint64(hw.Cores))
				res.Records = append(res.Records, rec)
			}
		}
	}
	// One failed record, to pin the err column and the render paths'
	// skip-on-error behaviour. The message carries a comma: error strings
	// often do, and the err column must survive the CSV round trip anyway.
	res.Records = append(res.Records, Record{
		Config: core.HWInfo{Cores: 2, Warps: 2, Threads: 2},
		Kernel: "vecadd", Mapper: "ours", Err: "simulated failure: bad dims, want 2",
	})
	return res
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s drifted from golden file (run with -update if intended):\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func TestGoldenRenderTable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResults().RenderTable(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_table.golden", buf.Bytes())
}

func TestGoldenEnergyTable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResults().RenderEnergyTable(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "energy_table.golden", buf.Bytes())
}

func TestGoldenCrossover(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResults().RenderCrossover(&buf, "lws=32"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "crossover.golden", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	res := goldenResults()
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records_csv.golden", buf.Bytes())

	// The golden CSV round-trips: ReadCSV restores every rendered field,
	// including the boundedness classification.
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(res.Records) {
		t.Fatalf("round trip: %d records, want %d", len(back.Records), len(res.Records))
	}
	for i := range res.Records {
		a, b := res.Records[i], back.Records[i]
		if a.Config != b.Config || a.Kernel != b.Kernel || a.Mapper != b.Mapper ||
			a.MSHRs != b.MSHRs || a.L1 != b.L1 || a.Prefetch != b.Prefetch ||
			a.LWS != b.LWS || a.Cycles != b.Cycles || a.Instrs != b.Instrs ||
			a.MemStall != b.MemStall || a.ExecStall != b.ExecStall ||
			a.Boundedness != b.Boundedness || a.Err != b.Err {
			t.Errorf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestGoldenFigure2(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResults().RenderFigure2(&buf, stats.ViolinOptions{Rows: 9, HalfWidth: 8}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2.golden", buf.Bytes())
}
