package sweep

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// Sweep-level half of the scheduler harness: the warp scheduler as a grid
// axis (canonical order, per-policy record identity, checkpoint/shard/merge
// round trips) and the sweep-level record identity of the heap engine
// against the scan oracle.

func schedCampaignOpts() Options {
	return Options{
		Configs: []core.HWInfo{
			{Cores: 1, Warps: 2, Threads: 2},
			{Cores: 2, Warps: 4, Threads: 4},
		},
		Kernels: []string{"vecadd"},
		Scheds:  []sim.SchedPolicy{sim.SchedRoundRobin, sim.SchedGTO, sim.SchedOldestFirst, sim.SchedTwoLevel},
		Scale:   0.05,
		Seed:    7,
		Workers: 2,
	}
}

// TestSweepSchedAxis pins the scheduler axis semantics: the grid nests the
// policy innermost, every record names its policy, and the per-policy
// record slices are byte-identical to a campaign that swept only that
// policy (the axis composes, it does not perturb).
func TestSweepSchedAxis(t *testing.T) {
	res, err := Run(schedCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := schedCampaignOpts()
	want := len(opts.Configs) * len(opts.Kernels) * 3 * len(opts.Scheds)
	if len(res.Records) != want {
		t.Fatalf("swept %d records, want %d", len(res.Records), want)
	}
	for i, rec := range res.Records {
		wantSched := opts.Scheds[i%len(opts.Scheds)]
		if rec.Sched != wantSched.String() {
			t.Fatalf("record %d: sched %q, want %q (policy axis must nest innermost)", i, rec.Sched, wantSched)
		}
	}
	for _, sched := range opts.Scheds {
		single := schedCampaignOpts()
		single.Scheds = []sim.SchedPolicy{sched}
		sres, err := Run(single)
		if err != nil {
			t.Fatal(err)
		}
		var subset []Record
		for _, rec := range res.Records {
			if rec.Sched == sched.String() {
				subset = append(subset, rec)
			}
		}
		if !bytes.Equal(mustJSON(t, subset), mustJSON(t, sres.Records)) {
			t.Errorf("%s: records from the 4-policy sweep differ from a single-policy sweep", sched)
		}
	}
}

// TestSweepScanOracleRecordIdentity is the sweep-level scheduler
// differential: a campaign whose devices run the legacy scan issue loop
// (Config.ScanSched, via a tagged ConfigTemplate) must produce records
// byte-identical to the default heap-engine campaign, for both policies the
// oracle implements.
func TestSweepScanOracleRecordIdentity(t *testing.T) {
	opts := schedCampaignOpts()
	opts.Scheds = []sim.SchedPolicy{sim.SchedRoundRobin, sim.SchedGTO}
	heap, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	scan := opts
	scan.ConfigTemplate = func(hw core.HWInfo) sim.Config {
		cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
		cfg.ScanSched = true
		return cfg
	}
	scan.ConfigTag = "scan-oracle"
	oracle, err := Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, heap.Records), mustJSON(t, oracle.Records)) {
		for i := range heap.Records {
			if !bytes.Equal(mustJSON(t, heap.Records[i]), mustJSON(t, oracle.Records[i])) {
				t.Errorf("record %d differs:\nheap   %+v\noracle %+v", i, heap.Records[i], oracle.Records[i])
			}
		}
		t.Fatal("heap-engine sweep records not byte-identical to the scan oracle")
	}
}

// TestShardMergeSchedAxis runs the shard x merge contract over a grid that
// includes the scheduler axis: shards striding a 4-axis grid merge back
// byte-identically to the single-process run, and a checkpointed resume
// splices per-(config, kernel, mapper, sched) task keys correctly.
func TestShardMergeSchedAxis(t *testing.T) {
	dir := t.TempDir()
	ref, err := Run(schedCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		opts := schedCampaignOpts()
		opts.ShardIndex = i
		opts.ShardCount = shards
		opts.Checkpoint = paths[i]
		if _, err := Run(opts); err != nil {
			t.Fatal(err)
		}
	}
	mergedPath := filepath.Join(dir, "merged.jsonl")
	merged, err := Merge(mergedPath, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, ref.Records), mustJSON(t, merged.Records)) {
		t.Fatal("sched-axis shard merge not byte-identical to the single-process run")
	}

	// Resume from the merged checkpoint: a full splice, nothing re-run.
	res := schedCampaignOpts()
	res.Checkpoint = mergedPath
	res.Resume = true
	executed := 0
	res.OnRecord = func(Record) { executed++ }
	fromMerged, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || fromMerged.Cache.Resumed != len(ref.Records) {
		t.Errorf("sched-axis resume ran %d tasks (resumed %d), want a full splice", executed, fromMerged.Cache.Resumed)
	}

	// A duplicated sched-axis entry aliases task keys and must be refused
	// when checkpointing, like any other duplicated axis entry.
	dup := schedCampaignOpts()
	dup.Scheds = []sim.SchedPolicy{sim.SchedGTO, sim.SchedGTO}
	dup.Checkpoint = filepath.Join(dir, "dup.jsonl")
	if _, err := Run(dup); err == nil {
		t.Error("checkpointed sweep accepted a duplicated sched-axis entry")
	}
}

// TestSweepRejectsTemplateSched pins that a ConfigTemplate setting a
// non-default scheduler — the pre-axis way to vary the policy — is refused
// loudly instead of being silently overridden by the Scheds axis.
func TestSweepRejectsTemplateSched(t *testing.T) {
	opts := schedCampaignOpts()
	opts.Scheds = nil
	opts.ConfigTemplate = func(hw core.HWInfo) sim.Config {
		cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
		cfg.Sched = sim.SchedGTO
		return cfg
	}
	_, err := Run(opts)
	if err == nil || !strings.Contains(err.Error(), "Options.Scheds") {
		t.Errorf("template-set scheduler: err = %v, want the grid-axis refusal", err)
	}
}
