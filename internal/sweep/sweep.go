// Package sweep runs the paper's validation campaign: every benchmark
// kernel under several lws mappers across a grid of 450 hardware
// configurations (1c2w2t … 64c32w32t), producing the latency-ratio
// distributions, violin plots and data tables of Figure 2 and the headline
// aggregate speedups of Section 3.
package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
)

// gridCores spans 1..64 cores over 18 values so that the full grid is
// exactly 18 x 5 x 5 = 450 configurations, matching the count and corner
// points (1c2w2t, 64c32w32t) the paper reports. The paper does not list
// its grid; DESIGN.md at the repository root records the choice.
var gridCores = []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40, 48, 56, 60, 64}
var gridWarps = []int{2, 4, 8, 16, 32}
var gridThreads = []int{2, 4, 8, 16, 32}

// Grid returns the 450-configuration sweep grid.
func Grid() []core.HWInfo {
	out := make([]core.HWInfo, 0, len(gridCores)*len(gridWarps)*len(gridThreads))
	for _, c := range gridCores {
		for _, w := range gridWarps {
			for _, t := range gridThreads {
				out = append(out, core.HWInfo{Cores: c, Warps: w, Threads: t})
			}
		}
	}
	return out
}

// Subsample deterministically picks n configurations spread over the whole
// grid. A strided pick would alias with the grid's inner dimensions (the
// threads axis cycles every 5 entries), so a fixed-seed shuffle selects the
// subset and the result is returned in grid order. n <= 0 or
// n >= len(grid) returns the grid unchanged.
func Subsample(grid []core.HWInfo, n int) []core.HWInfo {
	if n <= 0 || n >= len(grid) {
		return grid
	}
	perm := rand.New(rand.NewSource(12345)).Perm(len(grid))
	idx := append([]int(nil), perm[:n]...)
	sort.Ints(idx)
	out := make([]core.HWInfo, 0, n)
	for _, i := range idx {
		out = append(out, grid[i])
	}
	return out
}

// Options configures a sweep.
type Options struct {
	// Configs defaults to the full 450-point Grid().
	Configs []core.HWInfo
	// Kernels defaults to every kernel in the registry.
	Kernels []string
	// Mappers defaults to the paper's three: lws=1, lws=32, ours.
	Mappers []core.Mapper
	// Scheds is the warp-scheduler grid axis; it defaults to the simulator
	// default {rr}. Each task's sim.Config.Sched is set from this axis —
	// a ConfigTemplate that sets a non-default policy is refused (put the
	// policies on this axis instead; the checkpoint meta records and
	// validates them, which it could not do for a template's choice).
	Scheds []sim.SchedPolicy
	// MSHRs is the miss-status-holding-register grid axis: each value bounds
	// the outstanding L1 misses per core (and L2 misses per bank) of a
	// task's device. It defaults to {0} — the unbounded pre-MSHR model, which
	// is the differential oracle. Like the scheduler, the knob is axis-owned:
	// a ConfigTemplate that sets it is refused, so the checkpoint meta can
	// validate the swept values on resume/merge.
	MSHRs []int
	// L1Geoms is the L1 geometry grid axis, each entry a compact spec in the
	// grammar of mem.ParseL1Geometry ("16k4w" = 16 KiB, 4-way). It defaults
	// to the simulator default geometry. Axis-owned like MSHRs.
	L1Geoms []string
	// Prefetch is the L1 prefetcher grid axis; it defaults to
	// {mem.PrefetchOff}, the pre-prefetch model. Axis-owned like MSHRs.
	Prefetch []mem.PrefetchPolicy
	// Scale is the workload scale factor (1.0 = paper sizes).
	Scale float64
	// Seed drives input generation (shared by all runs of a kernel so
	// ratios compare identical work).
	Seed int64
	// Verify checks device output against the CPU reference on every run
	// (slower; sweeps over many configs usually verify in tests instead).
	Verify bool
	// Workers bounds parallel simulations; 0 means GOMAXPROCS.
	Workers int
	// SimWorkers is the per-simulation core-parallelism (sim.Config.Workers)
	// each run gets. 0 divides the host CPUs over the sweep workers, so a
	// wide sweep keeps one goroutine per simulation (task parallelism
	// saturates the host) while a Workers=1 sweep hands the whole machine
	// to each device — useful for the huge tail configurations. Negative
	// forces the sequential engine.
	SimWorkers int
	// CommitWorkers is the per-simulation commit-phase sharding
	// (sim.Config.CommitWorkers): 0 follows SimWorkers with an automatic
	// serial fallback on light cycles, 1 forces the single-threaded global
	// commit, larger counts force the bank/channel-sharded commit. All
	// settings produce identical simulation results.
	CommitWorkers int
	// Progress, if non-nil, is called after each completed run.
	Progress func(done, total int)
	// ConfigTemplate customizes the non-geometry simulator parameters
	// (memory hierarchy, latencies, scheduler); nil uses defaults.
	ConfigTemplate func(hw core.HWInfo) sim.Config
	// ConfigTag names the ConfigTemplate for checkpointing. A function
	// cannot be fingerprinted, so a checkpointed sweep with a non-nil
	// ConfigTemplate must carry a caller-chosen tag; the tag is recorded
	// in the checkpoint meta and must match on Resume.
	ConfigTag string
	// DispatchOverhead overrides the per-launch driver cost in cycles;
	// negative keeps the runtime default.
	DispatchOverhead int64
	// NoCoalesce disables the memory coalescer (ablation A2).
	NoCoalesce bool
	// TickEngine runs every simulation on the legacy per-cycle tick loop
	// (sim.Config.TickEngine) instead of the event-driven device engine.
	// The engines are byte-identical in every record, so the flag is a
	// wall-clock/differential knob and is not part of the task identity
	// recorded in checkpoints.
	TickEngine bool
	// NoBatchExec disables uniform-warp batched execution
	// (sim.Config.BatchExec), running every simulation on the per-warp
	// oracle path. The paths are byte-identical in every record, so — like
	// TickEngine — this is a wall-clock/differential knob and is not part
	// of the task identity recorded in checkpoints.
	NoBatchExec bool
	// NoBatchMem disables cohort-batched memory execution
	// (sim.Config.BatchMem), running every load and store on the per-warp
	// oracle path. The paths are byte-identical in every record, so — like
	// NoBatchExec — this is a wall-clock/differential knob and is not part
	// of the task identity recorded in checkpoints.
	NoBatchMem bool
	// Checkpoint, if non-empty, is a JSONL file each completed record is
	// appended to (and flushed) as its simulation finishes, so a killed
	// campaign preserves the work done. See checkpoint.go for the format.
	Checkpoint string
	// Resume preloads Checkpoint and skips every task already recorded
	// there, splicing the checkpointed records into the result grid. The
	// final Results.Records are byte-identical to an uninterrupted run.
	// Failed records are not checkpointed, so a resume retries them.
	Resume bool
	// OnRecord, if non-nil, is called with each record as it completes
	// (in completion order, serialized by the runner). Resumed records are
	// not replayed through OnRecord.
	OnRecord func(Record)
	// ShardIndex/ShardCount partition the canonical task grid across
	// independent processes: the run executes
	// only tasks whose canonical grid index is congruent to ShardIndex
	// modulo ShardCount. The stride interleaves shards over the grid's
	// config-major order, so every shard sees the same mix of cheap and
	// expensive configurations and shards finish together. ShardCount <= 1
	// disables sharding. Shard identity (and the full grid) is recorded in
	// the checkpoint meta and validated on Resume; Merge recombines
	// completed shard checkpoints into single-process Results.
	ShardIndex int
	ShardCount int
}

func (o *Options) fill() {
	if o.Configs == nil {
		o.Configs = Grid()
	}
	if o.Kernels == nil {
		o.Kernels = kernels.Names()
	}
	if o.Mappers == nil {
		o.Mappers = []core.Mapper{core.Naive{}, core.Fixed{N: 32}, core.Auto{}}
	}
	if len(o.Scheds) == 0 {
		o.Scheds = []sim.SchedPolicy{sim.SchedRoundRobin}
	}
	if len(o.MSHRs) == 0 {
		o.MSHRs = []int{0}
	}
	if len(o.L1Geoms) == 0 {
		o.L1Geoms = []string{mem.DefaultL1Geometry()}
	}
	if len(o.Prefetch) == 0 {
		o.Prefetch = []mem.PrefetchPolicy{mem.PrefetchOff}
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SimWorkers == 0 {
		o.SimWorkers = runtime.GOMAXPROCS(0) / o.Workers
	}
	if o.SimWorkers < 1 {
		o.SimWorkers = 1
	}
	if o.DispatchOverhead < 0 {
		o.DispatchOverhead = -1
	}
	if o.ShardCount < 1 {
		o.ShardCount = 1
	}
}

// Normalized returns o with every default applied — the exact option set a
// Run of o executes. The campaign service normalizes once so its stored
// options, meta and task grid all describe the same campaign.
func (o Options) Normalized() Options {
	o.fill()
	return o
}

// validate refuses option values no campaign can run correctly, after
// fill() has applied defaults. Unlike the duplicate-axis check — which only
// guards keyed runs, because a plain in-memory run of a duplicated config
// is harmless and deliberate — these hold on every path, including the
// campaign service, whose task handouts are always keyed.
func (o *Options) validate() error {
	if o.Scale < 0 {
		return fmt.Errorf("sweep: scale must be positive (got %v)", o.Scale)
	}
	seen := map[sim.SchedPolicy]bool{}
	for _, p := range o.Scheds {
		if seen[p] {
			// A repeated scheduler can never mean anything but the same
			// records twice under aliased task keys, so it is refused even
			// on plain runs (duplicate configs, by contrast, stay legal
			// there).
			return fmt.Errorf("sweep: duplicate scheduler %s on the sched axis", p)
		}
		seen[p] = true
	}
	// The memory-side axes hold the same bargain as the scheduler: small
	// enumerable policy axes whose duplicates could only alias task keys,
	// refused on every path.
	seenM := map[int]bool{}
	for _, n := range o.MSHRs {
		if n < 0 {
			return fmt.Errorf("sweep: negative MSHR count %d on the mshrs axis", n)
		}
		if seenM[n] {
			return fmt.Errorf("sweep: duplicate MSHR count %d on the mshrs axis", n)
		}
		seenM[n] = true
	}
	seenG := map[string]bool{}
	for _, g := range o.L1Geoms {
		if _, _, err := mem.ParseL1Geometry(g); err != nil {
			return fmt.Errorf("sweep: l1 axis: %w", err)
		}
		if seenG[g] {
			return fmt.Errorf("sweep: duplicate L1 geometry %s on the l1 axis", g)
		}
		seenG[g] = true
	}
	seenP := map[mem.PrefetchPolicy]bool{}
	for _, p := range o.Prefetch {
		if _, err := mem.ParsePrefetchPolicy(p.String()); err != nil {
			return err
		}
		if seenP[p] {
			return fmt.Errorf("sweep: duplicate prefetch policy %s on the prefetch axis", p)
		}
		seenP[p] = true
	}
	return nil
}

// duplicateAxisEntry returns the name of the first repeated entry on any
// grid axis (a task key is duplicated exactly when an axis value is), or
// "" when all seven axes are duplicate-free.
func duplicateAxisEntry(opts Options) string {
	axes := [][]string{nil, opts.Kernels, nil, nil, nil, opts.L1Geoms, nil}
	for _, hw := range opts.Configs {
		axes[0] = append(axes[0], hw.Name())
	}
	for _, m := range opts.Mappers {
		axes[2] = append(axes[2], m.Name())
	}
	for _, p := range opts.Scheds {
		axes[3] = append(axes[3], p.String())
	}
	for _, n := range opts.MSHRs {
		axes[4] = append(axes[4], strconv.Itoa(n))
	}
	for _, p := range opts.Prefetch {
		axes[6] = append(axes[6], p.String())
	}
	for _, axis := range axes {
		seen := map[string]bool{}
		for _, name := range axis {
			if seen[name] {
				return name
			}
			seen[name] = true
		}
	}
	return ""
}

// Task is one cell of the canonical campaign grid: the (config, kernel,
// mapper, sched, mshrs, l1, prefetch) tuple a single simulation runs, plus
// its canonical grid index. The campaign service hands out tasks by index;
// both sides enumerate the same grid (validated by Meta equality), so
// indices — not mapper objects, which do not serialize — cross the wire.
type Task struct {
	Index    int // position in the canonical grid (config-major, memory axes innermost)
	Config   core.HWInfo
	Kernel   string
	Mapper   core.Mapper
	Sched    sim.SchedPolicy
	MSHRs    int    // outstanding-miss bound per L1 and per L2 bank (0 = unbounded)
	L1       string // L1 geometry spec ("16k4w")
	Prefetch mem.PrefetchPolicy
}

// Key is the task's identity string; it matches Record.Key for the record
// the task produces.
func (t Task) Key() string {
	return taskKey(t.Config.Name(), t.Kernel, t.Mapper.Name(), t.Sched.String(),
		strconv.Itoa(t.MSHRs), t.L1, t.Prefetch.String())
}

// enumerateTasks lists the canonical task grid of filled options, in
// canonical order: config-major, then kernel, mapper, sched, and the
// memory-side axes (mshrs, l1, prefetch) innermost. Every keyed consumer
// (Run's shard slice, Merge's grid reconstruction, the campaign service)
// must agree with this order.
func enumerateTasks(opts Options) []Task {
	n := len(opts.Configs) * len(opts.Kernels) * len(opts.Mappers) * len(opts.Scheds) *
		len(opts.MSHRs) * len(opts.L1Geoms) * len(opts.Prefetch)
	out := make([]Task, 0, n)
	for _, hw := range opts.Configs {
		for _, kname := range opts.Kernels {
			for _, m := range opts.Mappers {
				for _, sched := range opts.Scheds {
					for _, mshrs := range opts.MSHRs {
						for _, l1 := range opts.L1Geoms {
							for _, pf := range opts.Prefetch {
								out = append(out, Task{Index: len(out), Config: hw, Kernel: kname,
									Mapper: m, Sched: sched, MSHRs: mshrs, L1: l1, Prefetch: pf})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// TaskGrid returns the canonical task grid of a campaign after defaulting
// and validating opts. Task keys must be unique — grids whose axes repeat
// an entry are refused, exactly as Run refuses them when sharding or
// checkpointing — so the grid index and the task key name the same cell.
func TaskGrid(opts Options) ([]Task, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dup := duplicateAxisEntry(opts); dup != "" {
		return nil, fmt.Errorf("sweep: duplicate grid entry %s: task handout requires unique task keys", dup)
	}
	return enumerateTasks(opts), nil
}

// RunTask executes one task of the campaign through the shared device-pool
// and cache substrate, exactly as Run would: the record it returns is
// byte-identical to the one a single-process Run of the same options
// produces for that grid cell. Failures come back in Record.Err, never as
// a panic, so a fleet worker survives any single task.
func RunTask(opts Options, pool *ocl.DevicePool, t Task) Record {
	opts.fill()
	return runOne(opts, pool, t)
}

// Record is one (config, kernel, mapper, sched, mshrs, l1, prefetch)
// simulation outcome.
type Record struct {
	Config      core.HWInfo
	Kernel      string
	Mapper      string
	Sched       string // warp-scheduler policy name (sim.SchedPolicy.String)
	MSHRs       int    // outstanding-miss bound per L1 and per L2 bank (0 = unbounded)
	L1          string // L1 geometry spec ("16k4w")
	Prefetch    string // L1 prefetch policy name (mem.PrefetchPolicy.String)
	LWS         int    // of the first launch
	Cycles      uint64
	Instrs      uint64
	MemStall    uint64
	ExecStall   uint64
	EnergyPJ    float64 // summed launch energy estimate (picojoules)
	Boundedness core.Boundedness
	Err         string // non-empty if this run failed
}

// CacheReport summarizes the campaign engine's cross-run reuse for one
// sweep: program-cache and input-memo hit/miss deltas over the run, device
// pool reuse, and how many records a Resume spliced in from the checkpoint.
type CacheReport struct {
	ProgramHits, ProgramMisses uint64
	InputHits, InputMisses     uint64
	DevicesReused, DevicesNew  uint64
	Resumed                    int
}

func (c CacheReport) String() string {
	s := fmt.Sprintf("programs %d hit / %d built; inputs %d hit / %d built; devices %d reused / %d built",
		c.ProgramHits, c.ProgramMisses, c.InputHits, c.InputMisses, c.DevicesReused, c.DevicesNew)
	if c.Resumed > 0 {
		s += fmt.Sprintf("; %d records resumed from checkpoint", c.Resumed)
	}
	return s
}

// Results holds a completed sweep.
type Results struct {
	Options Options
	Records []Record
	// Cache reports the campaign engine's reuse counters for this run
	// (zero value when Results was reconstructed from a CSV).
	Cache CacheReport
}

// Run executes the sweep as a streaming campaign: tasks fan out over the
// worker pool, each completed record is streamed to the checkpoint (when
// configured) and OnRecord sink in completion order, and the final record
// grid is assembled in deterministic task order. With Resume, tasks already
// present in the checkpoint are spliced in without re-simulating; the
// resulting Records are byte-identical to an uninterrupted run.
func Run(opts Options) (*Results, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount {
		return nil, fmt.Errorf("sweep: shard index %d out of range for %d shards", opts.ShardIndex, opts.ShardCount)
	}
	if opts.ShardCount > 1 || opts.Checkpoint != "" {
		// Sharding and checkpointing identify tasks by their task key; a
		// duplicated grid entry would alias
		// two tasks onto one key and silently mis-splice on resume or merge.
		if dup := duplicateAxisEntry(opts); dup != "" {
			return nil, fmt.Errorf("sweep: duplicate grid entry %s: sharding/checkpointing requires unique task keys", dup)
		}
	}
	// tasks is this process's slice of the canonical grid: every ShardCount-th
	// task starting at ShardIndex. Records (and the checkpoint) cover only
	// this shard, in shard-local canonical order (slot), while Task.Index
	// keeps the full-grid position; Merge reassembles shards into full-grid
	// order. The scheduler axis nests innermost, after the mapper.
	type shardTask struct {
		slot int
		Task
	}
	var tasks []shardTask
	for _, t := range enumerateTasks(opts) {
		if t.Index%opts.ShardCount == opts.ShardIndex {
			tasks = append(tasks, shardTask{slot: len(tasks), Task: t})
		}
	}
	records := make([]Record, len(tasks))
	skip := make([]bool, len(tasks))
	resumed := 0
	if opts.Checkpoint != "" && opts.ConfigTemplate != nil && opts.ConfigTag == "" {
		// The simulator configuration determines every record; an unnamed
		// template cannot be validated on resume, so refuse to checkpoint
		// records that a later resume could silently mis-splice.
		return nil, fmt.Errorf("sweep: checkpointing with a ConfigTemplate requires Options.ConfigTag")
	}
	if opts.Resume && opts.Checkpoint != "" {
		seen, err := ResumeRecords(opts)
		if err != nil {
			return nil, fmt.Errorf("sweep: resume: %w", err)
		}
		for i, tk := range tasks {
			if rec, ok := seen[tk.Key()]; ok {
				records[i] = rec
				skip[i] = true
				resumed++
			}
		}
	}
	var ckpt *CheckpointWriter
	if opts.Checkpoint != "" {
		var err error
		ckpt, err = OpenCheckpoint(opts.Checkpoint, opts.Resume, opts)
		if err != nil {
			return nil, fmt.Errorf("sweep: checkpoint: %w", err)
		}
	}

	pool := ocl.NewDevicePool(opts.Workers)
	progBase := ocl.ProgramCacheStats()
	inputBase := kernels.InputCacheStats()

	var wg sync.WaitGroup
	ch := make(chan shardTask)
	var mu sync.Mutex
	var sinkErr error
	done := resumed
	if opts.Progress != nil && resumed > 0 {
		opts.Progress(done, len(tasks))
	}
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range ch {
				rec := runOne(opts, pool, tk.Task)
				records[tk.slot] = rec
				mu.Lock()
				if ckpt != nil && rec.Err == "" {
					if err := ckpt.Append(rec); err != nil && sinkErr == nil {
						sinkErr = err
					}
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(tasks))
				}
				if opts.OnRecord != nil {
					opts.OnRecord(rec)
				}
				mu.Unlock()
			}
		}()
	}
	for i, tk := range tasks {
		if !skip[i] {
			ch <- tk
		}
	}
	close(ch)
	wg.Wait()
	if ckpt != nil {
		if err := ckpt.Close(); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}

	prog := ocl.ProgramCacheStats()
	inp := kernels.InputCacheStats()
	dev := pool.Stats()
	res := &Results{Options: opts, Records: records, Cache: CacheReport{
		ProgramHits:   prog.Hits - progBase.Hits,
		ProgramMisses: prog.Misses - progBase.Misses,
		InputHits:     inp.Hits - inputBase.Hits,
		InputMisses:   inp.Misses - inputBase.Misses,
		DevicesReused: dev.Hits,
		DevicesNew:    dev.Misses,
		Resumed:       resumed,
	}}
	if sinkErr != nil {
		return res, fmt.Errorf("sweep: checkpoint write: %w", sinkErr)
	}
	for _, r := range records {
		if r.Err != "" {
			return res, fmt.Errorf("sweep: %s/%s on %s: %s", r.Kernel, r.Mapper, r.Config.Name(), r.Err)
		}
	}
	return res, nil
}

func runOne(opts Options, pool *ocl.DevicePool, t Task) Record {
	hw := t.Config
	rec := Record{Config: hw, Kernel: t.Kernel, Mapper: t.Mapper.Name(), Sched: t.Sched.String(),
		MSHRs: t.MSHRs, L1: t.L1, Prefetch: t.Prefetch.String()}
	spec, err := kernels.ByName(t.Kernel)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	var cfg sim.Config
	if opts.ConfigTemplate != nil {
		cfg = opts.ConfigTemplate(hw)
		if cfg.Sched != sim.SchedRoundRobin {
			// The scheduler is a grid axis, not a template knob: the axis
			// value is authoritative so the checkpoint meta can validate it
			// on resume/merge. A template that sets a non-default policy
			// (the pre-axis way to vary it) would be silently overridden —
			// refuse it loudly instead.
			rec.Err = fmt.Sprintf("ConfigTemplate sets the warp scheduler (%s); the scheduler is a grid axis — use Options.Scheds", cfg.Sched)
			return rec
		}
		// The memory-side knobs are axis-owned for the same reason.
		if cfg.Mem.L1.MSHRs != 0 || cfg.Mem.L2.MSHRs != 0 {
			rec.Err = fmt.Sprintf("ConfigTemplate sets MSHR capacity (L1 %d, L2 %d); MSHRs are a grid axis — use Options.MSHRs",
				cfg.Mem.L1.MSHRs, cfg.Mem.L2.MSHRs)
			return rec
		}
		if def := mem.DefaultHierarchyConfig().L1; cfg.Mem.L1.SizeBytes != def.SizeBytes || cfg.Mem.L1.Ways != def.Ways {
			rec.Err = fmt.Sprintf("ConfigTemplate sets the L1 geometry (%s); the geometry is a grid axis — use Options.L1Geoms",
				mem.FormatL1Geometry(cfg.Mem.L1.SizeBytes, cfg.Mem.L1.Ways))
			return rec
		}
		if cfg.Mem.Prefetch != mem.PrefetchOff {
			rec.Err = fmt.Sprintf("ConfigTemplate sets the prefetch policy (%s); prefetch is a grid axis — use Options.Prefetch", cfg.Mem.Prefetch)
			return rec
		}
	} else {
		cfg = sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
	}
	cfg.Sched = t.Sched
	cfg.Mem.L1.MSHRs = t.MSHRs
	cfg.Mem.L2.MSHRs = t.MSHRs
	size, ways, gerr := mem.ParseL1Geometry(t.L1)
	if gerr != nil {
		rec.Err = gerr.Error()
		return rec
	}
	cfg.Mem.L1.SizeBytes, cfg.Mem.L1.Ways = size, ways
	cfg.Mem.Prefetch = t.Prefetch
	// The sweep already task-parallelizes across runs; share the host CPUs
	// between the two levels instead of oversubscribing (Options.SimWorkers).
	cfg.Workers = opts.SimWorkers
	if opts.CommitWorkers > 0 {
		cfg.CommitWorkers = opts.CommitWorkers
	}
	if opts.TickEngine {
		cfg.TickEngine = true
	}
	if opts.NoBatchExec {
		cfg.BatchExec = false
	}
	if opts.NoBatchMem {
		cfg.BatchMem = false
	}
	d, err := pool.Get(cfg)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	defer pool.Put(d)
	if opts.DispatchOverhead >= 0 {
		d.DispatchOverhead = uint64(opts.DispatchOverhead)
	}
	d.Sim().NoCoalesce = opts.NoCoalesce
	d.SetMapper(t.Mapper)
	c, err := spec.Build(d, kernels.Params{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	var res *kernels.Result
	if opts.Verify {
		res, err = c.RunVerified(d, 0)
	} else {
		res, err = c.Run(d, 0)
	}
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	fillRecord(&rec, res, hw)
	return rec
}

// fillRecord folds a completed case result into rec. A case that produced
// no launches is recorded as a failure instead of indexing Launches[0] (an
// index panic here used to kill the whole worker).
func fillRecord(rec *Record, res *kernels.Result, hw core.HWInfo) {
	if len(res.Launches) == 0 {
		rec.Err = "case completed without launches"
		return
	}
	rec.Cycles = res.Cycles
	rec.LWS = res.Launches[0].LWS
	for _, l := range res.Launches {
		rec.Instrs += l.Stats.Issued
		rec.MemStall += l.Stats.MemStall
		rec.ExecStall += l.Stats.ExecStall
		rec.EnergyPJ += l.Energy.Total()
	}
	rec.Boundedness = core.Classify(rec.MemStall, rec.ExecStall, rec.Cycles*uint64(hw.Cores))
}
