package sweep

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/kernels"
	"repro/internal/stats"
)

// sampleKey identifies one ratio sample point: a (config, sched) pair.
// With the scheduler swept as a grid axis, each policy contributes its own
// sample per configuration — mapper ratios are always compared within a
// policy, never across (a single-sched sweep degenerates to config-only
// keys, matching the pre-axis behaviour).
func sampleKey(rec Record) string {
	return rec.Config.Name() + "/" + rec.Sched
}

// lookup returns cycles per sample key for one (kernel, mapper).
func (r *Results) lookup(kernel, mapper string) map[string]uint64 {
	out := map[string]uint64{}
	for _, rec := range r.Records {
		if rec.Kernel == kernel && rec.Mapper == mapper && rec.Err == "" {
			out[sampleKey(rec)] = rec.Cycles
		}
	}
	return out
}

// Mappers returns the distinct mapper names present, in first-seen order.
func (r *Results) Mappers() []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range r.Records {
		if !seen[rec.Mapper] {
			seen[rec.Mapper] = true
			out = append(out, rec.Mapper)
		}
	}
	return out
}

// Kernels returns the distinct kernel names present, in first-seen order.
func (r *Results) Kernels() []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range r.Records {
		if !seen[rec.Kernel] {
			seen[rec.Kernel] = true
			out = append(out, rec.Kernel)
		}
	}
	return out
}

// Ratios returns baseline/ours cycle ratios per configuration for one
// kernel — the samples of one Figure 2 violin. Ratios > 1 mean "ours" is
// faster.
func (r *Results) Ratios(kernel, baseline, ours string) []float64 {
	base := r.lookup(kernel, baseline)
	our := r.lookup(kernel, ours)
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := our[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]float64, 0, len(names))
	for _, name := range names {
		if our[name] == 0 {
			continue
		}
		out = append(out, float64(base[name])/float64(our[name]))
	}
	return out
}

// KernelSummary is one kernel's Figure 2 data-table row pair.
type KernelSummary struct {
	Kernel  string
	Group   kernels.Group
	VsNaive stats.RatioSummary // lws=1 / ours
	VsFixed stats.RatioSummary // lws=32 / ours
}

// Summaries computes the per-kernel Figure 2 tables against the "ours"
// mapper.
func (r *Results) Summaries() []KernelSummary {
	var out []KernelSummary
	for _, k := range r.Kernels() {
		ks := KernelSummary{Kernel: k}
		if spec, err := kernels.ByName(k); err == nil {
			ks.Group = spec.Group
		}
		ks.VsNaive = stats.SummarizeRatios(r.Ratios(k, "lws=1", "ours"))
		ks.VsFixed = stats.SummarizeRatios(r.Ratios(k, "lws=32", "ours"))
		out = append(out, ks)
	}
	return out
}

// Aggregate is the Section 3 headline: the mean ratio over a kernel group
// (GroupMath reproduces "1.3x over lws=1 and 3.7x over lws=32").
type Aggregate struct {
	Group   kernels.Group
	VsNaive float64
	VsFixed float64
	Kernels int
}

// Aggregates computes group-level mean ratios.
func (r *Results) Aggregates() []Aggregate {
	byGroup := map[kernels.Group]*Aggregate{}
	order := []kernels.Group{}
	for _, s := range r.Summaries() {
		a := byGroup[s.Group]
		if a == nil {
			a = &Aggregate{Group: s.Group}
			byGroup[s.Group] = a
			order = append(order, s.Group)
		}
		a.VsNaive += s.VsNaive.Avg
		a.VsFixed += s.VsFixed.Avg
		a.Kernels++
	}
	out := make([]Aggregate, 0, len(order))
	for _, g := range order {
		a := byGroup[g]
		if a.Kernels > 0 {
			a.VsNaive /= float64(a.Kernels)
			a.VsFixed /= float64(a.Kernels)
		}
		out = append(out, *a)
	}
	return out
}

// EnergyRatios returns baseline/ours energy ratios per configuration for
// one kernel — the energy analogue of Ratios. Eq. 1 optimizes latency;
// this quantifies what it does to consumption (mostly instruction-count
// effects: fewer workgroup-launcher executions).
func (r *Results) EnergyRatios(kernel, baseline, ours string) []float64 {
	base := map[string]float64{}
	our := map[string]float64{}
	for _, rec := range r.Records {
		if rec.Kernel != kernel || rec.Err != "" {
			continue
		}
		switch rec.Mapper {
		case baseline:
			base[sampleKey(rec)] = rec.EnergyPJ
		case ours:
			our[sampleKey(rec)] = rec.EnergyPJ
		}
	}
	names := make([]string, 0, len(base))
	for name := range base {
		if our[name] > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]float64, 0, len(names))
	for _, name := range names {
		out = append(out, base[name]/our[name])
	}
	return out
}

// RenderEnergyTable prints per-kernel mean energy ratios of the baselines
// against "ours".
func (r *Results) RenderEnergyTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s | %-22s | %-22s\n", "kernel", "energy lws=1/ours", "energy lws=32/ours"); err != nil {
		return err
	}
	for _, k := range r.Kernels() {
		n := stats.SummarizeRatios(r.EnergyRatios(k, "lws=1", "ours"))
		f := stats.SummarizeRatios(r.EnergyRatios(k, "lws=32", "ours"))
		if _, err := fmt.Fprintf(w, "%-16s | avg %.2f worst %.2f     | avg %.2f worst %.2f\n",
			k, n.Avg, n.Worst, f.Avg, f.Worst); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable writes the Figure 2 data tables (E3): per kernel, the
// average, worse-% and worst entries for both baselines.
func (r *Results) RenderTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %-6s | %-28s | %-28s\n", "kernel", "group", "lws=1 / ours", "lws=32 / ours"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "-----------------------------------------------------------------------------------"); err != nil {
		return err
	}
	for _, s := range r.Summaries() {
		_, err := fmt.Fprintf(w, "%-16s %-6s | %-28s | %-28s\n", s.Kernel, s.Group, s.VsNaive, s.VsFixed)
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, a := range r.Aggregates() {
		_, err := fmt.Fprintf(w, "aggregate %-5s kernels=%d: avg %.2fx over lws=1, %.2fx over lws=32\n",
			a.Group, a.Kernels, a.VsNaive, a.VsFixed)
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderFigure2 writes the violin plots with their data tables — the full
// figure reproduction (E2+E3).
func (r *Results) RenderFigure2(w io.Writer, opts stats.ViolinOptions) error {
	for _, k := range r.Kernels() {
		naive := r.Ratios(k, "lws=1", "ours")
		fixed := r.Ratios(k, "lws=32", "ours")
		if err := stats.RenderViolinPair(w, k, naive, fixed, opts); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return r.RenderTable(w)
}
