package sweep

import (
	"bytes"
	"testing"
)

// Sweep-level half of the engine differential harness: a campaign whose
// devices run the legacy per-cycle tick loop (Options.TickEngine ->
// sim.Config.TickEngine) must produce records byte-identical to the default
// event-engine campaign, across the geometry, kernel, mapper and scheduler
// axes. internal/sim pins the same property at the bare-simulator and
// kernel-registry levels.
func TestSweepTickEngineRecordIdentity(t *testing.T) {
	event, err := Run(schedCampaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := schedCampaignOpts()
	opts.TickEngine = true
	oracle, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, event.Records), mustJSON(t, oracle.Records)) {
		for i := range event.Records {
			if !bytes.Equal(mustJSON(t, event.Records[i]), mustJSON(t, oracle.Records[i])) {
				t.Errorf("record %d differs:\nevent %+v\ntick  %+v", i, event.Records[i], oracle.Records[i])
			}
		}
		t.Fatal("event-engine sweep records not byte-identical to the tick oracle")
	}
}
