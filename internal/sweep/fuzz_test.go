package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzReadCheckpoint pins the checkpoint parser's crash-safety contract:
// for ANY byte stream — real checkpoints, truncated or torn lines,
// duplicated keys, corrupt or alien meta headers, binary garbage — it must
// never panic, and must either return an error or parse cleanly into
// records that all carry a task identity. The seeds cover the states real
// campaigns leave behind (complete files, a SIGKILL mid-record, appended
// resumes).
func FuzzReadCheckpoint(f *testing.F) {
	// A real two-record checkpoint, as Run writes it.
	opts := Options{
		Configs: []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}},
		Kernels: []string{"vecadd"},
		Scale:   0.05,
		Seed:    7,
	}
	opts.fill()
	var real bytes.Buffer
	real.Write(jsonLine(f, MetaFor(opts)))
	rec := Record{Config: opts.Configs[0], Kernel: "vecadd", Mapper: "ours", LWS: 1, Cycles: 123, Instrs: 45, EnergyPJ: 1.5}
	line := jsonLine(f, rec)
	real.Write(line)
	rec.Mapper = "lws=1"
	line2 := jsonLine(f, rec)
	real.Write(line2)
	f.Add(real.Bytes())

	// Torn tail: killed mid-record write.
	f.Add(real.Bytes()[:real.Len()-len(line2)/2])
	// Duplicated key (appended resume).
	f.Add(append(append([]byte{}, real.Bytes()...), line...))
	// Corrupt meta variants.
	f.Add([]byte(`{"checkpoint_version":99}` + "\n"))
	f.Add([]byte(`{"checkpoint_version":-1}` + "\n"))
	f.Add([]byte(`{"checkpoint_version":2,"configs":",,,"}` + "\n"))
	// Headerless records, missing identity, raw garbage.
	f.Add(line)
	f.Add([]byte(`{"Cycles":12}` + "\n"))
	f.Add([]byte("not json at all\n{{{"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{'})

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, recs, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if meta != nil && meta.Version != checkpointVersion {
			t.Fatalf("accepted meta with version %d", meta.Version)
		}
		for key, r := range recs {
			if r.Kernel == "" || r.Mapper == "" {
				t.Fatalf("accepted record without task identity: %q -> %+v", key, r)
			}
			if key != r.Key() {
				t.Fatalf("record stored under %q but keys as %q", key, r.Key())
			}
		}
		// A cleanly parsed checkpoint must survive a rewrite round trip:
		// re-serializing the records yields a stream that parses to the
		// same set (the merge writer relies on this).
		if len(recs) > 0 {
			var buf bytes.Buffer
			for _, r := range recs {
				line := jsonLine(t, r)
				if len(line) > maxCheckpointLine {
					// Re-marshaling can expand a line past the reader's
					// bound (raw '<' escapes to 6 bytes); the writer refuses
					// such lines (writeJSONLine), so they never reach a file.
					return
				}
				buf.Write(line)
			}
			_, again, err := ReadCheckpoint(&buf)
			if err != nil {
				t.Fatalf("re-serialized records do not re-parse: %v", err)
			}
			if len(again) != len(recs) {
				t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
			}
		}
	})
}

// jsonLine marshals v as one JSONL line.
func jsonLine(tb testing.TB, v any) []byte {
	tb.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return append(b, '\n')
}

// TestReadCheckpointTornTail pins the kill-9 semantics deterministically
// (the fuzz target explores the space, this documents the contract): a
// final unterminated line that does not parse is dropped and its task is
// simply not recorded; the same corruption mid-file is an error.
func TestReadCheckpointTornTail(t *testing.T) {
	opts := Options{
		Configs: []core.HWInfo{{Cores: 1, Warps: 2, Threads: 2}},
		Kernels: []string{"vecadd"},
		Scale:   0.05,
	}
	opts.fill()
	meta := strings.TrimSuffix(string(jsonLine(t, MetaFor(opts))), "\n")
	full := strings.TrimSuffix(string(jsonLine(t, Record{Config: opts.Configs[0], Kernel: "vecadd", Mapper: "ours", Cycles: 9})), "\n")

	torn := meta + "\n" + full + "\n" + full[:len(full)/2]
	m, recs, err := ReadCheckpoint(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	if m == nil || len(recs) != 1 {
		t.Fatalf("torn tail parse: meta=%v recs=%d, want meta + 1 record", m, len(recs))
	}

	// The same partial line followed by more data is not a torn tail.
	midCorrupt := meta + "\n" + full[:len(full)/2] + "\n" + full + "\n"
	if _, _, err := ReadCheckpoint(strings.NewReader(midCorrupt)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}

	// An unterminated final line that IS complete JSON is kept: the writer
	// was killed between the record bytes and the newline.
	flushEdge := meta + "\n" + full
	_, recs, err = ReadCheckpoint(strings.NewReader(flushEdge))
	if err != nil || len(recs) != 1 {
		t.Fatalf("unterminated complete record: recs=%d err=%v", len(recs), err)
	}
}
