package sim

import "fmt"

// Reg reads integer register r of (core, warp, lane). Intended for tests,
// debuggers and the host runtime; not part of the timed machine.
func (s *Sim) Reg(core, warp, lane int, r uint8) (uint32, error) {
	w, err := s.warpAt(core, warp)
	if err != nil {
		return 0, err
	}
	if lane < 0 || lane >= s.cfg.Threads || r > 31 {
		return 0, fmt.Errorf("sim: bad lane %d or register %d", lane, r)
	}
	if w.regs == nil {
		return 0, nil
	}
	return w.regs[lane*32+int(r)], nil
}

// FReg reads float register r (as IEEE-754 bits) of (core, warp, lane).
func (s *Sim) FReg(core, warp, lane int, r uint8) (uint32, error) {
	w, err := s.warpAt(core, warp)
	if err != nil {
		return 0, err
	}
	if lane < 0 || lane >= s.cfg.Threads || r > 31 {
		return 0, fmt.Errorf("sim: bad lane %d or register %d", lane, r)
	}
	if w.fregs == nil {
		return 0, nil
	}
	return w.fregs[lane*32+int(r)], nil
}

// WarpActive reports whether (core, warp) is currently active.
func (s *Sim) WarpActive(core, warp int) (bool, error) {
	w, err := s.warpAt(core, warp)
	if err != nil {
		return false, err
	}
	return w.active, nil
}

// WarpPC returns the current pc of (core, warp).
func (s *Sim) WarpPC(core, warp int) (uint32, error) {
	w, err := s.warpAt(core, warp)
	if err != nil {
		return 0, err
	}
	return w.pc, nil
}

// WarpTMask returns the current thread mask of (core, warp).
func (s *Sim) WarpTMask(core, warp int) (uint64, error) {
	w, err := s.warpAt(core, warp)
	if err != nil {
		return 0, err
	}
	return w.tmask, nil
}

func (s *Sim) warpAt(core, warp int) (*warp, error) {
	if core < 0 || core >= s.cfg.Cores || warp < 0 || warp >= s.cfg.Warps {
		return nil, fmt.Errorf("sim: warp (%d,%d) outside %s", core, warp, s.cfg.Name())
	}
	return &s.cores[core].warps[warp], nil
}
