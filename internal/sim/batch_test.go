package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// Batched-execution differential harness (bare-simulator level). The
// contract under test: with Config.BatchExec on, every simulated observable
// — cycles, per-core statistics, cache/DRAM statistics, memory contents,
// the observer stream, traps — is byte-identical to the per-warp oracle
// (BatchExec off), under every scheduler policy, both engines, and the
// parallel runner. internal/sweep and the CLI matrix in CI pin the same
// property at the record and artifact levels.

// batchUniformProg keeps every warp of a core in lockstep through a
// compute-heavy loop that covers the whole batchable set: fast ALU ops,
// the slow mul/div arm, immediates, lui/auipc, and the FP pipelines.
// Lane values differ (tid-dependent), so the fused warps x lanes loops are
// exercised with non-uniform data; control flow is warp-uniform (bnez on a
// loop counter every lane shares). Results land in the snapshot window.
const batchUniformProg = `
	csrr s0, cid
	csrr s1, wid
	csrr s2, tid
	slli t0, s1, 3
	add  t0, t0, s2
	add  t0, t0, s0
	fcvt.s.w f0, t0
	li   t1, 48
	li   t2, 0
	li   t3, 7
loop:
	add  t2, t2, t0
	xor  t4, t2, t1
	mul  t5, t4, t3
	sub  t2, t5, t4
	ori  t6, t2, 1
	div  a2, t5, t6
	lui  a0, 0x12
	auipc a1, 0
	add  a0, a0, a2
	fadd.s f1, f0, f0
	fmul.s f2, f1, f0
	fmadd.s f3, f2, f1, f0
	fsgnjx.s f4, f3, f2
	fmin.s f5, f4, f1
	addi t1, t1, -1
	bnez t1, loop
	slli s3, s0, 12
	slli s4, s1, 7
	add  s3, s3, s4
	slli s5, s2, 3
	add  s3, s3, s5
	li   s6, 0x8000
	add  s3, s3, s6
	sw   t2, 0(s3)
	fsw  f3, 4(s3)
	ecall
`

// batchOracle runs prog with BatchExec off (the per-warp oracle) and
// returns its snapshot; cfg is taken by value so the caller's copy keeps
// its BatchExec setting.
func batchOracle(t *testing.T, cfg Config, prog string, activate func(*Sim) error) snapshot {
	t.Helper()
	cfg.BatchExec = false
	return runSnapshot(t, cfg, prog, activate, 1)
}

// TestBatchMatchesUnbatchedOracle is the core differential: batched
// execution vs the per-warp oracle across all four scheduler policies,
// both engines, and worker counts — on the uniform cohort-heavy program,
// on the memory/FP/divergence programs shared with the engine harness
// (cohorts form and dissolve around fallback ops), and on partial and
// per-warp-mixed thread masks.
func TestBatchMatchesUnbatchedOracle(t *testing.T) {
	mixedMasks := func(cfg Config) func(*Sim) error {
		return func(s *Sim) error {
			for c := 0; c < cfg.Cores; c++ {
				for w := 0; w < cfg.Warps; w++ {
					tmask := uint64(0xFF)
					if w%2 == 1 {
						tmask = 0x0F
					}
					if err := s.ActivateWarp(c, w, 0x1000, tmask); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	cases := []struct {
		name     string
		prog     string
		activate func(Config) func(*Sim) error
	}{
		{"uniform", batchUniformProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"partial-mask", batchUniformProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0x55) }},
		{"mixed-masks", batchUniformProg, mixedMasks},
		{"mem", diffMemProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"fp-divergence", diffFPProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
	}
	for _, tc := range cases {
		for _, pol := range SchedPolicies() {
			t.Run(fmt.Sprintf("%s/%s", tc.name, pol), func(t *testing.T) {
				cfg := DefaultConfig(2, 8, 8)
				cfg.Sched = pol
				oracle := batchOracle(t, cfg, tc.prog, tc.activate(cfg))
				cfg.BatchExec = true
				for _, engine := range []struct {
					name string
					tick bool
				}{{"event", false}, {"tick", true}} {
					cfg.TickEngine = engine.tick
					for _, workers := range []int{1, 2} {
						got := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), workers)
						diffSnapshots(t, fmt.Sprintf("%s/%s/workers=%d", pol, engine.name, workers), oracle, got)
					}
				}
			})
		}
	}
}

// TestBatchRotationBoundary pins cohort formation across the round-robin
// rotation boundary: an odd warp count keeps the rr pointer sliding
// relative to cohort membership, so the leader is regularly picked
// mid-mask with mates on both sides of the wrap. The two-level policy
// gets the same program so group-boundary rotation is covered too.
func TestBatchRotationBoundary(t *testing.T) {
	for _, pol := range []SchedPolicy{SchedRoundRobin, SchedTwoLevel} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := DefaultConfig(1, 5, 8)
			cfg.Sched = pol
			activate := activateAll(cfg, 5, 0xFF)
			oracle := batchOracle(t, cfg, batchUniformProg, activate)
			cfg.BatchExec = true
			got := runSnapshot(t, cfg, batchUniformProg, activate, 1)
			diffSnapshots(t, pol.String(), oracle, got)
		})
	}
}

// TestBatchObserverStream pins observer byte-identity: the per-issue event
// stream (order included) must not change when cohort mates replay their
// bookkeeping instead of executing.
func TestBatchObserverStream(t *testing.T) {
	run := func(batch bool) []IssueEvent {
		cfg := DefaultConfig(2, 8, 8)
		cfg.BatchExec = batch
		p := asm.MustAssemble(batchUniformProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		if err := activateAll(cfg, cfg.Warps, 0xFF)(s); err != nil {
			t.Fatal(err)
		}
		var events []IssueEvent
		s.SetObserver(func(ev IssueEvent) { events = append(events, ev) })
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return events
	}
	oracle := run(false)
	batched := run(true)
	if len(oracle) != len(batched) {
		t.Fatalf("event count differs: oracle %d, batched %d", len(oracle), len(batched))
	}
	for i := range oracle {
		if oracle[i] != batched[i] {
			t.Fatalf("event %d differs:\noracle  %+v\nbatched %+v", i, oracle[i], batched[i])
		}
	}
}

// TestBatchCohortForms is the whitebox guard that batching actually
// engages: with several warps parked at the same pc on a batchable
// instruction, the first issue must pre-execute the cohort and mark every
// mate, and each mate's own issue must consume the mark.
func TestBatchCohortForms(t *testing.T) {
	cfg := DefaultConfig(1, 4, 4)
	p := asm.MustAssemble("add t0, t1, t2\necall\n", 0x1000, nil)
	memory := mem.NewMemory(1 << 16)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if err := s.ActivateWarp(0, w, 0x1000, 0xF); err != nil {
			t.Fatal(err)
		}
	}
	c := &s.cores[0]
	issued, _, err := s.issueHeap(c)
	if err != nil || !issued {
		t.Fatalf("first issue: issued=%v err=%v", issued, err)
	}
	marked := 0
	for w := range c.warps {
		if c.warps[w].batched {
			if c.warps[w].batchPC != 0x1000 {
				t.Errorf("warp %d batchPC = %#x, want 0x1000", w, c.warps[w].batchPC)
			}
			marked++
		}
	}
	if marked != 3 {
		t.Fatalf("cohort mates marked = %d, want 3", marked)
	}
	// Each mate's own issue slot consumes its mark.
	for i := 0; i < 3; i++ {
		if issued, _, err := s.issueHeap(c); err != nil || !issued {
			t.Fatalf("mate issue %d: issued=%v err=%v", i, issued, err)
		}
	}
	for w := range c.warps {
		if c.warps[w].batched {
			t.Errorf("warp %d still marked batched after its issue", w)
		}
	}
}

// TestBatchScanSchedInert pins that the legacy scan oracle never batches:
// ScanSched forces the per-warp path even with BatchExec requested, so the
// scan engine stays a fully independent oracle.
func TestBatchScanSchedInert(t *testing.T) {
	cfg := DefaultConfig(1, 4, 4)
	cfg.ScanSched = true
	cfg.BatchExec = true
	memory := mem.NewMemory(1 << 16)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if s.batch {
		t.Fatal("ScanSched config has batching enabled; the scan oracle must stay per-warp")
	}
}

// batchTrapProg: uniform compute, then every lane jumps through a
// tid-dependent register — a divergent jalr, which is not batchable and
// must fall back per-warp and trap identically in both modes.
const batchTrapProg = `
	csrr t0, tid
	li   t1, 16
	li   t2, 0
loop:
	add  t2, t2, t0
	mul  t3, t2, t0
	addi t1, t1, -1
	bnez t1, loop
	slli t4, t0, 2
	la   t5, done
	add  t5, t5, t4
	jalr t5
done:
	ecall
`

// TestBatchTrapIdentity pins the mid-cohort trap contract: a warp whose
// next instruction is trap-capable (here a lane-divergent jalr) falls back
// to the per-warp path, and the resulting trap — cycle, core, warp, pc,
// reason — is byte-identical to the unbatched oracle under every policy.
func TestBatchTrapIdentity(t *testing.T) {
	run := func(pol SchedPolicy, batch bool) *Trap {
		cfg := DefaultConfig(2, 4, 4)
		cfg.Sched = pol
		cfg.BatchExec = batch
		p := asm.MustAssemble(batchTrapProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 16)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		if err := activateAll(cfg, 4, 0xF)(s); err != nil {
			t.Fatal(err)
		}
		err = s.Run()
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("sched=%s batch=%v: expected divergent-jalr trap, got %v", pol, batch, err)
		}
		return trap
	}
	for _, pol := range SchedPolicies() {
		oracle := run(pol, false)
		batched := run(pol, true)
		if *oracle != *batched {
			t.Errorf("sched=%s: trap differs:\noracle  %+v\nbatched %+v", pol, oracle, batched)
		}
	}
}

// batchEarlyExitProg: warp 0 leaves the cohort mid-stream through a
// warp-uniform branch and a jalr (both fallback ops) while its former
// mates keep computing; the run completes, so full snapshots — including
// the mates' stored results — must match the oracle.
const batchEarlyExitProg = `
	csrr s1, wid
	csrr t0, tid
	li   t1, 12
	li   t2, 0
loopA:
	add  t2, t2, t0
	mul  t3, t2, t0
	addi t1, t1, -1
	bnez t1, loopA
	bnez s1, rest
	la   t5, store
	jalr t5
rest:
	li   t1, 12
loopB:
	add  t2, t2, t3
	xor  t3, t3, t2
	addi t1, t1, -1
	bnez t1, loopB
store:
	slli s3, s1, 6
	csrr t6, tid
	slli t4, t6, 2
	add  s3, s3, t4
	li   s6, 0x8000
	add  s3, s3, s6
	sw   t2, 0(s3)
	ecall
`

// TestBatchMateEarlyExit pins that a warp leaving the cohort stream via
// fallback control flow does not corrupt the warps it was batched with.
func TestBatchMateEarlyExit(t *testing.T) {
	for _, pol := range SchedPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := DefaultConfig(1, 4, 4)
			cfg.Sched = pol
			activate := activateAll(cfg, 4, 0xF)
			oracle := batchOracle(t, cfg, batchEarlyExitProg, activate)
			cfg.BatchExec = true
			got := runSnapshot(t, cfg, batchEarlyExitProg, activate, 1)
			diffSnapshots(t, pol.String(), oracle, got)
		})
	}
}

// batchX0Prog: batchable ops with rd == x0 in a lockstep cohort. The
// batched kernels must discard the writes exactly like the per-warp path.
const batchX0Prog = `
	csrr t0, tid
	addi t1, t0, 5
	add  x0, t0, t1
	addi x0, t1, 9
	mul  x0, t0, t1
	lui  x0, 0x5
	auipc x0, 0
	fcvt.s.w f0, t0
	fcvt.w.s x0, f0
	feq.s x0, f0, f0
	add  t2, t0, t1
	csrr s1, wid
	slli s3, s1, 6
	slli t4, t0, 2
	add  s3, s3, t4
	li   s6, 0x8000
	add  s3, s3, s6
	sw   t2, 0(s3)
	ecall
`

// TestBatchRdX0 runs an x0-destination cohort and checks both snapshot
// identity and that x0 stayed architecturally zero in every lane.
func TestBatchRdX0(t *testing.T) {
	cfg := DefaultConfig(1, 4, 4)
	activate := activateAll(cfg, 4, 0xF)
	oracle := batchOracle(t, cfg, batchX0Prog, activate)
	cfg.BatchExec = true
	p := asm.MustAssemble(batchX0Prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	if err := activate(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := takeSnapshot(s, hier, cfg.Cores)
	got.memData, err = memory.ReadBytes(0x8000, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	diffSnapshots(t, "rd-x0", oracle, got)
	for w := 0; w < 4; w++ {
		for lane := 0; lane < 4; lane++ {
			v, err := s.Reg(0, w, lane, 0)
			if err != nil {
				t.Fatal(err)
			}
			if v != 0 {
				t.Errorf("warp %d lane %d: x0 = %#x after batched x0-destination ops", w, lane, v)
			}
		}
	}
}
