package sim

// Warp scheduling. Each core tracks its issuable warps in two structures:
//
//   - a ready set (simCore.ready, a warp bitmask): warps whose next
//     instruction may issue this cycle as far as the core knows — freshly
//     activated, just issued, just woken, or just released from a barrier;
//   - a wake-ordered min-heap (simCore.wakeHeap): warps known to be stalled,
//     keyed by the earliest cycle their stall can clear (the per-warp stall
//     cache's `wake`, or the LSU's busy-until cycle for structural stalls).
//
// Issue cycles first drain every heap entry whose wake time has arrived into
// the ready set, then let the configured Scheduler policy pick candidates
// from the ready set until one issues. A candidate that turns out stalled
// migrates ready -> heap in O(log Warps); warps the heap holds are never
// touched, so an issue cycle costs O(ready warps), not O(Warps) — the win
// over the legacy scan loop at high warp counts. The invariant maintained by
// this file and the transition hooks in exec.go/sim.go:
//
//     a warp is active && !barWait  <=>  it is in exactly one of
//     {ready set, wake heap}
//
// (barrier waiters and inactive warps are in neither; release/activation
// re-enters the ready set). Heap wake keys are lower bounds: a popped warp
// re-checks its stall and re-sleeps if the LSU deadline moved. Because a
// stalled warp's scoreboard wake time cannot change while it is stalled
// (pending completions are only written when the warp itself issues), the
// scoreboard keys are exact and a warp never wakes late.
//
// The legacy O(Warps) scan loop (sim.go issueScan) is retained behind
// Config.ScanSched as the differential-test oracle: for the rr and gto
// policies the two engines are byte-identical in every simulated observable
// (cycles, statistics, stall attribution, architectural state).

import (
	"math/bits"

	"repro/internal/isa"
)

// Scheduler is a warp-scheduling policy: it orders a core's ready warps for
// issue selection and absorbs issue feedback. Implementations are stateless
// singletons — per-core rotation state (rr, cur, grp) lives in simCore — so
// one Scheduler serves every core of a device and both engines of the
// parallel runner.
type Scheduler interface {
	// Name returns the policy's canonical name (SchedPolicy.String).
	Name() string
	// Pick returns the warp the core should try to issue next, chosen from
	// the non-empty candidate mask in the policy's priority order. The
	// engine re-Picks with the candidate removed when the warp turns out
	// stalled, so Pick sees exactly the policy's scan order.
	Pick(c *simCore, avail uint64) int
	// Issued informs the policy that wid issued this cycle, so it can
	// advance its per-core rotation state.
	Issued(c *simCore, wid int)
	// ScanStart anchors the circular stall-attribution fold run when no
	// warp can issue (see stallOutcome): the fold visits warps in ascending
	// wid order starting here, which for rr/gto reproduces the legacy
	// scan's visit order exactly.
	ScanStart(c *simCore) int
}

// newScheduler returns the singleton implementing p. Config.Validate has
// already rejected unknown policies.
func newScheduler(p SchedPolicy) Scheduler {
	switch p {
	case SchedGTO:
		return gtoSched{}
	case SchedOldestFirst:
		return oldestSched{}
	case SchedTwoLevel:
		return twoLevelSched{}
	}
	return rrSched{}
}

// circNext returns the lowest set bit of mask at or after start, wrapping
// to the lowest set bit overall when none — the circular scan order both
// legacy policies use. mask must be non-zero; start may equal the warp
// count (a fresh rr pointer past the last warp wraps naturally).
func circNext(mask uint64, start int) int {
	if hi := mask >> uint(start); hi != 0 {
		return start + bits.TrailingZeros64(hi)
	}
	return bits.TrailingZeros64(mask)
}

// rrSched rotates issue priority over warps each cycle: the scan starts
// one past the last issuer.
type rrSched struct{}

func (rrSched) Name() string                      { return SchedRoundRobin.String() }
func (rrSched) Pick(c *simCore, avail uint64) int { return circNext(avail, c.rr) }
func (rrSched) Issued(c *simCore, wid int) {
	c.rr = wid + 1
	if c.rr >= len(c.warps) {
		c.rr = 0
	}
}
func (rrSched) ScanStart(c *simCore) int { return c.rr }

// gtoSched is greedy-then-oldest: keep issuing the same warp until it
// stalls, then take the next ready warp in circular scan order from it.
type gtoSched struct{}

func (gtoSched) Name() string                      { return SchedGTO.String() }
func (gtoSched) Pick(c *simCore, avail uint64) int { return circNext(avail, c.cur) }
func (gtoSched) Issued(c *simCore, wid int)        { c.cur = wid }
func (gtoSched) ScanStart(c *simCore) int          { return c.cur }

// oldestSched issues the ready warp that has gone longest without issuing
// (smallest last-issue cycle; lowest wid breaks ties). Freshly activated
// warps carry last = 0 and therefore have top priority.
type oldestSched struct{}

func (oldestSched) Name() string { return SchedOldestFirst.String() }
func (oldestSched) Pick(c *simCore, avail uint64) int {
	best, bestLast := -1, uint64(0)
	for m := avail; m != 0; m &= m - 1 {
		wid := bits.TrailingZeros64(m)
		if last := c.warps[wid].last; best < 0 || last < bestLast {
			best, bestLast = wid, last
		}
	}
	return best
}
func (oldestSched) Issued(c *simCore, wid int) {}
func (oldestSched) ScanStart(c *simCore) int   { return 0 }

// fetchGroup is the two-level scheduler's group width (Narasiman et al.:
// small groups stagger the groups' long-latency misses in time).
const fetchGroup = 8

// fetchGroupMask covers one fetch group's warps before shifting to the
// group's base wid.
const fetchGroupMask = uint64(1)<<fetchGroup - 1

// twoLevelSched round-robins within the active fetch group and moves to
// the next group (in circular group order) only when no warp of the active
// group is a candidate.
type twoLevelSched struct{}

func (twoLevelSched) Name() string { return SchedTwoLevel.String() }
func (twoLevelSched) Pick(c *simCore, avail uint64) int {
	n := len(c.warps)
	ng := (n + fetchGroup - 1) / fetchGroup
	g := c.grp
	if g >= ng {
		g = 0
	}
	for k := 0; k < ng; k++ {
		gi := g + k
		if gi >= ng {
			gi -= ng
		}
		lo := gi * fetchGroup
		gm := avail & (fetchGroupMask << uint(lo))
		if gm == 0 {
			continue
		}
		if k == 0 && c.rr >= lo && c.rr < lo+fetchGroup {
			// Active group: round-robin within it.
			return circNext(gm, c.rr)
		}
		return bits.TrailingZeros64(gm)
	}
	return bits.TrailingZeros64(avail) // unreachable: avail is non-empty
}
func (twoLevelSched) Issued(c *simCore, wid int) {
	c.grp = wid / fetchGroup
	c.rr = wid + 1
	if c.rr >= len(c.warps) {
		c.rr = 0
	}
}
func (twoLevelSched) ScanStart(c *simCore) int {
	if lo := c.grp * fetchGroup; lo < len(c.warps) {
		return lo
	}
	return 0
}

// wakeEntry is one stalled warp in a core's wake heap.
type wakeEntry struct {
	at  uint64 // earliest cycle the stall can clear
	wid int32
}

func wakeBefore(a, b wakeEntry) bool {
	return a.at < b.at || (a.at == b.at && a.wid < b.wid)
}

// sleepWarp moves wid from the ready set into the wake heap, keyed at the
// earliest cycle its stall can clear.
func (c *simCore) sleepWarp(wid int, at uint64) {
	c.ready &^= 1 << uint(wid)
	h := append(c.wakeHeap, wakeEntry{at: at, wid: int32(wid)})
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !wakeBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	c.wakeHeap = h
}

// wakeWarps pops every heap entry whose wake time has arrived into the
// ready set. Pop order within a cycle is irrelevant — the ready set is a
// mask — but the (at, wid) heap order keeps the structure deterministic.
func (c *simCore) wakeWarps(cycle uint64) {
	for len(c.wakeHeap) > 0 && c.wakeHeap[0].at <= cycle {
		c.ready |= 1 << uint(c.wakeHeap[0].wid)
		h := c.wakeHeap
		last := len(h) - 1
		h[0] = h[last]
		c.wakeHeap = h[:last]
		c.siftDown(0)
	}
}

func (c *simCore) siftDown(i int) {
	h := c.wakeHeap
	for {
		small := i
		if l := 2*i + 1; l < len(h) && wakeBefore(h[l], h[small]) {
			small = l
		}
		if r := 2*i + 2; r < len(h) && wakeBefore(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// resetSched rewinds a core's scheduler state (ready set, wake heap,
// rotation pointers) to the freshly constructed state.
func (c *simCore) resetSched() {
	c.ready = 0
	c.wakeHeap = c.wakeHeap[:0]
	c.rr = 0
	c.cur = 0
	c.grp = 0
}

// issueHeap attempts to issue one instruction on core c at the current
// cycle using the ready-set/wake-heap engine. It returns whether an
// instruction issued and, if not, the earliest cycle the core might become
// ready — byte-identical in every simulated observable to the legacy scan
// loop (issueScan) for the policies both implement.
//
// Under Config.BatchExec the picked warp's instruction, when batchable,
// is executed once for the whole lockstep cohort (collectCohort +
// batchExec, exec_batch.go); cohort mates are marked and merely replay
// their issue bookkeeping (finishBatched) when their own slot arrives, so
// timing, statistics and the observer stream are untouched. Under
// Config.BatchMem the same cohort machinery covers loads and stores: the
// leader executes normally and affinely congruent mates replay through the
// core's address template (tryBatchMem / finishBatchedMem) — functional
// access, coalescing, hierarchy timing and MSHR allocation all at the
// mate's true issue cycle, behind the same structural LSU gate.
func (s *Sim) issueHeap(c *simCore) (bool, uint64, error) {
	c.wakeWarps(s.cycle)
	pol := s.sched
	avail := c.ready
	for avail != 0 {
		wid := pol.Pick(c, avail)
		w := &c.warps[wid]
		bit := uint64(1) << uint(wid)
		if w.batched && w.batchPC == w.pc {
			// Cohort mate whose pre-executed slot has arrived: replay the
			// per-warp issue bookkeeping at the true issue cycle. The fetch
			// and scoreboard checks are provably redundant here — the pc was
			// validated when the cohort leader fetched it, and the warp's
			// pending completions cannot have changed since the leader
			// verified them (they are only written at the warp's own issue,
			// which is this one).
			if w.batchDst != batchDstMem {
				s.finishBatched(c, wid, w)
				w.wakeValid = false
				w.last = s.cycle
				pol.Issued(c, wid)
				return true, 0, nil
			}
			// Memory cohort mate: the structural LSU/MSHR gate still applies
			// at the mate's own slot, exactly as on the per-warp path, with
			// the oracle's stall-cache write so the wake key and cache state
			// match byte for byte.
			if at := s.lsuReadyAt(c); at > s.cycle {
				w.wakeValid, w.wakePC, w.wake, w.wakeMem = true, w.pc, 0, true
				avail &^= bit
				c.sleepWarp(wid, at)
				continue
			}
			if s.finishBatchedMem(c, wid, w) {
				w.wakeValid = false
				w.last = s.cycle
				pol.Issued(c, wid)
				return true, 0, nil
			}
			// The core's template was overwritten by a later cohort before
			// this mate's slot arrived (stale generation): fall through to
			// plain per-warp execution.
			w.batched = false
		}
		var in isa.Inst
		var m instMeta
		if w.wakeValid && w.wakePC == w.pc {
			// Stall cache hit: reuse the cached scoreboard outcome — same
			// fast path as the scan engine, minus the rescan that computed
			// it there.
			if w.wake > s.cycle {
				// Defensive: a ready-set warp with a future wake re-sleeps
				// (cannot occur while the invariant holds).
				avail &^= bit
				c.sleepWarp(wid, w.wake)
				continue
			}
			if w.wakeMem {
				if at := s.lsuReadyAt(c); at > s.cycle {
					// Structural LSU/MSHR stall. The heap key is the current
					// ready-at lower bound; it only moves forward, so a woken
					// warp re-checks and re-sleeps if it moved.
					avail &^= bit
					c.sleepWarp(wid, at)
					continue
				}
			}
			idx := (w.pc - s.progBase) / 4
			in = s.prog[idx]
			m = s.meta[idx]
		} else {
			if w.pc < s.progBase || w.pc-s.progBase >= uint32(len(s.prog))*4 || w.pc%4 != 0 {
				return false, 0, &Trap{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Reason: "instruction fetch outside program"}
			}
			idx := (w.pc - s.progBase) / 4
			in = s.prog[idx]
			if in.Op == isa.OpInvalid {
				return false, 0, &Trap{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Reason: "executed data word / invalid instruction"}
			}
			m = s.meta[idx]
			if ready := regsReadyAt(w, in, m); ready > s.cycle {
				w.wakeValid, w.wakePC, w.wake, w.wakeMem = true, w.pc, ready, m&mIsMem != 0
				avail &^= bit
				c.sleepWarp(wid, ready)
				continue
			}
			if m&mIsMem != 0 {
				if at := s.lsuReadyAt(c); at > s.cycle {
					w.wakeValid, w.wakePC, w.wake, w.wakeMem = true, w.pc, 0, true
					avail &^= bit
					c.sleepWarp(wid, at)
					continue
				}
			}
		}
		switch {
		case s.batch && m&mBatch != 0:
			if span := s.collectCohort(c, wid, w, in, m); span != nil {
				batchExec(span, in)
				dst, lat := batchWriteback(in, s.cfg.Lat)
				w.batchDst, w.batchRd, w.batchLat = dst, in.Rd, lat
				for _, mw := range span[1:] {
					mw.batched, mw.batchPC = true, w.pc
					mw.batchDst, mw.batchRd, mw.batchLat = dst, in.Rd, lat
				}
				s.finishBatched(c, wid, w)
				break
			}
			fallthrough
		default:
			w.batched = false // defensive: a stale mark must never suppress execution
			if s.batchMem && m&mIsMem != 0 {
				issued, err := s.tryBatchMem(c, wid, w, in, m)
				if err != nil {
					return false, 0, err
				}
				if issued {
					break
				}
			}
			if err := s.execute(c, wid, w, in); err != nil {
				return false, 0, err
			}
		}
		w.wakeValid = false
		w.last = s.cycle
		pol.Issued(c, wid)
		return true, 0, nil
	}
	return false, s.stallOutcome(c), nil
}

// collectCohort gathers the lockstep cohort led by the picked warp wid:
// every other ready warp of the core at the same pc with an identical
// thread mask, no scoreboard hazard on the (shared, pre-decoded)
// instruction, and not itself carrying an unconsumed pre-execution. The
// scan walks the ready bitmask only, so grouping costs O(ready warps).
// Returns nil when the leader has no mates — the caller falls back to the
// per-warp path. The returned span (leader first) aliases the core's
// preallocated cohort scratch.
func (s *Sim) collectCohort(c *simCore, wid int, w *warp, in isa.Inst, m instMeta) []*warp {
	span := c.cohort[:0]
	span = append(span, w)
	// The instruction (and so its operand indices and meta bits) is shared
	// by the whole cohort: hoist them and inline the scoreboard check as
	// early-exit compares against the current cycle — cheaper than the
	// general regsReadyAt max fold per candidate, and the meta-bit branches
	// are loop-invariant so they predict perfectly.
	pc, tm, cyc := w.pc, w.tmask, s.cycle
	rs1, rs2, rs3, rd := in.Rs1, in.Rs2, in.Rs3, in.Rd
	for rm := c.ready &^ (1 << uint(wid)); rm != 0; rm &= rm - 1 {
		mw := &c.warps[bits.TrailingZeros64(rm)]
		if mw.pc != pc || mw.tmask != tm || mw.batched {
			continue
		}
		if m&mReadsI1 != 0 && mw.pendI[rs1] > cyc {
			continue
		}
		if m&mReadsI2 != 0 && mw.pendI[rs2] > cyc {
			continue
		}
		if m&mReadsF1 != 0 && mw.pendF[rs1] > cyc {
			continue
		}
		if m&mReadsF2 != 0 && mw.pendF[rs2] > cyc {
			continue
		}
		if m&mReadsF3 != 0 && mw.pendF[rs3] > cyc {
			continue
		}
		if m&mWritesI != 0 && mw.pendI[rd] > cyc {
			continue
		}
		if m&mWritesF != 0 && mw.pendF[rd] > cyc {
			continue
		}
		span = append(span, mw)
	}
	if len(span) < 2 {
		return nil
	}
	return span
}

// stallOutcome computes a failed issue attempt's result — the earliest wake
// cycle and the core's dominant stall attribution (c.blockMem) — from the
// per-warp stall caches. Every active non-barrier warp is heap-resident
// with a valid cache at this point, and the fold visits them in a circular
// scan from the policy's priority origin, reproducing the legacy scan's
// accumulation (and therefore its MemStall/ExecStall split) byte-exactly
// for rr and gto. noWake comes back when only barrier waiters remain (no
// timed event exists).
func (s *Sim) stallOutcome(c *simCore) uint64 {
	n := len(c.warps)
	start := s.sched.ScanStart(c)
	wake := noWake
	blockMem := false
	maxFU := s.maxFU
	for k := 0; k < n; k++ {
		wid := start + k
		if wid >= n {
			wid -= n
		}
		w := &c.warps[wid]
		if !w.active || w.barWait {
			continue
		}
		if ready := w.wake; ready > s.cycle {
			if ready < wake {
				wake = ready
				blockMem = w.wakeMem || ready > s.cycle+maxFU
			} else if ready > s.cycle+maxFU {
				blockMem = true
			}
			continue
		}
		if w.wakeMem {
			if at := s.lsuReadyAt(c); at > s.cycle && at < wake {
				wake = at
				blockMem = true
			}
		}
	}
	if wake == noWake {
		c.blockMem = false
		return noWake
	}
	c.blockMem = blockMem
	if wake <= s.cycle {
		wake = s.cycle + 1
	}
	return wake
}
