package sim_test

// Kernel-level half of the scheduler differential harness: registry
// kernels, run end-to-end through the OpenCL-style runtime, across the
// sched x engine matrix. For the rr and gto policies the
// ready-set/wake-heap engine must produce byte-identical launch reports
// and memory-system state to the legacy scan oracle (Config.ScanSched), on
// both the sequential and the parallel engine; the heap-only policies
// (oldest, 2lev) are pinned sequential-vs-parallel. The CI race-detector
// step runs this file, so the heap transitions are also race-checked under
// the parallel engine on every policy.
//
// internal/sim/sched_test.go pins the same property at the bare-simulator
// level (including the stall-attribution fold); internal/sweep pins it at
// sweep-record level.

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

func runSchedKernel(t *testing.T, name string, sched sim.SchedPolicy, scan bool, workers int) kernelRun {
	t.Helper()
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.Sched = sched
	cfg.ScanSched = scan
	cfg.Workers = workers
	cfg.CommitWorkers = workers
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("%s scan=%v", sched, scan))
}

// schedMatrixKernels get the full policy set; every other registry kernel
// runs the oracle-critical rr/gto cells only, keeping the harness
// exhaustive on kernels where it matters most and fast everywhere.
var schedMatrixKernels = map[string]bool{"vecadd": true, "relu": true, "saxpy": true}

func TestSchedulerKernelMatrix(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, sched := range sim.SchedPolicies() {
				hasOracle := sched == sim.SchedRoundRobin || sched == sim.SchedGTO
				if !hasOracle && !schedMatrixKernels[name] {
					continue
				}
				if testing.Short() && sched != sim.SchedRoundRobin && !schedMatrixKernels[name] {
					continue
				}
				label := fmt.Sprintf("%s/%s", name, sched)
				seq := runSchedKernel(t, name, sched, false, 1)
				par := runSchedKernel(t, name, sched, false, 4)
				diffKernelRuns(t, label+"/seq-vs-par", seq, par)
				if hasOracle {
					oracle := runSchedKernel(t, name, sched, true, 1)
					diffKernelRuns(t, label+"/heap-vs-scan", oracle, seq)
					oraclePar := runSchedKernel(t, name, sched, true, 4)
					diffKernelRuns(t, label+"/scan-seq-vs-scan-par", oracle, oraclePar)
				}
			}
		})
	}
}
