package sim_test

// Kernel-level half of the engine differential harness: registry kernels,
// run end-to-end through the OpenCL-style runtime, across the engine x
// workers matrix. The event-driven device engine (the default) must produce
// byte-identical launch reports — including the MemStall/ExecStall/
// IdleAfterEnd attribution — and memory-system state to the legacy tick
// loop retained behind Config.TickEngine, on both the sequential and the
// parallel runner. The CI race-detector step runs this file, so the
// per-worker wake queues and defer lists are also race-checked on every
// kernel.
//
// internal/sim/event_test.go pins the same property at the bare-simulator
// level (including deadlocks, the deadline and the observer stream);
// internal/sweep pins it at sweep-record level.

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

func runEngineKernel(t *testing.T, name string, tick bool, workers int) kernelRun {
	t.Helper()
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.TickEngine = tick
	cfg.Workers = workers
	cfg.CommitWorkers = workers
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("tick=%v workers=%d", tick, workers))
}

// engineMatrixKernels get the full tick x workers matrix; every other
// registry kernel runs the oracle-critical tick-seq vs event-seq/par cells
// only, keeping the harness exhaustive on kernels at bounded cost.
var engineMatrixKernels = map[string]bool{"vecadd": true, "relu": true, "saxpy": true}

func TestEventEngineKernelMatrix(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !engineMatrixKernels[name] {
				t.Skip("short mode: engine matrix runs the cheap kernels only")
			}
			oracle := runEngineKernel(t, name, true, 1)
			eventSeq := runEngineKernel(t, name, false, 1)
			eventPar := runEngineKernel(t, name, false, 4)
			diffKernelRuns(t, name+"/tick-seq-vs-event-seq", oracle, eventSeq)
			diffKernelRuns(t, name+"/tick-seq-vs-event-par", oracle, eventPar)
			if engineMatrixKernels[name] {
				tickPar := runEngineKernel(t, name, true, 4)
				diffKernelRuns(t, name+"/tick-seq-vs-tick-par", oracle, tickPar)
			}
		})
	}
}
