package sim_test

// Kernel-level half of the sharded-commit determinism harness: every
// registry kernel, run end-to-end through the OpenCL-style runtime on a
// multi-core device, must produce byte-identical launch reports and
// memory-system state when the commit phase is sharded per L2 bank and
// DRAM channel (CommitWorkers > 1) as when it runs the sequential engine —
// across a {1,2,4,8} bank x {1,2,4} channel matrix. The CI race-detector
// step runs this file, so the bank/channel workers are also checked for
// data races on every configuration.
//
// internal/sim/parallel_test.go pins the same property at the
// bare-simulator level (including the L2-disabled bypass);
// internal/mem/commit_test.go pins the underlying decomposition at the
// memory-system level.

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
)

// matrixCell is one memory-geometry point of the differential matrix.
type matrixCell struct{ banks, channels int }

func fullMatrix() []matrixCell {
	var cells []matrixCell
	for _, b := range []int{1, 2, 4, 8} {
		for _, ch := range []int{1, 2, 4} {
			cells = append(cells, matrixCell{b, ch})
		}
	}
	return cells
}

// diagMatrix is the reduced matrix used for the expensive kernels (and for
// every kernel under -short): the corners plus the mixed midpoint.
func diagMatrix() []matrixCell {
	return []matrixCell{{1, 1}, {4, 2}, {8, 4}}
}

// kernelRun is everything a launch sequence exposes, plus the final
// memory-system state down to individual banks and channels.
type kernelRun struct {
	launches []*ocl.LaunchResult
	banks    []mem.CacheStats
	channels []mem.DRAMStats
}

func runMatrixKernel(t *testing.T, name string, cell matrixCell, workers, commitWorkers int) kernelRun {
	t.Helper()
	cfg := sim.DefaultConfig(4, 4, 8)
	cfg.Mem.L2Banks = cell.banks
	cfg.Mem.DRAM.Channels = cell.channels
	cfg.Workers = workers
	cfg.CommitWorkers = commitWorkers
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("%+v workers=%d commit=%d", cell, workers, commitWorkers))
}

// runMatrixKernelCfg runs one registry kernel end-to-end on an explicit
// configuration — the shared body of the bank x channel and sched x engine
// matrices.
func runMatrixKernelCfg(t *testing.T, name string, cfg sim.Config, label string) kernelRun {
	t.Helper()
	spec, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ocl.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Build(d, kernels.Params{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunVerified(d, 0)
	if err != nil {
		t.Fatalf("%s %s: %v", name, label, err)
	}
	h := d.Sim().Hierarchy()
	run := kernelRun{launches: res.Launches}
	for b := 0; b < h.L2Banks(); b++ {
		run.banks = append(run.banks, h.L2BankStats(b))
	}
	for ch := 0; ch < h.DRAMChannels(); ch++ {
		run.channels = append(run.channels, h.DRAMChannelStats(ch))
	}
	return run
}

func diffKernelRuns(t *testing.T, name string, seq, par kernelRun) {
	t.Helper()
	if len(seq.launches) != len(par.launches) {
		t.Fatalf("%s: launch count differs: %d vs %d", name, len(seq.launches), len(par.launches))
	}
	for i := range seq.launches {
		a, b := seq.launches[i], par.launches[i]
		if a.SimCycles != b.SimCycles {
			t.Errorf("%s launch %d: cycles %d vs %d", name, i, a.SimCycles, b.SimCycles)
		}
		if a.Stats != b.Stats {
			t.Errorf("%s launch %d: core stats differ:\nseq %+v\npar %+v", name, i, a.Stats, b.Stats)
		}
		if a.L1 != b.L1 {
			t.Errorf("%s launch %d: L1 stats differ:\nseq %+v\npar %+v", name, i, a.L1, b.L1)
		}
		if a.L2 != b.L2 {
			t.Errorf("%s launch %d: L2 stats differ:\nseq %+v\npar %+v", name, i, a.L2, b.L2)
		}
		if a.DRAM != b.DRAM {
			t.Errorf("%s launch %d: DRAM stats differ:\nseq %+v\npar %+v", name, i, a.DRAM, b.DRAM)
		}
	}
	for b := range seq.banks {
		if seq.banks[b] != par.banks[b] {
			t.Errorf("%s: L2 bank %d stats differ:\nseq %+v\npar %+v", name, b, seq.banks[b], par.banks[b])
		}
	}
	for ch := range seq.channels {
		if seq.channels[ch] != par.channels[ch] {
			t.Errorf("%s: DRAM channel %d stats differ:\nseq %+v\npar %+v", name, ch, seq.channels[ch], par.channels[ch])
		}
	}
}

// cheapMatrixKernels get the full 12-cell matrix; every other registry
// kernel runs the diagonal, keeping the harness exhaustive on geometry
// where runs are fast and exhaustive on kernels everywhere.
var cheapMatrixKernels = map[string]bool{"vecadd": true, "relu": true, "saxpy": true}

func TestParallelShardedCommitKernelMatrix(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cells := diagMatrix()
			if cheapMatrixKernels[name] && !testing.Short() {
				cells = fullMatrix()
			}
			for _, cell := range cells {
				label := fmt.Sprintf("%s/banks=%d/channels=%d", name, cell.banks, cell.channels)
				seq := runMatrixKernel(t, name, cell, 1, 1)
				par := runMatrixKernel(t, name, cell, 4, 4)
				diffKernelRuns(t, label, seq, par)
			}
		})
	}
}
