package sim

import "repro/internal/isa"

// EnergyModel holds per-event energy costs in picojoules. The defaults are
// order-of-magnitude figures for a small in-order RISC-V lane in a mature
// planar node (derived from the usual architecture-textbook breakdowns);
// they are meant for relative comparisons between mappings, not absolute
// power claims.
type EnergyModel struct {
	IssueBase float64 // fetch/decode/schedule cost per instruction issue
	LaneALU   float64 // per active lane, simple integer op
	LaneMul   float64 // per active lane, integer multiply
	LaneDiv   float64 // per active lane, integer divide
	LaneFPU   float64 // per active lane, FP add/mul/compare/convert
	LaneFMA   float64 // per active lane, fused multiply-add
	LaneFDiv  float64 // per active lane, FP divide/sqrt
	L1Access  float64 // per cache-line request reaching the L1
	L2Access  float64 // per request reaching the L2
	DRAMLine  float64 // per line transferred to/from DRAM
	IdleCycle float64 // static/leakage per core-cycle with active warps
}

// DefaultEnergyModel returns the default cost table (picojoules).
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		IssueBase: 6,
		LaneALU:   0.6,
		LaneMul:   2.5,
		LaneDiv:   8,
		LaneFPU:   3,
		LaneFMA:   5,
		LaneFDiv:  12,
		L1Access:  12,
		L2Access:  40,
		DRAMLine:  1200,
		IdleCycle: 1.5,
	}
}

// EnergyBreakdown accumulates consumed energy in picojoules per component.
type EnergyBreakdown struct {
	Issue  float64
	Lanes  float64
	L1     float64
	L2     float64
	DRAM   float64
	Static float64
}

// Total returns the summed energy in picojoules.
func (e EnergyBreakdown) Total() float64 {
	return e.Issue + e.Lanes + e.L1 + e.L2 + e.DRAM + e.Static
}

// laneEnergyClass maps an op to its per-lane cost under m.
func (m EnergyModel) laneEnergy(op isa.Op) float64 {
	switch {
	case op >= isa.MUL && op <= isa.MULHU:
		return m.LaneMul
	case op >= isa.DIV && op <= isa.REMU:
		return m.LaneDiv
	case op == isa.FMADDS || op == isa.FMSUBS || op == isa.FNMSUBS || op == isa.FNMADDS:
		return m.LaneFMA
	case op == isa.FDIVS || op == isa.FSQRTS:
		return m.LaneFDiv
	case op >= isa.FADDS && op <= isa.FNMADDS || op == isa.FLW || op == isa.FSW:
		return m.LaneFPU
	}
	return m.LaneALU
}

// EstimateEnergy computes the energy of an execution interval from the
// simulator's counters and memory statistics. The sim does not accumulate
// energy online; callers snapshot CoreStats/cache stats around a launch
// (as ocl.LaunchResult does) and evaluate the model on the deltas.
//
// opMix optionally refines the per-lane cost: it maps op classes observed
// by a trace collector to lane-op counts. When nil, every lane-op is
// charged the mean of ALU and FPU costs (a reasonable mix for the
// benchmark kernels).
func (m EnergyModel) EstimateEnergy(stats CoreStats, l1Accesses, l2Accesses, dramLines uint64, coreCycles uint64, opMix map[isa.Op]uint64) EnergyBreakdown {
	var e EnergyBreakdown
	e.Issue = float64(stats.Issued) * m.IssueBase
	if opMix != nil {
		var counted uint64
		for op, lanes := range opMix {
			e.Lanes += float64(lanes) * m.laneEnergy(op)
			counted += lanes
		}
		if counted < stats.LaneOps {
			e.Lanes += float64(stats.LaneOps-counted) * m.LaneALU
		}
	} else {
		e.Lanes = float64(stats.LaneOps) * (m.LaneALU + m.LaneFPU) / 2
	}
	e.L1 = float64(l1Accesses) * m.L1Access
	e.L2 = float64(l2Accesses) * m.L2Access
	e.DRAM = float64(dramLines) * m.DRAMLine
	e.Static = float64(coreCycles) * m.IdleCycle
	return e
}
