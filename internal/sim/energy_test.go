package sim

import (
	"testing"

	"repro/internal/isa"
)

func TestEnergyModelClasses(t *testing.T) {
	m := DefaultEnergyModel()
	if m.laneEnergy(isa.ADD) != m.LaneALU {
		t.Error("add should cost LaneALU")
	}
	if m.laneEnergy(isa.MUL) != m.LaneMul {
		t.Error("mul should cost LaneMul")
	}
	if m.laneEnergy(isa.DIVU) != m.LaneDiv {
		t.Error("divu should cost LaneDiv")
	}
	if m.laneEnergy(isa.FMADDS) != m.LaneFMA {
		t.Error("fmadd should cost LaneFMA")
	}
	if m.laneEnergy(isa.FSQRTS) != m.LaneFDiv {
		t.Error("fsqrt should cost LaneFDiv")
	}
	if m.laneEnergy(isa.FADDS) != m.LaneFPU {
		t.Error("fadd should cost LaneFPU")
	}
	if m.laneEnergy(isa.LW) != m.LaneALU {
		t.Error("lw address math should cost LaneALU")
	}
}

func TestEstimateEnergyAccumulates(t *testing.T) {
	m := DefaultEnergyModel()
	stats := CoreStats{Issued: 100, LaneOps: 800}
	e := m.EstimateEnergy(stats, 50, 10, 5, 1000, nil)
	if e.Issue != 100*m.IssueBase {
		t.Errorf("issue = %v", e.Issue)
	}
	if e.Lanes != 800*(m.LaneALU+m.LaneFPU)/2 {
		t.Errorf("lanes = %v", e.Lanes)
	}
	if e.L1 != 50*m.L1Access || e.L2 != 10*m.L2Access || e.DRAM != 5*m.DRAMLine {
		t.Errorf("memory = %v %v %v", e.L1, e.L2, e.DRAM)
	}
	if e.Static != 1000*m.IdleCycle {
		t.Errorf("static = %v", e.Static)
	}
	want := e.Issue + e.Lanes + e.L1 + e.L2 + e.DRAM + e.Static
	if e.Total() != want {
		t.Errorf("total = %v, want %v", e.Total(), want)
	}
}

func TestEstimateEnergyWithOpMix(t *testing.T) {
	m := DefaultEnergyModel()
	stats := CoreStats{Issued: 10, LaneOps: 100}
	mix := map[isa.Op]uint64{isa.FMADDS: 60, isa.ADD: 20}
	e := m.EstimateEnergy(stats, 0, 0, 0, 0, mix)
	// 60 FMA + 20 ALU counted, 20 residual lane-ops charged as ALU.
	want := 60*m.LaneFMA + 20*m.LaneALU + 20*m.LaneALU
	if e.Lanes != want {
		t.Errorf("lanes = %v, want %v", e.Lanes, want)
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	m := DefaultEnergyModel()
	small := m.EstimateEnergy(CoreStats{Issued: 10, LaneOps: 10}, 1, 1, 1, 10, nil)
	big := m.EstimateEnergy(CoreStats{Issued: 100, LaneOps: 100}, 10, 10, 10, 100, nil)
	if big.Total() != 10*small.Total() {
		t.Errorf("energy not linear: %v vs %v", big.Total(), small.Total())
	}
}
