package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// IssueEvent describes one instruction issue, delivered to the observer.
type IssueEvent struct {
	Cycle uint64
	Core  int
	Warp  int
	PC    uint32
	Mask  uint64
	Inst  isa.Inst
}

// Trap is a fatal execution error (bad memory access, divergent branch,
// malformed instruction, deadlock) annotated with its location.
type Trap struct {
	Cycle  uint64
	Core   int
	Warp   int
	PC     uint32
	Reason string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("sim: trap at cycle %d core %d warp %d pc %#x: %s", t.Cycle, t.Core, t.Warp, t.PC, t.Reason)
}

// ipdomEntry is one IPDOM divergence-stack slot. A divergence entry holds
// the else-path lanes and their resume pc; a reconvergence entry restores
// the pre-split mask at the join point.
type ipdomEntry struct {
	mask   uint64
	pc     uint32
	reconv bool
}

const maxIPDOMDepth = 64
const maxBarriers = 16

type warp struct {
	active  bool
	barWait bool
	pc      uint32
	tmask   uint64
	regs    []uint32 // threads x 32 integer registers, lane-major
	fregs   []uint32 // threads x 32 float registers (IEEE-754 bits)
	pendI   [32]uint64
	pendF   [32]uint64
	ipdom   []ipdomEntry
	last    uint64 // last issue cycle (GTO tiebreak)

	// Ready-warp scoreboard cache: while a warp is stalled its pending
	// register completions cannot change (they are only written when the
	// warp itself issues), so the scheduler caches the outcome of the
	// fetch/decode/scoreboard walk and skips it on every rescan until the
	// warp issues again. wakeValid is cleared at issue and on warp reset.
	wakeValid bool
	wakeMem   bool   // decoded instruction is a memory op (LSU hazard applies)
	wakePC    uint32 // pc the cache was computed for (safety cross-check)
	wake      uint64 // earliest cycle the registers are ready

	// Batched-execution state (exec_batch.go): the instruction at batchPC
	// was already executed functionally as part of a uniform-warp cohort;
	// when the scheduler picks this warp at that pc, finishBatched replays
	// the per-warp issue bookkeeping instead of re-executing. batchDst and
	// batchLat carry the instruction's writeback class and latency,
	// computed once per cohort so the replay skips the opcode switches.
	// Cleared at issue and on warp reset.
	batched  bool
	batchDst uint8 // batchDstNone/Int/FP/Mem: which replay path finishes the issue
	batchRd  uint8 // destination register of the pre-executed instruction
	batchPC  uint32
	batchLat uint32 // completion latency added to the replay's issue cycle

	// Batched-memory replay state (batchDst == batchDstMem): the mate's
	// lane addresses are the core's memory template shifted by
	// batchMemDelta; batchGen must match the template's generation or the
	// template was overwritten by a later cohort and the mate re-executes
	// normally. Only meaningful while batched is set.
	batchGen      uint64
	batchMemDelta uint32
}

// Writeback classes for warp.batchDst.
const (
	batchDstNone = uint8(iota) // no register write (rd == x0)
	batchDstInt                // pendI[rd]
	batchDstFP                 // pendF[rd]
	batchDstMem                // memory replay through the core's memTemplate
)

type barrier struct {
	arrived int
	waiters uint64
}

// CoreStats counts per-core pipeline events.
type CoreStats struct {
	Issued       uint64 // instructions issued
	LaneOps      uint64 // instruction issues x active lanes
	Loads        uint64
	Stores       uint64
	LineRequests uint64 // coalesced memory line requests
	MemStall     uint64 // cycles with active warps blocked only by memory
	ExecStall    uint64 // cycles with active warps blocked by FU latency
	IdleAfterEnd uint64 // cycles after the core's last warp retired
}

// memDefer holds the shared-memory half of a core's in-flight memory
// instruction under the parallel engine: the L1 part runs in the concurrent
// phase, while the queued misses are committed to the banked L2/DRAM in
// deterministic (cycle, core) order at the end of the cycle, patching the
// load's destination scoreboard entry with the completion time.
type memDefer struct {
	active      bool
	isLoad      bool
	fp          bool // FLW: completion lands in the float scoreboard
	wid         int
	rd          int
	nMiss       int
	partialDone uint64 // max completion over the L1 hits
	miss        [64]mem.MissInfo
	// missDone[i] is miss[i]'s completion cycle, written during the commit
	// phase by the bank worker (L2 hit) or channel worker (DRAM fetch) that
	// owns the miss — exactly one writer per slot — and folded into the
	// load's scoreboard entry by the coordinator's patch step.
	missDone [64]uint64
}

// memTemplate captures a memory cohort leader's decoded operation, lane
// address vector and coalesced line list at cohort formation, so congruent
// mates replay through fused kernels (exec_batch.go) without re-decoding,
// re-validating or re-coalescing. One template per core suffices: the LSU
// admits one memory instruction per core per cycle, and gen — bumped per
// cohort — invalidates marks left over when a later cohort overwrites the
// template before every mate of the earlier one drained (such mates fall
// back to normal execution).
type memTemplate struct {
	gen     uint64
	op      isa.Op
	rd      uint8
	rs2     uint8
	size    uint32
	isStore bool
	fp      bool // FLW/FSW: the float register file holds the data
	// unit marks the contiguous bulk-copy fast path: full thread mask,
	// 32-bit access, lane addresses base + 4*lane — one bounds check and
	// one tight copy loop instead of per-lane accesses.
	unit bool
	base uint32 // lane-0 address when unit

	minA, maxA uint32 // extremes of the leader's active-lane addresses
	nLines     int
	addrs      [64]uint32 // leader lane addresses (copied: addrBuf is reused)
	lines      [64]uint32 // leader line list (copied: lineBuf is reused)
}

type simCore struct {
	id    int
	warps []warp

	// Scheduler state (see sched.go): the ready set and wake heap hold
	// every active non-barrier warp between them; rr/cur/grp are the
	// policies' per-core rotation pointers.
	ready    uint64
	wakeHeap []wakeEntry
	rr       int
	cur      int // GTO: warp currently owning issue priority
	grp      int // two-level: active fetch group

	lsuFree uint64
	// mshr holds the completion cycles of the core's outstanding L1 misses
	// when Config.Mem.L1.MSHRs bounds them (nil when unbounded, the
	// oracle). An entry is live while its cycle lies in the future; retired
	// entries are purged lazily by mshrFreeAt during issue. Core-local like
	// lsuFree, so the parallel engine needs no coordination: the sequential
	// path appends at execute, the parallel path at commit, and the gate is
	// only consulted at the core's next issue — after both.
	mshr     []uint64
	nextWake uint64
	active   int // number of active (incl. barrier-waiting) warps
	barriers [maxBarriers]barrier
	blockMem bool // dominant stall reason of the last failed scan
	// stallFrom is the first cycle of the core's pending stall span under
	// the event engine: stall cycles accrue lazily while the core sleeps in
	// a device event queue and are settled in bulk by flushStall (event.go).
	// noWake means no span is pending (the core issued last cycle).
	stallFrom uint64
	stats     CoreStats

	// Per-core scratch for the coalescing path and the batched-execution
	// cohort span, preallocated so the issue path never allocates and cores
	// can execute concurrently.
	addrBuf [64]uint32
	lineBuf []uint32
	cohort  []*warp
	md      memDefer
	memT    memTemplate
}

// Sim is one device instance. Memory and the cache hierarchy are injected
// so their contents persist across kernel launches. The cycle counter is
// monotonic across launches; callers measure launches as cycle deltas.
type Sim struct {
	cfg      Config
	memory   *mem.Memory
	hier     *mem.Hierarchy
	progBase uint32
	prog     []isa.Inst
	meta     []instMeta
	cores    []simCore
	cycle    uint64
	sched    Scheduler // policy singleton for cfg.Sched (sched.go)
	observer func(IssueEvent)

	// NoCoalesce issues one line request per active lane (ablation A2).
	NoCoalesce bool

	fullMask uint64
	maxFU    uint64 // cached Lat.max(): the longest FU latency, for stall attribution
	par      bool   // a parallel run is in flight: defer shared-memory timing
	batch    bool   // cached cfg.BatchExec && !cfg.ScanSched (the scan oracle is always per-warp)
	batchMem bool   // cached cfg.BatchMem && batch: memory cohorts need the heap engine too
	mshrs    int    // cached cfg.Mem.L1.MSHRs: per-core outstanding-miss bound (0 = unbounded)

	// Sharded-commit scratch (parallel engine), reused across cycles: the
	// cores with deferred memory work this cycle, the per-bank DRAM op
	// queues filled by bank workers, and the per-channel queues each
	// channel worker gathers and drains in global order.
	commitList []int
	bankOps    [][]dramOp
	chanOps    [][]dramOp

	// Sequential event engine's core wake queue (event.go), kept on the
	// Sim so its buffers are reused across Run calls: the issue path
	// stays allocation-free in steady state even when a pooled device
	// runs many launches.
	evq eventQueue
}

// New builds a device simulator over the given memory system.
func New(cfg Config, memory *mem.Memory, hier *mem.Hierarchy) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if memory == nil || hier == nil {
		return nil, fmt.Errorf("sim: nil memory system")
	}
	s := &Sim{
		cfg:      cfg,
		memory:   memory,
		hier:     hier,
		cores:    make([]simCore, cfg.Cores),
		sched:    newScheduler(cfg.Sched),
		fullMask: fullMask(cfg.Threads),
		maxFU:    uint64(cfg.Lat.max()),
		batch:    cfg.BatchExec && !cfg.ScanSched,
		batchMem: cfg.BatchMem && cfg.BatchExec && !cfg.ScanSched,
		mshrs:    cfg.Mem.L1.MSHRs,
	}
	for i := range s.cores {
		s.cores[i].id = i
		s.cores[i].warps = make([]warp, cfg.Warps)
		s.cores[i].lineBuf = make([]uint32, 0, 64)
		if s.mshrs > 0 {
			// One memory instruction can allocate up to 64 entries past a
			// single free MSHR (the gate requires one free slot, not one per
			// line), so size the buffer for the worst burst to keep the
			// issue path allocation-free.
			s.cores[i].mshr = make([]uint64, 0, s.mshrs+64)
		}
		// A cohort spans at most the core's warps, so the preallocation
		// keeps cohort detection allocation-free.
		s.cores[i].cohort = make([]*warp, 0, cfg.Warps)
		// Each warp holds at most one heap entry, so the preallocation
		// keeps the issue path allocation-free.
		s.cores[i].wakeHeap = make([]wakeEntry, 0, cfg.Warps)
	}
	return s, nil
}

func fullMask(threads int) uint64 {
	if threads >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(threads)) - 1
}

// Config returns the device configuration.
func (s *Sim) Config() Config { return s.cfg }

// Cycle returns the monotonic device cycle counter.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Memory returns the flat device memory.
func (s *Sim) Memory() *mem.Memory { return s.memory }

// Hierarchy returns the cache hierarchy.
func (s *Sim) Hierarchy() *mem.Hierarchy { return s.hier }

// SetObserver installs a per-issue callback (nil disables tracing).
func (s *Sim) SetObserver(fn func(IssueEvent)) { s.observer = fn }

// instMeta is pre-decoded scheduling metadata for one instruction, so the
// per-cycle scoreboard checks avoid repeated predicate evaluation.
type instMeta uint16

const (
	mReadsI1 instMeta = 1 << iota
	mReadsI2
	mReadsF1
	mReadsF2
	mReadsF3
	mWritesI
	mWritesF
	mIsMem
	mBatch // pure compute, eligible for uniform-warp cohort execution
)

func metaOf(in isa.Inst) instMeta {
	var m instMeta
	if in.ReadsIntRs1() {
		m |= mReadsI1
	}
	if in.ReadsIntRs2() {
		m |= mReadsI2
	}
	if in.ReadsFloatRs1() {
		m |= mReadsF1
	}
	if in.ReadsFloatRs2() {
		m |= mReadsF2
	}
	if in.ReadsFloatRs3() {
		m |= mReadsF3
	}
	if in.WritesInt() {
		m |= mWritesI
	}
	if in.WritesFloat() {
		m |= mWritesF
	}
	if in.IsMem() {
		m |= mIsMem
	}
	if batchable(in.Op) {
		m |= mBatch
	}
	return m
}

// LoadProgram installs the instruction stream at base and pre-computes
// scheduling metadata. Instruction fetch is modeled as ideal (the paper's
// bottlenecks are issue- and data-side). Re-loading the program already
// resident (same backing array, the common case under the ocl program
// cache) skips the metadata rebuild.
func (s *Sim) LoadProgram(base uint32, insts []isa.Inst) error {
	if base%4 != 0 {
		return fmt.Errorf("sim: program base %#x misaligned", base)
	}
	if base == s.progBase && len(insts) == len(s.prog) &&
		len(insts) > 0 && &insts[0] == &s.prog[0] {
		return nil
	}
	s.progBase = base
	s.prog = insts
	s.meta = make([]instMeta, len(insts))
	for i, in := range insts {
		s.meta[i] = metaOf(in)
	}
	return nil
}

// Reset rewinds the simulator to its freshly constructed state — cycle
// counter, per-core scheduler and LSU state, statistics, barriers and warp
// flags — while keeping the register-file and scratch allocations, so a
// pooled device can be reused across runs with byte-identical behaviour to
// a new Sim. The loaded program is dropped (the next launch reloads one)
// and any observer is kept (callers that pool devices clear it via the
// device).
func (s *Sim) Reset() {
	s.cycle = 0
	s.progBase, s.prog, s.meta = 0, nil, nil
	s.par = false
	s.NoCoalesce = false
	for i := range s.cores {
		c := &s.cores[i]
		c.resetSched()
		c.lsuFree = 0
		c.mshr = c.mshr[:0]
		c.nextWake = 0
		c.stallFrom = 0
		c.active = 0
		c.barriers = [maxBarriers]barrier{}
		c.blockMem = false
		c.stats = CoreStats{}
		c.md = memDefer{}
		c.memT = memTemplate{}
		for j := range c.warps {
			w := &c.warps[j]
			w.active = false
			w.barWait = false
			w.wakeValid = false
			w.batched = false
			w.last = 0
		}
	}
}

// ActivateWarp starts warp (core, wid) at pc with the given thread mask,
// zeroing its register file and divergence stack.
func (s *Sim) ActivateWarp(core, wid int, pc uint32, tmask uint64) error {
	if core < 0 || core >= s.cfg.Cores || wid < 0 || wid >= s.cfg.Warps {
		return fmt.Errorf("sim: warp (%d,%d) outside %s", core, wid, s.cfg.Name())
	}
	if tmask == 0 || tmask&^s.fullMask != 0 {
		return fmt.Errorf("sim: bad thread mask %#x for %d threads", tmask, s.cfg.Threads)
	}
	c := &s.cores[core]
	w := &c.warps[wid]
	if w.active {
		return fmt.Errorf("sim: warp (%d,%d) already active", core, wid)
	}
	s.resetWarp(w, pc, tmask)
	// The warp was inactive, so it is in neither scheduler set (heap
	// residency implies active); it enters through the ready set.
	c.ready |= 1 << uint(wid)
	c.active++
	if c.nextWake > s.cycle {
		c.nextWake = s.cycle
	}
	return nil
}

func (s *Sim) resetWarp(w *warp, pc uint32, tmask uint64) {
	n := s.cfg.Threads * 32
	if w.regs == nil {
		w.regs = make([]uint32, n)
		w.fregs = make([]uint32, n)
	} else {
		clear(w.regs)
		clear(w.fregs)
	}
	w.pendI = [32]uint64{}
	w.pendF = [32]uint64{}
	w.ipdom = w.ipdom[:0]
	w.active = true
	w.barWait = false
	w.wakeValid = false
	w.batched = false
	// Clear the issue timestamp so oldest-first gives fresh warps top
	// priority instead of inheriting a previous launch's (or a previous
	// incarnation's) history. rr/gto never read it.
	w.last = 0
	w.pc = pc
	w.tmask = tmask
}

// ActiveWarps returns the number of active warps across all cores.
func (s *Sim) ActiveWarps() int {
	n := 0
	for i := range s.cores {
		n += s.cores[i].active
	}
	return n
}

// CoreStatsOf returns a copy of core's counters.
func (s *Sim) CoreStatsOf(core int) CoreStats { return s.cores[core].stats }

// TotalStats sums counters over cores.
func (s *Sim) TotalStats() CoreStats {
	var t CoreStats
	for i := range s.cores {
		cs := &s.cores[i].stats
		t.Issued += cs.Issued
		t.LaneOps += cs.LaneOps
		t.Loads += cs.Loads
		t.Stores += cs.Stores
		t.LineRequests += cs.LineRequests
		t.MemStall += cs.MemStall
		t.ExecStall += cs.ExecStall
		t.IdleAfterEnd += cs.IdleAfterEnd
	}
	return t
}

const noWake = ^uint64(0)

// Run executes until every warp has retired. It returns a *Trap on
// execution errors and a deadline error if MaxCycles is exceeded. When
// Config.Workers (clamped to the core count) exceeds one and no observer is
// installed, cores are simulated by the parallel engine; results are
// byte-identical to the sequential engine for race-free kernels.
//
// Observer contract: an installed observer (SetObserver) silently forces
// the sequential engine regardless of Config.Workers — per-issue callbacks
// are specified to arrive in the global (cycle, core) issue order, which
// only the sequential engine produces directly. The event stream is
// therefore identical whether Workers is 1 or 64 (pinned by
// TestObserverForcesSequentialOrder).
func (s *Sim) Run() error {
	if w := s.resolveWorkers(s.cfg.Workers); w > 1 {
		return s.runParallel(w)
	}
	return s.runSequential()
}

// RunParallel runs with an explicit worker count, overriding Config.Workers.
// workers <= 1 forces the sequential engine.
func (s *Sim) RunParallel(workers int) error {
	if w := s.resolveWorkers(workers); w > 1 {
		return s.runParallel(w)
	}
	return s.runSequential()
}

// resolveWorkers clamps a requested worker count to the usable range. An
// installed observer forces the sequential engine: per-issue callbacks are
// specified to arrive in the global (cycle, core) issue order.
func (s *Sim) resolveWorkers(workers int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.Cores {
		workers = s.cfg.Cores
	}
	if s.observer != nil {
		workers = 1
	}
	return workers
}

// runSequential dispatches to the event-driven device engine (event.go)
// or, under Config.TickEngine, to the legacy per-cycle tick loop kept as
// its differential-test oracle. Both are byte-identical in every simulated
// observable.
func (s *Sim) runSequential() error {
	if s.cfg.TickEngine {
		return s.runSequentialTick()
	}
	return s.runSequentialEvent()
}

// runSequentialTick is the legacy sequential engine: every cycle visits
// every core with active warps, if only to account a stall and min-reduce
// its wake time, and fast-forwards only when no core at all issued. It is
// O(total cores) per cycle where the event engine touches only due cores.
func (s *Sim) runSequentialTick() error {
	limit := s.cfg.MaxCycles
	if limit == 0 {
		limit = 1 << 40
	}
	deadline := s.cycle + limit
	for {
		anyActive := false
		issuedAny := false
		minWake := noWake
		for i := range s.cores {
			c := &s.cores[i]
			if c.active == 0 {
				continue
			}
			anyActive = true
			if c.nextWake > s.cycle {
				if c.nextWake < minWake {
					minWake = c.nextWake
				}
				s.accountStall(c, 1)
				continue
			}
			issued, wake, err := s.issue(c)
			if err != nil {
				return err
			}
			if issued {
				issuedAny = true
				c.nextWake = s.cycle + 1
			} else {
				c.nextWake = wake
				if wake < minWake {
					minWake = wake
				}
				s.accountStall(c, 1)
			}
		}
		if !anyActive {
			return nil
		}
		if issuedAny {
			s.cycle++
		} else {
			if minWake == noWake {
				return s.deadlockTrap()
			}
			s.jumpTo(minWake)
		}
		if s.cycle > deadline {
			return fmt.Errorf("sim: exceeded cycle limit %d on %s", limit, s.cfg.Name())
		}
	}
}

func (s *Sim) accountStall(c *simCore, n uint64) {
	if c.blockMem {
		c.stats.MemStall += n
	} else {
		c.stats.ExecStall += n
	}
}

func (s *Sim) deadlockTrap() error {
	for i := range s.cores {
		c := &s.cores[i]
		for wid := range c.warps {
			w := &c.warps[wid]
			if w.active && w.barWait {
				return &Trap{Cycle: s.cycle, Core: i, Warp: wid, PC: w.pc,
					Reason: "deadlock: warp waiting on a barrier that can never fill"}
			}
		}
	}
	return &Trap{Cycle: s.cycle, Reason: "deadlock: active warps but no schedulable event"}
}

// issue attempts to issue one instruction on core c at the current cycle,
// dispatching to the ready-set/wake-heap engine (sched.go) or, under
// Config.ScanSched, to the legacy scan loop kept as its differential-test
// oracle. Both engines share execute(), the stall cache and the stall
// attribution, and are byte-identical in every simulated observable.
func (s *Sim) issue(c *simCore) (bool, uint64, error) {
	if s.cfg.ScanSched {
		return s.issueScan(c)
	}
	return s.issueHeap(c)
}

// issueScan is the legacy issue loop: a full circular rescan of the core's
// warps per attempt, with the rr/gto policy choice inlined. It is O(Warps)
// per issue cycle where issueHeap touches only ready warps, and survives as
// the oracle the scheduler differential matrices compare the heap engine
// against. It returns whether an instruction issued and, if not, the
// earliest cycle at which the core might become ready.
func (s *Sim) issueScan(c *simCore) (bool, uint64, error) {
	n := len(c.warps)
	wake := noWake
	blockMem := false
	gto := s.cfg.Sched == SchedGTO
	start := c.rr
	if gto {
		start = c.cur
	}
	maxFU := s.maxFU

	for k := 0; k < n; k++ {
		wid := start + k
		if wid >= n {
			wid -= n
		}
		w := &c.warps[wid]
		if !w.active || w.barWait {
			continue
		}
		var in isa.Inst
		if w.wakeValid && w.wakePC == w.pc {
			// Stall cache hit: the warp failed the scoreboard at this pc on
			// an earlier scan and nothing it depends on can have changed, so
			// skip fetch/decode and reuse the cached ready time. The stall
			// attribution below mirrors the cold path exactly.
			if ready := w.wake; ready > s.cycle {
				if ready < wake {
					wake = ready
					blockMem = w.wakeMem || ready > s.cycle+maxFU
				} else if ready > s.cycle+maxFU {
					blockMem = true
				}
				continue
			}
			if w.wakeMem {
				if at := s.lsuReadyAt(c); at > s.cycle {
					if at < wake {
						wake = at
						blockMem = true
					}
					continue
				}
			}
			in = s.prog[(w.pc-s.progBase)/4]
		} else {
			if w.pc < s.progBase || w.pc-s.progBase >= uint32(len(s.prog))*4 || w.pc%4 != 0 {
				return false, 0, &Trap{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Reason: "instruction fetch outside program"}
			}
			idx := (w.pc - s.progBase) / 4
			in = s.prog[idx]
			if in.Op == isa.OpInvalid {
				return false, 0, &Trap{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Reason: "executed data word / invalid instruction"}
			}
			m := s.meta[idx]
			// Scoreboard: all read and written registers must be ready.
			if ready := regsReadyAt(w, in, m); ready > s.cycle {
				w.wakeValid, w.wakePC, w.wake, w.wakeMem = true, w.pc, ready, m&mIsMem != 0
				if ready < wake {
					wake = ready
					blockMem = m&mIsMem != 0 || ready > s.cycle+maxFU
				} else if ready > s.cycle+maxFU {
					blockMem = true
				}
				continue
			}
			// Structural hazard: the LSU accepts one memory instruction at a
			// time (it streams line requests at 1/cycle), and a bounded MSHR
			// file must have a free slot before a new miss can be tracked.
			if m&mIsMem != 0 {
				if at := s.lsuReadyAt(c); at > s.cycle {
					w.wakeValid, w.wakePC, w.wake, w.wakeMem = true, w.pc, 0, true
					if at < wake {
						wake = at
						blockMem = true
					}
					continue
				}
			}
		}
		if err := s.execute(c, wid, w, in); err != nil {
			return false, 0, err
		}
		w.wakeValid = false
		w.last = s.cycle
		if gto {
			c.cur = wid
		} else {
			c.rr = wid + 1
			if c.rr >= n {
				c.rr = 0
			}
		}
		return true, 0, nil
	}
	if wake == noWake {
		// Only barrier-waiting warps (or none runnable): no timed event.
		c.blockMem = false
		return false, noWake, nil
	}
	c.blockMem = blockMem
	if wake <= s.cycle {
		wake = s.cycle + 1
	}
	return false, wake, nil
}

// lsuReadyAt returns the earliest cycle core c's LSU can accept a memory
// instruction: the port-busy deadline (lsuFree) joined with the L1 MSHR
// bound when one is configured. With MSHRs unbounded (the default and the
// differential oracle) it is exactly lsuFree, so the issue paths below are
// byte-identical to the pre-MSHR model. Like the LSU deadline, the result
// is a lower bound the engines re-check on wake.
func (s *Sim) lsuReadyAt(c *simCore) uint64 {
	at := c.lsuFree
	if s.mshrs > 0 {
		if free := s.mshrFreeAt(c); free > at {
			at = free
		}
	}
	return at
}

// mshrFreeAt purges retired MSHR entries (completion at or before the
// current cycle) and returns the earliest cycle a new miss could allocate
// one: the current cycle when a slot is free, else the earliest outstanding
// completion. The latter is a lower bound — several entries may retire at
// that cycle or none may free a slot ahead of still-later ones — which is
// sound because a core's occupancy only falls while its warps are blocked
// (entries are added only when the core itself issues a memory op), and
// every engine re-checks the gate at the woken cycle, exactly as it does
// for the moving lsuFree deadline.
func (s *Sim) mshrFreeAt(c *simCore) uint64 {
	q := c.mshr[:0]
	min := noWake
	for _, d := range c.mshr {
		if d > s.cycle {
			q = append(q, d)
			if d < min {
				min = d
			}
		}
	}
	c.mshr = q
	if len(q) < s.mshrs {
		return s.cycle
	}
	return min
}

// regsReadyAt returns the earliest cycle all registers read or written by
// in are free (max of their pending completions).
func regsReadyAt(w *warp, in isa.Inst, m instMeta) uint64 {
	var ready uint64
	if m&mReadsI1 != 0 && w.pendI[in.Rs1] > ready {
		ready = w.pendI[in.Rs1]
	}
	if m&mReadsI2 != 0 && w.pendI[in.Rs2] > ready {
		ready = w.pendI[in.Rs2]
	}
	if m&mReadsF1 != 0 && w.pendF[in.Rs1] > ready {
		ready = w.pendF[in.Rs1]
	}
	if m&mReadsF2 != 0 && w.pendF[in.Rs2] > ready {
		ready = w.pendF[in.Rs2]
	}
	if m&mReadsF3 != 0 && w.pendF[in.Rs3] > ready {
		ready = w.pendF[in.Rs3]
	}
	if m&mWritesI != 0 && w.pendI[in.Rd] > ready {
		ready = w.pendI[in.Rd]
	}
	if m&mWritesF != 0 && w.pendF[in.Rd] > ready {
		ready = w.pendF[in.Rd]
	}
	return ready
}
