package sim

// Bare-simulator half of the memory-axis differential harness: the three
// memory-side grid axes (per-core/per-bank MSHR bound, L1 geometry, L1
// next-line prefetch) must compose with every execution engine without
// breaking the determinism contract. For each non-default memory point the
// sequential tick loop is the oracle and the event engine (sequential and
// parallel) plus the parallel tick loop must be byte-identical in every
// simulated observable — cycles, per-core counters, per-level cache stats
// including the prefetch counters, per-bank/per-channel stats, memory
// contents. The kernel-level matrix lives in memaxis_matrix_test.go; the
// sweep-record identity in internal/sweep/mem_axis_test.go. The CI
// race-detector step runs this file, so the MSHR gate in the wake path is
// also race-checked.

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// memAxisPoint is one non-default cell of the memory grid exercised by the
// bare-sim differentials.
type memAxisPoint struct {
	name     string
	mshrs    int
	l1Size   int // 0 = default geometry
	l1Ways   int
	prefetch bool
}

func memAxisPoints() []memAxisPoint {
	return []memAxisPoint{
		{name: "mshrs=1", mshrs: 1},
		{name: "mshrs=4", mshrs: 4},
		{name: "l1=8k2w", l1Size: 8 << 10, l1Ways: 2},
		{name: "l1=32k8w", l1Size: 32 << 10, l1Ways: 8},
		{name: "prefetch=nextline", prefetch: true},
		{name: "mshrs=2/l1=8k2w/prefetch=nextline", mshrs: 2, l1Size: 8 << 10, l1Ways: 2, prefetch: true},
	}
}

func (pt memAxisPoint) apply(cfg Config) Config {
	cfg.Mem.L1.MSHRs = pt.mshrs
	cfg.Mem.L2.MSHRs = pt.mshrs
	if pt.l1Size > 0 {
		cfg.Mem.L1.SizeBytes = pt.l1Size
		cfg.Mem.L1.Ways = pt.l1Ways
	}
	if pt.prefetch {
		cfg.Mem.Prefetch = mem.PrefetchNextLine
	}
	return cfg
}

// TestMemAxisEngineDifferential diffs, at every non-default memory point,
// the event engine (both worker counts) and the parallel tick loop against
// the sequential tick oracle, under both a scan-implemented and a
// heap-only scheduler.
func TestMemAxisEngineDifferential(t *testing.T) {
	for _, pt := range memAxisPoints() {
		for _, sched := range []SchedPolicy{SchedRoundRobin, SchedTwoLevel} {
			t.Run(fmt.Sprintf("%s/%s", pt.name, sched), func(t *testing.T) {
				cfg := pt.apply(DefaultConfig(4, 4, 4))
				cfg.Sched = sched
				cfg.TickEngine = true
				oracle := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
				tickPar := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 4)
				diffSnapshots(t, pt.name+"/tick-seq-vs-tick-par", oracle, tickPar)
				cfg.TickEngine = false
				for _, workers := range []int{1, 4} {
					ev := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), workers)
					diffSnapshots(t, fmt.Sprintf("%s/tick-vs-event/workers=%d", pt.name, workers), oracle, ev)
				}
			})
		}
	}
}

// TestMemAxisScanOracle pins that the memory axes compose with the legacy
// scan issue loop: heap and scan runs at the same memory point are
// byte-identical for the policies both implement.
func TestMemAxisScanOracle(t *testing.T) {
	for _, pt := range memAxisPoints() {
		for _, sched := range []SchedPolicy{SchedRoundRobin, SchedGTO} {
			t.Run(fmt.Sprintf("%s/%s", pt.name, sched), func(t *testing.T) {
				cfg := pt.apply(DefaultConfig(4, 4, 4))
				cfg.Sched = sched
				cfg.ScanSched = true
				scan := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
				cfg.ScanSched = false
				heap := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
				diffSnapshots(t, pt.name+"/scan-vs-heap", scan, heap)
			})
		}
	}
}

// TestMemAxisShardedCommit pins the memory axes against the sharded commit
// engine: the bank MSHR is bank-owned and the prefetch fill core-owned, so
// a CommitWorkers > 1 run must stay byte-identical to the global order.
func TestMemAxisShardedCommit(t *testing.T) {
	for _, pt := range memAxisPoints() {
		t.Run(pt.name, func(t *testing.T) {
			cfg := pt.apply(DefaultConfig(4, 4, 4))
			cfg.Mem.L2Banks = 4
			cfg.Mem.DRAM.Channels = 2
			seq := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
			cfg.CommitWorkers = 4
			for _, workers := range []int{2, 4} {
				par := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), workers)
				diffSnapshots(t, fmt.Sprintf("%s/workers=%d", pt.name, workers), seq, par)
			}
		})
	}
}

// memAxisDisjointProg is a strided load/store loop whose (core, warp,
// thread) regions stay disjoint across all iterations (cid<<14, wid<<12,
// tid<<10, 8 iterations of 64B stride = 512B per thread), unlike
// diffMemProg whose warps overlap after 16 lines. The sanity checks below
// compare runs under *different* configs, where overlapping stores would
// make final memory timing-dependent; disjoint regions make it invariant.
const memAxisDisjointProg = `
	csrr s0, cid
	slli s0, s0, 14
	csrr t0, wid
	slli t1, t0, 12
	add  s0, s0, t1
	csrr t0, tid
	slli t1, t0, 10
	add  s0, s0, t1
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 8
loop:
	lw   t4, 0(s0)
	add  t4, t4, t3
	sw   t4, 0(s0)
	addi s0, s0, 64
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// TestMSHRBoundDiverges is the axis sanity check: a tight MSHR bound must
// slow the memory-heavy differential program down relative to the
// unbounded oracle — if it never does, the gate is dead code — while
// leaving the functional results (memory contents) and the demand traffic
// (accesses, misses) untouched.
func TestMSHRBoundDiverges(t *testing.T) {
	cfg := DefaultConfig(4, 4, 4)
	unbounded := runSnapshot(t, cfg, memAxisDisjointProg, activateAll(cfg, 4, 0xF), 1)
	cfg.Mem.L1.MSHRs = 1
	cfg.Mem.L2.MSHRs = 1
	bounded := runSnapshot(t, cfg, memAxisDisjointProg, activateAll(cfg, 4, 0xF), 1)
	if bounded.cycles <= unbounded.cycles {
		t.Errorf("MSHRs=1 ran in %d cycles, unbounded in %d; the bound never stalled",
			bounded.cycles, unbounded.cycles)
	}
	for i := range unbounded.memData {
		if unbounded.memData[i] != bounded.memData[i] {
			t.Fatalf("MSHR bound changed memory at %#x: %#x vs %#x",
				0x8000+i, unbounded.memData[i], bounded.memData[i])
		}
	}
	for c := range unbounded.l1 {
		u, b := unbounded.l1[c], bounded.l1[c]
		if u.Accesses != b.Accesses || u.Misses != b.Misses {
			t.Errorf("core %d: MSHR bound changed demand traffic: %+v vs %+v", c, u, b)
		}
	}
	// Loosening the bound can only help: MSHRs=8 is no slower than MSHRs=1.
	cfg.Mem.L1.MSHRs = 8
	cfg.Mem.L2.MSHRs = 8
	loose := runSnapshot(t, cfg, memAxisDisjointProg, activateAll(cfg, 4, 0xF), 1)
	if loose.cycles > bounded.cycles {
		t.Errorf("MSHRs=8 (%d cycles) slower than MSHRs=1 (%d cycles)", loose.cycles, bounded.cycles)
	}
}

// TestPrefetchAxisObservables is the prefetch sanity check: on the strided
// differential program the next-line prefetcher must actually issue fills
// and convert some demand misses into prefetch hits, without perturbing the
// functional results or the demand access count.
func TestPrefetchAxisObservables(t *testing.T) {
	cfg := DefaultConfig(4, 4, 4)
	off := runSnapshot(t, cfg, memAxisDisjointProg, activateAll(cfg, 4, 0xF), 1)
	cfg.Mem.Prefetch = mem.PrefetchNextLine
	on := runSnapshot(t, cfg, memAxisDisjointProg, activateAll(cfg, 4, 0xF), 1)

	var issued, hits uint64
	for c := range on.l1 {
		issued += on.l1[c].PrefetchIssued
		hits += on.l1[c].PrefetchHits
		if off.l1[c].PrefetchIssued != 0 || off.l1[c].PrefetchHits != 0 {
			t.Errorf("core %d: prefetch counters nonzero with prefetch off: %+v", c, off.l1[c])
		}
		if on.l1[c].Accesses != off.l1[c].Accesses {
			t.Errorf("core %d: prefetch changed the demand access count: %d vs %d",
				c, on.l1[c].Accesses, off.l1[c].Accesses)
		}
	}
	if issued == 0 {
		t.Error("next-line prefetcher issued nothing on a strided stream")
	}
	if hits == 0 {
		t.Error("next-line prefetcher never hit on a strided stream")
	}
	if hits > issued {
		t.Errorf("prefetch hits %d exceed issues %d", hits, issued)
	}
	for i := range off.memData {
		if off.memData[i] != on.memData[i] {
			t.Fatalf("prefetch changed memory at %#x", 0x8000+i)
		}
	}
}
