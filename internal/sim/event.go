package sim

import "fmt"

// This file implements the event-driven device engine: the default
// replacement for the per-cycle tick loops of sim.go and parallel.go.
//
// PR 5's scheduler subsystem already computes, on every failed issue
// attempt, the earliest cycle a core can possibly issue again
// (simCore.nextWake, from the per-warp stall caches). The tick loops throw
// that knowledge away at device level: every cycle they still visit every
// core with active warps, if only to charge one stall cycle and min-reduce
// nextWake, and they fast-forward only when *zero* cores issued. On
// DRAM-bound many-core configurations — the regime the paper's
// characterization sweeps live in — almost every visit is such a bookkeeping
// touch: one core issues while the rest sleep out a miss for hundreds of
// cycles, so the tick engines pay O(total cores) per cycle for O(ready
// cores) of real work.
//
// The event engine lifts the wake knowledge into a device-level core wake
// queue (eventQueue) — one per device in the sequential engine, one per
// worker core range in the parallel engine — so a cycle touches only the
// cores that are actually due:
//
//   - heap: a (wake cycle, core id) min-heap of sleeping cores, exactly the
//     per-core analogue of the per-warp wake heap;
//   - running: the cores that issued last cycle and are therefore due again
//     this cycle, kept as a plain list (a busy core would otherwise churn
//     through the heap every cycle with the same key);
//   - parked: cores whose failed issue returned noWake — every active warp
//     waits on a barrier. Barriers are core-local and a parked core cannot
//     execute the arrival that would fill one, so a parked core can never
//     wake; it leaves the queue only at a deadlock trap.
//
// Every core with active warps is in exactly one of the three containers,
// and a queued core's state cannot change from outside: warp activation
// (vx_wspawn) and barrier release only ever touch the executing core, so
// sleeping cores stay asleep until their key expires.
//
// Stall attribution is lazy. The tick loops charge each non-issuing core
// one stall cycle per visited cycle, split MemStall/ExecStall by the core's
// blockMem attribution — which issue() fixes at the failed attempt and which
// cannot change while the core sleeps (the per-warp stall caches are only
// rewritten when the core itself issues). The event engine therefore records
// only the span start (simCore.stallFrom) when a core goes to sleep and
// settles the whole span through accountStall when the core is next touched
// (flushStall) or when the run ends abnormally (flushTrapStalls /
// flushAllStalls). Summed over a sleep span [T0, W) this reproduces the tick
// loops' per-cycle accounting byte-identically, including the partial-skip
// case the old no-issue fast-forward never reached: one core issuing every
// cycle while the others sleep for hundreds.

// coreEvent is one sleeping core in a device event queue, keyed by the
// earliest cycle its scheduler can issue again.
type coreEvent struct {
	at   uint64
	core int32
}

func coreEventBefore(a, b coreEvent) bool {
	return a.at < b.at || (a.at == b.at && a.core < b.core)
}

// eventQueue tracks the cores of one engine (or one parallel worker's core
// range) by their next due cycle. See the file comment for the invariants.
type eventQueue struct {
	heap    []coreEvent
	running []int32
	parked  []int32
	due     []int32 // scratch for collectDue, reused across cycles
	live    int     // cores with active warps still tracked by this queue
}

// init loads cores [lo, hi) into the queue at the run's start cycle. Cores
// woken by a previous launch's ActivateWarp are due immediately; a core
// still sleeping out a previous launch's stall keeps its wake key, with the
// pending span starting at the current cycle (the tick loops, too, only
// charge it from here on).
func (q *eventQueue) init(s *Sim, lo, hi int, cycle uint64) {
	q.heap = q.heap[:0]
	q.running = q.running[:0]
	q.parked = q.parked[:0]
	q.live = 0
	for i := lo; i < hi; i++ {
		c := &s.cores[i]
		if c.active == 0 {
			continue
		}
		q.live++
		switch {
		case c.nextWake <= cycle:
			c.stallFrom = noWake
			q.running = append(q.running, int32(i))
		case c.nextWake == noWake:
			c.stallFrom = cycle
			q.parked = append(q.parked, int32(i))
		default:
			c.stallFrom = cycle
			q.push(c.nextWake, int32(i))
		}
	}
}

func (q *eventQueue) push(at uint64, core int32) {
	h := append(q.heap, coreEvent{at: at, core: core})
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !coreEventBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.heap = h
}

func (q *eventQueue) pop() coreEvent {
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < len(h) && coreEventBefore(h[l], h[small]) {
			small = l
		}
		if r := 2*i + 2; r < len(h) && coreEventBefore(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	q.heap = h
	return top
}

// collectDue gathers the cores due at cycle — last cycle's issuers plus
// every heap entry whose wake time has arrived — merged in ascending core
// order. That order is load-bearing: it is the order the tick loops visit
// cores, so it fixes both the interleaving of same-cycle shared-memory
// accesses and the observer stream. Both inputs are already ascending: the
// running list is appended in due-processing order, and the heap never
// holds an entry with at < cycle (every cycle's due entries are drained
// before the cycle advances), so a cycle's pops all share one key and come
// off in core order.
func (q *eventQueue) collectDue(cycle uint64) []int32 {
	due := q.due[:0]
	run := q.running
	ri := 0
	for len(q.heap) > 0 && q.heap[0].at <= cycle {
		c := q.pop().core
		for ri < len(run) && run[ri] < c {
			due = append(due, run[ri])
			ri++
		}
		due = append(due, c)
	}
	due = append(due, run[ri:]...)
	q.due = due
	return due
}

// next returns the earliest cycle any core of this queue can issue again
// given that none issued this cycle: the heap minimum, or noWake when only
// parked (or no) cores remain.
func (q *eventQueue) next() uint64 {
	if len(q.heap) > 0 {
		return q.heap[0].at
	}
	return noWake
}

// flushStall settles a core's pending stall span through the cycle before
// the current one — exactly the cycles the tick loops have charged, one by
// one, by the time they re-attempt the core. Called when a core is popped
// due; the abnormal-exit paths use flushTrapStalls/flushAllStalls instead.
func (s *Sim) flushStall(c *simCore) {
	if c.stallFrom < s.cycle {
		s.accountStall(c, s.cycle-c.stallFrom)
		c.stallFrom = s.cycle
	}
}

// flushStallUpto settles a core's pending stall span through upto-1.
func (s *Sim) flushStallUpto(c *simCore, upto uint64) {
	if c.stallFrom < upto {
		s.accountStall(c, upto-c.stallFrom)
		c.stallFrom = upto
	}
}

// flushTrapStalls settles every pending stall span at an execution trap
// raised by trapCore at the current cycle. The tick loops visit cores in
// ascending order and stop at the trapping core, so cores below it have
// been charged through the trap cycle inclusive and cores at or above it
// only through the previous cycle.
func (s *Sim) flushTrapStalls(trapCore int) {
	for i := range s.cores {
		c := &s.cores[i]
		if c.active == 0 {
			continue
		}
		upto := s.cycle
		if i < trapCore {
			upto++
		}
		s.flushStallUpto(c, upto)
	}
}

// flushAllStalls settles every pending stall span through upto-1: the
// current cycle inclusive at a deadlock trap (upto = cycle+1, the tick
// loops charge parked cores on the trap cycle before classifying it), and
// the pre-advance cycle at the MaxCycles deadline (upto = cycle).
func (s *Sim) flushAllStalls(upto uint64) {
	for i := range s.cores {
		c := &s.cores[i]
		if c.active > 0 {
			s.flushStallUpto(c, upto)
		}
	}
}

// jumpTo fast-forwards a no-issue tick cycle to the next wake event,
// attributing the skipped cycles to each active core's standing stall
// reason (each stalled core was already charged 1 for the current cycle by
// the visit that failed or skipped it). Shared by both tick loops — it is
// the eager twin of flushStall, which reproduces the same accounting lazily
// for the event engine — so there is a single bulk-attribution code path.
func (s *Sim) jumpTo(minWake uint64) {
	if delta := minWake - s.cycle; delta > 1 {
		for i := range s.cores {
			c := &s.cores[i]
			if c.active > 0 {
				s.accountStall(c, delta-1)
			}
		}
	}
	s.cycle = minWake
}

// runSequentialEvent is the sequential event-driven engine: per cycle it
// touches only the cores due now, advances to the queue's next wake when
// nothing issued, and settles stall spans lazily. Byte-identical to
// runSequentialTick in every simulated observable.
func (s *Sim) runSequentialEvent() error {
	limit := s.cfg.MaxCycles
	if limit == 0 {
		limit = 1 << 40
	}
	deadline := s.cycle + limit

	q := &s.evq
	q.init(s, 0, len(s.cores), s.cycle)

	for q.live > 0 {
		due := q.collectDue(s.cycle)
		q.running = q.running[:0]
		issuedAny := false
		for _, ci := range due {
			c := &s.cores[ci]
			if c.active == 0 {
				// Retired since it last issued; it leaves the queue and, like
				// under the tick loop, is never visited (or charged) again.
				q.live--
				continue
			}
			s.flushStall(c)
			issued, wake, err := s.issue(c)
			if err != nil {
				s.flushTrapStalls(int(ci))
				return err
			}
			switch {
			case issued:
				issuedAny = true
				c.nextWake = s.cycle + 1
				c.stallFrom = noWake
				q.running = append(q.running, ci)
			case wake == noWake:
				c.nextWake = noWake
				c.stallFrom = s.cycle
				q.parked = append(q.parked, ci)
			default:
				c.nextWake = wake
				c.stallFrom = s.cycle
				q.push(wake, ci)
			}
		}
		switch {
		case issuedAny:
			s.cycle++
		case len(q.heap) > 0:
			s.cycle = q.heap[0].at
		case q.live > 0:
			// No timed event left: every remaining live core is parked on a
			// barrier that can never fill.
			s.flushAllStalls(s.cycle + 1)
			return s.deadlockTrap()
		default:
			return nil
		}
		if s.cycle > deadline {
			s.flushAllStalls(s.cycle)
			return fmt.Errorf("sim: exceeded cycle limit %d on %s", limit, s.cfg.Name())
		}
	}
	return nil
}
