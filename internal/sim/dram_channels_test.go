package sim_test

// Coverage for the per-channel DRAM statistics split: DRAMStats summed
// over channels must equal the aggregate counters the rest of the system
// consumes (LaunchResult.DRAM deltas, energy model inputs) — i.e. the
// per-channel decomposition loses no traffic — pinned on the five Figure 2
// math kernels the paper sweeps.

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
)

var fig2ChannelKernels = []string{"vecadd", "relu", "saxpy", "sgemm", "knn"}

func TestDRAMChannelStatsSumToGlobal(t *testing.T) {
	for _, name := range fig2ChannelKernels {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig(4, 4, 8) // 4 cores -> 4 DRAM channels
			d, err := ocl.NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := spec.Build(d, kernels.Params{Scale: 0.05, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(d, 0)
			if err != nil {
				t.Fatal(err)
			}

			h := d.Sim().Hierarchy()
			if h.DRAMChannels() != 4 {
				t.Fatalf("channels = %d, want 4", h.DRAMChannels())
			}
			var sum mem.DRAMStats
			used := 0
			for ch := 0; ch < h.DRAMChannels(); ch++ {
				s := h.DRAMChannelStats(ch)
				sum.LineReads += s.LineReads
				sum.Writebacks += s.Writebacks
				sum.BusyCycles += s.BusyCycles
				if s.LineReads+s.Writebacks > 0 {
					used++
				}
			}
			if got := h.DRAM(); got != sum {
				t.Errorf("global DRAM stats %+v != channel sum %+v", got, sum)
			}
			if sum.LineReads == 0 {
				t.Fatalf("kernel produced no DRAM traffic; test is vacuous")
			}
			if used < 2 {
				t.Errorf("only %d of %d channels saw traffic; striping is broken", used, h.DRAMChannels())
			}

			// The launch reports are deltas of the same aggregate: their sum
			// over launches must equal the hierarchy's lifetime counters.
			var launches mem.DRAMStats
			for _, l := range res.Launches {
				launches.LineReads += l.DRAM.LineReads
				launches.Writebacks += l.DRAM.Writebacks
				launches.BusyCycles += l.DRAM.BusyCycles
			}
			if launches != sum {
				t.Errorf("launch-delta DRAM stats %+v != channel sum %+v", launches, sum)
			}
		})
	}
}
