package sim_test

// Kernel-level differential test for the parallel engine: real registry
// kernels through the full OpenCL-style runtime on a multi-core device must
// produce byte-identical launch reports — cycle counts, pipeline counters,
// cache and DRAM statistics — at every worker count, and still verify
// against the CPU references. This is the end-to-end half of the
// determinism contract; internal/sim/parallel_test.go pins the same
// property at the bare-simulator level.

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
)

func runKernelSnapshot(t *testing.T, name string, workers int) []*ocl.LaunchResult {
	t.Helper()
	spec, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(4, 4, 8)
	cfg.Workers = workers
	d, err := ocl.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Build(d, kernels.Params{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunVerified(d, 0)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	return res.Launches
}

func TestParallelMatchesSequentialKernels(t *testing.T) {
	for _, name := range []string{"vecadd", "saxpy", "sgemm", "knn", "gcn_aggr"} {
		t.Run(name, func(t *testing.T) {
			seq := runKernelSnapshot(t, name, 1)
			for _, workers := range []int{3, 4} {
				par := runKernelSnapshot(t, name, workers)
				if len(seq) != len(par) {
					t.Fatalf("launch count differs: %d vs %d", len(seq), len(par))
				}
				for i := range seq {
					a, b := seq[i], par[i]
					if a.SimCycles != b.SimCycles {
						t.Errorf("workers=%d launch %d: cycles %d vs %d", workers, i, a.SimCycles, b.SimCycles)
					}
					if a.Stats != b.Stats {
						t.Errorf("workers=%d launch %d: core stats differ:\nseq %+v\npar %+v", workers, i, a.Stats, b.Stats)
					}
					if a.L1 != b.L1 {
						t.Errorf("workers=%d launch %d: L1 stats differ:\nseq %+v\npar %+v", workers, i, a.L1, b.L1)
					}
					if a.L2 != b.L2 {
						t.Errorf("workers=%d launch %d: L2 stats differ:\nseq %+v\npar %+v", workers, i, a.L2, b.L2)
					}
					if a.DRAM != b.DRAM {
						t.Errorf("workers=%d launch %d: DRAM stats differ:\nseq %+v\npar %+v", workers, i, a.DRAM, b.DRAM)
					}
				}
			}
		})
	}
}
