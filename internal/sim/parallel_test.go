package sim

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// snapshot captures everything the determinism contract covers: the device
// cycle, every core's pipeline counters, every cache level's statistics
// (down to individual L2 banks) and the DRAM counters (down to individual
// channels).
type snapshot struct {
	cycles  uint64
	cores   []CoreStats
	l1      []mem.CacheStats
	l2      mem.CacheStats
	banks   []mem.CacheStats
	dram    mem.DRAMStats
	dramCh  []mem.DRAMStats
	memData []byte
}

// takeSnapshot collects the contract state of a finished run.
func takeSnapshot(s *Sim, hier *mem.Hierarchy, cores int) snapshot {
	snap := snapshot{cycles: s.Cycle(), l2: hier.L2Stats(), dram: hier.DRAM()}
	for c := 0; c < cores; c++ {
		snap.cores = append(snap.cores, s.CoreStatsOf(c))
		snap.l1 = append(snap.l1, hier.L1Stats(c))
	}
	for b := 0; b < hier.L2Banks(); b++ {
		snap.banks = append(snap.banks, hier.L2BankStats(b))
	}
	for ch := 0; ch < hier.DRAMChannels(); ch++ {
		snap.dramCh = append(snap.dramCh, hier.DRAMChannelStats(ch))
	}
	return snap
}

func runSnapshot(t *testing.T, cfg Config, prog string, activate func(*Sim) error, workers int) snapshot {
	t.Helper()
	p, err := asm.Assemble(prog, 0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	if err := activate(s); err != nil {
		t.Fatal(err)
	}
	if err := s.RunParallel(workers); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	snap := takeSnapshot(s, hier, cfg.Cores)
	snap.memData, err = memory.ReadBytes(0x8000, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func diffSnapshots(t *testing.T, name string, seq, par snapshot) {
	t.Helper()
	if seq.cycles != par.cycles {
		t.Errorf("%s: cycles differ: sequential %d, parallel %d", name, seq.cycles, par.cycles)
	}
	for c := range seq.cores {
		if seq.cores[c] != par.cores[c] {
			t.Errorf("%s: core %d stats differ:\nseq %+v\npar %+v", name, c, seq.cores[c], par.cores[c])
		}
		if seq.l1[c] != par.l1[c] {
			t.Errorf("%s: core %d L1 stats differ:\nseq %+v\npar %+v", name, c, seq.l1[c], par.l1[c])
		}
	}
	if seq.l2 != par.l2 {
		t.Errorf("%s: L2 stats differ:\nseq %+v\npar %+v", name, seq.l2, par.l2)
	}
	for b := range seq.banks {
		if seq.banks[b] != par.banks[b] {
			t.Errorf("%s: L2 bank %d stats differ:\nseq %+v\npar %+v", name, b, seq.banks[b], par.banks[b])
		}
	}
	if seq.dram != par.dram {
		t.Errorf("%s: DRAM stats differ:\nseq %+v\npar %+v", name, seq.dram, par.dram)
	}
	for ch := range seq.dramCh {
		if seq.dramCh[ch] != par.dramCh[ch] {
			t.Errorf("%s: DRAM channel %d stats differ:\nseq %+v\npar %+v", name, ch, seq.dramCh[ch], par.dramCh[ch])
		}
	}
	for i := range seq.memData {
		if seq.memData[i] != par.memData[i] {
			t.Errorf("%s: memory differs at %#x: seq %#x, par %#x", name, 0x8000+i, seq.memData[i], par.memData[i])
			break
		}
	}
}

// strided load/store loop: every warp walks a distinct region, so the cores
// contend on the L2 and DRAM channels but never race on data.
const diffMemProg = `
	csrr s0, cid
	slli s0, s0, 14
	csrr t0, wid
	slli t1, t0, 10
	add  s0, s0, t1
	csrr t0, tid
	slli t1, t0, 6
	add  s0, s0, t1
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 40
loop:
	lw   t4, 0(s0)
	add  t4, t4, t3
	sw   t4, 0(s0)
	addi s0, s0, 64
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// FP pipeline mix with divergence: exercises the float scoreboard and the
// ballot/split/join path under both engines.
const diffFPProg = `
	csrr t0, cid
	csrr t1, wid
	slli t1, t1, 3
	add  t0, t0, t1
	csrr t2, tid
	add  t0, t0, t2
	fcvt.s.w f0, t0
	fmul.s f1, f0, f0
	fdiv.s f2, f1, f0
	andi t3, t0, 1
	vx_split t3
	beqz t3, skip
	fsqrt.s f2, f1
skip:
	vx_join
	fmadd.s f3, f2, f1, f0
	csrr s0, cid
	slli s0, s0, 12
	csrr t1, wid
	slli t2, t1, 7
	add  s0, s0, t2
	csrr t2, tid
	slli t3, t2, 2
	add  s0, s0, t3
	li   t4, 0x9000
	add  s0, s0, t4
	fsw  f3, 0(s0)
	ecall
`

// warp spawn + barrier: warp 0 of each core spawns the rest, all meet at a
// barrier, then do a strided store.
const diffSpawnProg = `
	csrr t0, wid
	bnez t0, work
	li   t1, 4
	la   t2, work
	vx_wspawn t1, t2
work:
	li   t1, 4
	li   t0, 0
	vx_bar t0, t1
	csrr s0, cid
	slli s0, s0, 12
	csrr t1, wid
	slli t2, t1, 6
	add  s0, s0, t2
	li   t3, 0xA000
	add  s0, s0, t3
	csrr t4, wid
	sw   t4, 0(s0)
	ecall
`

func activateAll(cfg Config, warps int, tmask uint64) func(*Sim) error {
	return func(s *Sim) error {
		for c := 0; c < cfg.Cores; c++ {
			for w := 0; w < warps; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, tmask); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// TestParallelMatchesSequential is the differential determinism test: the
// parallel engine must produce byte-identical cycle counts, per-core
// CoreStats, cache statistics, DRAM statistics and memory contents at every
// worker count, for both schedulers.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		prog     string
		sched    SchedPolicy
		activate func(Config) func(*Sim) error
	}{
		{"mem-rr", diffMemProg, SchedRoundRobin,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"mem-gto", diffMemProg, SchedGTO,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"fp-divergence", diffFPProg, SchedRoundRobin,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"wspawn-barrier", diffSpawnProg, SchedGTO,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 1, 1) }},
		// The two heap-only policies have no scan oracle; their contract is
		// sequential/parallel byte-identity, same as rr/gto above.
		{"mem-oldest", diffMemProg, SchedOldestFirst,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"mem-2lev", diffMemProg, SchedTwoLevel,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"wspawn-barrier-oldest", diffSpawnProg, SchedOldestFirst,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 1, 1) }},
		{"fp-divergence-2lev", diffFPProg, SchedTwoLevel,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(4, 4, 4)
			cfg.Sched = tc.sched
			seq := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), 1)
			for _, workers := range []int{2, 3, 4} {
				par := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), workers)
				diffSnapshots(t, fmt.Sprintf("%s/workers=%d", tc.name, workers), seq, par)
			}
		})
	}
}

// TestParallelShardedCommitMatrix is the bare-simulator half of the
// sharded-commit determinism harness: across {1,2,4,8} L2 banks x {1,2,4}
// DRAM channels (plus the L2-disabled bypass), a run whose commit phase is
// forced onto the bank/channel-sharded path (CommitWorkers > 1) must be
// byte-identical — cycles, per-core stats, per-bank L2 stats, per-channel
// DRAM stats, memory contents — to the sequential engine's global order.
func TestParallelShardedCommitMatrix(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		for _, channels := range []int{1, 2, 4} {
			name := fmt.Sprintf("banks=%d/channels=%d", banks, channels)
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig(4, 4, 4)
				cfg.Mem.L2Banks = banks
				cfg.Mem.DRAM.Channels = channels
				seq := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
				cfg.CommitWorkers = 4
				for _, workers := range []int{2, 4} {
					par := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), workers)
					diffSnapshots(t, fmt.Sprintf("%s/workers=%d", name, workers), seq, par)
				}
			})
		}
	}
	t.Run("l2-disabled", func(t *testing.T) {
		cfg := DefaultConfig(4, 4, 4)
		cfg.Mem.L2Disabled = true
		cfg.Mem.DRAM.Channels = 3 // non-power-of-two: channels span banks
		seq := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
		cfg.CommitWorkers = 4
		par := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 4)
		diffSnapshots(t, "l2-disabled", seq, par)
	})
	// Writeback-heavy stress: a tiny L2 forces dirty evictions through both
	// bank-victim paths (absorb-side and fill-side), GTO scheduling, many
	// cores, and a commit-worker count that neither divides the bank count
	// nor the channel count.
	t.Run("writeback-stress", func(t *testing.T) {
		cfg := DefaultConfig(8, 2, 4)
		cfg.Sched = SchedGTO
		cfg.Mem.L1 = mem.CacheConfig{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 2}
		cfg.Mem.L2 = mem.CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, HitLatency: 12}
		cfg.Mem.L2Banks = 8
		cfg.Mem.DRAM.Channels = 5
		seq := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 2, 0xF), 1)
		cfg.CommitWorkers = 3
		for _, workers := range []int{3, 8} {
			par := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 2, 0xF), workers)
			diffSnapshots(t, fmt.Sprintf("writeback-stress/workers=%d", workers), seq, par)
		}
	})
}

// TestParallelNoCoalesce pins the ablation path (duplicate line requests)
// under the parallel engine.
func TestParallelNoCoalesce(t *testing.T) {
	cfg := DefaultConfig(4, 2, 4)
	run := func(workers int) snapshot {
		p := asm.MustAssemble(diffMemProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, _ := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		s, _ := New(cfg, memory, hier)
		s.NoCoalesce = true
		s.LoadProgram(p.Base, p.Insts)
		if err := activateAll(cfg, 2, 0xF)(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunParallel(workers); err != nil {
			t.Fatal(err)
		}
		return takeSnapshot(s, hier, cfg.Cores)
	}
	seq := run(1)
	par := run(4)
	diffSnapshots(t, "nocoalesce", seq, par)
}

// TestParallelTrapReturnsLowestCore checks the trap contract: the
// (cycle, core)-minimal trap is reported regardless of worker count.
func TestParallelTrapReturnsLowestCore(t *testing.T) {
	// Core 0 runs one cycle longer before its bad access than core 1 would,
	// so every core traps at the same pc but core 1 first; then both trap.
	prog := `
	csrr t0, cid
	li   t1, 0x7FFFFFF0
	lw   t2, 0(t1)
	ecall
	`
	cfg := DefaultConfig(2, 1, 1)
	for _, workers := range []int{1, 2} {
		p := asm.MustAssemble(prog, 0x1000, nil)
		memory := mem.NewMemory(1 << 16)
		hier, _ := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		s, _ := New(cfg, memory, hier)
		s.LoadProgram(p.Base, p.Insts)
		for c := 0; c < 2; c++ {
			if err := s.ActivateWarp(c, 0, 0x1000, 1); err != nil {
				t.Fatal(err)
			}
		}
		err := s.RunParallel(workers)
		trap, ok := err.(*Trap)
		if !ok {
			t.Fatalf("workers=%d: expected trap, got %v", workers, err)
		}
		if trap.Core != 0 {
			t.Errorf("workers=%d: trap on core %d, want the lowest core 0", workers, trap.Core)
		}
	}
}
