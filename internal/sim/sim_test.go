package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// rig assembles src, loads it at 0x1000 and returns a ready simulator with
// warp (0,0) activated over all threads.
func rig(t *testing.T, cfg Config, src string, defs map[string]int64) *Sim {
	t.Helper()
	s := rigNoStart(t, cfg, src, defs)
	if err := s.ActivateWarp(0, 0, 0x1000, fullMask(cfg.Threads)); err != nil {
		t.Fatal(err)
	}
	return s
}

func rigNoStart(t *testing.T, cfg Config, src string, defs map[string]int64) *Sim {
	t.Helper()
	p, err := asm.Assemble(src, 0x1000, defs)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, s *Sim) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func reg(t *testing.T, s *Sim, lane int, name string) uint32 {
	t.Helper()
	r, ok := regByName(name)
	if !ok {
		t.Fatalf("bad reg %q", name)
	}
	v, err := s.Reg(0, 0, lane, r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func regByName(name string) (uint8, bool) {
	names := map[string]uint8{
		"t0": 5, "t1": 6, "t2": 7, "a0": 10, "a1": 11, "a2": 12, "a3": 13,
		"a4": 14, "a5": 15, "s0": 8, "s1": 9,
	}
	r, ok := names[name]
	return r, ok
}

func cfg1c1w1t() Config { return DefaultConfig(1, 1, 1) }

func TestStraightLineALU(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 7
		li a1, 5
		add a2, a0, a1
		sub a3, a0, a1
		mul a4, a0, a1
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a2"); got != 12 {
		t.Errorf("a2 = %d", got)
	}
	if got := reg(t, s, 0, "a3"); got != 2 {
		t.Errorf("a3 = %d", got)
	}
	if got := reg(t, s, 0, "a4"); got != 35 {
		t.Errorf("a4 = %d", got)
	}
	if active, _ := s.WarpActive(0, 0); active {
		t.Error("warp still active after ecall")
	}
}

func TestLoopAndBranch(t *testing.T) {
	// Sum 1..10 = 55.
	s := rig(t, cfg1c1w1t(), `
		li t0, 10
		li a0, 0
	loop:
		add a0, a0, t0
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a0"); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 0x8000
		li t0, 1234
		sw t0, 0(a0)
		lw a1, 0(a0)
		sh t0, 8(a0)
		lhu a2, 8(a0)
		sb t0, 12(a0)
		lbu a3, 12(a0)
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a1"); got != 1234 {
		t.Errorf("lw = %d", got)
	}
	if got := reg(t, s, 0, "a2"); got != 1234 {
		t.Errorf("lhu = %d", got)
	}
	if got := reg(t, s, 0, "a3"); got != 1234&0xFF {
		t.Errorf("lbu = %d", got)
	}
	if v, _ := s.Memory().Read32(0x8000); v != 1234 {
		t.Errorf("memory = %d", v)
	}
}

func TestSignExtendingLoads(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 0x8000
		li t0, -2
		sw t0, 0(a0)
		lb a1, 0(a0)
		lh a2, 0(a0)
		lbu a3, 0(a0)
		lhu a4, 0(a0)
		ecall
	`, nil)
	mustRun(t, s)
	if got := int32(reg(t, s, 0, "a1")); got != -2 {
		t.Errorf("lb = %d", got)
	}
	if got := int32(reg(t, s, 0, "a2")); got != -2 {
		t.Errorf("lh = %d", got)
	}
	if got := reg(t, s, 0, "a3"); got != 0xFE {
		t.Errorf("lbu = %#x", got)
	}
	if got := reg(t, s, 0, "a4"); got != 0xFFFE {
		t.Errorf("lhu = %#x", got)
	}
}

func TestPerLaneCSRsAndSIMTExecution(t *testing.T) {
	// Each of 4 lanes stores its tid to 0x8000 + 4*tid.
	cfg := DefaultConfig(1, 2, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		slli t1, t0, 2
		li   t2, 0x8000
		add  t1, t1, t2
		sw   t0, 0(t1)
		ecall
	`, nil)
	mustRun(t, s)
	for lane := uint32(0); lane < 4; lane++ {
		if v, _ := s.Memory().Read32(0x8000 + 4*lane); v != lane {
			t.Errorf("lane %d stored %d", lane, v)
		}
	}
}

func TestIdentityCSRs(t *testing.T) {
	cfg := DefaultConfig(3, 2, 2)
	s := rigNoStart(t, cfg, `
		csrr a0, cid
		csrr a1, wid
		csrr a2, nt
		csrr a3, nw
		csrr a4, nc
		ecall
	`, nil)
	for core := 0; core < 3; core++ {
		for w := 0; w < 2; w++ {
			if err := s.ActivateWarp(core, w, 0x1000, 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustRun(t, s)
	for core := 0; core < 3; core++ {
		for wid := 0; wid < 2; wid++ {
			cidv, _ := s.Reg(core, wid, 0, 10)
			widv, _ := s.Reg(core, wid, 0, 11)
			nt, _ := s.Reg(core, wid, 0, 12)
			nw, _ := s.Reg(core, wid, 0, 13)
			nc, _ := s.Reg(core, wid, 0, 14)
			if cidv != uint32(core) || widv != uint32(wid) {
				t.Errorf("core %d warp %d: cid=%d wid=%d", core, wid, cidv, widv)
			}
			if nt != 2 || nw != 2 || nc != 3 {
				t.Errorf("geometry CSRs = %d %d %d", nt, nw, nc)
			}
		}
	}
}

func TestSplitJoinIfThen(t *testing.T) {
	// Lanes with tid odd add 100; all lanes then add 1.
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		andi t1, t0, 1
		li   a0, 0
		vx_split t1
		beqz t1, skip
		addi a0, a0, 100
	skip:
		vx_join
		addi a0, a0, 1
		ecall
	`, nil)
	mustRun(t, s)
	for lane := 0; lane < 4; lane++ {
		want := uint32(1)
		if lane%2 == 1 {
			want = 101
		}
		if got := reg(t, s, lane, "a0"); got != want {
			t.Errorf("lane %d a0 = %d, want %d", lane, got, want)
		}
	}
}

func TestSplitJoinUnanimous(t *testing.T) {
	// All lanes true: no divergence, body executed by all.
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		li t1, 1
		li a0, 0
		vx_split t1
		beqz t1, skip
		addi a0, a0, 5
	skip:
		vx_join
		ecall
	`, nil)
	mustRun(t, s)
	for lane := 0; lane < 4; lane++ {
		if got := reg(t, s, lane, "a0"); got != 5 {
			t.Errorf("lane %d a0 = %d", lane, got)
		}
	}

	// All lanes false: body skipped by all.
	s = rig(t, cfg, `
		li t1, 0
		li a0, 0
		vx_split t1
		beqz t1, skip
		addi a0, a0, 5
	skip:
		vx_join
		ecall
	`, nil)
	mustRun(t, s)
	for lane := 0; lane < 4; lane++ {
		if got := reg(t, s, lane, "a0"); got != 0 {
			t.Errorf("lane %d a0 = %d, want 0", lane, got)
		}
	}
}

func TestDivergentLoopBallotPattern(t *testing.T) {
	// Lane i iterates i+1 times: a0 accumulates its lane's iteration count.
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr s0, tid
		addi s1, s0, 1   # lane bound: tid+1
		li   a0, 0       # counter
	loop:
		slt  t0, a0, s1  # continue predicate
		vx_ballot t1, t0
		beqz t1, done
		vx_split t0
		beqz t0, skip
		addi a0, a0, 1
	skip:
		vx_join
		j loop
	done:
		ecall
	`, nil)
	mustRun(t, s)
	for lane := 0; lane < 4; lane++ {
		if got := reg(t, s, lane, "a0"); got != uint32(lane+1) {
			t.Errorf("lane %d count = %d, want %d", lane, got, lane+1)
		}
	}
}

func TestDivergentBranchTraps(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		beqz t0, target
	target:
		ecall
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
	if !strings.Contains(trap.Reason, "divergent") {
		t.Errorf("trap reason = %q", trap.Reason)
	}
}

func TestTMCZeroHaltsWarp(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	s := rig(t, cfg, `
		li t0, 0
		vx_tmc t0
		ebreak      # must never execute
	`, nil)
	mustRun(t, s)
}

func TestTMCNarrowsMask(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		li t0, 3     # keep lanes 0,1
		vx_tmc t0
		li a0, 9
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a0"); got != 9 {
		t.Errorf("lane 0 = %d", got)
	}
	if got := reg(t, s, 2, "a0"); got != 0 {
		t.Errorf("masked lane 2 wrote %d", got)
	}
}

func TestWspawn(t *testing.T) {
	cfg := DefaultConfig(1, 4, 2)
	s := rigNoStart(t, cfg, `
		csrr t0, wid
		bnez t0, child    # uniform: warp-level
		li   t1, 3        # spawn warps 1,2 (total 3)
		la   t2, child
		vx_wspawn t1, t2
	child:
		csrr a0, wid
		addi a0, a0, 40
		ecall
	`, nil)
	if err := s.ActivateWarp(0, 0, 0x1000, 3); err != nil {
		t.Fatal(err)
	}
	mustRun(t, s)
	for wid := 0; wid < 3; wid++ {
		v, _ := s.Reg(0, wid, 0, 10)
		if v != uint32(40+wid) {
			t.Errorf("warp %d a0 = %d, want %d", wid, v, 40+wid)
		}
	}
	if v, _ := s.Reg(0, 3, 0, 10); v != 0 {
		t.Errorf("unspawned warp 3 executed: a0=%d", v)
	}
}

func TestBarrierSynchronizesWarps(t *testing.T) {
	// Warp 0 busy-loops then stores; warps must all see the barrier release
	// after every warp has stored its marker.
	cfg := DefaultConfig(1, 3, 1)
	s := rigNoStart(t, cfg, `
		csrr t0, wid
		slli t1, t0, 2
		li   t2, 0x8000
		add  t1, t1, t2
		li   t3, 1
		sw   t3, 0(t1)
		li   t4, 0       # barrier id
		li   t5, 3       # expected warps
		vx_bar t4, t5
		# After the barrier, every warp checks all three flags are set.
		li   t2, 0x8000
		lw   a0, 0(t2)
		lw   a1, 4(t2)
		lw   a2, 8(t2)
		add  a0, a0, a1
		add  a0, a0, a2
		ecall
	`, nil)
	for w := 0; w < 3; w++ {
		if err := s.ActivateWarp(0, w, 0x1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustRun(t, s)
	for w := 0; w < 3; w++ {
		if v, _ := s.Reg(0, w, 0, 10); v != 3 {
			t.Errorf("warp %d saw %d flags", w, v)
		}
	}
}

func TestBarrierDeadlockDetected(t *testing.T) {
	cfg := DefaultConfig(1, 2, 1)
	s := rigNoStart(t, cfg, `
		li t4, 0
		li t5, 2
		vx_bar t4, t5
		ecall
	`, nil)
	// Only one warp arrives at a barrier expecting two.
	if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "deadlock") {
		t.Fatalf("want deadlock trap, got %v", err)
	}
}

func TestPredNarrowsButNeverEmpties(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		slti t1, t0, 2   # lanes 0,1
		vx_pred t1
		li a0, 7
		li t2, 0
		vx_pred t2       # would empty: must be ignored
		li a1, 8
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a0"); got != 7 {
		t.Errorf("lane 0 a0 = %d", got)
	}
	if got := reg(t, s, 2, "a0"); got != 0 {
		t.Errorf("lane 2 a0 = %d, want 0 (predicated off)", got)
	}
	if got := reg(t, s, 1, "a1"); got != 8 {
		t.Errorf("lane 1 a1 = %d (pred-to-empty must be ignored)", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li t0, 3
		li t1, 4
		fcvt.s.w f0, t0
		fcvt.s.w f1, t1
		fadd.s f2, f0, f1
		fmul.s f3, f0, f1
		fdiv.s f4, f1, f0
		fsqrt.s f5, f1
		fmadd.s f6, f0, f1, f2
		fcvt.w.s a0, f2
		fcvt.w.s a1, f3
		flt.s a2, f0, f1
		fle.s a3, f1, f0
		ecall
	`, nil)
	mustRun(t, s)
	if got := reg(t, s, 0, "a0"); got != 7 {
		t.Errorf("3+4 = %d", got)
	}
	if got := reg(t, s, 0, "a1"); got != 12 {
		t.Errorf("3*4 = %d", got)
	}
	if got := reg(t, s, 0, "a2"); got != 1 {
		t.Errorf("3<4 = %d", got)
	}
	if got := reg(t, s, 0, "a3"); got != 0 {
		t.Errorf("4<=3 = %d", got)
	}
	f4, _ := s.FReg(0, 0, 0, 4)
	if math.Float32frombits(f4) != float32(4)/3 {
		t.Errorf("fdiv = %v", math.Float32frombits(f4))
	}
	f5, _ := s.FReg(0, 0, 0, 5)
	if math.Float32frombits(f5) != 2 {
		t.Errorf("sqrt(4) = %v", math.Float32frombits(f5))
	}
	f6, _ := s.FReg(0, 0, 0, 6)
	if math.Float32frombits(f6) != 19 {
		t.Errorf("fma(3,4,7) = %v", math.Float32frombits(f6))
	}
}

func TestOutOfBoundsLoadTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 0x7FFFFFF0
		lw a1, 0(a0)
		ecall
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "out of bounds") {
		t.Fatalf("want OOB trap, got %v", err)
	}
}

func TestMisalignedAccessTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 0x8002
		lw a1, 0(a0)
		ecall
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "misaligned") {
		t.Fatalf("want misalignment trap, got %v", err)
	}
}

func TestFetchOutsideProgramTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li a0, 0
		jr a0
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "fetch") {
		t.Fatalf("want fetch trap, got %v", err)
	}
}

func TestExecutingDataWordTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		j data
	data:
		.word 0xFFFFFFFF
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestJoinEmptyStackTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), "vx_join\necall", nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "IPDOM") {
		t.Fatalf("want IPDOM trap, got %v", err)
	}
}

func TestScoreboardEnforcesLoadLatency(t *testing.T) {
	// A load followed immediately by a consumer: total cycles must include
	// the full memory latency (cold miss to DRAM), proving the dependent
	// add waited.
	cfg := cfg1c1w1t()
	s := rig(t, cfg, `
		li a0, 0x8000
		lw a1, 0(a0)
		addi a2, a1, 1
		ecall
	`, nil)
	start := s.Cycle()
	mustRun(t, s)
	elapsed := s.Cycle() - start
	memCfg := cfg.Mem
	coldMiss := uint64(memCfg.L1.HitLatency + memCfg.L2.HitLatency + memCfg.DRAM.Latency + memCfg.L1.LineBytes/memCfg.DRAM.BytesPerCycle)
	if elapsed < coldMiss {
		t.Errorf("elapsed %d < cold miss latency %d; dependent add did not wait", elapsed, coldMiss)
	}
}

func TestIndependentWarpsHideMemoryLatency(t *testing.T) {
	// Two warps issuing independent cold loads + dependent adds should
	// overlap their stalls: the two-warp run must be much faster than 2x a
	// one-warp run of the same program.
	prog := `
		csrr t0, wid
		slli t0, t0, 8
		li a0, 0x8000
		add a0, a0, t0
		lw a1, 0(a0)
		addi a2, a1, 1
		ecall
	`
	run := func(nwarps int) uint64 {
		cfg := DefaultConfig(1, 2, 1)
		s := rigNoStart(t, cfg, prog, nil)
		for w := 0; w < nwarps; w++ {
			if err := s.ActivateWarp(0, w, 0x1000, 1); err != nil {
				t.Fatal(err)
			}
		}
		mustRun(t, s)
		return s.Cycle()
	}
	one := run(1)
	two := run(2)
	if two >= 2*one {
		t.Errorf("no latency hiding: 1 warp %d cycles, 2 warps %d", one, two)
	}
	if two > one+one/2 {
		t.Errorf("poor latency hiding: 1 warp %d cycles, 2 warps %d", one, two)
	}
}

func TestCoalescingReducesLineRequests(t *testing.T) {
	// 4 lanes load consecutive words: one line request. Strided by 64B:
	// four requests.
	cfg := DefaultConfig(1, 1, 4)
	consec := rig(t, cfg, `
		csrr t0, tid
		slli t1, t0, 2
		li   t2, 0x8000
		add  t1, t1, t2
		lw   a0, 0(t1)
		ecall
	`, nil)
	mustRun(t, consec)
	if got := consec.TotalStats().LineRequests; got != 1 {
		t.Errorf("consecutive lanes made %d line requests, want 1", got)
	}

	strided := rig(t, cfg, `
		csrr t0, tid
		slli t1, t0, 6
		li   t2, 0x8000
		add  t1, t1, t2
		lw   a0, 0(t1)
		ecall
	`, nil)
	mustRun(t, strided)
	if got := strided.TotalStats().LineRequests; got != 4 {
		t.Errorf("strided lanes made %d line requests, want 4", got)
	}
}

func TestNoCoalesceAblation(t *testing.T) {
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		slli t1, t0, 2
		li   t2, 0x8000
		add  t1, t1, t2
		lw   a0, 0(t1)
		ecall
	`, nil)
	s.NoCoalesce = true
	mustRun(t, s)
	if got := s.TotalStats().LineRequests; got != 4 {
		t.Errorf("NoCoalesce made %d line requests, want 4", got)
	}
}

func TestObserverSeesIssues(t *testing.T) {
	cfg := cfg1c1w1t()
	s := rig(t, cfg, `
		li a0, 1
		li a1, 2
		add a2, a0, a1
		ecall
	`, nil)
	var events []IssueEvent
	s.SetObserver(func(e IssueEvent) { events = append(events, e) })
	mustRun(t, s)
	if len(events) != 4 {
		t.Fatalf("observed %d events, want 4", len(events))
	}
	if events[0].PC != 0x1000 || events[3].PC != 0x100C {
		t.Errorf("event PCs = %#x..%#x", events[0].PC, events[3].PC)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle <= events[i-1].Cycle {
			t.Errorf("non-monotonic cycles %d..%d", events[i-1].Cycle, events[i].Cycle)
		}
	}
}

func TestMulticoreParallelism(t *testing.T) {
	// The same independent workload on 1 vs 4 cores: 4 cores should be
	// close to 4x faster (no shared bottleneck for ALU work).
	prog := `
		li t0, 2000
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`
	run := func(cores int) uint64 {
		cfg := DefaultConfig(cores, 1, 1)
		s := rigNoStart(t, cfg, prog, nil)
		for c := 0; c < cores; c++ {
			if err := s.ActivateWarp(c, 0, 0x1000, 1); err != nil {
				t.Fatal(err)
			}
		}
		mustRun(t, s)
		return s.Cycle()
	}
	one := run(1)
	four := run(4)
	if four > one+one/10 {
		t.Errorf("4 cores took %d cycles vs %d for 1 core on independent work", four, one)
	}
}

func TestGTOSchedulerRuns(t *testing.T) {
	cfg := DefaultConfig(1, 4, 2)
	cfg.Sched = SchedGTO
	s := rigNoStart(t, cfg, `
		li t0, 100
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`, nil)
	for w := 0; w < 4; w++ {
		if err := s.ActivateWarp(0, w, 0x1000, 3); err != nil {
			t.Fatal(err)
		}
	}
	mustRun(t, s)
	if s.TotalStats().Issued == 0 {
		t.Error("no instructions issued under GTO")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, Warps: 1, Threads: 1, Lat: DefaultLatencies()},
		{Cores: 1, Warps: 0, Threads: 1, Lat: DefaultLatencies()},
		{Cores: 1, Warps: 1, Threads: 65, Lat: DefaultLatencies()},
		{Cores: 1, Warps: 1, Threads: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig(64, 32, 32).Validate(); err != nil {
		t.Errorf("max paper config rejected: %v", err)
	}
}

func TestHPAndName(t *testing.T) {
	c := DefaultConfig(4, 8, 16)
	if c.HP() != 512 {
		t.Errorf("HP = %d", c.HP())
	}
	if c.Name() != "4c8w16t" {
		t.Errorf("Name = %s", c.Name())
	}
}

func TestActivateWarpValidation(t *testing.T) {
	cfg := DefaultConfig(1, 1, 2)
	s := rigNoStart(t, cfg, "ecall", nil)
	if err := s.ActivateWarp(1, 0, 0x1000, 1); err == nil {
		t.Error("bad core accepted")
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 0); err == nil {
		t.Error("zero mask accepted")
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 0xF); err == nil {
		t.Error("over-wide mask accepted")
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 3); err != nil {
		t.Error(err)
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 3); err == nil {
		t.Error("double activation accepted")
	}
}

func TestCycleLimit(t *testing.T) {
	cfg := cfg1c1w1t()
	cfg.MaxCycles = 100
	s := rig(t, cfg, `
	loop:
		j loop
	`, nil)
	if err := s.Run(); err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Fatalf("want cycle-limit error, got %v", err)
	}
}

func TestCSRWriteTraps(t *testing.T) {
	s := rig(t, cfg1c1w1t(), `
		li t0, 5
		csrw 0x800, t0
		ecall
	`, nil)
	err := s.Run()
	var trap *Trap
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "read-only") {
		t.Fatalf("want CSR trap, got %v", err)
	}
}

func TestStallAccounting(t *testing.T) {
	// A chain of dependent cold loads must record memory stalls.
	s := rig(t, cfg1c1w1t(), `
		li a0, 0x8000
		lw a1, 0(a0)
		lw a2, 0(a1)
		ecall
	`, nil)
	// Make the pointed-to location valid: 0x8000 holds 0x9000.
	s.Memory().Write32(0x8000, 0x9000)
	mustRun(t, s)
	st := s.TotalStats()
	if st.MemStall == 0 {
		t.Errorf("no memory stalls recorded: %+v", st)
	}
}

func TestNestedSplitJoin(t *testing.T) {
	// Nested divergence: lanes 2,3 take outer; of those, lane 3 takes inner.
	cfg := DefaultConfig(1, 1, 4)
	s := rig(t, cfg, `
		csrr t0, tid
		li   a0, 0
		slti t1, t0, 2
		xori t1, t1, 1      # t1 = tid >= 2
		vx_split t1
		beqz t1, outer_skip
		addi a0, a0, 10     # lanes 2,3
		addi t2, t0, -3
		seqz t2, t2         # t2 = tid == 3
		vx_split t2
		beqz t2, inner_skip
		addi a0, a0, 100    # lane 3 only
	inner_skip:
		vx_join
		addi a0, a0, 1      # lanes 2,3
	outer_skip:
		vx_join
		addi a0, a0, 1000   # all lanes
		ecall
	`, nil)
	mustRun(t, s)
	want := map[int]uint32{0: 1000, 1: 1000, 2: 1011, 3: 1111}
	for lane, w := range want {
		if got := reg(t, s, lane, "a0"); got != w {
			t.Errorf("lane %d a0 = %d, want %d", lane, got, w)
		}
	}
}
