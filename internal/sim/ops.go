package sim

import (
	"math"

	"repro/internal/isa"
)

// intALU computes register-register integer ops.
func intALU(op isa.Op, a, b uint32) uint32 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.SLL:
		return a << (b & 31)
	case isa.SLT:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case isa.SLTU:
		if a < b {
			return 1
		}
		return 0
	case isa.XOR:
		return a ^ b
	case isa.SRL:
		return a >> (b & 31)
	case isa.SRA:
		return uint32(int32(a) >> (b & 31))
	case isa.OR:
		return a | b
	case isa.AND:
		return a & b
	case isa.MUL:
		return a * b
	case isa.MULH:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case isa.MULHSU:
		return uint32(uint64(int64(int32(a))*int64(b)) >> 32)
	case isa.MULHU:
		return uint32(uint64(a) * uint64(b) >> 32)
	case isa.DIV:
		if b == 0 {
			return ^uint32(0)
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return a
		}
		return uint32(int32(a) / int32(b))
	case isa.DIVU:
		if b == 0 {
			return ^uint32(0)
		}
		return a / b
	case isa.REM:
		if b == 0 {
			return a
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case isa.REMU:
		if b == 0 {
			return a
		}
		return a % b
	}
	panic("intALU: bad op " + op.String())
}

// intALUImm computes register-immediate integer ops.
func intALUImm(op isa.Op, a uint32, imm int32) uint32 {
	switch op {
	case isa.ADDI:
		return a + uint32(imm)
	case isa.SLTI:
		if int32(a) < imm {
			return 1
		}
		return 0
	case isa.SLTIU:
		if a < uint32(imm) {
			return 1
		}
		return 0
	case isa.XORI:
		return a ^ uint32(imm)
	case isa.ORI:
		return a | uint32(imm)
	case isa.ANDI:
		return a & uint32(imm)
	case isa.SLLI:
		return a << uint(imm&31)
	case isa.SRLI:
		return a >> uint(imm&31)
	case isa.SRAI:
		return uint32(int32(a) >> uint(imm&31))
	}
	panic("intALUImm: bad op " + op.String())
}

// intLatency selects the functional-unit latency class of an integer op.
func intLatency(op isa.Op, lat Latencies) int {
	switch op {
	case isa.MUL, isa.MULH, isa.MULHSU, isa.MULHU:
		return lat.Mul
	case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		return lat.Div
	}
	return lat.ALU
}

// branchTaken evaluates a conditional branch for one lane.
func branchTaken(op isa.Op, a, b uint32) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int32(a) < int32(b)
	case isa.BGE:
		return int32(a) >= int32(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	panic("branchTaken: bad op " + op.String())
}
