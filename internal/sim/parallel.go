package sim

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
)

// This file implements the parallel multi-core engine. One simulated device
// cycle is executed as a bulk-synchronous step:
//
//  1. Issue phase (concurrent). The cores are partitioned into contiguous
//     ranges, one per worker. Each worker scans its cores exactly like the
//     sequential engine — scheduling, scoreboards, functional execution and
//     the private L1 front end are all core-local — but the shared half of
//     every memory instruction (banked L2, DRAM) is queued in the core's
//     memDefer slot instead of being walked immediately.
//  2. Commit phase. After a barrier, the queued misses are applied to the
//     shared hierarchy. Cycles with little deferred work (or
//     Config.CommitWorkers=1) use the single-threaded global commit: every
//     miss walks mem.Hierarchy.SharedAccess in ascending core order, which
//     is exactly the order the sequential engine interleaves them at this
//     cycle. Cycles with enough work shard the commit over the worker
//     pool in two sub-phases:
//
//       a. Bank phase: worker w owns L2 banks b ≡ w (mod CommitWorkers)
//          and applies, for each owned bank, the bank-local halves of all
//          deferred misses (dirty-L1-victim absorbs and L2 lookups/fills)
//          in the global (cycle, core, miss) order restricted to that
//          bank. DRAM work is not applied yet: it is appended to the
//          bank's op queue tagged with its global order key.
//       b. Channel phase: after a barrier, worker w owns DRAM channels
//          c ≡ w (mod CommitWorkers), gathers its channels' ops from all
//          bank queues, sorts them by the global key, and applies them
//          (mem.Hierarchy.ChannelRead/ChannelWriteback) in that order.
//
//     Because L2 banks only interact through DRAM, and DRAM channels not
//     at all, restricting the global order to each bank and each channel
//     preserves every ordering the memory model can observe: the sharded
//     and global commits are byte-identical in all statistics and timing.
//     Finally the coordinator folds each deferred load's per-miss
//     completions into its warp's scoreboard. Completion times always lie
//     at least one cycle in the future, so deferring the patch past the
//     issue phase cannot be observed by any in-order pipeline.
//  3. The coordinator aggregates activity and wake times, advances the
//     device cycle (skipping idle gaps the same way the sequential engine
//     does, with identical stall attribution), and releases the next step.
//
// Because every shared-state mutation happens in an order the memory model
// cannot distinguish from the sequential engine's, cycle counts, per-core
// counters, cache and per-channel DRAM statistics are byte-identical for
// kernels whose cores do not race on device memory (the OpenCL-style
// workloads in this repository never do: each work item writes only
// addresses derived from its own gid). The only intentional divergence is
// trap handling: on an execution trap the (cycle, core)-minimal trap is
// returned, as in the sequential engine, but same-cycle side effects of
// higher-numbered cores may already be visible and — under the event
// engine — stall spans still pending on other cores stay unsettled, so
// statistics after an execution trap are unspecified. Deadlock traps and
// the MaxCycles deadline are decided by the coordinator after a complete
// cycle and stay byte-identical.
//
// Both engine flavours run through this machinery: the event engine
// (event.go, the default) gives each worker a wake queue over its core
// range so an issue phase touches only due cores, while Config.TickEngine
// selects the legacy full-range scan step as the differential oracle.
//
// Synchronization is a generation-counter spin barrier: workers park in a
// Gosched loop between steps and the coordinator publishes the phase kind
// before each generation bump. Simulated cycles are far shorter than any
// channel round trip, so avoiding scheduler wakeups per cycle is what makes
// per-cycle synchronization affordable; on a single-CPU host the Gosched
// calls keep the engine live (if slow), and resolveWorkers normally routes
// such hosts to the sequential engine anyway via Config.Workers=NumCPU.

// parWorker is one worker's core range and per-step result slate. Under
// the event engine each worker also owns the wake queue of its core range
// (q) and gathers the cores that deferred memory work this cycle (defers),
// so the coordinator's commit list is the concatenation of the workers'
// lists instead of an O(total cores) scan. The trailing pad keeps adjacent
// workers' hot fields on distinct cache lines.
type parWorker struct {
	lo, hi    int
	anyActive bool
	issuedAny bool
	minWake   uint64
	err       error
	q         eventQueue
	defers    []int
	_         [64]byte
}

// Commit-phase kinds, published by the coordinator before each barrier
// release so the pool knows which step body to run.
const (
	phaseIssue = iota
	phaseBank
	phaseChannel
)

// parCommitMinMisses is the auto-mode (CommitWorkers=0) cutover: cycles
// deferring fewer line misses than this commit through the single-threaded
// global path, because two extra barrier round trips cost more than the
// walks they would parallelize. Both paths are byte-identical, so the
// cutover affects wall-clock only, never results.
const parCommitMinMisses = 24

// dramOp is one deferred main-memory operation, produced by a bank worker
// and applied by the owning channel worker. seq is the global commit-order
// key within the cycle — (core << 8) | (miss index << 2) | sub — where sub
// orders the up-to-three DRAM side effects of one miss exactly like
// SharedAccess: 0 the dirty-L1-victim absorb's writeback, 1 the L2 fill
// victim's writeback, 2 the line read.
type dramOp struct {
	addr uint32
	ch   int32 // target channel, precomputed at emit time
	read bool
	at   uint64
	seq  uint64
	done *uint64 // completion sink for reads (a md.missDone slot)
}

func (s *Sim) runParallel(nw int) error {
	limit := s.cfg.MaxCycles
	if limit == 0 {
		limit = 1 << 40
	}
	deadline := s.cycle + limit

	s.par = true
	defer func() { s.par = false }()

	// A previous run that trapped may have returned before its commit
	// phase; drop any stale deferred requests so they cannot replay into
	// the shared hierarchy at the wrong time.
	for i := range s.cores {
		s.cores[i].md.active = false
	}

	ws := make([]parWorker, nw)
	tick := s.cfg.TickEngine
	for i := range ws {
		ws[i].lo = i * len(s.cores) / nw
		ws[i].hi = (i + 1) * len(s.cores) / nw
		if !tick {
			ws[i].q.init(s, ws[i].lo, ws[i].hi, s.cycle)
		}
	}

	ncw := s.resolveCommitWorkers(nw)
	if ncw > 1 {
		if len(s.bankOps) != s.hier.L2Banks() {
			s.bankOps = make([][]dramOp, s.hier.L2Banks())
		}
		if len(s.chanOps) != s.hier.DRAMChannels() {
			s.chanOps = make([][]dramOp, s.hier.DRAMChannels())
		}
	}

	// stepTick runs one issue phase over a worker's cores under the legacy
	// tick engine. It is the body of the sequential tick loop's per-cycle
	// core loop, minus the shared-memory walks (deferred via s.par) and
	// with results gathered per worker.
	stepTick := func(pw *parWorker) {
		pw.anyActive, pw.issuedAny = false, false
		pw.minWake = noWake
		pw.err = nil
		for i := pw.lo; i < pw.hi; i++ {
			c := &s.cores[i]
			if c.active == 0 {
				continue
			}
			pw.anyActive = true
			if c.nextWake > s.cycle {
				if c.nextWake < pw.minWake {
					pw.minWake = c.nextWake
				}
				s.accountStall(c, 1)
				continue
			}
			issued, wake, err := s.issue(c)
			if err != nil {
				// Stop like the sequential engine stops its scan; the
				// coordinator returns the lowest-core trap of this cycle.
				pw.err = err
				return
			}
			if issued {
				pw.issuedAny = true
				c.nextWake = s.cycle + 1
			} else {
				c.nextWake = wake
				if wake < pw.minWake {
					pw.minWake = wake
				}
				s.accountStall(c, 1)
			}
		}
	}

	// stepEvent is the event-engine issue phase: the body of the sequential
	// event loop's due-core pass over the worker's wake queue, gathering the
	// cycle's deferred-commit cores as it goes. pw.minWake reports the
	// queue's next timed wake for the coordinator's no-issue jump.
	stepEvent := func(pw *parWorker) {
		pw.issuedAny = false
		pw.err = nil
		pw.defers = pw.defers[:0]
		q := &pw.q
		due := q.collectDue(s.cycle)
		q.running = q.running[:0]
		for _, ci := range due {
			c := &s.cores[ci]
			if c.active == 0 {
				q.live--
				continue
			}
			s.flushStall(c)
			issued, wake, err := s.issue(c)
			if err != nil {
				// Stop like the tick step stops its scan. Pending stall
				// spans of other cores stay unsettled: statistics after a
				// parallel-engine trap are unspecified (see the trap note in
				// the file comment).
				pw.err = err
				return
			}
			switch {
			case issued:
				pw.issuedAny = true
				c.nextWake = s.cycle + 1
				c.stallFrom = noWake
				q.running = append(q.running, ci)
				if c.md.active {
					pw.defers = append(pw.defers, int(ci))
				}
			case wake == noWake:
				c.nextWake = noWake
				c.stallFrom = s.cycle
				q.parked = append(q.parked, ci)
			default:
				c.nextWake = wake
				c.stallFrom = s.cycle
				q.push(wake, ci)
			}
		}
		pw.anyActive = q.live > 0
		pw.minWake = q.next()
	}

	issueStep := stepEvent
	if tick {
		issueStep = stepTick
	}

	// bankStep/chanStep run one worker's share of a sharded commit. Banks
	// and channels are striped over the first ncw workers; surplus workers
	// pass the barrier without touching shared state.
	bankStep := func(wi int) {
		if wi >= ncw {
			return
		}
		for b := wi; b < len(s.bankOps); b += ncw {
			s.commitBank(b)
		}
	}
	chanStep := func(wi int) {
		if wi >= ncw {
			return
		}
		s.commitChannels(wi, ncw)
	}

	var (
		gen   atomic.Uint64 // bumped by the coordinator to release a step
		done  atomic.Int64  // workers finished with the current step
		stop  atomic.Bool
		phase int // published before the gen bump, read after observing it
	)
	for wi := 1; wi < nw; wi++ {
		go func(wi int, pw *parWorker) {
			var last uint64
			for {
				for gen.Load() == last {
					if stop.Load() {
						return
					}
					runtime.Gosched()
				}
				last++
				switch phase {
				case phaseIssue:
					issueStep(pw)
				case phaseBank:
					bankStep(wi)
				case phaseChannel:
					chanStep(wi)
				}
				done.Add(1)
			}
		}(wi, &ws[wi])
	}
	// Workers are only ever parked in the spin loop when we return, so
	// setting the flag (without bumping gen) is enough to shut them down.
	defer stop.Store(true)

	release := func(p int) {
		done.Store(0)
		phase = p
		gen.Add(1)
	}
	barrier := func() {
		for done.Load() != int64(nw-1) {
			runtime.Gosched()
		}
	}

	for {
		release(phaseIssue)
		issueStep(&ws[0]) // the coordinator doubles as worker 0
		barrier()

		anyActive, issuedAny := false, false
		minWake := noWake
		var firstErr error
		for wi := range ws {
			pw := &ws[wi]
			if pw.err != nil && firstErr == nil {
				firstErr = pw.err // ranges ascend: first is the lowest core
			}
			anyActive = anyActive || pw.anyActive
			issuedAny = issuedAny || pw.issuedAny
			if pw.minWake < minWake {
				minWake = pw.minWake
			}
		}
		if firstErr != nil {
			return firstErr
		}

		// Commit phase: shared-memory requests in (cycle, core) order —
		// globally on the serial path, restricted to each bank/channel on
		// the sharded path. The two are byte-identical; the choice is a
		// pure wall-clock trade (see parCommitMinMisses). The event workers
		// gathered their deferring cores during the issue phase (ranges and
		// per-range due lists ascend, so the concatenation is in core
		// order); the tick engine scans all cores, as it does everywhere.
		list := s.commitList[:0]
		misses := 0
		if tick {
			for i := range s.cores {
				if s.cores[i].md.active {
					list = append(list, i)
					misses += s.cores[i].md.nMiss
				}
			}
		} else {
			for wi := range ws {
				for _, ci := range ws[wi].defers {
					list = append(list, ci)
					misses += s.cores[ci].md.nMiss
				}
			}
		}
		s.commitList = list
		if len(list) > 0 {
			shard := ncw > 1
			if s.cfg.CommitWorkers == 0 && (misses < parCommitMinMisses || len(list) < 2) {
				shard = false
			}
			if shard {
				release(phaseBank)
				bankStep(0)
				barrier()
				release(phaseChannel)
				chanStep(0)
				barrier()
				s.commitPatch()
			} else {
				for _, ci := range list {
					s.commitDeferred(&s.cores[ci])
				}
			}
		}

		if !anyActive {
			return nil
		}
		if issuedAny {
			s.cycle++
		} else if minWake == noWake {
			// No timed event on any worker: every remaining live core is
			// parked on a barrier that can never fill.
			if !tick {
				s.flushAllStalls(s.cycle + 1)
			}
			return s.deadlockTrap()
		} else if tick {
			s.jumpTo(minWake)
		} else {
			s.cycle = minWake // stall spans settle lazily at the next pop
		}
		if s.cycle > deadline {
			if !tick {
				s.flushAllStalls(s.cycle)
			}
			return fmt.Errorf("sim: exceeded cycle limit %d on %s", limit, s.cfg.Name())
		}
	}
}

// resolveCommitWorkers clamps Config.CommitWorkers to the issue worker
// pool; 0 follows the pool size.
func (s *Sim) resolveCommitWorkers(nw int) int {
	cw := s.cfg.CommitWorkers
	if cw == 0 || cw > nw {
		cw = nw
	}
	if cw < 1 {
		cw = 1
	}
	return cw
}

// commitBank applies the bank-local halves of every deferred miss whose
// line (or dirty L1 victim) lives in bank b, in the global (core, miss)
// order restricted to that bank, and routes the resulting DRAM work to the
// bank's op queue. Runs concurrently for distinct banks.
func (s *Sim) commitBank(b int) {
	ops := s.bankOps[b][:0]
	h := s.hier
	for _, ci := range s.commitList {
		d := &s.cores[ci].md
		base := uint64(ci) << 8
		for i := 0; i < d.nMiss; i++ {
			m := &d.miss[i]
			if m.WB && h.BankOf(m.WBAddr) == b {
				if v, wb := h.BankAbsorbWriteback(m.WBAddr, m.At); wb {
					ops = append(ops, dramOp{addr: v, ch: int32(h.ChannelOf(v)),
						at: m.At, seq: base | uint64(i)<<2})
				}
			}
			if h.BankOf(m.Addr) != b {
				continue
			}
			res, fetchAt, needDRAM, victim, hasVictim := h.BankFill(*m)
			if hasVictim {
				ops = append(ops, dramOp{addr: victim, ch: int32(h.ChannelOf(victim)),
					at: fetchAt, seq: base | uint64(i)<<2 | 1})
			}
			if needDRAM {
				ops = append(ops, dramOp{addr: m.Addr, ch: int32(h.ChannelOf(m.Addr)), read: true,
					at: fetchAt, seq: base | uint64(i)<<2 | 2, done: &d.missDone[i]})
			} else {
				d.missDone[i] = res.Done
			}
		}
	}
	s.bankOps[b] = ops
}

// commitChannels applies one worker's share of the cycle's DRAM ops: a
// single pass over the bank queues routes the ops of the worker's channels
// (ch ≡ wi mod ncw) into per-channel buckets, then each bucket is sorted
// back into global order by the seq key and drained. Distinct workers own
// disjoint channel sets, so the buckets and channel states never overlap.
func (s *Sim) commitChannels(wi, ncw int) {
	for ch := wi; ch < len(s.chanOps); ch += ncw {
		s.chanOps[ch] = s.chanOps[ch][:0]
	}
	for b := range s.bankOps {
		for j := range s.bankOps[b] {
			op := &s.bankOps[b][j]
			if ch := int(op.ch); ch%ncw == wi {
				s.chanOps[ch] = append(s.chanOps[ch], *op)
			}
		}
	}
	h := s.hier
	for ch := wi; ch < len(s.chanOps); ch += ncw {
		ops := s.chanOps[ch]
		slices.SortFunc(ops, func(a, b dramOp) int { return cmp.Compare(a.seq, b.seq) })
		for i := range ops {
			op := &ops[i]
			if op.read {
				*op.done = h.ChannelRead(op.addr, op.at)
			} else {
				h.ChannelWriteback(op.addr, op.at)
			}
		}
		s.chanOps[ch] = ops
	}
}

// commitPatch folds each deferred load's per-miss completions into its
// warp's scoreboard after a sharded commit. Single-threaded (coordinator).
func (s *Sim) commitPatch() {
	for _, ci := range s.commitList {
		c := &s.cores[ci]
		d := &c.md
		d.active = false
		done := d.partialDone
		for i := 0; i < d.nMiss; i++ {
			if d.missDone[i] > done {
				done = d.missDone[i]
			}
			if s.mshrs > 0 {
				c.mshr = append(c.mshr, d.missDone[i])
			}
		}
		if d.isLoad {
			w := &c.warps[d.wid]
			if d.fp {
				w.pendF[d.rd] = done
			} else if d.rd != 0 {
				w.pendI[d.rd] = done
			}
		}
	}
}

// commitDeferred completes one core's queued memory instruction against the
// shared levels via the single-threaded global path and patches the load's
// scoreboard entry. Must run in ascending core order within the cycle.
func (s *Sim) commitDeferred(c *simCore) {
	d := &c.md
	d.active = false
	done := d.partialDone
	for i := 0; i < d.nMiss; i++ {
		r := s.hier.SharedAccess(d.miss[i])
		if r.Done > done {
			done = r.Done
		}
		if s.mshrs > 0 {
			c.mshr = append(c.mshr, r.Done)
		}
	}
	if d.isLoad {
		w := &c.warps[d.wid]
		if d.fp {
			w.pendF[d.rd] = done
		} else if d.rd != 0 {
			w.pendI[d.rd] = done
		}
	}
}
