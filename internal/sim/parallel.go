package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// This file implements the parallel multi-core engine. One simulated device
// cycle is executed as a bulk-synchronous step:
//
//  1. Issue phase (concurrent). The cores are partitioned into contiguous
//     ranges, one per worker. Each worker scans its cores exactly like the
//     sequential engine — scheduling, scoreboards, functional execution and
//     the private L1 front end are all core-local — but the shared half of
//     every memory instruction (banked L2, DRAM) is queued in the core's
//     memDefer slot instead of being walked immediately.
//  2. Commit phase (single-threaded). After a barrier, the queued misses
//     are applied to the shared hierarchy in ascending core order, which is
//     exactly the order the sequential engine interleaves them at this
//     cycle, and each load's completion time is patched into its warp's
//     scoreboard. Completion times always lie at least one cycle in the
//     future, so deferring the patch past the issue phase cannot be
//     observed by any in-order pipeline.
//  3. The coordinator aggregates activity and wake times, advances the
//     device cycle (skipping idle gaps the same way the sequential engine
//     does, with identical stall attribution), and releases the next step.
//
// Because every shared-state mutation happens in the same global order as
// under the sequential engine, cycle counts, per-core counters, cache and
// DRAM statistics are byte-identical for kernels whose cores do not race on
// device memory (the OpenCL-style workloads in this repository never do:
// each work item writes only addresses derived from its own gid). The only
// intentional divergence is trap handling: on an execution trap the
// (cycle, core)-minimal trap is returned, as in the sequential engine, but
// same-cycle side effects of higher-numbered cores may already be visible.
//
// Synchronization is a generation-counter spin barrier: workers park in a
// Gosched loop between steps. Simulated cycles are far shorter than any
// channel round trip, so avoiding scheduler wakeups per cycle is what makes
// per-cycle synchronization affordable; on a single-CPU host the Gosched
// calls keep the engine live (if slow), and resolveWorkers normally routes
// such hosts to the sequential engine anyway via Config.Workers=NumCPU.

// parWorker is one worker's core range and per-step result slate. The
// trailing pad keeps adjacent workers' hot fields on distinct cache lines.
type parWorker struct {
	lo, hi    int
	anyActive bool
	issuedAny bool
	minWake   uint64
	err       error
	_         [64]byte
}

func (s *Sim) runParallel(nw int) error {
	limit := s.cfg.MaxCycles
	if limit == 0 {
		limit = 1 << 40
	}
	deadline := s.cycle + limit

	s.par = true
	defer func() { s.par = false }()

	// A previous run that trapped may have returned before its commit
	// phase; drop any stale deferred requests so they cannot replay into
	// the shared hierarchy at the wrong time.
	for i := range s.cores {
		s.cores[i].md.active = false
	}

	ws := make([]parWorker, nw)
	for i := range ws {
		ws[i].lo = i * len(s.cores) / nw
		ws[i].hi = (i + 1) * len(s.cores) / nw
	}

	// step runs one issue phase over a worker's cores. It is the body of
	// the sequential engine's per-cycle core loop, minus the shared-memory
	// walks (deferred via s.par) and with results gathered per worker.
	step := func(pw *parWorker) {
		pw.anyActive, pw.issuedAny = false, false
		pw.minWake = noWake
		pw.err = nil
		for i := pw.lo; i < pw.hi; i++ {
			c := &s.cores[i]
			if c.active == 0 {
				continue
			}
			pw.anyActive = true
			if c.nextWake > s.cycle {
				if c.nextWake < pw.minWake {
					pw.minWake = c.nextWake
				}
				s.accountStall(c, 1)
				continue
			}
			issued, wake, err := s.issueOne(c)
			if err != nil {
				// Stop like the sequential engine stops its scan; the
				// coordinator returns the lowest-core trap of this cycle.
				pw.err = err
				return
			}
			if issued {
				pw.issuedAny = true
				c.nextWake = s.cycle + 1
			} else {
				c.nextWake = wake
				if wake < pw.minWake {
					pw.minWake = wake
				}
				s.accountStall(c, 1)
			}
		}
	}

	var (
		gen  atomic.Uint64 // bumped by the coordinator to release a step
		done atomic.Int64  // workers finished with the current step
		stop atomic.Bool
	)
	for wi := 1; wi < nw; wi++ {
		go func(pw *parWorker) {
			var last uint64
			for {
				for gen.Load() == last {
					if stop.Load() {
						return
					}
					runtime.Gosched()
				}
				last++
				step(pw)
				done.Add(1)
			}
		}(&ws[wi])
	}
	// Workers are only ever parked in the spin loop when we return, so
	// setting the flag (without bumping gen) is enough to shut them down.
	defer stop.Store(true)

	for {
		done.Store(0)
		gen.Add(1)
		step(&ws[0]) // the coordinator doubles as worker 0
		for done.Load() != int64(nw-1) {
			runtime.Gosched()
		}

		anyActive, issuedAny := false, false
		minWake := noWake
		var firstErr error
		for wi := range ws {
			pw := &ws[wi]
			if pw.err != nil && firstErr == nil {
				firstErr = pw.err // ranges ascend: first is the lowest core
			}
			anyActive = anyActive || pw.anyActive
			issuedAny = issuedAny || pw.issuedAny
			if pw.minWake < minWake {
				minWake = pw.minWake
			}
		}
		if firstErr != nil {
			return firstErr
		}
		// Commit phase: shared-memory requests in (cycle, core) order.
		for i := range s.cores {
			if s.cores[i].md.active {
				s.commitDeferred(&s.cores[i])
			}
		}
		if !anyActive {
			return nil
		}
		if issuedAny {
			s.cycle++
		} else {
			if minWake == noWake {
				return s.deadlockTrap()
			}
			// Jump to the next event; attribute the skipped cycles to the
			// same stall reasons (each stalled core already got 1 above).
			delta := minWake - s.cycle
			if delta > 1 {
				for i := range s.cores {
					c := &s.cores[i]
					if c.active > 0 {
						s.accountStall(c, delta-1)
					}
				}
			}
			s.cycle = minWake
		}
		if s.cycle > deadline {
			return fmt.Errorf("sim: exceeded cycle limit %d on %s", limit, s.cfg.Name())
		}
	}
}

// commitDeferred completes one core's queued memory instruction against the
// shared levels and patches the load's scoreboard entry. Must run
// single-threaded, in ascending core order within the cycle.
func (s *Sim) commitDeferred(c *simCore) {
	d := &c.md
	d.active = false
	done := d.partialDone
	for i := 0; i < d.nMiss; i++ {
		if r := s.hier.SharedAccess(d.miss[i]); r.Done > done {
			done = r.Done
		}
	}
	if d.isLoad {
		w := &c.warps[d.wid]
		if d.fp {
			w.pendF[d.rd] = done
		} else if d.rd != 0 {
			w.pendI[d.rd] = done
		}
	}
}
