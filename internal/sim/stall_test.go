package sim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// runStall runs prog on a 1c1w1t device and returns the sim.
func runStall(t *testing.T, prog string) *Sim {
	t.Helper()
	cfg := DefaultConfig(1, 1, 1)
	cfg.Workers = 1
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 16)
	hier, err := mem.NewHierarchy(1, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCycleSkipAccountsMemStalls pins the minWake fast path: when the only
// runnable warp waits on a DRAM fill, Run jumps the cycle counter to the
// completion instead of scanning every idle cycle, and the skipped cycles
// must land in MemStall. The invariant below fails if the jump either skips
// too far or forgets to attribute the gap: on a single-core device every
// elapsed cycle is exactly one issue or one accounted stall.
func TestCycleSkipAccountsMemStalls(t *testing.T) {
	s := runStall(t, `
		li   s0, 0x8000
		lw   t4, 0(s0)
		add  t5, t4, t4
		ecall
	`)
	st := s.CoreStatsOf(0)
	if got := st.Issued + st.MemStall + st.ExecStall; got != s.Cycle() {
		t.Errorf("issues+stalls = %d, want the elapsed %d cycles (skip mis-accounted)", got, s.Cycle())
	}
	// The dependent add waits out a cold miss: L1 + L2 + DRAM latency and
	// the line transfer, minus the one cycle the lw itself issued in.
	m := s.Config().Mem
	wait := uint64(m.L1.HitLatency+m.L2.HitLatency+m.DRAM.Latency) +
		uint64(m.L1.LineBytes/m.DRAM.BytesPerCycle) - 1
	if st.MemStall != wait {
		t.Errorf("MemStall = %d, want the full cold-miss wait %d", st.MemStall, wait)
	}
	if st.ExecStall != 0 {
		t.Errorf("ExecStall = %d, want 0 (no FU dependencies)", st.ExecStall)
	}
}

// TestStallAttributionExec pins the other accountStall branch: a pure
// functional-unit dependency must be charged to ExecStall, never MemStall,
// and the skipped gap equals the divide latency minus the issue cycle.
func TestStallAttributionExec(t *testing.T) {
	s := runStall(t, `
		addi t0, zero, 7
		div  t1, t0, t0
		add  t2, t1, t1
		ecall
	`)
	st := s.CoreStatsOf(0)
	if got := st.Issued + st.MemStall + st.ExecStall; got != s.Cycle() {
		t.Errorf("issues+stalls = %d, want the elapsed %d cycles", got, s.Cycle())
	}
	if st.MemStall != 0 {
		t.Errorf("MemStall = %d, want 0 (no memory instructions)", st.MemStall)
	}
	if want := uint64(s.Config().Lat.Div - 1); st.ExecStall != want {
		t.Errorf("ExecStall = %d, want %d (div consumer waits Div-1 cycles)", st.ExecStall, want)
	}
}

// TestCycleSkipLongLatencyLoop stresses repeated wake jumps: a pointer-chase
// style loop where every iteration stalls on a fresh cold line. The
// issue/stall invariant must survive arbitrarily many skip events.
func TestCycleSkipLongLatencyLoop(t *testing.T) {
	s := runStall(t, `
		li   s0, 0x8000
		li   t3, 20
	loop:
		lw   t4, 0(s0)
		add  t5, t4, t4
		addi s0, s0, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`)
	st := s.CoreStatsOf(0)
	if got := st.Issued + st.MemStall + st.ExecStall; got != s.Cycle() {
		t.Errorf("issues+stalls = %d, want the elapsed %d cycles", got, s.Cycle())
	}
	if st.MemStall == 0 {
		t.Error("expected memory stalls in a cold-miss loop")
	}
	// Every iteration waits on DRAM, so memory stalls dominate the runtime.
	if st.MemStall < s.Cycle()/2 {
		t.Errorf("MemStall = %d of %d cycles; cold-miss loop should be memory-dominated", st.MemStall, s.Cycle())
	}
}
