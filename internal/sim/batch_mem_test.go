package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// Batched-memory differential harness (bare-simulator level). The contract
// under test: with Config.BatchMem on, every simulated observable — cycles,
// per-core statistics, cache/DRAM statistics down to individual L2 banks
// and DRAM channels, memory contents, traps — is byte-identical to the
// per-warp oracle (BatchMem off), under every scheduler policy, both
// engines, and the parallel runner. Timing is never batched: each cohort
// mate's L1/hierarchy walk, MSHR allocation and LSU occupancy happen at its
// true issue cycle; only the functional access and coalescing are derived
// from the leader's affine address template.

// batchMemOracle runs prog with the full per-warp oracle (both batching
// layers off) and returns its snapshot; cfg is taken by value so the
// caller's copy keeps its settings.
func batchMemOracle(t *testing.T, cfg Config, prog string, activate func(*Sim) error) snapshot {
	t.Helper()
	cfg.BatchExec = false
	cfg.BatchMem = false
	return runSnapshot(t, cfg, prog, activate, 1)
}

// memUnitProg: every warp streams full-mask unit-stride words — the
// contiguous bulk-copy fast path. The loop reuses static offsets from a
// fixed base (no pointer advance), so after the first pass every access is
// an L1 hit and the warps stay in lockstep.
const memUnitProg = `
	csrr s0, cid
	slli s0, s0, 13
	csrr s1, wid
	slli t0, s1, 7
	add  s0, s0, t0
	csrr t1, tid
	slli t0, t1, 2
	add  s0, s0, t0
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 24
	addi s2, s1, 3
loop:
	lw   t4, 0(s0)
	add  t4, t4, s2
	sw   t4, 0(s0)
	lw   t5, 32(s0)
	add  t5, t5, t4
	sw   t5, 32(s0)
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// memStridedProg: lane stride of 64 bytes — affinely congruent across
// warps but not unit-stride, so mates replay through the per-lane template
// path and the shifted coalesced line list.
const memStridedProg = `
	csrr s0, cid
	slli s0, s0, 14
	csrr s1, wid
	slli t0, s1, 11
	add  s0, s0, t0
	csrr t1, tid
	slli t0, t1, 6
	add  s0, s0, t0
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 16
	addi s2, s1, 1
loop:
	lw   t4, 0(s0)
	add  t4, t4, s2
	sw   t4, 0(s0)
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// memOverlapProg: every warp of a core stores to and loads from the SAME
// addresses (per-warp delta zero). Mate stores overlap the leader's lines;
// the store each warp observes with its own load depends purely on issue
// order, which batching must not change.
const memOverlapProg = `
	csrr s0, cid
	slli s0, s0, 10
	csrr t1, tid
	slli t0, t1, 2
	add  s0, s0, t0
	li   t2, 0x8000
	add  s0, s0, t2
	csrr s1, wid
	li   t3, 12
loop:
	addi t4, s1, 0x40
	sw   t4, 0(s0)
	lw   t5, 0(s0)
	add  t6, t5, t4
	sw   t6, 64(s0)
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// memByteHalfProg: sub-word loads and stores (sb/lb/lbu, sh/lh/lhu) — the
// fused per-op kernels without a bulk path — folded into a word store so
// the results land in the snapshot window.
const memByteHalfProg = `
	csrr s0, cid
	slli s0, s0, 12
	csrr s1, wid
	slli t0, s1, 8
	add  s0, s0, t0
	csrr t1, tid
	slli t0, t1, 3
	add  s0, s0, t0
	li   t2, 0x8000
	add  s0, s0, t2
	addi t3, t1, 0x41
	sb   t3, 0(s0)
	lb   t4, 0(s0)
	lbu  t5, 0(s0)
	sh   t3, 2(s0)
	lh   t6, 2(s0)
	lhu  s2, 2(s0)
	add  t4, t4, t5
	add  t4, t4, t6
	add  t4, t4, s2
	sw   t4, 4(s0)
	ecall
`

// memNonCongruentProg: the lane stride is wid*4, so warp 0's lanes all hit
// one address while higher warps spread out — the per-warp deltas vary by
// lane and no mate is affinely congruent with the leader. Every mate must
// fall back to plain per-warp execution mid-cohort.
const memNonCongruentProg = `
	csrr s1, wid
	csrr t1, tid
	mul  t0, t1, s1
	slli t0, t0, 2
	li   t2, 0x8000
	add  t0, t0, t2
	csrr s0, cid
	slli s2, s0, 11
	add  t0, t0, s2
	addi t3, s1, 5
	sw   t3, 0(t0)
	lw   t4, 0(t0)
	slli t5, s1, 7
	add  t5, t5, t2
	slli t6, t1, 2
	add  t5, t5, t6
	add  t5, t5, s2
	sw   t4, 0x400(t5)
	ecall
`

// TestBatchMemMatchesOracle is the core differential: batched memory
// execution against the per-warp oracle across all scheduler policies,
// both engines, and worker counts — unit-stride (bulk path), strided
// (template path), partial and mixed thread masks, overlapping stores
// between mates, sub-word ops, non-congruent fallback, and the
// compute+mem mixes shared with the engine harness.
func TestBatchMemMatchesOracle(t *testing.T) {
	mixedMasks := func(cfg Config) func(*Sim) error {
		return func(s *Sim) error {
			for c := 0; c < cfg.Cores; c++ {
				for w := 0; w < cfg.Warps; w++ {
					tmask := uint64(0xFF)
					if w%2 == 1 {
						tmask = 0x33
					}
					if err := s.ActivateWarp(c, w, 0x1000, tmask); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	cases := []struct {
		name     string
		prog     string
		activate func(Config) func(*Sim) error
	}{
		{"unit", memUnitProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"unit/partial-mask", memUnitProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0x55) }},
		{"unit/mixed-masks", memUnitProg, mixedMasks},
		{"strided", memStridedProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"store-overlap", memOverlapProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"byte-half", memByteHalfProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"non-congruent", memNonCongruentProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
		{"compute-mem-mix", diffMemProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"compute-mem-uniform", batchUniformProg,
			func(cfg Config) func(*Sim) error { return activateAll(cfg, cfg.Warps, 0xFF) }},
	}
	for _, tc := range cases {
		for _, pol := range SchedPolicies() {
			t.Run(fmt.Sprintf("%s/%s", tc.name, pol), func(t *testing.T) {
				cfg := DefaultConfig(2, 8, 8)
				cfg.Sched = pol
				oracle := batchMemOracle(t, cfg, tc.prog, tc.activate(cfg))
				cfg.BatchExec = true
				cfg.BatchMem = true
				for _, engine := range []struct {
					name string
					tick bool
				}{{"event", false}, {"tick", true}} {
					cfg.TickEngine = engine.tick
					for _, workers := range []int{1, 2} {
						got := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), workers)
						diffSnapshots(t, fmt.Sprintf("%s/%s/workers=%d", pol, engine.name, workers), oracle, got)
					}
				}
			})
		}
	}
}

// TestBatchMemMSHRBound reruns the strided differential with a tight MSHR
// bound: the structural LSU/MSHR gate must stall replaying mates exactly
// where it stalls the oracle's per-warp instructions.
func TestBatchMemMSHRBound(t *testing.T) {
	for _, pol := range SchedPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := DefaultConfig(2, 8, 8)
			cfg.Sched = pol
			cfg.Mem.L1.MSHRs = 2
			cfg.Mem.L2.MSHRs = 2
			activate := activateAll(cfg, cfg.Warps, 0xFF)
			oracle := batchMemOracle(t, cfg, memStridedProg, activate)
			cfg.BatchExec, cfg.BatchMem = true, true
			for _, workers := range []int{1, 2} {
				got := runSnapshot(t, cfg, memStridedProg, activate, workers)
				diffSnapshots(t, fmt.Sprintf("workers=%d", workers), oracle, got)
			}
		})
	}
}

// batchMemWhiteboxProg: four lockstep warps, identical unit-stride lane
// addresses (per-warp delta zero), one load.
const batchMemWhiteboxProg = `
	csrr t1, tid
	slli t1, t1, 2
	li   t0, 0x8000
	add  t0, t0, t1
	lw   t2, 0(t0)
	ecall
`

// driveCore steps the heap issue loop like the engines do — advancing the
// device cycle on stalls — until pred returns true or the step budget runs
// out (the test then fails).
func driveCore(t *testing.T, s *Sim, c *simCore, pred func() bool) {
	t.Helper()
	for step := 0; step < 10000; step++ {
		if pred() {
			return
		}
		issued, _, err := s.issueHeap(c)
		if err != nil {
			t.Fatal(err)
		}
		if !issued {
			s.cycle++
		}
	}
	t.Fatal("condition not reached within step budget")
}

// newWhiteboxSim builds a 1-core simulator for direct issueHeap driving.
func newWhiteboxSim(t *testing.T, cfg Config, prog string, warps int, tmask uint64) (*Sim, *mem.Memory) {
	t.Helper()
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < warps; w++ {
		if err := s.ActivateWarp(0, w, 0x1000, tmask); err != nil {
			t.Fatal(err)
		}
	}
	return s, memory
}

// TestBatchMemCohortForms is the whitebox guard that memory batching
// actually engages: with four warps in lockstep at a load, the leader's
// issue must execute it and mark every mate with a memory replay
// (batchDstMem, the template generation, and the per-warp delta), and each
// mate's own slot must consume the mark and deliver the loaded data.
func TestBatchMemCohortForms(t *testing.T) {
	cfg := DefaultConfig(1, 4, 4)
	s, memory := newWhiteboxSim(t, cfg, batchMemWhiteboxProg, 4, 0xF)
	for lane := 0; lane < 4; lane++ {
		memory.Write32(0x8000+uint32(lane)*4, 0x111*uint32(lane+1))
	}
	c := &s.cores[0]
	memMarks := func() int {
		n := 0
		for w := range c.warps {
			if c.warps[w].batched && c.warps[w].batchDst == batchDstMem {
				n++
			}
		}
		return n
	}
	driveCore(t, s, c, func() bool { return memMarks() == 3 })
	lwPC := uint32(0x1000 + 5*4) // li 0x8000 expands to lui+addi
	for w := range c.warps {
		mw := &c.warps[w]
		if !mw.batched || mw.batchDst != batchDstMem {
			continue
		}
		if mw.batchPC != lwPC {
			t.Errorf("warp %d batchPC = %#x, want %#x", w, mw.batchPC, lwPC)
		}
		if mw.batchGen != c.memT.gen {
			t.Errorf("warp %d batchGen = %d, want %d", w, mw.batchGen, c.memT.gen)
		}
		if mw.batchMemDelta != 0 {
			t.Errorf("warp %d delta = %#x, want 0 (identical addresses)", w, mw.batchMemDelta)
		}
	}
	if !c.memT.unit {
		t.Error("full-mask unit-stride word load did not set the bulk fast-path flag")
	}
	driveCore(t, s, c, func() bool { return c.active == 0 })
	if n := memMarks(); n != 0 {
		t.Fatalf("%d warps still marked after completion", n)
	}
	for w := 0; w < 4; w++ {
		for lane := 0; lane < 4; lane++ {
			v, err := s.Reg(0, w, lane, 7) // t2
			if err != nil {
				t.Fatal(err)
			}
			if want := 0x111 * uint32(lane+1); v != want {
				t.Errorf("warp %d lane %d: loaded %#x, want %#x", w, lane, v, want)
			}
		}
	}
}

// TestBatchMemNonCongruentNoMarks pins the mid-cohort fallback: a cohort
// whose mates are not affinely congruent with the leader (lane-varying
// deltas) must mark nobody — the mates execute normally — and still finish
// with correct data.
func TestBatchMemNonCongruentNoMarks(t *testing.T) {
	cfg := DefaultConfig(1, 4, 4)
	prog := `
	csrr s1, wid
	csrr t1, tid
	mul  t0, t1, s1
	slli t0, t0, 2
	li   t2, 0x8000
	add  t0, t0, t2
	lw   t2, 0(t0)
	ecall
`
	s, memory := newWhiteboxSim(t, cfg, prog, 4, 0xF)
	for i := uint32(0); i < 16; i++ {
		memory.Write32(0x8000+i*4, 0x1000+i)
	}
	c := &s.cores[0]
	sawMemMark := false
	driveCore(t, s, c, func() bool {
		for w := range c.warps {
			if c.warps[w].batched && c.warps[w].batchDst == batchDstMem {
				sawMemMark = true
			}
		}
		return c.active == 0
	})
	if sawMemMark {
		t.Error("non-congruent mate was marked for batched memory replay")
	}
	for w := 0; w < 4; w++ {
		for lane := 0; lane < 4; lane++ {
			v, err := s.Reg(0, w, lane, 7) // t2
			if err != nil {
				t.Fatal(err)
			}
			if want := 0x1000 + uint32(w*lane); v != want {
				t.Errorf("warp %d lane %d: loaded %#x, want %#x", w, lane, v, want)
			}
		}
	}
}

// TestBatchMemInert pins the gating: memory batching requires the heap
// scheduler and the compute-batching layer — under ScanSched or with
// BatchExec off, s.batchMem must be false and the per-warp oracle path
// runs unconditionally.
func TestBatchMemInert(t *testing.T) {
	build := func(mut func(*Config)) *Sim {
		cfg := DefaultConfig(1, 4, 4)
		cfg.BatchExec, cfg.BatchMem = true, true
		mut(&cfg)
		memory := mem.NewMemory(1 << 16)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s := build(func(cfg *Config) { cfg.ScanSched = true }); s.batchMem {
		t.Error("ScanSched config has memory batching enabled; the scan oracle must stay per-warp")
	}
	if s := build(func(cfg *Config) { cfg.BatchExec = false }); s.batchMem {
		t.Error("BatchExec=false config has memory batching enabled; BatchMem rides on the cohort machinery")
	}
	if s := build(func(cfg *Config) {}); !s.batchMem {
		t.Error("default heap-scheduler config should have memory batching enabled")
	}
}

// memTrapProg: lane addresses of tid<<20 + 0x8000 — lane 0 in bounds,
// every higher lane far outside the 1 MiB device memory. The store must
// trap without committing lane 0's write.
const memTrapProg = `
	csrr t0, tid
	slli t2, t0, 20
	li   t3, 0x8000
	add  t2, t2, t3
	li   t4, 0xdead
	sw   t4, 0(t2)
	ecall
`

// TestMemTrapNoPartialMutation pins the validate-before-mutate contract of
// executeMem: a store warp that traps on a later lane must leave memory
// untouched — including the earlier lanes that individually were in bounds
// — identically under both engines and both BatchMem settings, with
// byte-identical trap records. The multi-warp activation also covers the
// cohort-leader trap path (the leader fails during batched formation and
// the error propagates unchanged).
func TestMemTrapNoPartialMutation(t *testing.T) {
	run := func(tick, batchMem bool, warps int) *Trap {
		t.Helper()
		cfg := DefaultConfig(1, 4, 4)
		cfg.TickEngine = tick
		cfg.BatchMem = batchMem
		s, memory := newWhiteboxSim(t, cfg, memTrapProg, warps, 0x3)
		err := s.Run()
		var trap *Trap
		if !errors.As(err, &trap) {
			t.Fatalf("tick=%v batchMem=%v warps=%d: expected out-of-bounds trap, got %v", tick, batchMem, warps, err)
		}
		if v, _ := memory.Read32(0x8000); v != 0 {
			t.Fatalf("tick=%v batchMem=%v warps=%d: lane 0 store committed (%#x) despite lane 1 trap", tick, batchMem, warps, v)
		}
		return trap
	}
	for _, warps := range []int{1, 4} {
		oracle := run(false, false, warps)
		for _, engine := range []bool{false, true} {
			got := run(engine, true, warps)
			if *oracle != *got {
				t.Errorf("warps=%d tick=%v: trap differs:\noracle  %+v\nbatched %+v", warps, engine, oracle, got)
			}
		}
	}
}

// TestBatchMemScanSchedDifferential runs a memory-heavy program under
// ScanSched with BatchMem requested: the scan oracle must stay
// byte-identical to itself with the flag off (the flag is inert there).
func TestBatchMemScanSchedDifferential(t *testing.T) {
	cfg := DefaultConfig(2, 8, 8)
	cfg.ScanSched = true
	activate := activateAll(cfg, cfg.Warps, 0xFF)
	oracle := batchMemOracle(t, cfg, memUnitProg, activate)
	cfg.BatchExec, cfg.BatchMem = true, true
	got := runSnapshot(t, cfg, memUnitProg, activate, 1)
	diffSnapshots(t, "scan-sched", oracle, got)
}
