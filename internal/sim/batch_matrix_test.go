package sim_test

// Kernel-level half of the batched-execution differential harness: registry
// kernels, run end-to-end through the OpenCL-style runtime, across the
// batch x engine x workers matrix. Uniform-warp batched execution (the
// default) must produce byte-identical launch reports — including the
// MemStall/ExecStall/IdleAfterEnd attribution — and memory-system state to
// the per-warp oracle retained behind Config.BatchExec=false, on both
// engines and both runners. The CI race-detector step runs this file, so
// cohort pre-execution is also race-checked under the parallel engine.
//
// internal/sim/batch_test.go pins the same property at the bare-simulator
// level (all four policies, traps, the observer stream, cohort edge cases);
// internal/sweep pins it at sweep-record level.

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

func runBatchKernel(t *testing.T, name string, batch, tick bool, workers int) kernelRun {
	t.Helper()
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.BatchExec = batch
	cfg.TickEngine = tick
	cfg.Workers = workers
	cfg.CommitWorkers = workers
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("batch=%v tick=%v workers=%d", batch, tick, workers))
}

// batchMatrixKernels get the full engine x workers matrix against the
// per-warp oracle; every other registry kernel runs the oracle-critical
// unbatched-seq vs batched-seq/par cells only (same bounded-cost convention
// as the engine matrix).
var batchMatrixKernels = map[string]bool{"vecadd": true, "relu": true, "saxpy": true}

func TestBatchKernelMatrix(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !batchMatrixKernels[name] {
				t.Skip("short mode: batch matrix runs the cheap kernels only")
			}
			oracle := runBatchKernel(t, name, false, false, 1)
			batchSeq := runBatchKernel(t, name, true, false, 1)
			batchPar := runBatchKernel(t, name, true, false, 4)
			diffKernelRuns(t, name+"/unbatched-vs-batched-seq", oracle, batchSeq)
			diffKernelRuns(t, name+"/unbatched-vs-batched-par", oracle, batchPar)
			if batchMatrixKernels[name] {
				batchTickSeq := runBatchKernel(t, name, true, true, 1)
				batchTickPar := runBatchKernel(t, name, true, true, 4)
				diffKernelRuns(t, name+"/unbatched-vs-batched-tick-seq", oracle, batchTickSeq)
				diffKernelRuns(t, name+"/unbatched-vs-batched-tick-par", oracle, batchTickPar)
			}
		})
	}
}

// runBatchMemKernel isolates the batched-memory layer: compute batching on
// in both cells, Config.BatchMem toggled.
func runBatchMemKernel(t *testing.T, name string, batchMem bool, workers int) kernelRun {
	t.Helper()
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.BatchMem = batchMem
	cfg.Workers = workers
	cfg.CommitWorkers = workers
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("batchMem=%v workers=%d", batchMem, workers))
}

// TestBatchMemKernelMatrix is the kernel-level half of the batched-memory
// differential: registry kernels end-to-end with cohort-batched loads and
// stores (the default) against the per-warp memory path
// (Config.BatchMem=false), compute batching held on in both cells so the
// diff isolates the memory layer. TestBatchKernelMatrix's fully-unbatched
// oracle transitively covers the combined stack.
func TestBatchMemKernelMatrix(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !batchMatrixKernels[name] {
				t.Skip("short mode: batch matrix runs the cheap kernels only")
			}
			oracle := runBatchMemKernel(t, name, false, 1)
			memSeq := runBatchMemKernel(t, name, true, 1)
			memPar := runBatchMemKernel(t, name, true, 4)
			diffKernelRuns(t, name+"/membatch-seq", oracle, memSeq)
			diffKernelRuns(t, name+"/membatch-par", oracle, memPar)
		})
	}
}
