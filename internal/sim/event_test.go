package sim

// Bare-simulator half of the engine differential harness: the event-driven
// device engine (event.go, the default) against the legacy tick loop
// retained behind Config.TickEngine. The contract is byte-identity in every
// simulated observable — device cycles, per-core counters including the
// MemStall/ExecStall attribution, cache/DRAM statistics, memory contents,
// observer stream, trap coordinates and the MaxCycles deadline — across the
// engine x workers x sched matrix. internal/sim/event_matrix_test.go pins
// the same property over the kernel registry; internal/sweep pins it at
// sweep-record level. The CI race-detector step runs this file, so the
// per-worker wake queues are also race-checked.

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// TestEventMatchesTickEngine diffs the event engine against the sequential
// tick oracle for every scheduling policy, at both worker counts, over the
// standard differential programs.
func TestEventMatchesTickEngine(t *testing.T) {
	for _, sched := range SchedPolicies() {
		for _, tc := range schedDiffCases() {
			t.Run(fmt.Sprintf("%s/%s", sched, tc.name), func(t *testing.T) {
				cfg := DefaultConfig(4, 4, 4)
				cfg.Sched = sched
				cfg.TickEngine = true
				oracle := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), 1)
				tickPar := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), 4)
				diffSnapshots(t, fmt.Sprintf("%s/%s/tick-seq-vs-tick-par", sched, tc.name), oracle, tickPar)
				cfg.TickEngine = false
				for _, workers := range []int{1, 4} {
					ev := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), workers)
					diffSnapshots(t, fmt.Sprintf("%s/%s/tick-vs-event/workers=%d", sched, tc.name, workers), oracle, ev)
				}
			})
		}
	}
}

// TestEventMatchesTickScanOracle pins that the engine axis composes with
// ScanSched: the event engine over the legacy scan issue loop must still
// match the tick loop over the same scan loop.
func TestEventMatchesTickScanOracle(t *testing.T) {
	for _, sched := range []SchedPolicy{SchedRoundRobin, SchedGTO} {
		cfg := DefaultConfig(4, 4, 4)
		cfg.Sched = sched
		cfg.ScanSched = true
		cfg.TickEngine = true
		oracle := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), 1)
		cfg.TickEngine = false
		for _, workers := range []int{1, 4} {
			ev := runSnapshot(t, cfg, diffMemProg, activateAll(cfg, 4, 0xF), workers)
			diffSnapshots(t, fmt.Sprintf("%s/scan/workers=%d", sched, workers), oracle, ev)
		}
	}
}

// TestEventHighWarpDifferential runs the engine differential at the warp
// count where per-cycle bookkeeping dominates the tick loop's cost.
func TestEventHighWarpDifferential(t *testing.T) {
	activate := func(cfg Config) func(*Sim) error { return activateAll(cfg, 32, 0x3) }
	for _, sched := range SchedPolicies() {
		cfg := DefaultConfig(2, 32, 2)
		cfg.Sched = sched
		cfg.TickEngine = true
		oracle := runSnapshot(t, cfg, highWarpProg, activate(cfg), 1)
		cfg.TickEngine = false
		seq := runSnapshot(t, cfg, highWarpProg, activate(cfg), 1)
		par := runSnapshot(t, cfg, highWarpProg, activate(cfg), 2)
		diffSnapshots(t, fmt.Sprintf("%s/tick-vs-event-seq", sched), oracle, seq)
		diffSnapshots(t, fmt.Sprintf("%s/tick-vs-event-par", sched), oracle, par)
	}
}

// partialSkipProg drives the partial-skip regime the tick loop's no-issue
// fast-forward never reaches: core 0 spins a dependent ALU loop that issues
// every cycle, while every other core walks a strided read-modify-write
// loop that sleeps out DRAM misses for long stretches. The device as a
// whole always has an issuing core, so the tick engine can never jump and
// charges the sleepers one visit at a time — the lazy bulk spans of the
// event engine must add up to exactly the same MemStall/ExecStall split.
const partialSkipProg = `
	csrr s0, cid
	bnez s0, memside
	li   t0, 3000
busy:
	addi t0, t0, -1
	bnez t0, busy
	ecall
memside:
	slli s0, s0, 14
	csrr t0, wid
	slli t1, t0, 10
	add  s0, s0, t1
	csrr t0, tid
	slli t1, t0, 6
	add  s0, s0, t1
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 16
mloop:
	lw   t4, 0(s0)
	add  t4, t4, t3
	sw   t4, 0(s0)
	addi s0, s0, 64
	addi t3, t3, -1
	bnez t3, mloop
	ecall
`

// TestEventPartialSkipAttribution is the targeted stall-attribution
// differential for the partial-skip case, plus shape assertions proving the
// program actually exercised that regime.
func TestEventPartialSkipAttribution(t *testing.T) {
	cfg := DefaultConfig(4, 2, 4)
	activate := activateAll(cfg, 2, 0xF)
	cfg.TickEngine = true
	oracle := runSnapshot(t, cfg, partialSkipProg, activate, 1)
	cfg.TickEngine = false
	for _, workers := range []int{1, 4} {
		ev := runSnapshot(t, cfg, partialSkipProg, activate, workers)
		diffSnapshots(t, fmt.Sprintf("partial-skip/workers=%d", workers), oracle, ev)
	}
	if busy := oracle.cores[0]; busy.Issued < 3000 {
		t.Errorf("core 0 issued %d instructions, want a >=3000-cycle busy loop keeping the device issuing", busy.Issued)
	}
	for c := 1; c < cfg.Cores; c++ {
		if st := oracle.cores[c]; st.MemStall == 0 {
			t.Errorf("core %d MemStall = 0, want long DRAM sleeps under a busy device", c)
		}
	}
}

// TestEventDeadlockBarrier drives the first deadlockTrap variant through
// the event queue's parked list: trap coordinates, trap cycle and the
// settled stall statistics must match the tick engine at every worker
// count (deadlocks are decided by the coordinator after a complete cycle,
// so unlike execution traps they stay byte-identical under parallelism).
func TestEventDeadlockBarrier(t *testing.T) {
	type outcome struct {
		trap  Trap
		stats []CoreStats
	}
	run := func(tick bool, workers int) outcome {
		t.Helper()
		cfg := DefaultConfig(2, 2, 2)
		cfg.TickEngine = tick
		p := asm.MustAssemble(deadlockBarrierProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 16)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		if err := activateAll(cfg, 2, 0x3)(s); err != nil {
			t.Fatal(err)
		}
		trap, ok := s.RunParallel(workers).(*Trap)
		if !ok {
			t.Fatalf("tick=%v workers=%d: want a deadlock *Trap", tick, workers)
		}
		if !strings.Contains(trap.Reason, "barrier that can never fill") {
			t.Fatalf("tick=%v workers=%d: trap reason %q", tick, workers, trap.Reason)
		}
		o := outcome{trap: *trap}
		for c := 0; c < cfg.Cores; c++ {
			o.stats = append(o.stats, s.CoreStatsOf(c))
		}
		return o
	}
	oracle := run(true, 1)
	for _, tick := range []bool{true, false} {
		for _, workers := range []int{1, 2} {
			got := run(tick, workers)
			if got.trap != oracle.trap {
				t.Errorf("tick=%v workers=%d: trap %+v, tick oracle %+v", tick, workers, got.trap, oracle.trap)
			}
			if !slices.Equal(got.stats, oracle.stats) {
				t.Errorf("tick=%v workers=%d: stats %+v, tick oracle %+v", tick, workers, got.stats, oracle.stats)
			}
		}
	}
}

// TestEventDeadlockNoSchedulableEvent reaches the second deadlockTrap
// variant through the event queue itself: a core whose only active warp has
// vanished from both scheduler structures (the bookkeeping bug the variant
// is defensive against) fails its issue with no timed wake, lands on the
// parked list, and the drained queue classifies the deadlock — charging the
// parked core exactly the one stall cycle the tick loop charges before
// trapping.
func TestEventDeadlockNoSchedulableEvent(t *testing.T) {
	s := rigNoStart(t, DefaultConfig(1, 1, 1), `ecall`, nil)
	if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	s.cores[0].ready = 0 // rig: active warp in neither ready set nor wake heap
	trap, ok := s.Run().(*Trap)
	if !ok {
		t.Fatal("want a deadlock *Trap")
	}
	if !strings.Contains(trap.Reason, "no schedulable event") {
		t.Errorf("trap reason %q, want the no-schedulable-event diagnostic", trap.Reason)
	}
	if trap.Cycle != 0 {
		t.Errorf("trap cycle %d, want 0 (first failed issue drains the queue)", trap.Cycle)
	}
	if st := s.CoreStatsOf(0); st.ExecStall != 1 || st.MemStall != 0 {
		t.Errorf("stats %+v, want the parked core's single settled ExecStall cycle", st)
	}
}

// TestEventObserverStreamMatchesTick re-pins the observer contract under
// the event engine: an installed observer forces the sequential engine at
// any worker count, and the (cycle, core)-ordered issue stream is
// byte-identical between the event engine and the tick oracle.
func TestEventObserverStreamMatchesTick(t *testing.T) {
	collect := func(tick bool, workers int) []IssueEvent {
		t.Helper()
		cfg := DefaultConfig(4, 2, 4)
		cfg.TickEngine = tick
		p := asm.MustAssemble(diffMemProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		var evs []IssueEvent
		s.SetObserver(func(e IssueEvent) { evs = append(evs, e) })
		if err := activateAll(cfg, 2, 0xF)(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunParallel(workers); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	oracle := collect(true, 1)
	if len(oracle) == 0 {
		t.Fatal("observer saw no issues")
	}
	for i := 1; i < len(oracle); i++ {
		a, b := oracle[i-1], oracle[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Core < a.Core) {
			t.Fatalf("event %d (cycle %d core %d) after (cycle %d core %d): global issue order violated",
				i, b.Cycle, b.Core, a.Cycle, a.Core)
		}
	}
	for _, tick := range []bool{true, false} {
		for _, workers := range []int{1, 4} {
			if got := collect(tick, workers); !slices.Equal(got, oracle) {
				t.Errorf("tick=%v workers=%d: observer stream differs from the tick oracle (%d vs %d events)",
					tick, workers, len(got), len(oracle))
			}
		}
	}
}

// TestEventMaxCyclesDeadline pins the deadline path: both engines must
// report the same error at the same device cycle with the same settled
// stall statistics, whether the limit lands on an issuing cycle or inside
// a fast-forwarded sleep.
func TestEventMaxCyclesDeadline(t *testing.T) {
	run := func(tick bool, workers int, limit uint64) (*Sim, error) {
		t.Helper()
		cfg := DefaultConfig(2, 2, 4)
		cfg.MaxCycles = limit
		cfg.TickEngine = tick
		p := asm.MustAssemble(diffMemProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		if err := activateAll(cfg, 2, 0xF)(s); err != nil {
			t.Fatal(err)
		}
		return s, s.RunParallel(workers)
	}
	for _, limit := range []uint64{97, 100} {
		oracleSim, oracleErr := run(true, 1, limit)
		if oracleErr == nil {
			t.Fatalf("limit %d did not trip the deadline", limit)
		}
		for _, tick := range []bool{true, false} {
			for _, workers := range []int{1, 2} {
				s, err := run(tick, workers, limit)
				if err == nil || err.Error() != oracleErr.Error() {
					t.Errorf("limit=%d tick=%v workers=%d: err %v, tick oracle %v", limit, tick, workers, err, oracleErr)
					continue
				}
				if s.Cycle() != oracleSim.Cycle() {
					t.Errorf("limit=%d tick=%v workers=%d: stopped at cycle %d, tick oracle %d", limit, tick, workers, s.Cycle(), oracleSim.Cycle())
				}
				for c := 0; c < 2; c++ {
					if got, want := s.CoreStatsOf(c), oracleSim.CoreStatsOf(c); got != want {
						t.Errorf("limit=%d tick=%v workers=%d: core %d stats %+v, tick oracle %+v", limit, tick, workers, c, got, want)
					}
				}
			}
		}
	}
}
