package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// TestDifferentialALURandomPrograms generates random straight-line integer
// programs, runs them on the simulator, and checks every architectural
// register against a direct Go evaluation of the same operations.
func TestDifferentialALURandomPrograms(t *testing.T) {
	ops := []struct {
		mnem string
		eval func(a, b uint32) uint32
	}{
		{"add", func(a, b uint32) uint32 { return a + b }},
		{"sub", func(a, b uint32) uint32 { return a - b }},
		{"and", func(a, b uint32) uint32 { return a & b }},
		{"or", func(a, b uint32) uint32 { return a | b }},
		{"xor", func(a, b uint32) uint32 { return a ^ b }},
		{"sll", func(a, b uint32) uint32 { return a << (b & 31) }},
		{"srl", func(a, b uint32) uint32 { return a >> (b & 31) }},
		{"sra", func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{"mul", func(a, b uint32) uint32 { return a * b }},
		{"slt", func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		}},
		{"sltu", func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{"divu", func(a, b uint32) uint32 {
			if b == 0 {
				return ^uint32(0)
			}
			return a / b
		}},
		{"remu", func(a, b uint32) uint32 {
			if b == 0 {
				return a
			}
			return a % b
		}},
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		// Registers x5..x15 participate; seed them with immediates.
		shadow := [32]uint32{}
		var b strings.Builder
		for reg := 5; reg <= 15; reg++ {
			v := r.Uint32() % 2048
			shadow[reg] = v
			fmt.Fprintf(&b, "addi x%d, zero, %d\n", reg, v)
		}
		for i := 0; i < 60; i++ {
			op := ops[r.Intn(len(ops))]
			rd := 5 + r.Intn(11)
			rs1 := 5 + r.Intn(11)
			rs2 := 5 + r.Intn(11)
			fmt.Fprintf(&b, "%s x%d, x%d, x%d\n", op.mnem, rd, rs1, rs2)
			shadow[rd] = op.eval(shadow[rs1], shadow[rs2])
		}
		b.WriteString("ecall\n")

		cfg := DefaultConfig(1, 1, 1)
		p, err := asm.Assemble(b.String(), 0x1000, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		memory := mem.NewMemory(1 << 16)
		hier, err := mem.NewHierarchy(1, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		for reg := 5; reg <= 15; reg++ {
			got, _ := s.Reg(0, 0, 0, uint8(reg))
			if got != shadow[reg] {
				t.Fatalf("trial %d: x%d = %#x, want %#x\n%s", trial, reg, got, shadow[reg], b.String())
			}
		}
	}
}

// TestDifferentialMemoryRandomAccess drives random in-bounds loads/stores
// against a shadow map and checks both memory contents and loaded values.
func TestDifferentialMemoryRandomAccess(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	const base = 0x8000
	const words = 64
	shadowMem := map[uint32]uint32{}
	var shadowReg [32]uint32

	var b strings.Builder
	fmt.Fprintf(&b, "li s0, %d\n", base)
	shadowReg[8] = base
	for i := 0; i < 120; i++ {
		off := uint32(r.Intn(words)) * 4
		reg := 5 + r.Intn(3) // t0..t2
		if r.Intn(2) == 0 {
			v := r.Uint32() % 2048
			fmt.Fprintf(&b, "addi x%d, zero, %d\n", reg, v)
			fmt.Fprintf(&b, "sw x%d, %d(s0)\n", reg, off)
			shadowReg[reg] = v
			shadowMem[base+off] = v
		} else {
			fmt.Fprintf(&b, "lw x%d, %d(s0)\n", reg, off)
			shadowReg[reg] = shadowMem[base+off]
		}
	}
	b.WriteString("ecall\n")

	cfg := DefaultConfig(1, 1, 1)
	p, err := asm.Assemble(b.String(), 0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.NewMemory(1 << 16)
	hier, _ := mem.NewHierarchy(1, cfg.Mem)
	s, _ := New(cfg, memory, hier)
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range shadowMem {
		got, ok := memory.Read32(addr)
		if !ok || got != want {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, want)
		}
	}
	for reg := 5; reg <= 7; reg++ {
		got, _ := s.Reg(0, 0, 0, uint8(reg))
		if got != shadowReg[reg] {
			t.Errorf("x%d = %d, want %d", reg, got, shadowReg[reg])
		}
	}
}

// TestTimingDeterminism runs the same program twice and expects identical
// cycle counts and stats — the simulator must be fully deterministic.
func TestTimingDeterminism(t *testing.T) {
	prog := `
		csrr t0, tid
		slli t1, t0, 6
		li   t2, 0x8000
		add  t1, t1, t2
		li   t3, 50
	loop:
		lw   t4, 0(t1)
		add  t4, t4, t3
		sw   t4, 0(t1)
		addi t1, t1, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	run := func() (uint64, CoreStats) {
		cfg := DefaultConfig(2, 4, 4)
		p := asm.MustAssemble(prog, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, _ := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		s, _ := New(cfg, memory, hier)
		s.LoadProgram(p.Base, p.Insts)
		for c := 0; c < 2; c++ {
			for w := 0; w < 4; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, 0xF); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Cycle(), s.TotalStats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Errorf("cycles differ: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Errorf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

// TestLatencyHidingMonotoneInWarps checks a core property the paper's
// technique relies on: with a memory-latency-bound workload, adding warps
// must not slow execution down.
func TestLatencyHidingMonotoneInWarps(t *testing.T) {
	prog := `
		csrr t0, wid
		slli t0, t0, 10
		csrr t1, tid
		slli t1, t1, 6
		add  t0, t0, t1
		li   t2, 0x10000
		add  t0, t0, t2
		li   t3, 16
	loop:
		lw   t4, 0(t0)
		addi t4, t4, 1
		sw   t4, 0(t0)
		addi t0, t0, 256
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	var prev uint64
	for _, warps := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(1, 8, 4)
		p := asm.MustAssemble(prog, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, _ := mem.NewHierarchy(1, cfg.Mem)
		s, _ := New(cfg, memory, hier)
		s.LoadProgram(p.Base, p.Insts)
		for w := 0; w < warps; w++ {
			if err := s.ActivateWarp(0, w, 0x1000, 0xF); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		perWarp := s.Cycle() / uint64(warps)
		if prev != 0 && perWarp > prev+prev/10 {
			t.Errorf("%d warps: per-warp time %d regressed vs %d (no latency hiding)", warps, perWarp, prev)
		}
		prev = perWarp
	}
}
