// Package sim implements a cycle-level simulator of a Vortex-like SIMT
// GPGPU: a grid of cores, each hosting a set of warps with per-thread
// register files, an in-order single-issue pipeline with a register
// scoreboard, IPDOM-stack branch divergence (vx_split/vx_join), core-local
// barriers, warp control (vx_tmc/vx_wspawn), and a shared memory hierarchy
// with per-warp access coalescing.
//
// Timing model: each core issues at most one instruction per cycle from one
// ready warp, chosen by a pluggable scheduling policy (round-robin,
// greedy-then-oldest, oldest-first or two-level; see sched.go). Instructions execute
// functionally at issue; destination registers become visible after the
// functional-unit latency, enforced by the scoreboard. Memory instructions
// coalesce lane addresses into line requests processed one per LSU cycle and
// timed by the mem.Hierarchy.
package sim

import (
	"fmt"
	"runtime"

	"repro/internal/mem"
)

// SchedPolicy selects the warp scheduling policy of a core. The policies
// themselves (issue-priority semantics, the ready-set/wake-heap engine that
// drives them, and the legacy scan oracle) live in sched.go.
type SchedPolicy uint8

const (
	// SchedRoundRobin rotates issue priority over warps each cycle.
	SchedRoundRobin SchedPolicy = iota
	// SchedGTO keeps issuing the same warp until it stalls, then switches
	// to the next ready warp in scan order (greedy-then-oldest).
	SchedGTO
	// SchedOldestFirst issues the ready warp that has gone longest without
	// issuing (earliest last-issue cycle, lowest warp id on ties).
	SchedOldestFirst
	// SchedTwoLevel partitions warps into fetch groups of eight and
	// round-robins within the active group, switching groups only when no
	// warp of the active group is ready — keeping the groups' memory
	// accesses staggered (two-level warp scheduling).
	SchedTwoLevel
)

func (s SchedPolicy) String() string {
	switch s {
	case SchedRoundRobin:
		return "rr"
	case SchedGTO:
		return "gto"
	case SchedOldestFirst:
		return "oldest"
	case SchedTwoLevel:
		return "2lev"
	}
	return fmt.Sprintf("sched(%d)", uint8(s))
}

// SchedPolicies lists every scheduling policy, in enum order.
func SchedPolicies() []SchedPolicy {
	return []SchedPolicy{SchedRoundRobin, SchedGTO, SchedOldestFirst, SchedTwoLevel}
}

// ParseSchedPolicy resolves a policy name as printed by
// SchedPolicy.String ("rr", "gto", "oldest", "2lev").
func ParseSchedPolicy(name string) (SchedPolicy, error) {
	for _, p := range SchedPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown scheduler policy %q (want rr, gto, oldest or 2lev)", name)
}

// Latencies holds functional-unit latencies in cycles (from issue to the
// cycle the destination register may be consumed).
type Latencies struct {
	ALU   int
	Mul   int
	Div   int
	FAdd  int // also FSub, FMin/FMax, sign injections, compares, moves
	FMul  int
	FMA   int
	FDiv  int
	FSqrt int
}

// DefaultLatencies returns the DESIGN.md defaults.
func DefaultLatencies() Latencies {
	return Latencies{ALU: 1, Mul: 3, Div: 16, FAdd: 4, FMul: 4, FMA: 4, FDiv: 16, FSqrt: 16}
}

// Config describes one device configuration.
type Config struct {
	Cores   int
	Warps   int // warps per core
	Threads int // threads (lanes) per warp

	Mem   mem.HierarchyConfig
	Lat   Latencies
	Sched SchedPolicy

	// ScanSched selects the legacy O(Warps) scan issue loop instead of the
	// ready-set/wake-heap scheduler engine. The scan implements only the
	// rr and gto policies and is retained as the differential-test oracle
	// (the heap engine is byte-identical to it; see internal/sim/README.md).
	ScanSched bool

	// TickEngine selects the legacy per-cycle tick loop instead of the
	// event-driven device engine (event.go): every cycle visits every core
	// with active warps, if only to account a stall and min-reduce its wake
	// time. The tick loop is retained as the differential-test oracle — the
	// event engine is byte-identical to it in every simulated observable
	// (device cycles, statistics, stall attribution, observer stream; see
	// internal/sim/README.md) — and composes with every scheduler policy,
	// ScanSched, and both the sequential and parallel engines.
	TickEngine bool

	// BatchExec enables uniform-warp batched execution (exec_batch.go): the
	// heap scheduler engine detects cohorts of ready warps in lockstep —
	// same pc, identical thread mask, same pre-decoded compute instruction,
	// no scoreboard hazard — and executes the instruction functionally once
	// over the whole cohort with a fused warps x lanes kernel, replaying
	// each member's issue bookkeeping at its true issue slot. Every
	// simulated observable stays byte-identical to the per-warp path, which
	// is retained as the differential-test oracle (BatchExec=false; see
	// internal/sim/README.md). DefaultConfig enables it. Inert under
	// ScanSched: the legacy scan oracle always executes warp by warp.
	BatchExec bool

	// BatchMem extends cohort batching to loads and stores (exec_batch.go):
	// when a lockstep cohort forms on a memory instruction, the leader
	// executes normally and each mate whose lane-address vector is the
	// leader's plus one per-warp constant (affine congruence) is marked for
	// batched replay — fused functional access (with a contiguous bulk-copy
	// fast path for full-mask unit-stride word accesses) and a coalescing
	// template that shifts the leader's line list instead of re-running
	// mem.Coalesce per warp. Timing is never batched: each mate's hierarchy
	// walk, MSHR allocation, statistics and observer event replay at its
	// true issue cycle, so every simulated observable stays byte-identical
	// to the per-warp oracle (BatchMem=false; see internal/sim/README.md).
	// DefaultConfig enables it. Requires BatchExec and the heap scheduler:
	// under ScanSched or BatchExec=false memory batching is inert.
	BatchMem bool

	// LSUPorts is the number of cache-line requests the load-store unit
	// can issue per cycle (the banked L1 of Vortex services lanes hitting
	// distinct banks in parallel). Uncoalesced warp accesses occupy the
	// LSU for ceil(lines/LSUPorts) cycles.
	LSUPorts int

	// MaxCycles aborts runaway simulations; 0 means a generous default.
	MaxCycles uint64

	// Workers is the number of host goroutines Sim.Run uses to simulate
	// cores in parallel, clamped to the core count. 0 or 1 selects the
	// single-threaded engine; DefaultConfig sets runtime.NumCPU(). For
	// kernels free of cross-core data races the parallel engine produces
	// byte-identical cycle counts and statistics at any worker count (see
	// internal/sim/README.md for the determinism contract).
	Workers int

	// CommitWorkers shards the parallel engine's end-of-cycle commit phase
	// by L2 bank and DRAM channel. 0 follows Workers and lets the engine
	// fall back to the single-threaded global commit on cycles with little
	// deferred work; 1 forces the single-threaded global commit on every
	// cycle; any larger count (clamped to the issue worker pool) forces the
	// sharded commit whenever a cycle defers memory work. All settings are
	// byte-identical for race-free kernels — the sharded commit preserves
	// the global (cycle, core) request order restricted to each bank and
	// channel, the only ordering the memory model observes.
	CommitWorkers int
}

// DefaultConfig returns the default device: cores x warps x threads with the
// standard memory hierarchy and latencies.
func DefaultConfig(cores, warps, threads int) Config {
	m := mem.DefaultHierarchyConfig()
	// Memory channels scale with core count (Vortex widens its memory
	// interface with the number of clusters), so large devices are not
	// artificially bandwidth-starved.
	m.DRAM.Channels = cores
	return Config{
		Cores:     cores,
		Warps:     warps,
		Threads:   threads,
		Mem:       m,
		Lat:       DefaultLatencies(),
		Sched:     SchedRoundRobin,
		LSUPorts:  8,
		Workers:   runtime.NumCPU(),
		BatchExec: true,
		BatchMem:  true,
	}
}

// Validate checks structural limits (thread masks are 64-bit).
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Warps <= 0 || c.Threads <= 0 {
		return fmt.Errorf("sim: non-positive geometry %s", c.Name())
	}
	if c.Threads > 64 {
		return fmt.Errorf("sim: threads per warp %d exceeds 64 (mask width)", c.Threads)
	}
	if c.Warps > 64 {
		// Barrier waiter masks and the scheduler's ready set are 64-bit
		// warp masks (the sweep grid tops out at 32 warps).
		return fmt.Errorf("sim: warps per core %d exceeds 64 (warp-mask width)", c.Warps)
	}
	if _, err := ParseSchedPolicy(c.Sched.String()); err != nil {
		return err
	}
	if c.ScanSched && c.Sched != SchedRoundRobin && c.Sched != SchedGTO {
		return fmt.Errorf("sim: the scan-oracle issue loop implements only rr and gto, not %s", c.Sched)
	}
	if c.Lat == (Latencies{}) {
		return fmt.Errorf("sim: zero latencies; use DefaultLatencies")
	}
	if c.Mem.L1.MSHRs < 0 {
		return fmt.Errorf("sim: negative L1 MSHR count %d", c.Mem.L1.MSHRs)
	}
	if c.Mem.L2.MSHRs < 0 {
		return fmt.Errorf("sim: negative L2 MSHR count %d", c.Mem.L2.MSHRs)
	}
	if _, err := mem.ParsePrefetchPolicy(c.Mem.Prefetch.String()); err != nil {
		return err
	}
	if c.LSUPorts < 1 {
		return fmt.Errorf("sim: LSUPorts %d must be at least 1", c.LSUPorts)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	}
	if c.CommitWorkers < 0 {
		return fmt.Errorf("sim: negative commit worker count %d", c.CommitWorkers)
	}
	return nil
}

// HP returns the hardware parallelism: total thread slots of the device
// (Eq. 1 of the paper: hp = cores x warps x threads).
func (c Config) HP() int { return c.Cores * c.Warps * c.Threads }

// Name renders the paper's compact configuration notation, e.g. "4c8w16t".
func (c Config) Name() string { return fmt.Sprintf("%dc%dw%dt", c.Cores, c.Warps, c.Threads) }

// latencyFor returns the writeback latency of op-class lat entries; memory
// instructions are timed by the hierarchy instead.
func (l Latencies) max() int {
	m := l.ALU
	for _, v := range []int{l.Mul, l.Div, l.FAdd, l.FMul, l.FMA, l.FDiv, l.FSqrt} {
		if v > m {
			m = v
		}
	}
	return m
}
