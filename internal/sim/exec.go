package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mem"
)

// execute runs one issued instruction on warp w (functionally at issue,
// with latencies applied through the scoreboard) and advances the pc.
// Lane loops are written out explicitly: this function runs once per
// simulated instruction and must not allocate.
func (s *Sim) execute(c *simCore, wid int, w *warp, in isa.Inst) error {
	if s.observer != nil {
		s.observer(IssueEvent{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Mask: w.tmask, Inst: in})
	}
	c.stats.Issued++
	c.stats.LaneOps += uint64(bits.OnesCount64(w.tmask))

	nextPC := w.pc + 4
	lat := s.cfg.Lat
	op := in.Op
	rd, rs1, rs2 := int(in.Rd), int(in.Rs1), int(in.Rs2)

	switch {
	case op >= isa.ADD && op <= isa.AND || op >= isa.MUL && op <= isa.REMU:
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = intALU(op, w.regs[b+rs1], w.regs[b+rs2])
			}
			w.pendI[rd] = s.cycle + uint64(intLatency(op, lat))
		}

	case op >= isa.ADDI && op <= isa.SRAI:
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = intALUImm(op, w.regs[b+rs1], in.Imm)
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}

	case op == isa.LUI:
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = uint32(in.Imm)
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}

	case op == isa.AUIPC:
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = w.pc + uint32(in.Imm)
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}

	case op == isa.JAL:
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = w.pc + 4
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}
		nextPC = w.pc + uint32(in.Imm)

	case op == isa.JALR:
		var target uint32
		first := true
		for m := w.tmask; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m) * 32
			t := (w.regs[b+rs1] + uint32(in.Imm)) &^ 1
			if first {
				target, first = t, false
			} else if t != target {
				return s.trapf(c, wid, w, "divergent jalr target across lanes")
			}
		}
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = w.pc + 4
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}
		nextPC = target

	case in.IsBranch():
		var taken, first = false, true
		for m := w.tmask; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m) * 32
			t := branchTaken(op, w.regs[b+rs1], w.regs[b+rs2])
			if first {
				taken, first = t, false
			} else if t != taken {
				return s.trapf(c, wid, w, "divergent %s across active lanes (use vx_split/vx_join)", op)
			}
		}
		if taken {
			nextPC = w.pc + uint32(in.Imm)
		}

	case in.IsMem():
		done, err := s.executeMem(c, wid, w, in)
		if err != nil {
			return err
		}
		// Under the parallel engine the completion time is unknown until the
		// end-of-cycle commit walks the shared levels; commitDeferred patches
		// the scoreboard then (always before the next cycle's issue phase).
		if in.IsLoad() && !s.par {
			if op == isa.FLW {
				w.pendF[rd] = done
			} else if rd != 0 {
				w.pendI[rd] = done
			}
		}

	case op == isa.FENCE:
		// Memory ordering is trivially satisfied: the model performs all
		// functional accesses at issue, in order. FENCE is a 1-cycle nop.

	case op == isa.ECALL:
		// Kernel exit for the issuing warp. The issuing warp is always in
		// the ready set, so deactivation leaves it in neither scheduler set.
		w.active = false
		c.active--
		c.ready &^= 1 << uint(wid)

	case op == isa.EBREAK:
		return s.trapf(c, wid, w, "ebreak")

	case op >= isa.CSRRW && op <= isa.CSRRCI:
		if op != isa.CSRRS || rs1 != 0 {
			return s.trapf(c, wid, w, "only csrr (csrrs rd, csr, zero) is supported; CSRs are read-only")
		}
		for m := w.tmask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			v, err := s.csrRead(c, wid, w, lane, in.CSR)
			if err != nil {
				return s.trapf(c, wid, w, "%v", err)
			}
			if rd != 0 {
				w.regs[lane*32+rd] = v
			}
		}
		if rd != 0 {
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}

	case op >= isa.FADDS && op <= isa.FNMADDS:
		if err := s.executeFP(w, in); err != nil {
			return s.trapf(c, wid, w, "%v", err)
		}
		switch op {
		case isa.FADDS, isa.FSUBS, isa.FSGNJS, isa.FSGNJNS, isa.FSGNJXS, isa.FMINS, isa.FMAXS,
			isa.FCVTSW, isa.FCVTSWU, isa.FMVWX:
			w.pendF[rd] = s.cycle + uint64(lat.FAdd)
		case isa.FMULS:
			w.pendF[rd] = s.cycle + uint64(lat.FMul)
		case isa.FMADDS, isa.FMSUBS, isa.FNMSUBS, isa.FNMADDS:
			w.pendF[rd] = s.cycle + uint64(lat.FMA)
		case isa.FDIVS:
			w.pendF[rd] = s.cycle + uint64(lat.FDiv)
		case isa.FSQRTS:
			w.pendF[rd] = s.cycle + uint64(lat.FSqrt)
		case isa.FEQS, isa.FLTS, isa.FLES, isa.FCVTWS, isa.FCVTWUS, isa.FMVXW, isa.FCLASSS:
			if rd != 0 {
				w.pendI[rd] = s.cycle + uint64(lat.FAdd)
			}
		}

	case op == isa.VXTMC:
		nm := uint64(s.firstLaneValue(w, in.Rs1)) & s.fullMask
		if nm == 0 {
			w.active = false
			c.active--
			c.ready &^= 1 << uint(wid)
		} else {
			w.tmask = nm
		}

	case op == isa.VXWSPAWN:
		n := int(s.firstLaneValue(w, in.Rs1))
		entry := s.firstLaneValue(w, in.Rs2)
		if n > s.cfg.Warps {
			n = s.cfg.Warps
		}
		for k := 1; k < n; k++ {
			tgt := &c.warps[k]
			if tgt.active {
				return s.trapf(c, wid, w, "vx_wspawn: warp %d already active", k)
			}
			s.resetWarp(tgt, entry, 1)
			c.ready |= 1 << uint(k)
			c.active++
		}

	case op == isa.VXSPLIT:
		if len(w.ipdom) >= maxIPDOMDepth {
			return s.trapf(c, wid, w, "IPDOM stack overflow")
		}
		pred := predMask(w, rs1)
		then := w.tmask & pred
		els := w.tmask &^ pred
		if then == 0 || els == 0 {
			// Unanimous: push a marker so the matching join pops cleanly.
			w.ipdom = append(w.ipdom, ipdomEntry{mask: w.tmask, reconv: true})
		} else {
			w.ipdom = append(w.ipdom,
				ipdomEntry{mask: w.tmask, reconv: true},
				ipdomEntry{mask: els, pc: w.pc + 4})
			w.tmask = then
		}

	case op == isa.VXJOIN:
		if len(w.ipdom) == 0 {
			return s.trapf(c, wid, w, "vx_join with empty IPDOM stack")
		}
		e := w.ipdom[len(w.ipdom)-1]
		w.ipdom = w.ipdom[:len(w.ipdom)-1]
		w.tmask = e.mask
		if !e.reconv {
			nextPC = e.pc
		}

	case op == isa.VXBAR:
		id := int(s.firstLaneValue(w, in.Rs1))
		count := int(s.firstLaneValue(w, in.Rs2))
		if id < 0 || id >= maxBarriers {
			return s.trapf(c, wid, w, "barrier id %d out of range", id)
		}
		if count > s.cfg.Warps {
			return s.trapf(c, wid, w, "barrier count %d exceeds %d warps", count, s.cfg.Warps)
		}
		if count > 1 {
			b := &c.barriers[id]
			b.arrived++
			if b.arrived >= count {
				// Release everyone (the arriving warp never blocks). Waiters
				// re-enter the scheduler's ready set: a released warp's next
				// attempt re-decodes at its post-barrier pc.
				for m := b.waiters; m != 0; m &= m - 1 {
					c.warps[bits.TrailingZeros64(m)].barWait = false
				}
				c.ready |= b.waiters
				*b = barrier{}
				if c.nextWake > s.cycle {
					c.nextWake = s.cycle
				}
			} else {
				b.waiters |= 1 << uint(wid)
				w.barWait = true
				c.ready &^= 1 << uint(wid)
			}
		}

	case op == isa.VXPRED:
		if nm := w.tmask & predMask(w, rs1); nm != 0 {
			w.tmask = nm
		}

	case op == isa.VXBALLOT:
		count := uint32(bits.OnesCount64(w.tmask & predMask(w, rs1)))
		if rd != 0 {
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				w.regs[b+rd] = count
			}
			w.pendI[rd] = s.cycle + uint64(lat.ALU)
		}

	default:
		return s.trapf(c, wid, w, "unimplemented op %s", op)
	}

	w.pc = nextPC
	return nil
}

func (s *Sim) trapf(c *simCore, wid int, w *warp, format string, args ...any) error {
	return &Trap{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Reason: fmt.Sprintf(format, args...)}
}

// predMask builds the lane mask of active lanes whose integer register r
// is non-zero.
func predMask(w *warp, r int) uint64 {
	var pred uint64
	for m := w.tmask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		if w.regs[lane*32+r] != 0 {
			pred |= 1 << uint(lane)
		}
	}
	return pred
}

// firstLaneValue reads integer register r of the lowest active lane.
func (s *Sim) firstLaneValue(w *warp, r uint8) uint32 {
	lane := bits.TrailingZeros64(w.tmask)
	return w.regs[lane*32+int(r)]
}

// executeMem performs a load/store: functional access now, timing through
// the coalescer and hierarchy. It returns the cycle loaded data is ready.
func (s *Sim) executeMem(c *simCore, wid int, w *warp, in isa.Inst) (uint64, error) {
	size := uint32(4)
	switch in.Op {
	case isa.LB, isa.LBU, isa.SB:
		size = 1
	case isa.LH, isa.LHU, isa.SH:
		size = 2
	}
	isStore := in.IsStore()
	rd, rs1, rs2 := int(in.Rd), int(in.Rs1), int(in.Rs2)

	// Gather lane addresses and validate every active lane before any
	// functional access: a store warp that traps on a later lane must not
	// leave earlier lanes' stores committed to memory.
	for m := w.tmask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		addr := w.regs[lane*32+rs1] + uint32(in.Imm)
		c.addrBuf[lane] = addr
		if !s.memory.InBounds(addr, size) {
			return 0, s.trapf(c, wid, w, "%s lane %d address %#x out of bounds (mem size %#x)", in.Op, lane, addr, s.memory.Size())
		}
		if addr%size != 0 {
			return 0, s.trapf(c, wid, w, "%s lane %d address %#x misaligned", in.Op, lane, addr)
		}
	}

	// Functional access, now that no lane can trap.
	for m := w.tmask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		b := lane * 32
		addr := c.addrBuf[lane]
		switch in.Op {
		case isa.LW:
			v, _ := s.memory.Read32(addr)
			if rd != 0 {
				w.regs[b+rd] = v
			}
		case isa.FLW:
			v, _ := s.memory.Read32(addr)
			w.fregs[b+rd] = v
		case isa.LH:
			v, _ := s.memory.Read16(addr)
			if rd != 0 {
				w.regs[b+rd] = uint32(int32(int16(v)))
			}
		case isa.LHU:
			v, _ := s.memory.Read16(addr)
			if rd != 0 {
				w.regs[b+rd] = uint32(v)
			}
		case isa.LB:
			v, _ := s.memory.Read8(addr)
			if rd != 0 {
				w.regs[b+rd] = uint32(int32(int8(v)))
			}
		case isa.LBU:
			v, _ := s.memory.Read8(addr)
			if rd != 0 {
				w.regs[b+rd] = uint32(v)
			}
		case isa.SW:
			s.memory.Write32(addr, w.regs[b+rs2])
		case isa.FSW:
			s.memory.Write32(addr, w.fregs[b+rs2])
		case isa.SH:
			s.memory.Write16(addr, uint16(w.regs[b+rs2]))
		case isa.SB:
			s.memory.Write8(addr, uint8(w.regs[b+rs2]))
		}
	}

	// Timing: coalesce lanes into line requests, streamed 1/cycle. The
	// scratch buffers are per-core and preallocated: this path runs once per
	// memory instruction and must not allocate (and under the parallel
	// engine it runs concurrently across cores).
	shift := s.hier.LineShift()
	var lines []uint32
	if s.NoCoalesce {
		lines = c.lineBuf[:0]
		for m := w.tmask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			lines = append(lines, c.addrBuf[lane]>>shift<<shift)
		}
		c.lineBuf = lines
	} else {
		c.lineBuf = mem.Coalesce(c.addrBuf[:s.cfg.Threads], w.tmask, shift, c.lineBuf)
		lines = c.lineBuf
	}
	return s.memTiming(c, wid, rd, isStore, in.IsLoad(), in.Op == isa.FLW, lines), nil
}

// memTiming walks one memory instruction's coalesced line requests through
// the hierarchy and applies the LSU/MSHR and statistics side effects — the
// timing half of executeMem, shared verbatim by the batched-memory replay
// (finishBatchedMem), which must produce the same completion cycles, MSHR
// allocations and deferred-commit records as the per-warp path. Returns the
// load completion cycle (sequential engines; the parallel engine patches it
// at commit instead).
func (s *Sim) memTiming(c *simCore, wid, rd int, isStore, isLoad, fp bool, lines []uint32) uint64 {
	ports := s.cfg.LSUPorts
	var done uint64
	if s.par {
		// Concurrent phase: walk only this core's private L1 and queue the
		// misses; commitDeferred completes them in (cycle, core) order.
		d := &c.md
		d.active, d.isLoad, d.fp = true, isLoad, fp
		d.wid, d.rd = wid, rd
		d.nMiss, d.partialDone = 0, 0
		for i, line := range lines {
			r, miss, mi := s.hier.L1Access(c.id, line, isStore, s.cycle+uint64(i/ports))
			if miss {
				d.miss[d.nMiss] = mi
				d.nMiss++
			} else if r.Done > d.partialDone {
				d.partialDone = r.Done
			}
		}
	} else {
		for i, line := range lines {
			r := s.hier.Access(c.id, line, isStore, s.cycle+uint64(i/ports))
			if r.Done > done {
				done = r.Done
			}
			if s.mshrs > 0 && !r.L1Hit {
				// Allocate an MSHR per L1 miss (stores allocate too:
				// write-allocate fills). The parallel engine appends the
				// same entries at commit time (commitPatch/commitDeferred),
				// when the miss completions become known — the gate is next
				// consulted at the core's next issue, after both.
				c.mshr = append(c.mshr, r.Done)
			}
		}
	}
	c.lsuFree = s.cycle + uint64((len(lines)+ports-1)/ports)
	c.stats.LineRequests += uint64(len(lines))
	if isStore {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
	return done
}

// csrRead implements the read-only CSR space.
func (s *Sim) csrRead(c *simCore, wid int, w *warp, lane int, csr uint16) (uint32, error) {
	switch csr {
	case isa.CSRThreadID:
		return uint32(lane), nil
	case isa.CSRWarpID:
		return uint32(wid), nil
	case isa.CSRCoreID:
		return uint32(c.id), nil
	case isa.CSRTMask:
		return uint32(w.tmask), nil
	case isa.CSRNumThreads:
		return uint32(s.cfg.Threads), nil
	case isa.CSRNumWarps:
		return uint32(s.cfg.Warps), nil
	case isa.CSRNumCores:
		return uint32(s.cfg.Cores), nil
	case isa.CSRCycle:
		return uint32(s.cycle), nil
	case isa.CSRCycleH:
		return uint32(s.cycle >> 32), nil
	case isa.CSRInstRet:
		return uint32(c.stats.Issued), nil
	case isa.CSRInstRetH:
		return uint32(c.stats.Issued >> 32), nil
	}
	return 0, fmt.Errorf("unknown csr %#x", csr)
}

// executeFP runs the functional part of floating-point computes with
// explicit lane loops (no allocation on the hot path).
func (s *Sim) executeFP(w *warp, in isa.Inst) error {
	f32 := math.Float32frombits
	b32 := math.Float32bits
	rd, rs1, rs2, rs3 := int(in.Rd), int(in.Rs1), int(in.Rs2), int(in.Rs3)

	for m := w.tmask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m) * 32
		switch in.Op {
		case isa.FADDS:
			w.fregs[b+rd] = b32(f32(w.fregs[b+rs1]) + f32(w.fregs[b+rs2]))
		case isa.FSUBS:
			w.fregs[b+rd] = b32(f32(w.fregs[b+rs1]) - f32(w.fregs[b+rs2]))
		case isa.FMULS:
			w.fregs[b+rd] = b32(f32(w.fregs[b+rs1]) * f32(w.fregs[b+rs2]))
		case isa.FDIVS:
			w.fregs[b+rd] = b32(f32(w.fregs[b+rs1]) / f32(w.fregs[b+rs2]))
		case isa.FSQRTS:
			w.fregs[b+rd] = b32(float32(math.Sqrt(float64(f32(w.fregs[b+rs1])))))
		case isa.FMINS:
			w.fregs[b+rd] = b32(fmin(f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2])))
		case isa.FMAXS:
			w.fregs[b+rd] = b32(fmax(f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2])))
		case isa.FSGNJS:
			w.fregs[b+rd] = w.fregs[b+rs1]&^signBit | w.fregs[b+rs2]&signBit
		case isa.FSGNJNS:
			w.fregs[b+rd] = w.fregs[b+rs1]&^signBit | (^w.fregs[b+rs2])&signBit
		case isa.FSGNJXS:
			w.fregs[b+rd] = w.fregs[b+rs1] ^ w.fregs[b+rs2]&signBit
		case isa.FMADDS:
			w.fregs[b+rd] = b32(fma32(f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2]), f32(w.fregs[b+rs3])))
		case isa.FMSUBS:
			w.fregs[b+rd] = b32(fma32(f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2]), -f32(w.fregs[b+rs3])))
		case isa.FNMSUBS:
			w.fregs[b+rd] = b32(fma32(-f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2]), f32(w.fregs[b+rs3])))
		case isa.FNMADDS:
			w.fregs[b+rd] = b32(fma32(-f32(w.fregs[b+rs1]), f32(w.fregs[b+rs2]), -f32(w.fregs[b+rs3])))
		case isa.FEQS:
			if rd != 0 {
				w.regs[b+rd] = boolBit(f32(w.fregs[b+rs1]) == f32(w.fregs[b+rs2]))
			}
		case isa.FLTS:
			if rd != 0 {
				w.regs[b+rd] = boolBit(f32(w.fregs[b+rs1]) < f32(w.fregs[b+rs2]))
			}
		case isa.FLES:
			if rd != 0 {
				w.regs[b+rd] = boolBit(f32(w.fregs[b+rs1]) <= f32(w.fregs[b+rs2]))
			}
		case isa.FCVTWS:
			if rd != 0 {
				w.regs[b+rd] = cvtWS(f32(w.fregs[b+rs1]))
			}
		case isa.FCVTWUS:
			if rd != 0 {
				w.regs[b+rd] = cvtWUS(f32(w.fregs[b+rs1]))
			}
		case isa.FCVTSW:
			w.fregs[b+rd] = b32(float32(int32(w.regs[b+rs1])))
		case isa.FCVTSWU:
			w.fregs[b+rd] = b32(float32(w.regs[b+rs1]))
		case isa.FMVXW:
			if rd != 0 {
				w.regs[b+rd] = w.fregs[b+rs1]
			}
		case isa.FMVWX:
			w.fregs[b+rd] = w.regs[b+rs1]
		case isa.FCLASSS:
			if rd != 0 {
				w.regs[b+rd] = fclass(f32(w.fregs[b+rs1]))
			}
		default:
			return fmt.Errorf("unimplemented FP op %s", in.Op)
		}
	}
	return nil
}

const signBit = uint32(1) << 31

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// fma32 is a fused multiply-add rounded once to float32.
func fma32(a, b, c float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(c)))
}

// fmin/fmax follow RISC-V: if one operand is NaN, return the other.
func fmin(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a < b:
		return a
	}
	return b
}

func fmax(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a > b:
		return a
	}
	return b
}

// cvtWS converts float32 to int32 with RISC-V truncation and clamping.
func cvtWS(f float32) uint32 {
	switch {
	case f != f:
		return uint32(math.MaxInt32)
	case f >= math.MaxInt32:
		return uint32(math.MaxInt32)
	case f <= math.MinInt32:
		return 0x80000000 // int32 min
	}
	return uint32(int32(f))
}

func cvtWUS(f float32) uint32 {
	switch {
	case f != f:
		return math.MaxUint32
	case f >= math.MaxUint32:
		return math.MaxUint32
	case f <= 0:
		return 0
	}
	return uint32(f)
}

// fclass returns the RISC-V fclass.s bit for f.
func fclass(f float32) uint32 {
	b := math.Float32bits(f)
	sign := b&signBit != 0
	exp := b >> 23 & 0xFF
	frac := b & 0x7FFFFF
	switch {
	case exp == 0xFF && frac != 0:
		if frac&(1<<22) != 0 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signaling NaN
	case exp == 0xFF && sign:
		return 1 << 0 // -inf
	case exp == 0xFF:
		return 1 << 7 // +inf
	case exp == 0 && frac == 0 && sign:
		return 1 << 3 // -0
	case exp == 0 && frac == 0:
		return 1 << 4 // +0
	case exp == 0 && sign:
		return 1 << 2 // negative subnormal
	case exp == 0:
		return 1 << 5 // positive subnormal
	case sign:
		return 1 << 1 // negative normal
	}
	return 1 << 6 // positive normal
}
