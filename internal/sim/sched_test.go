package sim

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// This file pins the scheduler subsystem (sched.go): heap-vs-scan-oracle
// byte-identity for the policies both engines implement, determinism and
// functional equivalence of the heap-only policies, the ready/sleep set
// invariant, the observer ordering contract, and both deadlockTrap
// diagnostics. The kernel-level sched x engine matrix lives in
// sched_matrix_test.go; the sweep-level record identity in internal/sweep.

// highWarpProg is a strided load/store loop laid out for up to 64 warps of
// up to 4 cores without cross-core overlap (cid<<16, wid<<10, tid<<6),
// so scan/heap and sequential/parallel runs stay race-free at the high
// warp counts where the two issue engines diverge most in cost.
const highWarpProg = `
	csrr s0, cid
	slli s0, s0, 16
	csrr t0, wid
	slli t1, t0, 10
	add  s0, s0, t1
	csrr t0, tid
	slli t1, t0, 6
	add  s0, s0, t1
	li   t2, 0x8000
	add  s0, s0, t2
	li   t3, 8
loop:
	lw   t4, 0(s0)
	add  t4, t4, t3
	fcvt.s.w f0, t4
	fmadd.s f1, f0, f0, f0
	sw   t4, 0(s0)
	addi s0, s0, 64
	addi t3, t3, -1
	bnez t3, loop
	ecall
`

// schedDiffCases are the (program, activation) points every scheduler
// differential below runs.
func schedDiffCases() []struct {
	name     string
	prog     string
	activate func(Config) func(*Sim) error
} {
	return []struct {
		name     string
		prog     string
		activate func(Config) func(*Sim) error
	}{
		{"mem", diffMemProg, func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"fp-divergence", diffFPProg, func(cfg Config) func(*Sim) error { return activateAll(cfg, 4, 0xF) }},
		{"wspawn-barrier", diffSpawnProg, func(cfg Config) func(*Sim) error { return activateAll(cfg, 1, 1) }},
	}
}

// TestSchedHeapMatchesScanOracle is the bare-simulator half of the
// scheduler differential: for the rr and gto policies the
// ready-set/wake-heap engine must be byte-identical — cycles, per-core
// counters (including the MemStall/ExecStall attribution), cache and DRAM
// statistics, memory contents — to the legacy scan loop retained behind
// Config.ScanSched, at every worker count.
func TestSchedHeapMatchesScanOracle(t *testing.T) {
	for _, sched := range []SchedPolicy{SchedRoundRobin, SchedGTO} {
		for _, tc := range schedDiffCases() {
			t.Run(fmt.Sprintf("%s/%s", sched, tc.name), func(t *testing.T) {
				cfg := DefaultConfig(4, 4, 4)
				cfg.Sched = sched
				cfg.ScanSched = true
				oracle := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), 1)
				cfg.ScanSched = false
				for _, workers := range []int{1, 4} {
					heap := runSnapshot(t, cfg, tc.prog, tc.activate(cfg), workers)
					diffSnapshots(t, fmt.Sprintf("%s/%s/workers=%d", sched, tc.name, workers), oracle, heap)
				}
			})
		}
	}
}

// TestSchedHighWarpDifferential runs the scheduler differential at the
// warp count the wake heap exists for: 32 warps per core. rr and gto are
// diffed against the scan oracle; every policy is additionally diffed
// sequential-vs-parallel.
func TestSchedHighWarpDifferential(t *testing.T) {
	activate := func(cfg Config) func(*Sim) error { return activateAll(cfg, 32, 0x3) }
	for _, sched := range SchedPolicies() {
		t.Run(sched.String(), func(t *testing.T) {
			cfg := DefaultConfig(2, 32, 2)
			cfg.Sched = sched
			seq := runSnapshot(t, cfg, highWarpProg, activate(cfg), 1)
			par := runSnapshot(t, cfg, highWarpProg, activate(cfg), 2)
			diffSnapshots(t, fmt.Sprintf("%s/seq-vs-par", sched), seq, par)
			if sched == SchedRoundRobin || sched == SchedGTO {
				cfg.ScanSched = true
				oracle := runSnapshot(t, cfg, highWarpProg, activate(cfg), 1)
				diffSnapshots(t, fmt.Sprintf("%s/heap-vs-scan", sched), oracle, seq)
			}
		})
	}
}

// TestSchedPoliciesFunctionallyIdentical pins that scheduling affects
// timing only: every policy retires the same architectural state (memory
// contents) and the same issued-instruction count on a race-free program,
// while remaining free to differ in cycles.
func TestSchedPoliciesFunctionallyIdentical(t *testing.T) {
	var ref snapshot
	for i, sched := range SchedPolicies() {
		cfg := DefaultConfig(2, 8, 4)
		cfg.Sched = sched
		snap := runSnapshot(t, cfg, highWarpProg, activateAll(cfg, 8, 0xF), 1)
		var issued uint64
		for _, cs := range snap.cores {
			issued += cs.Issued
		}
		if i == 0 {
			ref = snap
			continue
		}
		var refIssued uint64
		for _, cs := range ref.cores {
			refIssued += cs.Issued
		}
		if issued != refIssued {
			t.Errorf("%s: issued %d instructions, rr issued %d", sched, issued, refIssued)
		}
		if !slices.Equal(snap.memData, ref.memData) {
			t.Errorf("%s: final memory differs from rr", sched)
		}
	}
}

// TestSchedSetsDrainAfterRun pins the scheduler-set invariant at the only
// externally observable point: once every warp has retired, each core's
// ready set and wake heap must both be empty (an active non-barrier warp
// is in exactly one of them; inactive warps are in neither).
func TestSchedSetsDrainAfterRun(t *testing.T) {
	cfg := DefaultConfig(2, 4, 4)
	p := asm.MustAssemble(diffSpawnProg, 0x1000, nil)
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		t.Fatal(err)
	}
	if err := activateAll(cfg, 1, 1)(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range s.cores {
		c := &s.cores[i]
		if c.ready != 0 {
			t.Errorf("core %d: ready set %#x not drained after run", i, c.ready)
		}
		if len(c.wakeHeap) != 0 {
			t.Errorf("core %d: wake heap holds %d entries after run", i, len(c.wakeHeap))
		}
	}
}

// TestObserverForcesSequentialOrder pins the observer contract documented
// on Run: an installed observer forces the sequential engine, so the
// per-issue event stream arrives in global (cycle, core) issue order and
// is identical at any Workers setting.
func TestObserverForcesSequentialOrder(t *testing.T) {
	cfg := DefaultConfig(4, 2, 4)
	collect := func(workers int) []IssueEvent {
		t.Helper()
		p := asm.MustAssemble(diffMemProg, 0x1000, nil)
		memory := mem.NewMemory(1 << 20)
		hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, memory, hier)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgram(p.Base, p.Insts); err != nil {
			t.Fatal(err)
		}
		var evs []IssueEvent
		s.SetObserver(func(e IssueEvent) { evs = append(evs, e) })
		if err := activateAll(cfg, 2, 0xF)(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunParallel(workers); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	seq := collect(1)
	if len(seq) == 0 {
		t.Fatal("observer saw no issues")
	}
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1], seq[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Core < a.Core) {
			t.Fatalf("event %d (cycle %d core %d) arrived after (cycle %d core %d): global issue order violated",
				i, b.Cycle, b.Core, a.Cycle, a.Core)
		}
	}
	par := collect(4)
	if !slices.Equal(seq, par) {
		t.Errorf("observer stream differs between Workers=1 (%d events) and Workers=4 (%d events): observer did not force the sequential engine",
			len(seq), len(par))
	}
}

// deadlockBarrierProg: warp 0 exits immediately while warp 1 waits on a
// two-warp barrier no second warp can ever reach.
const deadlockBarrierProg = `
	csrr t0, wid
	bnez t0, wait
	ecall
wait:
	li   t0, 0
	li   t1, 2
	vx_bar t0, t1
	ecall
`

// TestDeadlockTrapBarrierNeverFills drives the first deadlockTrap variant
// end-to-end through both engines: a warp parked on a barrier that can
// never fill must trap with the barrier diagnostic and the waiting warp's
// coordinates, at any worker count.
func TestDeadlockTrapBarrierNeverFills(t *testing.T) {
	for _, scan := range []bool{false, true} {
		for _, workers := range []int{1, 2} {
			name := fmt.Sprintf("scan=%v/workers=%d", scan, workers)
			cfg := DefaultConfig(2, 2, 2)
			cfg.ScanSched = scan
			p := asm.MustAssemble(deadlockBarrierProg, 0x1000, nil)
			memory := mem.NewMemory(1 << 16)
			hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, memory, hier)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.LoadProgram(p.Base, p.Insts); err != nil {
				t.Fatal(err)
			}
			if err := activateAll(cfg, 2, 0x3)(s); err != nil {
				t.Fatal(err)
			}
			trap, ok := s.RunParallel(workers).(*Trap)
			if !ok {
				t.Fatalf("%s: want a deadlock *Trap, got %v", name, trap)
			}
			if !strings.Contains(trap.Reason, "barrier that can never fill") {
				t.Errorf("%s: trap reason %q, want the barrier diagnostic", name, trap.Reason)
			}
			if trap.Warp != 1 {
				t.Errorf("%s: trap names warp %d, want the waiting warp 1", name, trap.Warp)
			}
		}
	}
}

// TestDeadlockTrapNoSchedulableEvent pins the second deadlockTrap variant
// directly. Run can only reach it through a scheduler-bookkeeping bug (a
// runnable warp always yields a wake time), so it is the defensive
// diagnostic; construct its state by hand and pin the classification.
func TestDeadlockTrapNoSchedulableEvent(t *testing.T) {
	s := rigNoStart(t, DefaultConfig(1, 1, 1), `ecall`, nil)
	if err := s.ActivateWarp(0, 0, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	trap, ok := s.deadlockTrap().(*Trap)
	if !ok {
		t.Fatal("deadlockTrap did not return a *Trap")
	}
	if !strings.Contains(trap.Reason, "no schedulable event") {
		t.Errorf("trap reason %q, want the no-schedulable-event diagnostic", trap.Reason)
	}
}

// TestParseSchedPolicy pins the name round trip the CLI flags and the
// sweep checkpoint meta depend on.
func TestParseSchedPolicy(t *testing.T) {
	for _, p := range SchedPolicies() {
		got, err := ParseSchedPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSchedPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseSchedPolicy("lifo"); err == nil {
		t.Error("ParseSchedPolicy accepted an unknown policy")
	}
}

// TestValidateSchedulerConstraints pins the two structural limits the
// scheduler subsystem introduces: the 64-warp ready-mask width and the
// scan oracle's restriction to the policies it implements.
func TestValidateSchedulerConstraints(t *testing.T) {
	cfg := DefaultConfig(1, 65, 2)
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "64") {
		t.Errorf("Validate(65 warps) = %v, want the warp-mask width error", err)
	}
	cfg = DefaultConfig(1, 2, 2)
	cfg.Sched = SchedOldestFirst
	cfg.ScanSched = true
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "scan") {
		t.Errorf("Validate(ScanSched+oldest) = %v, want the scan-oracle restriction", err)
	}
	cfg.ScanSched = false
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate(heap+oldest) = %v, want ok", err)
	}
}
