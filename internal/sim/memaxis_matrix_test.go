package sim_test

// Kernel-level half of the memory-axis differential harness: registry
// kernels run end-to-end through the OpenCL-style runtime at non-default
// memory grid points (MSHR bound, L1 geometry, next-line prefetch). At each
// point the sequential tick loop is the oracle; the event engine on both
// the sequential and the parallel runner must produce byte-identical
// launch reports and memory-system state, prefetch counters included.
// internal/sim/memaxis_test.go pins the same property at the bare-sim
// level; internal/sweep/mem_axis_test.go at sweep-record level.

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// memMatrixPoints are the non-default memory points the kernel matrix
// runs; the all-defaults point is the engine matrix's existing territory.
var memMatrixPoints = []struct {
	name     string
	mshrs    int
	l1       string
	prefetch mem.PrefetchPolicy
}{
	{name: "mshrs=4", mshrs: 4},
	{name: "l1=8k2w", l1: "8k2w"},
	{name: "prefetch=nextline", prefetch: mem.PrefetchNextLine},
	{name: "mshrs=2/l1=8k2w/prefetch=nextline", mshrs: 2, l1: "8k2w", prefetch: mem.PrefetchNextLine},
}

func runMemAxisKernel(t *testing.T, name string, pt int, tick bool, workers int) kernelRun {
	t.Helper()
	p := memMatrixPoints[pt]
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.TickEngine = tick
	cfg.Workers = workers
	cfg.CommitWorkers = workers
	cfg.Mem.L1.MSHRs = p.mshrs
	cfg.Mem.L2.MSHRs = p.mshrs
	if p.l1 != "" {
		size, ways, err := mem.ParseL1Geometry(p.l1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mem.L1.SizeBytes = size
		cfg.Mem.L1.Ways = ways
	}
	cfg.Mem.Prefetch = p.prefetch
	return runMatrixKernelCfg(t, name, cfg, fmt.Sprintf("%s tick=%v workers=%d", p.name, tick, workers))
}

func TestMemAxisKernelMatrix(t *testing.T) {
	kernels := []string{"vecadd", "saxpy", "sgemm"}
	if testing.Short() {
		kernels = []string{"vecadd"}
	}
	for _, name := range kernels {
		for pt := range memMatrixPoints {
			t.Run(fmt.Sprintf("%s/%s", name, memMatrixPoints[pt].name), func(t *testing.T) {
				oracle := runMemAxisKernel(t, name, pt, true, 1)
				eventSeq := runMemAxisKernel(t, name, pt, false, 1)
				eventPar := runMemAxisKernel(t, name, pt, false, 4)
				diffKernelRuns(t, name+"/tick-seq-vs-event-seq", oracle, eventSeq)
				diffKernelRuns(t, name+"/tick-seq-vs-event-par", oracle, eventPar)
			})
		}
	}
}
