package sim

// Uniform-warp batched execution. SIMT kernels keep many warps of a core
// in lockstep: same pc, same thread mask, no divergence — yet the per-warp
// issue path re-dispatches the same opcode switch and re-walks the same
// lane loop once per warp per instruction. When Config.BatchExec is on,
// the heap scheduler engine (issueHeap, sched.go) detects such cohorts at
// issue time and executes the instruction functionally ONCE over the whole
// cohort with a fused warps x lanes kernel from this file. Timing is not
// batched: each cohort member still occupies its own issue slot, and when
// the scheduler actually picks it the per-warp bookkeeping — observer
// IssueEvent, Issued/LaneOps statistics, scoreboard writeback, pc advance —
// is replayed at the true issue cycle by finishBatched, in exactly the
// order the unbatched path produces. Every simulated observable (device
// cycles, statistics, stall attribution, observer stream, sweep records)
// is therefore byte-identical to the per-warp oracle (BatchExec=false),
// which is enforced by the four-layer differential harness (batch_test.go,
// the registry-kernel matrix, the sweep record test and the CI CLI diff).
//
// Only pure compute is batchable: ALU/imm/LUI/AUIPC and FP computes. These
// never trap, never touch memory, never redirect the pc and never mutate
// warp control state, so pre-executing a cohort mate a few cycles before
// its issue slot is architecturally invisible. Branches, jumps, memory
// ops, CSR reads, FENCE/ECALL/EBREAK and the VX* warp-control ops always
// take the per-warp path, keeping divergence diagnostics and executeMem
// coalescing/timing untouched.
//
// The fused loops hoist the register-file slice headers into locals
// (regs/fregs): the element stores provably cannot alias the headers then,
// so the compiler keeps them in registers instead of reloading them after
// every store.

import (
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mem"
)

// batchable reports whether op is eligible for cohort execution: pure
// compute whose only architectural effects are register writes and a
// pc += 4 advance (cannot trap, no memory access, no control flow, no
// warp-control side effects).
func batchable(op isa.Op) bool {
	switch {
	case op >= isa.ADD && op <= isa.AND,
		op >= isa.MUL && op <= isa.REMU,
		op >= isa.ADDI && op <= isa.SRAI,
		op == isa.LUI, op == isa.AUIPC,
		op >= isa.FADDS && op <= isa.FNMADDS:
		return true
	}
	return false
}

// batchExec functionally executes one batchable instruction for every warp
// of the cohort span. The opcode dispatch runs once per cohort; the per-op
// bodies are tight fused loops over warps x active lanes on the lane-major
// register files. Scoreboard, statistics and observer effects are NOT
// applied here — they are replayed per warp by finishBatched when each
// member's issue slot arrives.
func batchExec(ws []*warp, in isa.Inst) {
	op := in.Op
	switch {
	case op >= isa.ADD && op <= isa.AND || op >= isa.MUL && op <= isa.REMU:
		batchIntRR(ws, in)
	case op >= isa.ADDI && op <= isa.SRAI:
		batchIntImm(ws, in)
	case op == isa.LUI:
		rd := int(in.Rd)
		if rd == 0 {
			return
		}
		v := uint32(in.Imm)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = v
			}
		}
	case op == isa.AUIPC:
		rd := int(in.Rd)
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs := w.regs
			v := w.pc + uint32(in.Imm) // cohort pcs are identical by construction
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = v
			}
		}
	default: // FADDS..FNMADDS, guaranteed by batchable
		batchFP(ws, in)
	}
}

// batchIntRR fuses register-register integer ops. The hot single-cycle ops
// and MUL get dedicated loops; the long-latency ops (MULH*/DIV*/REM*) share
// the scalar intALU helper — their per-lane dispatch cost is irrelevant
// next to their functional-unit latency, and reusing the helper keeps the
// division edge cases (divide by zero, MinInt32/-1) in one place.
func batchIntRR(ws []*warp, in isa.Inst) {
	rd, rs1, rs2 := int(in.Rd), int(in.Rs1), int(in.Rs2)
	if rd == 0 {
		return
	}
	switch in.Op {
	case isa.ADD:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] + regs[b+rs2]
			}
		}
	case isa.SUB:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] - regs[b+rs2]
			}
		}
	case isa.SLL:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] << (regs[b+rs2] & 31)
			}
		}
	case isa.SLT:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = boolBit(int32(regs[b+rs1]) < int32(regs[b+rs2]))
			}
		}
	case isa.SLTU:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = boolBit(regs[b+rs1] < regs[b+rs2])
			}
		}
	case isa.XOR:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] ^ regs[b+rs2]
			}
		}
	case isa.SRL:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] >> (regs[b+rs2] & 31)
			}
		}
	case isa.SRA:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = uint32(int32(regs[b+rs1]) >> (regs[b+rs2] & 31))
			}
		}
	case isa.OR:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] | regs[b+rs2]
			}
		}
	case isa.AND:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] & regs[b+rs2]
			}
		}
	case isa.MUL:
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] * regs[b+rs2]
			}
		}
	default: // MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU
		op := in.Op
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = intALU(op, regs[b+rs1], regs[b+rs2])
			}
		}
	}
}

// batchIntImm fuses register-immediate integer ops.
func batchIntImm(ws []*warp, in isa.Inst) {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if rd == 0 {
		return
	}
	imm := in.Imm
	switch in.Op {
	case isa.ADDI:
		v := uint32(imm)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] + v
			}
		}
	case isa.XORI:
		v := uint32(imm)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] ^ v
			}
		}
	case isa.ORI:
		v := uint32(imm)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] | v
			}
		}
	case isa.ANDI:
		v := uint32(imm)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] & v
			}
		}
	case isa.SLLI:
		sh := uint(imm & 31)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] << sh
			}
		}
	case isa.SRLI:
		sh := uint(imm & 31)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = regs[b+rs1] >> sh
			}
		}
	case isa.SRAI:
		sh := uint(imm & 31)
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = uint32(int32(regs[b+rs1]) >> sh)
			}
		}
	default: // SLTI, SLTIU
		op := in.Op
		for _, w := range ws {
			regs := w.regs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = intALUImm(op, regs[b+rs1], imm)
			}
		}
	}
}

// batchFP fuses the floating-point computes. The add/mul/FMA family gets
// dedicated loops; the long-latency and bookkeeping ops reuse the scalar
// helpers (fmin, cvtWS, fclass, ...) so the RISC-V NaN and clamping rules
// stay in one place. Semantics mirror executeFP case by case, including
// the rd==x0 guards on the int-destination ops.
func batchFP(ws []*warp, in isa.Inst) {
	f32 := math.Float32frombits
	b32 := math.Float32bits
	rd, rs1, rs2, rs3 := int(in.Rd), int(in.Rs1), int(in.Rs2), int(in.Rs3)

	switch in.Op {
	case isa.FADDS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(f32(fregs[b+rs1]) + f32(fregs[b+rs2]))
			}
		}
	case isa.FSUBS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(f32(fregs[b+rs1]) - f32(fregs[b+rs2]))
			}
		}
	case isa.FMULS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(f32(fregs[b+rs1]) * f32(fregs[b+rs2]))
			}
		}
	case isa.FMADDS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fma32(f32(fregs[b+rs1]), f32(fregs[b+rs2]), f32(fregs[b+rs3])))
			}
		}
	case isa.FMSUBS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fma32(f32(fregs[b+rs1]), f32(fregs[b+rs2]), -f32(fregs[b+rs3])))
			}
		}
	case isa.FNMSUBS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fma32(-f32(fregs[b+rs1]), f32(fregs[b+rs2]), f32(fregs[b+rs3])))
			}
		}
	case isa.FNMADDS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fma32(-f32(fregs[b+rs1]), f32(fregs[b+rs2]), -f32(fregs[b+rs3])))
			}
		}
	case isa.FDIVS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(f32(fregs[b+rs1]) / f32(fregs[b+rs2]))
			}
		}
	case isa.FSQRTS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(float32(math.Sqrt(float64(f32(fregs[b+rs1])))))
			}
		}
	case isa.FMINS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fmin(f32(fregs[b+rs1]), f32(fregs[b+rs2])))
			}
		}
	case isa.FMAXS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(fmax(f32(fregs[b+rs1]), f32(fregs[b+rs2])))
			}
		}
	case isa.FSGNJS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = fregs[b+rs1]&^signBit | fregs[b+rs2]&signBit
			}
		}
	case isa.FSGNJNS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = fregs[b+rs1]&^signBit | (^fregs[b+rs2])&signBit
			}
		}
	case isa.FSGNJXS:
		for _, w := range ws {
			fregs := w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = fregs[b+rs1] ^ fregs[b+rs2]&signBit
			}
		}
	case isa.FCVTSW:
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(float32(int32(regs[b+rs1])))
			}
		}
	case isa.FCVTSWU:
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = b32(float32(regs[b+rs1]))
			}
		}
	case isa.FMVWX:
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				fregs[b+rd] = regs[b+rs1]
			}
		}
	case isa.FEQS:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = boolBit(f32(fregs[b+rs1]) == f32(fregs[b+rs2]))
			}
		}
	case isa.FLTS:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = boolBit(f32(fregs[b+rs1]) < f32(fregs[b+rs2]))
			}
		}
	case isa.FLES:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = boolBit(f32(fregs[b+rs1]) <= f32(fregs[b+rs2]))
			}
		}
	case isa.FCVTWS:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = cvtWS(f32(fregs[b+rs1]))
			}
		}
	case isa.FCVTWUS:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = cvtWUS(f32(fregs[b+rs1]))
			}
		}
	case isa.FMVXW:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = fregs[b+rs1]
			}
		}
	case isa.FCLASSS:
		if rd == 0 {
			return
		}
		for _, w := range ws {
			regs, fregs := w.regs, w.fregs
			for m := w.tmask; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m) * 32
				regs[b+rd] = fclass(f32(fregs[b+rs1]))
			}
		}
	}
}

// batchWriteback classifies a batchable instruction's scoreboard writeback
// — which pend array it targets (none for rd == x0 int destinations) and
// its completion latency — mirroring execute's per-op writeback exactly.
// Computed once per cohort and stashed on each member (warp.batchDst /
// batchRd / batchLat), so finishBatched replays the writeback without
// re-running the opcode switches, or even reloading the instruction, per
// warp.
func batchWriteback(in isa.Inst, lat Latencies) (uint8, uint32) {
	op := in.Op
	rd := int(in.Rd)
	switch {
	case op >= isa.ADD && op <= isa.AND || op >= isa.MUL && op <= isa.REMU:
		if rd == 0 {
			return batchDstNone, 0
		}
		return batchDstInt, uint32(intLatency(op, lat))
	case op >= isa.ADDI && op <= isa.SRAI, op == isa.LUI, op == isa.AUIPC:
		if rd == 0 {
			return batchDstNone, 0
		}
		return batchDstInt, uint32(lat.ALU)
	default: // FADDS..FNMADDS: mirror execute's writeback classes exactly
		switch op {
		case isa.FMULS:
			return batchDstFP, uint32(lat.FMul)
		case isa.FMADDS, isa.FMSUBS, isa.FNMSUBS, isa.FNMADDS:
			return batchDstFP, uint32(lat.FMA)
		case isa.FDIVS:
			return batchDstFP, uint32(lat.FDiv)
		case isa.FSQRTS:
			return batchDstFP, uint32(lat.FSqrt)
		case isa.FEQS, isa.FLTS, isa.FLES, isa.FCVTWS, isa.FCVTWUS, isa.FMVXW, isa.FCLASSS:
			if rd == 0 {
				return batchDstNone, 0
			}
			return batchDstInt, uint32(lat.FAdd)
		default: // FADDS, FSUBS, FSGNJ*, FMIN/FMAX, FCVTSW(U), FMVWX
			return batchDstFP, uint32(lat.FAdd)
		}
	}
}

// tryBatchMem attempts cohort batching of a memory instruction under
// Config.BatchMem. The cohort predicate is collectCohort's, unchanged (same
// pc, same thread mask, no scoreboard hazard, no unconsumed pre-execution);
// with a cohort present the leader executes completely normally — per-lane
// validation, functional access, coalescing, hierarchy timing, statistics,
// observer event — and its decoded operation, lane address vector and line
// list are captured as the core's memTemplate. Each mate is then tested for
// AFFINE CONGRUENCE: its lane-address vector must equal the leader's plus
// one per-warp constant delta (the base + tid*stride shape every registry
// kernel emits). Congruent mates whose shifted address span stays in bounds
// and aligned are marked for batched replay (finishBatchedMem); the rest —
// scattered vectors, lane-varying deltas, out-of-bounds shifts — are simply
// left unmarked and execute (or trap) normally at their own issue slots,
// byte-identically to the oracle.
//
// Unlike compute batching, NOTHING of a mate executes at formation time:
// pre-running a load or store early would reorder it against other warps'
// stores and break functional byte-identity. The mate's functional access,
// hierarchy walk, MSHR allocation and statistics all happen at its true
// issue cycle; what batching removes is the per-warp re-decode, per-lane
// validation and re-coalescing, plus the per-lane access loop when the bulk
// fast path applies. Returns whether the leader issued here (false: no
// cohort, the caller executes it on the plain per-warp path).
func (s *Sim) tryBatchMem(c *simCore, wid int, w *warp, in isa.Inst, m instMeta) (bool, error) {
	span := s.collectCohort(c, wid, w, in, m)
	if span == nil {
		return false, nil
	}
	pc := w.pc // execute advances it; mates are marked at the shared pc
	if err := s.execute(c, wid, w, in); err != nil {
		return false, err
	}

	// Capture the template from the leader's freshly filled scratch
	// (addrBuf/lineBuf are overwritten by the next memory instruction, so
	// the template keeps copies).
	t := &c.memT
	t.gen++
	t.op, t.rd, t.rs2 = in.Op, in.Rd, in.Rs2
	t.isStore = in.IsStore()
	t.fp = in.Op == isa.FLW
	t.size = 4
	switch in.Op {
	case isa.LB, isa.LBU, isa.SB:
		t.size = 1
	case isa.LH, isa.LHU, isa.SH:
		t.size = 2
	}
	n := s.cfg.Threads
	copy(t.addrs[:n], c.addrBuf[:n])
	t.nLines = copy(t.lines[:], c.lineBuf)
	first := true
	for mm := w.tmask; mm != 0; mm &= mm - 1 {
		a := c.addrBuf[bits.TrailingZeros64(mm)]
		if first {
			t.minA, t.maxA, first = a, a, false
			continue
		}
		if a < t.minA {
			t.minA = a
		}
		if a > t.maxA {
			t.maxA = a
		}
	}
	t.unit = t.size == 4 && w.tmask == s.fullMask
	if t.unit {
		t.base = t.addrs[0]
		for lane := 1; lane < n; lane++ {
			if t.addrs[lane] != t.base+uint32(lane)*4 {
				t.unit = false
				break
			}
		}
	}

	// Congruence and validity per mate. Deltas are computed against the
	// captured leader addresses, not the leader's registers — a load with
	// rd == rs1 has already overwritten those. All arithmetic is mod 2^32,
	// exactly the wrap executeMem's own address computation uses; the span
	// check mateMin <= mateMax rejects vectors whose shift wraps the
	// address space, and InBounds on the shifted maximum then covers every
	// lane (the minimum is implied). A line-aligned delta preserves the
	// leader's alignment; a non-aligned t.size divisor cannot arise (delta
	// must be a multiple of the access size for every mate lane to stay
	// aligned, checked directly).
	imm := uint32(in.Imm)
	rs1 := int(in.Rs1)
	lane0 := bits.TrailingZeros64(w.tmask)
	for _, mw := range span[1:] {
		delta := mw.regs[lane0*32+rs1] + imm - t.addrs[lane0]
		congruent := true
		for mm := w.tmask; mm != 0; mm &= mm - 1 {
			lane := bits.TrailingZeros64(mm)
			if mw.regs[lane*32+rs1]+imm-t.addrs[lane] != delta {
				congruent = false
				break
			}
		}
		if !congruent || delta%t.size != 0 {
			continue
		}
		mateMin, mateMax := t.minA+delta, t.maxA+delta
		if mateMin > mateMax || !s.memory.InBounds(mateMax, t.size) {
			continue
		}
		mw.batched, mw.batchPC, mw.batchDst = true, pc, batchDstMem
		mw.batchGen, mw.batchMemDelta = t.gen, delta
	}
	return true, nil
}

// batchMemAccess performs a marked mate's functional memory access from the
// core's template: one opcode dispatch per replay (instead of one per
// lane), lane addresses derived as the leader's plus the mate's delta, and
// the contiguous bulk-copy fast path — one bounds check plus one tight copy
// loop between flat memory and the lane-major register file — when the
// template is full-mask unit-stride 32-bit. Validation is skipped: the
// mate's whole address span was bounds- and alignment-checked at cohort
// formation, and device memory never shrinks while a kernel runs.
func (s *Sim) batchMemAccess(t *memTemplate, w *warp, delta uint32) {
	mm := s.memory
	rd, rs2 := int(t.rd), int(t.rs2)
	switch t.op {
	case isa.LW:
		if rd == 0 {
			return
		}
		if t.unit {
			mm.ReadWordsStrided(t.base+delta, s.cfg.Threads, w.regs, rd, 32)
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read32(t.addrs[lane] + delta)
			regs[lane*32+rd] = v
		}
	case isa.FLW:
		if t.unit {
			mm.ReadWordsStrided(t.base+delta, s.cfg.Threads, w.fregs, rd, 32)
			return
		}
		fregs := w.fregs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read32(t.addrs[lane] + delta)
			fregs[lane*32+rd] = v
		}
	case isa.SW:
		if t.unit {
			mm.WriteWordsStrided(t.base+delta, s.cfg.Threads, w.regs, rs2, 32)
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			mm.Write32(t.addrs[lane]+delta, regs[lane*32+rs2])
		}
	case isa.FSW:
		if t.unit {
			mm.WriteWordsStrided(t.base+delta, s.cfg.Threads, w.fregs, rs2, 32)
			return
		}
		fregs := w.fregs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			mm.Write32(t.addrs[lane]+delta, fregs[lane*32+rs2])
		}
	case isa.LH:
		if rd == 0 {
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read16(t.addrs[lane] + delta)
			regs[lane*32+rd] = uint32(int32(int16(v)))
		}
	case isa.LHU:
		if rd == 0 {
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read16(t.addrs[lane] + delta)
			regs[lane*32+rd] = uint32(v)
		}
	case isa.LB:
		if rd == 0 {
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read8(t.addrs[lane] + delta)
			regs[lane*32+rd] = uint32(int32(int8(v)))
		}
	case isa.LBU:
		if rd == 0 {
			return
		}
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			v, _ := mm.Read8(t.addrs[lane] + delta)
			regs[lane*32+rd] = uint32(v)
		}
	case isa.SH:
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			mm.Write16(t.addrs[lane]+delta, uint16(regs[lane*32+rs2]))
		}
	case isa.SB:
		regs := w.regs
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			mm.Write8(t.addrs[lane]+delta, uint8(regs[lane*32+rs2]))
		}
	}
}

// finishBatchedMem replays a memory cohort mate at its true issue cycle:
// observer event and issue statistics, the fused functional access
// (batchMemAccess), the mate's line list — the leader's coalesced list
// shifted by the delta (mem.CoalesceTemplate) with a direct re-coalesce
// fallback for non-line-aligned deltas — and the full per-warp hierarchy
// timing (memTiming: L1/L2/DRAM walk, MSHR allocation, lsuFree, stats,
// deferred commit under the parallel engine) plus the load's scoreboard
// writeback. Every observable therefore lands exactly where the per-warp
// oracle puts it. Returns false when the mark's generation no longer
// matches the core template (a later cohort overwrote it before this
// mate's slot arrived); the caller then executes the instruction normally.
func (s *Sim) finishBatchedMem(c *simCore, wid int, w *warp) bool {
	t := &c.memT
	if w.batchGen != t.gen {
		return false
	}
	if s.observer != nil {
		s.observer(IssueEvent{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Mask: w.tmask, Inst: s.prog[(w.pc-s.progBase)/4]})
	}
	c.stats.Issued++
	c.stats.LaneOps += uint64(bits.OnesCount64(w.tmask))
	w.batched = false
	delta := w.batchMemDelta
	s.batchMemAccess(t, w, delta)

	shift := s.hier.LineShift()
	var lines []uint32
	if s.NoCoalesce {
		lines = c.lineBuf[:0]
		for msk := w.tmask; msk != 0; msk &= msk - 1 {
			lane := bits.TrailingZeros64(msk)
			lines = append(lines, (t.addrs[lane]+delta)>>shift<<shift)
		}
		c.lineBuf = lines
	} else {
		var ok bool
		if lines, ok = mem.CoalesceTemplate(t.lines[:t.nLines], delta, shift, c.lineBuf); !ok {
			// Non-line-aligned delta: rebuild the mate's address vector and
			// coalesce it directly, exactly like the per-warp path.
			for msk := w.tmask; msk != 0; msk &= msk - 1 {
				lane := bits.TrailingZeros64(msk)
				c.addrBuf[lane] = t.addrs[lane] + delta
			}
			lines = mem.Coalesce(c.addrBuf[:s.cfg.Threads], w.tmask, shift, c.lineBuf)
		}
		c.lineBuf = lines
	}

	rd := int(t.rd)
	done := s.memTiming(c, wid, rd, t.isStore, !t.isStore, t.fp, lines)
	if !t.isStore && !s.par {
		if t.fp {
			w.pendF[rd] = done
		} else if rd != 0 {
			w.pendI[rd] = done
		}
	}
	w.pc += 4
	return true
}

// finishBatched replays the per-warp issue bookkeeping for a warp whose
// instruction was already executed functionally as part of a cohort: the
// observer IssueEvent, the Issued/LaneOps statistics, the scoreboard
// writeback and the pc advance, all at the warp's true issue cycle — the
// exact effects (and order) execute produces for the same instruction,
// minus the lane loops. The writeback classification was precomputed at
// cohort formation (warp.batchDst/batchRd/batchLat), so the instruction
// word itself is only reloaded when an observer needs the IssueEvent.
// Called from issueHeap when the scheduler picks a pre-executed warp.
func (s *Sim) finishBatched(c *simCore, wid int, w *warp) {
	if s.observer != nil {
		s.observer(IssueEvent{Cycle: s.cycle, Core: c.id, Warp: wid, PC: w.pc, Mask: w.tmask, Inst: s.prog[(w.pc-s.progBase)/4]})
	}
	c.stats.Issued++
	c.stats.LaneOps += uint64(bits.OnesCount64(w.tmask))
	w.batched = false
	switch w.batchDst {
	case batchDstInt:
		w.pendI[w.batchRd] = s.cycle + uint64(w.batchLat)
	case batchDstFP:
		w.pendF[w.batchRd] = s.cycle + uint64(w.batchLat)
	}
	w.pc += 4
}
