// Command vortex-run executes one benchmark kernel on one device
// configuration and prints the full launch report: the Eq. 1 advice, the
// chosen lws and regime, cycle counts, pipeline and cache statistics, and
// the boundedness classification.
//
// Usage:
//
//	vortex-run [-config 4c8w16t] [-kernel sgemm] [-lws 0] [-scale 1.0]
//	           [-mapper ours|lws=1|lws=32] [-sched rr|gto|oldest|2lev]
//	           [-mshrs 0] [-l1 16k4w] [-prefetch off|nextline]
//	           [-seed 42] [-compare] [-tick-engine] [-batch-exec=false]
//	           [-batch-mem=false]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
)

func main() {
	cfgName := flag.String("config", "4c8w16t", "device configuration (paper notation)")
	kernel := flag.String("kernel", "vecadd", "kernel (registry name)")
	lws := flag.Int("lws", 0, "local work size (0 = use the mapper)")
	mapper := flag.String("mapper", "ours", "auto mapper when lws=0: ours, lws=1 or lws=32")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper size)")
	seed := flag.Int64("seed", 42, "input seed")
	compare := flag.Bool("compare", false, "run all three mappings and print the ratio table")
	workers := flag.Int("workers", 0, "host threads simulating cores in parallel (0 = all CPUs, 1 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel (0 = follow -workers, 1 = global single-threaded commit)")
	sched := flag.String("sched", "rr", "warp scheduler policy: rr, gto, oldest or 2lev")
	mshrs := flag.Int("mshrs", 0, "outstanding-miss bound per L1 and per L2 bank (0 = unbounded)")
	l1geom := flag.String("l1", mem.DefaultL1Geometry(), "L1 geometry (<size-KiB>k<ways>w, e.g. 16k4w)")
	prefetch := flag.String("prefetch", "off", "L1 prefetch policy: off or nextline")
	tickEngine := flag.Bool("tick-engine", false, "use the legacy per-cycle tick loop instead of the event-driven device engine (identical results, differential oracle)")
	batchExec := flag.Bool("batch-exec", true, "execute lockstep warp cohorts with fused batched kernels; false selects the per-warp oracle path (identical results)")
	batchMem := flag.Bool("batch-mem", true, "batch loads/stores of lockstep cohorts through affine address templates; false selects the per-warp oracle path (identical results)")
	cacheStats := flag.Bool("cache-stats", false, "print the campaign-engine cache counters (program cache, input memo) after the run")
	flag.Parse()

	schedPol, err := sim.ParseSchedPolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-run:", err)
		os.Exit(1)
	}
	if *mshrs < 0 {
		fmt.Fprintf(os.Stderr, "vortex-run: -mshrs must be >= 0 (got %d; 0 = unbounded)\n", *mshrs)
		os.Exit(1)
	}
	l1Size, l1Ways, err := mem.ParseL1Geometry(*l1geom)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-run:", err)
		os.Exit(1)
	}
	pfetch, err := mem.ParsePrefetchPolicy(*prefetch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-run:", err)
		os.Exit(1)
	}
	dev := devOpts{workers: *workers, commitWorkers: *commitWorkers, sched: schedPol, tickEngine: *tickEngine, batchExec: *batchExec, batchMem: *batchMem,
		mshrs: *mshrs, l1Size: l1Size, l1Ways: l1Ways, prefetch: pfetch}
	if err := run(*cfgName, *kernel, *lws, *mapper, *scale, *seed, *compare, dev); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-run:", err)
		os.Exit(1)
	}
	if *cacheStats {
		prog := ocl.ProgramCacheStats()
		inp := kernels.InputCacheStats()
		fmt.Printf("\ncampaign caches: programs %d hit / %d built; inputs %d hit / %d built\n",
			prog.Hits, prog.Misses, inp.Hits, inp.Misses)
	}
}

func mapperByName(name string) (core.Mapper, error) {
	switch name {
	case "ours", "auto":
		return core.Auto{}, nil
	case "lws=1", "naive":
		return core.Naive{}, nil
	case "lws=32", "fixed":
		return core.Fixed{N: 32}, nil
	}
	return nil, fmt.Errorf("unknown mapper %q", name)
}

// devOpts bundles the engine knobs forwarded to every device built by this
// command: host parallelism, commit sharding, the warp scheduler policy,
// the tick-engine fallback, the batched-execution toggle and the
// memory-side axes (MSHR bound, L1 geometry, prefetch policy).
type devOpts struct {
	workers        int
	commitWorkers  int
	sched          sim.SchedPolicy
	tickEngine     bool
	batchExec      bool
	batchMem       bool
	mshrs          int
	l1Size, l1Ways int
	prefetch       mem.PrefetchPolicy
}

// deviceConfig builds the simulator config for hw; workers > 0 overrides
// the core-parallelism of the simulation engine (default: all host CPUs),
// commitWorkers > 0 the commit-phase sharding, sched the warp scheduler
// policy, and tickEngine selects the legacy per-cycle loop over the
// event-driven engine (byte-identical results).
func deviceConfig(hw core.HWInfo, dev devOpts) sim.Config {
	cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
	if dev.workers > 0 {
		cfg.Workers = dev.workers
	}
	if dev.commitWorkers > 0 {
		cfg.CommitWorkers = dev.commitWorkers
	}
	cfg.Sched = dev.sched
	cfg.TickEngine = dev.tickEngine
	cfg.BatchExec = dev.batchExec
	cfg.BatchMem = dev.batchMem
	cfg.Mem.L1.MSHRs = dev.mshrs
	cfg.Mem.L2.MSHRs = dev.mshrs
	if dev.l1Size > 0 {
		cfg.Mem.L1.SizeBytes = dev.l1Size
		cfg.Mem.L1.Ways = dev.l1Ways
	}
	cfg.Mem.Prefetch = dev.prefetch
	return cfg
}

func run(cfgName, kernel string, lws int, mapperName string, scale float64, seed int64, compare bool, dev devOpts) error {
	hw, err := core.ParseName(cfgName)
	if err != nil {
		return err
	}
	spec, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	if compare {
		return runCompare(hw, spec, scale, seed, dev)
	}
	m, err := mapperByName(mapperName)
	if err != nil {
		return err
	}

	d, err := ocl.NewDevice(deviceConfig(hw, dev))
	if err != nil {
		return err
	}
	d.SetMapper(m)
	c, err := spec.Build(d, kernels.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}

	fmt.Printf("kernel %s (%s, paper size: %s) on %s: %d work items over %d launches\n",
		spec.Name, spec.Group, spec.PaperSize, hw.Name(), c.WorkItems, len(c.Launches))
	for _, l := range c.Launches {
		a := core.Advise(l.GWS, hw)
		fmt.Printf("  advice for gws=%d: %s\n", l.GWS, a.Explanation)
	}
	res, err := c.RunVerified(d, lws)
	if err != nil {
		return err
	}
	fmt.Printf("\nverified OK; total %d cycles\n", res.Cycles)
	for i, lr := range res.Launches {
		fmt.Printf("\nlaunch %d (%s):\n", i, lr.Kernel)
		fmt.Printf("  gws=%d lws=%d tasks=%d batches=%d regime=%s warps=%d\n",
			lr.GWS, lr.LWS, lr.Tasks, lr.Batches, lr.Regime, lr.WarpsActivated)
		fmt.Printf("  cycles=%d (sim %d + dispatch %d)\n", lr.Cycles, lr.SimCycles, lr.Cycles-lr.SimCycles)
		fmt.Printf("  instrs=%d lane-ops=%d loads=%d stores=%d line-reqs=%d\n",
			lr.Stats.Issued, lr.Stats.LaneOps, lr.Stats.Loads, lr.Stats.Stores, lr.Stats.LineRequests)
		fmt.Printf("  stalls: mem=%d exec=%d -> %s\n", lr.Stats.MemStall, lr.Stats.ExecStall, lr.Boundedness)
		fmt.Printf("  L1: %d accesses, %.1f%% hits; L2: %d accesses, %.1f%% hits; DRAM: %d line reads, %d writebacks\n",
			lr.L1.Accesses, lr.L1.HitRate()*100, lr.L2.Accesses, lr.L2.HitRate()*100,
			lr.DRAM.LineReads, lr.DRAM.Writebacks)
		if lr.L1.PrefetchIssued > 0 || lr.L1.PrefetchHits > 0 {
			fmt.Printf("  L1 prefetch: %d issued, %d hits\n", lr.L1.PrefetchIssued, lr.L1.PrefetchHits)
		}
	}
	return nil
}

func runCompare(hw core.HWInfo, spec kernels.Spec, scale float64, seed int64, dev devOpts) error {
	fmt.Printf("kernel %s on %s (hp=%d, sched=%s): comparing mappings\n\n", spec.Name, hw.Name(), hw.HP(), dev.sched)
	type row struct {
		name   string
		mapper core.Mapper
		cycles uint64
		lws    int
	}
	rows := []row{
		{name: "lws=1", mapper: core.Naive{}},
		{name: "lws=32", mapper: core.Fixed{N: 32}},
		{name: "ours", mapper: core.Auto{}},
	}
	// One pooled device serves all three mappings: Reset between runs is
	// byte-identical to building a fresh device and skips the reallocation.
	pool := ocl.NewDevicePool(1)
	for i := range rows {
		d, err := pool.Get(deviceConfig(hw, dev))
		if err != nil {
			return err
		}
		d.SetMapper(rows[i].mapper)
		c, err := spec.Build(d, kernels.Params{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
		res, err := c.RunVerified(d, 0)
		if err != nil {
			return err
		}
		if len(res.Launches) == 0 {
			return fmt.Errorf("kernel %s completed without launches", spec.Name)
		}
		rows[i].cycles = res.Cycles
		rows[i].lws = res.Launches[0].LWS
		pool.Put(d)
	}
	ours := rows[2].cycles
	fmt.Printf("%-8s %-6s %-12s %s\n", "mapping", "lws", "cycles", "ratio vs ours")
	for _, r := range rows {
		fmt.Printf("%-8s %-6d %-12d %.3f\n", r.name, r.lws, r.cycles, float64(r.cycles)/float64(ours))
	}
	return nil
}
