// Command vortex-asm assembles a source file for the simulated RV32IMF +
// Vortex ISA and prints the listing (address, machine word, disassembly,
// semantic sections), or disassembles raw little-endian words from a
// binary file.
//
// Usage:
//
//	vortex-asm [-base 0x1000] [-D NAME=value]... file.s
//	vortex-asm -d [-base 0x1000] file.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

type defsFlag map[string]int64

func (d defsFlag) String() string { return fmt.Sprint(map[string]int64(d)) }

func (d defsFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	d[name] = v
	return nil
}

func main() {
	base := flag.String("base", "0x1000", "base address")
	disasm := flag.Bool("d", false, "disassemble a raw binary instead of assembling")
	defs := defsFlag{}
	flag.Var(defs, "D", "define a symbol (NAME=value), repeatable")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vortex-asm [flags] file")
		os.Exit(2)
	}
	baseAddr, err := strconv.ParseUint(*base, 0, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-asm: bad base:", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-asm:", err)
		os.Exit(1)
	}

	if *disasm {
		for i := 0; i+4 <= len(data); i += 4 {
			w := binary.LittleEndian.Uint32(data[i:])
			pc := uint32(baseAddr) + uint32(i)
			in, err := isa.Decode(w)
			if err != nil {
				fmt.Printf("%08x: %08x  .word %#x\n", pc, w, w)
				continue
			}
			fmt.Printf("%08x: %08x  %s\n", pc, w, isa.Disasm(in, pc))
		}
		return
	}

	prog, err := asm.Assemble(string(data), uint32(baseAddr), defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-asm:", err)
		os.Exit(1)
	}
	fmt.Print(asm.Disassemble(prog))
	fmt.Printf("# %d words, %d bytes; %d symbols\n", len(prog.Words), prog.Size(), len(prog.Symbols))
}
