// Command vortex-trace regenerates the paper's Figure 1: execution traces
// of a kernel under several local work sizes on one device configuration,
// showing per-warp instruction wavefronts tagged with semantic sections,
// plus the PC / thread-mask issue table.
//
// Usage:
//
//	vortex-trace [-config 1c2w4t] [-kernel vecadd] [-gws 128]
//	             [-lws 1,16,32,64] [-width 100] [-table N]
//	             [-csv dir] [-jsonl dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	cfgName := flag.String("config", "1c2w4t", "device configuration (paper notation)")
	kernel := flag.String("kernel", "vecadd", "kernel to trace (registry name)")
	gws := flag.Int("gws", 128, "global work size (vecadd length in Figure 1)")
	lwsList := flag.String("lws", "1,16,32,64", "comma-separated lws values to trace")
	width := flag.Int("width", 100, "waveform width in columns")
	tableRows := flag.Int("table", 0, "also print the first N issue-table rows (0 = none)")
	csvDir := flag.String("csv", "", "write per-lws CSV traces into this directory")
	jsonlDir := flag.String("jsonl", "", "write per-lws JSONL traces into this directory")
	flag.Parse()

	if err := run(*cfgName, *kernel, *gws, *lwsList, *width, *tableRows, *csvDir, *jsonlDir); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-trace:", err)
		os.Exit(1)
	}
}

func run(cfgName, kernel string, gws int, lwsList string, width, tableRows int, csvDir, jsonlDir string) error {
	hw, err := core.ParseName(cfgName)
	if err != nil {
		return err
	}
	var lwss []int
	for _, f := range strings.Split(lwsList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 {
			return fmt.Errorf("bad lws %q", f)
		}
		lwss = append(lwss, v)
	}

	fmt.Printf("Figure 1 reproduction: %s traces of %s (gws=%d) on %s (hp=%d)\n",
		kernel, kernel, gws, hw.Name(), hw.HP())
	fmt.Printf("Eq. 1 optimal lws = %d\n\n", core.OptimalLWS(gws, hw))

	for _, lws := range lwss {
		d, err := ocl.NewDevice(sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
		if err != nil {
			return err
		}
		col := d.EnableTracing()
		c, err := buildScaledKernel(d, kernel, gws)
		if err != nil {
			return err
		}
		res, err := c.RunVerified(d, lws)
		if err != nil {
			return fmt.Errorf("lws=%d: %w", lws, err)
		}
		lr := res.Launches[0]
		fmt.Printf("--- lws=%d: %d cycles (%d sim + %d dispatch), tasks=%d, batches=%d, regime: %s, warps activated: %d\n",
			lr.LWS, lr.Cycles, lr.SimCycles, lr.Cycles-lr.SimCycles, lr.Tasks, lr.Batches, lr.Regime, lr.WarpsActivated)
		if err := col.RenderWaveform(os.Stdout, trace.RenderOptions{Width: width, ShowMask: true}); err != nil {
			return err
		}
		sum := col.Summarize()
		fmt.Printf("issues: %d, mean active lanes: %.2f, per section: %v\n\n",
			sum.Issues, sum.MeanLanes, sum.PerTag)
		if tableRows > 0 {
			if err := col.RenderIssueTable(os.Stdout, tableRows); err != nil {
				return err
			}
			fmt.Println()
		}
		if csvDir != "" {
			if err := writeTo(filepath.Join(csvDir, fmt.Sprintf("trace_lws%d.csv", lws)), col.WriteCSV); err != nil {
				return err
			}
		}
		if jsonlDir != "" {
			if err := writeTo(filepath.Join(jsonlDir, fmt.Sprintf("trace_lws%d.jsonl", lws)), col.WriteJSONL); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildScaledKernel builds the named registry kernel sized to exactly gws
// work items where the kernel's geometry allows it (the 1-D kernels);
// others use their registry default size.
func buildScaledKernel(d *ocl.Device, name string, gws int) (*kernels.Case, error) {
	switch name {
	case "vecadd":
		return kernels.BuildVecadd(d, gws, 42)
	case "relu":
		return kernels.BuildRelu(d, gws, 42)
	case "saxpy":
		return kernels.BuildSaxpy(d, gws, 42)
	case "knn":
		return kernels.BuildKNN(d, gws, 42)
	}
	spec, err := kernels.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Build(d, kernels.Params{Scale: 1, Seed: 42})
}

func writeTo(path string, fn func(w io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fn(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
