// Command vortex-tuner contrasts empirical autotuning (the
// hardware-agnostic approach the paper's runtime technique replaces) with
// the closed-form Eq. 1 decision: it searches the lws space of a kernel on
// a device — optionally widened to the warp-scheduler axis with -sched all
// and to the memory-side axes with comma-separated -mshrs/-l1/-prefetch —
// reports the probes, and quantifies both the quality gap and the search
// overhead that Eq. 1 avoids.
//
// Usage:
//
//	vortex-tuner [-config 2c4w8t] [-kernel saxpy] [-scale 0.5]
//	             [-strategy exhaustive|hillclimb]
//	             [-sched rr|gto|oldest|2lev|all]
//	             [-mshrs 0,4] [-l1 16k4w,32k8w] [-prefetch off,nextline]
//	             [-seed 42] [-tick-engine] [-batch-exec=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func main() {
	cfgName := flag.String("config", "2c4w8t", "device configuration (paper notation)")
	kernel := flag.String("kernel", "saxpy", "kernel (registry name)")
	scale := flag.Float64("scale", 0.5, "workload scale")
	strategy := flag.String("strategy", "exhaustive", "search strategy: exhaustive or hillclimb")
	sched := flag.String("sched", "rr", "warp scheduler to tune under (rr, gto, oldest, 2lev), or 'all' to search the policy axis too")
	mshrsCSV := flag.String("mshrs", "0", "comma-separated MSHR bounds to search (outstanding misses per L1/L2 bank, 0 = unbounded)")
	l1CSV := flag.String("l1", mem.DefaultL1Geometry(), "comma-separated L1 geometries to search (<size-KiB>k<ways>w)")
	prefetchCSV := flag.String("prefetch", "off", "comma-separated L1 prefetch policies to search (off, nextline)")
	seed := flag.Int64("seed", 42, "input seed")
	workers := flag.Int("workers", 0, "host threads simulating cores in parallel per probe (0 = all CPUs, 1 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel (0 = follow -workers, 1 = global single-threaded commit)")
	tickEngine := flag.Bool("tick-engine", false, "probe on the legacy per-cycle tick loop instead of the event-driven device engine (identical results, differential oracle)")
	batchExec := flag.Bool("batch-exec", true, "execute lockstep warp cohorts with fused batched kernels; false selects the per-warp oracle path (identical results)")
	batchMem := flag.Bool("batch-mem", true, "batch loads/stores of lockstep cohorts through affine address templates; false selects the per-warp oracle path (identical results)")
	flag.Parse()

	if err := run(*cfgName, *kernel, *scale, *strategy, *sched, *mshrsCSV, *l1CSV, *prefetchCSV, *seed, *workers, *commitWorkers, *tickEngine, *batchExec, *batchMem); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-tuner:", err)
		os.Exit(1)
	}
}

// axisPoint is one cell of the tuner's device-axis search space: a warp
// scheduler plus the memory-side knobs. Its name doubles as the opaque axis
// label tuner.AcrossScheds searches over.
type axisPoint struct {
	sched          sim.SchedPolicy
	mshrs          int
	l1Size, l1Ways int
	prefetch       mem.PrefetchPolicy
}

func run(cfgName, kernel string, scale float64, strategy, schedName, mshrsCSV, l1CSV, prefetchCSV string, seed int64, workers, commitWorkers int, tickEngine, batchExec, batchMem bool) error {
	hw, err := core.ParseName(cfgName)
	if err != nil {
		return err
	}
	spec, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	baseCfg := func(pt axisPoint) sim.Config {
		cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
		if workers > 0 {
			cfg.Workers = workers
		}
		if commitWorkers > 0 {
			cfg.CommitWorkers = commitWorkers
		}
		cfg.Sched = pt.sched
		cfg.TickEngine = tickEngine
		cfg.BatchExec = batchExec
		cfg.BatchMem = batchMem
		cfg.Mem.L1.MSHRs = pt.mshrs
		cfg.Mem.L2.MSHRs = pt.mshrs
		if pt.l1Size > 0 {
			cfg.Mem.L1.SizeBytes = pt.l1Size
			cfg.Mem.L1.Ways = pt.l1Ways
		}
		cfg.Mem.Prefetch = pt.prefetch
		return cfg
	}

	var schedPols []sim.SchedPolicy
	if schedName == "all" {
		schedPols = sim.SchedPolicies()
	} else {
		p, err := sim.ParseSchedPolicy(schedName)
		if err != nil {
			return err
		}
		schedPols = []sim.SchedPolicy{p}
	}
	var mshrsList []int
	for _, field := range strings.Split(mshrsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			return fmt.Errorf("bad -mshrs entry %q (want a non-negative count, 0 = unbounded)", strings.TrimSpace(field))
		}
		mshrsList = append(mshrsList, n)
	}
	type geom struct {
		spec       string
		size, ways int
	}
	var l1List []geom
	for _, field := range strings.Split(l1CSV, ",") {
		spec := strings.TrimSpace(field)
		size, ways, err := mem.ParseL1Geometry(spec)
		if err != nil {
			return err
		}
		l1List = append(l1List, geom{spec: spec, size: size, ways: ways})
	}
	var pfList []mem.PrefetchPolicy
	for _, field := range strings.Split(prefetchCSV, ",") {
		p, err := mem.ParsePrefetchPolicy(strings.TrimSpace(field))
		if err != nil {
			return err
		}
		pfList = append(pfList, p)
	}

	// The search axis is the cross product of scheduler and memory points.
	// When the memory axes are single points (the default), labels stay the
	// bare scheduler names, preserving the sched-only output.
	memMulti := len(mshrsList)*len(l1List)*len(pfList) > 1
	pointByName := map[string]axisPoint{}
	var points []string
	for _, pol := range schedPols {
		for _, n := range mshrsList {
			for _, g := range l1List {
				for _, pf := range pfList {
					name := pol.String()
					if memMulti {
						name = fmt.Sprintf("%s/mshrs=%d/l1=%s/prefetch=%s", pol, n, g.spec, pf)
					}
					if _, dup := pointByName[name]; dup {
						return fmt.Errorf("duplicate search point %s: list each -sched/-mshrs/-l1/-prefetch value once", name)
					}
					pointByName[name] = axisPoint{sched: pol, mshrs: n, l1Size: g.size, l1Ways: g.ways, prefetch: pf}
					points = append(points, name)
				}
			}
		}
	}

	// Discover the gws from a throwaway build.
	probeDev, err := ocl.NewDevice(baseCfg(pointByName[points[0]]))
	if err != nil {
		return err
	}
	c0, err := spec.Build(probeDev, kernels.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	if len(c0.Launches) == 0 {
		return fmt.Errorf("kernel %s produced no launches", kernel)
	}
	gws := c0.Launches[0].GWS

	mkRunner := func(pointName string) tuner.Runner {
		pt := pointByName[pointName]
		return func(lws int) (uint64, error) {
			d, err := ocl.NewDevice(baseCfg(pt))
			if err != nil {
				return 0, err
			}
			c, err := spec.Build(d, kernels.Params{Scale: scale, Seed: seed})
			if err != nil {
				return 0, err
			}
			res, err := c.RunVerified(d, lws)
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		}
	}
	var search tuner.Strategy
	switch strategy {
	case "exhaustive":
		search = func(run tuner.Runner) (*tuner.Result, error) { return tuner.Exhaustive(run, gws, hw) }
	case "hillclimb":
		search = func(run tuner.Runner) (*tuner.Result, error) { return tuner.HillClimb(run, gws, hw) }
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	fmt.Printf("tuning %s (gws=%d) on %s (hp=%d), strategy: %s, device points: %v\n\n",
		kernel, gws, hw.Name(), hw.HP(), strategy, points)

	probes, best, err := tuner.AcrossScheds(points, mkRunner, search)
	if err != nil {
		return err
	}
	for _, sp := range probes {
		res := sp.Res
		if len(probes) > 1 {
			fmt.Printf("--- %s ---\n", sp.Sched)
		}
		fmt.Printf("%-8s %s\n", "lws", "cycles")
		for _, p := range res.Probes {
			marker := ""
			if p.LWS == res.BestLWS {
				marker = "  <- best"
			}
			if p.LWS == res.Eq1LWS {
				marker += "  <- Eq. 1"
			}
			fmt.Printf("%-8d %d%s\n", p.LWS, p.Cycles, marker)
		}
		fmt.Printf("\nsearched best: lws=%d (%d cycles) after %d probes\n",
			res.BestLWS, res.BestCycles, len(res.Probes))
		fmt.Printf("Eq. 1 answer:  lws=%d (%d cycles), %.3fx of the searched best — no probes needed\n",
			res.Eq1LWS, res.Eq1Cycles, res.Eq1Gap())
		fmt.Printf("search overhead: %.1fx the cost of one optimal launch\n\n", res.Overhead())
	}
	if len(probes) > 1 {
		bp := probes[best]
		fmt.Printf("device-axis best: %s lws=%d (%d cycles); Eq. 1 under the same point: %.3fx of it\n",
			bp.Sched, bp.Res.BestLWS, bp.Res.BestCycles, bp.Res.Eq1Gap())
	}
	return nil
}
