// Command vortex-tuner contrasts empirical autotuning (the
// hardware-agnostic approach the paper's runtime technique replaces) with
// the closed-form Eq. 1 decision: it searches the lws space of a kernel on
// a device — optionally widened to the warp-scheduler axis with
// -sched all — reports the probes, and quantifies both the quality gap and
// the search overhead that Eq. 1 avoids.
//
// Usage:
//
//	vortex-tuner [-config 2c4w8t] [-kernel saxpy] [-scale 0.5]
//	             [-strategy exhaustive|hillclimb]
//	             [-sched rr|gto|oldest|2lev|all] [-seed 42] [-tick-engine]
//	             [-batch-exec=false]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func main() {
	cfgName := flag.String("config", "2c4w8t", "device configuration (paper notation)")
	kernel := flag.String("kernel", "saxpy", "kernel (registry name)")
	scale := flag.Float64("scale", 0.5, "workload scale")
	strategy := flag.String("strategy", "exhaustive", "search strategy: exhaustive or hillclimb")
	sched := flag.String("sched", "rr", "warp scheduler to tune under (rr, gto, oldest, 2lev), or 'all' to search the policy axis too")
	seed := flag.Int64("seed", 42, "input seed")
	workers := flag.Int("workers", 0, "host threads simulating cores in parallel per probe (0 = all CPUs, 1 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel (0 = follow -workers, 1 = global single-threaded commit)")
	tickEngine := flag.Bool("tick-engine", false, "probe on the legacy per-cycle tick loop instead of the event-driven device engine (identical results, differential oracle)")
	batchExec := flag.Bool("batch-exec", true, "execute lockstep warp cohorts with fused batched kernels; false selects the per-warp oracle path (identical results)")
	flag.Parse()

	if err := run(*cfgName, *kernel, *scale, *strategy, *sched, *seed, *workers, *commitWorkers, *tickEngine, *batchExec); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-tuner:", err)
		os.Exit(1)
	}
}

func run(cfgName, kernel string, scale float64, strategy, schedName string, seed int64, workers, commitWorkers int, tickEngine, batchExec bool) error {
	hw, err := core.ParseName(cfgName)
	if err != nil {
		return err
	}
	spec, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	baseCfg := func(sched sim.SchedPolicy) sim.Config {
		cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
		if workers > 0 {
			cfg.Workers = workers
		}
		if commitWorkers > 0 {
			cfg.CommitWorkers = commitWorkers
		}
		cfg.Sched = sched
		cfg.TickEngine = tickEngine
		cfg.BatchExec = batchExec
		return cfg
	}

	var scheds []string
	polByName := map[string]sim.SchedPolicy{}
	if schedName == "all" {
		for _, p := range sim.SchedPolicies() {
			scheds = append(scheds, p.String())
			polByName[p.String()] = p
		}
	} else {
		p, err := sim.ParseSchedPolicy(schedName)
		if err != nil {
			return err
		}
		scheds = []string{p.String()}
		polByName[p.String()] = p
	}

	// Discover the gws from a throwaway build.
	probeDev, err := ocl.NewDevice(baseCfg(sim.SchedRoundRobin))
	if err != nil {
		return err
	}
	c0, err := spec.Build(probeDev, kernels.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	if len(c0.Launches) == 0 {
		return fmt.Errorf("kernel %s produced no launches", kernel)
	}
	gws := c0.Launches[0].GWS

	mkRunner := func(schedName string) tuner.Runner {
		pol := polByName[schedName]
		return func(lws int) (uint64, error) {
			d, err := ocl.NewDevice(baseCfg(pol))
			if err != nil {
				return 0, err
			}
			c, err := spec.Build(d, kernels.Params{Scale: scale, Seed: seed})
			if err != nil {
				return 0, err
			}
			res, err := c.RunVerified(d, lws)
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		}
	}
	var search tuner.Strategy
	switch strategy {
	case "exhaustive":
		search = func(run tuner.Runner) (*tuner.Result, error) { return tuner.Exhaustive(run, gws, hw) }
	case "hillclimb":
		search = func(run tuner.Runner) (*tuner.Result, error) { return tuner.HillClimb(run, gws, hw) }
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	fmt.Printf("tuning %s (gws=%d) on %s (hp=%d), strategy: %s, schedulers: %v\n\n",
		kernel, gws, hw.Name(), hw.HP(), strategy, scheds)

	probes, best, err := tuner.AcrossScheds(scheds, mkRunner, search)
	if err != nil {
		return err
	}
	for _, sp := range probes {
		res := sp.Res
		if len(probes) > 1 {
			fmt.Printf("--- sched %s ---\n", sp.Sched)
		}
		fmt.Printf("%-8s %s\n", "lws", "cycles")
		for _, p := range res.Probes {
			marker := ""
			if p.LWS == res.BestLWS {
				marker = "  <- best"
			}
			if p.LWS == res.Eq1LWS {
				marker += "  <- Eq. 1"
			}
			fmt.Printf("%-8d %d%s\n", p.LWS, p.Cycles, marker)
		}
		fmt.Printf("\nsearched best: lws=%d (%d cycles) after %d probes\n",
			res.BestLWS, res.BestCycles, len(res.Probes))
		fmt.Printf("Eq. 1 answer:  lws=%d (%d cycles), %.3fx of the searched best — no probes needed\n",
			res.Eq1LWS, res.Eq1Cycles, res.Eq1Gap())
		fmt.Printf("search overhead: %.1fx the cost of one optimal launch\n\n", res.Overhead())
	}
	if len(probes) > 1 {
		bp := probes[best]
		fmt.Printf("policy-axis best: sched=%s lws=%d (%d cycles); Eq. 1 under the same policy: %.3fx of it\n",
			bp.Sched, bp.Res.BestLWS, bp.Res.BestCycles, bp.Res.Eq1Gap())
	}
	return nil
}
