// Command vortex-tuner contrasts empirical lws autotuning (the
// hardware-agnostic approach the paper's runtime technique replaces) with
// the closed-form Eq. 1 decision: it searches the lws space of a kernel on
// a device, reports the probes, and quantifies both the quality gap and
// the search overhead that Eq. 1 avoids.
//
// Usage:
//
//	vortex-tuner [-config 2c4w8t] [-kernel saxpy] [-scale 0.5]
//	             [-strategy exhaustive|hillclimb] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func main() {
	cfgName := flag.String("config", "2c4w8t", "device configuration (paper notation)")
	kernel := flag.String("kernel", "saxpy", "kernel (registry name)")
	scale := flag.Float64("scale", 0.5, "workload scale")
	strategy := flag.String("strategy", "exhaustive", "search strategy: exhaustive or hillclimb")
	seed := flag.Int64("seed", 42, "input seed")
	workers := flag.Int("workers", 0, "host threads simulating cores in parallel per probe (0 = all CPUs, 1 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel (0 = follow -workers, 1 = global single-threaded commit)")
	flag.Parse()

	if err := run(*cfgName, *kernel, *scale, *strategy, *seed, *workers, *commitWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-tuner:", err)
		os.Exit(1)
	}
}

func run(cfgName, kernel string, scale float64, strategy string, seed int64, workers, commitWorkers int) error {
	hw, err := core.ParseName(cfgName)
	if err != nil {
		return err
	}
	spec, err := kernels.ByName(kernel)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
	if workers > 0 {
		cfg.Workers = workers
	}
	if commitWorkers > 0 {
		cfg.CommitWorkers = commitWorkers
	}

	// Discover the gws from a throwaway build.
	probeDev, err := ocl.NewDevice(cfg)
	if err != nil {
		return err
	}
	c0, err := spec.Build(probeDev, kernels.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	gws := c0.Launches[0].GWS

	runner := func(lws int) (uint64, error) {
		d, err := ocl.NewDevice(cfg)
		if err != nil {
			return 0, err
		}
		c, err := spec.Build(d, kernels.Params{Scale: scale, Seed: seed})
		if err != nil {
			return 0, err
		}
		res, err := c.RunVerified(d, lws)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}

	fmt.Printf("tuning %s (gws=%d) on %s (hp=%d), strategy: %s\n\n",
		kernel, gws, hw.Name(), hw.HP(), strategy)

	var res *tuner.Result
	switch strategy {
	case "exhaustive":
		res, err = tuner.Exhaustive(runner, gws, hw)
	case "hillclimb":
		res, err = tuner.HillClimb(runner, gws, hw)
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %s\n", "lws", "cycles")
	for _, p := range res.Probes {
		marker := ""
		if p.LWS == res.BestLWS {
			marker = "  <- best"
		}
		if p.LWS == res.Eq1LWS {
			marker += "  <- Eq. 1"
		}
		fmt.Printf("%-8d %d%s\n", p.LWS, p.Cycles, marker)
	}
	fmt.Printf("\nsearched best: lws=%d (%d cycles) after %d probes\n",
		res.BestLWS, res.BestCycles, len(res.Probes))
	fmt.Printf("Eq. 1 answer:  lws=%d (%d cycles), %.3fx of the searched best — no probes needed\n",
		res.Eq1LWS, res.Eq1Cycles, res.Eq1Gap())
	fmt.Printf("search overhead: %.1fx the cost of one optimal launch\n", res.Overhead())
	return nil
}
