// Command vortex-sweep regenerates the paper's Figure 2: the three lws
// mappings (lws=1, lws=32, ours) for every benchmark kernel across the
// 450-configuration grid, reporting ratio violins, the per-kernel data
// tables, and the Section 3 aggregate speedups.
//
// The full paper-scale campaign (450 configs x 9 kernels x 3 mappings at
// Scale=1) is hours of single-core simulation; -scale and -configs trade
// fidelity for time (EXPERIMENTS.md records the settings used there).
//
// Usage:
//
//	vortex-sweep [-scale 1.0] [-configs 450] [-grid 1c2w2t,...] [-kernels all]
//	             [-sched rr,gto,oldest,2lev] [-mshrs 0,4] [-l1 16k4w,32k8w]
//	             [-prefetch off,nextline] [-seed 42] [-violins] [-verify]
//	             [-csv out.csv] [-progress] [-tick-engine]
//	             [-checkpoint campaign.jsonl] [-resume] [-shard i/N]
//	vortex-sweep merge [-out merged.jsonl] [-csv out.csv] [-violins]
//	             [-crossover lws=32] shard0.jsonl shard1.jsonl ...
//	vortex-sweep serve -addr :8712 -checkpoint c.jsonl [-resume]
//	             [-out final.jsonl] [-csv out.csv] [-lease-ttl 60s]
//	             [-batch 4] [campaign flags]
//	vortex-sweep work -coordinator host:8712 [-worker id] [-batch 4]
//	             [campaign flags]
//
// With -checkpoint, every completed record is streamed to the given JSONL
// file as it finishes; a killed campaign restarted with -resume skips the
// recorded runs and produces results byte-identical to an uninterrupted
// sweep. The final report includes the campaign engine's cache counters
// (assembled-program cache, workload input memo, device pool).
//
// With -shard i/N, the process runs only every N-th task of the canonical
// campaign grid starting at i, so a campaign can spread over N independent
// hosts: run each shard with its own -checkpoint, then recombine with the
// merge subcommand, whose report, CSV and checkpoint output are
// byte-identical to a single-process run.
//
// serve and work replace static sharding with work stealing: serve hands
// out leased task batches over HTTP (/lease, /submit, /status), streams
// every accepted record to its -checkpoint, re-issues the leases of dead
// workers, and — once the grid is covered — writes -out as a
// canonical-order checkpoint byte-identical to a single-process Workers=1
// run. work runs leased tasks through the same simulation substrate and
// streams records back with retry and exponential backoff; its campaign
// flags must describe the same campaign as serve's (enforced by meta
// comparison at enrollment, refusing mismatched scale/seed/grid/version).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/sweep/service"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			runMerge(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "work":
			runWork(os.Args[2:])
			return
		}
	}
	runCampaign(os.Args[1:])
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"vortex-sweep:"}, args...)...)
	os.Exit(1)
}

// campaignFlags is the flag set every simulating mode shares (the default
// single-process campaign, serve, and work): the grid axes and the
// simulation parameters that determine record bytes, plus the worker-local
// execution knobs. serve and work must agree on the former — the service
// validates that by meta comparison — while the latter never cross the
// wire.
type campaignFlags struct {
	scale         *float64
	nConfigs      *int
	kernelCSV     *string
	gridCSV       *string
	schedCSV      *string
	mshrsCSV      *string
	l1CSV         *string
	prefetchCSV   *string
	seed          *int64
	verify        *bool
	workers       *int
	simWorkers    *int
	commitWorkers *int
	tickEngine    *bool
	batchExec     *bool
	batchMem      *bool
}

func addCampaignFlags(fs *flag.FlagSet) *campaignFlags {
	return &campaignFlags{
		scale:         fs.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)"),
		nConfigs:      fs.Int("configs", 450, "number of grid configurations (subsampled deterministically)"),
		kernelCSV:     fs.String("kernels", "all", "comma-separated kernels or 'all'"),
		gridCSV:       fs.String("grid", "", "explicit comma-separated config names (e.g. 1c2w2t,4c4w4t); overrides -configs"),
		schedCSV:      fs.String("sched", "rr", "comma-separated warp-scheduler grid axis (rr, gto, oldest, 2lev)"),
		mshrsCSV:      fs.String("mshrs", "0", "comma-separated MSHR grid axis: outstanding-miss bound per L1 and per L2 bank (0 = unbounded)"),
		l1CSV:         fs.String("l1", mem.DefaultL1Geometry(), "comma-separated L1 geometry grid axis (<size-KiB>k<ways>w, e.g. 16k4w,32k8w)"),
		prefetchCSV:   fs.String("prefetch", "off", "comma-separated L1 prefetch grid axis (off, nextline)"),
		seed:          fs.Int64("seed", 42, "input generation seed"),
		verify:        fs.Bool("verify", false, "verify device output against CPU references on every run"),
		workers:       fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)"),
		simWorkers:    fs.Int("sim-workers", 0, "core-parallel threads per simulation (0 = auto-divide CPUs, <0 = sequential)"),
		commitWorkers: fs.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel per simulation (0 = follow -sim-workers, 1 = global commit)"),
		tickEngine:    fs.Bool("tick-engine", false, "run every simulation on the legacy per-cycle tick loop instead of the event-driven device engine (identical records, differential oracle)"),
		batchExec:     fs.Bool("batch-exec", true, "execute lockstep warp cohorts with fused batched kernels; false selects the per-warp oracle path (identical records)"),
		batchMem:      fs.Bool("batch-mem", true, "batch loads/stores of lockstep cohorts through affine address templates; false selects the per-warp oracle path (identical records)"),
	}
}

// options validates the campaign flags and assembles sweep.Options.
// Numeric nonsense is refused here, at the CLI boundary, instead of
// flowing into Subsample (-configs 0 used to silently run the full
// 450-point grid) or the workload builders (-scale 0 and negatives).
func (cf *campaignFlags) options() (sweep.Options, error) {
	var opts sweep.Options
	if *cf.scale <= 0 {
		return opts, fmt.Errorf("-scale must be > 0 (got %v)", *cf.scale)
	}
	if *cf.nConfigs < 1 {
		return opts, fmt.Errorf("-configs must be >= 1 (got %d)", *cf.nConfigs)
	}
	var scheds []sim.SchedPolicy
	seenSched := map[sim.SchedPolicy]bool{}
	for _, name := range strings.Split(*cf.schedCSV, ",") {
		p, err := sim.ParseSchedPolicy(strings.TrimSpace(name))
		if err != nil {
			return opts, err
		}
		if seenSched[p] {
			// A repeated policy would alias two grid cells onto one task
			// key; sweep.Run refuses it too, but catch it here with the
			// flag named.
			return opts, fmt.Errorf("duplicate -sched entry %s: each scheduler appears on the grid axis once", p)
		}
		seenSched[p] = true
		scheds = append(scheds, p)
	}
	var mshrs []int
	seenMSHR := map[int]bool{}
	for _, field := range strings.Split(*cf.mshrsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return opts, fmt.Errorf("bad -mshrs entry %q (want a non-negative count, 0 = unbounded)", strings.TrimSpace(field))
		}
		if n < 0 {
			return opts, fmt.Errorf("-mshrs entries must be >= 0 (got %d; 0 = unbounded)", n)
		}
		if seenMSHR[n] {
			return opts, fmt.Errorf("duplicate -mshrs entry %d: each MSHR bound appears on the grid axis once", n)
		}
		seenMSHR[n] = true
		mshrs = append(mshrs, n)
	}
	var l1s []string
	seenL1 := map[string]bool{}
	for _, field := range strings.Split(*cf.l1CSV, ",") {
		spec := strings.TrimSpace(field)
		if _, _, err := mem.ParseL1Geometry(spec); err != nil {
			return opts, err
		}
		if seenL1[spec] {
			return opts, fmt.Errorf("duplicate -l1 entry %s: each L1 geometry appears on the grid axis once", spec)
		}
		seenL1[spec] = true
		l1s = append(l1s, spec)
	}
	var prefetch []mem.PrefetchPolicy
	seenPf := map[mem.PrefetchPolicy]bool{}
	for _, field := range strings.Split(*cf.prefetchCSV, ",") {
		p, err := mem.ParsePrefetchPolicy(strings.TrimSpace(field))
		if err != nil {
			return opts, err
		}
		if seenPf[p] {
			return opts, fmt.Errorf("duplicate -prefetch entry %s: each prefetch policy appears on the grid axis once", p)
		}
		seenPf[p] = true
		prefetch = append(prefetch, p)
	}
	names := kernels.Names()
	if *cf.kernelCSV != "all" && *cf.kernelCSV != "" {
		names = nil
		for _, f := range strings.Split(*cf.kernelCSV, ",") {
			names = append(names, strings.TrimSpace(f))
		}
	}
	configs := sweep.Subsample(sweep.Grid(), *cf.nConfigs)
	if *cf.gridCSV != "" {
		configs = nil
		for _, name := range strings.Split(*cf.gridCSV, ",") {
			name = strings.TrimSpace(name)
			hw, err := core.ParseName(name)
			if err != nil {
				return opts, err
			}
			// ParseName scans with Sscanf, which ignores trailing garbage;
			// require the canonical name to round-trip so a typo cannot
			// silently run a different grid.
			if hw.Name() != name {
				return opts, fmt.Errorf("bad -grid config %q (want e.g. %s)", name, hw.Name())
			}
			configs = append(configs, hw)
		}
	}
	return sweep.Options{
		Configs:       configs,
		Kernels:       names,
		Scheds:        scheds,
		MSHRs:         mshrs,
		L1Geoms:       l1s,
		Prefetch:      prefetch,
		Scale:         *cf.scale,
		Seed:          *cf.seed,
		Verify:        *cf.verify,
		Workers:       *cf.workers,
		SimWorkers:    *cf.simWorkers,
		CommitWorkers: *cf.commitWorkers,
		TickEngine:    *cf.tickEngine,
		NoBatchExec:   !*cf.batchExec,
		NoBatchMem:    !*cf.batchMem,
	}, nil
}

// runCampaign is the classic single-process mode (plus -shard striding).
func runCampaign(args []string) {
	fs := flag.NewFlagSet("vortex-sweep", flag.ExitOnError)
	cf := addCampaignFlags(fs)
	violins := fs.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	csvPath := fs.String("csv", "", "write the raw per-run records to this CSV file")
	progress := fs.Bool("progress", false, "print progress to stderr")
	checkpoint := fs.String("checkpoint", "", "stream each completed record to this JSONL file (crash-safe campaign state)")
	resume := fs.Bool("resume", false, "skip runs already recorded in -checkpoint (requires -checkpoint)")
	replot := fs.String("replot", "", "re-render tables/violins from a previously written CSV instead of simulating")
	shard := fs.String("shard", "", "run only shard i/N of the campaign grid (e.g. 0/3); recombine with the merge subcommand")
	fs.Parse(args)

	if *replot != "" {
		// -replot re-renders an existing CSV and never simulates; flags
		// that only mean something for a simulating campaign used to be
		// silently dropped here — refuse them instead of ignoring the
		// user's intent.
		var clash []string
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-checkpoint", *checkpoint != ""},
			{"-resume", *resume},
			{"-shard", *shard != ""},
			{"-csv", *csvPath != ""},
			{"-verify", *cf.verify},
		} {
			if f.set {
				clash = append(clash, f.name)
			}
		}
		if len(clash) > 0 {
			fatal(fmt.Sprintf("-replot re-renders an existing CSV without simulating and cannot be combined with %s", strings.Join(clash, ", ")))
		}
		f, err := os.Open(*replot)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := sweep.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		if err := render(res, *violins); err != nil {
			fatal(err)
		}
		return
	}

	if *resume && *checkpoint == "" {
		fatal("-resume requires -checkpoint")
	}
	var shardIndex, shardCount int
	if *shard != "" {
		idxStr, countStr, ok := strings.Cut(*shard, "/")
		var ierr, cerr error
		if ok {
			shardIndex, ierr = strconv.Atoi(idxStr)
			shardCount, cerr = strconv.Atoi(countStr)
		}
		if !ok || ierr != nil || cerr != nil || shardCount < 1 || shardIndex < 0 || shardIndex >= shardCount {
			fatal(fmt.Sprintf("bad -shard %q (want i/N with 0 <= i < N, e.g. 0/3)", *shard))
		}
	}

	opts, err := cf.options()
	if err != nil {
		fatal(err)
	}
	opts.Checkpoint = *checkpoint
	opts.Resume = *resume
	opts.ShardIndex = shardIndex
	opts.ShardCount = shardCount
	if *progress {
		start := time.Now()
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs (%.0fs elapsed)", done, total, time.Since(start).Seconds())
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	shardNote := ""
	if shardCount > 1 {
		shardNote = fmt.Sprintf(", shard %d/%d", shardIndex, shardCount)
	}
	schedNote := ""
	if len(opts.Scheds) > 1 {
		schedNote = fmt.Sprintf(" x %d schedulers (%s)", len(opts.Scheds), *cf.schedCSV)
	}
	memNote := ""
	if n := len(opts.MSHRs) * len(opts.L1Geoms) * len(opts.Prefetch); n > 1 {
		memNote = fmt.Sprintf(" x %d memory points (mshrs=%s, l1=%s, prefetch=%s)", n, *cf.mshrsCSV, *cf.l1CSV, *cf.prefetchCSV)
	}
	fmt.Printf("Figure 2 reproduction: %d configs x %d kernels x 3 mappings%s%s, scale=%.2f, seed=%d%s\n\n",
		len(opts.Configs), len(opts.Kernels), schedNote, memNote, *cf.scale, *cf.seed, shardNote)

	res, err := sweep.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "vortex-sweep: completed runs are preserved in %s; restart with -resume to continue\n", *checkpoint)
		}
		os.Exit(1)
	}
	fmt.Printf("campaign caches: %s\n\n", res.Cache)

	if err := render(res, *violins); err != nil {
		fatal(err)
	}
	if *csvPath != "" {
		writeCSVFile(res, *csvPath)
	}
}

// runServe is the campaign coordinator: it owns the task grid and the
// crash-safe checkpoint, hands out leases over HTTP, and exits once the
// grid is covered.
func runServe(args []string) {
	fs := flag.NewFlagSet("vortex-sweep serve", flag.ExitOnError)
	cf := addCampaignFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8712", "address to serve the campaign on (host:port; port 0 picks a free one)")
	checkpoint := fs.String("checkpoint", "", "stream each accepted record to this JSONL file (required: the crash-safe campaign state)")
	resume := fs.Bool("resume", false, "mark tasks already recorded in -checkpoint as done instead of re-issuing them")
	out := fs.String("out", "", "after the grid is covered, write the campaign as a canonical-order checkpoint (byte-identical to a single-process -workers 1 run)")
	csvPath := fs.String("csv", "", "write the completed per-run records to this CSV file")
	violins := fs.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	leaseTTL := fs.Duration("lease-ttl", 60*time.Second, "re-issue a worker's tasks if it has not submitted for this long")
	batch := fs.Int("batch", 4, "default tasks per lease")
	linger := fs.Duration("linger", 2*time.Second, "keep answering /lease with done for this long after the grid is covered, so idle pollers exit cleanly instead of hitting a closed port")
	progress := fs.Bool("progress", false, "print progress to stderr")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fatal(fmt.Sprintf("serve takes no positional arguments (got %q)", fs.Args()))
	}
	if *checkpoint == "" {
		fatal("serve requires -checkpoint: it is the crash-safe campaign state a killed coordinator resumes from")
	}
	opts, err := cf.options()
	if err != nil {
		fatal(err)
	}
	opts.Checkpoint = *checkpoint
	opts.Resume = *resume

	scfg := service.Config{LeaseTTL: *leaseTTL, BatchSize: *batch}
	if *progress {
		start := time.Now()
		scfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d tasks (%.0fs elapsed)", done, total, time.Since(start).Seconds())
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	srv, err := service.New(opts, scfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	st := srv.Status()
	// The resolved address line is the contract the CLI tests (and shell
	// scripts) scrape the port from when -addr ends in :0.
	fmt.Printf("serving campaign on %s (%d tasks, %d resumed)\n", ln.Addr(), st.Total, st.Completed)
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)

	<-srv.Done()
	// Workers that were polling (everything leased elsewhere) learn the
	// campaign is over from their next /lease; closing the listener the
	// instant the last record lands would turn that poll into a confusing
	// connection-refused.
	time.Sleep(*linger)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(ctx)
	cancel()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st = srv.Status()
	fmt.Printf("campaign complete: %d records (%d failed), %d duplicate submissions, %d leases reissued, %d workers\n\n",
		st.Completed, st.Failed, st.Dupes, st.Reissued, st.Workers)
	if err := srv.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		fmt.Fprintf(os.Stderr, "vortex-sweep: completed runs are preserved in %s; restart serve with -resume to retry the failures\n", *checkpoint)
		os.Exit(1)
	}
	res, err := srv.Results()
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := srv.WriteFinal(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d records, canonical order)\n\n", *out, len(res.Records))
	}
	if err := render(res, *violins); err != nil {
		fatal(err)
	}
	if *csvPath != "" {
		writeCSVFile(res, *csvPath)
	}
}

// runWork is a fleet worker: lease tasks from a coordinator, run them
// through the shared simulation substrate, stream records back.
func runWork(args []string) {
	fs := flag.NewFlagSet("vortex-sweep work", flag.ExitOnError)
	cf := addCampaignFlags(fs)
	coordinator := fs.String("coordinator", "", "coordinator address (host:port of a vortex-sweep serve; required)")
	workerID := fs.String("worker", "", "stable worker identity (default host-pid)")
	batch := fs.Int("batch", 0, "tasks to request per lease (0 = coordinator default)")
	progress := fs.Bool("progress", false, "print each completed task to stderr")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fatal(fmt.Sprintf("work takes no positional arguments (got %q)", fs.Args()))
	}
	if *coordinator == "" {
		fatal("work requires -coordinator (the address of a vortex-sweep serve)")
	}
	opts, err := cf.options()
	if err != nil {
		fatal(err)
	}
	ran := 0
	wcfg := service.WorkerConfig{ID: *workerID, BatchSize: *batch}
	wcfg.OnRecord = func(r sweep.Record) {
		ran++
		if *progress {
			fmt.Fprintf(os.Stderr, "%s done (%d run)\n", r.Key(), ran)
		}
	}
	if err := service.Work(context.Background(), *coordinator, opts, wcfg); err != nil {
		fatal(err)
	}
	fmt.Printf("campaign complete: this worker ran %d tasks\n", ran)
}

// runMerge implements the merge subcommand: recombine completed shard
// checkpoints into single-process results, optionally writing a merged
// checkpoint and CSV, and render the same report the single-process run
// would print.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "write the merged campaign as a single unsharded checkpoint JSONL")
	csvPath := fs.String("csv", "", "write the merged per-run records to this CSV file")
	violins := fs.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	crossover := fs.String("crossover", "", "also render per-hp crossover curves against this baseline mapper (e.g. lws=32)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vortex-sweep merge [-out merged.jsonl] [-csv out.csv] [-violins] [-crossover lws=32] shard0.jsonl shard1.jsonl ...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(1)
	}
	res, err := sweep.Merge(*out, fs.Args())
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Printf("merged %d shards into %s (%d records)\n\n", fs.NArg(), *out, len(res.Records))
	}
	if err := render(res, *violins); err != nil {
		fatal(err)
	}
	if *crossover != "" {
		fmt.Println()
		if err := res.RenderCrossover(os.Stdout, *crossover); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		writeCSVFile(res, *csvPath)
	}
}

func render(res *sweep.Results, violins bool) error {
	if violins {
		return res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16})
	}
	return res.RenderTable(os.Stdout)
}

func writeCSVFile(res *sweep.Results, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s (%d records)\n", path, len(res.Records))
}
