// Command vortex-sweep regenerates the paper's Figure 2: the three lws
// mappings (lws=1, lws=32, ours) for every benchmark kernel across the
// 450-configuration grid, reporting ratio violins, the per-kernel data
// tables, and the Section 3 aggregate speedups.
//
// The full paper-scale campaign (450 configs x 9 kernels x 3 mappings at
// Scale=1) is hours of single-core simulation; -scale and -configs trade
// fidelity for time (EXPERIMENTS.md records the settings used there).
//
// Usage:
//
//	vortex-sweep [-scale 1.0] [-configs 450] [-kernels all] [-seed 42]
//	             [-violins] [-verify] [-csv out.csv] [-progress]
//	             [-checkpoint campaign.jsonl] [-resume]
//
// With -checkpoint, every completed record is streamed to the given JSONL
// file as it finishes; a killed campaign restarted with -resume skips the
// recorded runs and produces results byte-identical to an uninterrupted
// sweep. The final report includes the campaign engine's cache counters
// (assembled-program cache, workload input memo, device pool).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)")
	nConfigs := flag.Int("configs", 450, "number of grid configurations (subsampled deterministically)")
	kernelCSV := flag.String("kernels", "all", "comma-separated kernels or 'all'")
	seed := flag.Int64("seed", 42, "input generation seed")
	violins := flag.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	verify := flag.Bool("verify", false, "verify device output against CPU references on every run")
	csvPath := flag.String("csv", "", "write the raw per-run records to this CSV file")
	progress := flag.Bool("progress", false, "print progress to stderr")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	simWorkers := flag.Int("sim-workers", 0, "core-parallel threads per simulation (0 = auto-divide CPUs, <0 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel per simulation (0 = follow -sim-workers, 1 = global commit)")
	checkpoint := flag.String("checkpoint", "", "stream each completed record to this JSONL file (crash-safe campaign state)")
	resume := flag.Bool("resume", false, "skip runs already recorded in -checkpoint (requires -checkpoint)")
	replot := flag.String("replot", "", "re-render tables/violins from a previously written CSV instead of simulating")
	flag.Parse()

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "vortex-sweep: -resume requires -checkpoint")
		os.Exit(1)
	}

	if *replot != "" {
		f, err := os.Open(*replot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		res, err := sweep.ReadCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		var rerr error
		if *violins {
			rerr = res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16})
		} else {
			rerr = res.RenderTable(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", rerr)
			os.Exit(1)
		}
		return
	}

	names := kernels.Names()
	if *kernelCSV != "all" && *kernelCSV != "" {
		names = nil
		for _, f := range strings.Split(*kernelCSV, ",") {
			names = append(names, strings.TrimSpace(f))
		}
	}
	opts := sweep.Options{
		Configs:       sweep.Subsample(sweep.Grid(), *nConfigs),
		Kernels:       names,
		Scale:         *scale,
		Seed:          *seed,
		Verify:        *verify,
		Workers:       *workers,
		SimWorkers:    *simWorkers,
		CommitWorkers: *commitWorkers,
		Checkpoint:    *checkpoint,
		Resume:        *resume,
	}
	if *progress {
		start := time.Now()
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs (%.0fs elapsed)", done, total, time.Since(start).Seconds())
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	fmt.Printf("Figure 2 reproduction: %d configs x %d kernels x 3 mappings, scale=%.2f, seed=%d\n\n",
		len(opts.Configs), len(names), *scale, *seed)

	res, err := sweep.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "vortex-sweep: completed runs are preserved in %s; restart with -resume to continue\n", *checkpoint)
		}
		os.Exit(1)
	}
	fmt.Printf("campaign caches: %s\n\n", res.Cache)

	if *violins {
		if err := res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16}); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
	} else {
		if err := res.RenderTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d records)\n", *csvPath, len(res.Records))
	}
}
