// Command vortex-sweep regenerates the paper's Figure 2: the three lws
// mappings (lws=1, lws=32, ours) for every benchmark kernel across the
// 450-configuration grid, reporting ratio violins, the per-kernel data
// tables, and the Section 3 aggregate speedups.
//
// The full paper-scale campaign (450 configs x 9 kernels x 3 mappings at
// Scale=1) is hours of single-core simulation; -scale and -configs trade
// fidelity for time (EXPERIMENTS.md records the settings used there).
//
// Usage:
//
//	vortex-sweep [-scale 1.0] [-configs 450] [-grid 1c2w2t,...] [-kernels all]
//	             [-sched rr,gto,oldest,2lev] [-seed 42] [-violins] [-verify]
//	             [-csv out.csv] [-progress] [-tick-engine]
//	             [-checkpoint campaign.jsonl] [-resume] [-shard i/N]
//	vortex-sweep merge [-out merged.jsonl] [-csv out.csv] [-violins]
//	             [-crossover lws=32] shard0.jsonl shard1.jsonl ...
//
// With -checkpoint, every completed record is streamed to the given JSONL
// file as it finishes; a killed campaign restarted with -resume skips the
// recorded runs and produces results byte-identical to an uninterrupted
// sweep. The final report includes the campaign engine's cache counters
// (assembled-program cache, workload input memo, device pool).
//
// With -shard i/N, the process runs only every N-th task of the canonical
// campaign grid starting at i, so a campaign can spread over N independent
// hosts: run each shard with its own -checkpoint, then recombine with the
// merge subcommand, whose report, CSV and checkpoint output are
// byte-identical to a single-process run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)")
	nConfigs := flag.Int("configs", 450, "number of grid configurations (subsampled deterministically)")
	kernelCSV := flag.String("kernels", "all", "comma-separated kernels or 'all'")
	seed := flag.Int64("seed", 42, "input generation seed")
	violins := flag.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	verify := flag.Bool("verify", false, "verify device output against CPU references on every run")
	csvPath := flag.String("csv", "", "write the raw per-run records to this CSV file")
	progress := flag.Bool("progress", false, "print progress to stderr")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	simWorkers := flag.Int("sim-workers", 0, "core-parallel threads per simulation (0 = auto-divide CPUs, <0 = sequential)")
	commitWorkers := flag.Int("commit-workers", 0, "commit-phase sharding per L2 bank/DRAM channel per simulation (0 = follow -sim-workers, 1 = global commit)")
	checkpoint := flag.String("checkpoint", "", "stream each completed record to this JSONL file (crash-safe campaign state)")
	resume := flag.Bool("resume", false, "skip runs already recorded in -checkpoint (requires -checkpoint)")
	replot := flag.String("replot", "", "re-render tables/violins from a previously written CSV instead of simulating")
	shard := flag.String("shard", "", "run only shard i/N of the campaign grid (e.g. 0/3); recombine with the merge subcommand")
	gridCSV := flag.String("grid", "", "explicit comma-separated config names (e.g. 1c2w2t,4c4w4t); overrides -configs")
	schedCSV := flag.String("sched", "rr", "comma-separated warp-scheduler grid axis (rr, gto, oldest, 2lev)")
	tickEngine := flag.Bool("tick-engine", false, "run every simulation on the legacy per-cycle tick loop instead of the event-driven device engine (identical records, differential oracle)")
	flag.Parse()

	var scheds []sim.SchedPolicy
	for _, name := range strings.Split(*schedCSV, ",") {
		p, err := sim.ParseSchedPolicy(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		scheds = append(scheds, p)
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "vortex-sweep: -resume requires -checkpoint")
		os.Exit(1)
	}
	var shardIndex, shardCount int
	if *shard != "" {
		idxStr, countStr, ok := strings.Cut(*shard, "/")
		var ierr, cerr error
		if ok {
			shardIndex, ierr = strconv.Atoi(idxStr)
			shardCount, cerr = strconv.Atoi(countStr)
		}
		if !ok || ierr != nil || cerr != nil || shardCount < 1 || shardIndex < 0 || shardIndex >= shardCount {
			fmt.Fprintf(os.Stderr, "vortex-sweep: bad -shard %q (want i/N with 0 <= i < N, e.g. 0/3)\n", *shard)
			os.Exit(1)
		}
	}

	if *replot != "" {
		f, err := os.Open(*replot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		res, err := sweep.ReadCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
		var rerr error
		if *violins {
			rerr = res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16})
		} else {
			rerr = res.RenderTable(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", rerr)
			os.Exit(1)
		}
		return
	}

	names := kernels.Names()
	if *kernelCSV != "all" && *kernelCSV != "" {
		names = nil
		for _, f := range strings.Split(*kernelCSV, ",") {
			names = append(names, strings.TrimSpace(f))
		}
	}
	configs := sweep.Subsample(sweep.Grid(), *nConfigs)
	if *gridCSV != "" {
		configs = nil
		for _, name := range strings.Split(*gridCSV, ",") {
			name = strings.TrimSpace(name)
			hw, err := core.ParseName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
				os.Exit(1)
			}
			// ParseName scans with Sscanf, which ignores trailing garbage;
			// require the canonical name to round-trip so a typo cannot
			// silently run a different grid.
			if hw.Name() != name {
				fmt.Fprintf(os.Stderr, "vortex-sweep: bad -grid config %q (want e.g. %s)\n", name, hw.Name())
				os.Exit(1)
			}
			configs = append(configs, hw)
		}
	}
	opts := sweep.Options{
		Configs:       configs,
		Kernels:       names,
		Scheds:        scheds,
		Scale:         *scale,
		Seed:          *seed,
		Verify:        *verify,
		Workers:       *workers,
		SimWorkers:    *simWorkers,
		CommitWorkers: *commitWorkers,
		TickEngine:    *tickEngine,
		Checkpoint:    *checkpoint,
		Resume:        *resume,
		ShardIndex:    shardIndex,
		ShardCount:    shardCount,
	}
	if *progress {
		start := time.Now()
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs (%.0fs elapsed)", done, total, time.Since(start).Seconds())
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	shardNote := ""
	if shardCount > 1 {
		shardNote = fmt.Sprintf(", shard %d/%d", shardIndex, shardCount)
	}
	schedNote := ""
	if len(scheds) > 1 {
		schedNote = fmt.Sprintf(" x %d schedulers (%s)", len(scheds), *schedCSV)
	}
	fmt.Printf("Figure 2 reproduction: %d configs x %d kernels x 3 mappings%s, scale=%.2f, seed=%d%s\n\n",
		len(opts.Configs), len(names), schedNote, *scale, *seed, shardNote)

	res, err := sweep.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "vortex-sweep: completed runs are preserved in %s; restart with -resume to continue\n", *checkpoint)
		}
		os.Exit(1)
	}
	fmt.Printf("campaign caches: %s\n\n", res.Cache)

	if *violins {
		if err := res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16}); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
	} else {
		if err := res.RenderTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
			os.Exit(1)
		}
	}

	if *csvPath != "" {
		writeCSVFile(res, *csvPath)
	}
}

// runMerge implements the merge subcommand: recombine completed shard
// checkpoints into single-process results, optionally writing a merged
// checkpoint and CSV, and render the same report the single-process run
// would print.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "write the merged campaign as a single unsharded checkpoint JSONL")
	csvPath := fs.String("csv", "", "write the merged per-run records to this CSV file")
	violins := fs.Bool("violins", false, "render ASCII violin plots (Figure 2)")
	crossover := fs.String("crossover", "", "also render per-hp crossover curves against this baseline mapper (e.g. lws=32)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vortex-sweep merge [-out merged.jsonl] [-csv out.csv] [-violins] [-crossover lws=32] shard0.jsonl shard1.jsonl ...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(1)
	}
	res, err := sweep.Merge(*out, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("merged %d shards into %s (%d records)\n\n", fs.NArg(), *out, len(res.Records))
	}
	if *violins {
		err = res.RenderFigure2(os.Stdout, stats.ViolinOptions{Rows: 17, HalfWidth: 16})
	} else {
		err = res.RenderTable(os.Stdout)
	}
	if err == nil && *crossover != "" {
		fmt.Println()
		err = res.RenderCrossover(os.Stdout, *crossover)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		writeCSVFile(res, *csvPath)
	}
}

func writeCSVFile(res *sweep.Results, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, "vortex-sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d records)\n", path, len(res.Records))
}
