package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildSweep compiles the vortex-sweep binary into dir.
func buildSweep(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "vortex-sweep")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// campaignArgs is the tiny fixed campaign every CLI test drives: explicit
// grid so shard runs and the reference run agree on the canonical task
// order, Workers=1 so the reference checkpoint is written in that order.
var campaignArgs = []string{
	"-grid", "1c2w2t,2c2w4t,4c4w4t",
	"-kernels", "vecadd,saxpy",
	"-scale", "0.05", "-seed", "7", "-workers", "1",
}

func runSweep(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", bin, strings.Join(args, " "), err, errb.String())
	}
	return out.String()
}

// countLines returns the number of complete (newline-terminated) lines.
func countLines(b []byte) int { return bytes.Count(b, []byte("\n")) }

// truncateToLines keeps the first n complete lines of path.
func truncateToLines(t *testing.T, path string, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	for i := 0; i < n; i++ {
		next := bytes.IndexByte(raw[idx:], '\n')
		if next < 0 {
			t.Fatalf("%s has fewer than %d lines", path, n)
		}
		idx += next + 1
	}
	if err := os.WriteFile(path, raw[:idx], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardKillResumeMergeCLI drives the full sharded-campaign lifecycle as
// real subprocesses: three shards, one of them SIGKILLed mid-campaign and
// resumed from whatever its checkpoint holds, then merged — and the merged
// checkpoint and CSV must be byte-identical to a clean single-process run.
func TestShardKillResumeMergeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)

	refCkpt := filepath.Join(dir, "ref.jsonl")
	refCSV := filepath.Join(dir, "ref.csv")
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-checkpoint", refCkpt, "-csv", refCSV)...)

	shardPaths := make([]string, 3)
	for i := range shardPaths {
		shardPaths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
	}

	// Shards 0 and 2 run clean.
	for _, i := range []int{0, 2} {
		runSweep(t, bin, append(append([]string{}, campaignArgs...),
			"-shard", string(rune('0'+i))+"/3", "-checkpoint", shardPaths[i])...)
	}

	// Shard 1 is SIGKILLed as soon as its checkpoint holds at least one
	// record (the meta line plus one). If the campaign finishes first the
	// kill is a no-op; the truncation below re-creates the mid-campaign
	// state deterministically either way.
	killCmd := exec.Command(bin, append(append([]string{}, campaignArgs...),
		"-shard", "1/3", "-checkpoint", shardPaths[1])...)
	if err := killCmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { killCmd.Wait(); close(done) }()
	deadline := time.After(30 * time.Second)
poll:
	for {
		select {
		case <-done:
			break poll
		case <-deadline:
			killCmd.Process.Kill()
			<-done
			t.Fatal("shard 1 did not produce a record within 30s")
		default:
		}
		if raw, err := os.ReadFile(shardPaths[1]); err == nil && countLines(raw) >= 2 {
			killCmd.Process.Kill() // SIGKILL, no cleanup
			<-done
			break poll
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Force a mid-campaign checkpoint regardless of kill timing: keep the
	// meta header and exactly one record, then re-tear the tail the way a
	// SIGKILL mid-write does — the resume must repair it, not append onto it.
	truncateToLines(t, shardPaths[1], 2)
	f, err := os.OpenFile(shardPaths[1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Config":{"Cores":2,"Wa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume shard 1 to completion, then merge.
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-shard", "1/3", "-checkpoint", shardPaths[1], "-resume")...)

	mergedCkpt := filepath.Join(dir, "merged.jsonl")
	mergedCSV := filepath.Join(dir, "merged.csv")
	mergeOut := runSweep(t, bin, "merge", "-out", mergedCkpt, "-csv", mergedCSV,
		shardPaths[0], shardPaths[1], shardPaths[2])
	if !strings.Contains(mergeOut, "merged 3 shards") {
		t.Errorf("merge output missing summary:\n%s", mergeOut)
	}

	for _, pair := range [][2]string{{refCkpt, mergedCkpt}, {refCSV, mergedCSV}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from %s:\n--- want ---\n%s\n--- got ---\n%s",
				pair[1], pair[0], want, got)
		}
	}
}

// pollStatus fetches the coordinator's /status JSON.
func pollStatus(t *testing.T, addr string) (st struct {
	Total     int  `json:"total"`
	Completed int  `json:"completed"`
	Leased    int  `json:"leased"`
	Pending   int  `json:"pending"`
	Reissued  int  `json:"leases_reissued"`
	Done      bool `json:"done"`
}) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /status: %v", err)
	}
	return st
}

// TestServeWorkKillRecoveryCLI drives the work-stealing campaign service as
// real subprocesses: a coordinator on a kernel-picked port, one worker that
// is SIGKILLed while it provably holds an unfinished lease, and a second
// worker that triggers the lease re-issue and finishes the grid. The
// coordinator's canonical -out checkpoint and CSV must be byte-identical to
// a clean single-process run — a worker dying mid-lease must not perturb a
// single record.
func TestServeWorkKillRecoveryCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)

	refCkpt := filepath.Join(dir, "ref.jsonl")
	refCSV := filepath.Join(dir, "ref.csv")
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-checkpoint", refCkpt, "-csv", refCSV)...)

	finalCkpt := filepath.Join(dir, "final.jsonl")
	finalCSV := filepath.Join(dir, "final.csv")
	serveCmd := exec.Command(bin, append([]string{"serve",
		"-addr", "127.0.0.1:0", "-checkpoint", filepath.Join(dir, "served.jsonl"),
		"-out", finalCkpt, "-csv", finalCSV,
		"-lease-ttl", "2s", "-batch", "3", "-linger", "200ms"},
		campaignArgs...)...)
	servePipe, err := serveCmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serveCmd.Stderr = os.Stderr
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer serveCmd.Process.Kill()
	serveOut := bufio.NewScanner(servePipe)
	if !serveOut.Scan() {
		t.Fatal("serve produced no output")
	}
	banner := serveOut.Text()
	// "serving campaign on 127.0.0.1:PORT (N tasks, 0 resumed)" is the
	// scrape contract for :0 listeners.
	fields := strings.Fields(banner)
	if len(fields) < 4 || !strings.HasPrefix(banner, "serving campaign on ") {
		t.Fatalf("unexpected serve banner %q", banner)
	}
	addr := fields[3]
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		b.WriteString(banner + "\n")
		for serveOut.Scan() {
			b.WriteString(serveOut.Text() + "\n")
		}
		rest <- b.String()
	}()

	// A worker describing a different campaign must be refused at
	// enrollment, permanently — not retried into the grid.
	alien := exec.Command(bin, append(append([]string{"work", "-coordinator", addr},
		campaignArgs...), "-seed", "9")...)
	if out, err := alien.CombinedOutput(); err == nil {
		t.Fatalf("meta-mismatched worker accepted:\n%s", out)
	} else if !strings.Contains(string(out), "meta mismatch") || !strings.Contains(string(out), "Seed") {
		t.Errorf("meta-mismatch refusal not diagnosable:\n%s", out)
	}

	// Start victim workers until one is SIGKILLed while status shows tasks
	// still leased — after the kill lands, nothing can submit them, so
	// those leases MUST expire and be re-issued. (A victim that submits its
	// whole batch in the poll-to-kill window is retried; each victim holds
	// a 3-task lease for ~hundreds of ms, so the first try all but always
	// sticks.)
	killedHoldingLease := false
	for attempt := 0; attempt < 10 && !killedHoldingLease; attempt++ {
		st := pollStatus(t, addr)
		if st.Pending+st.Leased < 6 {
			t.Fatalf("campaign nearly done (status %+v) before a victim could be killed mid-lease", st)
		}
		victim := exec.Command(bin, append([]string{"work", "-coordinator", addr, "-worker",
			fmt.Sprintf("victim%d", attempt), "-batch", "3"}, campaignArgs...)...)
		if err := victim.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if pollStatus(t, addr).Leased > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		victim.Process.Kill() // SIGKILL, no cleanup, no farewell submit
		victim.Wait()
		killedHoldingLease = pollStatus(t, addr).Leased > 0
	}
	if !killedHoldingLease {
		t.Fatal("never caught a victim holding a lease at kill time")
	}

	// A clean worker finishes the grid: it polls, the dead victim's lease
	// expires (2s TTL), and the freed tasks are re-issued to it.
	finisher := runSweep(t, bin, append([]string{"work", "-coordinator", addr,
		"-worker", "finisher"}, campaignArgs...)...)
	if !strings.Contains(finisher, "campaign complete: this worker ran") {
		t.Errorf("finisher output missing summary:\n%s", finisher)
	}

	if err := serveCmd.Wait(); err != nil {
		t.Fatalf("serve exited with %v", err)
	}
	serveLog := <-rest
	m := regexp.MustCompile(`(\d+) leases reissued`).FindStringSubmatch(serveLog)
	if m == nil {
		t.Fatalf("serve output missing reissue count:\n%s", serveLog)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("killed worker's lease was never reissued:\n%s", serveLog)
	}

	for _, pair := range [][2]string{{refCkpt, finalCkpt}, {refCSV, finalCSV}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from %s:\n--- want ---\n%s\n--- got ---\n%s",
				pair[1], pair[0], want, got)
		}
	}
}

// TestCampaignFlagRefusals pins the CLI-boundary validation diagnostics:
// numeric nonsense, duplicated sched axis entries, -replot combined with
// simulation-only flags, and serve/work missing their required flags all
// fail up front with the offending flag named.
func TestCampaignFlagRefusals(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)
	base := []string{"-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0.05"}
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"dup sched", append(append([]string{}, base...), "-sched", "rr,gto,rr"),
			"duplicate -sched entry rr"},
		{"zero scale", []string{"-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0"},
			"-scale must be > 0"},
		{"negative scale", []string{"-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "-0.5"},
			"-scale must be > 0"},
		{"zero configs", []string{"-kernels", "vecadd", "-scale", "0.05", "-configs", "0"},
			"-configs must be >= 1"},
		{"negative configs", []string{"-kernels", "vecadd", "-scale", "0.05", "-configs", "-3"},
			"-configs must be >= 1"},
		{"replot with checkpoint", []string{"-replot", "x.csv", "-checkpoint", "y.jsonl"},
			"cannot be combined with -checkpoint"},
		{"replot with resume+verify", []string{"-replot", "x.csv", "-resume", "-verify"},
			"cannot be combined with -resume, -verify"},
		{"replot with shard+csv", []string{"-replot", "x.csv", "-shard", "0/2", "-csv", "z.csv"},
			"cannot be combined with -shard, -csv"},
		{"serve without checkpoint", append([]string{"serve"}, base...),
			"serve requires -checkpoint"},
		{"serve with zero scale", []string{"serve", "-checkpoint", "c.jsonl",
			"-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0"},
			"-scale must be > 0"},
		{"serve with dup sched", append([]string{"serve", "-checkpoint", filepath.Join(dir, "c.jsonl"),
			"-sched", "gto,gto"}, base...), "duplicate -sched entry gto"},
		{"work without coordinator", append([]string{"work"}, base...),
			"work requires -coordinator"},
		{"work with dup sched", append([]string{"work", "-coordinator", "127.0.0.1:1",
			"-sched", "rr,rr"}, base...), "duplicate -sched entry rr"},
	} {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: diagnostic %q missing %q", tc.name, out, tc.want)
		}
	}
}

// TestShardFlagRejected pins strict -shard parsing: trailing garbage,
// out-of-range indexes and zero counts must be refused up front, not run
// as a silently different shard.
func TestShardFlagRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)
	for _, bad := range []string{"bogus", "1/3o", "1/3/4", "3/3", "-1/3", "0/0", "1/"} {
		cmd := exec.Command(bin, "-shard", bad, "-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0.05")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("-shard %q accepted:\n%s", bad, out)
		} else if !strings.Contains(string(out), "bad -shard") {
			t.Errorf("-shard %q: unexpected error:\n%s", bad, out)
		}
	}
	// -grid names must round-trip exactly: Sscanf-based parsing would
	// otherwise accept trailing garbage and run a different grid.
	for _, bad := range []string{"4c4w4t99", "4c4w4tt", "1c2w2t x"} {
		cmd := exec.Command(bin, "-grid", bad, "-kernels", "vecadd", "-scale", "0.05")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("-grid %q accepted:\n%s", bad, out)
		}
	}
}

// TestMergeCLIRefusesBadShardSet pins the CLI surface of the merge
// validation: a missing shard is refused with a diagnosable error.
func TestMergeCLIRefusesBadShardSet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)
	shard0 := filepath.Join(dir, "shard0.jsonl")
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-shard", "0/2", "-checkpoint", shard0)...)
	cmd := exec.Command(bin, "merge", "-out", filepath.Join(dir, "m.jsonl"), shard0)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("merge of 1 of 2 shards succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "missing shard 1/2") {
		t.Errorf("merge error not diagnosable:\n%s", out)
	}
}
