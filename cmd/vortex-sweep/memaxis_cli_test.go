package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// CLI surface of the memory-axis harness: the acceptance sweep over
// -mshrs/-l1/-prefetch (checkpoint meta v4, shard+merge, CSV columns), the
// checkpoint-diff identity of the explicit default point against a run
// that never mentions the memory flags, the v3 version refusal, and the
// per-flag validation diagnostics.

// memAxisArgs is the acceptance-criterion grid: every memory axis
// multi-valued on a small config/kernel base.
var memAxisArgs = []string{
	"-grid", "1c2w2t,2c2w4t",
	"-kernels", "vecadd",
	"-mshrs", "0,4",
	"-l1", "16k4w,32k8w",
	"-prefetch", "off,nextline",
	"-scale", "0.05", "-seed", "7", "-workers", "1",
}

// TestMemAxisSweepCLI drives the acceptance sweep as a real subprocess:
// the checkpoint carries the v4 meta with the three memory axes, the CSV
// grows the mshrs/l1/prefetch columns, and a two-shard split of the same
// grid merges back byte-identical to the single-process run.
func TestMemAxisSweepCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)

	refCkpt := filepath.Join(dir, "ref.jsonl")
	refCSV := filepath.Join(dir, "ref.csv")
	out := runSweep(t, bin, append(append([]string{}, memAxisArgs...),
		"-checkpoint", refCkpt, "-csv", refCSV)...)
	if !strings.Contains(out, "memory points") {
		t.Errorf("campaign banner does not announce the memory grid:\n%s", out)
	}

	ckpt, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}
	meta := string(bytes.SplitN(ckpt, []byte("\n"), 2)[0])
	for _, want := range []string{
		`"checkpoint_version":4`,
		`"mshrs":"0,4"`,
		`"l1_geoms":"16k4w,32k8w"`,
		`"prefetch":"off,nextline"`,
	} {
		if !strings.Contains(meta, want) {
			t.Errorf("checkpoint meta missing %s:\n%s", want, meta)
		}
	}

	csv, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	header := string(bytes.SplitN(csv, []byte("\n"), 2)[0])
	if !strings.Contains(header, ",mshrs,l1,prefetch,") {
		t.Errorf("CSV header missing the memory columns: %s", header)
	}
	for _, cell := range []string{",4,16k4w,off,", ",0,32k8w,nextline,"} {
		if !bytes.Contains(csv, []byte(cell)) {
			t.Errorf("CSV missing a %s grid point:\n%s", cell, csv)
		}
	}

	shardPaths := make([]string, 2)
	for i := range shardPaths {
		shardPaths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
		runSweep(t, bin, append(append([]string{}, memAxisArgs...),
			"-shard", string(rune('0'+i))+"/2", "-checkpoint", shardPaths[i])...)
	}
	mergedCkpt := filepath.Join(dir, "merged.jsonl")
	mergedCSV := filepath.Join(dir, "merged.csv")
	runSweep(t, bin, "merge", "-out", mergedCkpt, "-csv", mergedCSV, shardPaths[0], shardPaths[1])
	for _, pair := range [][2]string{{refCkpt, mergedCkpt}, {refCSV, mergedCSV}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from %s:\n--- want ---\n%s\n--- got ---\n%s",
				pair[1], pair[0], want, got)
		}
	}
}

// TestMemAxisDefaultPointCheckpointDiff is the CLI half of the
// differential oracle: spelling out the default memory point explicitly
// (-mshrs 0 -l1 16k4w -prefetch off) must produce a checkpoint and CSV
// byte-identical to a run that never mentions the memory flags.
func TestMemAxisDefaultPointCheckpointDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)

	plainCkpt := filepath.Join(dir, "plain.jsonl")
	plainCSV := filepath.Join(dir, "plain.csv")
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-checkpoint", plainCkpt, "-csv", plainCSV)...)

	explicitCkpt := filepath.Join(dir, "explicit.jsonl")
	explicitCSV := filepath.Join(dir, "explicit.csv")
	runSweep(t, bin, append(append([]string{}, campaignArgs...),
		"-mshrs", "0", "-l1", "16k4w", "-prefetch", "off",
		"-checkpoint", explicitCkpt, "-csv", explicitCSV)...)

	for _, pair := range [][2]string{{plainCkpt, explicitCkpt}, {plainCSV, explicitCSV}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from %s: the explicit default point is not the oracle",
				pair[1], pair[0])
		}
	}
}

// TestMemAxisResumeRejectsV3CheckpointCLI pins the version guard at the
// CLI: resuming a v3 (pre-memory-axes) checkpoint fails up front with the
// version diagnostic.
func TestMemAxisResumeRejectsV3CheckpointCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)
	ckpt := filepath.Join(dir, "old.jsonl")
	v3meta := `{"checkpoint_version":3,"scale":0.05,"seed":7,"verify":false,` +
		`"dispatch_overhead":0,"no_coalesce":false,"shard_index":0,"shard_count":1,` +
		`"configs":"1c2w2t","kernels":"vecadd","mappers":"ours,lws=1,lws=32","scheds":"rr"}` + "\n"
	if err := os.WriteFile(ckpt, []byte(v3meta), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0.05",
		"-seed", "7", "-checkpoint", ckpt, "-resume")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("resume of a v3 checkpoint succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "version 3 not supported") {
		t.Errorf("v3 refusal not diagnosable:\n%s", out)
	}
}

// TestMemAxisFlagRefusals pins the CLI-boundary diagnostics of the three
// memory flags, on the sweep command and on serve/work enrollment paths.
func TestMemAxisFlagRefusals(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the binary")
	}
	dir := t.TempDir()
	bin := buildSweep(t, dir)
	base := []string{"-grid", "1c2w2t", "-kernels", "vecadd", "-scale", "0.05"}
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"negative mshrs", append(append([]string{}, base...), "-mshrs", "-1"),
			"-mshrs"},
		{"garbage mshrs", append(append([]string{}, base...), "-mshrs", "four"),
			"-mshrs"},
		{"dup mshrs", append(append([]string{}, base...), "-mshrs", "0,4,0"),
			"duplicate -mshrs entry 0"},
		{"bad l1", append(append([]string{}, base...), "-l1", "16kb4w"),
			"bad L1 geometry"},
		{"dup l1", append(append([]string{}, base...), "-l1", "16k4w,16k4w"),
			"duplicate -l1 entry 16k4w"},
		{"bad prefetch", append(append([]string{}, base...), "-prefetch", "banana"),
			"unknown prefetch policy"},
		{"dup prefetch", append(append([]string{}, base...), "-prefetch", "off,off"),
			"duplicate -prefetch entry off"},
		{"serve with dup mshrs", append([]string{"serve", "-checkpoint", filepath.Join(dir, "c.jsonl"),
			"-mshrs", "4,4"}, base...), "duplicate -mshrs entry 4"},
		{"work with bad l1", append([]string{"work", "-coordinator", "127.0.0.1:1",
			"-l1", "nope"}, base...), "bad L1 geometry"},
	} {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: diagnostic %q missing %q", tc.name, out, tc.want)
		}
	}
}
