package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func reportOf(rows ...map[string]interface{}) *report {
	return &report{Count: len(rows), Results: rows}
}

func row(name string, ns float64) map[string]interface{} {
	return map[string]interface{}{"name": name, "ns_per_op": ns}
}

func TestMediansOddEvenAndMissingMetric(t *testing.T) {
	r := reportOf(
		row("BenchmarkA", 100), row("BenchmarkA", 300), row("BenchmarkA", 200),
		row("BenchmarkB", 10), row("BenchmarkB", 20),
		map[string]interface{}{"name": "BenchmarkC"}, // no ns_per_op: dropped
	)
	m := medians(r, "ns_per_op")
	if m["BenchmarkA"] != 200 {
		t.Errorf("odd median = %v, want 200", m["BenchmarkA"])
	}
	if m["BenchmarkB"] != 15 {
		t.Errorf("even median = %v, want 15", m["BenchmarkB"])
	}
	if _, ok := m["BenchmarkC"]; ok {
		t.Error("metric-less benchmark produced a median")
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]float64{"fast": 100, "slow": 1000, "gone": 50}
	cur := map[string]float64{"fast": 114, "slow": 1200, "fresh": 70}

	lines, failed := compare(base, cur, 0.15)
	if !failed {
		t.Error("20% regression on 'slow' did not fail the gate")
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"REGRESSION", "baseline-only", "new benchmark"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}

	// 14% is inside the 15% threshold; removing the regressing entry passes.
	delete(base, "slow")
	if _, failed := compare(base, cur, 0.15); failed {
		t.Error("within-threshold drift failed the gate")
	}
}

// A zero baseline median (an allocation-free benchmark, typically) has no
// ratio: it must pass while the current median is also zero and fail as
// soon as the metric becomes non-zero, without dividing by zero.
func TestCompareZeroBaseline(t *testing.T) {
	base := map[string]float64{"clean": 0}
	if lines, failed := compare(base, map[string]float64{"clean": 0}, 0.15); failed {
		t.Errorf("zero -> zero failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	lines, failed := compare(base, map[string]float64{"clean": 3}, 0.15)
	if !failed {
		t.Errorf("zero -> 3 passed the gate:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "REGRESSION") || strings.Contains(joined, "Inf") || strings.Contains(joined, "NaN") {
		t.Errorf("zero-baseline report malformed:\n%s", joined)
	}
}

func TestFilterNames(t *testing.T) {
	m := map[string]float64{
		"BenchmarkFig2Vecadd":  1,
		"BenchmarkFig2Saxpy":   2,
		"BenchmarkSimulatorIR": 3,
	}
	got := filterNames(m, regexp.MustCompile(`^BenchmarkFig2`))
	if len(got) != 2 || got["BenchmarkFig2Vecadd"] != 1 || got["BenchmarkFig2Saxpy"] != 2 {
		t.Errorf("filterNames = %v, want the two Fig2 entries", got)
	}
}

func TestReadReportParsesBenchShOutput(t *testing.T) {
	// The exact shape scripts/bench.sh emits, including metadata keys.
	src := `{
	  "count": 2,
	  "benchtime": "1x",
	  "results": [
	    {"name": "BenchmarkFig2Vecadd", "iters": 1, "ns_per_op": 84531390, "ratio_naive": 1.250},
	    {"name": "BenchmarkFig2Vecadd", "iters": 1, "ns_per_op": 65661746, "ratio_naive": 1.250}
	  ],
	  "goos": "linux",
	  "goarch": "amd64",
	  "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz"
	}`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 2 || r.CPU == "" || len(r.Results) != 2 {
		t.Errorf("parsed report = %+v", r)
	}
	m := medians(r, "ns_per_op")
	want := (84531390.0 + 65661746.0) / 2
	if m["BenchmarkFig2Vecadd"] != want {
		t.Errorf("median = %v, want %v", m["BenchmarkFig2Vecadd"], want)
	}
	if medians(r, "ratio_naive")["BenchmarkFig2Vecadd"] != 1.250 {
		t.Error("alternate metric not extracted")
	}
}
