// Command vortex-benchcmp is the CI benchmark regression gate: it compares
// a freshly measured scripts/bench.sh JSON report against the checked-in
// baseline (BENCH_baseline.json) and fails when any benchmark's median for
// the selected metric — wall-clock ns/op by default, or any other column
// via -metric (allocations, simulated device cycles, ...) — regresses
// beyond the threshold.
//
// Usage:
//
//	vortex-benchcmp -baseline BENCH_baseline.json -current out.json [-threshold 0.15]
//	                [-metric ns_per_op] [-filter '^BenchmarkFig2']
//
// -metric selects which column's medians are compared: ns_per_op gates
// wall clock, allocs_per_op and B_per_op gate the allocation behaviour of
// the hot simulation paths (deterministic, so they stay armed even across
// machines), device_cycles gates the simulated-time model itself. -filter
// restricts the comparison to benchmarks whose name matches the regexp,
// so a gate can target just the paper-figure suite.
//
// Benchmarks present in only one file are reported but never fail the
// gate, so adding or retiring benchmarks does not require lock-step
// baseline updates. A benchmark whose baseline median is zero cannot be
// compared by ratio: it passes while the current median is also zero and
// fails the moment allocations (or whatever the metric counts) appear.
// Cross-machine wall-clock comparisons are noisy, so a
// CPU-model mismatch between the two reports is surfaced as a warning and,
// with -skip-cpu-mismatch (what CI uses), downgrades the gate to a report:
// regressions are printed but do not fail the job. Regenerate the baseline
// with scripts/bench.sh on the enforcing hardware to arm the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// report mirrors the JSON scripts/bench.sh emits. Each result row keeps
// its metrics as a loose map: every (value, unit) pair of the `go test
// -bench` line becomes one entry, keyed by the sanitized unit.
type report struct {
	Count     int                      `json:"count"`
	Benchtime string                   `json:"benchtime"`
	Results   []map[string]interface{} `json:"results"`
	CPU       string                   `json:"cpu"`
}

func readReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// medians extracts the per-benchmark median of one metric.
func medians(r *report, metric string) map[string]float64 {
	samples := map[string][]float64{}
	for _, row := range r.Results {
		name, _ := row["name"].(string)
		v, ok := row[metric].(float64)
		if name == "" || !ok {
			continue
		}
		samples[name] = append(samples[name], v)
	}
	out := make(map[string]float64, len(samples))
	for name, vs := range samples {
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			out[name] = vs[n/2]
		} else {
			out[name] = (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	return out
}

// filterNames drops every benchmark whose name does not match re.
func filterNames(m map[string]float64, re *regexp.Regexp) map[string]float64 {
	out := make(map[string]float64, len(m))
	for name, v := range m {
		if re.MatchString(name) {
			out[name] = v
		}
	}
	return out
}

// compare returns the regression report lines and whether the gate fails.
func compare(base, cur map[string]float64, threshold float64) (lines []string, failed bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-44s baseline-only (%.0f), skipped", name, b))
			continue
		}
		verdict := "ok"
		change := "n/a"
		switch {
		case b == 0 && c > 0:
			// No ratio exists against a zero baseline; going from none to
			// some (allocations, typically) is always a regression.
			verdict = "REGRESSION"
			failed = true
		case b > 0:
			ratio := c / b
			change = fmt.Sprintf("%+.1f%%", (ratio-1)*100)
			if ratio > 1+threshold {
				verdict = "REGRESSION"
				failed = true
			}
		}
		lines = append(lines, fmt.Sprintf("  %-44s %12.0f -> %12.0f  (%s)  %s",
			name, b, c, change, verdict))
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			lines = append(lines, fmt.Sprintf("  %-44s new benchmark (%.0f), no baseline", name, cur[name]))
		}
	}
	return lines, failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
	currentPath := flag.String("current", "", "freshly measured report to gate")
	metric := flag.String("metric", "ns_per_op", "metric to compare medians of")
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated median regression (0.15 = +15%)")
	filter := flag.String("filter", "", "regexp restricting which benchmarks are compared (applied to both reports)")
	skipCPUMismatch := flag.Bool("skip-cpu-mismatch", false, "report but do not fail when the two reports come from different CPU models")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "vortex-benchcmp: -current is required")
		os.Exit(2)
	}
	var filterRE *regexp.Regexp
	if *filter != "" {
		var err error
		if filterRE, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "vortex-benchcmp: bad -filter:", err)
			os.Exit(2)
		}
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-benchcmp:", err)
		os.Exit(2)
	}
	cur, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortex-benchcmp:", err)
		os.Exit(2)
	}
	mismatch := base.CPU != cur.CPU
	if mismatch {
		fmt.Printf("warning: cpu mismatch (baseline %q, current %q); wall-clock gate is noisy across machines\n",
			base.CPU, cur.CPU)
	}

	baseM, curM := medians(base, *metric), medians(cur, *metric)
	if filterRE != nil {
		baseM, curM = filterNames(baseM, filterRE), filterNames(curM, filterRE)
	}
	lines, failed := compare(baseM, curM, *threshold)
	fmt.Printf("benchmark gate: %s medians, threshold +%.0f%%", *metric, *threshold*100)
	if filterRE != nil {
		fmt.Printf(", filter %s", filterRE)
	}
	fmt.Println()
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		if mismatch && *skipCPUMismatch {
			fmt.Printf("\nSKIPPED: regressions beyond +%.0f%% on mismatched hardware; regenerate the baseline to arm the gate\n",
				*threshold*100)
			return
		}
		fmt.Printf("\nFAIL: at least one benchmark regressed beyond +%.0f%%\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nOK: no benchmark regressed beyond the threshold")
}
