// Quickstart: allocate buffers, write a tiny kernel, and let the runtime
// pick the local work size from the device's micro-architecture (Eq. 1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vortex "repro"
)

func main() {
	const n = 4096

	// A 4-core device with 8 warps of 16 threads each: hp = 512 slots.
	dev, err := vortex.NewDevice(vortex.DefaultConfig(4, 8, 16))
	if err != nil {
		log.Fatal(err)
	}
	hw := dev.Info()
	fmt.Printf("device %s: hp = %d thread slots\n", hw.Name(), hw.HP())

	// The paper's runtime decision, visible before launching:
	advice := vortex.Advise(n, hw)
	fmt.Printf("Eq. 1 advice for gws=%d: lws=%d (%s)\n  %s\n\n",
		n, advice.LWS, advice.Regime, advice.Explanation)

	// Host data.
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = float32(2 * i)
	}
	a, err := dev.AllocFloat32(n)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := dev.AllocFloat32(n)
	c, _ := dev.AllocFloat32(n)
	if err := dev.WriteFloat32(a, xs); err != nil {
		log.Fatal(err)
	}
	if err := dev.WriteFloat32(b, ys); err != nil {
		log.Fatal(err)
	}

	// A kernel is RV32IMF assembly executed once per work item:
	// a0 = global id, a1 = argument block (one 4-byte slot per argument).
	k, err := vortex.NewKernel(vortex.KernelSource{
		Name: "vecadd",
		Body: `
	lw   t3, 0(a1)       # arg 0: A
	lw   t4, 4(a1)       # arg 1: B
	lw   t5, 8(a1)       # arg 2: C
	slli t6, a0, 2       # byte offset of this work item
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fadd.s f2, f0, f1
	fsw  f2, 0(t5)
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.SetArgs(a, b, c); err != nil {
		log.Fatal(err)
	}

	// lws=0 delegates the mapping to the runtime (the paper's technique).
	res, err := dev.EnqueueNDRange(k, n, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launch: lws=%d, %d workgroups in %d batch(es), %d warps, regime: %s\n",
		res.LWS, res.Tasks, res.Batches, res.WarpsActivated, res.Regime)
	fmt.Printf("cycles: %d (%d simulated + %d dispatch), %s\n",
		res.Cycles, res.SimCycles, res.Cycles-res.SimCycles, res.Boundedness)
	fmt.Printf("L1 hit rate: %.1f%%, DRAM line reads: %d\n\n",
		res.L1.HitRate()*100, res.DRAM.LineReads)

	// Read back and spot-check.
	out, err := dev.ReadFloat32(c, n)
	if err != nil {
		log.Fatal(err)
	}
	for i := range out {
		if out[i] != xs[i]+ys[i] {
			log.Fatalf("mismatch at %d: %v", i, out[i])
		}
	}
	fmt.Println("result verified: c[i] == a[i] + b[i] for all i")

	// Compare against the hardware-agnostic mappings the paper benchmarks.
	fmt.Println("\nfixed mappings on the same device:")
	for _, lws := range []int{1, 32} {
		dev2, _ := vortex.NewDevice(vortex.DefaultConfig(4, 8, 16))
		a2, _ := dev2.AllocFloat32(n)
		b2, _ := dev2.AllocFloat32(n)
		c2, _ := dev2.AllocFloat32(n)
		dev2.WriteFloat32(a2, xs)
		dev2.WriteFloat32(b2, ys)
		k2, _ := vortex.NewKernel(vortex.KernelSource{Name: "vecadd", Body: kBody})
		k2.SetArgs(a2, b2, c2)
		r, err := dev2.EnqueueNDRange(k2, n, lws)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  lws=%-3d -> %6d cycles (%.2fx ours), regime: %s\n",
			lws, r.Cycles, float64(r.Cycles)/float64(res.Cycles), r.Regime)
	}
}

const kBody = `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	slli t6, a0, 2
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fadd.s f2, f0, f1
	fsw  f2, 0(t5)
`
