// GCN example: run graph-convolutional workloads (neighbor aggregation and
// a full dense-transform + aggregation layer) on a Cora-shaped synthetic
// graph, showing how the runtime tunes each launch of a multi-kernel layer
// independently and how the trace analyzer classifies the execution.
//
//	go run ./examples/gcn
package main

import (
	"fmt"
	"log"

	vortex "repro"
	"repro/internal/kernels"
	"repro/internal/workload"
)

func main() {
	const seed = 11

	// A Cora-shaped graph: 2708 nodes, citation-like degree distribution.
	g := workload.NewCora(seed)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic Cora: %d nodes, %d directed edges (avg degree %.1f), hidden size %d\n\n",
		g.N, g.Edges(), float64(g.Edges())/float64(g.N), workload.CoraHidden)

	hw := vortex.HWInfo{Cores: 4, Warps: 8, Threads: 8}
	dev, err := vortex.NewDevice(vortex.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
	if err != nil {
		log.Fatal(err)
	}

	// Standalone aggregation (the paper's "GCN aggr" workload). The
	// per-node edge loops diverge across lanes: the kernel uses the
	// vx_ballot / vx_split / vx_join idiom to reconverge.
	aggr, err := kernels.BuildGCNAggr(dev, g, workload.CoraHidden, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := aggr.RunVerified(dev, 0)
	if err != nil {
		log.Fatal(err)
	}
	lr := res.Launches[0]
	fmt.Printf("gcn_aggr: gws=%d, runtime chose lws=%d (%s)\n", lr.GWS, lr.LWS, lr.Regime)
	fmt.Printf("  %d cycles, %d instrs, mean lanes/issue %.1f, %s\n\n",
		res.Cycles, lr.Stats.Issued,
		float64(lr.Stats.LaneOps)/float64(lr.Stats.Issued), lr.Boundedness)

	// The full layer: dense transform (X x W) then aggregation — two
	// launches, each mapped by Eq. 1 for its own gws.
	layerDev, err := vortex.NewDevice(vortex.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
	if err != nil {
		log.Fatal(err)
	}
	layer, err := kernels.BuildGCNLayer(layerDev, g, workload.CoraHidden, seed)
	if err != nil {
		log.Fatal(err)
	}
	lres, err := layer.RunVerified(layerDev, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gcn_layer (%d launches, %d total cycles):\n", len(lres.Launches), lres.Cycles)
	for i, l := range lres.Launches {
		fmt.Printf("  launch %d %-14s gws=%-6d lws=%-4d %8d cycles  (%s, L1 %.1f%% hits)\n",
			i, l.Kernel, l.GWS, l.LWS, l.Cycles, l.Boundedness, l.L1.HitRate()*100)
	}

	// Compare the whole layer under the three mappings of the paper.
	fmt.Println("\nlayer under the paper's three mappings:")
	for _, m := range []vortex.Mapper{vortex.NaiveMapper(), vortex.FixedMapper(32), vortex.AutoMapper()} {
		d, err := vortex.NewDevice(vortex.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
		if err != nil {
			log.Fatal(err)
		}
		d.SetMapper(m)
		c, err := kernels.BuildGCNLayer(d, g, workload.CoraHidden, seed)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.RunVerified(d, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s -> %8d cycles\n", m.Name(), r.Cycles)
	}
}
