// Profile example: use the trace subsystem and energy model as a
// profiler — run one kernel under two mappings and compare occupancy
// timelines, SIMD efficiency, issue utilization, per-section instruction
// budgets, and the energy breakdown.
//
//	go run ./examples/profile
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	vortex "repro"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
)

func main() {
	hw := vortex.HWInfo{Cores: 2, Warps: 4, Threads: 8}
	const gws = 2048

	fmt.Printf("profiling vecadd (gws=%d) on %s under two mappings\n", gws, hw.Name())
	for _, lws := range []int{1, 0} {
		label := fmt.Sprintf("lws=%d (naive)", 1)
		if lws == 0 {
			label = fmt.Sprintf("lws=%d (Eq. 1)", vortex.OptimalLWS(gws, hw))
		}
		fmt.Printf("\n=== %s ===\n", label)
		profileOnce(hw, gws, lws)
	}
}

func profileOnce(hw vortex.HWInfo, gws, lws int) {
	d, err := ocl.NewDevice(sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
	if err != nil {
		log.Fatal(err)
	}
	col := d.EnableTracing()
	c, err := kernels.BuildVecadd(d, gws, 21)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunVerified(d, lws)
	if err != nil {
		log.Fatal(err)
	}
	lr := res.Launches[0]

	fmt.Printf("cycles: %d  (regime: %s, %d batches)\n", lr.Cycles, lr.Regime, lr.Batches)

	// Occupancy timeline: how many warps are in flight over time.
	if err := col.RenderOccupancy(os.Stdout, 72); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIMD efficiency: %.1f%% of lane slots used\n",
		col.SIMDEfficiency(hw.Threads)*100)

	// Where did the instructions go? Per semantic section of the
	// generated program (spawn wrapper vs kernel body).
	sum := col.Summarize()
	type kv struct {
		name string
		n    uint64
	}
	var sections []kv
	for name, n := range sum.PerTag {
		sections = append(sections, kv{name, n})
	}
	sort.Slice(sections, func(i, j int) bool { return sections[i].n > sections[j].n })
	fmt.Println("instruction budget by section:")
	for _, s := range sections {
		fmt.Printf("  %-12s %8d issues (%.1f%%)\n", s.name, s.n, 100*float64(s.n)/float64(sum.Issues))
	}

	// Energy breakdown from the launch report.
	e := lr.Energy
	fmt.Printf("energy estimate: %.1f nJ total (issue %.1f, lanes %.1f, L1 %.1f, L2 %.1f, DRAM %.1f, static %.1f)\n",
		e.Total()/1000, e.Issue/1000, e.Lanes/1000, e.L1/1000, e.L2/1000, e.DRAM/1000, e.Static/1000)
}
