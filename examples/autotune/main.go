// Autotune example: explore the lws space of one kernel on one device —
// what the paper's Figure 1 does manually — then show that Eq. 1 lands on
// the empirically best point without any search. Also renders the traced
// wavefront of the best and worst mappings.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"os"

	vortex "repro"
	"repro/internal/kernels"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const gws = 2048
	hw := vortex.HWInfo{Cores: 2, Warps: 4, Threads: 8} // hp = 64

	advice := vortex.Advise(gws, hw)
	fmt.Printf("device %s (hp=%d), saxpy gws=%d\n", hw.Name(), hw.HP(), gws)
	fmt.Printf("Eq. 1 says lws=%d: %s\n\n", advice.LWS, advice.Explanation)

	// Exhaustive search over lws (what a hardware-agnostic autotuner has
	// to do with one full run per candidate).
	type point struct {
		lws    int
		cycles uint64
	}
	var best, worst point
	fmt.Printf("%-6s %-8s %-10s %s\n", "lws", "cycles", "batches", "regime")
	for _, lws := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		res := runSaxpy(hw, gws, lws)
		fmt.Printf("%-6d %-8d %-10d %s\n", lws, res.Cycles, res.Batches, res.Regime)
		p := point{lws: lws, cycles: res.Cycles}
		if best.cycles == 0 || p.cycles < best.cycles {
			best = p
		}
		if p.cycles > worst.cycles {
			worst = p
		}
	}

	auto := runSaxpy(hw, gws, 0)
	fmt.Printf("\nsearch best: lws=%d (%d cycles); search worst: lws=%d (%d cycles, %.1fx slower)\n",
		best.lws, best.cycles, worst.lws, worst.cycles, float64(worst.cycles)/float64(best.cycles))
	fmt.Printf("Eq. 1 (no search): lws=%d (%d cycles, %.3fx of the searched best)\n\n",
		auto.LWS, auto.Cycles, float64(auto.Cycles)/float64(best.cycles))

	// Show the wavefronts of the two extremes, like Figure 1.
	fmt.Printf("wavefront at lws=%d (best):\n", best.lws)
	traceSaxpy(hw, gws, best.lws)
	fmt.Printf("\nwavefront at lws=%d (worst):\n", worst.lws)
	traceSaxpy(hw, gws, worst.lws)
}

func runSaxpy(hw vortex.HWInfo, gws, lws int) *ocl.LaunchResult {
	d, err := ocl.NewDevice(sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
	if err != nil {
		log.Fatal(err)
	}
	c, err := kernels.BuildSaxpy(d, gws, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunVerified(d, lws)
	if err != nil {
		log.Fatal(err)
	}
	return res.Launches[0]
}

func traceSaxpy(hw vortex.HWInfo, gws, lws int) {
	d, err := ocl.NewDevice(sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
	if err != nil {
		log.Fatal(err)
	}
	col := d.EnableTracing()
	c, err := kernels.BuildSaxpy(d, gws, 5)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.RunVerified(d, lws); err != nil {
		log.Fatal(err)
	}
	if err := col.RenderWaveform(os.Stdout, trace.RenderOptions{Width: 88, ShowMask: true}); err != nil {
		log.Fatal(err)
	}
}
