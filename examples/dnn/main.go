// DNN example: run a ResNet20-style CIFAR-10 layer (conv3x3 + bias + ReLU
// fused, then a standalone activation over the feature map) on several
// device configurations, comparing the runtime lws mapping against the
// paper's fixed baselines on each.
//
//	go run ./examples/dnn
package main

import (
	"fmt"
	"log"

	vortex "repro"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/ocl"
)

func main() {
	const (
		channels = 16
		side     = 32
		seed     = 7
	)

	configs := []vortex.HWInfo{
		{Cores: 1, Warps: 2, Threads: 2},
		{Cores: 2, Warps: 4, Threads: 8},
		{Cores: 8, Warps: 8, Threads: 16},
	}

	fmt.Printf("ResNet20 layer (conv3x3 %d->%d on %dx%d + ReLU): gws=%d\n\n",
		channels, channels, side, side, channels*side*side)

	for _, hw := range configs {
		fmt.Printf("=== %s (hp=%d) ===\n", hw.Name(), hw.HP())
		type outcome struct {
			name   string
			cycles uint64
			lws    int
		}
		var outcomes []outcome
		for _, m := range []vortex.Mapper{core.Naive{}, core.Fixed{N: 32}, core.Auto{}} {
			dev, err := vortex.NewDevice(vortex.DefaultConfig(hw.Cores, hw.Warps, hw.Threads))
			if err != nil {
				log.Fatal(err)
			}
			dev.SetMapper(m)

			// Layer part 1: fused conv3x3 + bias + ReLU.
			conv, err := kernels.BuildConv3x3(dev, channels, side, seed)
			if err != nil {
				log.Fatal(err)
			}
			convRes, err := conv.RunVerified(dev, 0)
			if err != nil {
				log.Fatal(err)
			}

			// Layer part 2: a standalone activation pass over a feature
			// map of the same size (as networks interleave between conv
			// layers). Each launch gets its own Eq. 1 decision.
			relu, err := kernels.BuildRelu(dev, channels*side*side, seed+1)
			if err != nil {
				log.Fatal(err)
			}
			reluRes, err := relu.RunVerified(dev, 0)
			if err != nil {
				log.Fatal(err)
			}

			total := convRes.Cycles + reluRes.Cycles
			outcomes = append(outcomes, outcome{
				name:   m.Name(),
				cycles: total,
				lws:    convRes.Launches[0].LWS,
			})
			lr := convRes.Launches[0]
			fmt.Printf("  %-7s conv lws=%-4d %8d cycles (%s, %d batches, L1 %.1f%% hits) + relu %7d cycles = %8d\n",
				m.Name(), lr.LWS, convRes.Cycles, lr.Regime, lr.Batches, lr.L1.HitRate()*100, reluRes.Cycles, total)
		}
		ours := outcomes[len(outcomes)-1].cycles
		fmt.Printf("  speedup of runtime mapping: %.2fx over lws=1, %.2fx over lws=32\n\n",
			float64(outcomes[0].cycles)/float64(ours), float64(outcomes[1].cycles)/float64(ours))
	}

	// Show the tuning advice the runtime produces without running anything.
	fmt.Println("runtime advice (no simulation needed):")
	for _, hw := range configs {
		a := vortex.Advise(channels*side*side, hw)
		fmt.Printf("  %s: %s\n", hw.Name(), a.Explanation)
	}
	_ = ocl.DefaultDispatchOverhead
}
