package vortex_test

import (
	"testing"

	vortex "repro"
)

// The facade-level integration test: the README quick-start flow.
func TestQuickstartFlow(t *testing.T) {
	const n = 256
	dev, err := vortex.NewDevice(vortex.DefaultConfig(2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := dev.AllocFloat32(n)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := dev.AllocFloat32(n)
	c, _ := dev.AllocFloat32(n)
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = float32(i * i)
	}
	if err := dev.WriteFloat32(a, xs); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFloat32(b, ys); err != nil {
		t.Fatal(err)
	}
	k, err := vortex.NewKernel(vortex.KernelSource{
		Name: "vecadd",
		Body: `
	lw   t3, 0(a1)
	lw   t4, 4(a1)
	lw   t5, 8(a1)
	slli t6, a0, 2
	add  t3, t3, t6
	add  t4, t4, t6
	add  t5, t5, t6
	flw  f0, 0(t3)
	flw  f1, 0(t4)
	fadd.s f2, f0, f1
	fsw  f2, 0(t5)
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgs(a, b, c); err != nil {
		t.Fatal(err)
	}
	res, err := dev.EnqueueNDRange(k, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LWS != vortex.OptimalLWS(n, dev.Info()) {
		t.Errorf("auto lws = %d, want Eq.1 value %d", res.LWS, vortex.OptimalLWS(n, dev.Info()))
	}
	out, err := dev.ReadFloat32(c, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != xs[i]+ys[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
}

func TestFacadeMappersAndAdvice(t *testing.T) {
	hw := vortex.HWInfo{Cores: 1, Warps: 2, Threads: 4}
	if got := vortex.OptimalLWS(128, hw); got != 16 {
		t.Errorf("OptimalLWS = %d", got)
	}
	if vortex.AutoMapper().LWS(128, hw) != 16 {
		t.Error("AutoMapper disagrees with OptimalLWS")
	}
	if vortex.NaiveMapper().LWS(128, hw) != 1 {
		t.Error("NaiveMapper != 1")
	}
	if vortex.FixedMapper(32).LWS(128, hw) != 32 {
		t.Error("FixedMapper != 32")
	}
	a := vortex.Advise(128, hw)
	if a.LWS != 16 || a.Regime != vortex.RegimeExact {
		t.Errorf("Advise = %+v", a)
	}
}
