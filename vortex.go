// Package vortex is the public API of this reproduction of "Optimising
// GPGPU Execution Through Runtime Micro-Architecture Parameter Analysis"
// (IISWC 2023): a cycle-level Vortex-like RISC-V GPGPU simulator, an
// OpenCL-style host runtime, and the paper's contribution — runtime
// selection of the local work size (lws) from the device's
// micro-architecture parameters (Eq. 1: lws = gws / (cores x warps x
// threads)).
//
// Quick start:
//
//	dev, _ := vortex.NewDevice(vortex.DefaultConfig(2, 4, 8))
//	a, _ := dev.AllocFloat32(n)
//	b, _ := dev.AllocFloat32(n)
//	c, _ := dev.AllocFloat32(n)
//	dev.WriteFloat32(a, xs)
//	dev.WriteFloat32(b, ys)
//	k, _ := vortex.NewKernel(myKernelSource)
//	k.SetArgs(a, b, c)
//	res, _ := dev.EnqueueNDRange(k, n, 0) // lws=0: Eq. 1 decides at runtime
//	out, _ := dev.ReadFloat32(c, n)
//
// The deeper layers are importable directly: internal/sim (the simulator),
// internal/ocl (the runtime), internal/core (the mapper), internal/kernels
// (the paper's nine benchmark workloads), internal/sweep (the Figure 2
// campaign), internal/trace (Figure 1 tracing).
package vortex

import (
	"repro/internal/core"
	"repro/internal/ocl"
	"repro/internal/sim"
)

// Re-exported core types.
type (
	// Device is a simulated GPGPU with persistent memory and caches.
	Device = ocl.Device
	// Buffer is a device memory allocation.
	Buffer = ocl.Buffer
	// Kernel is a kernel with bound arguments.
	Kernel = ocl.Kernel
	// KernelSource is assembly device code (see ocl.KernelSource for the
	// body ABI).
	KernelSource = ocl.KernelSource
	// LaunchResult reports one completed NDRange execution.
	LaunchResult = ocl.LaunchResult
	// Config is the full device configuration.
	Config = sim.Config
	// HWInfo is the runtime-visible micro-architecture geometry.
	HWInfo = core.HWInfo
	// Mapper chooses an lws when the host passes lws=0.
	Mapper = core.Mapper
	// Advice explains an Eq. 1 decision.
	Advice = core.Advice
	// Regime classifies a launch per the paper's Section 2 taxonomy.
	Regime = core.Regime
)

// Launch regimes (Section 2).
const (
	RegimeUnder = core.RegimeUnder
	RegimeExact = core.RegimeExact
	RegimeOver  = core.RegimeOver
)

// NewDevice builds a simulated device.
func NewDevice(cfg Config) (*Device, error) { return ocl.NewDevice(cfg) }

// DefaultConfig returns a cores x warps x threads device with the standard
// memory hierarchy and latencies.
func DefaultConfig(cores, warps, threads int) Config {
	return sim.DefaultConfig(cores, warps, threads)
}

// NewKernel wraps a kernel source for argument binding.
func NewKernel(src KernelSource) (*Kernel, error) { return ocl.NewKernel(src) }

// OptimalLWS evaluates the paper's Eq. 1 for a workload and device.
func OptimalLWS(gws int, hw HWInfo) int { return core.OptimalLWS(gws, hw) }

// Advise explains the Eq. 1 decision for a prospective launch.
func Advise(gws int, hw HWInfo) Advice { return core.Advise(gws, hw) }

// AutoMapper returns the paper's runtime mapper (Eq. 1).
func AutoMapper() Mapper { return core.Auto{} }

// NaiveMapper returns the lws=1 baseline mapper.
func NaiveMapper() Mapper { return core.Naive{} }

// FixedMapper returns a hardware-agnostic fixed-lws mapper (the paper's
// second baseline uses n=32).
func FixedMapper(n int) Mapper { return core.Fixed{N: n} }
