package vortex_test

// Benchmark harness: one testing.B benchmark per paper artefact.
//
//	E1 Fig. 1  -> BenchmarkFig1TraceVecadd
//	E2/E3 Fig. 2 (violins + data tables) -> BenchmarkFig2<Kernel>
//	E4 Section 3 aggregate -> BenchmarkFig2AggregateMath
//	A1..A3 ablations -> BenchmarkAblation*
//
// Each Fig. 2 benchmark runs the three mappers (lws=1, lws=32, ours) for
// its kernel over a deterministic subsample of the 450-configuration grid
// at reduced workload scale (cmd/vortex-sweep regenerates the full-scale
// figure) and reports the mean latency ratios as custom metrics:
// ratio_naive = cycles(lws=1)/cycles(ours), ratio_fixed32 =
// cycles(lws=32)/cycles(ours). Ratios above 1 mean the paper's mapper wins.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/ocl"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// benchGrid is a 15-configuration spread of the paper's 450-point grid.
func benchGrid() []core.HWInfo {
	return sweep.Subsample(sweep.Grid(), 15)
}

func benchSweep(b *testing.B, kernel string, scale float64) {
	b.Helper()
	var vsNaive, vsFixed float64
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(sweep.Options{
			Configs: benchGrid(),
			Kernels: []string{kernel},
			Scale:   scale,
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := res.Summaries()[0]
		vsNaive = s.VsNaive.Avg
		vsFixed = s.VsFixed.Avg
	}
	b.ReportMetric(vsNaive, "ratio_naive")
	b.ReportMetric(vsFixed, "ratio_fixed32")
}

func BenchmarkFig2Vecadd(b *testing.B)        { benchSweep(b, "vecadd", 0.25) }
func BenchmarkFig2Relu(b *testing.B)          { benchSweep(b, "relu", 0.25) }
func BenchmarkFig2Saxpy(b *testing.B)         { benchSweep(b, "saxpy", 0.25) }
func BenchmarkFig2Sgemm(b *testing.B)         { benchSweep(b, "sgemm", 0.25) }
func BenchmarkFig2KNN(b *testing.B)           { benchSweep(b, "knn", 0.1) }
func BenchmarkFig2Gauss(b *testing.B)         { benchSweep(b, "gauss", 0.1) }
func BenchmarkFig2GCNAggr(b *testing.B)       { benchSweep(b, "gcn_aggr", 0.1) }
func BenchmarkFig2GCNLayer(b *testing.B)      { benchSweep(b, "gcn_layer", 0.1) }
func BenchmarkFig2ResNet20Layer(b *testing.B) { benchSweep(b, "resnet20_layer", 0.25) }

// BenchmarkFig2AggregateMath reproduces the Section 3 headline: the mean
// speedup of the runtime mapper over both baselines across the math
// kernels (paper: 1.3x over lws=1, 3.7x over lws=32).
func BenchmarkFig2AggregateMath(b *testing.B) {
	var vsNaive, vsFixed float64
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(sweep.Options{
			Configs: benchGrid(),
			Kernels: []string{"vecadd", "relu", "saxpy", "sgemm", "knn", "gauss"},
			Scale:   0.1,
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.Aggregates() {
			if a.Group == kernels.GroupMath {
				vsNaive, vsFixed = a.VsNaive, a.VsFixed
			}
		}
	}
	b.ReportMetric(vsNaive, "ratio_naive")
	b.ReportMetric(vsFixed, "ratio_fixed32")
}

// BenchmarkFig1TraceVecadd regenerates the Figure 1 experiment: vecadd
// with gws=128 on a 1c2w4t device, traced under lws in {1, 16, 32, 64}.
// It reports the cycle counts of the four mappings as metrics.
func BenchmarkFig1TraceVecadd(b *testing.B) {
	cyclesFor := map[int]uint64{}
	for i := 0; i < b.N; i++ {
		for _, lws := range []int{1, 16, 32, 64} {
			d, err := ocl.NewDevice(sim.DefaultConfig(1, 2, 4))
			if err != nil {
				b.Fatal(err)
			}
			col := d.EnableTracing()
			c, err := kernels.BuildVecadd(d, 128, 42)
			if err != nil {
				b.Fatal(err)
			}
			res, err := c.RunVerified(d, lws)
			if err != nil {
				b.Fatal(err)
			}
			if len(col.Records) == 0 {
				b.Fatal("no trace records")
			}
			cyclesFor[lws] = res.Cycles
		}
	}
	b.ReportMetric(float64(cyclesFor[1]), "cycles_lws1")
	b.ReportMetric(float64(cyclesFor[16]), "cycles_lws16")
	b.ReportMetric(float64(cyclesFor[32]), "cycles_lws32")
	b.ReportMetric(float64(cyclesFor[64]), "cycles_lws64")
}

// BenchmarkAblationDispatchOverhead (A1) sweeps the per-launch driver cost
// and reports how much of the naive mapping's disadvantage survives at
// zero overhead — isolating software-batching cost from dispatch cost.
func BenchmarkAblationDispatchOverhead(b *testing.B) {
	var at0, at2000 float64
	for i := 0; i < b.N; i++ {
		for _, overhead := range []int64{0, 2000} {
			res, err := sweep.Run(sweep.Options{
				Configs:          []core.HWInfo{{Cores: 1, Warps: 2, Threads: 4}, {Cores: 2, Warps: 4, Threads: 8}},
				Kernels:          []string{"vecadd"},
				Scale:            0.25,
				Seed:             42,
				DispatchOverhead: overhead,
			})
			if err != nil {
				b.Fatal(err)
			}
			avg := res.Summaries()[0].VsNaive.Avg
			if overhead == 0 {
				at0 = avg
			} else {
				at2000 = avg
			}
		}
	}
	b.ReportMetric(at0, "ratio_naive_ovh0")
	b.ReportMetric(at2000, "ratio_naive_ovh2000")
}

// BenchmarkAblationCoalescing (A2) compares a memory-bound kernel with the
// coalescer on and off under the naive lws=1 mapping (whose adjacent lanes
// touch the same cache line; the Eq. 1 mapping strides lanes apart,
// leaving the coalescer nothing to merge). In this model the duplicate
// requests of an uncoalesced warp hit the line the first request filled,
// so the coalescer is nearly latency-neutral behind a banked LSU — its
// measurable effect is the L1 access count (and hence access energy),
// reported here alongside the cycles.
func BenchmarkAblationCoalescing(b *testing.B) {
	configs := []core.HWInfo{{Cores: 2, Warps: 4, Threads: 32}}
	var with, without, e1, e2 float64
	for i := 0; i < b.N; i++ {
		for _, off := range []bool{false, true} {
			res, err := sweep.Run(sweep.Options{
				Configs:    configs,
				Kernels:    []string{"saxpy"},
				Mappers:    []core.Mapper{core.Naive{}},
				Scale:      0.25,
				Seed:       42,
				NoCoalesce: off,
			})
			if err != nil {
				b.Fatal(err)
			}
			if off {
				without = float64(res.Records[0].Cycles)
				e2 = res.Records[0].EnergyPJ
			} else {
				with = float64(res.Records[0].Cycles)
				e1 = res.Records[0].EnergyPJ
			}
		}
	}
	b.ReportMetric(with, "cycles_coalesced")
	b.ReportMetric(without, "cycles_uncoalesced")
	b.ReportMetric(e2/e1, "energy_ratio_uncoalesced")
}

// BenchmarkAblationScheduler (A3) compares the four warp-scheduling
// policies under the paper's mapper, using the sweep's scheduler grid axis
// (one campaign, one record per policy in axis order).
func BenchmarkAblationScheduler(b *testing.B) {
	scheds := sim.SchedPolicies()
	cycles := make([]float64, len(scheds))
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(sweep.Options{
			Configs: []core.HWInfo{{Cores: 2, Warps: 8, Threads: 8}},
			Kernels: []string{"sgemm"},
			Mappers: []core.Mapper{core.Auto{}},
			Scheds:  scheds,
			Scale:   0.25,
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, rec := range res.Records {
			cycles[j] = float64(rec.Cycles)
		}
	}
	for j, pol := range scheds {
		b.ReportMetric(cycles[j], "cycles_"+pol.String())
	}
}

// BenchmarkSimulatorIssueRate measures raw simulator speed (simulated
// instruction issues per wall-clock second) on a busy multi-warp device.
// sim.DefaultConfig enables the parallel multi-core engine (Workers =
// NumCPU); BenchmarkSimulatorIssueRateSequential is the one-goroutine
// baseline for the speedup comparison.
func BenchmarkSimulatorIssueRate(b *testing.B)           { benchIssueRate(b, 0) }
func BenchmarkSimulatorIssueRateSequential(b *testing.B) { benchIssueRate(b, 1) }

func benchIssueRate(b *testing.B, workers int) {
	b.Helper()
	var issued uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(4, 8, 8)
		if workers > 0 {
			cfg.Workers = workers
		}
		d, err := ocl.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c, err := kernels.BuildSgemm(d, 64, 16, 64, 42)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(d, 0)
		if err != nil {
			b.Fatal(err)
		}
		issued += res.Launches[0].Stats.Issued
	}
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkSimulatorCommitSharded / BenchmarkSimulatorCommitSerial compare
// the two commit-phase disciplines of the parallel engine on a DRAM-heavy
// multi-core device: sharded applies each cycle's deferred misses per L2
// bank and DRAM channel on the worker pool, serial (CommitWorkers=1, the
// PR-1 discipline) walks them single-threaded in global order. Results are
// byte-identical — both report the simulated cycle count as the
// device_cycles metric, which must match between the two benchmarks
// (TestParallelShardedCommitMatrix enforces the full contract); the
// wall-clock delta is the commit-sharding win and scales with host cores
// (on a single-CPU host the two collapse to spin-barrier overhead).
func BenchmarkSimulatorCommitSharded(b *testing.B) { benchCommit(b, 0) }
func BenchmarkSimulatorCommitSerial(b *testing.B)  { benchCommit(b, 1) }

func benchCommit(b *testing.B, commitWorkers int) {
	b.Helper()
	cfg := sim.DefaultConfig(8, 8, 8)
	cfg.Workers = 4
	cfg.CommitWorkers = commitWorkers
	// Each warp streams stores+loads over its own 4 KiB region at line
	// stride; the 2 MiB aggregate footprint defeats the 128 KiB L2, so
	// nearly every cycle defers a batch of misses into the commit phase.
	prog := `
		csrr s0, cid
		slli s0, s0, 15
		csrr t0, wid
		slli t1, t0, 12
		add  s0, s0, t1
		csrr t0, tid
		slli t1, t0, 9
		add  s0, s0, t1
		li   t2, 0x100000
		add  s0, s0, t2
		li   t3, 8
	loop:
		lw   t4, 0(s0)
		add  t4, t4, t3
		sw   t4, 0(s0)
		addi s0, s0, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 22)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	var issued uint64
	for i := 0; i < b.N; i++ {
		for c := 0; c < cfg.Cores; c++ {
			for w := 0; w < cfg.Warps; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, 0xFF); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	issued = s.TotalStats().Issued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle())/float64(b.N), "device_cycles")
}

// BenchmarkSimulatorIssuePath measures the steady-state issue path with all
// setup (device build, assembly, input generation) hoisted out of the loop:
// each iteration re-activates the warps of a prebuilt device and runs the
// kernel to completion. With -benchmem this pins the zero-allocation
// property of the issue/coalescing path (allocs/op ~ 0 on the sequential
// engine; the parallel engine adds only its per-run worker bookkeeping).
func BenchmarkSimulatorIssuePath(b *testing.B) {
	cfg := sim.DefaultConfig(4, 8, 8)
	cfg.Workers = 1
	prog := `
		csrr s0, cid
		slli s0, s0, 14
		csrr t0, wid
		slli t1, t0, 10
		add  s0, s0, t1
		csrr t0, tid
		slli t1, t0, 6
		add  s0, s0, t1
		li   t2, 0x10000
		add  s0, s0, t2
		li   t3, 24
	loop:
		lw   t4, 0(s0)
		add  t4, t4, t3
		sw   t4, 0(s0)
		fcvt.s.w f0, t4
		fmadd.s f1, f0, f0, f0
		addi s0, s0, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 21)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		for c := 0; c < cfg.Cores; c++ {
			for w := 0; w < cfg.Warps; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, 0xFF); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmupIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmupIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkHighWarpIssue measures the sequential issue path at the warp
// count where the legacy per-issue warp rescan dominated: 32 warps per
// core, a loop mixing memory and FP dependencies so warps continuously
// stall and wake. The ready-set/wake-heap scheduler touches only ready
// warps per issue cycle; BenchmarkHighWarpIssueScan runs the identical
// workload on the retained scan oracle (Config.ScanSched), so the pair
// quantifies the rescan cost the heap removed. Simulated results are
// byte-identical — both report device_cycles, which the deterministic CI
// gate holds at zero drift.
func BenchmarkHighWarpIssue(b *testing.B)     { benchHighWarp(b, false) }
func BenchmarkHighWarpIssueScan(b *testing.B) { benchHighWarp(b, true) }

func benchHighWarp(b *testing.B, scan bool) {
	b.Helper()
	cfg := sim.DefaultConfig(2, 32, 8)
	cfg.Workers = 1
	cfg.ScanSched = scan
	// Each warp streams dependent loads over its own 4 KiB region at line
	// stride; the 256 KiB aggregate footprint defeats the 128 KiB L2, so
	// warps sleep on staggered DRAM fills and a typical issue cycle sees a
	// couple of ready warps among dozens of stalled ones — the regime where
	// the legacy engine's rescan walks the whole warp array per issue.
	prog := `
		csrr s0, cid
		slli s0, s0, 17
		csrr t0, wid
		slli t1, t0, 12
		add  s0, s0, t1
		csrr t0, tid
		slli t1, t0, 9
		add  s0, s0, t1
		li   t2, 0x100000
		add  s0, s0, t2
		li   t3, 8
	loop:
		lw   t4, 0(s0)
		add  t4, t4, t3
		fcvt.s.w f0, t4
		fmadd.s f1, f0, f0, f0
		sw   t4, 0(s0)
		addi s0, s0, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 21)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		for c := 0; c < cfg.Cores; c++ {
			for w := 0; w < cfg.Warps; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, 0xFF); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmCycles := s.Cycle()
	warmIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle()-warmCycles)/float64(b.N), "device_cycles")
}

// BenchmarkUniformWarpBatch measures uniform-warp batched execution in its
// target regime: 32 warps per core marching in perfect lockstep through a
// compute-only loop (no memory stalls to stagger them), so nearly every
// batchable issue leads or rides a full-width cohort and the per-warp
// dispatch switches collapse into one fused warps x lanes kernel per
// cohort. BenchmarkUniformWarpUnbatched runs the identical workload on the
// per-warp oracle (Config.BatchExec=false), so the pair quantifies the
// dispatch overhead batching removed. Simulated results are byte-identical
// — both report device_cycles, which the deterministic CI gate holds at
// zero drift.
func BenchmarkUniformWarpBatch(b *testing.B)     { benchUniformWarp(b, true) }
func BenchmarkUniformWarpUnbatched(b *testing.B) { benchUniformWarp(b, false) }

func benchUniformWarp(b *testing.B, batch bool) {
	b.Helper()
	cfg := sim.DefaultConfig(1, 32, 8)
	cfg.Workers = 1
	cfg.BatchExec = batch
	// Lane values differ (tid-seeded) but control flow is warp-uniform and
	// the loop never touches memory, so the 32 warps stay at the same pc
	// for the whole run. In-warp dependencies are ~32 issue slots stale by
	// the time the warp's turn comes round again, so no scoreboard stall
	// ever breaks a cohort. The body is the lockstep index/address
	// arithmetic that dominates the paper kernels' uniform phases — the op
	// mix where the per-warp path's cost is almost entirely dispatch
	// (execute's prologue plus a per-lane intALU/intALUImm call per op)
	// and the fused cohort kernels collapse it to one dedicated loop per
	// cohort. A token FP pair keeps the float pipelines in the cohort path;
	// the warp-uniform bnez is the only per-warp fallback.
	prog := `
		csrr t0, wid
		slli t0, t0, 4
		csrr t1, tid
		add  t0, t0, t1
		fcvt.s.w f0, t0
		li   t1, 256
		li   t2, 0
		li   t3, 3
	loop:
		add  t2, t2, t0
		xor  t4, t2, t3
		slli t5, t4, 2
		mul  t6, t2, t3
		and  a0, t4, t2
		or   a1, a0, t5
		sub  a2, a1, t2
		addi a3, a2, 17
		srli a4, a2, 3
		ori  a5, a4, 9
		andi a6, a5, 255
		sltu a7, a6, t2
		fadd.s f1, f0, f0
		fmul.s f2, f1, f0
		addi t1, t1, -1
		bnez t1, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		for w := 0; w < cfg.Warps; w++ {
			if err := s.ActivateWarp(0, w, 0x1000, 0xFF); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmCycles := s.Cycle()
	warmIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle()-warmCycles)/float64(b.N), "device_cycles")
}

// BenchmarkMemCohortBatch measures cohort-batched memory execution in its
// target regime: 16 wide warps (32 lanes) per core in perfect lockstep
// through a loop of full-mask unit-stride loads and stores at static
// offsets from per-warp bases — the affine base + tid*4 shape every registry kernel emits. The
// per-warp deltas are congruent, so nearly every memory issue leads or
// rides a cohort: mates skip re-decode, per-lane validation and
// re-coalescing (the leader's line list shifts by the line-aligned delta)
// and the full-mask unit-stride accesses take the contiguous bulk-copy
// fast path — one bounds check plus one tight copy between flat memory and
// the lane-major register file. Timing is untouched: every mate's L1 walk,
// MSHR and LSU occupancy replay at its true issue cycle. The working set
// fits L1, so after the first pass the loop measures the execution path,
// not DRAM. BenchmarkMemCohortUnbatched runs the identical
// workload on the per-warp memory path (Config.BatchMem=false; compute
// batching stays on in both, isolating the memory-side win). Simulated
// results are byte-identical — both report device_cycles, which the
// deterministic CI gate holds at zero drift.
func BenchmarkMemCohortBatch(b *testing.B)     { benchMemCohort(b, true) }
func BenchmarkMemCohortUnbatched(b *testing.B) { benchMemCohort(b, false) }

func benchMemCohort(b *testing.B, batchMem bool) {
	b.Helper()
	cfg := sim.DefaultConfig(1, 16, 32)
	cfg.Workers = 1
	cfg.BatchMem = batchMem
	// Every warp owns a 512-byte source region and a disjoint destination
	// region at 0x8000 + wid*512 (+ 0x4000); the 32 lanes walk base +
	// tid*4, so both fields of each lw/sw pair are full-mask unit-stride
	// and the per-warp deltas are multiples of the 64-byte line. The
	// offsets are static (no pointer advance), so the warps never leave
	// lockstep, every access after the first pass hits L1, and no
	// scoreboard stall breaks a cohort (each load's consumer issues ~16
	// slots later). 8 of the 10 loop ops are memory — the regime
	// where the per-warp path's cost is dominated by executeMem's 32-lane
	// validate/access loops and coalescing, which the replay collapses to
	// one bounds check + one 32-word copy + a 2-entry line-list shift.
	prog := `
		csrr t0, wid
		slli t0, t0, 9
		csrr t1, tid
		slli t1, t1, 2
		add  t0, t0, t1
		li   t1, 0x8000
		add  t0, t0, t1
		li   s0, 0x4000
		add  s0, s0, t0
		li   t1, 192
	loop:
		lw   t2, 0(t0)
		sw   t2, 0(s0)
		lw   t3, 128(t0)
		sw   t3, 128(s0)
		lw   t4, 256(t0)
		sw   t4, 256(s0)
		lw   t5, 384(t0)
		sw   t5, 384(s0)
		addi t1, t1, -1
		bnez t1, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 20)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		for w := 0; w < cfg.Warps; w++ {
			if err := s.ActivateWarp(0, w, 0x1000, 0xFFFFFFFF); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmCycles := s.Cycle()
	warmIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle()-warmCycles)/float64(b.N), "device_cycles")
}

// BenchmarkManyCoreIdle pins the payoff of the event-driven device engine:
// a 16c8w8t device in the DRAM-bound many-core-idle regime (GCNAggr/KNN
// shaped: short bursts of address arithmetic between long irregular-access
// miss sleeps), where on a typical cycle one core is issuing and the other
// fifteen are asleep on DRAM fills. The legacy tick loop can never
// fast-forward — some core always issues — so it visits all sixteen cores
// every cycle and charges each sleeper's stall counters one cycle at a
// time; the event engine touches only the due cores and settles the stall
// spans in bulk. BenchmarkManyCoreIdleTick runs the identical workload on
// the retained tick oracle (Config.TickEngine), so the pair quantifies the
// per-cycle device scan the wake queue removed. Simulated results are
// byte-identical — both report device_cycles, which the deterministic CI
// gate holds at zero drift.
func BenchmarkManyCoreIdle(b *testing.B)     { benchManyCoreIdle(b, false) }
func BenchmarkManyCoreIdleTick(b *testing.B) { benchManyCoreIdle(b, true) }

func benchManyCoreIdle(b *testing.B, tick bool) {
	b.Helper()
	cfg := sim.DefaultConfig(64, 8, 8)
	cfg.Workers = 1
	cfg.TickEngine = tick
	// All gather traffic lands on a single DRAM channel — the worst-case
	// hot-spot of an irregular gather, and the regime where a many-core
	// device is maximally idle: fills serialize, so a core's miss sleep
	// stretches from the 180-cycle DRAM latency to the whole channel queue.
	cfg.Mem.DRAM.Channels = 1
	// Core 0 spins a single-lane dependent ALU loop sized to outlast the
	// memory side, keeping the device issuing every cycle. Every other core
	// runs one warp whose eight lanes stream loads over disjoint 4 KiB
	// regions at line stride: each lw misses clean through the L2 (the
	// 2 MiB aggregate footprint defeats its 128 KiB), so between issue
	// bursts of three instructions the core sleeps out the serialized DRAM
	// fills. One warp per core means no second warp hides that latency —
	// the core itself goes idle, which is the regime under test.
	prog := `
		csrr s0, cid
		bnez s0, memside
		li   t0, 67000
	busy:
		addi t0, t0, -1
		bnez t0, busy
		ecall
	memside:
		slli s0, s0, 15
		csrr t0, tid
		slli t1, t0, 12
		add  s0, s0, t1
		li   t2, 0x100000
		add  s0, s0, t2
		li   t5, 4096
		add  s2, s0, t5
	mloop:
		lw   t4, 0(s0)
		addi s0, s0, 64
		bne  s0, s2, mloop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 23)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		if err := s.ActivateWarp(0, 0, 0x1000, 0x1); err != nil {
			b.Fatal(err)
		}
		for c := 1; c < cfg.Cores; c++ {
			if err := s.ActivateWarp(c, 0, 0x1000, 0xFF); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmCycles := s.Cycle()
	warmIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle()-warmCycles)/float64(b.N), "device_cycles")
}

// BenchmarkAblationLineSize (A4) quantifies the explanation this
// reproduction offers for the paper's unexplained "atypical" kernels
// (knn, gauss, GCN aggregation): with lws > 1 the Vortex mapping makes
// warp lanes stride by lws work items, so large cache lines are fetched
// for a single element once the stream count exceeds the L1 — an effect
// that vanishes with the 16-byte lines of early Vortex dcache banks.
func BenchmarkAblationLineSize(b *testing.B) {
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, lineBytes := range []int{64, 16} {
			res, err := sweep.Run(sweep.Options{
				Configs: []core.HWInfo{{Cores: 2, Warps: 32, Threads: 32}},
				Kernels: []string{"knn"},
				Mappers: []core.Mapper{core.Naive{}, core.Auto{}},
				Scale:   1,
				Seed:    42,
				ConfigTemplate: func(hw core.HWInfo) sim.Config {
					cfg := sim.DefaultConfig(hw.Cores, hw.Warps, hw.Threads)
					cfg.Mem.L1.LineBytes = lineBytes
					cfg.Mem.L2.LineBytes = lineBytes
					return cfg
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			ratio := res.Ratios("knn", "lws=1", "ours")
			if len(ratio) == 1 {
				metrics[map[int]string{64: "ratio_naive_line64", 16: "ratio_naive_line16"}[lineBytes]] = ratio[0]
			}
		}
	}
	for name, v := range metrics {
		b.ReportMetric(v, name)
	}
}

// benchCampaign runs the small campaign shared by the cached/cold sweep
// benchmarks: 6 configurations x 2 kernels x 3 mappers.
func benchCampaign(b *testing.B) {
	b.Helper()
	_, err := sweep.Run(sweep.Options{
		Configs: sweep.Subsample(sweep.Grid(), 6),
		Kernels: []string{"vecadd", "sgemm"},
		Scale:   0.25,
		Seed:    42,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepCold measures the campaign with the process-wide caches
// dropped per iteration: each run pays program assembly and input
// generation like the pre-campaign-engine sweep did. (The device pool is
// internal to sweep.Run and active in both variants, so the Cold/Cached
// gap isolates the program-cache + input-memo win.)
func BenchmarkSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ocl.ResetProgramCache()
		kernels.ResetInputCache()
		benchCampaign(b)
	}
}

// BenchmarkSweepCached measures the same campaign with the program cache
// and input memo warm — the steady state of a long campaign (or a resumed
// one). The Cold/Cached gap is the campaign engine's per-run setup win.
func BenchmarkSweepCached(b *testing.B) {
	ocl.ResetProgramCache()
	kernels.ResetInputCache()
	benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCampaign(b)
	}
}

// BenchmarkMSHRBound4 measures the simulator on a DRAM-bound streaming
// workload with 4 MSHRs per L1 and per L2 bank: every core's warps stream
// dependent loads over a footprint that defeats the L2, so the
// outstanding-miss bound is the binding constraint and the issue path runs
// through the MSHR gate (and its lower-bound wake re-checks) on nearly
// every memory instruction. BenchmarkMSHRUnbounded runs the identical
// workload on the pre-axis unbounded model, so the pair quantifies both
// the host-side cost of the gate and the simulated-cycle divergence the
// bound creates — device_cycles differs between the two by construction
// and the deterministic CI gate holds each at zero drift.
func BenchmarkMSHRBound4(b *testing.B)    { benchMSHR(b, 4) }
func BenchmarkMSHRUnbounded(b *testing.B) { benchMSHR(b, 0) }

func benchMSHR(b *testing.B, mshrs int) {
	b.Helper()
	cfg := sim.DefaultConfig(2, 32, 8)
	cfg.Workers = 1
	cfg.Mem.L1.MSHRs = mshrs
	cfg.Mem.L2.MSHRs = mshrs
	// Same DRAM-bound stream as BenchmarkHighWarpIssue: each warp walks its
	// own 4 KiB region at line stride; the 256 KiB aggregate footprint
	// defeats the 128 KiB L2, so every iteration misses to DRAM and the
	// per-core MSHRs throttle how many of the 32 warps can have misses in
	// flight at once.
	prog := `
		csrr s0, cid
		slli s0, s0, 17
		csrr t0, wid
		slli t1, t0, 12
		add  s0, s0, t1
		csrr t0, tid
		slli t1, t0, 9
		add  s0, s0, t1
		li   t2, 0x100000
		add  s0, s0, t2
		li   t3, 8
	loop:
		lw   t4, 0(s0)
		add  t4, t4, t3
		sw   t4, 0(s0)
		addi s0, s0, 64
		addi t3, t3, -1
		bnez t3, loop
		ecall
	`
	p := asm.MustAssemble(prog, 0x1000, nil)
	memory := mem.NewMemory(1 << 21)
	hier, err := mem.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadProgram(p.Base, p.Insts); err != nil {
		b.Fatal(err)
	}
	runOnce := func() {
		for c := 0; c < cfg.Cores; c++ {
			for w := 0; w < cfg.Warps; w++ {
				if err := s.ActivateWarp(c, w, 0x1000, 0xFF); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	runOnce() // warm up: first activation allocates the register files
	warmCycles := s.Cycle()
	warmIssued := s.TotalStats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	issued := s.TotalStats().Issued - warmIssued
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim_instrs/s")
	b.ReportMetric(float64(s.Cycle()-warmCycles)/float64(b.N), "device_cycles")
}
