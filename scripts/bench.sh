#!/usr/bin/env bash
# Runs the Figure-2, ablation and simulator benchmarks with repetition and
# writes a machine-readable baseline (BENCH_baseline.json by default) so
# future performance PRs have a trajectory to compare against:
#
#   scripts/bench.sh                 # 5 repetitions -> BENCH_baseline.json
#   COUNT=1 scripts/bench.sh out.json
#
# Environment:
#   COUNT      repetitions per benchmark (default 5)
#   BENCHTIME  go test -benchtime value (default 1x)
#   BENCH      benchmark regex (default Fig2 + ablations + simulator)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-BenchmarkFig2|BenchmarkAblation|BenchmarkSimulator|BenchmarkSweep|BenchmarkHighWarp|BenchmarkManyCore|BenchmarkUniformWarp|BenchmarkMemCohort|BenchmarkMSHR}"
OUT="${1:-BENCH_baseline.json}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$RAW"

# Convert `go test -bench` lines into JSON: every (value, unit) pair after
# the iteration count becomes a metric keyed by its unit.
awk -v count="$COUNT" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n"
    printf "  \"count\": %s,\n", count
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": [\n"
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[\/]/, "_per_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
/^(goos|goarch|pkg|cpu):/ {
    key = $1
    sub(/:$/, "", key)
    meta[key] = substr($0, index($0, $2))
}
END {
    printf "\n  ],\n"
    printf "  \"goos\": \"%s\",\n", meta["goos"]
    printf "  \"goarch\": \"%s\",\n", meta["goarch"]
    printf "  \"cpu\": \"%s\"\n", meta["cpu"]
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark records)"
